file(REMOVE_RECURSE
  "CMakeFiles/fig7_solver.dir/fig7_solver.cpp.o"
  "CMakeFiles/fig7_solver.dir/fig7_solver.cpp.o.d"
  "fig7_solver"
  "fig7_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
