# Empty compiler generated dependencies file for fig7_solver.
# This may be replaced when dependencies are built.
