# Empty compiler generated dependencies file for fig5_static.
# This may be replaced when dependencies are built.
