file(REMOVE_RECURSE
  "CMakeFiles/fig5_static.dir/fig5_static.cpp.o"
  "CMakeFiles/fig5_static.dir/fig5_static.cpp.o.d"
  "fig5_static"
  "fig5_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
