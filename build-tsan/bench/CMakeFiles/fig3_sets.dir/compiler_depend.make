# Empty compiler generated dependencies file for fig3_sets.
# This may be replaced when dependencies are built.
