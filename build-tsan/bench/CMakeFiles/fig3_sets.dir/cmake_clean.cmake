file(REMOVE_RECURSE
  "CMakeFiles/fig3_sets.dir/fig3_sets.cpp.o"
  "CMakeFiles/fig3_sets.dir/fig3_sets.cpp.o.d"
  "fig3_sets"
  "fig3_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
