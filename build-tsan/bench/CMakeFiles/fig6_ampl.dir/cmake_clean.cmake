file(REMOVE_RECURSE
  "CMakeFiles/fig6_ampl.dir/fig6_ampl.cpp.o"
  "CMakeFiles/fig6_ampl.dir/fig6_ampl.cpp.o.d"
  "fig6_ampl"
  "fig6_ampl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ampl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
