# Empty dependencies file for fig6_ampl.
# This may be replaced when dependencies are built.
