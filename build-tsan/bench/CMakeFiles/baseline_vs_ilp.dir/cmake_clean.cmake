file(REMOVE_RECURSE
  "CMakeFiles/baseline_vs_ilp.dir/baseline_vs_ilp.cpp.o"
  "CMakeFiles/baseline_vs_ilp.dir/baseline_vs_ilp.cpp.o.d"
  "baseline_vs_ilp"
  "baseline_vs_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_vs_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
