# Empty dependencies file for baseline_vs_ilp.
# This may be replaced when dependencies are built.
