# Empty dependencies file for ablation_spillfree.
# This may be replaced when dependencies are built.
