file(REMOVE_RECURSE
  "CMakeFiles/ablation_spillfree.dir/ablation_spillfree.cpp.o"
  "CMakeFiles/ablation_spillfree.dir/ablation_spillfree.cpp.o.d"
  "ablation_spillfree"
  "ablation_spillfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spillfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
