file(REMOVE_RECURSE
  "libnova_ilp.a"
)
