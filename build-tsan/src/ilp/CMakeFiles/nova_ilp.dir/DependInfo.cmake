
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/MipSolver.cpp" "src/ilp/CMakeFiles/nova_ilp.dir/MipSolver.cpp.o" "gcc" "src/ilp/CMakeFiles/nova_ilp.dir/MipSolver.cpp.o.d"
  "/root/repo/src/ilp/Model.cpp" "src/ilp/CMakeFiles/nova_ilp.dir/Model.cpp.o" "gcc" "src/ilp/CMakeFiles/nova_ilp.dir/Model.cpp.o.d"
  "/root/repo/src/ilp/Presolve.cpp" "src/ilp/CMakeFiles/nova_ilp.dir/Presolve.cpp.o" "gcc" "src/ilp/CMakeFiles/nova_ilp.dir/Presolve.cpp.o.d"
  "/root/repo/src/ilp/Simplex.cpp" "src/ilp/CMakeFiles/nova_ilp.dir/Simplex.cpp.o" "gcc" "src/ilp/CMakeFiles/nova_ilp.dir/Simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/nova_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
