# Empty dependencies file for nova_ilp.
# This may be replaced when dependencies are built.
