file(REMOVE_RECURSE
  "CMakeFiles/nova_ilp.dir/MipSolver.cpp.o"
  "CMakeFiles/nova_ilp.dir/MipSolver.cpp.o.d"
  "CMakeFiles/nova_ilp.dir/Model.cpp.o"
  "CMakeFiles/nova_ilp.dir/Model.cpp.o.d"
  "CMakeFiles/nova_ilp.dir/Presolve.cpp.o"
  "CMakeFiles/nova_ilp.dir/Presolve.cpp.o.d"
  "CMakeFiles/nova_ilp.dir/Simplex.cpp.o"
  "CMakeFiles/nova_ilp.dir/Simplex.cpp.o.d"
  "libnova_ilp.a"
  "libnova_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
