file(REMOVE_RECURSE
  "CMakeFiles/nova_apps.dir/AppSources.cpp.o"
  "CMakeFiles/nova_apps.dir/AppSources.cpp.o.d"
  "libnova_apps.a"
  "libnova_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
