# Empty dependencies file for nova_apps.
# This may be replaced when dependencies are built.
