file(REMOVE_RECURSE
  "libnova_apps.a"
)
