file(REMOVE_RECURSE
  "CMakeFiles/nova_frontend.dir/Layout.cpp.o"
  "CMakeFiles/nova_frontend.dir/Layout.cpp.o.d"
  "CMakeFiles/nova_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/nova_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/nova_frontend.dir/Parser.cpp.o"
  "CMakeFiles/nova_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/nova_frontend.dir/Sema.cpp.o"
  "CMakeFiles/nova_frontend.dir/Sema.cpp.o.d"
  "CMakeFiles/nova_frontend.dir/Types.cpp.o"
  "CMakeFiles/nova_frontend.dir/Types.cpp.o.d"
  "libnova_frontend.a"
  "libnova_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
