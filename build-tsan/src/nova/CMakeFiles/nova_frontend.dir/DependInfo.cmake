
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nova/Layout.cpp" "src/nova/CMakeFiles/nova_frontend.dir/Layout.cpp.o" "gcc" "src/nova/CMakeFiles/nova_frontend.dir/Layout.cpp.o.d"
  "/root/repo/src/nova/Lexer.cpp" "src/nova/CMakeFiles/nova_frontend.dir/Lexer.cpp.o" "gcc" "src/nova/CMakeFiles/nova_frontend.dir/Lexer.cpp.o.d"
  "/root/repo/src/nova/Parser.cpp" "src/nova/CMakeFiles/nova_frontend.dir/Parser.cpp.o" "gcc" "src/nova/CMakeFiles/nova_frontend.dir/Parser.cpp.o.d"
  "/root/repo/src/nova/Sema.cpp" "src/nova/CMakeFiles/nova_frontend.dir/Sema.cpp.o" "gcc" "src/nova/CMakeFiles/nova_frontend.dir/Sema.cpp.o.d"
  "/root/repo/src/nova/Types.cpp" "src/nova/CMakeFiles/nova_frontend.dir/Types.cpp.o" "gcc" "src/nova/CMakeFiles/nova_frontend.dir/Types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/nova_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
