file(REMOVE_RECURSE
  "libnova_frontend.a"
)
