# Empty dependencies file for nova_frontend.
# This may be replaced when dependencies are built.
