file(REMOVE_RECURSE
  "libnova_alloc.a"
)
