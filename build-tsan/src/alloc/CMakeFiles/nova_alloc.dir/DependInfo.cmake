
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/Allocated.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/Allocated.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/Allocated.cpp.o.d"
  "/root/repo/src/alloc/Allocator.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/Allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/Allocator.cpp.o.d"
  "/root/repo/src/alloc/BankAnalysis.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/BankAnalysis.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/BankAnalysis.cpp.o.d"
  "/root/repo/src/alloc/Baseline.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/Baseline.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/Baseline.cpp.o.d"
  "/root/repo/src/alloc/IlpModel.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/IlpModel.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/IlpModel.cpp.o.d"
  "/root/repo/src/alloc/Points.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/Points.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/Points.cpp.o.d"
  "/root/repo/src/alloc/Verifier.cpp" "src/alloc/CMakeFiles/nova_alloc.dir/Verifier.cpp.o" "gcc" "src/alloc/CMakeFiles/nova_alloc.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ixp/CMakeFiles/nova_ixp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ilp/CMakeFiles/nova_ilp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/nova_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cps/CMakeFiles/nova_cps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nova/CMakeFiles/nova_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
