file(REMOVE_RECURSE
  "CMakeFiles/nova_alloc.dir/Allocated.cpp.o"
  "CMakeFiles/nova_alloc.dir/Allocated.cpp.o.d"
  "CMakeFiles/nova_alloc.dir/Allocator.cpp.o"
  "CMakeFiles/nova_alloc.dir/Allocator.cpp.o.d"
  "CMakeFiles/nova_alloc.dir/BankAnalysis.cpp.o"
  "CMakeFiles/nova_alloc.dir/BankAnalysis.cpp.o.d"
  "CMakeFiles/nova_alloc.dir/Baseline.cpp.o"
  "CMakeFiles/nova_alloc.dir/Baseline.cpp.o.d"
  "CMakeFiles/nova_alloc.dir/IlpModel.cpp.o"
  "CMakeFiles/nova_alloc.dir/IlpModel.cpp.o.d"
  "CMakeFiles/nova_alloc.dir/Points.cpp.o"
  "CMakeFiles/nova_alloc.dir/Points.cpp.o.d"
  "CMakeFiles/nova_alloc.dir/Verifier.cpp.o"
  "CMakeFiles/nova_alloc.dir/Verifier.cpp.o.d"
  "libnova_alloc.a"
  "libnova_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
