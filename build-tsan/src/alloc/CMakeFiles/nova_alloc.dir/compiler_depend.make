# Empty compiler generated dependencies file for nova_alloc.
# This may be replaced when dependencies are built.
