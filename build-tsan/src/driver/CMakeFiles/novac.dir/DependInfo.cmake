
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/novac.cpp" "src/driver/CMakeFiles/novac.dir/novac.cpp.o" "gcc" "src/driver/CMakeFiles/novac.dir/novac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/driver/CMakeFiles/nova_driver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alloc/CMakeFiles/nova_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ixp/CMakeFiles/nova_ixp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ilp/CMakeFiles/nova_ilp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cps/CMakeFiles/nova_cps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nova/CMakeFiles/nova_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/nova_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
