file(REMOVE_RECURSE
  "CMakeFiles/novac.dir/novac.cpp.o"
  "CMakeFiles/novac.dir/novac.cpp.o.d"
  "novac"
  "novac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
