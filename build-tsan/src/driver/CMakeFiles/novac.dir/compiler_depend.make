# Empty compiler generated dependencies file for novac.
# This may be replaced when dependencies are built.
