file(REMOVE_RECURSE
  "CMakeFiles/nova_driver.dir/Compiler.cpp.o"
  "CMakeFiles/nova_driver.dir/Compiler.cpp.o.d"
  "libnova_driver.a"
  "libnova_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
