file(REMOVE_RECURSE
  "libnova_support.a"
)
