# Empty dependencies file for nova_support.
# This may be replaced when dependencies are built.
