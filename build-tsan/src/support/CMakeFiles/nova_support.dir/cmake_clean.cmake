file(REMOVE_RECURSE
  "CMakeFiles/nova_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/nova_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/nova_support.dir/SourceManager.cpp.o"
  "CMakeFiles/nova_support.dir/SourceManager.cpp.o.d"
  "CMakeFiles/nova_support.dir/StringUtils.cpp.o"
  "CMakeFiles/nova_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/nova_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/nova_support.dir/ThreadPool.cpp.o.d"
  "CMakeFiles/nova_support.dir/Timer.cpp.o"
  "CMakeFiles/nova_support.dir/Timer.cpp.o.d"
  "libnova_support.a"
  "libnova_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
