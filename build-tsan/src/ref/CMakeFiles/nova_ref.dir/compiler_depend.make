# Empty compiler generated dependencies file for nova_ref.
# This may be replaced when dependencies are built.
