
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/Aes.cpp" "src/ref/CMakeFiles/nova_ref.dir/Aes.cpp.o" "gcc" "src/ref/CMakeFiles/nova_ref.dir/Aes.cpp.o.d"
  "/root/repo/src/ref/Kasumi.cpp" "src/ref/CMakeFiles/nova_ref.dir/Kasumi.cpp.o" "gcc" "src/ref/CMakeFiles/nova_ref.dir/Kasumi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/nova_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
