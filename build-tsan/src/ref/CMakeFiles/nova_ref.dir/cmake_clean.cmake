file(REMOVE_RECURSE
  "CMakeFiles/nova_ref.dir/Aes.cpp.o"
  "CMakeFiles/nova_ref.dir/Aes.cpp.o.d"
  "CMakeFiles/nova_ref.dir/Kasumi.cpp.o"
  "CMakeFiles/nova_ref.dir/Kasumi.cpp.o.d"
  "libnova_ref.a"
  "libnova_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
