file(REMOVE_RECURSE
  "libnova_ref.a"
)
