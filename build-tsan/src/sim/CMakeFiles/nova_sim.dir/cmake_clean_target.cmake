file(REMOVE_RECURSE
  "libnova_sim.a"
)
