file(REMOVE_RECURSE
  "CMakeFiles/nova_sim.dir/Simulator.cpp.o"
  "CMakeFiles/nova_sim.dir/Simulator.cpp.o.d"
  "libnova_sim.a"
  "libnova_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
