# Empty dependencies file for nova_sim.
# This may be replaced when dependencies are built.
