file(REMOVE_RECURSE
  "CMakeFiles/nova_cps.dir/Convert.cpp.o"
  "CMakeFiles/nova_cps.dir/Convert.cpp.o.d"
  "CMakeFiles/nova_cps.dir/Eval.cpp.o"
  "CMakeFiles/nova_cps.dir/Eval.cpp.o.d"
  "CMakeFiles/nova_cps.dir/Ir.cpp.o"
  "CMakeFiles/nova_cps.dir/Ir.cpp.o.d"
  "CMakeFiles/nova_cps.dir/Opt.cpp.o"
  "CMakeFiles/nova_cps.dir/Opt.cpp.o.d"
  "libnova_cps.a"
  "libnova_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
