file(REMOVE_RECURSE
  "libnova_cps.a"
)
