# Empty compiler generated dependencies file for nova_cps.
# This may be replaced when dependencies are built.
