# CMake generated Testfile for 
# Source directory: /root/repo/src/cps
# Build directory: /root/repo/build-tsan/src/cps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
