file(REMOVE_RECURSE
  "CMakeFiles/nova_ixp.dir/Frequency.cpp.o"
  "CMakeFiles/nova_ixp.dir/Frequency.cpp.o.d"
  "CMakeFiles/nova_ixp.dir/ISel.cpp.o"
  "CMakeFiles/nova_ixp.dir/ISel.cpp.o.d"
  "CMakeFiles/nova_ixp.dir/Liveness.cpp.o"
  "CMakeFiles/nova_ixp.dir/Liveness.cpp.o.d"
  "CMakeFiles/nova_ixp.dir/Machine.cpp.o"
  "CMakeFiles/nova_ixp.dir/Machine.cpp.o.d"
  "CMakeFiles/nova_ixp.dir/MachineIr.cpp.o"
  "CMakeFiles/nova_ixp.dir/MachineIr.cpp.o.d"
  "libnova_ixp.a"
  "libnova_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
