
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ixp/Frequency.cpp" "src/ixp/CMakeFiles/nova_ixp.dir/Frequency.cpp.o" "gcc" "src/ixp/CMakeFiles/nova_ixp.dir/Frequency.cpp.o.d"
  "/root/repo/src/ixp/ISel.cpp" "src/ixp/CMakeFiles/nova_ixp.dir/ISel.cpp.o" "gcc" "src/ixp/CMakeFiles/nova_ixp.dir/ISel.cpp.o.d"
  "/root/repo/src/ixp/Liveness.cpp" "src/ixp/CMakeFiles/nova_ixp.dir/Liveness.cpp.o" "gcc" "src/ixp/CMakeFiles/nova_ixp.dir/Liveness.cpp.o.d"
  "/root/repo/src/ixp/Machine.cpp" "src/ixp/CMakeFiles/nova_ixp.dir/Machine.cpp.o" "gcc" "src/ixp/CMakeFiles/nova_ixp.dir/Machine.cpp.o.d"
  "/root/repo/src/ixp/MachineIr.cpp" "src/ixp/CMakeFiles/nova_ixp.dir/MachineIr.cpp.o" "gcc" "src/ixp/CMakeFiles/nova_ixp.dir/MachineIr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/cps/CMakeFiles/nova_cps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/nova_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nova/CMakeFiles/nova_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
