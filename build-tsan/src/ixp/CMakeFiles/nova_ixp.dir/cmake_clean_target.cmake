file(REMOVE_RECURSE
  "libnova_ixp.a"
)
