# Empty compiler generated dependencies file for nova_ixp.
# This may be replaced when dependencies are built.
