# Empty compiler generated dependencies file for nova_parser_test.
# This may be replaced when dependencies are built.
