file(REMOVE_RECURSE
  "CMakeFiles/nova_parser_test.dir/nova_parser_test.cpp.o"
  "CMakeFiles/nova_parser_test.dir/nova_parser_test.cpp.o.d"
  "nova_parser_test"
  "nova_parser_test.pdb"
  "nova_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
