file(REMOVE_RECURSE
  "CMakeFiles/cps_test.dir/cps_test.cpp.o"
  "CMakeFiles/cps_test.dir/cps_test.cpp.o.d"
  "cps_test"
  "cps_test.pdb"
  "cps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
