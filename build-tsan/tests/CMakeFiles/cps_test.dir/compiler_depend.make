# Empty compiler generated dependencies file for cps_test.
# This may be replaced when dependencies are built.
