file(REMOVE_RECURSE
  "CMakeFiles/ilp_mip_test.dir/ilp_mip_test.cpp.o"
  "CMakeFiles/ilp_mip_test.dir/ilp_mip_test.cpp.o.d"
  "ilp_mip_test"
  "ilp_mip_test.pdb"
  "ilp_mip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_mip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
