# Empty dependencies file for ilp_mip_test.
# This may be replaced when dependencies are built.
