file(REMOVE_RECURSE
  "CMakeFiles/nova_layout_test.dir/nova_layout_test.cpp.o"
  "CMakeFiles/nova_layout_test.dir/nova_layout_test.cpp.o.d"
  "nova_layout_test"
  "nova_layout_test.pdb"
  "nova_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
