# Empty dependencies file for nova_layout_test.
# This may be replaced when dependencies are built.
