file(REMOVE_RECURSE
  "CMakeFiles/nova_sema_test.dir/nova_sema_test.cpp.o"
  "CMakeFiles/nova_sema_test.dir/nova_sema_test.cpp.o.d"
  "nova_sema_test"
  "nova_sema_test.pdb"
  "nova_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
