# Empty compiler generated dependencies file for nova_sema_test.
# This may be replaced when dependencies are built.
