file(REMOVE_RECURSE
  "CMakeFiles/ixp_test.dir/ixp_test.cpp.o"
  "CMakeFiles/ixp_test.dir/ixp_test.cpp.o.d"
  "ixp_test"
  "ixp_test.pdb"
  "ixp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
