# Empty dependencies file for ixp_test.
# This may be replaced when dependencies are built.
