# Empty compiler generated dependencies file for nova_lexer_test.
# This may be replaced when dependencies are built.
