file(REMOVE_RECURSE
  "CMakeFiles/nova_lexer_test.dir/nova_lexer_test.cpp.o"
  "CMakeFiles/nova_lexer_test.dir/nova_lexer_test.cpp.o.d"
  "nova_lexer_test"
  "nova_lexer_test.pdb"
  "nova_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
