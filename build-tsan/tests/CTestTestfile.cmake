# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/support_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ilp_model_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ilp_simplex_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ilp_mip_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nova_lexer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nova_layout_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nova_sema_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cps_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ixp_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/alloc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ref_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/verifier_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nova_parser_test[1]_include.cmake")
add_test(apps_test "/root/repo/build-tsan/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
