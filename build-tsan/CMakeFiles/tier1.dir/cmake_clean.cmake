file(REMOVE_RECURSE
  "CMakeFiles/tier1"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/tier1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
