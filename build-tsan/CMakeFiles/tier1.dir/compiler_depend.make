# Empty custom commands generated dependencies file for tier1.
# This may be replaced when dependencies are built.
