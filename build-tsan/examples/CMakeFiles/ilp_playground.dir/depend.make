# Empty dependencies file for ilp_playground.
# This may be replaced when dependencies are built.
