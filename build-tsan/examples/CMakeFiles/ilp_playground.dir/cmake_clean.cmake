file(REMOVE_RECURSE
  "CMakeFiles/ilp_playground.dir/ilp_playground.cpp.o"
  "CMakeFiles/ilp_playground.dir/ilp_playground.cpp.o.d"
  "ilp_playground"
  "ilp_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
