# Empty dependencies file for packet_crypto.
# This may be replaced when dependencies are built.
