file(REMOVE_RECURSE
  "CMakeFiles/packet_crypto.dir/packet_crypto.cpp.o"
  "CMakeFiles/packet_crypto.dir/packet_crypto.cpp.o.d"
  "packet_crypto"
  "packet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
