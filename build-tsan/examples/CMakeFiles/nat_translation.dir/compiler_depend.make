# Empty compiler generated dependencies file for nat_translation.
# This may be replaced when dependencies are built.
