file(REMOVE_RECURSE
  "CMakeFiles/nat_translation.dir/nat_translation.cpp.o"
  "CMakeFiles/nat_translation.dir/nat_translation.cpp.o.d"
  "nat_translation"
  "nat_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
