//===- ilp_mip_test.cpp - Branch & bound tests ----------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/MipSolver.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

using namespace nova;
using namespace nova::ilp;

namespace {

/// Exhaustively minimizes a pure 0-1 model (all variables binary) by
/// enumeration; returns +inf if infeasible. Only usable for <= ~20 vars.
double bruteForce(const Model &M) {
  unsigned N = M.numVars();
  double Best = Inf;
  for (uint64_t Mask = 0; Mask < (1ull << N); ++Mask) {
    std::vector<double> X(N);
    for (unsigned J = 0; J != N; ++J)
      X[J] = (Mask >> J) & 1 ? 1.0 : 0.0;
    if (isFeasible(M, X))
      Best = std::min(Best, objectiveValue(M, X));
  }
  return Best;
}

} // namespace

TEST(MipSolver, Knapsack) {
  // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6  => minimize the negation.
  // Best: a + c (w=5, v=17) vs b + c (w=6, v=20) -> 20.
  Model M;
  VarId A = M.addBinary("a", -10.0);
  VarId B = M.addBinary("b", -13.0);
  VarId C = M.addBinary("c", -7.0);
  M.addConstraint(3.0 * LinExpr(A) + 4.0 * LinExpr(B) + 2.0 * LinExpr(C),
                  Rel::LE, 6.0);
  MipResult R = MipSolver(M).solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, -20.0, 1e-6);
  EXPECT_NEAR(R.X[B.Index], 1.0, 1e-6);
  EXPECT_NEAR(R.X[C.Index], 1.0, 1e-6);
}

TEST(MipSolver, InfeasibleModel) {
  Model M;
  VarId A = M.addBinary("a");
  VarId B = M.addBinary("b");
  M.addConstraint(LinExpr(A) + LinExpr(B), Rel::GE, 3.0);
  EXPECT_EQ(MipSolver(M).solve().Status, MipStatus::Infeasible);
}

TEST(MipSolver, EqualityPartition) {
  // Exactly one of four variables, costs 3,1,4,1 with tie — min is 1.
  Model M;
  std::vector<VarId> V;
  double Costs[] = {3, 1, 4, 1.5};
  LinExpr Sum;
  for (int I = 0; I != 4; ++I) {
    V.push_back(M.addBinary("v" + std::to_string(I), Costs[I]));
    Sum += LinExpr(V.back());
  }
  M.addConstraint(std::move(Sum), Rel::EQ, 1.0);
  MipResult R = MipSolver(M).solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, 1.0, 1e-6);
  EXPECT_NEAR(R.X[V[1].Index], 1.0, 1e-6);
}

TEST(MipSolver, AssignmentProblem) {
  // 3x3 assignment, cost matrix with known optimum 1+2+1 = 4 on the
  // permutation (0->1, 1->2, 2->0).
  double Cost[3][3] = {{9, 1, 9}, {9, 9, 2}, {1, 9, 9}};
  Model M;
  VarId X[3][3];
  for (int I = 0; I != 3; ++I)
    for (int J = 0; J != 3; ++J)
      X[I][J] = M.addBinary("x" + std::to_string(I) + std::to_string(J),
                            Cost[I][J]);
  for (int I = 0; I != 3; ++I) {
    LinExpr Row, Col;
    for (int J = 0; J != 3; ++J) {
      Row += LinExpr(X[I][J]);
      Col += LinExpr(X[J][I]);
    }
    M.addConstraint(std::move(Row), Rel::EQ, 1.0);
    M.addConstraint(std::move(Col), Rel::EQ, 1.0);
  }
  MipResult R = MipSolver(M).solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, 4.0, 1e-6);
}

TEST(MipSolver, SetCover) {
  // Universe {1..4}; sets: {1,2}(c2) {3,4}(c2) {1,2,3}(c3) {4}(c1).
  // Optimum: {1,2} + {3,4} = 4  or {1,2,3}+{4} = 4.
  Model M;
  VarId S1 = M.addBinary("s1", 2);
  VarId S2 = M.addBinary("s2", 2);
  VarId S3 = M.addBinary("s3", 3);
  VarId S4 = M.addBinary("s4", 1);
  M.addConstraint(LinExpr(S1) + LinExpr(S3), Rel::GE, 1.0); // element 1
  M.addConstraint(LinExpr(S1) + LinExpr(S3), Rel::GE, 1.0); // element 2
  M.addConstraint(LinExpr(S2) + LinExpr(S3), Rel::GE, 1.0); // element 3
  M.addConstraint(LinExpr(S2) + LinExpr(S4), Rel::GE, 1.0); // element 4
  MipResult R = MipSolver(M).solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, 4.0, 1e-6);
}

TEST(MipSolver, MixedIntegerContinuous) {
  // min -x - 10 y, x continuous in [0, 2.5], y binary, x + 4y <= 4.
  // y=1 -> x <= 0? x + 4 <= 4 -> x = 0: obj -10. y=0 -> x=2.5: obj -2.5.
  Model M;
  VarId X = M.addContinuous("x", 0.0, 2.5, -1.0);
  VarId Y = M.addBinary("y", -10.0);
  M.addConstraint(LinExpr(X) + 4.0 * LinExpr(Y), Rel::LE, 4.0);
  MipResult R = MipSolver(M).solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, -10.0, 1e-5);
  EXPECT_NEAR(R.X[Y.Index], 1.0, 1e-6);
}

TEST(MipSolver, SeededIncumbentIsUsed) {
  Model M;
  std::vector<VarId> V;
  LinExpr Sum;
  for (int I = 0; I != 6; ++I) {
    V.push_back(M.addBinary("v" + std::to_string(I), I + 1.0));
    Sum += LinExpr(V.back());
  }
  M.addConstraint(std::move(Sum), Rel::GE, 2.0);
  MipSolver Solver(M);
  // Seed with the true optimum (v0 + v1 = 3).
  std::vector<double> Seed(6, 0.0);
  Seed[0] = Seed[1] = 1.0;
  Solver.setIncumbent(Seed);
  MipResult R = Solver.solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, 3.0, 1e-6);
}

TEST(MipSolver, InfeasibleSeedIgnored) {
  Model M;
  VarId A = M.addBinary("a", 1.0);
  M.addConstraint(LinExpr(A), Rel::GE, 1.0);
  MipSolver Solver(M);
  Solver.setIncumbent({0.0}); // violates the constraint
  MipResult R = Solver.solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, 1.0, 1e-6);
}

TEST(MipSolver, PresolveOffMatchesOn) {
  Model M;
  VarId A = M.addBinary("a", -3.0);
  VarId B = M.addBinary("b", -2.0);
  VarId C = M.addBinary("c", -1.0);
  M.addConstraint(LinExpr(A) + LinExpr(B) + LinExpr(C), Rel::LE, 2.0);
  M.addConstraint(LinExpr(A), Rel::EQ, 1.0);

  MipOptions NoPresolve;
  NoPresolve.EnablePresolve = false;
  MipResult R1 = MipSolver(M).solve();
  MipResult R2 = MipSolver(M, NoPresolve).solve();
  ASSERT_EQ(R1.Status, MipStatus::Optimal);
  ASSERT_EQ(R2.Status, MipStatus::Optimal);
  EXPECT_NEAR(R1.Objective, R2.Objective, 1e-6);
  EXPECT_NEAR(R1.Objective, -5.0, 1e-6);
}

TEST(MipSolver, StatsArePopulated) {
  Model M;
  VarId A = M.addBinary("a", -1.0);
  VarId B = M.addBinary("b", -1.0);
  M.addConstraint(LinExpr(A) + LinExpr(B), Rel::LE, 1.0);
  MipResult R = MipSolver(M).solve();
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_GE(R.Stats.Nodes, 1u);
  EXPECT_GE(R.Stats.TotalSeconds, 0.0);
  EXPECT_GE(R.Stats.TotalSeconds, R.Stats.RootLpSeconds);
  // Root LP of this model is x=y=0.5 -> objective -1 (equals integer opt).
  EXPECT_NEAR(R.Stats.RootObjective, -1.0, 1e-6);
}

namespace {

/// Builds a bank-assignment-flavored model at unit-test scale: the shape
/// of the allocator's application models — "exactly one bank per item"
/// partition rows, per-bank capacity rows, pairwise conflict rows, and a
/// nonnegative move-cost objective.
Model makeAppLikeModel(unsigned Items, unsigned Banks, unsigned Conflicts,
                       uint64_t Seed) {
  Rng R(Seed);
  Model M;
  std::vector<std::vector<VarId>> X(Items);
  for (unsigned I = 0; I != Items; ++I) {
    LinExpr Sum;
    for (unsigned B = 0; B != Banks; ++B) {
      X[I].push_back(M.addBinary("x" + std::to_string(I) + "_" +
                                     std::to_string(B),
                                 static_cast<double>(R.below(9))));
      Sum += LinExpr(X[I][B]);
    }
    M.addConstraint(std::move(Sum), Rel::EQ, 1.0);
  }
  for (unsigned B = 0; B != Banks; ++B) {
    LinExpr Load;
    for (unsigned I = 0; I != Items; ++I)
      Load += LinExpr(X[I][B]);
    M.addConstraint(std::move(Load), Rel::LE,
                    1.0 + (Items + Banks - 1) / Banks);
  }
  for (unsigned C = 0; C != Conflicts; ++C) {
    unsigned I = R.below(Items), J = R.below(Items);
    if (I == J)
      continue;
    unsigned B = R.below(Banks);
    M.addConstraint(LinExpr(X[I][B]) + LinExpr(X[J][B]), Rel::LE, 1.0);
  }
  return M;
}

MipResult solveWith(const Model &M, unsigned Threads, bool Deterministic,
                    const std::vector<double> *Seed = nullptr,
                    bool Pseudocost = true) {
  MipOptions Opts;
  Opts.Threads = Threads;
  Opts.Deterministic = Deterministic;
  Opts.PseudocostBranching = Pseudocost;
  MipSolver Solver(M, Opts);
  if (Seed)
    Solver.setIncumbent(*Seed);
  return Solver.solve();
}

} // namespace

// The parallel engine is an optimization, not a semantics change: 1-thread
// and N-thread solves (both scheduling modes) must agree on the optimal
// objective on allocator-shaped models.
TEST(MipParallel, MatchesSerialOnAppLikeModels) {
  for (uint64_t Seed : {11u, 22u, 33u, 44u}) {
    Model M = makeAppLikeModel(10, 3, 12, Seed);
    MipResult Serial = solveWith(M, 1, false);
    ASSERT_EQ(Serial.Status, MipStatus::Optimal) << "seed " << Seed;
    for (unsigned Threads : {2u, 4u}) {
      MipResult Async = solveWith(M, Threads, false);
      ASSERT_EQ(Async.Status, MipStatus::Optimal)
          << "seed " << Seed << " threads " << Threads;
      EXPECT_NEAR(Async.Objective, Serial.Objective, 1e-6);
      EXPECT_TRUE(isFeasible(M, Async.X));
      MipResult Det = solveWith(M, Threads, true);
      ASSERT_EQ(Det.Status, MipStatus::Optimal);
      EXPECT_NEAR(Det.Objective, Serial.Objective, 1e-6);
    }
  }
}

TEST(MipParallel, MatchesBruteForceWithFourThreads) {
  Model M = makeAppLikeModel(5, 2, 4, 7);
  ASSERT_LE(M.numVars(), 20u);
  double Expected = bruteForce(M);
  ASSERT_TRUE(std::isfinite(Expected));
  MipResult R = solveWith(M, 4, false);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, Expected, 1e-6);
}

// Deterministic mode's contract: identical node counts (and objective)
// across repeated runs at the same thread count.
TEST(MipParallel, DeterministicModeReproducesNodeCounts) {
  Model M = makeAppLikeModel(12, 3, 16, 99);
  MipResult A = solveWith(M, 4, true);
  MipResult B = solveWith(M, 4, true);
  ASSERT_EQ(A.Status, MipStatus::Optimal);
  ASSERT_EQ(B.Status, MipStatus::Optimal);
  EXPECT_EQ(A.Stats.Nodes, B.Stats.Nodes);
  EXPECT_EQ(A.Stats.LpIterations, B.Stats.LpIterations);
  EXPECT_NEAR(A.Objective, B.Objective, 1e-12);
}

// A seeded incumbent can only tighten the cutoff: with the branching rule
// pinned (most-fractional, so decisions do not depend on pruning history),
// seeding the known optimum must not enlarge the tree.
TEST(MipParallel, SeededIncumbentPrunesNoWorse) {
  Model M = makeAppLikeModel(12, 3, 20, 5);
  MipResult Unseeded = solveWith(M, 1, false, nullptr, /*Pseudocost=*/false);
  ASSERT_EQ(Unseeded.Status, MipStatus::Optimal);
  MipResult Seeded =
      solveWith(M, 1, false, &Unseeded.X, /*Pseudocost=*/false);
  ASSERT_EQ(Seeded.Status, MipStatus::Optimal);
  EXPECT_NEAR(Seeded.Objective, Unseeded.Objective, 1e-6);
  EXPECT_LE(Seeded.Stats.Nodes, Unseeded.Stats.Nodes);
}

// Per-worker accounting must add up to the solve totals.
TEST(MipParallel, WorkerStatsAreConsistent) {
  Model M = makeAppLikeModel(10, 3, 10, 3);
  MipResult R = solveWith(M, 4, false);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  // Requested threads are clamped to the hardware concurrency, so the
  // effective worker count depends on the machine running the test.
  unsigned Expected =
      std::max(1u, std::min(4u, std::thread::hardware_concurrency()));
  EXPECT_EQ(R.Stats.Threads, Expected);
  ASSERT_EQ(R.Stats.Workers.size(), Expected);
  unsigned Nodes = 0, Steals = 0;
  for (const MipWorkerStats &W : R.Stats.Workers) {
    Nodes += W.Nodes;
    Steals += W.Steals;
  }
  EXPECT_EQ(Nodes, R.Stats.Nodes);
  EXPECT_EQ(Steals, R.Stats.Steals);
  EXPECT_GE(R.Stats.CpuSeconds, 0.0);
}

// Property test: random 0-1 programs vs exhaustive enumeration.
class MipRandom : public ::testing::TestWithParam<int> {};

TEST_P(MipRandom, MatchesBruteForce) {
  Rng R(GetParam() * 104729 + 17);
  unsigned NumVars = 3 + R.below(10); // <= 12 for fast enumeration
  unsigned NumRows = 1 + R.below(6);

  Model M;
  std::vector<VarId> Vars;
  for (unsigned J = 0; J != NumVars; ++J)
    Vars.push_back(
        M.addBinary("v" + std::to_string(J), R.range(-6, 6)));
  for (unsigned I = 0; I != NumRows; ++I) {
    LinExpr E;
    unsigned Nz = 0;
    for (unsigned J = 0; J != NumVars; ++J)
      if (R.chance(1, 2)) {
        E.add(Vars[J], static_cast<double>(R.range(-3, 3)));
        ++Nz;
      }
    if (Nz == 0)
      continue;
    int Kind = static_cast<int>(R.below(3));
    Rel Relation = Kind == 0 ? Rel::LE : Kind == 1 ? Rel::GE : Rel::EQ;
    M.addConstraint(std::move(E), Relation,
                    static_cast<double>(R.range(-2, 4)));
  }

  double Expected = bruteForce(M);
  MipResult Res = MipSolver(M).solve();
  if (!std::isfinite(Expected)) {
    EXPECT_EQ(Res.Status, MipStatus::Infeasible);
    return;
  }
  ASSERT_EQ(Res.Status, MipStatus::Optimal)
      << "expected optimum " << Expected;
  EXPECT_NEAR(Res.Objective, Expected, 1e-5);
  EXPECT_TRUE(isFeasible(M, Res.X));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandom, ::testing::Range(0, 60));
