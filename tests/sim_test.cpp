//===- sim_test.cpp - Micro-engine simulator tests -------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

AllocInstr imm(uint32_t V, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::Imm;
  I.Imm = V;
  I.Dsts = {Dst};
  return I;
}

AllocInstr haltOf(std::vector<AOperand> Srcs) {
  AllocInstr I;
  I.Op = MOp::Halt;
  I.Srcs = std::move(Srcs);
  return I;
}

} // namespace

TEST(AllocatedSim, AluAndMoveSemantics) {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2; // A0, A1
  AllocInstr Add;
  Add.Op = MOp::Alu;
  Add.Alu = cps::PrimOp::Add;
  Add.Srcs = {AOperand::reg({Bank::A, 0}), AOperand::reg({Bank::B, 0})};
  Add.Dsts = {{Bank::S, 1}};
  AllocInstr Mv;
  Mv.Op = MOp::Move;
  Mv.Srcs = {AOperand::reg({Bank::A, 1})};
  Mv.Dsts = {{Bank::B, 0}};
  P.Blocks.push_back(
      {{Mv, Add, haltOf({AOperand::reg({Bank::A, 0})})}});

  sim::Memory Mem;
  // Note B0 is read by Add after Mv wrote A1's value into it.
  sim::RunResult R = sim::runAllocated(P, {7, 35}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues[0], 7u);
  EXPECT_EQ(R.Instructions, 3u);
}

TEST(AllocatedSim, CycleAccounting) {
  // imm(small) = 1 cycle, imm(large) = 2, sram write = 20, halt = 0.
  AllocatedProgram P;
  P.Entry = 0;
  AllocInstr Wr;
  Wr.Op = MOp::MemWrite;
  Wr.Space = MemSpace::Sram;
  Wr.Srcs = {AOperand::reg({Bank::A, 0}), AOperand::reg({Bank::S, 0})};
  AllocInstr MvS;
  MvS.Op = MOp::Move;
  MvS.Srcs = {AOperand::reg({Bank::A, 1})};
  MvS.Dsts = {{Bank::S, 0}};
  P.Blocks.push_back({{imm(5, {Bank::A, 0}), imm(0x12345678, {Bank::A, 1}),
                       MvS, Wr, haltOf({})}});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  // 1 (imm small) + 2 (imm large) + 1 (move) + 20 (sram store).
  EXPECT_EQ(R.Cycles, 24u);
  EXPECT_EQ(Mem.Sram[5], 0x12345678u);
}

TEST(AllocatedSim, LatencyModelSelectsMemoryCosts) {
  sim::LatencyModel L;
  EXPECT_EQ(L.memAccess(MemSpace::Sram), 20u);
  EXPECT_EQ(L.memAccess(MemSpace::Sdram), 33u);
  EXPECT_EQ(L.memAccess(MemSpace::Scratch), 12u);
}

TEST(AllocatedSim, ScratchSpillRoundTrip) {
  // Store A0 via S0 into scratch slot, wipe, reload through L2.
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 1;
  AllocInstr ToS;
  ToS.Op = MOp::Move;
  ToS.Srcs = {AOperand::reg({Bank::A, 0})};
  ToS.Dsts = {{Bank::S, 0}};
  AllocInstr Spill;
  Spill.Op = MOp::MemWrite;
  Spill.Space = MemSpace::Scratch;
  Spill.Srcs = {AOperand::constant(0x8000), AOperand::reg({Bank::S, 0})};
  AllocInstr Wipe = imm(0, {Bank::A, 0});
  AllocInstr Reload;
  Reload.Op = MOp::MemRead;
  Reload.Space = MemSpace::Scratch;
  Reload.Srcs = {AOperand::constant(0x8000)};
  Reload.Dsts = {{Bank::L, 2}};
  P.Blocks.push_back({{ToS, Spill, Wipe, Reload,
                       haltOf({AOperand::reg({Bank::L, 2})})}});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {0xABCD}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues[0], 0xABCDu);
}

TEST(AllocatedSim, TooManyArgsRejected) {
  AllocatedProgram P;
  P.Entry = 0;
  P.Blocks.push_back({{haltOf({})}});
  sim::Memory Mem;
  std::vector<uint32_t> Args(16, 0);
  EXPECT_FALSE(sim::runAllocated(P, Args, Mem).Ok);
}

TEST(AllocatedSim, InfiniteLoopHitsLimit) {
  AllocatedProgram P;
  P.Entry = 0;
  AllocInstr J;
  J.Op = MOp::Jump;
  J.Target = 0;
  P.Blocks.push_back({{J}});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {}, Mem, {}, 1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap, sim::TrapKind::Watchdog);
  EXPECT_EQ(R.Error.code(), StatusCode::SimTrap);
  EXPECT_NE(R.Error.message().find("budget"), std::string::npos);
}

TEST(Throughput, MbpsArithmetic) {
  // 16 bytes in 128 cycles at 233 MHz: 233e6/128 packets/s * 128 bits.
  double Mbps = sim::throughputMbps(16, 128.0);
  EXPECT_NEAR(Mbps, 233e6 / 128.0 * 128.0 / 1e6, 1e-6);
  EXPECT_EQ(sim::throughputMbps(16, 0.0), 0.0);
  // Double the cycles, half the throughput.
  EXPECT_NEAR(sim::throughputMbps(16, 256.0) * 2, Mbps, 1e-9);
}

TEST(FunctionalSim, ArgumentCountChecked) {
  ixp::MachineProgram M;
  M.Entry = 0;
  M.Blocks.push_back({});
  M.Blocks[0].Id = 0;
  ixp::MachineInstr H;
  H.Op = MOp::Halt;
  M.Blocks[0].Instrs.push_back(H);
  M.EntryParams = {M.newTemp("a")};
  sim::Memory Mem;
  EXPECT_FALSE(sim::runFunctional(M, {}, Mem).Ok);
  EXPECT_TRUE(sim::runFunctional(M, {1}, Mem).Ok);
}
