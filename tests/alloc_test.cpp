//===- alloc_test.cpp - ILP allocator end-to-end tests --------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Every test compiles Nova source through the full pipeline, then checks:
//  (a) the allocated program passes the static legality verifier;
//  (b) executing it on the bank-level simulator produces the same halt
//      values and memory as the CPS oracle;
//  (c) model- or solution-level properties the paper promises.
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"
#include "cps/Eval.h"
#include "driver/Compiler.h"
#include "sim/Simulator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace nova;
using namespace nova::alloc;

namespace {

/// Compiles + allocates, verifying and cross-checking execution.
std::unique_ptr<driver::CompileResult>
compileAndCheck(const std::string &Source,
                const std::vector<uint32_t> &Args,
                cps::EvalMemory InitMem = {},
                driver::CompileOptions Opts = {}) {
  auto R = driver::compileNova(Source, "test.nova", Opts);
  EXPECT_TRUE(R->Ok) << R->ErrorText;
  if (!R->Ok)
    return R;

  // Static legality.
  std::vector<std::string> Violations = verifyAllocated(R->Alloc.Prog);
  EXPECT_TRUE(Violations.empty())
      << Violations.front() << "\n"
      << R->Alloc.Prog.print();

  // Oracle.
  cps::EvalMemory OracleMem = InitMem;
  cps::EvalResult Oracle = cps::evaluate(R->Cps, Args, OracleMem);
  EXPECT_TRUE(Oracle.Ok) << Oracle.Error;

  // Bank-level execution.
  sim::Memory Mem;
  Mem.Sram = InitMem.Sram;
  Mem.Sdram = InitMem.Sdram;
  Mem.Scratch = InitMem.Scratch;
  sim::RunResult Run = sim::runAllocated(R->Alloc.Prog, Args, Mem);
  EXPECT_TRUE(Run.Ok) << Run.Error << "\n" << R->Alloc.Prog.print();
  if (Oracle.Ok && Run.Ok) {
    EXPECT_EQ(Run.HaltValues, Oracle.HaltValues)
        << R->Alloc.Prog.print();
    EXPECT_EQ(Mem.Sram, OracleMem.Sram);
    EXPECT_EQ(Mem.Sdram, OracleMem.Sdram);
    // The allocator may spill into high scratch; compare only the
    // addresses the oracle knows about.
    for (auto &[Addr, Val] : OracleMem.Scratch)
      EXPECT_EQ(Mem.Scratch[Addr], Val) << "scratch[" << Addr << "]";
  }
  return R;
}

} // namespace

TEST(Allocator, StraightLineArith) {
  auto R = compileAndCheck("fun main(x : word, y : word) {"
                           "  (x + y) ^ (x - y)"
                           "}",
                           {100, 42});
  EXPECT_EQ(R->Alloc.Stats.Spills, 0u);
}

TEST(Allocator, Figure3Program) {
  // The paper's running example (Figure 3): two reads, two ALU ops, two
  // writes with interleaved operands.
  cps::EvalMemory Mem;
  for (uint32_t I = 0; I != 4; ++I)
    Mem.Sram[100 + I] = I + 1;
  for (uint32_t I = 0; I != 6; ++I)
    Mem.Sram[200 + I] = 10 * (I + 1);
  auto R = compileAndCheck("fun main(z : word) {"
                           "  let (a, b, c, d) = sram(100);"
                           "  let (e, f, g, h, i, j) = sram(200);"
                           "  let u = a + c;"
                           "  let v = g + h;"
                           "  sram(300) <- (b, e, v, u);"
                           "  sram(500) <- (f, j, d, i);"
                           "  u + v"
                           "}",
                           {0}, Mem);
  ASSERT_TRUE(R->Ok);
  // Zero spills, like every program in the paper's Figure 7.
  EXPECT_EQ(R->Alloc.Stats.Spills, 0u);
  // Both reads fill L with 4 and 6 registers: some values must be moved
  // out of the transfer bank to make room (paper Section 9's example).
  EXPECT_GT(R->Alloc.Stats.Moves, 0u);
  // Figure 6 style statistics.
  EXPECT_EQ(R->Alloc.Stats.Build.Aggregates.DefL, 10u);
  EXPECT_EQ(R->Alloc.Stats.Build.Aggregates.UseS, 8u);
}

TEST(Allocator, TransferBankOverflowForcesEviction) {
  // 8 values loaded, all still needed after a second 4-word read: the L
  // bank (8 regs) cannot hold 12 values.
  cps::EvalMemory Mem;
  for (uint32_t I = 0; I != 12; ++I)
    Mem.Sram[I] = I * 7 + 1;
  auto R = compileAndCheck(
      "fun main(z : word) {"
      "  let (a, b, c, d, e, f, g, h) = sram(0);"
      "  let (p, q, r, s) = sram(8);"
      "  ((a + p) ^ (b + q)) + ((c + r) ^ (d + s)) + (e + f) + (g + h)"
      "}",
      {0}, Mem);
  ASSERT_TRUE(R->Ok);
  EXPECT_GT(R->Alloc.Stats.Moves, 0u);
}

TEST(Allocator, LoopAllocation) {
  auto R = compileAndCheck("fun main(n : word) {"
                           "  let i = 0;"
                           "  let sum = 0;"
                           "  while (i < n) {"
                           "    sum = sum + i;"
                           "    i = i + 1;"
                           "  }"
                           "  sum"
                           "}",
                           {25});
  ASSERT_TRUE(R->Ok);
  EXPECT_EQ(R->Alloc.Stats.Spills, 0u);
}

TEST(Allocator, StoreCloningSatisfiesConflictingPositions) {
  // x appears at two different store positions and in arithmetic — the
  // paper's Section 2.1 conflict, resolved by cloning.
  cps::EvalMemory Mem;
  auto R = compileAndCheck("fun main(a : word, x : word) {"
                           "  sram(a) <- (1, x, 3, 4);"
                           "  sram(a + 8) <- (x, 2, 3, 4);"
                           "  x + 1"
                           "}",
                           {64, 9}, Mem);
  ASSERT_TRUE(R->Ok);
}

TEST(Allocator, SsaAvoidsReadPositionConflicts) {
  // Paper Section 9 item 3: (a,b,X,Y) = sram(..); (Y,X,u,v) = sram(..)
  // would be unsolvable, but SSA means the second read defines fresh
  // names. This is the closest legal Nova program.
  cps::EvalMemory Mem;
  for (uint32_t I = 0; I != 8; ++I)
    Mem.Sram[I] = I + 100;
  auto R = compileAndCheck("fun main(z : word) {"
                           "  let (a, b, x1, y1) = sram(0);"
                           "  let (y2, x2, u, v) = sram(4);"
                           "  (x1 + y2) ^ (y1 + x2) ^ (a + u) ^ (b + v)"
                           "}",
                           {0}, Mem);
  ASSERT_TRUE(R->Ok);
}

TEST(Allocator, HashSameRegister) {
  auto R = compileAndCheck("fun main(k : word) {"
                           "  let h = hash(k);"
                           "  h & 0xFFFF"
                           "}",
                           {0xDEAD});
  ASSERT_TRUE(R->Ok);
  // Find the hash instruction and check SameReg held (the verifier did
  // too; this is belt and braces on the printed form).
  bool Found = false;
  for (const AllocBlock &B : R->Alloc.Prog.Blocks)
    for (const AllocInstr &I : B.Instrs)
      if (I.Op == ixp::MOp::Hash) {
        Found = true;
        EXPECT_EQ(I.Dsts[0].B, ixp::Bank::L);
        EXPECT_EQ(I.Srcs[0].Loc.B, ixp::Bank::S);
        EXPECT_EQ(I.Dsts[0].Reg, I.Srcs[0].Loc.Reg);
      }
  EXPECT_TRUE(Found);
}

TEST(Allocator, BitTestSetSameRegister) {
  cps::EvalMemory Mem;
  Mem.Sram[5] = 0b1100;
  auto R = compileAndCheck("fun main(a : word, v : word) {"
                           "  let old = sram_bit_test_set(a, v);"
                           "  old"
                           "}",
                           {5, 0b0011}, Mem);
  ASSERT_TRUE(R->Ok);
}

TEST(Allocator, SdramUsesLdAndSd) {
  cps::EvalMemory Mem;
  Mem.Sdram[16] = 0xAAAA;
  Mem.Sdram[17] = 0xBBBB;
  auto R = compileAndCheck("fun main(z : word) {"
                           "  let (x, y) = sdram(16);"
                           "  sdram(32) <- (y, x);"
                           "  x ^ y"
                           "}",
                           {0}, Mem);
  ASSERT_TRUE(R->Ok);
  bool SawLd = false, SawSd = false;
  for (const AllocBlock &B : R->Alloc.Prog.Blocks)
    for (const AllocInstr &I : B.Instrs) {
      if (I.Op == ixp::MOp::MemRead && I.Space == MemSpace::Sdram)
        for (const PhysLoc &D : I.Dsts)
          SawLd |= D.B == ixp::Bank::LD;
      if (I.Op == ixp::MOp::MemWrite && I.Space == MemSpace::Sdram)
        for (unsigned K = 1; K != I.Srcs.size(); ++K)
          SawSd |= I.Srcs[K].Loc.B == ixp::Bank::SD;
    }
  EXPECT_TRUE(SawLd);
  EXPECT_TRUE(SawSd);
}

TEST(Allocator, PackedHeaderPipeline) {
  cps::EvalMemory Mem;
  Mem.Sram[0] = 0x45001234;
  Mem.Sram[1] = 0xBEEF4000;
  auto R = compileAndCheck(
      "layout hdr = { ver : 4, ihl : 4, tos : 8, len : 16,"
      "               id : 16, flags : 3, frag : 13 };"
      "fun main(base : word) {"
      "  let (w0, w1) = sram(base);"
      "  let h = unpack[hdr]((w0, w1));"
      "  let out = pack[hdr] [ ver = h.ver, ihl = h.ihl, tos = 0,"
      "                        len = h.len + 8, id = h.id,"
      "                        flags = h.flags, frag = h.frag ];"
      "  sram(base + 16) <- (out.0, out.1);"
      "  h.len"
      "}",
      {0}, Mem);
  ASSERT_TRUE(R->Ok);
  EXPECT_EQ(R->Alloc.Stats.Spills, 0u);
}

TEST(Allocator, BranchyProgram) {
  const char *Src = "fun main(x : word, y : word) {"
                    "  let (a, b) = sram(0);"
                    "  let r = 0;"
                    "  if (x > y) {"
                    "    r = a + x;"
                    "  } else {"
                    "    if (x == 0) { r = b; } else { r = y - x; }"
                    "  }"
                    "  sram(8) <- (r, r + 1);"
                    "  r"
                    "}";
  cps::EvalMemory Mem;
  Mem.Sram[0] = 1000;
  Mem.Sram[1] = 2000;
  compileAndCheck(Src, {5, 9}, Mem);
  compileAndCheck(Src, {9, 5}, Mem);
  compileAndCheck(Src, {0, 5}, Mem);
}

TEST(Allocator, ObjectivePrefersCheapMoves) {
  // The solve must report a finite objective consistent with the move
  // count (every move costs >= mvC).
  auto R = compileAndCheck("fun main(z : word) {"
                           "  let (a, b, c, d, e, f, g, h) = sram(0);"
                           "  let (p, q, r, s) = sram(8);"
                           "  (a+p) + (b+q) + (c+r) + (d+s) + e + f + g + h"
                           "}",
                           {0});
  ASSERT_TRUE(R->Ok);
  EXPECT_GE(R->Alloc.Stats.Objective,
            1.0 * R->Alloc.Stats.Moves - 1e-6);
}

TEST(Allocator, MoveInstructionOverheadIsTracked) {
  auto R = compileAndCheck("fun main(z : word) {"
                           "  let (a, b, c, d, e, f, g, h) = sram(0);"
                           "  let (p, q, r, s) = sram(8);"
                           "  (a+p) ^ (b+q) ^ (c+r) ^ (d+s) ^ e ^ f ^ g ^ h"
                           "}",
                           {0});
  ASSERT_TRUE(R->Ok);
  EXPECT_GE(R->Alloc.Prog.numInserted(), R->Alloc.Stats.Moves);
}

TEST(Allocator, ModelStatsPopulated) {
  auto R = compileAndCheck("fun main(x : word) {"
                           "  let (a, b) = sram(x);"
                           "  a + b"
                           "}",
                           {50});
  ASSERT_TRUE(R->Ok);
  const AllocStats &S = R->Alloc.Stats;
  EXPECT_GT(S.Build.NumPoints, 0u);
  EXPECT_GT(S.Build.ExistsSize, 0u);
  EXPECT_GT(S.Build.NumSegments, 0u);
  EXPECT_GT(S.IlpSize.NumVariables, 0u);
  EXPECT_GT(S.IlpSize.NumConstraints, 0u);
  EXPECT_GT(S.Build.RawVariables, S.IlpSize.NumVariables);
  EXPECT_GE(S.Solve.TotalSeconds, S.Solve.RootLpSeconds);
}

//===----------------------------------------------------------------------===//
// Randomized end-to-end property: allocated code == oracle
//===----------------------------------------------------------------------===//

class AllocRandom : public ::testing::TestWithParam<int> {};

TEST_P(AllocRandom, AllocatedCodeMatchesOracle) {
  Rng R(GetParam() * 6007 + 13);
  std::string Src = "fun main(a : word, b : word) {\n";
  std::vector<std::string> Vars = {"a", "b"};
  unsigned ReadBase = 0, WriteBase = 400;
  cps::EvalMemory Mem;
  for (uint32_t I = 0; I != 64; ++I)
    Mem.Sram[I] = static_cast<uint32_t>(R.next());

  for (int I = 0; I != 8; ++I) {
    switch (R.below(4)) {
    case 0: { // aggregate read
      unsigned N = 1 + R.below(4);
      Src += "  let (";
      for (unsigned K = 0; K != N; ++K) {
        std::string V = "r" + std::to_string(I) + "_" + std::to_string(K);
        Src += (K ? ", " : "") + V;
        Vars.push_back(V);
      }
      Src += ") = sram(" + std::to_string(ReadBase) + ");\n";
      ReadBase += N;
      break;
    }
    case 1: { // aggregate write
      unsigned N = 1 + R.below(3);
      Src += "  sram(" + std::to_string(WriteBase) + ") <- (";
      for (unsigned K = 0; K != N; ++K)
        Src += (K ? ", " : "") + Vars[R.below(Vars.size())];
      Src += ");\n";
      WriteBase += N + 1;
      break;
    }
    case 2: { // arithmetic
      std::string V = "t" + std::to_string(I);
      const char *Ops[] = {"+", "-", "&", "|", "^"};
      Src += "  let " + V + " = " + Vars[R.below(Vars.size())] + " " +
             Ops[R.below(5)] + " " + Vars[R.below(Vars.size())] + ";\n";
      Vars.push_back(V);
      break;
    }
    case 3: { // conditional
      std::string V = "c" + std::to_string(I);
      Src += "  let " + V + " = if (" + Vars[R.below(Vars.size())] +
             " > " + Vars[R.below(Vars.size())] + ") " +
             Vars[R.below(Vars.size())] + " else " +
             Vars[R.below(Vars.size())] + ";\n";
      Vars.push_back(V);
      break;
    }
    }
  }
  Src += "  " + Vars.back() + "\n}\n";

  std::vector<uint32_t> Args = {static_cast<uint32_t>(R.next()),
                                static_cast<uint32_t>(R.next())};
  compileAndCheck(Src, Args, Mem);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocRandom, ::testing::Range(0, 25));

//===----------------------------------------------------------------------===//
// Memory-home baseline allocator
//===----------------------------------------------------------------------===//

#include "alloc/Baseline.h"

namespace {

/// Compiles without ILP allocation and runs the baseline allocator,
/// checking legality and oracle agreement.
void checkBaseline(const std::string &Source,
                   const std::vector<uint32_t> &Args,
                   cps::EvalMemory InitMem = {}) {
  driver::CompileOptions Opts;
  Opts.Allocate = false;
  auto R = driver::compileNova(Source, "base.nova", Opts);
  ASSERT_TRUE(R->Ok) << R->ErrorText;

  BaselineResult B = allocateBaseline(R->Machine);
  ASSERT_TRUE(B.Ok) << B.Error;
  std::vector<std::string> V = verifyAllocated(B.Prog);
  ASSERT_TRUE(V.empty()) << V.front() << "\n" << B.Prog.print();

  cps::EvalMemory OracleMem = InitMem;
  cps::EvalResult Oracle = cps::evaluate(R->Cps, Args, OracleMem);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;

  sim::Memory Mem;
  Mem.Sram = InitMem.Sram;
  Mem.Sdram = InitMem.Sdram;
  Mem.Scratch = InitMem.Scratch;
  sim::RunResult Run = sim::runAllocated(B.Prog, Args, Mem);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.HaltValues, Oracle.HaltValues) << B.Prog.print();
  EXPECT_EQ(Mem.Sram, OracleMem.Sram);
  EXPECT_EQ(Mem.Sdram, OracleMem.Sdram);
}

} // namespace

TEST(Baseline, StraightLine) {
  checkBaseline("fun main(x : word, y : word) { (x + y) ^ (x - y) }",
                {100, 42});
}

TEST(Baseline, AggregatesAndLoops) {
  cps::EvalMemory Mem;
  for (uint32_t I = 0; I != 8; ++I)
    Mem.Sram[I] = I * 3 + 1;
  checkBaseline("fun main(n : word) {"
                "  let (a, b, c, d) = sram(0);"
                "  let s = 0;"
                "  let i = 0;"
                "  while (i < n) { s = s + a + d; i = i + 1; }"
                "  sram(16) <- (s, b, c, s);"
                "  s"
                "}",
                {5}, Mem);
}

TEST(Baseline, HashBtsAndClones) {
  cps::EvalMemory Mem;
  Mem.Sram[9] = 4;
  checkBaseline("fun main(a : word, x : word) {"
                "  let h = hash(x);"
                "  let old = sram_bit_test_set(a, h & 0xF);"
                "  sram(20) <- (x, old, x, h);"
                "  old ^ h"
                "}",
                {9, 77}, Mem);
}

TEST(Baseline, CostsFarMoreThanIlp) {
  const char *Src = "fun main(z : word) {"
                    "  let (a, b, c, d) = sram(0);"
                    "  sram(8) <- (d, c, b, a);"
                    "  a + d"
                    "}";
  auto Ilp = driver::compileNova(Src, "x.nova");
  ASSERT_TRUE(Ilp->Ok) << Ilp->ErrorText;
  BaselineResult B = allocateBaseline(Ilp->Machine);
  ASSERT_TRUE(B.Ok);
  sim::Memory M1, M2;
  for (uint32_t I = 0; I != 4; ++I)
    M1.Sram[I] = M2.Sram[I] = I + 1;
  sim::RunResult R1 = sim::runAllocated(Ilp->Alloc.Prog, {0}, M1);
  sim::RunResult R2 = sim::runAllocated(B.Prog, {0}, M2);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.HaltValues, R2.HaltValues);
  EXPECT_GT(R2.Cycles, 2 * R1.Cycles); // the paper's "nearly intolerable"
}
