//===- ilp_model_test.cpp - Model, LinExpr, and presolve tests -----------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Model.h"
#include "ilp/Presolve.h"

#include <gtest/gtest.h>

using namespace nova::ilp;

TEST(LinExpr, NormalizeMergesDuplicates) {
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  LinExpr E;
  E.add(X, 1.0);
  E.add(Y, 2.0);
  E.add(X, 3.0);
  E.add(Y, -2.0); // cancels
  E.normalize();
  ASSERT_EQ(E.terms().size(), 1u);
  EXPECT_EQ(E.terms()[0].Var, X);
  EXPECT_DOUBLE_EQ(E.terms()[0].Coeff, 4.0);
}

TEST(LinExpr, OperatorAlgebra) {
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  LinExpr E = 2.0 * LinExpr(X) + LinExpr(Y) - 1.0;
  E.normalize();
  EXPECT_EQ(E.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(E.constant(), -1.0);
}

TEST(Model, ConstantFoldsIntoRhs) {
  Model M;
  VarId X = M.addBinary("x");
  M.addConstraint(LinExpr(X) + 3.0, Rel::LE, 5.0);
  ASSERT_EQ(M.numConstraints(), 1u);
  EXPECT_DOUBLE_EQ(M.constraints()[0].Rhs, 2.0);
}

TEST(Model, StatsCountObjectiveTerms) {
  Model M;
  VarId X = M.addBinary("x", 1.0);
  VarId Y = M.addBinary("y");
  M.addBinary("z", 2.0);
  M.addObjective(LinExpr(Y) * 0.5);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 1);
  ModelStats S = M.stats();
  EXPECT_EQ(S.NumVariables, 3u);
  EXPECT_EQ(S.NumConstraints, 1u);
  EXPECT_EQ(S.NumObjectiveTerms, 3u);
  EXPECT_EQ(S.NumNonzeros, 2u);
}

TEST(Model, LpStringMentionsPieces) {
  Model M;
  VarId X = M.addBinary("move_p1", 1.5);
  M.addConstraint(LinExpr(X), Rel::EQ, 1.0, "onehot");
  std::string S = M.toLpString();
  EXPECT_NE(S.find("Minimize"), std::string::npos);
  EXPECT_NE(S.find("move_p1"), std::string::npos);
  EXPECT_NE(S.find("onehot"), std::string::npos);
  EXPECT_NE(S.find("Binaries"), std::string::npos);
}

TEST(Model, FixTightensBothBounds) {
  Model M;
  VarId X = M.addBinary("x");
  M.fix(X, 1.0);
  EXPECT_DOUBLE_EQ(M.var(X).Lower, 1.0);
  EXPECT_DOUBLE_EQ(M.var(X).Upper, 1.0);
}

//===----------------------------------------------------------------------===//
// Presolve
//===----------------------------------------------------------------------===//

TEST(Presolve, SingletonEqualityFixes) {
  Model M;
  VarId X = M.addBinary("x", 5.0);
  VarId Y = M.addBinary("y", 1.0);
  M.addConstraint(LinExpr(X), Rel::EQ, 1.0);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 1.0);

  PresolveResult P = presolve(M);
  EXPECT_FALSE(P.Infeasible);
  // x fixed to 1, which forces y to 0 through the second row.
  EXPECT_EQ(P.NumFixed, 2u);
  EXPECT_EQ(P.Reduced.numVars(), 0u);
  EXPECT_DOUBLE_EQ(P.FixedValue[X.Index], 1.0);
  EXPECT_DOUBLE_EQ(P.FixedValue[Y.Index], 0.0);
  EXPECT_DOUBLE_EQ(P.FixedObjective, 5.0);
}

TEST(Presolve, DetectsInfeasible) {
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::GE, 3.0);
  PresolveResult P = presolve(M);
  EXPECT_TRUE(P.Infeasible);
}

TEST(Presolve, DropsRedundantRows) {
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 5.0); // always true
  PresolveResult P = presolve(M);
  EXPECT_FALSE(P.Infeasible);
  EXPECT_EQ(P.Reduced.numConstraints(), 0u);
  EXPECT_GE(P.NumDroppedConstraints, 1u);
}

TEST(Presolve, ForcingRowFixesAll) {
  // x + y >= 2 with binaries forces both to 1.
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::GE, 2.0);
  PresolveResult P = presolve(M);
  EXPECT_FALSE(P.Infeasible);
  EXPECT_DOUBLE_EQ(P.FixedValue[X.Index], 1.0);
  EXPECT_DOUBLE_EQ(P.FixedValue[Y.Index], 1.0);
}

TEST(Presolve, LiftAndReduceRoundTrip) {
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  VarId Z = M.addBinary("z");
  M.addConstraint(LinExpr(X), Rel::EQ, 1.0); // fixes x
  M.addConstraint(LinExpr(Y) + LinExpr(Z), Rel::LE, 1.0);
  PresolveResult P = presolve(M);
  ASSERT_FALSE(P.Infeasible);
  ASSERT_EQ(P.Reduced.numVars(), 2u);

  std::vector<double> Orig = {1.0, 0.0, 1.0};
  std::vector<double> Red;
  ASSERT_TRUE(P.reduceSolution(Orig, Red));
  std::vector<double> Back = P.liftSolution(Red);
  EXPECT_EQ(Back, Orig);

  // A point contradicting the fixing is rejected.
  std::vector<double> Bad = {0.0, 0.0, 1.0};
  EXPECT_FALSE(P.reduceSolution(Bad, Red));
}

TEST(Presolve, PropagationCascades) {
  // Chain: x1 = 1; x1 <= x2 (as x1 - x2 <= 0); x2 <= x3. All become 1.
  Model M;
  VarId X1 = M.addBinary("x1");
  VarId X2 = M.addBinary("x2");
  VarId X3 = M.addBinary("x3");
  M.addConstraint(LinExpr(X1), Rel::GE, 1.0);
  M.addConstraint(LinExpr(X1) - LinExpr(X2), Rel::LE, 0.0);
  M.addConstraint(LinExpr(X2) - LinExpr(X3), Rel::LE, 0.0);
  PresolveResult P = presolve(M);
  EXPECT_FALSE(P.Infeasible);
  EXPECT_EQ(P.NumFixed, 3u);
  EXPECT_DOUBLE_EQ(P.FixedValue[X3.Index], 1.0);
}

TEST(FeasibilityCheck, RespectsRelationsAndIntegrality) {
  Model M;
  VarId X = M.addBinary("x");
  VarId Y = M.addContinuous("y", 0.0, 2.0);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::GE, 1.5);

  EXPECT_TRUE(isFeasible(M, {1.0, 0.5}));
  EXPECT_FALSE(isFeasible(M, {0.5, 1.0}));  // fractional binary
  EXPECT_FALSE(isFeasible(M, {1.0, 0.2}));  // violates GE
  EXPECT_FALSE(isFeasible(M, {1.0, 3.0}));  // bound violation
  EXPECT_FALSE(isFeasible(M, {1.0}));       // wrong dimension
}

TEST(ObjectiveValue, IncludesConstant) {
  Model M;
  VarId X = M.addBinary("x", 2.0);
  M.addObjective(LinExpr(X) * 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(objectiveValue(M, {1.0}), 13.0);
  EXPECT_DOUBLE_EQ(objectiveValue(M, {0.0}), 10.0);
}
