//===- ref_test.cpp - Reference crypto tests ------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ref/Aes.h"
#include "ref/Checksum.h"
#include "ref/Kasumi.h"

#include <gtest/gtest.h>

using namespace nova::ref;

TEST(Aes, Fips197KnownAnswer) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
  Aes128 Aes({0x00010203, 0x04050607, 0x08090A0B, 0x0C0D0E0F});
  auto Ct = Aes.encrypt({0x00112233, 0x44556677, 0x8899AABB, 0xCCDDEEFF});
  EXPECT_EQ(Ct[0], 0x69C4E0D8u);
  EXPECT_EQ(Ct[1], 0x6A7B0430u);
  EXPECT_EQ(Ct[2], 0xD8CDB780u);
  EXPECT_EQ(Ct[3], 0x70B4C55Au);
}

TEST(Aes, SboxIsAPermutationWithKnownAnchors) {
  const auto &S = Aes128::sbox();
  std::array<bool, 256> Seen{};
  for (unsigned I = 0; I != 256; ++I) {
    ASSERT_LT(S[I], 256u);
    EXPECT_FALSE(Seen[S[I]]);
    Seen[S[I]] = true;
  }
  // Famous anchor values.
  EXPECT_EQ(S[0x00], 0x63u);
  EXPECT_EQ(S[0x01], 0x7Cu);
  EXPECT_EQ(S[0x53], 0xEDu);
}

TEST(Aes, KeyScheduleAnchors) {
  // FIPS-197 Appendix A.1 expanded key for 2b7e1516...
  Aes128 Aes({0x2B7E1516, 0x28AED2A6, 0xABF71588, 0x09CF4F3C});
  const auto &Rk = Aes.roundKeys();
  EXPECT_EQ(Rk[4], 0xA0FAFE17u);
  EXPECT_EQ(Rk[43], 0xB6630CA6u);
}

TEST(Aes, TablesConsistentWithSbox) {
  const auto &Te = Aes128::tables();
  const auto &S = Aes128::sbox();
  for (unsigned X = 0; X < 256; X += 17) {
    uint32_t T0 = Te[0][X];
    // Middle bytes of Te0 are S[x].
    EXPECT_EQ((T0 >> 16) & 0xFF, S[X]);
    EXPECT_EQ((T0 >> 8) & 0xFF, S[X]);
    // Te1 is Te0 rotated right 8.
    EXPECT_EQ(Te[1][X], (T0 >> 8) | (T0 << 24));
  }
}

TEST(Aes, DifferentKeysDiffer) {
  Aes128 A({1, 2, 3, 4}), B({1, 2, 3, 5});
  EXPECT_NE(A.encrypt({9, 9, 9, 9}), B.encrypt({9, 9, 9, 9}));
}

TEST(Kasumi, EncryptDecryptRoundTrip) {
  Kasumi K({0x9900AABB, 0xCCDDEEFF, 0x11223344, 0x55667788});
  for (uint32_t I = 0; I != 50; ++I) {
    uint32_t Hi = I * 0x9E3779B9u, Lo = ~I * 0x85EBCA6Bu;
    auto [CHi, CLo] = K.encrypt(Hi, Lo);
    auto [PHi, PLo] = K.decrypt(CHi, CLo);
    EXPECT_EQ(PHi, Hi);
    EXPECT_EQ(PLo, Lo);
    EXPECT_NE(std::make_pair(CHi, CLo), std::make_pair(Hi, Lo));
  }
}

TEST(Kasumi, SboxesAreBijections) {
  std::array<bool, 128> Seen7{};
  for (uint16_t V : Kasumi::s7()) {
    ASSERT_LT(V, 128);
    EXPECT_FALSE(Seen7[V]);
    Seen7[V] = true;
  }
  std::array<bool, 512> Seen9{};
  for (uint16_t V : Kasumi::s9()) {
    ASSERT_LT(V, 512);
    EXPECT_FALSE(Seen9[V]);
    Seen9[V] = true;
  }
}

TEST(Kasumi, KeyDependence) {
  Kasumi A({1, 2, 3, 4}), B({1, 2, 3, 5});
  EXPECT_NE(A.encrypt(7, 8), B.encrypt(7, 8));
}

TEST(Kasumi, AvalancheSanity) {
  Kasumi K({0xDEADBEEF, 0x01234567, 0x89ABCDEF, 0x55AA55AA});
  auto [H1, L1] = K.encrypt(0, 0);
  auto [H2, L2] = K.encrypt(0, 1);
  unsigned Flips = __builtin_popcount(H1 ^ H2) + __builtin_popcount(L1 ^ L2);
  EXPECT_GT(Flips, 10u); // weak but meaningful diffusion check
}

TEST(Checksum, Rfc1071Basics) {
  // Sum of halves with end-around carry.
  EXPECT_EQ(onesComplementSum({0x00010002}), 3u);
  EXPECT_EQ(onesComplementSum({0xFFFF0001}), 1u); // carry wraps
  EXPECT_EQ(ipChecksum({0x00000000}), 0xFFFFu);
  // A checksum-correct header sums to 0xFFFF.
  std::vector<uint32_t> Hdr = {0x45000054, 0x00004000, 0x40010000,
                               0x0A000001, 0x0A000002};
  uint16_t C = ipChecksum(Hdr);
  Hdr[2] |= C;
  EXPECT_EQ(onesComplementSum(Hdr), 0xFFFFu);
}
