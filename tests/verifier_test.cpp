//===- verifier_test.cpp - Static legality verifier tests -----------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Hand-built allocated programs with known violations of the IXP1200's
// data-path rules; the verifier must flag each one and accept the legal
// variants.
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"

#include <gtest/gtest.h>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

AllocInstr alu(cps::PrimOp Op, PhysLoc Dst, AOperand A, AOperand B) {
  AllocInstr I;
  I.Op = MOp::Alu;
  I.Alu = Op;
  I.Srcs = {A, B};
  I.Dsts = {Dst};
  return I;
}

AllocInstr halt() {
  AllocInstr I;
  I.Op = MOp::Halt;
  return I;
}

AllocatedProgram program(std::vector<AllocInstr> Instrs) {
  AllocatedProgram P;
  P.Entry = 0;
  Instrs.push_back(halt());
  P.Blocks.push_back({std::move(Instrs)});
  return P;
}

bool flags(const AllocatedProgram &P, const char *Needle) {
  for (const std::string &V : verifyAllocated(P))
    if (V.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Verifier, LegalAluPasses) {
  auto P = program({alu(cps::PrimOp::Add, {Bank::S, 0},
                        AOperand::reg({Bank::A, 1}),
                        AOperand::reg({Bank::B, 2}))});
  EXPECT_TRUE(verifyAllocated(P).empty());
}

TEST(Verifier, AluResultIntoReadBankFlagged) {
  auto P = program({alu(cps::PrimOp::Add, {Bank::L, 0},
                        AOperand::reg({Bank::A, 1}),
                        AOperand::reg({Bank::B, 2}))});
  EXPECT_TRUE(flags(P, "non-writable"));
}

TEST(Verifier, AluOperandFromWriteBankFlagged) {
  auto P = program({alu(cps::PrimOp::Add, {Bank::A, 0},
                        AOperand::reg({Bank::S, 1}),
                        AOperand::reg({Bank::B, 2}))});
  EXPECT_TRUE(flags(P, "non-readable"));
}

TEST(Verifier, BothOperandsSameBankFlagged) {
  auto P = program({alu(cps::PrimOp::Add, {Bank::A, 0},
                        AOperand::reg({Bank::A, 1}),
                        AOperand::reg({Bank::A, 2}))});
  EXPECT_TRUE(flags(P, "both operands"));
}

TEST(Verifier, MixedReadTransferOperandsFlagged) {
  auto P = program({alu(cps::PrimOp::Add, {Bank::A, 0},
                        AOperand::reg({Bank::L, 1}),
                        AOperand::reg({Bank::LD, 2}))});
  EXPECT_TRUE(flags(P, "read-transfer"));
}

TEST(Verifier, RegisterIndexOutOfRangeFlagged) {
  auto P = program({alu(cps::PrimOp::Add, {Bank::S, 9},
                        AOperand::reg({Bank::A, 1}),
                        AOperand::reg({Bank::B, 2}))});
  EXPECT_TRUE(flags(P, "out of range"));
}

TEST(Verifier, AggregateMustBeConsecutive) {
  AllocInstr Rd;
  Rd.Op = MOp::MemRead;
  Rd.Space = MemSpace::Sram;
  Rd.Srcs = {AOperand::reg({Bank::A, 0})};
  Rd.Dsts = {{Bank::L, 2}, {Bank::L, 4}}; // gap!
  auto P = program({Rd});
  EXPECT_TRUE(flags(P, "not consecutive"));

  Rd.Dsts = {{Bank::L, 2}, {Bank::L, 3}};
  auto P2 = program({Rd});
  EXPECT_TRUE(verifyAllocated(P2).empty());
}

TEST(Verifier, SdramReadMustUseLd) {
  AllocInstr Rd;
  Rd.Op = MOp::MemRead;
  Rd.Space = MemSpace::Sdram;
  Rd.Srcs = {AOperand::reg({Bank::B, 3})};
  Rd.Dsts = {{Bank::L, 0}, {Bank::L, 1}}; // should be LD
  auto P = program({Rd});
  EXPECT_TRUE(flags(P, "need LD"));
}

TEST(Verifier, StoreValuesMustComeFromS) {
  AllocInstr Wr;
  Wr.Op = MOp::MemWrite;
  Wr.Space = MemSpace::Sram;
  Wr.Srcs = {AOperand::reg({Bank::A, 0}), AOperand::reg({Bank::A, 1})};
  auto P = program({Wr});
  EXPECT_TRUE(flags(P, "need S"));
}

TEST(Verifier, MemoryAddressMustBeGp) {
  AllocInstr Rd;
  Rd.Op = MOp::MemRead;
  Rd.Space = MemSpace::Sram;
  Rd.Srcs = {AOperand::reg({Bank::L, 0})};
  Rd.Dsts = {{Bank::L, 0}};
  auto P = program({Rd});
  EXPECT_TRUE(flags(P, "need A or B"));
  // Constant addresses are reserved for allocator spill slots (scratch).
  Rd.Srcs = {AOperand::constant(100)};
  auto P2 = program({Rd});
  EXPECT_TRUE(flags(P2, "address"));
}

TEST(Verifier, HashSameRegEnforced) {
  AllocInstr H;
  H.Op = MOp::Hash;
  H.Srcs = {AOperand::reg({Bank::S, 2})};
  H.Dsts = {{Bank::L, 3}};
  auto P = program({H});
  EXPECT_TRUE(flags(P, "SameReg"));

  H.Dsts = {{Bank::L, 2}};
  auto P2 = program({H});
  EXPECT_TRUE(verifyAllocated(P2).empty());
}

TEST(Verifier, ClonePseudoMustNotSurvive) {
  AllocInstr C;
  C.Op = MOp::Clone;
  C.Srcs = {AOperand::reg({Bank::A, 0})};
  C.Dsts = {{Bank::A, 0}};
  auto P = program({C});
  EXPECT_TRUE(flags(P, "clone"));
}

TEST(Verifier, BranchTargetsChecked) {
  AllocInstr Br;
  Br.Op = MOp::Branch;
  Br.Cmp = cps::CmpOp::Eq;
  Br.Srcs = {AOperand::reg({Bank::A, 0}), AOperand::reg({Bank::B, 0})};
  Br.Target = 7; // out of range
  Br.TargetElse = 0;
  AllocatedProgram P;
  P.Entry = 0;
  P.Blocks.push_back({{Br, halt()}});
  EXPECT_TRUE(flags(P, "target out of range"));
}
