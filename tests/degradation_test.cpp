//===- degradation_test.cpp - The allocation ladder under injected faults -===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Drives every rung of the allocator's graceful-degradation ladder by
// injecting solver faults (spurious LP infeasibility, branch-and-bound
// timeouts at chosen node counts, singular bases, eta-file drift, worker
// stalls) while compiling the paper's three applications, then checks
// that the chosen rung is recorded, the emitted program passes the
// legality verifier, and the simulator still produces the same packets
// as the fault-free optimal build.
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"
#include "apps/AppSources.h"
#include "driver/Compiler.h"
#include "sim/Simulator.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

using namespace nova;

namespace {

struct AppCase {
  const char *Name;
  std::string Source;
  std::vector<uint32_t> Args;
  sim::Memory Input; ///< memory image with the packet already stored
};

/// One packet per app, taken from the apps_test correctness vectors.
std::vector<AppCase> &appCases() {
  static std::vector<AppCase> *Cases = [] {
    auto *CS = new std::vector<AppCase>();
    {
      AppCase C;
      C.Name = "aes.nova";
      C.Source = apps::aesNovaSource();
      C.Args = {0x100, 0x400, 16};
      apps::loadAesEnvironment(C.Input);
      apps::storePacket(C.Input.Sdram, 0x100,
                        {0x45000024, 0x12344000, 0x40110000, 0x0A000001,
                         0x0A000002, 0x00112233, 0x44556677, 0x8899AABB,
                         0xCCDDEEFF});
      CS->push_back(std::move(C));
    }
    {
      AppCase C;
      C.Name = "kasumi.nova";
      C.Source = apps::kasumiNovaSource();
      C.Args = {0x300, 0x500};
      apps::loadKasumiEnvironment(C.Input);
      C.Input.Sdram[0x300] = 0xFEDCBA09;
      C.Input.Sdram[0x301] = 0x87654321;
      CS->push_back(std::move(C));
    }
    {
      AppCase C;
      C.Name = "nat.nova";
      C.Source = apps::natNovaSource();
      C.Args = {0x100, 0x800};
      std::vector<uint32_t> Pkt(10, 0);
      Pkt[0] = (6u << 28) | (2u << 24) | 0x12345;
      Pkt[1] = (40u << 16) | (17u << 8) | 64; // payload 40B, UDP, hops 64
      Pkt[2] = 0x20010DB8;
      Pkt[5] = 0x0A000001;
      Pkt[6] = 0x20010DB8;
      Pkt[8] = 1;
      Pkt[9] = 0x0A000002;
      for (uint32_t I = 0; I != 10; ++I)
        Pkt.push_back(0xD0000000 + I);
      apps::storePacket(C.Input.Sdram, 0x100, Pkt);
      CS->push_back(std::move(C));
    }
    return CS;
  }();
  return *Cases;
}

/// Fault-free optimal compile, cached for the whole process (these are
/// the reference builds every degraded run is compared against).
driver::CompileResult &optimalApp(const AppCase &C) {
  static std::map<std::string, std::unique_ptr<driver::CompileResult>>
      Cache;
  auto It = Cache.find(C.Name);
  if (It == Cache.end()) {
    driver::CompileOptions Opts;
    It = Cache.emplace(C.Name, driver::compileNova(C.Source, C.Name, Opts))
             .first;
    EXPECT_TRUE((*It->second).Ok) << (*It->second).ErrorText;
  }
  return *It->second;
}

/// Compiles \p C with \p Faults armed for the duration of the compile.
/// When \p FiredOut is given, it receives how often the first fault's
/// kind actually fired (read before the plan is disarmed).
std::unique_ptr<driver::CompileResult>
compileWithFaults(const AppCase &C, std::vector<FaultSpec> Faults,
                  alloc::OnIlpFailure Policy, unsigned *FiredOut = nullptr) {
  driver::CompileOptions Opts;
  Opts.Alloc.FailurePolicy = Policy;
  FaultKind First = Faults.empty() ? FaultKind::LpInfeasible : Faults[0].Kind;
  ScopedFaultInjection Armed(std::move(Faults));
  auto R = driver::compileNova(C.Source, C.Name, Opts);
  if (FiredOut)
    *FiredOut = FaultInjector::instance().fired(First);
  return R;
}

/// Runs \p Prog on the case's packet; returns (halt, final memory).
std::pair<uint32_t, sim::Memory> runOn(const AppCase &C,
                                       const alloc::AllocatedProgram &Prog) {
  sim::Memory Mem = C.Input;
  sim::RunResult R = sim::runAllocated(Prog, C.Args, Mem);
  EXPECT_TRUE(R.Ok) << C.Name << ": " << R.Error;
  EXPECT_EQ(R.HaltValues.size(), 1u) << C.Name;
  return {R.HaltValues.empty() ? 0 : R.HaltValues[0], std::move(Mem)};
}

/// The correctness bar for every rung: verifier-clean code whose run
/// leaves SDRAM byte-identical to the optimal build's run (Scratch is
/// excluded on purpose: spill homes legitimately differ per allocation)
/// and halts with the same value.
void expectMatchesOptimal(const AppCase &C, driver::CompileResult &Degraded) {
  ASSERT_TRUE(Degraded.Ok) << C.Name << ": " << Degraded.ErrorText;
  EXPECT_TRUE(verifyAllocated(Degraded.Alloc.Prog).empty()) << C.Name;
  auto [HaltOpt, MemOpt] = runOn(C, optimalApp(C).Alloc.Prog);
  auto [HaltDeg, MemDeg] = runOn(C, Degraded.Alloc.Prog);
  EXPECT_EQ(HaltDeg, HaltOpt) << C.Name;
  EXPECT_EQ(MemDeg.Sdram, MemOpt.Sdram) << C.Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// Baseline rung: forced ILP failure on every app
//===----------------------------------------------------------------------===//

TEST(Degradation, BaselineRungRunsPacketsOnAllApps) {
  for (const AppCase &C : appCases()) {
    // Unlimited lp-infeasible kills the spill-free solve *and* the
    // spill-aware retry; only the heuristic allocator is left.
    auto R = compileWithFaults(C, {{FaultKind::LpInfeasible}},
                               alloc::OnIlpFailure::Baseline);
    ASSERT_TRUE(R->Ok) << C.Name << ": " << R->ErrorText;
    EXPECT_EQ(R->Alloc.Stats.Rung, alloc::AllocRung::Baseline) << C.Name;
    EXPECT_FALSE(R->Alloc.Stats.ProvedOptimal) << C.Name;
    EXPECT_GE(R->Alloc.Stats.LadderAttempts, 3u) << C.Name;
    EXPECT_GT(R->Alloc.Stats.Spills, 0u) << C.Name; // memory-home strategy
    expectMatchesOptimal(C, *R);
  }
}

TEST(Degradation, ErrorPolicyRefusesToDegrade) {
  const AppCase &C = appCases()[2]; // NAT: fastest solve
  auto R = compileWithFaults(C, {{FaultKind::LpInfeasible}},
                             alloc::OnIlpFailure::Error);
  ASSERT_FALSE(R->Ok);
  EXPECT_EQ(R->Alloc.Error.code(), StatusCode::IlpInfeasible);
  // The failure text must teach the recovery flag.
  EXPECT_NE(R->ErrorText.find("--on-ilp-failure=baseline"), std::string::npos)
      << R->ErrorText;
}

TEST(Degradation, IncumbentPolicyStopsAboveBaseline) {
  const AppCase &C = appCases()[2]; // NAT
  auto R = compileWithFaults(C, {{FaultKind::LpInfeasible}},
                             alloc::OnIlpFailure::Incumbent);
  ASSERT_FALSE(R->Ok);
  EXPECT_EQ(R->Alloc.Error.code(), StatusCode::IlpInfeasible);
}

//===----------------------------------------------------------------------===//
// Incumbent rung: timeout at a chosen node count
//===----------------------------------------------------------------------===//

TEST(Degradation, TimeoutAtNodeSalvagesIncumbentOnAllApps) {
  for (const AppCase &C : appCases()) {
    // Time out at the first branch-and-bound node: the root dive's
    // incumbent must be salvaged instead of discarded. (After must stay
    // below the app's total node count or the fault never fires.)
    FaultSpec Timeout;
    Timeout.Kind = FaultKind::MipTimeout;
    Timeout.After = 0;
    auto R = compileWithFaults(C, {Timeout}, alloc::OnIlpFailure::Incumbent);
    ASSERT_TRUE(R->Ok) << C.Name << ": " << R->ErrorText;
    EXPECT_FALSE(R->Alloc.Stats.ProvedOptimal) << C.Name;
    EXPECT_NE(R->Alloc.Stats.Rung, alloc::AllocRung::Optimal) << C.Name;
    EXPECT_NE(R->Alloc.Stats.Rung, alloc::AllocRung::Baseline) << C.Name;
    expectMatchesOptimal(C, *R);
  }
}

TEST(Degradation, ErrorPolicyRejectsUnprovedIncumbent) {
  const AppCase &C = appCases()[2]; // NAT
  FaultSpec Timeout;
  Timeout.Kind = FaultKind::MipTimeout;
  Timeout.After = 10;
  auto R = compileWithFaults(C, {Timeout}, alloc::OnIlpFailure::Error);
  ASSERT_FALSE(R->Ok);
  EXPECT_EQ(R->Alloc.Error.code(), StatusCode::IlpNonOptimal);
  EXPECT_NE(R->ErrorText.find("--on-ilp-failure=incumbent"),
            std::string::npos)
      << R->ErrorText;
}

//===----------------------------------------------------------------------===//
// Numerical faults the LP engine must absorb without degrading at all
//===----------------------------------------------------------------------===//

TEST(Degradation, SingularBasisIsRepairedTransparently) {
  const AppCase &C = appCases()[2]; // NAT
  FaultSpec Singular;
  Singular.Kind = FaultKind::SingularBasis;
  Singular.After = 2;
  Singular.Times = 2;
  unsigned Fired = 0;
  auto R =
      compileWithFaults(C, {Singular}, alloc::OnIlpFailure::Error, &Fired);
  // The LU repair path patches slacks and refactorizes: same optimum,
  // no rung change, nothing for the ladder to do.
  ASSERT_TRUE(R->Ok) << C.Name << ": " << R->ErrorText;
  EXPECT_GT(Fired, 0u);
  EXPECT_EQ(R->Alloc.Stats.Rung, alloc::AllocRung::Optimal);
  EXPECT_TRUE(R->Alloc.Stats.ProvedOptimal);
  EXPECT_DOUBLE_EQ(R->Alloc.Stats.Objective,
                   optimalApp(C).Alloc.Stats.Objective);
  expectMatchesOptimal(C, *R);
}

TEST(Degradation, EtaDriftTriggersRefactorizeNotDegradation) {
  const AppCase &C = appCases()[2]; // NAT
  FaultSpec Drift;
  Drift.Kind = FaultKind::EtaDrift;
  Drift.After = 40;
  Drift.Times = 1;
  Drift.Magnitude = 2e-3;
  unsigned Fired = 0;
  auto R = compileWithFaults(C, {Drift}, alloc::OnIlpFailure::Error, &Fired);
  ASSERT_TRUE(R->Ok) << C.Name << ": " << R->ErrorText;
  EXPECT_EQ(Fired, 1u);
  EXPECT_EQ(R->Alloc.Stats.Rung, alloc::AllocRung::Optimal);
  EXPECT_DOUBLE_EQ(R->Alloc.Stats.Objective,
                   optimalApp(C).Alloc.Stats.Objective);
  expectMatchesOptimal(C, *R);
}

TEST(Degradation, WorkerStallOnlyCostsTime) {
  const AppCase &C = appCases()[2]; // NAT
  FaultSpec Stall;
  Stall.Kind = FaultKind::WorkerStall;
  Stall.Times = 3;
  Stall.Magnitude = 0.01;
  unsigned Fired = 0;
  auto R = compileWithFaults(C, {Stall}, alloc::OnIlpFailure::Error, &Fired);
  ASSERT_TRUE(R->Ok) << C.Name << ": " << R->ErrorText;
  EXPECT_GT(Fired, 0u);
  EXPECT_EQ(R->Alloc.Stats.Rung, alloc::AllocRung::Optimal);
  EXPECT_DOUBLE_EQ(R->Alloc.Stats.Objective,
                   optimalApp(C).Alloc.Stats.Objective);
}

//===----------------------------------------------------------------------===//
// Ladder bookkeeping
//===----------------------------------------------------------------------===//

TEST(Degradation, OptimalBuildsRecordTheTopRung) {
  for (const AppCase &C : appCases()) {
    driver::CompileResult &App = optimalApp(C);
    ASSERT_TRUE(App.Ok) << App.ErrorText;
    EXPECT_EQ(App.Alloc.Stats.Rung, alloc::AllocRung::Optimal) << C.Name;
    EXPECT_TRUE(App.Alloc.Stats.ProvedOptimal) << C.Name;
    EXPECT_EQ(App.Alloc.Stats.LadderAttempts, 1u) << C.Name;
    EXPECT_EQ(App.Alloc.Stats.VerifierViolations, 0u) << C.Name;
  }
}
