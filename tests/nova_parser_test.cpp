//===- nova_parser_test.cpp - Parser structure and error recovery ---------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Parser.h"

#include <gtest/gtest.h>

using namespace nova;

namespace {

struct Parsed {
  SourceManager SM;
  AstArena Arena;
  std::unique_ptr<DiagnosticEngine> Diags;
  Program Prog;

  explicit Parsed(const std::string &Source) {
    uint32_t Buf = SM.addBuffer("p.nova", Source);
    Diags = std::make_unique<DiagnosticEngine>(SM);
    Parser P(SM, Buf, Arena, *Diags);
    Prog = P.parseProgram();
  }
};

} // namespace

TEST(Parser, TopLevelStructure) {
  Parsed P("layout a = { x : 8 };"
           "fun f(v : word) { v }"
           "fun main(w : word) { f(w) }");
  EXPECT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  EXPECT_EQ(P.Prog.LayoutDecls.size(), 1u);
  EXPECT_EQ(P.Prog.FunDecls.size(), 2u);
  EXPECT_NE(P.Prog.findFun("main"), nullptr);
  EXPECT_EQ(P.Prog.findFun("nothere"), nullptr);
}

TEST(Parser, PrecedenceShape) {
  // a + b << 2 parses as (a + b) ... no: shift binds tighter than +?
  // Our table: shifts (8) bind tighter than + (9)? Higher number binds
  // tighter; + is 9, shl 8 -> a + (b << 2) is wrong... verify the actual
  // intended C-like shape: + binds tighter than <<.
  Parsed P("fun main(a : word, b : word) { a + b << 2 }");
  ASSERT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  const Expr *Body = P.Prog.findFun("main")->Body->Tail;
  ASSERT_EQ(Body->Kind, ExprKind::Binary);
  // C-like: << at lower precedence than +, so the root is <<.
  EXPECT_EQ(Body->BOp, BinaryOp::Shl);
  ASSERT_EQ(Body->Lhs->Kind, ExprKind::Binary);
  EXPECT_EQ(Body->Lhs->BOp, BinaryOp::Add);
}

TEST(Parser, ComparisonAndLogicalShape) {
  Parsed P("fun main(a : word, b : word) {"
           "  if (a > 1 && b > 2 || a == 0) 1 else 0"
           "}");
  ASSERT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  const Expr *Cond = P.Prog.findFun("main")->Body->Tail->Cond;
  ASSERT_EQ(Cond->Kind, ExprKind::Binary);
  EXPECT_EQ(Cond->BOp, BinaryOp::LogOr); // || is the loosest
}

TEST(Parser, ErrorRecoveryReportsMultiple) {
  Parsed P("fun main(x : word) { x }"
           "fun f(v : word) { let = 3; v }"
           "fun g(w : word) { w + 1 2 }");
  EXPECT_TRUE(P.Diags->hasErrors());
  EXPECT_GE(P.Diags->errorCount(), 2u);
  // Earlier declarations are unaffected by later errors.
  EXPECT_NE(P.Prog.findFun("main"), nullptr);
}

TEST(Parser, MissingSemicolonDiagnosed) {
  Parsed P("fun main(x : word) { let a = x + 1 a }");
  EXPECT_TRUE(P.Diags->hasErrors());
  EXPECT_NE(P.Diags->render().find("';'"), std::string::npos);
}

TEST(Parser, StoreStatementShape) {
  Parsed P("fun main(a : word) { sram(a) <- (1, 2); 0 }");
  ASSERT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  const Expr *Body = P.Prog.findFun("main")->Body;
  ASSERT_EQ(Body->Stmts.size(), 1u);
  EXPECT_EQ(Body->Stmts[0]->Kind, StmtKind::Store);
  EXPECT_EQ(Body->Stmts[0]->Space, MemSpace::Sram);
}

TEST(Parser, TryHandleStructure) {
  Parsed P("fun main(x : word) {"
           "  try { raise E [a = 1]; 0 }"
           "  handle E [a : word] { a }"
           "  handle F () { 2 }"
           "}");
  ASSERT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  const Expr *T = P.Prog.findFun("main")->Body->Tail;
  ASSERT_EQ(T->Kind, ExprKind::Try);
  ASSERT_EQ(T->Handlers.size(), 2u);
  EXPECT_EQ(T->Handlers[0].ExnName, "E");
  EXPECT_TRUE(T->Handlers[0].RecordPayload);
  EXPECT_FALSE(T->Handlers[1].RecordPayload);
}

TEST(Parser, TryWithoutHandlerRejected) {
  Parsed P("fun main(x : word) { try { x } }");
  EXPECT_TRUE(P.Diags->hasErrors());
}

TEST(Parser, LayoutConcatAndGaps) {
  Parsed P("layout l = {16} ## { x : 8 } ## {8};"
           "fun main(a : word) { a }");
  ASSERT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  ASSERT_EQ(P.Prog.LayoutDecls.size(), 1u);
  const LayoutExpr *L = P.Prog.LayoutDecls[0].Value;
  EXPECT_EQ(L->Kind, LayoutExprKind::Concat);
}

TEST(Parser, OverlayNeedsTwoAlternatives) {
  Parsed P("layout l = { v : overlay { only : 8 } };"
           "fun main(a : word) { a }");
  EXPECT_TRUE(P.Diags->hasErrors());
}

TEST(Parser, RecordLiteralFieldsMustBeNamed) {
  Parsed P("fun main(a : word) { let r = [a, 2]; 0 }");
  EXPECT_TRUE(P.Diags->hasErrors());
}

TEST(Parser, NestedIfElseChains) {
  Parsed P("fun main(x : word) {"
           "  if (x == 0) 1 else if (x == 1) 2 else 3"
           "}");
  ASSERT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
  const Expr *If = P.Prog.findFun("main")->Body->Tail;
  ASSERT_EQ(If->Kind, ExprKind::If);
  ASSERT_NE(If->Else, nullptr);
  EXPECT_EQ(If->Else->Kind, ExprKind::If);
}

TEST(Parser, UnitLiteralAndEmptyParens) {
  Parsed P("fun main(x : word) { let u = (); x }");
  EXPECT_FALSE(P.Diags->hasErrors()) << P.Diags->render();
}
