//===- chip_test.cpp - Whole-chip simulator tests ---------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Three layers of coverage:
//
//  1. chip::Ring as a data structure: FIFO order through wraparound,
//     high-water tracking, and the operation trace hash that lets two
//     runs be compared for identical interleaving.
//  2. Parameter and setup validation: topology bounds, slot geometry,
//     and the per-context spill-window fit inside scratch.
//  3. The chip itself, driven by small hand-built allocated programs:
//     results match standalone runs word-for-word, in-order retirement,
//     slot isolation under concurrency, quarantined tail execution for
//     near-limit pointers, context-swap fairness (no context starves),
//     ring blocking at depth 1, watchdog traps as drops, measurable
//     channel contention, and bit-identical double runs.
//
//===----------------------------------------------------------------------===//

#include "chip/Chip.h"

#include <gtest/gtest.h>

#include <map>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

AllocInstr imm(uint32_t V, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::Imm;
  I.Imm = V;
  I.Dsts = {Dst};
  return I;
}

AllocInstr haltOf(std::vector<AOperand> Srcs) {
  AllocInstr I;
  I.Op = MOp::Halt;
  I.Srcs = std::move(Srcs);
  return I;
}

AllocInstr sdramRead(AOperand Addr, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::MemRead;
  I.Space = MemSpace::Sdram;
  I.Srcs = {Addr};
  I.Dsts = {Dst};
  return I;
}

AllocInstr sdramWrite(AOperand Addr, AOperand Val) {
  AllocInstr I;
  I.Op = MOp::MemWrite;
  I.Space = MemSpace::Sdram;
  I.Srcs = {Addr, Val};
  return I;
}

/// copy(in, out): *out = *in; halt(*in). Two pointer args — the exact
/// calling shape the chip rebases into packet slots.
AllocatedProgram copyProgram() {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  P.Blocks.push_back({{sdramRead(AOperand::reg({Bank::A, 0}), {Bank::S, 0}),
                       sdramWrite(AOperand::reg({Bank::A, 1}),
                                  AOperand::reg({Bank::S, 0})),
                       haltOf({AOperand::reg({Bank::S, 0})})}});
  return P;
}

/// heavy(in, out): N dependent SDRAM reads of *in, then *out = *in.
/// Each read is a context-swap point, so one packet bounces through the
/// scheduler many times.
AllocatedProgram heavyProgram(unsigned Reads) {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  std::vector<AllocInstr> Is;
  for (unsigned I = 0; I != Reads; ++I)
    Is.push_back(sdramRead(AOperand::reg({Bank::A, 0}), {Bank::S, 0}));
  Is.push_back(sdramWrite(AOperand::reg({Bank::A, 1}),
                          AOperand::reg({Bank::S, 0})));
  Is.push_back(haltOf({AOperand::reg({Bank::S, 0})}));
  P.Blocks.push_back({std::move(Is)});
  return P;
}

/// spin(): jump-to-self; only the watchdog ends it.
AllocatedProgram spinProgram() {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  AllocInstr J;
  J.Op = MOp::Jump;
  J.Target = 0;
  P.Blocks.push_back({{J}});
  return P;
}

/// Streams \p N copy-shaped packets (in=0, out=1, one payload word
/// derived from Seq) through a chip of \p Mes x \p Ctxs and returns the
/// retired packets alongside the run stats.
struct DriveResult {
  chip::ChipRunStats Stats;
  std::vector<chip::RetiredPacket> Retired;
  uint64_t ImageHash = 0;
};

DriveResult drive(const AllocatedProgram &Prog, chip::ChipParams CP,
                  uint64_t N, uint64_t Budget = 50'000) {
  CP.Budget = Budget;
  std::vector<const AllocatedProgram *> Progs(CP.MP.MeCount, &Prog);
  chip::Chip C(CP, Progs, sim::Memory{});
  uint64_t Next = 0;
  DriveResult R;
  R.Stats = C.run(
      [&](chip::ChipPacket &Out) {
        if (Next == N)
          return false;
        Out = chip::ChipPacket();
        Out.Seq = Next;
        Out.Words = {static_cast<uint32_t>(0xC0DE0000u + Next)};
        Out.Args = {0, 1};
        Out.PtrArgMask = 0b11;
        Out.PayloadBytes = 4;
        ++Next;
        return true;
      },
      [&](chip::RetiredPacket &&RP) { R.Retired.push_back(std::move(RP)); });
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &[Addr, Val] : C.memory().Sdram) {
    H = chip::traceFold(H, Addr);
    H = chip::traceFold(H, Val);
  }
  R.ImageHash = H;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Ring data structure
//===----------------------------------------------------------------------===//

TEST(Ring, FifoThroughWraparound) {
  chip::Ring R(3);
  EXPECT_TRUE(R.empty());
  EXPECT_EQ(R.capacity(), 3u);
  // Fill, drain, refill across the physical end of the buffer: FIFO
  // order must survive the index wrap.
  uint64_t NextPush = 0, NextPop = 0, T = 0;
  for (unsigned Round = 0; Round != 5; ++Round) {
    while (!R.full())
      R.push(NextPush++, ++T);
    EXPECT_EQ(R.size(), 3u);
    while (!R.empty())
      EXPECT_EQ(R.pop(++T), NextPop++);
  }
  EXPECT_EQ(NextPop, 15u);
  EXPECT_EQ(R.pushes(), 15u);
  EXPECT_EQ(R.pops(), 15u);
  EXPECT_EQ(R.highWater(), 3u);
}

TEST(Ring, HighWaterTracksPeakNotCurrent) {
  chip::Ring R(8);
  R.push(1, 0);
  R.push(2, 1);
  R.push(3, 2);
  R.pop(3);
  R.pop(4);
  EXPECT_EQ(R.size(), 1u);
  EXPECT_EQ(R.highWater(), 3u);
}

TEST(Ring, TraceHashDistinguishesInterleavings) {
  // Same multiset of operations, different order: the hash must differ —
  // that is what makes it a determinism witness for multi-producer
  // interleaving on the shared TX ring.
  chip::Ring A(4), B(4);
  A.push(1, 10);
  A.push(2, 11);
  B.push(2, 10);
  B.push(1, 11);
  EXPECT_NE(A.traceHash(), B.traceHash());

  chip::Ring C(4), D(4);
  for (chip::Ring *R : {&C, &D}) {
    R->push(7, 5);
    R->pop(6);
    R->push(9, 8);
  }
  EXPECT_EQ(C.traceHash(), D.traceHash());
}

//===----------------------------------------------------------------------===//
// Parameter and setup validation
//===----------------------------------------------------------------------===//

TEST(ChipParams, ValidatesTopologyBounds) {
  chip::ChipParams P;
  EXPECT_TRUE(P.validate().ok());

  chip::ChipParams Bad = P;
  Bad.MP.MeCount = 0;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.MP.MeCount = 9;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.MP.ContextsPerMe = 0;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.RingDepth = 0;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.RingDepth = 65;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.Budget = 0;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.SlotStride = 16;
  EXPECT_FALSE(Bad.validate().ok());
}

TEST(ChipSetup, RejectsSpillWindowsThatOverflowScratch) {
  chip::ChipParams P; // 6 MEs x 4 contexts = 24 spill windows
  AllocatedProgram Prog = copyProgram();
  sim::MemLimits Limits;
  EXPECT_TRUE(chip::validateChipSetup(P, Prog, Limits).ok());
  // 24 windows of 4096 scratch words starting at SpillBase cannot fit in
  // the 64k-word scratchpad.
  Prog.NumSpillSlots = 4096;
  Status S = chip::validateChipSetup(P, Prog, Limits);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
}

TEST(ChipSetup, RejectsSlotGeometryBeyondSdram) {
  chip::ChipParams P;
  P.SlotStride = sim::MemLimits{}.SdramWords * 2;
  EXPECT_FALSE(
      chip::validateChipSetup(P, copyProgram(), sim::MemLimits{}).ok());
}

//===----------------------------------------------------------------------===//
// Whole-chip execution
//===----------------------------------------------------------------------===//

TEST(ChipRun, MatchesStandaloneWordForWord) {
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  AllocatedProgram Prog = copyProgram();
  DriveResult R = drive(Prog, CP, 40);

  ASSERT_EQ(R.Retired.size(), 40u);
  EXPECT_EQ(R.Stats.PacketsRetired, 40u);
  EXPECT_FALSE(R.Stats.Deadlock);
  for (uint64_t I = 0; I != 40; ++I) {
    const chip::RetiredPacket &RP = R.Retired[I];
    // Retirement is in arrival order regardless of completion order.
    EXPECT_EQ(RP.Pkt.Seq, I);
    ASSERT_TRUE(RP.Result.Ok) << RP.Result.Error.message();
    uint32_t Want = static_cast<uint32_t>(0xC0DE0000u + I);
    ASSERT_EQ(RP.Result.HaltValues.size(), 1u);
    EXPECT_EQ(RP.Result.HaltValues[0], Want);

    // The same rebased packet on fresh base memory, standalone: outcome
    // and halt values must match the chip's execution exactly (that is
    // the oracle contract the soak harness relies on).
    sim::Memory Mem;
    Mem.Sdram[RP.RebasedArgs[0]] = Want;
    sim::RunOptions Opts;
    Opts.Lat = CP.latency();
    Opts.MaxInstructions = CP.Budget;
    sim::RunResult Solo =
        sim::runAllocated(Prog, RP.RebasedArgs, Mem, Opts);
    ASSERT_TRUE(Solo.Ok);
    EXPECT_EQ(Solo.HaltValues, RP.Result.HaltValues);
    EXPECT_EQ(Mem.Sdram[RP.RebasedArgs[1]], Want);
  }
}

TEST(ChipRun, SlotIsolationUnderConcurrency) {
  // Every packet nominally writes to address 1; concurrent in-flight
  // packets only work because each owns a rebased slot. The final image
  // must hold every packet's distinct value at its own slot.
  chip::ChipParams CP;
  CP.MP.MeCount = 4;
  CP.MP.ContextsPerMe = 4;
  DriveResult R = drive(copyProgram(), CP, 64);
  ASSERT_EQ(R.Retired.size(), 64u);
  std::map<uint32_t, uint32_t> SlotOf; // out address -> value written
  for (const chip::RetiredPacket &RP : R.Retired) {
    ASSERT_TRUE(RP.Result.Ok);
    EXPECT_EQ(RP.Result.HaltValues[0], 0xC0DE0000u + RP.Pkt.Seq);
    // No two concurrent packets may share an out address unless the slot
    // was recycled after retirement — values never tear either way.
    SlotOf[RP.RebasedArgs[1]] = RP.Result.HaltValues[0];
  }
  // More than one slot was actually in use (otherwise nothing ran
  // concurrently and the test is vacuous).
  EXPECT_GT(SlotOf.size(), 1u);
}

TEST(ChipRun, ContextSwapFairnessNoStarvation) {
  // One ME, four contexts, a program that parks on SDRAM dozens of times
  // per packet. FIFO ready-queue discipline must hand every context its
  // share — a context parked on a long access re-enters at the tail, it
  // is never skipped forever.
  chip::ChipParams CP;
  CP.MP.MeCount = 1;
  CP.MP.ContextsPerMe = 4;
  DriveResult R = drive(heavyProgram(32), CP, 32);
  ASSERT_EQ(R.Stats.PacketsRetired, 32u);
  EXPECT_FALSE(R.Stats.Deadlock);
  ASSERT_EQ(R.Stats.CtxPackets.size(), 1u);
  ASSERT_EQ(R.Stats.CtxPackets[0].size(), 4u);
  for (unsigned C = 0; C != 4; ++C)
    EXPECT_GT(R.Stats.CtxPackets[0][C], 0u)
        << "context " << C << " starved";
}

TEST(ChipRun, BlockingAtRingDepthOne) {
  // Depth-1 rings force RX to park on a full input ring and producers to
  // park on the TX ring; the stream must still drain completely with
  // balanced ring accounting.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.RingDepth = 1;
  DriveResult R = drive(heavyProgram(8), CP, 30);
  EXPECT_EQ(R.Stats.PacketsRetired, 30u);
  EXPECT_FALSE(R.Stats.Deadlock);
  uint64_t InPushes = 0;
  for (const chip::RingStats &RS : R.Stats.InputRings) {
    EXPECT_EQ(RS.Pushes, RS.Pops);
    EXPECT_LE(RS.HighWater, 1u);
    InPushes += RS.Pushes;
  }
  EXPECT_EQ(InPushes, 30u);
  EXPECT_EQ(R.Stats.TxRing.Pushes, 30u);
  EXPECT_EQ(R.Stats.TxRing.Pops, 30u);
}

TEST(ChipRun, TailPacketsRunQuarantinedUnrebased) {
  // A pointer argument past the slot stride cannot be rebased; the chip
  // must run that packet quarantined (private pristine image, original
  // addresses) concurrently with the rest of the stream, and still
  // retire everything in order.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.Budget = 50'000;
  AllocatedProgram Prog = copyProgram();
  std::vector<const AllocatedProgram *> Progs(CP.MP.MeCount, &Prog);
  chip::Chip C(CP, Progs, sim::Memory{});
  const uint32_t TailOut = sim::MemLimits{}.SdramWords - 100;
  uint64_t Next = 0;
  std::vector<chip::RetiredPacket> Retired;
  chip::ChipRunStats St = C.run(
      [&](chip::ChipPacket &Out) {
        if (Next == 9)
          return false;
        Out = chip::ChipPacket();
        Out.Seq = Next;
        Out.Words = {static_cast<uint32_t>(0xAB000000u + Next)};
        // Packet 4 is hostile: its out pointer lands beyond the stride.
        Out.Args = {0, Next == 4 ? TailOut : 1};
        Out.PtrArgMask = 0b11;
        Out.PayloadBytes = 4;
        ++Next;
        return true;
      },
      [&](chip::RetiredPacket &&RP) { Retired.push_back(std::move(RP)); });

  ASSERT_EQ(Retired.size(), 9u);
  EXPECT_EQ(St.TailPackets, 1u);
  EXPECT_FALSE(St.Deadlock);
  for (uint64_t I = 0; I != 9; ++I) {
    EXPECT_EQ(Retired[I].Pkt.Seq, I);
    ASSERT_TRUE(Retired[I].Result.Ok);
  }
  const chip::RetiredPacket &Tail = Retired[4];
  EXPECT_TRUE(Tail.Tail);
  // The quarantined run saw its own DMA image (the copy program halts
  // with the word it read back), and its write landed on the private
  // image, never on the shared chip memory.
  ASSERT_EQ(Tail.Result.HaltValues.size(), 1u);
  EXPECT_EQ(Tail.Result.HaltValues[0], 0xAB000004u);
  EXPECT_EQ(C.memory().Sdram.count(TailOut), 0u);
  // Unrebased: the tail packet's args pass through verbatim.
  EXPECT_EQ(Tail.RebasedArgs[1], TailOut);
}

TEST(ChipRun, WatchdogTrapsBecomeTypedDropsNotHangs) {
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  DriveResult R = drive(spinProgram(), CP, 12, /*Budget=*/500);
  ASSERT_EQ(R.Retired.size(), 12u);
  EXPECT_FALSE(R.Stats.Deadlock);
  for (const chip::RetiredPacket &RP : R.Retired) {
    EXPECT_FALSE(RP.Result.Ok);
    EXPECT_EQ(RP.Result.Trap, sim::TrapKind::Watchdog);
  }
}

TEST(ChipRun, ContentionIsMeasuredNotAssumed) {
  // Four MEs hammering SDRAM through a shared channel: stall cycles must
  // be nonzero, and utilization must stay a sane fraction.
  chip::ChipParams CP;
  CP.MP.MeCount = 4;
  CP.MP.ContextsPerMe = 4;
  DriveResult R = drive(heavyProgram(24), CP, 80);
  EXPECT_EQ(R.Stats.PacketsRetired, 80u);
  EXPECT_GT(R.Stats.Sdram.StallCycles, 0u);
  EXPECT_GT(R.Stats.Sdram.Transactions, 0u);
  for (unsigned M = 0; M != 4; ++M) {
    EXPECT_GE(R.Stats.utilization(M), 0.0);
    EXPECT_LE(R.Stats.utilization(M), 1.0);
  }
}

TEST(ChipRun, DoubleRunIsBitIdentical) {
  // The determinism contract: same programs, same stream, same params
  // => identical trace hash, ring traces, cycle counts, and final SDRAM
  // image.
  chip::ChipParams CP;
  CP.MP.MeCount = 3;
  CP.MP.ContextsPerMe = 4;
  AllocatedProgram Prog = heavyProgram(12);
  DriveResult A = drive(Prog, CP, 60);
  DriveResult B = drive(Prog, CP, 60);

  EXPECT_EQ(A.Stats.TraceHash, B.Stats.TraceHash);
  EXPECT_EQ(A.Stats.FinalCycles, B.Stats.FinalCycles);
  EXPECT_EQ(A.Stats.MeBusyCycles, B.Stats.MeBusyCycles);
  EXPECT_EQ(A.Stats.CtxPackets, B.Stats.CtxPackets);
  EXPECT_EQ(A.Stats.Sdram.StallCycles, B.Stats.Sdram.StallCycles);
  EXPECT_EQ(A.Stats.Scratch.StallCycles, B.Stats.Scratch.StallCycles);
  ASSERT_EQ(A.Stats.InputRings.size(), B.Stats.InputRings.size());
  for (size_t I = 0; I != A.Stats.InputRings.size(); ++I)
    EXPECT_EQ(A.Stats.InputRings[I].TraceHash,
              B.Stats.InputRings[I].TraceHash);
  EXPECT_EQ(A.Stats.TxRing.TraceHash, B.Stats.TxRing.TraceHash);
  EXPECT_EQ(A.ImageHash, B.ImageHash);
  ASSERT_EQ(A.Retired.size(), B.Retired.size());
  for (size_t I = 0; I != A.Retired.size(); ++I) {
    EXPECT_EQ(A.Retired[I].Me, B.Retired[I].Me);
    EXPECT_EQ(A.Retired[I].Ctx, B.Retired[I].Ctx);
    EXPECT_EQ(A.Retired[I].RetireTime, B.Retired[I].RetireTime);
    EXPECT_EQ(A.Retired[I].Result.Cycles, B.Retired[I].Result.Cycles);
  }
}

namespace {

/// classify(in, out): read *in, branch on its low bit through two
/// single-predecessor arms (a superblock-forming shape), then a few
/// dependent SDRAM reads so the packet swaps several times, then
/// *out = tag. Exercises guards, side exits, and mem yields from
/// inside a superblock.
AllocatedProgram branchyProgram() {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  AllocInstr And;
  And.Op = MOp::Alu;
  And.Alu = cps::PrimOp::And;
  And.Srcs = {AOperand::reg({Bank::S, 0}), AOperand::constant(1)};
  And.Dsts = {{Bank::S, 1}};
  AllocInstr Br;
  Br.Op = MOp::Branch;
  Br.Cmp = cps::CmpOp::Eq;
  Br.Srcs = {AOperand::reg({Bank::S, 1}), AOperand::constant(0)};
  Br.Target = 1;
  Br.TargetElse = 2;
  AllocInstr J3;
  J3.Op = MOp::Jump;
  J3.Target = 3;
  P.Blocks.push_back(
      {{sdramRead(AOperand::reg({Bank::A, 0}), {Bank::S, 0}), And, Br}});
  P.Blocks.push_back({{imm(0xEE000000u, {Bank::L, 0}), J3}});
  P.Blocks.push_back({{imm(0xDD000000u, {Bank::L, 0}), J3}});
  P.Blocks.push_back(
      {{sdramRead(AOperand::reg({Bank::A, 0}), {Bank::L, 1}),
        sdramRead(AOperand::reg({Bank::A, 0}), {Bank::L, 1}),
        sdramWrite(AOperand::reg({Bank::A, 1}), AOperand::reg({Bank::L, 0})),
        haltOf({AOperand::reg({Bank::L, 0})})}});
  return P;
}

/// Runs the same stream under both execution models and requires every
/// observable — schedule, stalls, ring traces, per-packet results, and
/// the final SDRAM image — to be bit-identical.
void expectThreadedMatchesInterp(const AllocatedProgram &Prog,
                                 chip::ChipParams CP, uint64_t N,
                                 uint64_t Budget = 50'000) {
  CP.Exec = chip::ExecModel::Interp;
  DriveResult A = drive(Prog, CP, N, Budget);
  CP.Exec = chip::ExecModel::Threaded;
  DriveResult B = drive(Prog, CP, N, Budget);

  EXPECT_EQ(A.Stats.Exec, chip::ExecModel::Interp);
  EXPECT_EQ(B.Stats.Exec, chip::ExecModel::Threaded);
  EXPECT_EQ(A.Stats.Superblocks, 0u);
  EXPECT_EQ(A.Stats.TraceHash, B.Stats.TraceHash);
  EXPECT_EQ(A.Stats.FinalCycles, B.Stats.FinalCycles);
  EXPECT_EQ(A.Stats.PacketsDispatched, B.Stats.PacketsDispatched);
  EXPECT_EQ(A.Stats.PacketsRetired, B.Stats.PacketsRetired);
  EXPECT_EQ(A.Stats.TailPackets, B.Stats.TailPackets);
  EXPECT_EQ(A.Stats.MeBusyCycles, B.Stats.MeBusyCycles);
  EXPECT_EQ(A.Stats.CtxPackets, B.Stats.CtxPackets);
  EXPECT_EQ(A.Stats.Sram.Transactions, B.Stats.Sram.Transactions);
  EXPECT_EQ(A.Stats.Sram.StallCycles, B.Stats.Sram.StallCycles);
  EXPECT_EQ(A.Stats.Sdram.Transactions, B.Stats.Sdram.Transactions);
  EXPECT_EQ(A.Stats.Sdram.StallCycles, B.Stats.Sdram.StallCycles);
  EXPECT_EQ(A.Stats.Scratch.Transactions, B.Stats.Scratch.Transactions);
  EXPECT_EQ(A.Stats.Scratch.StallCycles, B.Stats.Scratch.StallCycles);
  EXPECT_EQ(A.Stats.ReorderHighWater, B.Stats.ReorderHighWater);
  EXPECT_EQ(A.Stats.RxDmaTransactions, B.Stats.RxDmaTransactions);
  ASSERT_EQ(A.Stats.InputRings.size(), B.Stats.InputRings.size());
  for (size_t I = 0; I != A.Stats.InputRings.size(); ++I)
    EXPECT_EQ(A.Stats.InputRings[I].TraceHash,
              B.Stats.InputRings[I].TraceHash);
  EXPECT_EQ(A.Stats.TxRing.TraceHash, B.Stats.TxRing.TraceHash);
  EXPECT_EQ(A.ImageHash, B.ImageHash);
  ASSERT_EQ(A.Retired.size(), B.Retired.size());
  for (size_t I = 0; I != A.Retired.size(); ++I) {
    EXPECT_EQ(A.Retired[I].Me, B.Retired[I].Me);
    EXPECT_EQ(A.Retired[I].Ctx, B.Retired[I].Ctx);
    EXPECT_EQ(A.Retired[I].RetireTime, B.Retired[I].RetireTime);
    EXPECT_EQ(A.Retired[I].CompleteTime, B.Retired[I].CompleteTime);
    EXPECT_EQ(A.Retired[I].Result.Ok, B.Retired[I].Result.Ok);
    EXPECT_EQ(A.Retired[I].Result.Cycles, B.Retired[I].Result.Cycles);
    EXPECT_EQ(A.Retired[I].Result.Instructions,
              B.Retired[I].Result.Instructions);
    EXPECT_EQ(A.Retired[I].Result.HaltValues, B.Retired[I].Result.HaltValues);
  }
}

} // namespace

TEST(ChipRun, ThreadedMatchesInterpStraightLine) {
  // Single-block program: the fast path runs it as one stream with mem
  // yields; the whole schedule must be bit-identical to the interpreter.
  chip::ChipParams CP;
  CP.MP.MeCount = 3;
  CP.MP.ContextsPerMe = 4;
  expectThreadedMatchesInterp(heavyProgram(12), CP, 60);
}

TEST(ChipRun, ThreadedMatchesInterpThroughSuperblocks) {
  // Branchy program that actually forms superblocks: guard exits and
  // mem yields from inside the collapsed chain must reconstruct the
  // interpreter's exact instruction and cycle totals.
  chip::ChipParams CP;
  CP.MP.MeCount = 4;
  CP.MP.ContextsPerMe = 4;
  AllocatedProgram Prog = branchyProgram();
  CP.Exec = chip::ExecModel::Threaded;
  DriveResult B = drive(Prog, CP, 96);
  EXPECT_GT(B.Stats.Superblocks, 0u);
  EXPECT_GT(B.Stats.SuperblockOps, 0u);
  expectThreadedMatchesInterp(Prog, CP, 96);
}

TEST(ChipRun, ThreadedMatchesInterpUnderWatchdog) {
  // Watchdog-bound spin packets: the fast path's per-block budget gate
  // falls back to the slow tier, whose instruction counting must hit
  // the same watchdog trap at the same point.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 4;
  expectThreadedMatchesInterp(spinProgram(), CP, 12, 2'000);
}

TEST(ChipRun, PerContextSpillWindowsDoNotCollide) {
  // A program that spills through scratch: every context uses the same
  // nominal spill addresses, the per-context rebase must keep them
  // apart. Value correctness across 4x4 concurrent contexts proves it.
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  AllocInstr Ld = sdramRead(AOperand::reg({Bank::A, 0}), {Bank::S, 0});
  AllocInstr Spill;
  Spill.Op = MOp::MemWrite;
  Spill.Space = MemSpace::Scratch;
  Spill.Srcs = {AOperand::constant(P.SpillBase),
                AOperand::reg({Bank::S, 0})};
  AllocInstr Wipe = imm(0, {Bank::S, 0});
  // A second SDRAM read parks the context, giving neighbours time to
  // overwrite a shared slot if the rebase were broken.
  AllocInstr Park = sdramRead(AOperand::reg({Bank::A, 0}), {Bank::L, 1});
  AllocInstr Reload;
  Reload.Op = MOp::MemRead;
  Reload.Space = MemSpace::Scratch;
  Reload.Srcs = {AOperand::constant(P.SpillBase)};
  Reload.Dsts = {{Bank::L, 0}};
  AllocInstr St = sdramWrite(AOperand::reg({Bank::A, 1}),
                             AOperand::reg({Bank::L, 0}));
  P.NumSpillSlots = 1;
  P.Blocks.push_back(
      {{Ld, Spill, Wipe, Park, Reload, St,
        haltOf({AOperand::reg({Bank::L, 0})})}});

  chip::ChipParams CP;
  CP.MP.MeCount = 4;
  CP.MP.ContextsPerMe = 4;
  DriveResult R = drive(P, CP, 64);
  ASSERT_EQ(R.Retired.size(), 64u);
  for (const chip::RetiredPacket &RP : R.Retired) {
    ASSERT_TRUE(RP.Result.Ok) << RP.Result.Error.message();
    EXPECT_EQ(RP.Result.HaltValues[0], 0xC0DE0000u + RP.Pkt.Seq)
        << "spill slot collision on packet " << RP.Pkt.Seq;
  }
}
