//===- nova_lexer_test.cpp - Lexer tests ----------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Lexer.h"

#include <gtest/gtest.h>

using namespace nova;

namespace {

std::vector<Token> lex(const std::string &Source,
                       unsigned ExpectedErrors = 0) {
  static SourceManager SM; // buffers must outlive returned string_views
  uint32_t Buf = SM.addBuffer("test.nova", Source);
  DiagnosticEngine Diags(SM);
  Lexer L(SM, Buf, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_EQ(Diags.errorCount(), ExpectedErrors) << Diags.render();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(Lexer, Keywords) {
  auto Tokens = lex("layout fun let if else while try handle raise "
                    "pack unpack true false word bool exn overlay");
  std::vector<TokenKind> Expected = {
      TokenKind::KwLayout, TokenKind::KwFun,    TokenKind::KwLet,
      TokenKind::KwIf,     TokenKind::KwElse,   TokenKind::KwWhile,
      TokenKind::KwTry,    TokenKind::KwHandle, TokenKind::KwRaise,
      TokenKind::KwPack,   TokenKind::KwUnpack, TokenKind::KwTrue,
      TokenKind::KwFalse,  TokenKind::KwWord,   TokenKind::KwBool,
      TokenKind::KwExn,    TokenKind::KwOverlay, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(Lexer, IntegerLiterals) {
  auto Tokens = lex("0 42 0x60 0xFFFFFFFF");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].IntValue, 0u);
  EXPECT_EQ(Tokens[1].IntValue, 42u);
  EXPECT_EQ(Tokens[2].IntValue, 0x60u);
  EXPECT_EQ(Tokens[3].IntValue, 0xFFFFFFFFu);
}

TEST(Lexer, OverflowingLiteralIsError) {
  auto Tokens = lex("0x100000000", /*ExpectedErrors=*/1);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Error);
}

TEST(Lexer, OperatorsAndArrows) {
  auto Tokens = lex("<- -> == != <= >= << >> && || ## = < >");
  std::vector<TokenKind> Expected = {
      TokenKind::LeftArrow, TokenKind::ThinArrow, TokenKind::EqEq,
      TokenKind::NotEq,     TokenKind::LessEq,    TokenKind::GreaterEq,
      TokenKind::Shl,       TokenKind::Shr,       TokenKind::AmpAmp,
      TokenKind::PipePipe,  TokenKind::HashHash,  TokenKind::Assign,
      TokenKind::Less,      TokenKind::Greater,   TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(Lexer, Comments) {
  auto Tokens = lex("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(Lexer, UnterminatedBlockComment) {
  lex("a /* never ends", /*ExpectedErrors=*/1);
}

TEST(Lexer, UnknownCharacter) {
  auto Tokens = lex("a @ b", /*ExpectedErrors=*/1);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(Lexer, IdentifiersWithUnderscores) {
  auto Tokens = lex("flow_label _tmp x1");
  EXPECT_EQ(Tokens[0].Text, "flow_label");
  EXPECT_EQ(Tokens[1].Text, "_tmp");
  EXPECT_EQ(Tokens[2].Text, "x1");
}

TEST(Lexer, LocationsPointAtTokens) {
  auto Tokens = lex("ab\ncd");
  EXPECT_EQ(Tokens[0].Loc.Offset, 0u);
  EXPECT_EQ(Tokens[1].Loc.Offset, 3u);
}
