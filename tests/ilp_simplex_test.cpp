//===- ilp_simplex_test.cpp - LP solver tests ----------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Simplex.h"

#include "dense_lp_ref.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace nova;
using namespace nova::ilp;

namespace {

Model twoVarModel(VarId &X, VarId &Y) {
  Model M;
  X = M.addContinuous("x", 0.0, 10.0);
  Y = M.addContinuous("y", 0.0, 10.0);
  return M;
}

} // namespace

TEST(Simplex, SimpleMaximizeViaMinimize) {
  // min -x - y  s.t. x + y <= 1  =>  obj -1.
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = -1.0;
  M.var(Y).Objective = -1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 1.0);

  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -1.0, 1e-7);
  EXPECT_NEAR(S.value(X) + S.value(Y), 1.0, 1e-7);
}

TEST(Simplex, BoundFlipOnly) {
  // No constraints at all: optimum sits at a variable bound.
  Model M;
  VarId X = M.addContinuous("x", 0.0, 3.0, -1.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -3.0, 1e-9);
  EXPECT_NEAR(S.value(X), 3.0, 1e-9);
}

TEST(Simplex, EqualityNeedsPhaseOne) {
  // x + y = 2, min x  =>  x = 0, y = 2.
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = 1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::EQ, 2.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 0.0, 1e-7);
  EXPECT_NEAR(S.value(Y), 2.0, 1e-7);
}

TEST(Simplex, GreaterEqual) {
  Model M;
  VarId X = M.addContinuous("x", 0.0, 3.0, 1.0);
  M.addConstraint(LinExpr(X), Rel::GE, 1.5);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.value(X), 1.5, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Upper = 1.0;
  M.var(Y).Upper = 1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::GE, 5.0);
  Simplex S(M);
  EXPECT_EQ(S.solve().Status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model M;
  M.addContinuous("x", 0.0, Inf, -1.0);
  Simplex S(M);
  EXPECT_EQ(S.solve().Status, LpStatus::Unbounded);
}

TEST(Simplex, ClassicDiet) {
  // min 2a + 3b  s.t.  a + b >= 4,  2a + b >= 5,  a,b >= 0.
  // Optimum at a=1, b=3: obj 11.  (Vertices: (4,0)->8? check: a=4,b=0:
  // 2a+b=8>=5 ok, obj 8. Hmm, recompute: obj(4,0)=8 < 11, so optimum is
  // (4,0) with objective 8.)
  Model M;
  VarId A = M.addContinuous("a", 0.0, Inf, 2.0);
  VarId B = M.addContinuous("b", 0.0, Inf, 3.0);
  M.addConstraint(LinExpr(A) + LinExpr(B), Rel::GE, 4.0);
  M.addConstraint(2.0 * LinExpr(A) + LinExpr(B), Rel::GE, 5.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 8.0, 1e-6);
  EXPECT_NEAR(S.value(A), 4.0, 1e-6);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints intersecting at the same vertex.
  Model M;
  VarId X = M.addContinuous("x", 0.0, Inf, -1.0);
  VarId Y = M.addContinuous("y", 0.0, Inf, -1.0);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 1.0);
  M.addConstraint(LinExpr(X) + 2.0 * LinExpr(Y), Rel::LE, 1.0);
  M.addConstraint(2.0 * LinExpr(X) + LinExpr(Y), Rel::LE, 2.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -1.0, 1e-6);
}

TEST(Simplex, WarmStartAfterBoundChange) {
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = -1.0;
  M.var(Y).Objective = -1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 4.0);

  Simplex S(M);
  LpResult R1 = S.solve();
  ASSERT_EQ(R1.Status, LpStatus::Optimal);
  EXPECT_NEAR(R1.Objective, -4.0, 1e-7);

  // Branch-like bound change: x fixed to 1.
  S.setVarBounds(X, 1.0, 1.0);
  LpResult R2 = S.solve();
  ASSERT_EQ(R2.Status, LpStatus::Optimal);
  EXPECT_NEAR(R2.Objective, -4.0, 1e-7);
  EXPECT_NEAR(S.value(X), 1.0, 1e-9);
  EXPECT_NEAR(S.value(Y), 3.0, 1e-7);

  // And restore.
  S.setVarBounds(X, 0.0, 10.0);
  LpResult R3 = S.solve();
  ASSERT_EQ(R3.Status, LpStatus::Optimal);
  EXPECT_NEAR(R3.Objective, -4.0, 1e-7);
}

TEST(Simplex, FixedVariableRespected) {
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = -5.0;
  M.var(Y).Objective = -1.0;
  M.fix(X, 2.0);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 3.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.value(X), 2.0, 1e-9);
  EXPECT_NEAR(S.value(Y), 1.0, 1e-7);
}

TEST(Simplex, NegativeCoefficients) {
  // min x - y  s.t.  -x + y <= 2, x <= 3, y <= 5 bounds.
  Model M;
  VarId X = M.addContinuous("x", 0.0, 3.0, 1.0);
  VarId Y = M.addContinuous("y", 0.0, 5.0, -1.0);
  M.addConstraint(LinExpr(Y) - LinExpr(X), Rel::LE, 2.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  // Best: y - x maximized => pick x to trade 1:1? obj = x - y; y <= x+2.
  // obj >= x - (x+2) = -2; achieved for any x with y = x+2 <= 5.
  EXPECT_NEAR(R.Objective, -2.0, 1e-6);
}

// Property test: random dense-ish LPs where x = 0 is feasible, so status
// must be Optimal or Unbounded; when Optimal, the reported point must be
// feasible and match the reported objective.
class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, SolutionIsConsistent) {
  Rng R(GetParam() * 7919 + 3);
  unsigned NumVars = 2 + R.below(8);
  unsigned NumRows = 1 + R.below(8);

  Model M;
  std::vector<VarId> Vars;
  for (unsigned J = 0; J != NumVars; ++J)
    Vars.push_back(M.addContinuous("v" + std::to_string(J), 0.0,
                                   1.0 + R.below(9),
                                   R.range(-5, 5)));
  for (unsigned I = 0; I != NumRows; ++I) {
    LinExpr E;
    for (unsigned J = 0; J != NumVars; ++J)
      if (R.chance(2, 3))
        E.add(Vars[J], static_cast<double>(R.range(-4, 4)));
    // Nonnegative rhs keeps x = 0 feasible for LE rows.
    M.addConstraint(std::move(E), Rel::LE, static_cast<double>(R.below(10)));
  }

  Simplex S(M);
  LpResult Res = S.solve();
  ASSERT_TRUE(Res.Status == LpStatus::Optimal ||
              Res.Status == LpStatus::Unbounded);
  if (Res.Status != LpStatus::Optimal)
    return;

  std::vector<double> X = S.values();
  double Obj = 0.0;
  for (unsigned J = 0; J != NumVars; ++J) {
    const Variable &V = M.var(Vars[J]);
    EXPECT_GE(X[J], V.Lower - 1e-6);
    EXPECT_LE(X[J], V.Upper + 1e-6);
    Obj += V.Objective * X[J];
  }
  EXPECT_NEAR(Obj, Res.Objective, 1e-5);
  for (const Constraint &C : M.constraints()) {
    double Act = 0.0;
    for (const Term &T : C.Terms)
      Act += T.Coeff * X[T.Var.Index];
    EXPECT_LE(Act, C.Rhs + 1e-6);
  }
  // x = 0 is feasible, so the optimum can be no worse than 0.
  EXPECT_LE(Res.Objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp, ::testing::Range(0, 40));

namespace {

/// Random bounded-variable LP with mixed row senses. Infeasible and
/// unbounded instances are intentionally possible: the oracle comparison
/// below requires the two engines to agree on the status too.
Model randomBoundedLp(Rng &R, std::vector<VarId> &Vars) {
  unsigned NumVars = 2 + R.below(10);
  unsigned NumRows = 1 + R.below(10);
  Model M;
  Vars.clear();
  for (unsigned J = 0; J != NumVars; ++J) {
    double Lo = static_cast<double>(R.range(-4, 2));
    double Hi = Lo + 1.0 + R.below(8);
    if (R.chance(1, 10))
      Hi = Inf; // occasional one-sided variable
    Vars.push_back(M.addContinuous("v" + std::to_string(J), Lo, Hi,
                                   static_cast<double>(R.range(-5, 5))));
  }
  for (unsigned I = 0; I != NumRows; ++I) {
    LinExpr E;
    unsigned Nnz = 0;
    for (unsigned J = 0; J != NumVars; ++J)
      if (R.chance(1, 2)) {
        int C = R.range(-4, 4);
        if (C == 0)
          continue;
        E.add(Vars[J], static_cast<double>(C));
        ++Nnz;
      }
    if (Nnz == 0)
      E.add(Vars[0], 1.0);
    Rel Sense = R.chance(1, 4) ? (R.chance(1, 2) ? Rel::GE : Rel::EQ)
                               : Rel::LE;
    M.addConstraint(std::move(E), Rel(Sense),
                    static_cast<double>(R.range(-6, 12)));
  }
  return M;
}

} // namespace

// Oracle fuzz: the sparse-LU engine and the retired dense-inverse engine
// (tests/dense_lp_ref.h, the previous production code kept verbatim) must
// agree on status and, when optimal, on the objective — over LPs with
// negative lower bounds, one-sided variables and mixed row senses.
class SimplexVsDenseOracle : public ::testing::TestWithParam<int> {};

TEST_P(SimplexVsDenseOracle, StatusAndObjectiveMatch) {
  Rng R(GetParam() * 6271 + 101);
  std::vector<VarId> Vars;
  Model M = randomBoundedLp(R, Vars);

  Simplex Sparse(M);
  denseref::DenseSimplex Dense(M);
  LpResult A = Sparse.solve();
  denseref::DenseLpResult B = Dense.solve();

  EXPECT_EQ(static_cast<int>(A.Status), static_cast<int>(B.Status));
  if (A.Status == LpStatus::Optimal &&
      B.Status == denseref::DenseLpStatus::Optimal)
    EXPECT_NEAR(A.Objective, B.Objective, 1e-6);
}

// Warm-start oracle fuzz: after the initial solve, drive both engines
// through the same branch-like bound-change chain. Each re-solve must
// keep the engines in agreement, exercising basis reuse, eta-file growth
// and the periodic refactorization path.
TEST_P(SimplexVsDenseOracle, WarmStartChainMatches) {
  Rng R(GetParam() * 28001 + 7);
  std::vector<VarId> Vars;
  Model M = randomBoundedLp(R, Vars);

  Simplex Sparse(M);
  denseref::DenseSimplex Dense(M);
  Sparse.solve();
  Dense.solve();

  for (unsigned Step = 0; Step != 12; ++Step) {
    VarId V = Vars[R.below(static_cast<uint32_t>(Vars.size()))];
    double Lo = M.var(V).Lower;
    double Hi = M.var(V).Upper;
    if (R.chance(1, 2) && std::isfinite(Lo)) {
      // Fix to a point inside the original range.
      double X = Lo + R.below(3);
      Sparse.setVarBounds(V, X, X);
      Dense.setVarBounds(V, X, X);
    } else {
      // Restore the model bounds.
      Sparse.setVarBounds(V, Lo, Hi);
      Dense.setVarBounds(V, Lo, Hi);
    }
    LpResult A = Sparse.solve();
    denseref::DenseLpResult B = Dense.solve();
    ASSERT_EQ(static_cast<int>(A.Status), static_cast<int>(B.Status))
        << "step " << Step;
    if (A.Status == LpStatus::Optimal)
      ASSERT_NEAR(A.Objective, B.Objective, 1e-6) << "step " << Step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexVsDenseOracle, ::testing::Range(0, 100));

namespace {

/// y = B * x where slot s of the basis holds Cols[Basic[s]] and x is
/// slot-indexed: the direct product used to check the factored solves.
std::vector<double> multiplyBasis(const std::vector<std::vector<Term>> &Cols,
                                  const std::vector<uint32_t> &Basic,
                                  const std::vector<double> &X) {
  std::vector<double> Y(Basic.size(), 0.0);
  for (unsigned S = 0; S != Basic.size(); ++S)
    for (const Term &T : Cols[Basic[S]])
      Y[T.Var.Index] += T.Coeff * X[S];
  return Y;
}

/// Random diagonally dominant m*m column set (guaranteed nonsingular).
std::vector<std::vector<Term>> randomDominantCols(Rng &R, unsigned M) {
  std::vector<std::vector<Term>> Cols(M);
  for (unsigned J = 0; J != M; ++J) {
    Cols[J].push_back({VarId{J}, 4.0 + static_cast<double>(R.below(3))});
    for (unsigned I = 0; I != M; ++I)
      if (I != J && R.chance(1, 4))
        Cols[J].push_back(
            {VarId{I}, static_cast<double>(R.range(-1, 1)) * 0.5});
  }
  return Cols;
}

} // namespace

TEST(Basis, FtranBtranRoundtrip) {
  Rng R(12345);
  for (unsigned Trial = 0; Trial != 20; ++Trial) {
    unsigned M = 3 + R.below(20);
    std::vector<std::vector<Term>> Cols = randomDominantCols(R, M);
    std::vector<uint32_t> Basic(M);
    for (unsigned I = 0; I != M; ++I)
      Basic[I] = I;

    Basis B;
    B.setup(M);
    ASSERT_TRUE(B.factorize(Cols, Basic).empty());
    ASSERT_TRUE(B.valid());

    // FTRAN: B * x = b.
    IndexedVector X;
    X.setup(M);
    std::vector<double> Rhs(M, 0.0);
    for (unsigned I = 0; I != M; ++I)
      if (R.chance(1, 2)) {
        Rhs[I] = static_cast<double>(R.range(-5, 5));
        if (Rhs[I] != 0.0)
          X.set(I, Rhs[I]);
      }
    B.ftran(X);
    std::vector<double> Sol(M, 0.0);
    for (unsigned S = 0; S != M; ++S)
      Sol[S] = X[S];
    std::vector<double> Back = multiplyBasis(Cols, Basic, Sol);
    for (unsigned I = 0; I != M; ++I)
      EXPECT_NEAR(Back[I], Rhs[I], 1e-9) << "trial " << Trial;

    // BTRAN: y * B = c, checked column by column.
    IndexedVector Y;
    Y.setup(M);
    std::vector<double> C(M, 0.0);
    for (unsigned S = 0; S != M; ++S)
      if (R.chance(1, 2)) {
        C[S] = static_cast<double>(R.range(-5, 5));
        if (C[S] != 0.0)
          Y.set(S, C[S]);
      }
    B.btran(Y);
    for (unsigned S = 0; S != M; ++S) {
      double Dot = 0.0;
      for (const Term &T : Cols[Basic[S]])
        Dot += Y[T.Var.Index] * T.Coeff;
      EXPECT_NEAR(Dot, C[S], 1e-9) << "trial " << Trial;
    }
  }
}

TEST(Basis, SingularBasisReportsDeficiency) {
  // Columns 0 and 1 are identical: any basis using both is singular.
  std::vector<std::vector<Term>> Cols(4);
  Cols[0] = {{VarId{0}, 1.0}, {VarId{1}, 1.0}};
  Cols[1] = {{VarId{0}, 1.0}, {VarId{1}, 1.0}};
  Cols[2] = {{VarId{2}, 1.0}};
  Cols[3] = {{VarId{1}, 1.0}}; // unit column used for the repair

  std::vector<uint32_t> Basic = {0, 1, 2};
  Basis B;
  B.setup(3);
  auto Deficient = B.factorize(Cols, Basic);
  ASSERT_EQ(Deficient.size(), 1u);
  EXPECT_FALSE(B.valid());
  auto [Slot, Row] = Deficient[0];
  EXPECT_TRUE(Slot == 0 || Slot == 1);
  EXPECT_TRUE(Row == 0 || Row == 1);

  // Patch the deficient slot the way Simplex::refactorize does (with a
  // unit column covering the uncovered row) and refactorize.
  ASSERT_EQ(Row, 1u) << "rows 0 and 1 differ only via the dup columns";
  Basic[Slot] = 3;
  ASSERT_TRUE(B.factorize(Cols, Basic).empty());
  EXPECT_TRUE(B.valid());

  // The repaired basis must actually solve.
  IndexedVector X;
  X.setup(3);
  X.set(0, 2.0);
  X.set(1, 3.0);
  X.set(2, 5.0);
  B.ftran(X);
  std::vector<double> Sol = {X[0], X[1], X[2]};
  std::vector<double> Back = multiplyBasis(Cols, Basic, Sol);
  EXPECT_NEAR(Back[0], 2.0, 1e-12);
  EXPECT_NEAR(Back[1], 3.0, 1e-12);
  EXPECT_NEAR(Back[2], 5.0, 1e-12);
}

TEST(Basis, EtaUpdateMatchesReplacedBasis) {
  Rng R(999);
  for (unsigned Trial = 0; Trial != 10; ++Trial) {
    unsigned M = 4 + R.below(12);
    std::vector<std::vector<Term>> Cols = randomDominantCols(R, M);
    std::vector<uint32_t> Basic(M);
    for (unsigned I = 0; I != M; ++I)
      Basic[I] = I;

    Basis B;
    B.setup(M);
    ASSERT_TRUE(B.factorize(Cols, Basic).empty());

    // Entering column: a fresh column appended to the matrix.
    Cols.emplace_back();
    for (unsigned I = 0; I != M; ++I)
      if (R.chance(1, 3))
        Cols.back().push_back({VarId{I}, static_cast<double>(R.range(-3, 3)) +
                                             0.25});
    if (Cols.back().empty())
      Cols.back().push_back({VarId{0}, 1.0});

    IndexedVector W;
    W.setup(M);
    for (const Term &T : Cols.back())
      W.add(T.Var.Index, T.Coeff);
    B.ftran(W);
    // Pivot on the largest transformed entry (mirrors the ratio test
    // preferring large pivots).
    uint32_t Pivot = 0;
    double Best = 0.0;
    for (unsigned S = 0; S != M; ++S)
      if (std::fabs(W[S]) > Best) {
        Best = std::fabs(W[S]);
        Pivot = S;
      }
    ASSERT_GT(Best, 1e-9);
    B.update(W, Pivot);
    Basic[Pivot] = M; // the appended column

    // FTRAN through LU + eta must solve the *replaced* basis.
    IndexedVector X;
    X.setup(M);
    std::vector<double> Rhs(M, 0.0);
    for (unsigned I = 0; I != M; ++I) {
      Rhs[I] = static_cast<double>(R.range(-4, 4));
      if (Rhs[I] != 0.0)
        X.set(I, Rhs[I]);
    }
    B.ftran(X);
    std::vector<double> Sol(M, 0.0);
    for (unsigned S = 0; S != M; ++S)
      Sol[S] = X[S];
    std::vector<double> Back = multiplyBasis(Cols, Basic, Sol);
    for (unsigned I = 0; I != M; ++I)
      EXPECT_NEAR(Back[I], Rhs[I], 1e-8) << "trial " << Trial;

    // BTRAN through the eta file as well.
    IndexedVector Y;
    Y.setup(M);
    Y.set(Pivot, 1.0);
    B.btran(Y);
    for (unsigned S = 0; S != M; ++S) {
      double Dot = 0.0;
      for (const Term &T : Cols[Basic[S]])
        Dot += Y[T.Var.Index] * T.Coeff;
      EXPECT_NEAR(Dot, S == Pivot ? 1.0 : 0.0, 1e-8) << "trial " << Trial;
    }
  }
}

// Long warm-start chain on one structured LP: enough pivots to overflow
// the eta file repeatedly, so the periodic refactorization and the
// basic-value refresh paths are exercised, with the dense engine as the
// oracle at every step.
TEST(Simplex, RefactorizationDriftLongChain) {
  Rng R(424242);
  Model M;
  std::vector<VarId> Vars;
  const unsigned NumVars = 40, NumRows = 25;
  for (unsigned J = 0; J != NumVars; ++J)
    Vars.push_back(M.addContinuous("v" + std::to_string(J), 0.0,
                                   2.0 + R.below(6),
                                   static_cast<double>(R.range(-5, 5))));
  for (unsigned I = 0; I != NumRows; ++I) {
    LinExpr E;
    for (unsigned J = 0; J != NumVars; ++J)
      if (R.chance(1, 3))
        E.add(Vars[J], static_cast<double>(R.range(-3, 3)));
    E.add(Vars[I % NumVars], 1.0);
    M.addConstraint(std::move(E), Rel::LE, 4.0 + R.below(10));
  }

  Simplex Sparse(M);
  denseref::DenseSimplex Dense(M);
  ASSERT_EQ(static_cast<int>(Sparse.solve().Status),
            static_cast<int>(Dense.solve().Status));

  unsigned Optimal = 0;
  for (unsigned Step = 0; Step != 120; ++Step) {
    VarId V = Vars[R.below(NumVars)];
    if (R.chance(1, 2)) {
      double X = static_cast<double>(R.below(3));
      Sparse.setVarBounds(V, X, X);
      Dense.setVarBounds(V, X, X);
    } else {
      Sparse.setVarBounds(V, M.var(V).Lower, M.var(V).Upper);
      Dense.setVarBounds(V, M.var(V).Lower, M.var(V).Upper);
    }
    LpResult A = Sparse.solve();
    denseref::DenseLpResult B = Dense.solve();
    ASSERT_EQ(static_cast<int>(A.Status), static_cast<int>(B.Status))
        << "step " << Step;
    if (A.Status == LpStatus::Optimal) {
      ASSERT_NEAR(A.Objective, B.Objective, 1e-6) << "step " << Step;
      ++Optimal;
    }
  }
  EXPECT_GT(Optimal, 60u); // the chain must not degenerate to infeasible
  // The chain is long enough that the eta file must have been rebuilt.
  EXPECT_GT(Sparse.stats().Factorizations, 2u);
  EXPECT_GT(Sparse.stats().EtaPivots, 100u);
}
