//===- ilp_simplex_test.cpp - LP solver tests ----------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Simplex.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace nova;
using namespace nova::ilp;

namespace {

Model twoVarModel(VarId &X, VarId &Y) {
  Model M;
  X = M.addContinuous("x", 0.0, 10.0);
  Y = M.addContinuous("y", 0.0, 10.0);
  return M;
}

} // namespace

TEST(Simplex, SimpleMaximizeViaMinimize) {
  // min -x - y  s.t. x + y <= 1  =>  obj -1.
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = -1.0;
  M.var(Y).Objective = -1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 1.0);

  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -1.0, 1e-7);
  EXPECT_NEAR(S.value(X) + S.value(Y), 1.0, 1e-7);
}

TEST(Simplex, BoundFlipOnly) {
  // No constraints at all: optimum sits at a variable bound.
  Model M;
  VarId X = M.addContinuous("x", 0.0, 3.0, -1.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -3.0, 1e-9);
  EXPECT_NEAR(S.value(X), 3.0, 1e-9);
}

TEST(Simplex, EqualityNeedsPhaseOne) {
  // x + y = 2, min x  =>  x = 0, y = 2.
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = 1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::EQ, 2.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 0.0, 1e-7);
  EXPECT_NEAR(S.value(Y), 2.0, 1e-7);
}

TEST(Simplex, GreaterEqual) {
  Model M;
  VarId X = M.addContinuous("x", 0.0, 3.0, 1.0);
  M.addConstraint(LinExpr(X), Rel::GE, 1.5);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.value(X), 1.5, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Upper = 1.0;
  M.var(Y).Upper = 1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::GE, 5.0);
  Simplex S(M);
  EXPECT_EQ(S.solve().Status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model M;
  M.addContinuous("x", 0.0, Inf, -1.0);
  Simplex S(M);
  EXPECT_EQ(S.solve().Status, LpStatus::Unbounded);
}

TEST(Simplex, ClassicDiet) {
  // min 2a + 3b  s.t.  a + b >= 4,  2a + b >= 5,  a,b >= 0.
  // Optimum at a=1, b=3: obj 11.  (Vertices: (4,0)->8? check: a=4,b=0:
  // 2a+b=8>=5 ok, obj 8. Hmm, recompute: obj(4,0)=8 < 11, so optimum is
  // (4,0) with objective 8.)
  Model M;
  VarId A = M.addContinuous("a", 0.0, Inf, 2.0);
  VarId B = M.addContinuous("b", 0.0, Inf, 3.0);
  M.addConstraint(LinExpr(A) + LinExpr(B), Rel::GE, 4.0);
  M.addConstraint(2.0 * LinExpr(A) + LinExpr(B), Rel::GE, 5.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 8.0, 1e-6);
  EXPECT_NEAR(S.value(A), 4.0, 1e-6);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints intersecting at the same vertex.
  Model M;
  VarId X = M.addContinuous("x", 0.0, Inf, -1.0);
  VarId Y = M.addContinuous("y", 0.0, Inf, -1.0);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 1.0);
  M.addConstraint(LinExpr(X) + 2.0 * LinExpr(Y), Rel::LE, 1.0);
  M.addConstraint(2.0 * LinExpr(X) + LinExpr(Y), Rel::LE, 2.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -1.0, 1e-6);
}

TEST(Simplex, WarmStartAfterBoundChange) {
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = -1.0;
  M.var(Y).Objective = -1.0;
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 4.0);

  Simplex S(M);
  LpResult R1 = S.solve();
  ASSERT_EQ(R1.Status, LpStatus::Optimal);
  EXPECT_NEAR(R1.Objective, -4.0, 1e-7);

  // Branch-like bound change: x fixed to 1.
  S.setVarBounds(X, 1.0, 1.0);
  LpResult R2 = S.solve();
  ASSERT_EQ(R2.Status, LpStatus::Optimal);
  EXPECT_NEAR(R2.Objective, -4.0, 1e-7);
  EXPECT_NEAR(S.value(X), 1.0, 1e-9);
  EXPECT_NEAR(S.value(Y), 3.0, 1e-7);

  // And restore.
  S.setVarBounds(X, 0.0, 10.0);
  LpResult R3 = S.solve();
  ASSERT_EQ(R3.Status, LpStatus::Optimal);
  EXPECT_NEAR(R3.Objective, -4.0, 1e-7);
}

TEST(Simplex, FixedVariableRespected) {
  VarId X, Y;
  Model M = twoVarModel(X, Y);
  M.var(X).Objective = -5.0;
  M.var(Y).Objective = -1.0;
  M.fix(X, 2.0);
  M.addConstraint(LinExpr(X) + LinExpr(Y), Rel::LE, 3.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.value(X), 2.0, 1e-9);
  EXPECT_NEAR(S.value(Y), 1.0, 1e-7);
}

TEST(Simplex, NegativeCoefficients) {
  // min x - y  s.t.  -x + y <= 2, x <= 3, y <= 5 bounds.
  Model M;
  VarId X = M.addContinuous("x", 0.0, 3.0, 1.0);
  VarId Y = M.addContinuous("y", 0.0, 5.0, -1.0);
  M.addConstraint(LinExpr(Y) - LinExpr(X), Rel::LE, 2.0);
  Simplex S(M);
  LpResult R = S.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  // Best: y - x maximized => pick x to trade 1:1? obj = x - y; y <= x+2.
  // obj >= x - (x+2) = -2; achieved for any x with y = x+2 <= 5.
  EXPECT_NEAR(R.Objective, -2.0, 1e-6);
}

// Property test: random dense-ish LPs where x = 0 is feasible, so status
// must be Optimal or Unbounded; when Optimal, the reported point must be
// feasible and match the reported objective.
class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, SolutionIsConsistent) {
  Rng R(GetParam() * 7919 + 3);
  unsigned NumVars = 2 + R.below(8);
  unsigned NumRows = 1 + R.below(8);

  Model M;
  std::vector<VarId> Vars;
  for (unsigned J = 0; J != NumVars; ++J)
    Vars.push_back(M.addContinuous("v" + std::to_string(J), 0.0,
                                   1.0 + R.below(9),
                                   R.range(-5, 5)));
  for (unsigned I = 0; I != NumRows; ++I) {
    LinExpr E;
    for (unsigned J = 0; J != NumVars; ++J)
      if (R.chance(2, 3))
        E.add(Vars[J], static_cast<double>(R.range(-4, 4)));
    // Nonnegative rhs keeps x = 0 feasible for LE rows.
    M.addConstraint(std::move(E), Rel::LE, static_cast<double>(R.below(10)));
  }

  Simplex S(M);
  LpResult Res = S.solve();
  ASSERT_TRUE(Res.Status == LpStatus::Optimal ||
              Res.Status == LpStatus::Unbounded);
  if (Res.Status != LpStatus::Optimal)
    return;

  std::vector<double> X = S.values();
  double Obj = 0.0;
  for (unsigned J = 0; J != NumVars; ++J) {
    const Variable &V = M.var(Vars[J]);
    EXPECT_GE(X[J], V.Lower - 1e-6);
    EXPECT_LE(X[J], V.Upper + 1e-6);
    Obj += V.Objective * X[J];
  }
  EXPECT_NEAR(Obj, Res.Objective, 1e-5);
  for (const Constraint &C : M.constraints()) {
    double Act = 0.0;
    for (const Term &T : C.Terms)
      Act += T.Coeff * X[T.Var.Index];
    EXPECT_LE(Act, C.Rhs + 1e-6);
  }
  // x = 0 is feasible, so the optimum can be no worse than 0.
  EXPECT_LE(Res.Objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp, ::testing::Range(0, 40));
