//===- nova_sema_test.cpp - Parser + type checker tests -------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Parser.h"
#include "nova/Sema.h"

#include <gtest/gtest.h>

using namespace nova;

namespace {

struct Compilation {
  SourceManager SM;
  AstArena Arena;
  std::unique_ptr<DiagnosticEngine> Diags;
  Program Prog;
  std::unique_ptr<SemaResult> Sema;

  bool run(const std::string &Source) {
    uint32_t Buf = SM.addBuffer("test.nova", Source);
    Diags = std::make_unique<DiagnosticEngine>(SM);
    Parser P(SM, Buf, Arena, *Diags);
    Prog = P.parseProgram();
    if (Diags->hasErrors())
      return false;
    Sema = std::make_unique<SemaResult>(*Diags);
    runSema(Prog, SM, *Diags, *Sema);
    return Sema->Success;
  }

  std::string errors() const { return Diags ? Diags->render() : ""; }
};

} // namespace

TEST(Sema, MinimalFunction) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(x : word) { x + 1 }")) << C.errors();
  const FunDecl *F = C.Prog.findFun("main");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(C.Sema->FunResultType.at(F)->isWord());
}

TEST(Sema, UndefinedVariable) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(x : word) { y }"));
}

TEST(Sema, LetAndArithmetic) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(x : word) {"
                    "  let a = x + 2;"
                    "  let b = (a << 4) & 0xFF;"
                    "  b ^ a"
                    "}"))
      << C.errors();
}

TEST(Sema, BoolAndWordDontMix) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(x : word) { x + (x == 1) }"));
  Compilation C2;
  EXPECT_FALSE(C2.run("fun main(x : word) { if (x) 1 else 2 }"));
}

TEST(Sema, IfBranchesMustAgree) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(x : word) { if (x == 0) 1 else true }"));
  Compilation C2;
  ASSERT_TRUE(C2.run("fun main(x : word) { if (x == 0) 1 else 2 }"))
      << C2.errors();
}

TEST(Sema, TupleDestructuringFromSram) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(addr : word) {"
                    "  let (a, b, c, d) = sram(addr);"
                    "  a + b + c + d"
                    "}"))
      << C.errors();
  // The MemRead aggregate arity is recorded for the allocator.
  bool Found = false;
  for (const auto &[E, N] : C.Sema->MemReadCount) {
    EXPECT_EQ(N, 4u);
    Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(Sema, SdramOddAggregateRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(a : word) {"
                     "  let (x, y, z) = sdram(a);"
                     "  x"
                     "}"));
}

TEST(Sema, AggregateTooLargeRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(a : word) {"
                     "  let (x1,x2,x3,x4,x5,x6,x7,x8,x9) = sram(a);"
                     "  x1"
                     "}"));
}

TEST(Sema, MemReadOutsideLetRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(a : word) { sram(a) + 1 }"));
}

TEST(Sema, StoreStatement) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(a : word) {"
                    "  let (x, y) = sram(a);"
                    "  sram(a + 64) <- (y, x);"
                    "  0"
                    "}"))
      << C.errors();
}

TEST(Sema, RecordsAndFieldAccess) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(x : word) {"
                    "  let r = [lo = x & 0xFFFF, hi = x >> 16];"
                    "  r.lo + r.hi"
                    "}"))
      << C.errors();
  Compilation C2;
  EXPECT_FALSE(C2.run("fun main(x : word) {"
                      "  let r = [lo = x];"
                      "  r.nothere"
                      "}"));
}

TEST(Sema, TupleIndexAccess) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(x : word) {"
                    "  let t = (x, x + 1, x + 2);"
                    "  t.0 + t.2"
                    "}"))
      << C.errors();
  Compilation C2;
  EXPECT_FALSE(C2.run("fun main(x : word) { let t = (x, x); t.5 }"));
}

TEST(Sema, UnpackFromPaper) {
  Compilation C;
  ASSERT_TRUE(C.run(
      "layout p = { a : 16, b : 32, c : 16 };"
      "fun f(p1 : packed(p), p2 : packed(p)) {"
      "  let u1 = unpack[p](p1);"
      "  let u2 = unpack[p](p2);"
      "  (if (u1.c > 10) u1 else u2).b"
      "}"))
      << C.errors();
}

TEST(Sema, UnpackWrongArity) {
  Compilation C;
  EXPECT_FALSE(C.run("layout p = { a : 16, b : 32, c : 16 };"
                     "fun f(x : word) {"
                     "  let u = unpack[p](x);" // needs word[2]
                     "  u.a"
                     "}"));
}

TEST(Sema, PackWithOverlayChoosesOneAlternative) {
  Compilation C;
  ASSERT_TRUE(C.run(
      "layout h = { verpri : overlay { whole : 8"
      "                              | parts : { version : 4, priority : 4 } },"
      "             rest : 24 };"
      "fun f(v : word) {"
      "  let x = pack[h] [ verpri = [ whole = 0x60 ], rest = v ];"
      "  let y = pack[h] [ verpri = [ parts = [version = 6, priority = 0] ],"
      "                    rest = v ];"
      "  x.0 ^ y.0"
      "}"))
      << C.errors();
}

TEST(Sema, PackBothOverlayAlternativesRejected) {
  Compilation C;
  EXPECT_FALSE(C.run(
      "layout h = { v : overlay { whole : 8 | parts : { a : 4, b : 4 } } };"
      "fun f(x : word) {"
      "  let p = pack[h] [ v = [ whole = 1, parts = [a = 1, b = 2] ] ];"
      "  p.0"
      "}"));
}

TEST(Sema, PackMissingFieldRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("layout h = { a : 16, b : 16 };"
                     "fun f(x : word) { let p = pack[h] [ a = x ]; p.0 }"));
}

TEST(Sema, TryHandleRaise) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(x : word) {"
                    "  try {"
                    "    if (x == 0) { raise Bad [why = 7] };"
                    "    x + 1"
                    "  } handle Bad [why : word] { why }"
                    "}"))
      << C.errors();
  EXPECT_EQ(C.Sema->Stats.RaiseCount, 1u);
  EXPECT_EQ(C.Sema->Stats.HandleCount, 1u);
}

TEST(Sema, RaiseOutsideScopeRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(x : word) { raise Nowhere (); 1 }"));
}

TEST(Sema, ExceptionPassedToFunction) {
  // The paper's pattern: g receives exceptions as arguments and raises
  // them to jump back to the handler.
  Compilation C;
  ASSERT_TRUE(C.run("fun g(x : word, bad : exn [b : word, c : word]) {"
                    "  if (x > 100) { raise bad [b = x, c = 1] };"
                    "  x + 0"
                    "}"
                    "fun main(x : word) {"
                    "  try {"
                    "    g(x, X1) + 1"
                    "  } handle X1 [b : word, c : word] { b + c }"
                    "}"))
      << C.errors();
}

TEST(Sema, HandlerPayloadTypeMismatchRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(x : word) {"
                     "  try { raise E [a = (x, x)]; 0 }"
                     "  handle E [a : word] { a }"
                     "}"));
}

TEST(Sema, NonTailRecursionRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun f(x : word) -> word { f(x - 1) + 1 }"));
}

TEST(Sema, TailRecursionAccepted) {
  Compilation C;
  ASSERT_TRUE(C.run("fun f(x : word, acc : word) -> word {"
                    "  if (x == 0) acc else f(x - 1, acc + x)"
                    "}"
                    "fun main(n : word) { f(n, 0) }"))
      << C.errors();
}

TEST(Sema, RecursiveFunctionNeedsAnnotation) {
  Compilation C;
  EXPECT_FALSE(C.run("fun f(x : word) { if (x == 0) 0 else f(x - 1) }"));
}

TEST(Sema, WhileLoopWithAssignment) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(n : word) {"
                    "  let i = 0;"
                    "  let sum = 0;"
                    "  while (i < n) {"
                    "    sum = sum + i;"
                    "    i = i + 1;"
                    "  }"
                    "  sum"
                    "}"))
      << C.errors();
}

TEST(Sema, AssignTypeMismatchRejected) {
  Compilation C;
  EXPECT_FALSE(C.run("fun main(n : word) {"
                     "  let i = 0;"
                     "  i = (n == 0);"
                     "  0"
                     "}"));
}

TEST(Sema, HashAndBitTestSet) {
  Compilation C;
  ASSERT_TRUE(C.run("fun main(k : word, a : word) {"
                    "  let h = hash(k);"
                    "  let old = sram_bit_test_set(a, h);"
                    "  old"
                    "}"))
      << C.errors();
}

TEST(Sema, NamedCallArguments) {
  Compilation C;
  ASSERT_TRUE(C.run("fun add[a : word, b : word] { a + b }"
                    "fun main(x : word) { add[b = x, a = 1] }"))
      << C.errors();
  Compilation C2;
  EXPECT_FALSE(C2.run("fun add[a : word, b : word] { a + b }"
                      "fun main(x : word) { add[a = x] }"));
}

TEST(Sema, Figure5StatsCollected) {
  Compilation C;
  ASSERT_TRUE(C.run("layout l1 = { a : 16, b : 16 };\n"
                    "layout l2 = { c : 32 };\n"
                    "fun main(x : word, p : packed(l1)) {\n"
                    "  let u = unpack[l1](p);\n"
                    "  let q = pack[l2] [ c = u.a ];\n"
                    "  try { if (x == 0) { raise E (u.b) }; q.0 }\n"
                    "  handle E (v : word) { v }\n"
                    "}\n"))
      << C.errors();
  EXPECT_EQ(C.Sema->Stats.LayoutSpecs, 2u);
  EXPECT_EQ(C.Sema->Stats.PackCount, 1u);
  EXPECT_EQ(C.Sema->Stats.UnpackCount, 1u);
  EXPECT_EQ(C.Sema->Stats.RaiseCount, 1u);
  EXPECT_EQ(C.Sema->Stats.HandleCount, 1u);
  EXPECT_EQ(C.Sema->Stats.NovaLines, 8u);
}

TEST(Sema, PaperFigure3Program) {
  // The running example of the paper's Figure 3.
  Compilation C;
  ASSERT_TRUE(C.run("fun main(base : word) {"
                    "  let (a, b, c, d) = sram(100);"
                    "  let (e, f, g, h, i, j) = sram(200);"
                    "  let u = a + c;"
                    "  let v = g + h;"
                    "  sram(300) <- (b, e, v, u);"
                    "  sram(500) <- (f, j, d, i);"
                    "  0"
                    "}"))
      << C.errors();
}
