//===- dense_lp_ref.h - Dense reference simplex (tests only) ----*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The previous generation of the LP engine, kept verbatim as a test
/// oracle: a bounded-variable revised simplex whose basis inverse is a
/// dense column-major m*m matrix updated by eta pivots and rebuilt by
/// Gauss-Jordan elimination. The production engine (ilp/Simplex.h) moved
/// to a sparse LU factorization; the randomized tests solve the same LPs
/// with both and require identical optimal objectives.
///
/// Do not use outside tests: every iteration costs O(m^2).
///
//===----------------------------------------------------------------------===//

#ifndef TESTS_DENSE_LP_REF_H
#define TESTS_DENSE_LP_REF_H

#include "ilp/Model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace nova {
namespace ilp {
namespace denseref {

enum class DenseLpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// Result of one LP solve.
struct DenseLpResult {
  DenseLpStatus Status = DenseLpStatus::IterationLimit;
  double Objective = 0.0;
  unsigned Iterations = 0;
};

class DenseSimplex {
public:
  /// Builds the LP relaxation of \p M (integrality dropped).
  explicit DenseSimplex(const Model &M);

  /// Overrides the bounds of structural variable \p Var for subsequent
  /// solves. Used by branch-and-bound; does not modify the Model.
  void setVarBounds(VarId Var, double Lower, double Upper);

  /// Current working bounds of a structural variable.
  double lowerBound(VarId Var) const { return Lower[Var.Index]; }
  double upperBound(VarId Var) const { return Upper[Var.Index]; }

  /// Solves from the current basis (cold start on first call).
  DenseLpResult solve();

  /// Value of a structural variable in the last solved basis.
  double value(VarId Var) const;

  /// Values of all structural variables.
  std::vector<double> values() const;

  unsigned numRows() const { return M; }
  unsigned numCols() const { return NumStructural; }

  /// Total simplex iterations across all solve() calls.
  unsigned totalIterations() const { return TotalIters; }

private:
  enum class State : uint8_t { Basic, AtLower, AtUpper };

  // Problem data. Columns 0..NumStructural-1 are structural, the rest are
  // slacks (one per row).
  unsigned M = 0;             ///< number of rows
  unsigned N = 0;             ///< total columns incl. slacks
  unsigned NumStructural = 0; ///< structural column count
  std::vector<std::vector<Term>> Cols; ///< sparse columns (row, coeff)
  std::vector<double> Cost;            ///< phase-II objective
  std::vector<double> Lower, Upper;    ///< working bounds per column
  std::vector<double> Rhs;             ///< row right-hand sides

  // Basis state.
  bool HasBasis = false;
  std::vector<uint32_t> Basic;  ///< Basic[i] = column basic in row i
  std::vector<State> VarState;  ///< per-column state
  std::vector<uint32_t> RowOf;  ///< RowOf[col] = basic row, or ~0u
  std::vector<double> BasicVal; ///< value of basic var per row
  std::vector<double> Binv;     ///< dense column-major m*m basis inverse
  unsigned TotalIters = 0;

  // Scratch.
  std::vector<double> WorkY, WorkW;

  double nonbasicValue(unsigned Col) const;
  void installSlackBasis();
  void computeBasicValues();
  bool refactorize();
  void applyEta(const std::vector<double> &W, unsigned PivotRow);
  void priceInto(const std::vector<double> &CB, std::vector<double> &Y) const;
  double reducedCost(unsigned Col, const std::vector<double> &Y) const;
  void ftran(unsigned Col, std::vector<double> &W) const;
  double infeasibilitySum() const;

  /// One phase of the simplex loop. \p PhaseOne selects the composite
  /// infeasibility objective. Returns the terminating status.
  DenseLpStatus iterate(bool PhaseOne, unsigned &Iters, unsigned IterLimit);
};

namespace {
constexpr double FeasTol = 1e-7;
constexpr double CostTol = 1e-7;
constexpr double PivotTol = 1e-9;
/// Consecutive degenerate pivots before switching to Bland's rule.
constexpr unsigned DegenerateLimit = 400;
/// Recompute basic values from scratch this often to bound drift.
constexpr unsigned RefreshPeriod = 512;
} // namespace

inline DenseSimplex::DenseSimplex(const Model &Mdl) {
  M = Mdl.numConstraints();
  NumStructural = Mdl.numVars();
  N = NumStructural + M;
  Cols.resize(N);
  Cost.assign(N, 0.0);
  Lower.assign(N, 0.0);
  Upper.assign(N, 0.0);
  Rhs.assign(M, 0.0);

  for (unsigned J = 0; J != NumStructural; ++J) {
    const Variable &V = Mdl.var(VarId{J});
    Cost[J] = V.Objective;
    Lower[J] = V.Lower;
    Upper[J] = V.Upper;
  }
  for (unsigned I = 0; I != M; ++I) {
    const Constraint &C = Mdl.constraints()[I];
    for (const Term &T : C.Terms)
      Cols[T.Var.Index].push_back({VarId{I}, T.Coeff});
    Rhs[I] = C.Rhs;
    unsigned SlackCol = NumStructural + I;
    Cols[SlackCol].push_back({VarId{I}, 1.0});
    switch (C.Relation) {
    case Rel::LE:
      Lower[SlackCol] = 0.0;
      Upper[SlackCol] = Inf;
      break;
    case Rel::GE:
      Lower[SlackCol] = -Inf;
      Upper[SlackCol] = 0.0;
      break;
    case Rel::EQ:
      Lower[SlackCol] = Upper[SlackCol] = 0.0;
      break;
    }
  }
  WorkY.resize(M);
  WorkW.resize(M);
}

inline void DenseSimplex::setVarBounds(VarId Var, double NewLower, double NewUpper) {
  assert(Var.Index < NumStructural && "not a structural variable");
  assert(NewLower <= NewUpper && "inverted bounds");
  Lower[Var.Index] = NewLower;
  Upper[Var.Index] = NewUpper;
  // A nonbasic variable must sit on a bound that still exists; snap it to
  // the nearest finite bound so the next solve starts consistent.
  if (HasBasis && RowOf[Var.Index] == ~0u) {
    if (VarState[Var.Index] == State::AtLower && !std::isfinite(NewLower))
      VarState[Var.Index] = State::AtUpper;
    if (VarState[Var.Index] == State::AtUpper && !std::isfinite(NewUpper))
      VarState[Var.Index] = State::AtLower;
  }
}

inline double DenseSimplex::nonbasicValue(unsigned Col) const {
  if (VarState[Col] == State::AtUpper)
    return std::isfinite(Upper[Col]) ? Upper[Col] : 0.0;
  return std::isfinite(Lower[Col]) ? Lower[Col] : 0.0;
}

inline void DenseSimplex::installSlackBasis() {
  Basic.resize(M);
  RowOf.assign(N, ~0u);
  VarState.assign(N, State::AtLower);
  for (unsigned J = 0; J != NumStructural; ++J)
    if (!std::isfinite(Lower[J]) && std::isfinite(Upper[J]))
      VarState[J] = State::AtUpper;
  for (unsigned I = 0; I != M; ++I) {
    unsigned SlackCol = NumStructural + I;
    Basic[I] = SlackCol;
    RowOf[SlackCol] = I;
    VarState[SlackCol] = State::Basic;
  }
  // Slack basis inverse is the identity.
  Binv.assign(static_cast<size_t>(M) * M, 0.0);
  for (unsigned I = 0; I != M; ++I)
    Binv[static_cast<size_t>(I) * M + I] = 1.0;
  BasicVal.assign(M, 0.0);
  computeBasicValues();
  HasBasis = true;
}

inline void DenseSimplex::computeBasicValues() {
  // r = Rhs - sum over nonbasic columns of A_j * x_j.
  std::vector<double> R = Rhs;
  for (unsigned J = 0; J != N; ++J) {
    if (RowOf[J] != ~0u)
      continue;
    double X = nonbasicValue(J);
    if (X == 0.0)
      continue;
    for (const Term &T : Cols[J])
      R[T.Var.Index] -= T.Coeff * X;
  }
  // xB = Binv * r, accumulated column-wise for contiguous access.
  std::fill(BasicVal.begin(), BasicVal.end(), 0.0);
  for (unsigned K = 0; K != M; ++K) {
    double RK = R[K];
    if (RK == 0.0)
      continue;
    const double *Col = &Binv[static_cast<size_t>(K) * M];
    for (unsigned I = 0; I != M; ++I)
      BasicVal[I] += RK * Col[I];
  }
}

inline bool DenseSimplex::refactorize() {
  // Rebuild Binv by Gauss-Jordan elimination of the basis matrix. O(m^3);
  // called only on detected numerical trouble.
  std::vector<double> B(static_cast<size_t>(M) * M, 0.0); // row-major
  for (unsigned I = 0; I != M; ++I)
    for (const Term &T : Cols[Basic[I]])
      B[static_cast<size_t>(T.Var.Index) * M + I] = T.Coeff;
  std::vector<double> Inv(static_cast<size_t>(M) * M, 0.0); // row-major
  for (unsigned I = 0; I != M; ++I)
    Inv[static_cast<size_t>(I) * M + I] = 1.0;
  for (unsigned ColIdx = 0; ColIdx != M; ++ColIdx) {
    // Partial pivoting.
    unsigned Piv = ColIdx;
    double Best = std::fabs(B[static_cast<size_t>(ColIdx) * M + ColIdx]);
    for (unsigned R = ColIdx + 1; R != M; ++R) {
      double A = std::fabs(B[static_cast<size_t>(R) * M + ColIdx]);
      if (A > Best) {
        Best = A;
        Piv = R;
      }
    }
    if (Best < PivotTol)
      return false;
    if (Piv != ColIdx) {
      for (unsigned K = 0; K != M; ++K) {
        std::swap(B[static_cast<size_t>(Piv) * M + K],
                  B[static_cast<size_t>(ColIdx) * M + K]);
        std::swap(Inv[static_cast<size_t>(Piv) * M + K],
                  Inv[static_cast<size_t>(ColIdx) * M + K]);
      }
    }
    double PivVal = B[static_cast<size_t>(ColIdx) * M + ColIdx];
    for (unsigned K = 0; K != M; ++K) {
      B[static_cast<size_t>(ColIdx) * M + K] /= PivVal;
      Inv[static_cast<size_t>(ColIdx) * M + K] /= PivVal;
    }
    for (unsigned R = 0; R != M; ++R) {
      if (R == ColIdx)
        continue;
      double F = B[static_cast<size_t>(R) * M + ColIdx];
      if (F == 0.0)
        continue;
      for (unsigned K = 0; K != M; ++K) {
        B[static_cast<size_t>(R) * M + K] -=
            F * B[static_cast<size_t>(ColIdx) * M + K];
        Inv[static_cast<size_t>(R) * M + K] -=
            F * Inv[static_cast<size_t>(ColIdx) * M + K];
      }
    }
  }
  // Transpose row-major Inv into the column-major Binv store.
  for (unsigned I = 0; I != M; ++I)
    for (unsigned K = 0; K != M; ++K)
      Binv[static_cast<size_t>(K) * M + I] = Inv[static_cast<size_t>(I) * M + K];
  computeBasicValues();
  return true;
}

inline void DenseSimplex::applyEta(const std::vector<double> &W, unsigned PivotRow) {
  double PivotInv = 1.0 / W[PivotRow];
  for (unsigned K = 0; K != M; ++K) {
    double *Col = &Binv[static_cast<size_t>(K) * M];
    double Scaled = Col[PivotRow] * PivotInv;
    if (Scaled == 0.0)
      continue;
    Col[PivotRow] = Scaled;
    for (unsigned I = 0; I != M; ++I)
      if (I != PivotRow)
        Col[I] -= W[I] * Scaled;
  }
}

inline void DenseSimplex::priceInto(const std::vector<double> &CB,
                        std::vector<double> &Y) const {
  for (unsigned K = 0; K != M; ++K) {
    const double *Col = &Binv[static_cast<size_t>(K) * M];
    double Sum = 0.0;
    for (unsigned I = 0; I != M; ++I)
      Sum += CB[I] * Col[I];
    Y[K] = Sum;
  }
}

inline double DenseSimplex::reducedCost(unsigned Col, const std::vector<double> &Y) const {
  double D = 0.0;
  for (const Term &T : Cols[Col])
    D -= Y[T.Var.Index] * T.Coeff;
  return D;
}

inline void DenseSimplex::ftran(unsigned Col, std::vector<double> &W) const {
  std::fill(W.begin(), W.end(), 0.0);
  for (const Term &T : Cols[Col]) {
    const double *BCol = &Binv[static_cast<size_t>(T.Var.Index) * M];
    double C = T.Coeff;
    for (unsigned I = 0; I != M; ++I)
      W[I] += C * BCol[I];
  }
}

inline double DenseSimplex::infeasibilitySum() const {
  double Sum = 0.0;
  for (unsigned I = 0; I != M; ++I) {
    unsigned B = Basic[I];
    if (BasicVal[I] < Lower[B] - FeasTol)
      Sum += Lower[B] - BasicVal[I];
    else if (BasicVal[I] > Upper[B] + FeasTol)
      Sum += BasicVal[I] - Upper[B];
  }
  return Sum;
}

inline DenseLpStatus DenseSimplex::iterate(bool PhaseOne, unsigned &Iters, unsigned IterLimit) {
  std::vector<double> CB(M);
  unsigned DegenerateRun = 0;
  bool Bland = false;
  unsigned SinceRefresh = 0;

  while (true) {
    if (Iters >= IterLimit)
      return DenseLpStatus::IterationLimit;
    if (++SinceRefresh >= RefreshPeriod) {
      SinceRefresh = 0;
      computeBasicValues();
    }

    // Build the objective on basic variables.
    if (PhaseOne) {
      double Infeas = 0.0;
      for (unsigned I = 0; I != M; ++I) {
        unsigned B = Basic[I];
        if (BasicVal[I] < Lower[B] - FeasTol) {
          CB[I] = -1.0;
          Infeas += Lower[B] - BasicVal[I];
        } else if (BasicVal[I] > Upper[B] + FeasTol) {
          CB[I] = 1.0;
          Infeas += BasicVal[I] - Upper[B];
        } else {
          CB[I] = 0.0;
        }
      }
      if (Infeas <= FeasTol)
        return DenseLpStatus::Optimal; // Feasible; caller proceeds to phase II.
    } else {
      for (unsigned I = 0; I != M; ++I)
        CB[I] = Cost[Basic[I]];
    }

    priceInto(CB, WorkY);

    // Pricing: Dantzig rule (most negative effective reduced cost), or
    // Bland's smallest-index rule when escaping degeneracy.
    unsigned Entering = ~0u;
    double BestScore = CostTol;
    int EnterDir = 0; // +1 entering increases, -1 decreases
    for (unsigned J = 0; J != N; ++J) {
      if (RowOf[J] != ~0u || Lower[J] == Upper[J])
        continue;
      double D = reducedCost(J, WorkY);
      if (!PhaseOne)
        D += Cost[J];
      double Score = 0.0;
      int Dir = 0;
      if (VarState[J] == State::AtLower && D < -CostTol) {
        Score = -D;
        Dir = 1;
      } else if (VarState[J] == State::AtUpper && D > CostTol) {
        Score = D;
        Dir = -1;
      } else {
        continue;
      }
      if (Bland) {
        Entering = J;
        EnterDir = Dir;
        break;
      }
      if (Score > BestScore) {
        BestScore = Score;
        Entering = J;
        EnterDir = Dir;
      }
    }
    if (Entering == ~0u) {
      if (PhaseOne)
        return DenseLpStatus::Infeasible; // Still infeasible, no improving column.
      return DenseLpStatus::Optimal;
    }

    ftran(Entering, WorkW);

    // Ratio test. The entering variable moves by Sign*T, T >= 0; basic
    // value i changes by -Sign*W[i]*T.
    double Sign = EnterDir;
    double LimitT = Inf;
    unsigned LeaveRow = ~0u;
    State LeaveState = State::AtLower;
    double BestPivot = 0.0;
    for (unsigned I = 0; I != M; ++I) {
      double Delta = Sign * WorkW[I];
      if (std::fabs(Delta) <= PivotTol)
        continue;
      unsigned B = Basic[I];
      double T = Inf;
      State HitState = State::AtLower;
      bool BelowLower = BasicVal[I] < Lower[B] - FeasTol;
      bool AboveUpper = BasicVal[I] > Upper[B] + FeasTol;
      if (PhaseOne && BelowLower) {
        // Infeasible below: blocks only when climbing back up to Lower.
        if (Delta < 0 && std::isfinite(Lower[B])) {
          T = (BasicVal[I] - Lower[B]) / Delta;
          HitState = State::AtLower;
        }
      } else if (PhaseOne && AboveUpper) {
        if (Delta > 0 && std::isfinite(Upper[B])) {
          T = (BasicVal[I] - Upper[B]) / Delta;
          HitState = State::AtUpper;
        }
      } else if (Delta > 0) {
        // Basic value decreasing toward its lower bound.
        if (std::isfinite(Lower[B])) {
          T = (BasicVal[I] - Lower[B]) / Delta;
          HitState = State::AtLower;
        }
      } else {
        // Basic value increasing toward its upper bound.
        if (std::isfinite(Upper[B])) {
          T = (BasicVal[I] - Upper[B]) / Delta;
          HitState = State::AtUpper;
        }
      }
      if (!std::isfinite(T))
        continue;
      T = std::max(T, 0.0);
      bool Better = T < LimitT - FeasTol ||
                    (T < LimitT + FeasTol && std::fabs(WorkW[I]) > BestPivot);
      if (Bland)
        Better = T < LimitT - 1e-12 ||
                 (LeaveRow != ~0u && T <= LimitT && Basic[I] < Basic[LeaveRow]);
      if (Better) {
        LimitT = T;
        LeaveRow = I;
        LeaveState = HitState;
        BestPivot = std::fabs(WorkW[I]);
      }
    }
    // Bound flip limit for the entering variable itself.
    double FlipT = Inf;
    if (std::isfinite(Lower[Entering]) && std::isfinite(Upper[Entering]))
      FlipT = Upper[Entering] - Lower[Entering];
    if (FlipT < LimitT) {
      // Flip: no basis change.
      double T = FlipT;
      for (unsigned I = 0; I != M; ++I)
        BasicVal[I] -= Sign * WorkW[I] * T;
      VarState[Entering] =
          VarState[Entering] == State::AtLower ? State::AtUpper
                                               : State::AtLower;
      ++Iters;
      ++TotalIters;
      DegenerateRun = 0;
      Bland = false;
      continue;
    }
    if (LeaveRow == ~0u)
      return PhaseOne ? DenseLpStatus::Infeasible : DenseLpStatus::Unbounded;

    // Pivot.
    double T = LimitT;
    for (unsigned I = 0; I != M; ++I)
      BasicVal[I] -= Sign * WorkW[I] * T;
    double EnterVal = nonbasicValue(Entering) + Sign * T;
    unsigned Leaving = Basic[LeaveRow];
    VarState[Leaving] = LeaveState;
    // Snap the leaving variable exactly onto its bound.
    RowOf[Leaving] = ~0u;
    Basic[LeaveRow] = Entering;
    RowOf[Entering] = LeaveRow;
    VarState[Entering] = State::Basic;
    BasicVal[LeaveRow] = EnterVal;
    applyEta(WorkW, LeaveRow);

    ++Iters;
    ++TotalIters;
    if (T <= FeasTol) {
      if (++DegenerateRun >= DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }
  }
}

inline DenseLpResult DenseSimplex::solve() {
  DenseLpResult Result;
  if (!HasBasis)
    installSlackBasis();
  else
    computeBasicValues();

  unsigned IterLimit = 20000 + 50 * (M + N);
  unsigned Iters = 0;

  if (infeasibilitySum() > FeasTol) {
    DenseLpStatus S = iterate(/*PhaseOne=*/true, Iters, IterLimit);
    if (S != DenseLpStatus::Optimal) {
      // Retry once from a fresh factorization in case of numerical drift.
      if (S == DenseLpStatus::Infeasible && refactorize() &&
          infeasibilitySum() > FeasTol)
        S = iterate(/*PhaseOne=*/true, Iters, IterLimit);
      if (S != DenseLpStatus::Optimal || infeasibilitySum() > FeasTol) {
        Result.Status = S == DenseLpStatus::IterationLimit ? S : DenseLpStatus::Infeasible;
        Result.Iterations = Iters;
        return Result;
      }
    }
  }

  DenseLpStatus S = iterate(/*PhaseOne=*/false, Iters, IterLimit);
  Result.Status = S;
  Result.Iterations = Iters;
  if (S == DenseLpStatus::Optimal) {
    // Phase II can drift a basic variable slightly out of bounds; verify
    // and clean up once with a fresh factorization if needed.
    computeBasicValues();
    if (infeasibilitySum() > 1e-5) {
      refactorize();
      if (infeasibilitySum() > FeasTol &&
          iterate(/*PhaseOne=*/true, Iters, IterLimit) == DenseLpStatus::Optimal)
        iterate(/*PhaseOne=*/false, Iters, IterLimit);
      Result.Iterations = Iters;
    }
    double Obj = 0.0;
    for (unsigned I = 0; I != M; ++I)
      Obj += Cost[Basic[I]] * BasicVal[I];
    for (unsigned J = 0; J != N; ++J)
      if (RowOf[J] == ~0u && Cost[J] != 0.0)
        Obj += Cost[J] * nonbasicValue(J);
    Result.Objective = Obj;
  }
  return Result;
}

inline double DenseSimplex::value(VarId Var) const {
  assert(Var.Index < NumStructural && "not a structural variable");
  assert(HasBasis && "no solve yet");
  unsigned Row = RowOf[Var.Index];
  return Row != ~0u ? BasicVal[Row] : nonbasicValue(Var.Index);
}

inline std::vector<double> DenseSimplex::values() const {
  std::vector<double> X(NumStructural);
  for (unsigned J = 0; J != NumStructural; ++J)
    X[J] = value(VarId{J});
  return X;
}

} // namespace denseref
} // namespace ilp
} // namespace nova

#endif // TESTS_DENSE_LP_REF_H
