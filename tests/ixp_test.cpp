//===- ixp_test.cpp - Machine model, isel, liveness, frequency tests ------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "cps/Convert.h"
#include "cps/Eval.h"
#include "cps/Opt.h"
#include "ixp/Frequency.h"
#include "ixp/ISel.h"
#include "ixp/Liveness.h"
#include "ixp/Machine.h"
#include "nova/Parser.h"
#include "nova/Sema.h"
#include "sim/Simulator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace nova;
using namespace nova::ixp;

//===----------------------------------------------------------------------===//
// Machine model
//===----------------------------------------------------------------------===//

TEST(Machine, BankCapacities) {
  EXPECT_EQ(bankCapacity(Bank::A), 15u); // one reserved for copy cycles
  EXPECT_EQ(bankCapacity(Bank::B), 16u);
  for (Bank B : TransferBanks)
    EXPECT_EQ(bankCapacity(B), 8u);
  EXPECT_EQ(bankCapacity(Bank::M), ~0u);
}

TEST(Machine, AluPortRules) {
  EXPECT_TRUE(isAluInputBank(Bank::A));
  EXPECT_TRUE(isAluInputBank(Bank::L));
  EXPECT_TRUE(isAluInputBank(Bank::LD));
  EXPECT_FALSE(isAluInputBank(Bank::S));
  EXPECT_FALSE(isAluInputBank(Bank::SD));
  EXPECT_TRUE(isAluOutputBank(Bank::S));
  EXPECT_TRUE(isAluOutputBank(Bank::SD));
  EXPECT_FALSE(isAluOutputBank(Bank::L));
  EXPECT_FALSE(isAluOutputBank(Bank::LD));
}

TEST(Machine, MoveCostsMatchPaperObjective) {
  CostModel C;
  // A -> {B,S,SD}: one register-register move.
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::A, Bank::B, C), 1.0);
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::A, Bank::S, C), 1.0);
  // A -> M: move to S then store (mvC + stC).
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::A, Bank::M, C), 201.0);
  // A -> L: spill store + reload (mvC + stC + ldC).
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::A, Bank::L, C), 401.0);
  // B moves carry the bias.
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::B, Bank::A, C), 1.01);
  // M reload to L.
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::M, Bank::L, C), 200.0);
  // S can only reach other banks through memory.
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::S, Bank::M, C), 200.0);
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::S, Bank::A, C), 401.0);
  // L -> LD requires a full round trip through memory.
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::L, Bank::LD, C), 401.0);
  // Identity.
  EXPECT_DOUBLE_EQ(*interBankMoveCost(Bank::L, Bank::L, C), 0.0);
}

TEST(Machine, MoveStepCounts) {
  EXPECT_EQ(*interBankMoveSteps(Bank::A, Bank::B), 1u);
  EXPECT_EQ(*interBankMoveSteps(Bank::A, Bank::M), 2u);
  EXPECT_EQ(*interBankMoveSteps(Bank::A, Bank::L), 3u);
  EXPECT_EQ(*interBankMoveSteps(Bank::M, Bank::L), 1u);
  EXPECT_EQ(*interBankMoveSteps(Bank::A, Bank::A), 0u);
}

TEST(Machine, DempsterShafer) {
  EXPECT_DOUBLE_EQ(dempsterShafer(0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(dempsterShafer(0.5, 0.88), 0.88);
  EXPECT_GT(dempsterShafer(0.7, 0.88), 0.88);
  EXPECT_LT(dempsterShafer(0.3, 0.12), 0.12);
}

//===----------------------------------------------------------------------===//
// Instruction selection, validated against the CPS evaluator
//===----------------------------------------------------------------------===//

namespace {

struct Lowered {
  SourceManager SM;
  AstArena Arena;
  std::unique_ptr<DiagnosticEngine> Diags;
  Program Prog;
  std::unique_ptr<SemaResult> Sema;
  cps::CpsProgram Cps;
  MachineProgram Machine;

  bool compile(const std::string &Source, bool Optimize = true) {
    uint32_t Buf = SM.addBuffer("test.nova", Source);
    Diags = std::make_unique<DiagnosticEngine>(SM);
    Parser P(SM, Buf, Arena, *Diags);
    Prog = P.parseProgram();
    if (Diags->hasErrors())
      return false;
    Sema = std::make_unique<SemaResult>(*Diags);
    runSema(Prog, SM, *Diags, *Sema);
    if (!Sema->Success)
      return false;
    if (!cps::convertToCps(Prog, *Sema, *Diags, Cps))
      return false;
    if (Optimize) {
      cps::optimize(Cps);
      cps::makeStaticSingleUse(Cps);
    }
    return selectInstructions(Cps, *Diags, Machine);
  }

  std::string errors() const { return Diags ? Diags->render() : ""; }
};

/// Compiles and checks that the machine program and the CPS oracle agree
/// on halt values and final memory.
void checkLowered(const std::string &Source,
                  const std::vector<uint32_t> &Args,
                  cps::EvalMemory InitMem = {}) {
  Lowered L;
  ASSERT_TRUE(L.compile(Source)) << L.errors();

  cps::EvalMemory CpsMem = InitMem;
  cps::EvalResult Oracle = cps::evaluate(L.Cps, Args, CpsMem);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;

  sim::Memory SimMem;
  SimMem.Sram = InitMem.Sram;
  SimMem.Sdram = InitMem.Sdram;
  SimMem.Scratch = InitMem.Scratch;
  sim::RunResult R = sim::runFunctional(L.Machine, Args, SimMem);
  ASSERT_TRUE(R.Ok) << R.Error << "\n" << L.Machine.print();

  EXPECT_EQ(R.HaltValues, Oracle.HaltValues) << L.Machine.print();
  EXPECT_EQ(SimMem.Sram, CpsMem.Sram);
  EXPECT_EQ(SimMem.Sdram, CpsMem.Sdram);
  EXPECT_EQ(SimMem.Scratch, CpsMem.Scratch);
}

} // namespace

TEST(ISel, StraightLine) {
  checkLowered("fun main(x : word) { (x + 3) << 2 }", {5});
  checkLowered("fun main(x : word, y : word) { (x ^ y) - (x & y) }",
               {0xF0F0, 0x1234});
}

TEST(ISel, ControlFlow) {
  const char *Src = "fun main(x : word) {"
                    "  let r = 0;"
                    "  if (x > 10) { r = x - 10; } else { r = x; }"
                    "  r + 1"
                    "}";
  checkLowered(Src, {25});
  checkLowered(Src, {5});
}

TEST(ISel, LoopsBecomeBlocks) {
  const char *Src = "fun main(n : word) {"
                    "  let i = 0;"
                    "  let sum = 0;"
                    "  while (i < n) {"
                    "    sum = sum + i;"
                    "    i = i + 1;"
                    "  }"
                    "  sum"
                    "}";
  checkLowered(Src, {10});
  checkLowered(Src, {0});

  Lowered L;
  ASSERT_TRUE(L.compile(Src));
  // Expect a loop: some block jumps backwards.
  FrequencyInfo FI(L.Machine);
  bool AnyBack = false;
  for (const Block &B : L.Machine.Blocks)
    for (BlockId S : B.successors())
      AnyBack |= FI.isBackEdge(B.Id, S);
  EXPECT_TRUE(AnyBack);
}

TEST(ISel, MemoryAndAggregates) {
  cps::EvalMemory Mem;
  for (uint32_t I = 0; I != 6; ++I)
    Mem.Sram[200 + I] = (I + 1) * 0x101;
  const char *Src = "fun main(base : word) {"
                    "  let (a, b, c, d) = sram(base);"
                    "  let (e, f) = sram(base + 4);"
                    "  sram(base + 16) <- (f, e, d, c, b, a);"
                    "  a + f"
                    "}";
  checkLowered(Src, {200}, Mem);
}

TEST(ISel, SdramAggregates) {
  cps::EvalMemory Mem;
  Mem.Sdram[8] = 0xAA;
  Mem.Sdram[9] = 0xBB;
  const char *Src = "fun main(base : word) {"
                    "  let (x, y) = sdram(base);"
                    "  sdram(base + 2) <- (y, x);"
                    "  x ^ y"
                    "}";
  checkLowered(Src, {8}, Mem);
}

TEST(ISel, ParallelCopyCycle) {
  // Swapping loop variables forces a parallel-copy cycle at the back
  // edge.
  const char *Src = "fun main(n : word) {"
                    "  let a = 1;"
                    "  let b = 2;"
                    "  let i = 0;"
                    "  while (i < n) {"
                    "    let t = a;"
                    "    a = b;"
                    "    b = t;"
                    "    i = i + 1;"
                    "  }"
                    "  (a << 8) | b"
                    "}";
  checkLowered(Src, {4});
  checkLowered(Src, {5});
}

TEST(ISel, HashAndBitTestSet) {
  cps::EvalMemory Mem;
  Mem.Sram[7] = 1;
  checkLowered("fun main(k : word) {"
               "  let h = hash(k) & 0xFF;"
               "  let old = sram_bit_test_set(7, h);"
               "  old + h"
               "}",
               {12345}, Mem);
}

TEST(ISel, PackUnpackPipeline) {
  checkLowered(
      "layout hdr = { ver : 4, ihl : 4, tos : 8, len : 16, id : 16,"
      "               flags : 3, frag : 13 };"
      "fun main(w0 : word, w1 : word) {"
      "  let h = unpack[hdr]((w0, w1));"
      "  let p = pack[hdr] [ ver = h.ver, ihl = h.ihl, tos = h.tos,"
      "                      len = h.len + 1, id = h.id,"
      "                      flags = h.flags, frag = h.frag ];"
      "  p.0 ^ p.1"
      "}",
      {0x45001234, 0xBEEF4000});
}

TEST(ISel, ImmediatesAreMaterialized) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(a : word) {"
                        "  sram(a) <- (1, 2);"
                        "  0"
                        "}"))
      << L.errors();
  // Store values 1 and 2 cannot be inline constants: they must flow
  // through registers (Imm instructions).
  unsigned ImmCount = 0;
  for (const Block &B : L.Machine.Blocks)
    for (const MachineInstr &I : B.Instrs) {
      if (I.Op == MOp::Imm)
        ++ImmCount;
      if (I.Op == MOp::MemWrite) {
        for (unsigned K = 1; K != I.Srcs.size(); ++K)
          EXPECT_FALSE(I.Srcs[K].IsConst);
      }
    }
  EXPECT_GE(ImmCount, 2u);
}

TEST(ISel, ShiftCountsStayImmediate) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(x : word) { x << 5 }")) << L.errors();
  bool FoundShift = false;
  for (const Block &B : L.Machine.Blocks)
    for (const MachineInstr &I : B.Instrs)
      if (I.Op == MOp::Alu && I.Alu == cps::PrimOp::Shl) {
        FoundShift = true;
        EXPECT_TRUE(I.Srcs[1].IsConst);
      }
  EXPECT_TRUE(FoundShift);
}

TEST(ISel, CloneSurvivesToMachineIr) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(a : word, x : word) {"
                        "  sram(a) <- (x, 1, x, 2);"
                        "  x"
                        "}"))
      << L.errors();
  unsigned Clones = 0;
  for (const Block &B : L.Machine.Blocks)
    for (const MachineInstr &I : B.Instrs)
      if (I.Op == MOp::Clone)
        ++Clones;
  EXPECT_GE(Clones, 1u);
  checkLowered("fun main(a : word, x : word) {"
               "  sram(a) <- (x, 1, x, 2);"
               "  x"
               "}",
               {30, 9});
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(Liveness, StraightLineRanges) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(x : word, y : word) {"
                        "  let a = x + y;"
                        "  let b = a + x;"
                        "  b"
                        "}"))
      << L.errors();
  Liveness LV(L.Machine);
  // Entry params are live at block entry.
  const std::set<Temp> &In = LV.blockLiveIn(L.Machine.Entry);
  for (Temp T : L.Machine.EntryParams)
    EXPECT_TRUE(In.count(T));
}

TEST(Liveness, LoopCarriedValuesLiveAroundLoop) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(n : word) {"
                        "  let i = 0;"
                        "  let sum = 0;"
                        "  while (i < n) {"
                        "    sum = sum + i;"
                        "    i = i + 1;"
                        "  }"
                        "  sum"
                        "}"))
      << L.errors();
  Liveness LV(L.Machine);
  // Some block must have at least the three loop-carried temps live in.
  bool Found = false;
  for (const Block &B : L.Machine.Blocks)
    Found |= LV.blockLiveIn(B.Id).size() >= 3;
  EXPECT_TRUE(Found);
}

TEST(Liveness, DefKillsLiveness) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(x : word) { let a = x + 1; a }"))
      << L.errors();
  Liveness LV(L.Machine);
  const Block &Entry = L.Machine.Blocks[L.Machine.Entry];
  // Find the Alu def of a and check x is dead after it.
  for (unsigned I = 0; I != Entry.Instrs.size(); ++I) {
    const MachineInstr &MI = Entry.Instrs[I];
    if (MI.Op == MOp::Alu) {
      Temp X = L.Machine.EntryParams[0];
      EXPECT_TRUE(LV.liveBefore(L.Machine.Entry, I).count(X));
      EXPECT_FALSE(LV.liveAfter(L.Machine.Entry, I).count(X));
    }
  }
}

//===----------------------------------------------------------------------===//
// Frequency estimation
//===----------------------------------------------------------------------===//

TEST(Frequency, LoopBodyHotterThanExit) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(n : word) {"
                        "  let i = 0;"
                        "  while (i < n) { i = i + 1; }"
                        "  i"
                        "}"))
      << L.errors();
  FrequencyInfo FI(L.Machine);
  // The loop-header block must be hotter than the entry.
  double MaxFreq = 0.0;
  for (const Block &B : L.Machine.Blocks)
    MaxFreq = std::max(MaxFreq, FI.blockFreq(B.Id));
  EXPECT_GT(MaxFreq, 2.0);
  EXPECT_DOUBLE_EQ(FI.blockFreq(L.Machine.Entry), 1.0);
}

TEST(Frequency, BranchesSplitFlow) {
  Lowered L;
  ASSERT_TRUE(L.compile("fun main(x : word) {"
                        "  if (x > 7) x + 1 else x + 2"
                        "}"))
      << L.errors();
  FrequencyInfo FI(L.Machine);
  for (const Block &B : L.Machine.Blocks) {
    if (B.Instrs.empty() || B.terminator().Op != MOp::Branch)
      continue;
    double P = FI.takenProb(B.Id);
    double FThen = FI.blockFreq(B.terminator().Target);
    double FElse = FI.blockFreq(B.terminator().TargetElse);
    EXPECT_NEAR(FThen + FElse, FI.blockFreq(B.Id), 0.05);
    EXPECT_NEAR(FThen / (FThen + FElse), P, 0.05);
  }
}

//===----------------------------------------------------------------------===//
// Randomized end-to-end: Nova -> machine IR vs CPS oracle
//===----------------------------------------------------------------------===//

class ISelRandom : public ::testing::TestWithParam<int> {};

TEST_P(ISelRandom, LoweringPreservesSemantics) {
  Rng R(GetParam() * 7907 + 11);
  // Random program over two inputs with arithmetic, branches, stores.
  std::string Src = "fun main(a : word, b : word) {\n";
  std::vector<std::string> Vars = {"a", "b"};
  unsigned Stores = 0;
  for (int I = 0; I != 10; ++I) {
    std::string V = "t" + std::to_string(I);
    const char *Ops[] = {"+", "-", "&", "|", "^", ">>", "<<"};
    std::string X = Vars[R.below(Vars.size())];
    std::string Y = R.chance(1, 3)
                        ? std::to_string(R.below(31))
                        : Vars[R.below(Vars.size())];
    Src += "  let " + V + " = " + X + " " + std::string(Ops[R.below(7)]) +
           " " + Y + ";\n";
    Vars.push_back(V);
    if (R.chance(1, 4)) {
      Src += "  sram(" + std::to_string(100 + 4 * Stores++) + ") <- (" + V +
             ", " + X + ");\n";
    }
    if (R.chance(1, 4)) {
      std::string W = "w" + std::to_string(I);
      Src += "  let " + W + " = if (" + V + " > " + X + ") " + V + " else " +
             X + ";\n";
      Vars.push_back(W);
    }
  }
  Src += "  " + Vars.back() + "\n}\n";

  std::vector<uint32_t> Args = {static_cast<uint32_t>(R.next()),
                                static_cast<uint32_t>(R.next())};
  checkLowered(Src, Args);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ISelRandom, ::testing::Range(0, 40));
