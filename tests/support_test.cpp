//===- support_test.cpp - Unit tests for the support library -------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace nova;

TEST(SourceManager, LineColumnBasics) {
  SourceManager SM;
  uint32_t Buf = SM.addBuffer("test.nova", "abc\ndef\n\nxyz");
  EXPECT_EQ(SM.bufferName(Buf), "test.nova");

  LineColumn LC = SM.lineColumn({Buf, 0});
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 1u);

  LC = SM.lineColumn({Buf, 2}); // 'c'
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 3u);

  LC = SM.lineColumn({Buf, 4}); // 'd'
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 1u);

  LC = SM.lineColumn({Buf, 8}); // empty line
  EXPECT_EQ(LC.Line, 3u);
  EXPECT_EQ(LC.Column, 1u);

  LC = SM.lineColumn({Buf, 11}); // 'z'
  EXPECT_EQ(LC.Line, 4u);
  EXPECT_EQ(LC.Column, 3u);
}

TEST(SourceManager, LineText) {
  SourceManager SM;
  uint32_t Buf = SM.addBuffer("t", "first\nsecond\nthird");
  EXPECT_EQ(SM.lineText({Buf, 0}), "first");
  EXPECT_EQ(SM.lineText({Buf, 7}), "second");
  EXPECT_EQ(SM.lineText({Buf, 14}), "third");
}

TEST(SourceManager, InvalidLocation) {
  SourceManager SM;
  SM.addBuffer("t", "x");
  LineColumn LC = SM.lineColumn(SourceLoc::invalid());
  EXPECT_EQ(LC.Line, 0u);
  EXPECT_EQ(LC.Column, 0u);
}

TEST(Diagnostics, CollectsAndCounts) {
  SourceManager SM;
  uint32_t Buf = SM.addBuffer("f.nova", "let x = ;\n");
  DiagnosticEngine DE(SM);
  EXPECT_FALSE(DE.hasErrors());
  DE.error({Buf, 8}, "expected expression");
  DE.warning({Buf, 4}, "shadowed variable");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  EXPECT_EQ(DE.diagnostics().size(), 2u);

  std::string Text = DE.render();
  EXPECT_NE(Text.find("f.nova:1:9: error: expected expression"),
            std::string::npos);
  EXPECT_NE(Text.find("warning: shadowed variable"), std::string::npos);
  EXPECT_NE(Text.find('^'), std::string::npos);
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, ParseInteger) {
  EXPECT_EQ(parseInteger("0"), 0u);
  EXPECT_EQ(parseInteger("12345"), 12345u);
  EXPECT_EQ(parseInteger("0x60"), 0x60u);
  EXPECT_EQ(parseInteger("0xFFFFFFFF"), 0xFFFFFFFFu);
  EXPECT_FALSE(parseInteger("").has_value());
  EXPECT_FALSE(parseInteger("12a").has_value());
  EXPECT_FALSE(parseInteger("0xZZ").has_value());
  // Overflow of uint64_t.
  EXPECT_FALSE(parseInteger("99999999999999999999999").has_value());
}

TEST(StringUtils, Formatf) {
  EXPECT_EQ(formatf("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(formatf("%.2f", 3.14159), "3.14");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(10), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}

TEST(Timer, MeasuresForwardTime) {
  Timer T;
  EXPECT_GE(T.seconds(), 0.0);
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}
