//===- support_test.cpp - Unit tests for the support library -------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"
#include "support/SourceManager.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace nova;

TEST(SourceManager, LineColumnBasics) {
  SourceManager SM;
  uint32_t Buf = SM.addBuffer("test.nova", "abc\ndef\n\nxyz");
  EXPECT_EQ(SM.bufferName(Buf), "test.nova");

  LineColumn LC = SM.lineColumn({Buf, 0});
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 1u);

  LC = SM.lineColumn({Buf, 2}); // 'c'
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 3u);

  LC = SM.lineColumn({Buf, 4}); // 'd'
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 1u);

  LC = SM.lineColumn({Buf, 8}); // empty line
  EXPECT_EQ(LC.Line, 3u);
  EXPECT_EQ(LC.Column, 1u);

  LC = SM.lineColumn({Buf, 11}); // 'z'
  EXPECT_EQ(LC.Line, 4u);
  EXPECT_EQ(LC.Column, 3u);
}

TEST(SourceManager, LineText) {
  SourceManager SM;
  uint32_t Buf = SM.addBuffer("t", "first\nsecond\nthird");
  EXPECT_EQ(SM.lineText({Buf, 0}), "first");
  EXPECT_EQ(SM.lineText({Buf, 7}), "second");
  EXPECT_EQ(SM.lineText({Buf, 14}), "third");
}

TEST(SourceManager, InvalidLocation) {
  SourceManager SM;
  SM.addBuffer("t", "x");
  LineColumn LC = SM.lineColumn(SourceLoc::invalid());
  EXPECT_EQ(LC.Line, 0u);
  EXPECT_EQ(LC.Column, 0u);
}

TEST(Diagnostics, CollectsAndCounts) {
  SourceManager SM;
  uint32_t Buf = SM.addBuffer("f.nova", "let x = ;\n");
  DiagnosticEngine DE(SM);
  EXPECT_FALSE(DE.hasErrors());
  DE.error({Buf, 8}, "expected expression");
  DE.warning({Buf, 4}, "shadowed variable");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  EXPECT_EQ(DE.diagnostics().size(), 2u);

  std::string Text = DE.render();
  EXPECT_NE(Text.find("f.nova:1:9: error: expected expression"),
            std::string::npos);
  EXPECT_NE(Text.find("warning: shadowed variable"), std::string::npos);
  EXPECT_NE(Text.find('^'), std::string::npos);
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, ParseInteger) {
  EXPECT_EQ(parseInteger("0"), 0u);
  EXPECT_EQ(parseInteger("12345"), 12345u);
  EXPECT_EQ(parseInteger("0x60"), 0x60u);
  EXPECT_EQ(parseInteger("0xFFFFFFFF"), 0xFFFFFFFFu);
  EXPECT_FALSE(parseInteger("").has_value());
  EXPECT_FALSE(parseInteger("12a").has_value());
  EXPECT_FALSE(parseInteger("0xZZ").has_value());
  // Overflow of uint64_t.
  EXPECT_FALSE(parseInteger("99999999999999999999999").has_value());
}

TEST(StringUtils, Formatf) {
  EXPECT_EQ(formatf("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(formatf("%.2f", 3.14159), "3.14");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(10), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}

TEST(Timer, MeasuresForwardTime) {
  Timer T;
  EXPECT_GE(T.seconds(), 0.0);
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(Deadline, NeverDoesNotExpire) {
  Deadline D = Deadline::never();
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remaining(), 1e18);
}

TEST(Deadline, AfterCountsDown) {
  Deadline D = Deadline::after(100.0);
  EXPECT_FALSE(D.expired());
  EXPECT_LE(D.remaining(), 100.0);
  EXPECT_GT(D.remaining(), 0.0);
  EXPECT_EQ(D.budget(), 100.0);
  Deadline Past = Deadline::after(0.0);
  EXPECT_TRUE(Past.expired());
  EXPECT_EQ(Past.remaining(), 0.0);
}

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::Ok);
  EXPECT_EQ(S.render(), "ok");
}

TEST(Status, ErrorCarriesCodePhaseAndHints) {
  Status S = Status::error(StatusCode::IlpBudgetExceeded, Phase::Solve,
                           "node limit hit")
                 .addHint("raise --time-limit");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::IlpBudgetExceeded);
  EXPECT_EQ(S.phase(), Phase::Solve);
  EXPECT_EQ(S.message(), "node limit hit");
  ASSERT_EQ(S.hints().size(), 1u);
  EXPECT_EQ(S.render(), "solve: ilp-budget-exceeded: node limit hit\n"
                        "  hint: raise --time-limit");
}

TEST(Status, NamesAreStable) {
  EXPECT_STREQ(statusCodeName(StatusCode::VerifyFailed), "verify-failed");
  EXPECT_STREQ(statusCodeName(StatusCode::IlpInfeasible), "ilp-infeasible");
  EXPECT_STREQ(phaseName(Phase::Baseline), "baseline");
}

TEST(FaultInjection, DisarmedNeverFires) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(FI.shouldFire(FaultKind::LpInfeasible));
}

TEST(FaultInjection, AfterAndTimesWindow) {
  FaultSpec Spec;
  Spec.Kind = FaultKind::MipTimeout;
  Spec.After = 2;
  Spec.Times = 3;
  ScopedFaultInjection Armed({Spec});
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_TRUE(FaultInjector::armed());
  // Opportunities 0 and 1 pass, 2..4 fire, 5+ are exhausted.
  EXPECT_FALSE(FI.shouldFire(FaultKind::MipTimeout));
  EXPECT_FALSE(FI.shouldFire(FaultKind::MipTimeout));
  EXPECT_TRUE(FI.shouldFire(FaultKind::MipTimeout));
  EXPECT_TRUE(FI.shouldFire(FaultKind::MipTimeout));
  EXPECT_TRUE(FI.shouldFire(FaultKind::MipTimeout));
  EXPECT_FALSE(FI.shouldFire(FaultKind::MipTimeout));
  EXPECT_EQ(FI.fired(FaultKind::MipTimeout), 3u);
  EXPECT_EQ(FI.opportunities(FaultKind::MipTimeout), 6u);
  // Other kinds are not armed by this plan.
  EXPECT_FALSE(FI.shouldFire(FaultKind::EtaDrift));
}

TEST(FaultInjection, ScopedDisarmRestoresFastPath) {
  {
    ScopedFaultInjection Armed({FaultSpec{}});
    EXPECT_TRUE(FaultInjector::armed());
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_EQ(FaultInjector::instance().fired(FaultKind::LpInfeasible), 0u);
}

TEST(FaultInjection, ProbabilityGateIsDeterministic) {
  auto CountFires = [](uint64_t Seed) {
    FaultSpec Spec;
    Spec.Kind = FaultKind::EtaDrift;
    Spec.Probability = 0.5;
    Spec.Seed = Seed;
    ScopedFaultInjection Armed({Spec});
    unsigned Fires = 0;
    for (int I = 0; I != 200; ++I)
      Fires += FaultInjector::instance().shouldFire(FaultKind::EtaDrift);
    return Fires;
  };
  unsigned A = CountFires(42), B = CountFires(42), C = CountFires(7);
  EXPECT_EQ(A, B);           // same seed, same stream
  EXPECT_GT(A, 50u);         // roughly half of 200
  EXPECT_LT(A, 150u);
  EXPECT_NE(A, 0u);
  (void)C; // different seed may or may not differ; only determinism matters
}

TEST(FaultInjection, MagnitudeFallsBackToDefault) {
  FaultSpec Spec;
  Spec.Kind = FaultKind::WorkerStall;
  Spec.Magnitude = 0.25;
  ScopedFaultInjection Armed({Spec});
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_EQ(FI.magnitude(FaultKind::WorkerStall, 0.02), 0.25);
  EXPECT_EQ(FI.magnitude(FaultKind::EtaDrift, 1e-3), 1e-3); // not armed
}

TEST(FaultInjection, ParsesCliSpecs) {
  FaultSpec S;
  std::string Err;
  ASSERT_TRUE(parseFaultSpec("mip-timeout@5", S, Err)) << Err;
  EXPECT_EQ(S.Kind, FaultKind::MipTimeout);
  EXPECT_EQ(S.After, 5u);
  EXPECT_EQ(S.Times, ~0u);

  ASSERT_TRUE(parseFaultSpec("eta-drift@100x3~1e-3", S, Err)) << Err;
  EXPECT_EQ(S.Kind, FaultKind::EtaDrift);
  EXPECT_EQ(S.After, 100u);
  EXPECT_EQ(S.Times, 3u);
  EXPECT_DOUBLE_EQ(S.Magnitude, 1e-3);

  ASSERT_TRUE(parseFaultSpec("singular-basis", S, Err)) << Err;
  EXPECT_EQ(S.Kind, FaultKind::SingularBasis);

  EXPECT_FALSE(parseFaultSpec("bad-kind", S, Err));
  EXPECT_NE(Err.find("unknown fault kind"), std::string::npos);
  EXPECT_FALSE(parseFaultSpec("mip-timeout@", S, Err));
  EXPECT_FALSE(parseFaultSpec("mip-timeout@abc", S, Err));
  EXPECT_FALSE(parseFaultSpec("eta-drift~zzz", S, Err));
}

TEST(FaultInjection, SpecParserRejectsChipDomainKinds) {
  // Chip-grade kinds only fire inside the whole-chip scheduler; a spec
  // naming one is a usage error pointing at --fault-schedule, never a
  // silently-ignored no-op.
  FaultSpec S;
  std::string Err;
  EXPECT_FALSE(parseFaultSpec("ctx-lockup", S, Err));
  EXPECT_NE(Err.find("chip-domain"), std::string::npos);
  EXPECT_FALSE(parseFaultSpec("dma-drop@5", S, Err));
  EXPECT_FALSE(parseFaultSpec("sdram-bitflip", S, Err));
}

TEST(FaultInjection, KindDomainsPartitionTheEnum) {
  using FD = FaultDomain;
  EXPECT_EQ(faultKindDomain(FaultKind::SingularBasis), FD::Solver);
  EXPECT_EQ(faultKindDomain(FaultKind::EtaDrift), FD::Solver);
  EXPECT_EQ(faultKindDomain(FaultKind::LpInfeasible), FD::Solver);
  EXPECT_EQ(faultKindDomain(FaultKind::MipTimeout), FD::Solver);
  EXPECT_EQ(faultKindDomain(FaultKind::WorkerStall), FD::Solver);
  EXPECT_EQ(faultKindDomain(FaultKind::MemJitter), FD::Sim);
  EXPECT_EQ(faultKindDomain(FaultKind::SimBitFlip), FD::Sim);
  EXPECT_EQ(faultKindDomain(FaultKind::CtxLockup), FD::Chip);
  EXPECT_EQ(faultKindDomain(FaultKind::RingStall), FD::Chip);
  EXPECT_EQ(faultKindDomain(FaultKind::ChanBrownout), FD::Chip);
  EXPECT_EQ(faultKindDomain(FaultKind::SdramBitFlip), FD::Chip);
  EXPECT_EQ(faultKindDomain(FaultKind::DmaDrop), FD::Chip);
  EXPECT_STREQ(faultDomainName(FD::Solver), "solver");
  EXPECT_STREQ(faultDomainName(FD::Sim), "sim");
  EXPECT_STREQ(faultDomainName(FD::Chip), "chip");
}

TEST(FaultInjection, ParsesFaultSchedules) {
  FaultSchedule S;
  std::string Err;
  ASSERT_TRUE(
      parseFaultSchedule("ctx-lockup@5000,chan-brownout@10000~4", S, Err))
      << Err;
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0].Kind, FaultKind::CtxLockup);
  EXPECT_EQ(S[0].Rate, 5000u);
  EXPECT_DOUBLE_EQ(S[0].Magnitude, 0.0);
  EXPECT_EQ(S[1].Kind, FaultKind::ChanBrownout);
  EXPECT_EQ(S[1].Rate, 10000u);
  EXPECT_DOUBLE_EQ(S[1].Magnitude, 4.0);

  ASSERT_TRUE(parseFaultSchedule("sdram-bitflip@1", S, Err)) << Err;
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Rate, 1u);

  ASSERT_TRUE(parseFaultSchedule(
      "ctx-lockup@2~3,ring-stall@7~250,dma-drop@9", S, Err))
      << Err;
  EXPECT_EQ(S.size(), 3u);
}

TEST(FaultInjection, ScheduleParserRejectsMalformedInput) {
  FaultSchedule S;
  std::string Err;
  // Rate is mandatory and must be >= 1.
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup", S, Err));
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup@0", S, Err));
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup@abc", S, Err));
  // Non-chip kinds belong to other front doors.
  EXPECT_FALSE(parseFaultSchedule("mem-jitter@5", S, Err));
  EXPECT_NE(Err.find("chip"), std::string::npos);
  EXPECT_FALSE(parseFaultSchedule("mip-timeout@5", S, Err));
  // Duplicates, unknown kinds, bad magnitudes, empty entries.
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup@5,ctx-lockup@9", S, Err));
  EXPECT_FALSE(parseFaultSchedule("no-such-kind@5", S, Err));
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup@5~zzz", S, Err));
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup@5~-2", S, Err));
  EXPECT_FALSE(parseFaultSchedule("", S, Err));
  EXPECT_FALSE(parseFaultSchedule(",", S, Err));
  EXPECT_FALSE(parseFaultSchedule("ctx-lockup@5,", S, Err));
}
