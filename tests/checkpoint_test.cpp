//===- checkpoint_test.cpp - Checkpoint/restore and resume equality --------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Three layers of coverage:
//
//  1. Serializer: BinWriter/BinReader roundtrips, reader failure
//     latching, and the checkpoint file format — header versioning,
//     checksum rejection of truncated and bit-flipped files, atomic
//     write+rename (no .tmp survivors), and typed meta-mismatch errors.
//  2. Directory policy: findLatestValid picks the newest snapshot,
//     skips corrupt tails, falls back to older valid files, and
//     hard-fails (never silently ignores) a newest-valid snapshot that
//     belongs to a different run.
//  3. Resume equality: a soak stream stopped mid-run (the in-process
//     StopAfter crash simulation) and resumed from its checkpoint must
//     produce a byte-identical stable report to an uninterrupted run —
//     standalone and whole-chip, interp and threaded, with and without
//     an armed chip fault schedule.
//
// Like soak_test, this compiles the nat app through the ILP allocator
// (cached in-process), so it runs as one ctest entry.
//
//===----------------------------------------------------------------------===//

#include "checkpoint/Checkpoint.h"
#include "soak/ChipSoak.h"
#include "soak/Soak.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <dirent.h>
#include <unistd.h>

using namespace nova;

namespace {

/// Compiles nat once per process (ILP-bound; shared by the resume
/// tests below).
soak::AppHarness &natHarness() {
  static std::unique_ptr<soak::AppHarness> H = [] {
    driver::CompileOptions Opts = soak::AppHarness::defaultCompileOptions();
    Opts.Alloc.Mip.TimeLimitSeconds = 30.0;
    std::string Error;
    auto A = soak::AppHarness::create("nat", Error, Opts);
    if (!A) {
      ADD_FAILURE() << "compiling nat: " << Error;
      std::abort();
    }
    return A;
  }();
  return *H;
}

/// Fresh temp directory per test; removed with its contents on scope
/// exit.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/nova-ckpt-test-XXXXXX";
    Path = mkdtemp(Buf);
  }
  ~TempDir() {
    if (DIR *D = opendir(Path.c_str())) {
      while (dirent *E = readdir(D)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          ::unlink((Path + "/" + N).c_str());
      }
      closedir(D);
      ::rmdir(Path.c_str());
    }
  }
};

ckpt::CheckpointMeta testMeta(uint64_t Retired = 0) {
  ckpt::CheckpointMeta M;
  M.App = "nat";
  M.Seed = 42;
  M.Packets = 1000;
  M.CodeHash = 0x1234;
  M.PacketsRetired = Retired;
  return M;
}

std::string readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  std::string Raw;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Raw.append(Buf, N);
  std::fclose(F);
  return Raw;
}

void writeFile(const std::string &Path, const std::string &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
}

/// Zeroes the wall-clock fields (the one legitimate difference between
/// a resumed and an uninterrupted run) and returns the JSON report.
std::string stableJson(soak::SoakReport R) {
  R.WallSeconds = 0;
  R.TranslateSeconds = 0;
  return soak::reportJson(R);
}

std::string stableChipJson(soak::ChipSoakReport R) {
  R.Base.WallSeconds = 0;
  R.Base.TranslateSeconds = 0;
  return soak::chipReportJson(R);
}

} // namespace

//===----------------------------------------------------------------------===//
// BinIO
//===----------------------------------------------------------------------===//

TEST(BinIO, RoundTripsEveryType) {
  BinWriter W;
  W.u8(0xab);
  W.b(true);
  W.b(false);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.f64(3.25);
  W.str("hello");
  W.str(std::string("x\0y", 3)); // embedded NUL: str is length-prefixed
  W.vec32({1, 2, 3});
  W.vec64({});

  BinReader R(W.bytes());
  EXPECT_EQ(R.u8(), 0xab);
  EXPECT_TRUE(R.b());
  EXPECT_FALSE(R.b());
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.f64(), 3.25);
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.str(), std::string("x\0y", 3));
  EXPECT_EQ(R.vec32(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(R.vec64().empty());
  EXPECT_FALSE(R.failed());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(BinIO, ReaderFailureLatches) {
  BinWriter W;
  W.u32(7);
  BinReader R(W.bytes());
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_EQ(R.u64(), 0u); // past the end: zero and latched failure
  EXPECT_TRUE(R.failed());
  EXPECT_EQ(R.u32(), 0u); // stays failed, never reads garbage
  EXPECT_TRUE(R.failed());
}

TEST(BinIO, HugeVectorLengthDoesNotAllocate) {
  // A corrupt length prefix must not drive a multi-gigabyte allocation:
  // the reader bounds the claimed count against the bytes actually left.
  BinWriter W;
  W.u64(UINT64_MAX);
  BinReader R(W.bytes());
  EXPECT_TRUE(R.vec32().empty());
  EXPECT_TRUE(R.failed());
}

//===----------------------------------------------------------------------===//
// File format
//===----------------------------------------------------------------------===//

TEST(CheckpointFile, WriteReadRoundTrip) {
  TempDir D;
  ckpt::CheckpointMeta M = testMeta(500);
  M.Faults.push_back({FaultKind::CtxLockup, 5000, 0.0});
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, M, "payload-state").ok());

  ckpt::LoadedCheckpoint LC;
  ASSERT_TRUE(
      ckpt::readCheckpoint(D.Path + "/ckpt-500.nova-ckpt", LC).ok());
  EXPECT_EQ(LC.Meta.App, "nat");
  EXPECT_EQ(LC.Meta.Seed, 42u);
  EXPECT_EQ(LC.Meta.PacketsRetired, 500u);
  ASSERT_EQ(LC.Meta.Faults.size(), 1u);
  EXPECT_EQ(LC.Meta.Faults[0].Kind, FaultKind::CtxLockup);
  BinReader R = LC.stateReader();
  std::string State = LC.Payload.substr(LC.StateOffset);
  EXPECT_EQ(State, "payload-state");
  EXPECT_EQ(R.remaining(), State.size());
}

TEST(CheckpointFile, NoTmpSurvivesAWrite) {
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(1), "s").ok());
  DIR *Dir = opendir(D.Path.c_str());
  ASSERT_NE(Dir, nullptr);
  while (dirent *E = readdir(Dir)) {
    std::string N = E->d_name;
    EXPECT_EQ(N.find(".tmp"), std::string::npos) << N;
  }
  closedir(Dir);
}

TEST(CheckpointFile, RejectsWrongVersion) {
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(1), "s").ok());
  std::string Path = D.Path + "/ckpt-1.nova-ckpt";
  std::string Raw = readFile(Path);
  // The u32 version sits right after the u64 magic.
  Raw[8] = char(ckpt::FileVersion + 1);
  writeFile(Path, Raw);
  ckpt::LoadedCheckpoint LC;
  Status S = ckpt::readCheckpoint(Path, LC);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::CheckpointCorrupt);
  EXPECT_NE(S.message().find("version"), std::string::npos);
}

TEST(CheckpointFile, RejectsTruncation) {
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(1), "state").ok());
  std::string Path = D.Path + "/ckpt-1.nova-ckpt";
  std::string Raw = readFile(Path);
  writeFile(Path, Raw.substr(0, Raw.size() - 3));
  ckpt::LoadedCheckpoint LC;
  Status S = ckpt::readCheckpoint(Path, LC);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::CheckpointCorrupt);
  EXPECT_NE(S.message().find("truncated"), std::string::npos);
}

TEST(CheckpointFile, RejectsBitFlip) {
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(1), "state").ok());
  std::string Path = D.Path + "/ckpt-1.nova-ckpt";
  std::string Raw = readFile(Path);
  Raw[Raw.size() - 2] ^= 0x40; // flip one payload bit
  writeFile(Path, Raw);
  ckpt::LoadedCheckpoint LC;
  Status S = ckpt::readCheckpoint(Path, LC);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::CheckpointCorrupt);
  EXPECT_NE(S.message().find("checksum"), std::string::npos);
}

TEST(CheckpointFile, RejectsForeignBytes) {
  TempDir D;
  std::string Path = D.Path + "/ckpt-3.nova-ckpt";
  writeFile(Path, "this is not a checkpoint");
  ckpt::LoadedCheckpoint LC;
  Status S = ckpt::readCheckpoint(Path, LC);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::CheckpointCorrupt);
}

//===----------------------------------------------------------------------===//
// Directory policy
//===----------------------------------------------------------------------===//

TEST(CheckpointDir, PicksNewestValid) {
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(100), "a").ok());
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(900), "b").ok());
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(500), "c").ok());
  ckpt::LoadedCheckpoint LC;
  ASSERT_TRUE(ckpt::findLatestValid(D.Path, testMeta(), LC, nullptr).ok());
  EXPECT_EQ(LC.Meta.PacketsRetired, 900u);
}

TEST(CheckpointDir, CorruptLatestFallsBackToOlder) {
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(100), "a").ok());
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(900), "b").ok());
  std::string Latest = D.Path + "/ckpt-900.nova-ckpt";
  std::string Raw = readFile(Latest);
  Raw[Raw.size() - 1] ^= 0x01;
  writeFile(Latest, Raw);

  ckpt::LoadedCheckpoint LC;
  std::vector<std::string> Notes;
  ASSERT_TRUE(ckpt::findLatestValid(D.Path, testMeta(), LC, &Notes).ok());
  EXPECT_EQ(LC.Meta.PacketsRetired, 100u);
  ASSERT_EQ(Notes.size(), 1u);
  EXPECT_NE(Notes[0].find("checksum"), std::string::npos);
}

TEST(CheckpointDir, NewestValidMetaMismatchIsHardError) {
  // The newest structurally valid snapshot decides: if it belongs to a
  // different run, resuming an *older* matching file would silently
  // rewind, so this must be a typed hard error.
  TempDir D;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, testMeta(100), "a").ok());
  ckpt::CheckpointMeta Other = testMeta(500);
  Other.Seed = 43;
  ASSERT_TRUE(ckpt::writeCheckpoint(D.Path, Other, "b").ok());

  ckpt::LoadedCheckpoint LC;
  Status S = ckpt::findLatestValid(D.Path, testMeta(), LC, nullptr);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::CheckpointMismatch);
}

TEST(CheckpointDir, AllCorruptIsTypedError) {
  TempDir D;
  writeFile(D.Path + "/ckpt-5.nova-ckpt", "garbage");
  ckpt::LoadedCheckpoint LC;
  Status S = ckpt::findLatestValid(D.Path, testMeta(), LC, nullptr);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::CheckpointCorrupt);
}

//===----------------------------------------------------------------------===//
// Resume equality
//===----------------------------------------------------------------------===//

namespace {

/// Locks the checkpoint/resume contract for one standalone soak
/// configuration: uninterrupted, versus stopped at StopAt (the
/// in-process crash simulation) and resumed — the stable reports must
/// be byte-identical.
void expectStandaloneResumeEquality(soak::ExecMode Exec) {
  soak::AppHarness &H = natHarness();
  TempDir D;
  soak::SoakOptions Opts;
  Opts.Packets = 2000;
  Opts.Seed = 42;
  Opts.Exec = Exec;
  Opts.OracleEvery = 10;

  soak::SoakReport Ref = soak::runSoak(H, Opts);
  ASSERT_FALSE(Ref.Stopped);

  Opts.Ckpt.Every = 500;
  Opts.Ckpt.Dir = D.Path;
  Opts.Ckpt.StopAfter = 1100;
  soak::SoakReport Crashed = soak::runSoak(H, Opts);
  EXPECT_TRUE(Crashed.Stopped);
  EXPECT_GE(Crashed.Stats.Packets, 1100u);

  Opts.Ckpt.StopAfter = 0;
  Opts.Ckpt.Resume = true;
  soak::SoakReport Resumed = soak::runSoak(H, Opts);
  ASSERT_TRUE(Resumed.CkptError.ok()) << Resumed.CkptError.message();
  ASSERT_FALSE(Resumed.Stopped);
  EXPECT_FALSE(Resumed.ResumedFrom.empty());
  EXPECT_EQ(stableJson(Ref), stableJson(Resumed));
}

/// Same contract for the whole-chip soak, optionally under an armed
/// fault schedule (the supervisor ordinals and recovery ledger must
/// survive the round-trip too).
void expectChipResumeEquality(soak::ExecMode Exec, bool WithFaults) {
  soak::AppHarness &H = natHarness();
  TempDir D;
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 2000;
  Opts.Base.Seed = 42;
  Opts.Base.Exec = Exec;
  Opts.Base.OracleEvery = 10;
  Opts.Chip.Exec = Exec == soak::ExecMode::Threaded
                       ? chip::ExecModel::Threaded
                       : chip::ExecModel::Interp;
  if (WithFaults) {
    std::string Error;
    ASSERT_TRUE(parseFaultSchedule("ctx-lockup@500,chan-brownout@800~4",
                                   Opts.Chip.Faults, Error))
        << Error;
  }

  soak::ChipSoakReport Ref = soak::runChipSoak(H, Opts);
  ASSERT_TRUE(Ref.Setup.ok()) << Ref.Setup.message();
  ASSERT_FALSE(Ref.Base.Stopped);

  Opts.Base.Ckpt.Every = 500;
  Opts.Base.Ckpt.Dir = D.Path;
  Opts.Base.Ckpt.StopAfter = 1100;
  soak::ChipSoakReport Crashed = soak::runChipSoak(H, Opts);
  EXPECT_TRUE(Crashed.Base.Stopped);

  Opts.Base.Ckpt.StopAfter = 0;
  Opts.Base.Ckpt.Resume = true;
  soak::ChipSoakReport Resumed = soak::runChipSoak(H, Opts);
  ASSERT_TRUE(Resumed.Base.CkptError.ok())
      << Resumed.Base.CkptError.message();
  ASSERT_FALSE(Resumed.Base.Stopped);
  EXPECT_FALSE(Resumed.Base.ResumedFrom.empty());
  // Byte-identical stable JSON covers the trace hash, the image hash,
  // the recovery fold, and the whole drop taxonomy in one comparison.
  EXPECT_EQ(stableChipJson(Ref), stableChipJson(Resumed));
  EXPECT_EQ(Ref.Chip.TraceHash, Resumed.Chip.TraceHash);
  EXPECT_EQ(Ref.Chip.Recovery.fold(), Resumed.Chip.Recovery.fold());
}

} // namespace

TEST(ResumeEquality, StandaloneInterp) {
  expectStandaloneResumeEquality(soak::ExecMode::Interp);
}

TEST(ResumeEquality, StandaloneThreaded) {
  expectStandaloneResumeEquality(soak::ExecMode::Threaded);
}

TEST(ResumeEquality, ChipInterp) {
  expectChipResumeEquality(soak::ExecMode::Interp, /*WithFaults=*/false);
}

TEST(ResumeEquality, ChipThreaded) {
  expectChipResumeEquality(soak::ExecMode::Threaded, /*WithFaults=*/false);
}

TEST(ResumeEquality, ChipInterpWithFaultSchedule) {
  expectChipResumeEquality(soak::ExecMode::Interp, /*WithFaults=*/true);
}

TEST(ResumeEquality, ChipThreadedWithFaultSchedule) {
  expectChipResumeEquality(soak::ExecMode::Threaded, /*WithFaults=*/true);
}

TEST(ResumeEquality, ResumeIntoFreshDirectoryIsTypedError) {
  soak::AppHarness &H = natHarness();
  TempDir D;
  soak::SoakOptions Opts;
  Opts.Packets = 100;
  Opts.Ckpt.Dir = D.Path;
  Opts.Ckpt.Resume = true;
  soak::SoakReport R = soak::runSoak(H, Opts);
  ASSERT_FALSE(R.CkptError.ok());
  EXPECT_EQ(R.CkptError.code(), StatusCode::CheckpointCorrupt);
  EXPECT_EQ(R.Stats.Packets, 0u); // nothing ran
}
