//===- soak_test.cpp - Trap model and soak harness tests -------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Three layers of coverage:
//
//  1. Trap taxonomy: hand-built allocated programs drive every TrapKind
//     through sim::runAllocated and check the structured Status.
//  2. Shared ALU semantics: the shift clamp (count >= 32 yields 0) is
//     locked across cps::evalPrim, the CPS evaluator, the functional
//     simulator, and the allocated simulator by compiling a Nova program
//     with a runtime shift count and running it through all of them.
//  3. Soak harness: per-app 10k-packet adversarial corpora under a fixed
//     seed must produce zero divergences and exact drop accounting, and
//     an injected ALU bit flip must be caught by the oracle and shrunk
//     to a reproducer that still diverges.
//
// Like apps_test, this compiles the benchmark apps through the ILP
// allocator (cached in-process), so it runs as one ctest entry.
//
//===----------------------------------------------------------------------===//

#include "soak/ChipSoak.h"
#include "soak/Soak.h"

#include "cps/Eval.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <map>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

AllocInstr imm(uint32_t V, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::Imm;
  I.Imm = V;
  I.Dsts = {Dst};
  return I;
}

AllocInstr haltOf(std::vector<AOperand> Srcs) {
  AllocInstr I;
  I.Op = MOp::Halt;
  I.Srcs = std::move(Srcs);
  return I;
}

AllocatedProgram oneBlock(std::vector<AllocInstr> Instrs) {
  AllocatedProgram P;
  P.Entry = 0;
  P.Blocks.push_back({std::move(Instrs)});
  return P;
}

/// Compiles a benchmark app once per process (ILP-bound; shared across
/// all soak tests below).
soak::AppHarness &harness(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<soak::AppHarness>> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    driver::CompileOptions Opts = soak::AppHarness::defaultCompileOptions();
    Opts.Alloc.Mip.TimeLimitSeconds = 30.0;
    std::string Error;
    auto H = soak::AppHarness::create(Name, Error, Opts);
    if (!H) {
      ADD_FAILURE() << "compiling " << Name << ": " << Error;
      std::abort();
    }
    It = Cache.emplace(Name, std::move(H)).first;
  }
  return *It->second;
}

} // namespace

//===----------------------------------------------------------------------===//
// Trap taxonomy
//===----------------------------------------------------------------------===//

TEST(TrapModel, IllegalRegisterIndexTraps) {
  // A-bank has 16 registers; reading A20 is a typed trap, not silent
  // index masking.
  AllocatedProgram P =
      oneBlock({haltOf({AOperand::reg({Bank::A, 20})})});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {}, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap, sim::TrapKind::IllegalRegister);
  EXPECT_EQ(R.Error.code(), StatusCode::SimTrap);
}

TEST(TrapModel, IllegalMemSpaceTraps) {
  AllocInstr Rd;
  Rd.Op = MOp::MemRead;
  Rd.Space = static_cast<MemSpace>(7);
  Rd.Srcs = {AOperand::constant(0)};
  Rd.Dsts = {{Bank::L, 0}};
  AllocatedProgram P = oneBlock({Rd, haltOf({})});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {}, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap, sim::TrapKind::IllegalMemSpace);
}

TEST(TrapModel, OutOfRangePerSpaceTraps) {
  struct Case {
    MemSpace Space;
    sim::TrapKind Want;
  } Cases[] = {
      {MemSpace::Sram, sim::TrapKind::SramOutOfRange},
      {MemSpace::Sdram, sim::TrapKind::SdramOutOfRange},
      {MemSpace::Scratch, sim::TrapKind::ScratchOutOfRange},
  };
  for (const Case &C : Cases) {
    sim::Memory Mem;
    AllocInstr Wr;
    Wr.Op = MOp::MemWrite;
    Wr.Space = C.Space;
    Wr.Srcs = {AOperand::constant(Mem.Limits.words(C.Space)),
               AOperand::reg({Bank::A, 0})};
    AllocatedProgram P = oneBlock({imm(1, {Bank::A, 0}), Wr, haltOf({})});
    sim::RunResult R = sim::runAllocated(P, {}, Mem);
    EXPECT_FALSE(R.Ok);
    EXPECT_EQ(R.Trap, C.Want);
    // One word below the limit is fine.
    Wr.Srcs[0] = AOperand::constant(Mem.Limits.words(C.Space) - 1);
    AllocatedProgram Q = oneBlock({imm(1, {Bank::A, 0}), Wr, haltOf({})});
    EXPECT_TRUE(sim::runAllocated(Q, {}, Mem).Ok);
  }
}

TEST(TrapModel, MultiWordAccessStraddlingLimitTraps) {
  // A two-word read whose second word crosses the boundary.
  sim::Memory Mem;
  AllocInstr Rd;
  Rd.Op = MOp::MemRead;
  Rd.Space = MemSpace::Sdram;
  Rd.Srcs = {AOperand::constant(Mem.Limits.SdramWords - 1)};
  Rd.Dsts = {{Bank::L, 0}, {Bank::L, 1}};
  AllocatedProgram P = oneBlock({Rd, haltOf({})});
  sim::RunResult R = sim::runAllocated(P, {}, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap, sim::TrapKind::SdramOutOfRange);
}

TEST(TrapModel, MalformedJumpTargetTraps) {
  AllocInstr J;
  J.Op = MOp::Jump;
  J.Target = 5; // only block 0 exists
  AllocatedProgram P = oneBlock({J});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {}, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap, sim::TrapKind::MalformedProgram);
}

TEST(TrapModel, ReadsDoNotGrowMemory) {
  // Loads of absent words return 0 without inserting map entries, so a
  // read-heavy hostile packet cannot balloon the image.
  AllocInstr Rd;
  Rd.Op = MOp::MemRead;
  Rd.Space = MemSpace::Sram;
  Rd.Srcs = {AOperand::constant(0x50)};
  Rd.Dsts = {{Bank::L, 0}};
  AllocatedProgram P =
      oneBlock({Rd, haltOf({AOperand::reg({Bank::L, 0})})});
  sim::Memory Mem;
  sim::RunResult R = sim::runAllocated(P, {}, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.HaltValues[0], 0u);
  EXPECT_TRUE(Mem.Sram.empty());
}

//===----------------------------------------------------------------------===//
// Cycle histogram and stream accounting
//===----------------------------------------------------------------------===//

TEST(CycleHistogram, ExactForSmallValuesAndBoundedError) {
  sim::CycleHistogram H;
  H.add(5);
  H.add(5);
  H.add(5);
  H.add(7);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.quantile(0.5), 5u);
  EXPECT_EQ(H.quantile(1.0), 7u);
  // Log-scale buckets: quantile error stays within 12.5% above the
  // exact range.
  for (uint64_t V : {1000ull, 123456ull, 99999999ull}) {
    sim::CycleHistogram H2;
    H2.add(V);
    uint64_t Q = H2.quantile(1.0);
    EXPECT_GE(Q, V);
    EXPECT_LE(Q - V, V / 8);
  }
}

TEST(RunStats, AccountsDeliveredRejectedAndDrops) {
  sim::RunStats S;
  sim::RunResult Ok;
  Ok.Ok = true;
  Ok.Cycles = 100;
  S.account(Ok, /*AppRejected=*/false, /*PayloadBytes=*/64);
  S.account(Ok, /*AppRejected=*/true, 64);
  sim::RunResult Trapped;
  Trapped.Ok = false;
  Trapped.Trap = sim::TrapKind::Watchdog;
  Trapped.Cycles = 50;
  S.account(Trapped, false, 64);
  EXPECT_EQ(S.Packets, 3u);
  EXPECT_EQ(S.Delivered, 1u);
  EXPECT_EQ(S.Rejected, 1u);
  EXPECT_EQ(S.Drops, 1u);
  EXPECT_EQ(S.Traps[static_cast<unsigned>(sim::TrapKind::Watchdog)], 1u);
  EXPECT_EQ(S.TotalCycles, 250u);
  EXPECT_EQ(S.DeliveredPayloadBytes, 64u); // rejected payload not counted
  EXPECT_GT(S.deliveredMbps(), 0.0);
}

//===----------------------------------------------------------------------===//
// Shift semantics locked across all four semantic layers
//===----------------------------------------------------------------------===//

TEST(ShiftSemantics, SharedPrimClampsAtThirtyTwo) {
  EXPECT_EQ(cps::evalPrim(cps::PrimOp::Shl, 0xDEADBEEF, 32), 0u);
  EXPECT_EQ(cps::evalPrim(cps::PrimOp::Shr, 0xDEADBEEF, 33), 0u);
  EXPECT_EQ(cps::evalPrim(cps::PrimOp::Shl, 1, 31), 0x80000000u);
  EXPECT_EQ(cps::evalPrim(cps::PrimOp::Shr, 0x80000000u, 31), 1u);
  EXPECT_TRUE(cps::shiftOutOfRange(cps::PrimOp::Shl, 32));
  EXPECT_FALSE(cps::shiftOutOfRange(cps::PrimOp::Shl, 31));
  EXPECT_FALSE(cps::shiftOutOfRange(cps::PrimOp::Add, 32));
}

TEST(ShiftSemantics, DifferentialAcrossEvaluatorAndBothSimModes) {
  // A runtime shift count defeats constant folding, so every layer
  // actually executes its shift at count 32.
  auto App = driver::compileNova(
      "fun main(x : word, s : word) { (x << s) + (x >> s) }", "shift.nova");
  ASSERT_TRUE(App->Ok) << App->ErrorText;
  for (uint32_t S : {0u, 1u, 31u, 32u, 33u, 63u, 255u}) {
    uint32_t X = 0xDEADBEEF;
    uint32_t Want = cps::evalPrim(cps::PrimOp::Shl, X, S) +
                    cps::evalPrim(cps::PrimOp::Shr, X, S);
    cps::EvalMemory EM;
    cps::EvalResult E = cps::evaluate(App->Cps, {X, S}, EM);
    ASSERT_TRUE(E.Ok) << E.Error;
    ASSERT_EQ(E.HaltValues.size(), 1u);
    EXPECT_EQ(E.HaltValues[0], Want) << "cps, s=" << S;

    sim::Memory MF;
    sim::RunResult F = sim::runFunctional(App->Machine, {X, S}, MF);
    ASSERT_TRUE(F.Ok) << F.Error;
    EXPECT_EQ(F.HaltValues[0], Want) << "functional, s=" << S;

    sim::Memory MA;
    sim::RunResult A = sim::runAllocated(App->Alloc.Prog, {X, S}, MA);
    ASSERT_TRUE(A.Ok) << A.Error;
    EXPECT_EQ(A.HaltValues[0], Want) << "allocated, s=" << S;
  }
}

TEST(ShiftSemantics, StrictModeTrapsOutOfRangeShift) {
  auto App = driver::compileNova(
      "fun main(x : word, s : word) { (x << s) + (x >> s) }", "shift.nova");
  ASSERT_TRUE(App->Ok) << App->ErrorText;
  sim::RunOptions Strict;
  Strict.TrapOnShiftRange = true;
  sim::Memory Mem;
  sim::RunResult R =
      sim::runAllocated(App->Alloc.Prog, {1, 32}, Mem, Strict);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap, sim::TrapKind::ShiftRange);
  // In-range shifts are untouched by strict mode.
  sim::Memory Mem2;
  EXPECT_TRUE(sim::runAllocated(App->Alloc.Prog, {1, 4}, Mem2, Strict).Ok);
}

//===----------------------------------------------------------------------===//
// Soak harness
//===----------------------------------------------------------------------===//

TEST(SoakHarness, PacketGenerationIsDeterministic) {
  soak::AppHarness &H = harness("nat");
  soak::ClassMix Mix;
  for (uint64_t I = 0; I != 50; ++I) {
    soak::SoakPacket A = H.generate(I, 99, Mix);
    soak::SoakPacket B = H.generate(I, 99, Mix);
    EXPECT_EQ(A.Seed, B.Seed);
    EXPECT_EQ(A.Class, B.Class);
    EXPECT_EQ(A.Words, B.Words);
    EXPECT_EQ(A.Args, B.Args);
  }
  // Different stream seeds decorrelate immediately.
  EXPECT_NE(H.generate(0, 99, Mix).Seed, H.generate(0, 100, Mix).Seed);
}

namespace {

uint64_t foldHash(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 0x100000001b3ull;
  return H;
}

uint64_t foldPacket(uint64_t H, const soak::SoakPacket &P) {
  H = foldHash(H, static_cast<uint64_t>(P.Class));
  H = foldHash(H, P.Index);
  H = foldHash(H, P.Seed);
  H = foldHash(H, P.PayloadBytes);
  H = foldHash(H, P.Words.size());
  for (uint32_t W : P.Words)
    H = foldHash(H, W);
  H = foldHash(H, P.Args.size());
  for (uint32_t A : P.Args)
    H = foldHash(H, A);
  return H;
}

void expectSamePacket(const soak::SoakPacket &A, const soak::SoakPacket &B,
                      uint64_t I) {
  EXPECT_EQ(A.Class, B.Class) << "packet " << I;
  EXPECT_EQ(A.Index, B.Index) << "packet " << I;
  EXPECT_EQ(A.Seed, B.Seed) << "packet " << I;
  EXPECT_EQ(A.PayloadBytes, B.PayloadBytes) << "packet " << I;
  EXPECT_EQ(A.Words, B.Words) << "packet " << I;
  EXPECT_EQ(A.Args, B.Args) << "packet " << I;
}

} // namespace

// The template-cache generator must be a pure function of (seed, index):
// reusing one packet and one cache across calls leaves no state behind.
TEST(SoakHarness, BatchedGeneratorMatchesUnbatchedByteForByte) {
  for (const char *Name : {"aes", "kasumi", "nat"}) {
    soak::AppHarness &H = harness(Name);
    soak::ClassMix Mix;
    soak::PacketTemplateCache Cache;
    soak::SoakPacket P;
    for (uint64_t I = 0; I != 512; ++I) {
      H.generateInto(I, 7, Mix, Cache, P);
      expectSamePacket(H.generate(I, 7, Mix), P, I);
    }
  }
}

TEST(SoakHarness, GenerateBatchReusesBuffersAndMatches) {
  soak::AppHarness &H = harness("nat");
  soak::ClassMix Mix;
  soak::PacketTemplateCache Cache;
  std::vector<soak::SoakPacket> Batch;
  // Two chunks into the same vector: the second fully overwrites the
  // first's reused buffers.
  for (uint64_t Base : {0ull, 256ull}) {
    H.generateBatch(Base, 256, 5, Mix, Cache, Batch);
    for (uint64_t I = 0; I != 256; ++I)
      expectSamePacket(H.generate(Base + I, 5, Mix), Batch[I], Base + I);
  }
}

// Golden corpus hashes pinned at the generator rewrite (PR 5 semantics):
// any byte-level drift in the packet streams — class draws, payload
// words, argument blocks — moves one of these folds.
TEST(SoakHarness, GeneratorCorpusHashesArePinned) {
  struct Golden {
    const char *App;
    uint64_t Seed;
    uint64_t Hash;
  };
  const Golden Pins[] = {
      {"aes", 1, 0xce8d1fee0abec8feull},    {"aes", 42, 0xc9c667ba12c16049ull},
      {"kasumi", 1, 0x235782d5c97c5ea2ull}, {"kasumi", 42, 0x0177faf1ee253113ull},
      {"nat", 1, 0x0fd9f6928cdb493eull},    {"nat", 42, 0x0a7f54fb07a0134dull},
  };
  soak::ClassMix Mix;
  for (const Golden &G : Pins) {
    soak::AppHarness &H = harness(G.App);
    soak::PacketTemplateCache Cache;
    soak::SoakPacket P;
    uint64_t Acc = 0xcbf29ce484222325ull;
    for (uint64_t I = 0; I != 4096; ++I) {
      H.generateInto(I, G.Seed, Mix, Cache, P);
      Acc = foldPacket(Acc, P);
    }
    EXPECT_EQ(Acc, G.Hash) << G.App << " seed " << G.Seed;
  }
}

TEST(SoakHarness, AppRejectDetection) {
  soak::AppHarness &Nat = harness("nat");
  EXPECT_TRUE(Nat.isAppReject({0xFFFF0003u}));
  EXPECT_TRUE(Nat.isAppReject({0xFFFFFFFEu}));
  EXPECT_FALSE(Nat.isAppReject({0x123u}));
  EXPECT_FALSE(Nat.isAppReject({}));
  soak::AppHarness &Kas = harness("kasumi");
  EXPECT_TRUE(Kas.isAppReject({0xFFFFFFFFu}));
  EXPECT_TRUE(Kas.isAppReject({0xFFFFFFFEu}));
  // Kasumi's normal result ranges over the whole word; a high half of
  // 0xFFFF alone is not a reject.
  EXPECT_FALSE(Kas.isAppReject({0xFFFF1234u}));
}

namespace {

/// The ISSUE's corpus contract: zero divergences and exact accounting
/// under a fixed seed.
void checkCorpus(const std::string &App) {
  soak::SoakOptions Opts;
  Opts.Packets = 10'000;
  Opts.Seed = 0xC0FFEE;
  soak::SoakReport R = soak::runSoak(harness(App), Opts);
  EXPECT_EQ(R.Divergences, 0u) << App << ": " << R.First.What;
  EXPECT_EQ(R.Stats.Packets, 10'000u);
  // Every packet is accounted exactly once.
  EXPECT_EQ(R.Stats.Delivered + R.Stats.Rejected + R.Stats.Drops,
            R.Stats.Packets);
  uint64_t TrapSum = 0, ClassSum = 0;
  for (unsigned K = 0; K != sim::NumTrapKinds; ++K)
    TrapSum += R.Stats.Traps[K];
  EXPECT_EQ(TrapSum, R.Stats.Drops) << App;
  for (unsigned C = 0; C != soak::NumPacketClasses; ++C)
    ClassSum += R.ClassCounts[C];
  EXPECT_EQ(ClassSum, R.Stats.Packets);
  EXPECT_EQ(R.OracleChecks, 10'000u);
  // The adversarial mix must actually exercise the drop path.
  EXPECT_GT(R.Stats.Drops, 0u) << App;
  EXPECT_GT(R.Stats.Rejected, 0u) << App;
  EXPECT_GT(R.Stats.Delivered, 0u) << App;
}

} // namespace

TEST(SoakCorpus, AesTenThousandPacketsZeroDivergence) {
  checkCorpus("aes");
}
TEST(SoakCorpus, KasumiTenThousandPacketsZeroDivergence) {
  checkCorpus("kasumi");
}
TEST(SoakCorpus, NatTenThousandPacketsZeroDivergence) {
  checkCorpus("nat");
}

TEST(SoakCorpus, AccountingIsReproducible) {
  soak::SoakOptions Opts;
  Opts.Packets = 2'000;
  Opts.Seed = 7;
  soak::SoakReport A = soak::runSoak(harness("kasumi"), Opts);
  soak::SoakReport B = soak::runSoak(harness("kasumi"), Opts);
  EXPECT_EQ(A.Stats.Delivered, B.Stats.Delivered);
  EXPECT_EQ(A.Stats.Rejected, B.Stats.Rejected);
  EXPECT_EQ(A.Stats.Drops, B.Stats.Drops);
  for (unsigned K = 0; K != sim::NumTrapKinds; ++K)
    EXPECT_EQ(A.Stats.Traps[K], B.Stats.Traps[K]);
  EXPECT_EQ(A.Stats.TotalCycles, B.Stats.TotalCycles);
}

TEST(SoakOracle, InjectedBitFlipIsCaughtAndShrunk) {
  // An ALU bit flip in allocated mode only: the differential oracle must
  // flag it, and the shrinker must hand back a reproducer that still
  // diverges stand-alone.
  FaultSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseFaultSpec("sim-bitflip@40", Spec, Error)) << Error;
  ScopedFaultInjection Armed({Spec});

  soak::SoakOptions Opts;
  Opts.Packets = 50;
  Opts.Seed = 3;
  Opts.FailFast = true;
  soak::AppHarness &H = harness("nat");
  soak::SoakReport R = soak::runSoak(H, Opts);
  ASSERT_GE(R.Divergences, 1u);
  ASSERT_TRUE(R.First.Found);
  EXPECT_FALSE(R.First.What.empty());
  EXPECT_LE(R.First.ShrunkWords.size(), R.First.Words.size());

  // The shrunk packet reproduces the divergence on its own.
  soak::SoakPacket Q;
  Q.Words = R.First.ShrunkWords;
  Q.Args = R.First.Args;
  EXPECT_TRUE(soak::runPacket(H, Q, Opts, /*WithOracle=*/true).Diverged);
}

TEST(SoakOracle, MemJitterNeverDiverges) {
  // Latency jitter perturbs cycle counts, never values: zero
  // divergences by construction.
  FaultSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseFaultSpec("mem-jitter~16", Spec, Error)) << Error;
  ScopedFaultInjection Armed({Spec});
  soak::SoakOptions Opts;
  Opts.Packets = 500;
  Opts.Seed = 11;
  soak::SoakReport R = soak::runSoak(harness("kasumi"), Opts);
  EXPECT_EQ(R.Divergences, 0u) << R.First.What;
}

//===----------------------------------------------------------------------===//
// Chip-mode soak: the whole-chip pipeline under adversarial traffic
//===----------------------------------------------------------------------===//

TEST(ChipSoak, NatTwoThousandPacketsZeroDivergence) {
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 2'000;
  Opts.Base.Seed = 0xC0FFEE;
  Opts.Chip.MP.MeCount = 2;
  soak::ChipSoakReport R = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(R.Setup.ok()) << R.Setup.message();
  EXPECT_EQ(R.Base.Divergences, 0u) << R.Base.First.What;
  EXPECT_EQ(R.ChipOutcomeMismatches, 0u);
  EXPECT_FALSE(R.Chip.Deadlock);
  EXPECT_EQ(R.Base.Stats.Packets, 2'000u);
  EXPECT_EQ(R.Chip.PacketsRetired, 2'000u);
  // Every packet is accounted exactly once and every drop is typed.
  EXPECT_EQ(R.Base.Stats.Delivered + R.Base.Stats.Rejected +
                R.Base.Stats.Drops,
            R.Base.Stats.Packets);
  uint64_t TrapSum = 0;
  for (unsigned K = 0; K != sim::NumTrapKinds; ++K)
    TrapSum += R.Base.Stats.Traps[K];
  EXPECT_EQ(TrapSum, R.Base.Stats.Drops);
  // The adversarial stream exercised both engines and the shared
  // channels.
  EXPECT_GT(R.Base.Stats.Drops, 0u);
  EXPECT_GT(R.Chip.totalStallCycles(), 0u);
  EXPECT_GT(R.Chip.CtxPackets[0][0], 0u);
  EXPECT_GT(R.Chip.CtxPackets[1][0], 0u);
  EXPECT_GT(R.GoodputMbps, 0.0);
}

TEST(ChipSoak, AccountingAndTracesAreReproducible) {
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 800;
  Opts.Base.Seed = 7;
  Opts.Base.OracleEvery = 0; // determinism of the chip itself
  Opts.Chip.MP.MeCount = 3;
  soak::ChipSoakReport A = soak::runChipSoak(harness("nat"), Opts);
  soak::ChipSoakReport B = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(A.Setup.ok());
  EXPECT_EQ(A.Chip.TraceHash, B.Chip.TraceHash);
  EXPECT_EQ(A.ImageHash, B.ImageHash);
  EXPECT_EQ(A.Chip.FinalCycles, B.Chip.FinalCycles);
  EXPECT_EQ(A.Chip.MeBusyCycles, B.Chip.MeBusyCycles);
  EXPECT_EQ(A.Base.Stats.Delivered, B.Base.Stats.Delivered);
  EXPECT_EQ(A.Base.Stats.Drops, B.Base.Stats.Drops);
  for (unsigned K = 0; K != sim::NumTrapKinds; ++K)
    EXPECT_EQ(A.Base.Stats.Traps[K], B.Base.Stats.Traps[K]);
  EXPECT_EQ(A.GoodputMbps, B.GoodputMbps);
}

TEST(ChipSoak, SetupErrorsAreReportedNotFatal) {
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 10;
  Opts.Chip.MP.MeCount = 0;
  soak::ChipSoakReport R = soak::runChipSoak(harness("nat"), Opts);
  EXPECT_FALSE(R.Setup.ok());
  EXPECT_EQ(R.Base.Stats.Packets, 0u);
  // The JSON path stays usable for the CLI's error reporting.
  std::string J = soak::chipReportJson(R);
  EXPECT_NE(J.find("chip_setup_error"), std::string::npos);
}

TEST(ChipSoak, JsonHasStableChipKeys) {
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 150;
  Opts.Base.Seed = 5;
  Opts.Chip.MP.MeCount = 2;
  soak::ChipSoakReport R = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(R.Setup.ok());
  std::string J = soak::chipReportJson(R);
  for (const char *Key :
       {"\"chip\":{", "\"me_count\":2", "\"contexts\":4",
        "\"final_cycles\"", "\"goodput_mbps\"", "\"me_utilization\"",
        "\"input_ring_high_water\"", "\"stall_cycles\"", "\"trace_hash\"",
        "\"image_hash\"", "\"deadlock\":false"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " in " << J;
}

TEST(ChipSoak, FaultScheduleRecoversWithZeroDivergences) {
  // Real app, real adversarial stream, chip faults armed: the
  // supervisor must recover or typed-drop every faulted packet, the
  // sampled oracle must stay silent (typed drops are excluded from it),
  // and the whole run must replay bit-identically — including the
  // recovery ledger — in both execution models.
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 2'000;
  Opts.Base.Seed = 42;
  Opts.Chip.MP.MeCount = 2;
  std::string Error;
  ASSERT_TRUE(parseFaultSchedule("ctx-lockup@150,chan-brownout@400~4",
                                 Opts.Chip.Faults, Error))
      << Error;
  soak::ChipSoakReport A = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(A.Setup.ok()) << A.Setup.message();
  EXPECT_EQ(A.Base.Divergences, 0u) << A.Base.First.What;
  EXPECT_EQ(A.ChipOutcomeMismatches, 0u);
  EXPECT_FALSE(A.Chip.Deadlock);
  EXPECT_EQ(A.Chip.PacketsRetired, 2'000u);
  const chip::RecoveryStats &RS = A.Chip.Recovery;
  EXPECT_GT(RS.LockupsInjected, 0u);
  EXPECT_GT(RS.PacketsRecovered + RS.LockupDrops, 0u);
  EXPECT_GT(RS.BrownoutsInjected, 0u);
  EXPECT_TRUE(RS.allAccounted());

  soak::ChipSoakReport B = soak::runChipSoak(harness("nat"), Opts);
  EXPECT_EQ(A.Chip.TraceHash, B.Chip.TraceHash);
  EXPECT_EQ(A.ImageHash, B.ImageHash);
  EXPECT_EQ(A.Chip.Recovery.fold(), B.Chip.Recovery.fold());

  // Same schedule, translated fast path: identical schedule and ledger.
  Opts.Chip.Exec = chip::ExecModel::Threaded;
  Opts.Base.OracleEvery = 10;
  soak::ChipSoakReport T = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(T.Setup.ok()) << T.Setup.message();
  EXPECT_EQ(T.Base.Divergences, 0u) << T.Base.First.What;
  EXPECT_EQ(T.Chip.TraceHash, A.Chip.TraceHash);
  EXPECT_EQ(T.Chip.FinalCycles, A.Chip.FinalCycles);
  EXPECT_EQ(T.Chip.Recovery.fold(), A.Chip.Recovery.fold());
}

TEST(ChipSoak, SdramBitFlipIsCaughtAndShrunk) {
  // The one chip fault the supervisor cannot see: post-DMA corruption.
  // The sampled retire-time oracle must flag it as a divergence, and
  // the ddmin shrinker must produce a still-diverging witness by
  // replaying the flip against the shrunk packet.
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 400;
  Opts.Base.Seed = 42;
  Opts.Base.OracleEvery = 1; // sample every retirement: no escapes
  Opts.Chip.MP.MeCount = 2;
  std::string Error;
  // Rate 10 => 40 flips; only flips landing on outcome-affecting words
  // diverge (NAT ignores parts of its payload), so density matters.
  ASSERT_TRUE(
      parseFaultSchedule("sdram-bitflip@10", Opts.Chip.Faults, Error))
      << Error;
  soak::ChipSoakReport R = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(R.Setup.ok()) << R.Setup.message();
  EXPECT_GT(R.Chip.Recovery.SdramBitFlipsInjected, 0u);
  EXPECT_GT(R.Base.Divergences, 0u)
      << "oracle missed every injected corruption";
  // The shrunk witness still diverges and is no larger than the
  // original packet.
  EXPECT_FALSE(R.Base.First.What.empty());
  EXPECT_GT(R.Base.First.ShrinkRuns, 0u);
  // Detection is the oracle's job alone; the supervisor ledger shows
  // the injections and nothing else.
  EXPECT_EQ(R.Chip.Recovery.LockupsDetected, 0u);
  EXPECT_TRUE(R.Chip.Recovery.allAccounted());
}

TEST(ChipSoak, JsonCarriesRecoveryLedger) {
  soak::ChipSoakOptions Opts;
  Opts.Base.Packets = 300;
  Opts.Base.Seed = 9;
  Opts.Chip.MP.MeCount = 2;
  std::string Error;
  ASSERT_TRUE(
      parseFaultSchedule("ctx-lockup@50,dma-drop@70", Opts.Chip.Faults,
                         Error))
      << Error;
  soak::ChipSoakReport R = soak::runChipSoak(harness("nat"), Opts);
  ASSERT_TRUE(R.Setup.ok()) << R.Setup.message();
  std::string J = soak::chipReportJson(R);
  for (const char *Key :
       {"\"recovery\":{", "\"lockups_injected\"", "\"lockups_detected\"",
        "\"ctx_resets\"", "\"packet_requeues\"", "\"packets_recovered\"",
        "\"lockup_drops\"", "\"backpressure_drops\"",
        "\"dma_fault_packets\"", "\"dma_recovered_packets\"",
        "\"sdram_bitflips_injected\"", "\"recovery_fold\"",
        "\"all_accounted\":true"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " in " << J;
}

TEST(SoakReport, JsonHasStableKeys) {
  soak::SoakOptions Opts;
  Opts.Packets = 100;
  Opts.Seed = 5;
  soak::SoakReport R = soak::runSoak(harness("kasumi"), Opts);
  std::string J = soak::reportJson(R);
  for (const char *Key :
       {"\"app\":\"kasumi\"", "\"packets\":100", "\"classes\"",
        "\"traps\"", "\"p50_cycles\"", "\"p99_cycles\"",
        "\"delivered_mbps\"", "\"exec_mode\":\"interp\"",
        "\"oracle_rate\":1", "\"translate_seconds\"",
        "\"divergences\":0", "\"first_divergence\":null"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " in " << J;
}
