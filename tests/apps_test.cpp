//===- apps_test.cpp - The paper's benchmark applications, end to end -----===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// AES, Kasumi, and NAT are compiled through the entire pipeline (front
// end -> CPS -> ILP allocation) and executed on the bank-level simulator;
// outputs are validated against the independent C++ reference
// implementations.
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"
#include "apps/AppSources.h"
#include "cps/Eval.h"
#include "driver/Compiler.h"
#include "ref/Aes.h"
#include "ref/Checksum.h"
#include "ref/Kasumi.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace nova;

namespace {

/// Compiles an app once and caches the result for all tests in the file.
driver::CompileResult &compiledApp(const std::string &Name,
                                   const std::string &Source) {
  static std::map<std::string, std::unique_ptr<driver::CompileResult>>
      Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    driver::CompileOptions Opts;
    Opts.Alloc.Mip.TimeLimitSeconds = 600.0;
    It = Cache.emplace(Name, driver::compileNova(Source, Name, Opts))
             .first;
  }
  return *It->second;
}

driver::CompileResult &aesApp() {
  return compiledApp("aes.nova", apps::aesNovaSource());
}
driver::CompileResult &kasumiApp() {
  return compiledApp("kasumi.nova", apps::kasumiNovaSource());
}
driver::CompileResult &natApp() {
  return compiledApp("nat.nova", apps::natNovaSource());
}

/// Runs an allocated program and returns (halt value, memory).
std::pair<uint32_t, sim::Memory>
runApp(driver::CompileResult &App, const std::vector<uint32_t> &Args,
       sim::Memory Mem) {
  sim::RunResult R = sim::runAllocated(App.Alloc.Prog, Args, Mem);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues.size(), 1u);
  return {R.HaltValues.empty() ? 0 : R.HaltValues[0], std::move(Mem)};
}

} // namespace

//===----------------------------------------------------------------------===//
// AES
//===----------------------------------------------------------------------===//

TEST(AppAes, CompilesWithZeroSpills) {
  driver::CompileResult &App = aesApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;
  EXPECT_EQ(App.Alloc.Stats.Spills, 0u); // paper Figure 7: 0 spills
  EXPECT_TRUE(verifyAllocated(App.Alloc.Prog).empty());
}

TEST(AppAes, EncryptsOneBlockCorrectly) {
  driver::CompileResult &App = aesApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;

  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  // Packet: IPv4-ish header (5 words) + 16-byte payload, base 0x100.
  std::vector<uint32_t> Pkt = {0x45000024, 0x12344000, 0x40110000,
                               0x0A000001, 0x0A000002,
                               // payload (one block, misaligned by the
                               // 5-word header):
                               0x00112233, 0x44556677, 0x8899AABB,
                               0xCCDDEEFF};
  apps::storePacket(Mem.Sdram, 0x100, Pkt);

  auto [Halt, Out] = runApp(App, {0x100, 0x400, 16}, Mem);

  ref::Aes128 Aes(apps::aesKey());
  auto Ct = Aes.encrypt({0x00112233, 0x44556677, 0x8899AABB, 0xCCDDEEFF});
  EXPECT_EQ(Out.Sdram[0x400], Ct[0]);
  EXPECT_EQ(Out.Sdram[0x401], Ct[1]);
  EXPECT_EQ(Out.Sdram[0x402], Ct[2]);
  EXPECT_EQ(Out.Sdram[0x403], Ct[3]);

  // Halt value = complemented folded checksum of the ciphertext.
  uint16_t Sum = ref::onesComplementSum({Ct[0], Ct[1], Ct[2], Ct[3]});
  EXPECT_EQ(Halt, static_cast<uint32_t>((~Sum) & 0xFFFF));
}

TEST(AppAes, EncryptsMultipleBlocks) {
  driver::CompileResult &App = aesApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;

  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  std::vector<uint32_t> Pkt = {0x45000044, 0, 0, 0, 0};
  std::vector<std::array<uint32_t, 4>> Blocks;
  for (uint32_t B = 0; B != 4; ++B) {
    std::array<uint32_t, 4> Blk;
    for (uint32_t I = 0; I != 4; ++I)
      Blk[I] = 0x01010101u * (B * 4 + I + 1);
    Blocks.push_back(Blk);
    for (uint32_t W : Blk)
      Pkt.push_back(W);
  }
  apps::storePacket(Mem.Sdram, 0x200, Pkt);

  auto [Halt, Out] = runApp(App, {0x200, 0x600, 64}, Mem);
  (void)Halt;

  ref::Aes128 Aes(apps::aesKey());
  for (unsigned B = 0; B != 4; ++B) {
    auto Ct = Aes.encrypt(Blocks[B]);
    for (unsigned I = 0; I != 4; ++I)
      EXPECT_EQ(Out.Sdram[0x600 + 4 * B + I], Ct[I])
          << "block " << B << " word " << I;
  }
}

TEST(AppAes, RejectsBadLengthViaHandler) {
  driver::CompileResult &App = aesApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;
  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  apps::storePacket(Mem.Sdram, 0x100,
                    {0x45000024, 0, 0, 0, 0, 1, 2, 3, 4});
  // Length not a multiple of 16 -> handler returns 0xFFFF0001.
  auto [Halt1, O1] = runApp(App, {0x100, 0x400, 15}, Mem);
  EXPECT_EQ(Halt1, 0xFFFF0001u);
  // Zero length -> code 2.
  auto [Halt2, O2] = runApp(App, {0x100, 0x400, 0}, Mem);
  EXPECT_EQ(Halt2, 0xFFFF0002u);
}

TEST(AppAes, RejectsNonIpv4ViaHandler) {
  driver::CompileResult &App = aesApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;
  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  apps::storePacket(Mem.Sdram, 0x100,
                    {0x65000024, 0, 0, 0, 0, 1, 2, 3, 4}); // version 6
  auto [Halt, Out] = runApp(App, {0x100, 0x400, 16}, Mem);
  EXPECT_EQ(Halt, 0xFFFF0003u);
}

TEST(AppAes, CpsOracleAgreesWithAllocatedRun) {
  driver::CompileResult &App = aesApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;

  cps::EvalMemory EMem;
  apps::loadAesEnvironment(EMem);
  std::vector<uint32_t> Pkt = {0x45000024, 0, 0, 0, 0,
                               0xCAFEBABE, 0x01234567, 0x89ABCDEF,
                               0x0F1E2D3C};
  for (unsigned I = 0; I != Pkt.size(); ++I)
    EMem.Sdram[0x100 + I] = Pkt[I];
  cps::EvalResult Oracle =
      cps::evaluate(App.Cps, {0x100, 0x400, 16}, EMem, 100'000'000);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;

  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  apps::storePacket(Mem.Sdram, 0x100, Pkt);
  auto [Halt, Out] = runApp(App, {0x100, 0x400, 16}, Mem);
  EXPECT_EQ(Halt, Oracle.HaltValues[0]);
  for (auto &[Addr, Val] : EMem.Sdram)
    EXPECT_EQ(Out.Sdram[Addr], Val) << "sdram[" << Addr << "]";
}

//===----------------------------------------------------------------------===//
// Kasumi
//===----------------------------------------------------------------------===//

TEST(AppKasumi, CompilesWithZeroSpills) {
  driver::CompileResult &App = kasumiApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;
  EXPECT_EQ(App.Alloc.Stats.Spills, 0u);
  EXPECT_TRUE(verifyAllocated(App.Alloc.Prog).empty());
}

TEST(AppKasumi, EncryptsBlockCorrectly) {
  driver::CompileResult &App = kasumiApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;

  ref::Kasumi K(apps::kasumiKey());
  for (auto [Hi, Lo] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0xFEDCBA09, 0x87654321},
           {0x00000001, 0x00000000},
           {0xDEADBEEF, 0xCAFEBABE}}) {
    sim::Memory Mem;
    apps::loadKasumiEnvironment(Mem);
    Mem.Sdram[0x300] = Hi;
    Mem.Sdram[0x301] = Lo;
    auto [Halt, Out] = runApp(App, {0x300, 0x500}, Mem);
    auto [CHi, CLo] = K.encrypt(Hi, Lo);
    EXPECT_EQ(Out.Sdram[0x500], CHi);
    EXPECT_EQ(Out.Sdram[0x501], CLo);
    EXPECT_EQ(Halt, CHi ^ CLo);
  }
}

TEST(AppKasumi, EmptyBlockRaises) {
  driver::CompileResult &App = kasumiApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;
  sim::Memory Mem;
  apps::loadKasumiEnvironment(Mem);
  Mem.Sdram[0x300] = 0;
  Mem.Sdram[0x301] = 0;
  auto [Halt, Out] = runApp(App, {0x300, 0x500}, Mem);
  EXPECT_EQ(Halt, 0xFFFFFFFFu);
}

//===----------------------------------------------------------------------===//
// NAT
//===----------------------------------------------------------------------===//

namespace {

/// Builds an IPv6 header (10 words) the way the Nova program expects.
std::vector<uint32_t> ipv6Header(unsigned PayloadLen, unsigned NextHeader,
                                 unsigned HopLimit, uint32_t SrcLow,
                                 uint32_t DstLow) {
  std::vector<uint32_t> H(10, 0);
  H[0] = (6u << 28) | (2u << 24) | 0x12345; // ver=6, priority=2, flow
  H[1] = (PayloadLen << 16) | (NextHeader << 8) | HopLimit;
  H[2] = 0x20010DB8; // src address words
  H[3] = 0;
  H[4] = 0;
  H[5] = SrcLow;
  H[6] = 0x20010DB8; // dst address words
  H[7] = 0;
  H[8] = 1;
  H[9] = DstLow;
  return H;
}

} // namespace

TEST(AppNat, CompilesWithZeroSpills) {
  driver::CompileResult &App = natApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;
  EXPECT_EQ(App.Alloc.Stats.Spills, 0u);
  EXPECT_TRUE(verifyAllocated(App.Alloc.Prog).empty());
}

TEST(AppNat, TranslatesHeaderAndShiftsPayload) {
  driver::CompileResult &App = natApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;

  unsigned PayloadLen = 40; // bytes -> 10 words
  std::vector<uint32_t> Pkt =
      ipv6Header(PayloadLen, /*NextHeader=*/17, /*HopLimit=*/64,
                 0x0A000001, 0x0A000002);
  for (uint32_t I = 0; I != 10; ++I)
    Pkt.push_back(0xD0000000 + I); // payload words

  sim::Memory Mem;
  apps::storePacket(Mem.Sdram, 0x100, Pkt);
  auto [Halt, Out] = runApp(App, {0x100, 0x800}, Mem);

  // Returned total length = payload + 20.
  EXPECT_EQ(Halt, PayloadLen + 20);

  // Rebuild the expected v4 header.
  uint32_t W0 = (4u << 28) | (5u << 24) | (2u << 16) | (PayloadLen + 20);
  uint32_t W1 = (0u << 16) | (2u << 13) | 0u; // ident=0, flags=2, frag=0
  uint32_t W2 = (63u << 24) | (17u << 16);    // ttl=63, proto=17, csum=0
  uint32_t W3 = 0x0A000001, W4 = 0x0A000002;
  uint16_t Csum = ref::ipChecksum({W0, W1, W2, W3, W4});
  EXPECT_EQ(Out.Sdram[0x800], W0);
  EXPECT_EQ(Out.Sdram[0x801], W1);
  EXPECT_EQ(Out.Sdram[0x802], W2 | Csum);
  EXPECT_EQ(Out.Sdram[0x803], W3);
  EXPECT_EQ(Out.Sdram[0x804], W4);
  // The full produced header checksums to 0xFFFF.
  EXPECT_EQ(ref::onesComplementSum({Out.Sdram[0x800], Out.Sdram[0x801],
                                    Out.Sdram[0x802], Out.Sdram[0x803],
                                    Out.Sdram[0x804]}),
            0xFFFFu);
  // Payload shifted to directly after the v4 header.
  for (uint32_t I = 0; I != 10; ++I)
    EXPECT_EQ(Out.Sdram[0x805 + I], 0xD0000000 + I) << "payload " << I;
}

TEST(AppNat, ErrorPathsRaise) {
  driver::CompileResult &App = natApp();
  ASSERT_TRUE(App.Ok) << App.ErrorText;

  // Wrong version.
  {
    std::vector<uint32_t> Pkt = ipv6Header(8, 6, 10, 1, 2);
    Pkt[0] = (4u << 28);
    Pkt.resize(14, 0);
    sim::Memory Mem;
    apps::storePacket(Mem.Sdram, 0x100, Pkt);
    auto [Halt, Out] = runApp(App, {0x100, 0x800}, Mem);
    EXPECT_EQ(Halt, 0xFFFF0004u);
  }
  // Expired hop limit.
  {
    std::vector<uint32_t> Pkt = ipv6Header(8, 6, 0, 1, 2);
    Pkt.resize(14, 0);
    sim::Memory Mem;
    apps::storePacket(Mem.Sdram, 0x100, Pkt);
    auto [Halt, Out] = runApp(App, {0x100, 0x800}, Mem);
    EXPECT_EQ(Halt, 0xFFFFFFFEu);
  }
}

//===----------------------------------------------------------------------===//
// Figure 5-style static statistics
//===----------------------------------------------------------------------===//

TEST(AppStats, ShapeMatchesPaper) {
  driver::CompileResult &Aes = aesApp();
  driver::CompileResult &Kasumi = kasumiApp();
  driver::CompileResult &Nat = natApp();
  ASSERT_TRUE(Aes.Ok && Kasumi.Ok && Nat.Ok);

  // Every app uses layouts/pack/unpack/exceptions somewhere.
  EXPECT_GE(Aes.novaStats().LayoutSpecs, 1u);
  EXPECT_GE(Aes.novaStats().RaiseCount, 3u);
  EXPECT_EQ(Aes.novaStats().HandleCount, 1u);
  EXPECT_GE(Kasumi.novaStats().RaiseCount, 2u);
  EXPECT_EQ(Kasumi.novaStats().HandleCount, 2u);
  EXPECT_EQ(Nat.novaStats().LayoutSpecs, 3u);
  EXPECT_GE(Nat.novaStats().PackCount, 1u);
  EXPECT_GE(Nat.novaStats().UnpackCount, 1u);

  // Aggregate participation (Figure 6 shape): every app reads and writes
  // through transfer banks.
  EXPECT_GT(Aes.Alloc.Stats.Build.Aggregates.DefL, 0u);
  EXPECT_GT(Aes.Alloc.Stats.Build.Aggregates.DefLD, 0u);
  EXPECT_GT(Aes.Alloc.Stats.Build.Aggregates.UseSD, 0u);
  EXPECT_GT(Kasumi.Alloc.Stats.Build.Aggregates.DefL, 0u);
  EXPECT_GT(Nat.Alloc.Stats.Build.Aggregates.DefLD, 0u);
  EXPECT_GT(Nat.Alloc.Stats.Build.Aggregates.UseSD, 0u);

  // Zero spills across the suite (paper Figure 7).
  EXPECT_EQ(Aes.Alloc.Stats.Spills, 0u);
  EXPECT_EQ(Kasumi.Alloc.Stats.Spills, 0u);
  EXPECT_EQ(Nat.Alloc.Stats.Spills, 0u);
}
