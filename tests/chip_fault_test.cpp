//===- chip_fault_test.cpp - Chip fault model + supervisor tests ------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Coverage for the chip-grade fault model and the self-healing
// supervisor:
//
//  1. Policy layer: FaultSchedule validation inside ChipParams, the
//     Supervisor's pure per-packet plans, and the bounded exponential
//     backoff curve.
//  2. Recovery mechanics: ctx-lockup wedges are detected by the
//     retire-progress watchdog and recovered (correct results, recorded
//     attempts) or typed-dropped when retries exhaust; dma-drop redoes
//     ingress DMA within its retry budget; ring-stall and chan-brownout
//     degrade timing without losing packets; RX backpressure converts
//     unbounded waits into typed in-order drops under a lockup storm.
//  3. Determinism: a (seed, schedule) pair replays bit-identically —
//     double runs agree on trace hash, recovery ledger, and final image,
//     and the interpreter and translated fast path agree under the same
//     schedule (the abort/restart path works in both exec modes).
//  4. sdram-bitflip stays supervisor-invisible: the ledger records the
//     injection but no detection, and the corrupted word is exactly the
//     deterministic (word, bit) target the retire-time oracle recomputes.
//
//===----------------------------------------------------------------------===//

#include "chip/Chip.h"

#include <gtest/gtest.h>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

AllocInstr haltOf(std::vector<AOperand> Srcs) {
  AllocInstr I;
  I.Op = MOp::Halt;
  I.Srcs = std::move(Srcs);
  return I;
}

AllocInstr sdramRead(AOperand Addr, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::MemRead;
  I.Space = MemSpace::Sdram;
  I.Srcs = {Addr};
  I.Dsts = {Dst};
  return I;
}

AllocInstr sdramWrite(AOperand Addr, AOperand Val) {
  AllocInstr I;
  I.Op = MOp::MemWrite;
  I.Space = MemSpace::Sdram;
  I.Srcs = {Addr, Val};
  return I;
}

/// copy(in, out): *out = *in; halt(*in) — the canonical two-pointer
/// packet shape.
AllocatedProgram copyProgram() {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  P.Blocks.push_back({{sdramRead(AOperand::reg({Bank::A, 0}), {Bank::S, 0}),
                       sdramWrite(AOperand::reg({Bank::A, 1}),
                                  AOperand::reg({Bank::S, 0})),
                       haltOf({AOperand::reg({Bank::S, 0})})}});
  return P;
}

/// heavy(in, out): N dependent SDRAM reads then *out = *in — many swap
/// points per packet, so lockups land mid-flight and brownouts bite.
AllocatedProgram heavyProgram(unsigned Reads) {
  AllocatedProgram P;
  P.Entry = 0;
  P.NumEntryArgs = 2;
  std::vector<AllocInstr> Is;
  for (unsigned I = 0; I != Reads; ++I)
    Is.push_back(sdramRead(AOperand::reg({Bank::A, 0}), {Bank::S, 0}));
  Is.push_back(sdramWrite(AOperand::reg({Bank::A, 1}),
                          AOperand::reg({Bank::S, 0})));
  Is.push_back(haltOf({AOperand::reg({Bank::S, 0})}));
  P.Blocks.push_back({std::move(Is)});
  return P;
}

FaultSchedule schedule(const std::string &Spec) {
  FaultSchedule S;
  std::string Error;
  EXPECT_TRUE(parseFaultSchedule(Spec, S, Error)) << Error;
  return S;
}

/// Tight thresholds so watchdog detection and backpressure fire within
/// small test streams instead of production-scale cycle counts.
chip::SupervisorConfig quickSup() {
  chip::SupervisorConfig C;
  C.WatchdogPeriod = 128;
  C.LockupThreshold = 256;
  C.BackoffBase = 32;
  C.BackpressureThreshold = 1024;
  C.BrownoutWindow = 512;
  return C;
}

struct DriveResult {
  chip::ChipRunStats Stats;
  std::vector<chip::RetiredPacket> Retired;
  uint64_t ImageHash = 0;
};

DriveResult drive(const AllocatedProgram &Prog, chip::ChipParams CP,
                  uint64_t N, uint64_t Budget = 50'000) {
  CP.Budget = Budget;
  std::vector<const AllocatedProgram *> Progs(CP.MP.MeCount, &Prog);
  chip::Chip C(CP, Progs, sim::Memory{});
  uint64_t Next = 0;
  DriveResult R;
  R.Stats = C.run(
      [&](chip::ChipPacket &Out) {
        if (Next == N)
          return false;
        Out = chip::ChipPacket();
        Out.Seq = Next;
        Out.Words = {static_cast<uint32_t>(0xC0DE0000u + Next)};
        Out.Args = {0, 1};
        Out.PtrArgMask = 0b11;
        Out.PayloadBytes = 4;
        ++Next;
        return true;
      },
      [&](chip::RetiredPacket &&RP) { R.Retired.push_back(std::move(RP)); });
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &[Addr, Val] : C.memory().Sdram) {
    H = chip::traceFold(H, Addr);
    H = chip::traceFold(H, Val);
  }
  R.ImageHash = H;
  return R;
}

/// Retirement must stay in arrival order no matter how packets died.
void expectInOrder(const std::vector<chip::RetiredPacket> &Retired) {
  for (uint64_t I = 0; I != Retired.size(); ++I)
    EXPECT_EQ(Retired[I].Pkt.Seq, I);
}

} // namespace

//===----------------------------------------------------------------------===//
// Policy layer
//===----------------------------------------------------------------------===//

TEST(ChipFaultParams, ValidateRejectsBadSchedules) {
  chip::ChipParams P;
  P.Faults = schedule("ctx-lockup@100,dma-drop@50~2");
  EXPECT_TRUE(P.validate().ok());

  chip::ChipParams Bad = P;
  Bad.Faults[0].Kind = FaultKind::MemJitter; // sim-domain, not chip
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.Faults[0].Rate = 0;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.Sup.WatchdogPeriod = 0;
  EXPECT_FALSE(Bad.validate().ok());
  Bad = P;
  Bad.Sup.LockupThreshold = 0;
  EXPECT_FALSE(Bad.validate().ok());
  // Zero thresholds are fine while no schedule is armed.
  Bad.Faults.clear();
  EXPECT_TRUE(Bad.validate().ok());
}

TEST(ChipFaultPolicy, PacketPlansArePureAndPeriodic) {
  chip::Supervisor S(schedule("ctx-lockup@4~2,sdram-bitflip@6,dma-drop@10~3"),
                     chip::SupervisorConfig{});
  ASSERT_TRUE(S.enabled());
  for (uint64_t Seq = 0; Seq != 120; ++Seq) {
    chip::Supervisor::PacketPlan P = S.planPacket(Seq);
    EXPECT_EQ(P.LockupAttempts, (Seq + 1) % 4 == 0 ? 2u : 0u) << Seq;
    EXPECT_EQ(P.SdramFlip, (Seq + 1) % 6 == 0) << Seq;
    EXPECT_EQ(P.DmaFailures, (Seq + 1) % 10 == 0 ? 3u : 0u) << Seq;
    // Pure: asking again gives the same answer.
    chip::Supervisor::PacketPlan Q = S.planPacket(Seq);
    EXPECT_EQ(P.LockupAttempts, Q.LockupAttempts);
  }
  // Omitted magnitude falls back to the kind default.
  chip::Supervisor D(schedule("ctx-lockup@1"), chip::SupervisorConfig{});
  EXPECT_EQ(D.planPacket(0).LockupAttempts,
            chip::SupervisorConfig{}.DefaultLockupAttempts);
}

TEST(ChipFaultPolicy, BackoffDoublesAndSaturates) {
  chip::SupervisorConfig C;
  C.BackoffBase = 100;
  chip::Supervisor S(schedule("ctx-lockup@1"), C);
  EXPECT_EQ(S.backoff(1), 100u);
  EXPECT_EQ(S.backoff(2), 200u);
  EXPECT_EQ(S.backoff(3), 400u);
  EXPECT_EQ(S.backoff(5), 1600u);
  // The shift saturates instead of overflowing into UB.
  EXPECT_EQ(S.backoff(200), 100ull << 32);
}

TEST(ChipFaultPolicy, EmptyScheduleDisablesSupervisor) {
  chip::Supervisor S;
  EXPECT_FALSE(S.enabled());
  EXPECT_EQ(S.planPacket(0).LockupAttempts, 0u);
  EXPECT_FALSE(S.stats().anyInjected());
  EXPECT_TRUE(S.stats().allAccounted());
}

//===----------------------------------------------------------------------===//
// Recovery mechanics
//===----------------------------------------------------------------------===//

TEST(ChipFaultRun, LockupRecoveredWithCorrectResults) {
  // Every 3rd packet wedges its first two attempts; MaxRetries=2 allows
  // a third attempt, which succeeds. All packets must complete with the
  // right halt value, and the faulted ones must record their attempts.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.Faults = schedule("ctx-lockup@3~2");
  CP.Sup = quickSup();
  DriveResult R = drive(copyProgram(), CP, 24);

  ASSERT_EQ(R.Retired.size(), 24u);
  expectInOrder(R.Retired);
  EXPECT_FALSE(R.Stats.Deadlock);
  for (const chip::RetiredPacket &RP : R.Retired) {
    ASSERT_TRUE(RP.Result.Ok) << "seq " << RP.Pkt.Seq;
    EXPECT_EQ(RP.Result.HaltValues[0], 0xC0DE0000u + RP.Pkt.Seq);
    EXPECT_EQ(RP.Drop, chip::DropReason::None);
    bool Faulted = (RP.Pkt.Seq + 1) % 3 == 0;
    EXPECT_EQ(RP.Attempts, Faulted ? 3u : 1u) << "seq " << RP.Pkt.Seq;
  }
  const chip::RecoveryStats &RS = R.Stats.Recovery;
  EXPECT_EQ(RS.PacketsWedged, 8u);
  EXPECT_EQ(RS.PacketsRecovered, 8u);
  EXPECT_EQ(RS.LockupDrops, 0u);
  EXPECT_EQ(RS.LockupsInjected, 16u); // two wedges per faulted packet
  EXPECT_EQ(RS.LockupsDetected, RS.CtxResets);
  EXPECT_EQ(RS.PacketRequeues, 16u);
  EXPECT_GE(RS.MaxBackoffCycles, 2 * CP.Sup.BackoffBase);
  EXPECT_TRUE(RS.allAccounted());
}

TEST(ChipFaultRun, RetryExhaustionBecomesTypedLockupDrop) {
  // Magnitude 9 wedges every attempt; after MaxRetries the supervisor
  // must retire the packet as a typed Lockup drop — in order, default
  // Result — instead of hanging the chip.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.Faults = schedule("ctx-lockup@4~9");
  CP.Sup = quickSup();
  DriveResult R = drive(copyProgram(), CP, 20);

  ASSERT_EQ(R.Retired.size(), 20u);
  expectInOrder(R.Retired);
  EXPECT_FALSE(R.Stats.Deadlock);
  unsigned Drops = 0;
  for (const chip::RetiredPacket &RP : R.Retired) {
    if ((RP.Pkt.Seq + 1) % 4 == 0) {
      EXPECT_EQ(RP.Drop, chip::DropReason::Lockup) << "seq " << RP.Pkt.Seq;
      EXPECT_FALSE(RP.Result.Ok);
      EXPECT_EQ(RP.Attempts, 1u + CP.Sup.MaxRetries);
      ++Drops;
    } else {
      EXPECT_EQ(RP.Drop, chip::DropReason::None);
      EXPECT_TRUE(RP.Result.Ok);
    }
  }
  const chip::RecoveryStats &RS = R.Stats.Recovery;
  EXPECT_EQ(Drops, 5u);
  EXPECT_EQ(RS.LockupDrops, 5u);
  EXPECT_EQ(RS.PacketsRecovered, 0u);
  EXPECT_EQ(RS.PacketsWedged, 5u);
  EXPECT_TRUE(RS.allAccounted());
}

TEST(ChipFaultRun, DmaDropRecoversWithinRetryBudget) {
  // One lost burst per 5th packet (default magnitude): the RX engine's
  // redo must recover every packet; the ledger shows the retries.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.Faults = schedule("dma-drop@5");
  CP.Sup = quickSup();
  DriveResult R = drive(copyProgram(), CP, 25);

  ASSERT_EQ(R.Retired.size(), 25u);
  expectInOrder(R.Retired);
  for (const chip::RetiredPacket &RP : R.Retired) {
    ASSERT_TRUE(RP.Result.Ok) << "seq " << RP.Pkt.Seq;
    EXPECT_EQ(RP.Result.HaltValues[0], 0xC0DE0000u + RP.Pkt.Seq);
  }
  const chip::RecoveryStats &RS = R.Stats.Recovery;
  EXPECT_EQ(RS.DmaFaultPackets, 5u);
  EXPECT_EQ(RS.DmaRecoveredPackets, 5u);
  EXPECT_EQ(RS.DmaDropPackets, 0u);
  EXPECT_EQ(RS.DmaRetries, 5u);
  EXPECT_TRUE(RS.allAccounted());
}

TEST(ChipFaultRun, DmaRetryExhaustionBecomesTypedIngressDrop) {
  // Magnitude 9 loses more bursts than DmaRetryLimit allows: the packet
  // never reaches a context and retires as a typed DmaDrop, still in
  // order among its neighbours.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.Faults = schedule("dma-drop@6~9");
  CP.Sup = quickSup();
  DriveResult R = drive(copyProgram(), CP, 24);

  ASSERT_EQ(R.Retired.size(), 24u);
  expectInOrder(R.Retired);
  for (const chip::RetiredPacket &RP : R.Retired) {
    bool Faulted = (RP.Pkt.Seq + 1) % 6 == 0;
    EXPECT_EQ(RP.Drop,
              Faulted ? chip::DropReason::DmaDrop : chip::DropReason::None);
    EXPECT_EQ(RP.Result.Ok, !Faulted);
  }
  const chip::RecoveryStats &RS = R.Stats.Recovery;
  EXPECT_EQ(RS.DmaFaultPackets, 4u);
  EXPECT_EQ(RS.DmaDropPackets, 4u);
  EXPECT_EQ(RS.DmaRecoveredPackets, 0u);
  EXPECT_TRUE(RS.allAccounted());
}

TEST(ChipFaultRun, RingStallsDelayButLoseNothing) {
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  DriveResult Clean = drive(heavyProgram(6), CP, 40);

  CP.Faults = schedule("ring-stall@5~400");
  CP.Sup = quickSup();
  DriveResult R = drive(heavyProgram(6), CP, 40);

  ASSERT_EQ(R.Retired.size(), 40u);
  expectInOrder(R.Retired);
  for (const chip::RetiredPacket &RP : R.Retired)
    EXPECT_TRUE(RP.Result.Ok);
  EXPECT_GT(R.Stats.Recovery.RingStallsInjected, 0u);
  EXPECT_GT(R.Stats.Recovery.RingStallCycles, 0u);
  // Stalled rings cost time but never packets.
  EXPECT_GT(R.Stats.FinalCycles, Clean.Stats.FinalCycles);
  EXPECT_EQ(R.Stats.PacketsRetired, Clean.Stats.PacketsRetired);
  EXPECT_TRUE(R.Stats.Recovery.allAccounted());
}

TEST(ChipFaultRun, BrownoutDegradesBandwidthTransiently) {
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 4;
  DriveResult Clean = drive(heavyProgram(8), CP, 48);

  CP.Faults = schedule("chan-brownout@64~8");
  CP.Sup = quickSup();
  DriveResult R = drive(heavyProgram(8), CP, 48);

  ASSERT_EQ(R.Retired.size(), 48u);
  for (const chip::RetiredPacket &RP : R.Retired)
    EXPECT_TRUE(RP.Result.Ok);
  EXPECT_GT(R.Stats.Recovery.BrownoutsInjected, 0u);
  EXPECT_GT(R.Stats.FinalCycles, Clean.Stats.FinalCycles);
  EXPECT_TRUE(R.Stats.Recovery.allAccounted());
}

TEST(ChipFaultRun, LockupStormBackpressureDropsAreTypedAndInOrder) {
  // Every packet wedges past its retry budget on a tiny topology: the
  // input rings jam, and RX must convert its unbounded wait into typed
  // Backpressure drops. The stream still drains, retirement order
  // holds, and every packet is accounted as some typed drop.
  chip::ChipParams CP;
  CP.MP.MeCount = 1;
  CP.MP.ContextsPerMe = 2;
  CP.RingDepth = 2;
  CP.Faults = schedule("ctx-lockup@1~9");
  CP.Sup = quickSup();
  CP.Sup.MaxRetries = 1;
  // Detection (512 cycles) far slower than the drop deadline (200): the
  // jammed rings starve RX long enough that backpressure must fire.
  CP.Sup.LockupThreshold = 512;
  CP.Sup.BackpressureThreshold = 200;
  DriveResult R = drive(copyProgram(), CP, 16);

  ASSERT_EQ(R.Retired.size(), 16u);
  expectInOrder(R.Retired);
  EXPECT_FALSE(R.Stats.Deadlock);
  uint64_t Lockups = 0, Bp = 0;
  for (const chip::RetiredPacket &RP : R.Retired) {
    EXPECT_FALSE(RP.Result.Ok);
    ASSERT_NE(RP.Drop, chip::DropReason::None) << "seq " << RP.Pkt.Seq;
    if (RP.Drop == chip::DropReason::Lockup)
      ++Lockups;
    else if (RP.Drop == chip::DropReason::Backpressure)
      ++Bp;
  }
  const chip::RecoveryStats &RS = R.Stats.Recovery;
  EXPECT_EQ(Lockups, RS.LockupDrops);
  EXPECT_EQ(Bp, RS.BackpressureDrops);
  EXPECT_EQ(Lockups + Bp, 16u);
  EXPECT_GT(Bp, 0u) << "storm never exercised RX backpressure";
  EXPECT_TRUE(RS.allAccounted());
}

TEST(ChipFaultRun, SdramBitFlipIsSupervisorInvisibleButDeterministic) {
  // The flip corrupts the DMA image after the RX engine's completion
  // check, so the supervisor must record the injection and nothing
  // else; the corrupted halt value is exactly the (word, bit) target
  // the retire-time oracle recomputes from Seq.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  CP.Faults = schedule("sdram-bitflip@4");
  CP.Sup = quickSup();
  DriveResult R = drive(copyProgram(), CP, 16);

  ASSERT_EQ(R.Retired.size(), 16u);
  for (const chip::RetiredPacket &RP : R.Retired) {
    ASSERT_TRUE(RP.Result.Ok);
    uint32_t Want = static_cast<uint32_t>(0xC0DE0000u + RP.Pkt.Seq);
    if ((RP.Pkt.Seq + 1) % 4 == 0)
      Want ^= 1u << chip::Supervisor::flipBit(RP.Pkt.Seq);
    EXPECT_EQ(RP.Result.HaltValues[0], Want) << "seq " << RP.Pkt.Seq;
  }
  const chip::RecoveryStats &RS = R.Stats.Recovery;
  EXPECT_EQ(RS.SdramBitFlipsInjected, 4u);
  EXPECT_EQ(RS.LockupsDetected, 0u);
  EXPECT_EQ(RS.CtxResets, 0u);
  EXPECT_EQ(RS.LockupDrops + RS.BackpressureDrops + RS.DmaDropPackets, 0u);
  EXPECT_TRUE(RS.allAccounted());
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

namespace {

void expectSameRun(const DriveResult &A, const DriveResult &B) {
  EXPECT_EQ(A.Stats.TraceHash, B.Stats.TraceHash);
  EXPECT_EQ(A.Stats.FinalCycles, B.Stats.FinalCycles);
  EXPECT_EQ(A.Stats.Recovery.fold(), B.Stats.Recovery.fold());
  EXPECT_EQ(A.Stats.Recovery.LockupsInjected,
            B.Stats.Recovery.LockupsInjected);
  EXPECT_EQ(A.Stats.Recovery.PacketsRecovered,
            B.Stats.Recovery.PacketsRecovered);
  EXPECT_EQ(A.Stats.Recovery.LockupDrops, B.Stats.Recovery.LockupDrops);
  EXPECT_EQ(A.Stats.Recovery.BackpressureDrops,
            B.Stats.Recovery.BackpressureDrops);
  EXPECT_EQ(A.Stats.CtxPackets, B.Stats.CtxPackets);
  EXPECT_EQ(A.ImageHash, B.ImageHash);
  ASSERT_EQ(A.Retired.size(), B.Retired.size());
  for (size_t I = 0; I != A.Retired.size(); ++I) {
    EXPECT_EQ(A.Retired[I].Me, B.Retired[I].Me);
    EXPECT_EQ(A.Retired[I].Ctx, B.Retired[I].Ctx);
    EXPECT_EQ(A.Retired[I].RetireTime, B.Retired[I].RetireTime);
    EXPECT_EQ(A.Retired[I].Attempts, B.Retired[I].Attempts);
    EXPECT_EQ(A.Retired[I].Drop, B.Retired[I].Drop);
    EXPECT_EQ(A.Retired[I].Result.Ok, B.Retired[I].Result.Ok);
    EXPECT_EQ(A.Retired[I].Result.HaltValues,
              B.Retired[I].Result.HaltValues);
  }
}

chip::ChipParams stormyParams() {
  chip::ChipParams CP;
  CP.MP.MeCount = 3;
  CP.MP.ContextsPerMe = 4;
  CP.Faults =
      schedule("ctx-lockup@6~2,ring-stall@9~300,chan-brownout@80~4,"
               "dma-drop@11,sdram-bitflip@17");
  CP.Sup = quickSup();
  return CP;
}

} // namespace

TEST(ChipFaultRun, DoubleRunUnderFaultsIsBitIdentical) {
  AllocatedProgram Prog = heavyProgram(8);
  chip::ChipParams CP = stormyParams();
  DriveResult A = drive(Prog, CP, 64);
  DriveResult B = drive(Prog, CP, 64);
  EXPECT_TRUE(A.Stats.Recovery.anyInjected());
  EXPECT_GT(A.Stats.Recovery.PacketsRecovered, 0u);
  EXPECT_TRUE(A.Stats.Recovery.allAccounted());
  expectSameRun(A, B);
}

TEST(ChipFaultRun, ThreadedMatchesInterpUnderFaults) {
  // The abort/restart path exists in both execution models; the same
  // schedule must produce the same event sequence, recovery ledger, and
  // per-packet outcomes whether contexts run interpreted or translated.
  AllocatedProgram Prog = heavyProgram(8);
  chip::ChipParams CP = stormyParams();
  CP.Exec = chip::ExecModel::Interp;
  DriveResult A = drive(Prog, CP, 64);
  CP.Exec = chip::ExecModel::Threaded;
  DriveResult B = drive(Prog, CP, 64);
  EXPECT_EQ(A.Stats.Exec, chip::ExecModel::Interp);
  EXPECT_EQ(B.Stats.Exec, chip::ExecModel::Threaded);
  EXPECT_TRUE(A.Stats.Recovery.anyInjected());
  expectSameRun(A, B);
}

TEST(ChipFaultRun, FaultFreeRunsCarryNoSupervisorArtifacts) {
  // An empty schedule must leave the run event-for-event identical to a
  // chip that never heard of the supervisor: zero ledger, no ticks.
  chip::ChipParams CP;
  CP.MP.MeCount = 2;
  CP.MP.ContextsPerMe = 2;
  DriveResult R = drive(copyProgram(), CP, 16);
  EXPECT_FALSE(R.Stats.Recovery.anyInjected());
  EXPECT_EQ(R.Stats.Recovery.fold(), chip::RecoveryStats{}.fold());
  EXPECT_TRUE(R.Stats.Recovery.allAccounted());
}
