//===- cps_test.cpp - CPS conversion, optimization, SSU tests -------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Strategy: compile Nova sources to CPS, then check that (a) evaluation
// gives the expected results, (b) the optimizer preserves them, and (c)
// the structural invariants (known callees, SSU) hold afterwards.
//
//===----------------------------------------------------------------------===//

#include "cps/Convert.h"
#include "cps/Eval.h"
#include "cps/Opt.h"
#include "nova/Parser.h"
#include "nova/Sema.h"

#include <gtest/gtest.h>

using namespace nova;
using namespace nova::cps;

namespace {

struct Pipeline {
  SourceManager SM;
  AstArena Arena;
  std::unique_ptr<DiagnosticEngine> Diags;
  Program Prog;
  std::unique_ptr<SemaResult> Sema;
  CpsProgram Cps;

  bool compile(const std::string &Source) {
    uint32_t Buf = SM.addBuffer("test.nova", Source);
    Diags = std::make_unique<DiagnosticEngine>(SM);
    Parser P(SM, Buf, Arena, *Diags);
    Prog = P.parseProgram();
    if (Diags->hasErrors())
      return false;
    Sema = std::make_unique<SemaResult>(*Diags);
    runSema(Prog, SM, *Diags, *Sema);
    if (!Sema->Success)
      return false;
    return convertToCps(Prog, *Sema, *Diags, Cps);
  }

  std::string errors() const { return Diags ? Diags->render() : ""; }
};

/// Compiles, runs the unoptimized CPS, optimizes + SSU, runs again, and
/// checks both runs agree (and match \p Expected when provided).
void checkProgram(const std::string &Source,
                  const std::vector<uint32_t> &Args,
                  std::optional<uint32_t> Expected,
                  EvalMemory InitMem = {}) {
  Pipeline P;
  ASSERT_TRUE(P.compile(Source)) << P.errors();

  EvalMemory MemBefore = InitMem;
  EvalResult Before = evaluate(P.Cps, Args, MemBefore);
  ASSERT_TRUE(Before.Ok) << Before.Error << "\n" << P.Cps.print();

  optimize(P.Cps);
  EXPECT_TRUE(allCalleesKnown(P.Cps)) << P.Cps.print();
  makeStaticSingleUse(P.Cps);

  EvalMemory MemAfter = InitMem;
  EvalResult After = evaluate(P.Cps, Args, MemAfter);
  ASSERT_TRUE(After.Ok) << After.Error << "\n" << P.Cps.print();

  EXPECT_EQ(Before.HaltValues, After.HaltValues) << P.Cps.print();
  EXPECT_EQ(MemBefore.Sram, MemAfter.Sram);
  EXPECT_EQ(MemBefore.Sdram, MemAfter.Sdram);
  EXPECT_EQ(MemBefore.Scratch, MemAfter.Scratch);
  if (Expected) {
    ASSERT_EQ(After.HaltValues.size(), 1u);
    EXPECT_EQ(After.HaltValues[0], *Expected);
  }
}

} // namespace

TEST(CpsEval, Arithmetic) {
  checkProgram("fun main(x : word) { (x + 3) << 2 }", {5}, (5 + 3) << 2);
  checkProgram("fun main(x : word) { ~x & 0xFF }", {0x12345678},
               (~0x12345678u) & 0xFF);
  checkProgram("fun main(x : word) { -x }", {7}, static_cast<uint32_t>(-7));
}

TEST(CpsEval, IfExpression) {
  const char *Src = "fun main(x : word) { if (x > 10) x - 10 else x }";
  checkProgram(Src, {25}, 15);
  checkProgram(Src, {5}, 5);
}

TEST(CpsEval, LogicalOperators) {
  const char *Src = "fun main(x : word, y : word) {"
                    "  if (x > 1 && y > 1 || x == 0) 1 else 0"
                    "}";
  checkProgram(Src, {2, 2}, 1);
  checkProgram(Src, {2, 1}, 0);
  checkProgram(Src, {0, 9}, 1);
}

TEST(CpsEval, BoolMaterialization) {
  checkProgram("fun main(x : word) { let b = x < 5; if (b) 1 else 2 }", {3},
               1);
  checkProgram("fun main(x : word) { let b = !(x < 5); if (b) 1 else 2 }",
               {3}, 2);
}

TEST(CpsEval, WhileLoopSum) {
  const char *Src = "fun main(n : word) {"
                    "  let i = 0;"
                    "  let sum = 0;"
                    "  while (i < n) {"
                    "    sum = sum + i;"
                    "    i = i + 1;"
                    "  }"
                    "  sum"
                    "}";
  checkProgram(Src, {10}, 45);
  checkProgram(Src, {0}, 0);
}

TEST(CpsEval, NestedLoops) {
  const char *Src = "fun main(n : word) {"
                    "  let total = 0;"
                    "  let i = 0;"
                    "  while (i < n) {"
                    "    let j = 0;"
                    "    while (j < n) {"
                    "      total = total + 1;"
                    "      j = j + 1;"
                    "    }"
                    "    i = i + 1;"
                    "  }"
                    "  total"
                    "}";
  checkProgram(Src, {5}, 25);
}

TEST(CpsEval, FunctionCallInlining) {
  const char *Src = "fun double(x : word) { x + x }"
                    "fun main(a : word) { double(a) + double(a + 1) }";
  checkProgram(Src, {10}, 20 + 22);
}

TEST(CpsEval, TailRecursionBecomesLoop) {
  const char *Src =
      "fun sum(n : word, acc : word) -> word {"
      "  if (n == 0) acc else sum(n - 1, acc + n)"
      "}"
      "fun main(n : word) { sum(n, 0) }";
  checkProgram(Src, {100}, 5050);
}

TEST(CpsEval, MemoryReadWrite) {
  EvalMemory Mem;
  Mem.Sram[100] = 11;
  Mem.Sram[101] = 22;
  Mem.Sram[102] = 33;
  Mem.Sram[103] = 44;
  const char *Src = "fun main(base : word) {"
                    "  let (a, b, c, d) = sram(base);"
                    "  sram(base + 10) <- (d, c, b, a);"
                    "  a + d"
                    "}";
  Pipeline P;
  ASSERT_TRUE(P.compile(Src)) << P.errors();
  optimize(P.Cps);
  makeStaticSingleUse(P.Cps);
  EvalResult R = evaluate(P.Cps, {100}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues, std::vector<uint32_t>{55});
  EXPECT_EQ(Mem.Sram[110], 44u);
  EXPECT_EQ(Mem.Sram[113], 11u);
}

TEST(CpsEval, TryHandleRaise) {
  const char *Src = "fun main(x : word) {"
                    "  try {"
                    "    if (x == 0) { raise Bad [why = 77] };"
                    "    x + 1"
                    "  } handle Bad [why : word] { why }"
                    "}";
  checkProgram(Src, {0}, 77);
  checkProgram(Src, {5}, 6);
}

TEST(CpsEval, ExceptionPassedToFunction) {
  const char *Src =
      "fun check(v : word, bad : exn [code : word]) {"
      "  if (v > 100) { raise bad [code = v] };"
      "  v"
      "}"
      "fun main(x : word) {"
      "  try { check(x, Overflow) + 1000 }"
      "  handle Overflow [code : word] { code - 100 }"
      "}";
  checkProgram(Src, {5}, 1005);
  checkProgram(Src, {150}, 50);
}

TEST(CpsEval, UnpackPaperExample) {
  // fun f from Section 4.4 of the paper.
  const char *Src =
      "layout p = { a : 16, b : 32, c : 16 };"
      "fun f(p1 : packed(p), p2 : packed(p)) {"
      "  let u1 = unpack[p](p1);"
      "  let u2 = unpack[p](p2);"
      "  (if (u1.c > 10) u1 else u2).b"
      "}"
      "fun main(w0 : word, w1 : word, x0 : word, x1 : word) {"
      "  f((w0, w1), (x0, x1))"
      "}";
  // Layout: a = bits[0..16), b = bits[16..48), c = bits[48..64).
  // p1: a=0x1111 b=0x22223333 c=0x0fff (> 10) -> picks u1.b.
  uint32_t W0 = 0x11112222, W1 = 0x33330fff;
  uint32_t X0 = 0xAAAABBBB, X1 = 0xCCCC0001;
  checkProgram(Src, {W0, W1, X0, X1}, 0x22223333);
  // p1.c = 1 (not > 10) -> picks u2.b = 0xBBBBCCCC.
  checkProgram(Src, {W0, 0x33330001u & 0xFFFF0001u, X0, X1}, 0xBBBBCCCC);
}

TEST(CpsEval, PackUnpackRoundTrip) {
  const char *Src =
      "layout h = { f1 : 4, f2 : 12, f3 : 16, f4 : 32 };"
      "fun main(a : word, b : word, c : word, d : word) {"
      "  let p = pack[h] [ f1 = a, f2 = b, f3 = c, f4 = d ];"
      "  let u = unpack[h](p);"
      "  ((u.f1 == a && u.f2 == b) && (u.f3 == c && u.f4 == d))"
      "    == true"
      "}";
  Pipeline P;
  ASSERT_TRUE(P.compile(Src)) << P.errors();
  optimize(P.Cps);
  EvalMemory Mem;
  EvalResult R = evaluate(P.Cps, {0xF, 0xABC, 0x1234, 0xDEADBEEF}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues, std::vector<uint32_t>{1});
}

TEST(CpsEval, PackWithOverlay) {
  const char *Src =
      "layout h = { verpri : overlay { whole : 8"
      "                              | parts : { ver : 4, pri : 4 } },"
      "             rest : 24 };"
      "fun main(x : word) {"
      "  let a = pack[h] [ verpri = [ whole = 0x65 ], rest = x ];"
      "  let b = pack[h] [ verpri = [ parts = [ver = 6, pri = 5] ],"
      "                    rest = x ];"
      "  if (a.0 == b.0) 1 else 0"
      "}";
  checkProgram(Src, {0x123456}, 1);
}

TEST(CpsEval, MisalignedLayoutVariants) {
  // The paper's alignment example: the same layout at offsets 0/16/24.
  const char *Src =
      "layout lyt = { x : 16, y : 32, z : 8 };"
      "fun main(sel : word, w0 : word, w1 : word, w2 : word) {"
      "  let u = if (sel == 0)      unpack[lyt ## {40}]((w0, w1, w2))"
      "          else if (sel == 1) unpack[{16} ## lyt ## {24}]((w0, w1, w2))"
      "          else               unpack[{24} ## lyt ## {16}]((w0, w1, w2));"
      "  u.y"
      "}";
  // Words: 0xAABBCCDD 0x11223344 0x55667788.
  // sel=0: y at bits [16,48) = 0xCCDD1122.
  // sel=1: y at bits [32,64) = 0x11223344.
  // sel=2: y at bits [40,72) = 0x22334455.
  checkProgram(Src, {0, 0xAABBCCDD, 0x11223344, 0x55667788}, 0xCCDD1122);
  checkProgram(Src, {1, 0xAABBCCDD, 0x11223344, 0x55667788}, 0x11223344);
  checkProgram(Src, {2, 0xAABBCCDD, 0x11223344, 0x55667788}, 0x22334455);
}

TEST(CpsEval, HashIsDeterministic) {
  const char *Src = "fun main(x : word) { hash(x) ^ hash(x) }";
  checkProgram(Src, {123}, 0);
}

TEST(CpsEval, BitTestSet) {
  EvalMemory Mem;
  Mem.Sram[50] = 0b1010;
  const char *Src = "fun main(a : word) {"
                    "  let old = sram_bit_test_set(a, 0b0110);"
                    "  old"
                    "}";
  Pipeline P;
  ASSERT_TRUE(P.compile(Src)) << P.errors();
  optimize(P.Cps);
  EvalResult R = evaluate(P.Cps, {50}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues, std::vector<uint32_t>{0b1010});
  EXPECT_EQ(Mem.Sram[50], 0b1110u);
}

//===----------------------------------------------------------------------===//
// Optimizer-specific structure checks
//===----------------------------------------------------------------------===//

namespace {

/// Counts live Exp nodes of a given kind.
unsigned countKind(CpsProgram &P, ExpKind Kind) {
  unsigned N = 0;
  // Reuse the printer to avoid exposing traversal; instead walk manually.
  std::function<void(const Exp *)> Walk = [&](const Exp *E) {
    for (; E;) {
      if (E->Kind == Kind)
        ++N;
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          Walk(P.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        Walk(E->Then);
        Walk(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  std::set<FuncId> FixDeclared;
  std::function<void(const Exp *)> Scan = [&](const Exp *E) {
    for (; E;) {
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs) {
          FixDeclared.insert(F);
          Scan(P.func(F).Body);
        }
      if (E->Kind == ExpKind::Branch) {
        Scan(E->Then);
        Scan(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  for (const Function &F : P.functions())
    if (F.Body)
      Scan(F.Body);
  for (const Function &F : P.functions())
    if (F.Body && !FixDeclared.count(F.Id))
      Walk(F.Body);
  return N;
}

} // namespace

TEST(CpsOpt, ConstantProgramFoldsCompletely) {
  Pipeline P;
  ASSERT_TRUE(P.compile("fun main(x : word) { (2 + 3) << 4 }"))
      << P.errors();
  optimize(P.Cps);
  EXPECT_EQ(countKind(P.Cps, ExpKind::Prim), 0u);
  EvalMemory Mem;
  EvalResult R = evaluate(P.Cps, {0}, Mem);
  EXPECT_EQ(R.HaltValues, std::vector<uint32_t>{80});
}

TEST(CpsOpt, UnusedUnpackFieldsAreNotExtracted) {
  // The paper's claim (Section 4.4): u1.a, u2.a, u2.c are never used, so
  // no instructions are generated for them. Field b of one struct needs 1
  // shift-ish op; c needs a shift. After DCE only a handful of prims stay.
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "layout p = { a : 16, b : 32, c : 16 };"
      "fun f(p1 : packed(p), p2 : packed(p)) {"
      "  let u1 = unpack[p](p1);"
      "  let u2 = unpack[p](p2);"
      "  (if (u1.c > 10) u1 else u2).b"
      "}"
      "fun main(w0 : word, w1 : word, x0 : word, x1 : word) {"
      "  f((w0, w1), (x0, x1))"
      "}"))
      << P.errors();
  unsigned Before = countKind(P.Cps, ExpKind::Prim);
  optimize(P.Cps);
  unsigned After = countKind(P.Cps, ExpKind::Prim);
  EXPECT_LT(After, Before);
  // Extracting b twice (2 ops each: shl+or pieces) and c once (~1-2 ops)
  // should stay well under 10 prims; the unused extractions are gone.
  EXPECT_LE(After, 10u);
}

TEST(CpsOpt, InliningResolvesAllCallees) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "fun helper(v : word, bad : exn (word)) {"
      "  if (v == 0) { raise bad (1) };"
      "  v + 2"
      "}"
      "fun main(x : word) {"
      "  try { helper(x, E) } handle E (c : word) { c }"
      "}"))
      << P.errors();
  optimize(P.Cps);
  EXPECT_TRUE(allCalleesKnown(P.Cps)) << P.Cps.print();
}

TEST(CpsOpt, DeadStoreValueStillStored) {
  // Stores are never dead-code eliminated.
  Pipeline P;
  ASSERT_TRUE(P.compile("fun main(a : word) {"
                        "  sram(a) <- (1, 2);"
                        "  0"
                        "}"))
      << P.errors();
  optimize(P.Cps);
  EXPECT_EQ(countKind(P.Cps, ExpKind::MemWrite), 1u);
}

TEST(CpsOpt, FullyUnusedReadRemoved) {
  Pipeline P;
  ASSERT_TRUE(P.compile("fun main(a : word) {"
                        "  let (x, y) = sram(a);"
                        "  7"
                        "}"))
      << P.errors();
  optimize(P.Cps);
  EXPECT_EQ(countKind(P.Cps, ExpKind::MemRead), 0u);
}

TEST(CpsOpt, TrailingReadResultsTrimmed) {
  Pipeline P;
  ASSERT_TRUE(P.compile("fun main(a : word) {"
                        "  let (x, y, z, w) = sram(a);"
                        "  x + y"
                        "}"))
      << P.errors();
  optimize(P.Cps);
  bool FoundRead = false;
  std::function<void(const Exp *)> Walk = [&](const Exp *E) {
    for (; E;) {
      if (E->Kind == ExpKind::MemRead) {
        FoundRead = true;
        EXPECT_EQ(E->Results.size(), 2u);
      }
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          Walk(P.Cps.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        Walk(E->Then);
        Walk(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  Walk(P.Cps.func(P.Cps.Entry).Body);
  EXPECT_TRUE(FoundRead);
}

//===----------------------------------------------------------------------===//
// Static single use
//===----------------------------------------------------------------------===//

TEST(CpsSsu, StoreOperandsBecomeSingleUse) {
  // x is stored twice at different positions (the paper's Section 2.1
  // example) and also used arithmetically.
  Pipeline P;
  ASSERT_TRUE(P.compile("fun main(a : word, x : word) {"
                        "  sram(a) <- (1, x, 3, 4);"
                        "  sram(a + 8) <- (x, 2, 3, 4);"
                        "  x + 1"
                        "}"))
      << P.errors();
  optimize(P.Cps);
  unsigned Cloned = makeStaticSingleUse(P.Cps);
  EXPECT_GE(Cloned, 1u);

  // Verify the SSU property: every store operand temp has exactly one use
  // in the whole program.
  std::map<ValueId, unsigned> Total;
  std::set<ValueId> StoreOperands;
  std::function<void(const Exp *)> Walk = [&](const Exp *E) {
    for (; E;) {
      for (unsigned I = 0; I != E->Args.size(); ++I)
        if (E->Args[I].isTemp()) {
          ++Total[E->Args[I].Id];
          if (E->Kind == ExpKind::MemWrite && I > 0)
            StoreOperands.insert(E->Args[I].Id);
        }
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          Walk(P.Cps.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        Walk(E->Then);
        Walk(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  for (const Function &F : P.Cps.functions())
    if (F.Body)
      Walk(F.Body);
  for (ValueId V : StoreOperands)
    EXPECT_EQ(Total[V], 1u) << "store operand v" << V << " used "
                            << Total[V] << " times";

  // Semantics preserved.
  EvalMemory Mem;
  EvalResult R = evaluate(P.Cps, {100, 42}, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HaltValues, std::vector<uint32_t>{43});
  EXPECT_EQ(Mem.Sram[101], 42u);
  EXPECT_EQ(Mem.Sram[108], 42u);
}

TEST(CpsSsu, CloneCountMatchesStoreUses) {
  Pipeline P;
  ASSERT_TRUE(P.compile("fun main(a : word, x : word) {"
                        "  sram(a) <- (x, x);"
                        "  0"
                        "}"))
      << P.errors();
  optimize(P.Cps);
  makeStaticSingleUse(P.Cps);
  unsigned CloneResults = 0;
  std::function<void(const Exp *)> Walk = [&](const Exp *E) {
    for (; E;) {
      if (E->Kind == ExpKind::Clone)
        CloneResults += E->Results.size();
      if (E->Kind == ExpKind::Branch) {
        Walk(E->Then);
        Walk(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  Walk(P.Cps.func(P.Cps.Entry).Body);
  EXPECT_EQ(CloneResults, 2u);

  EvalMemory Mem;
  EvalResult R = evaluate(P.Cps, {10, 9}, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(Mem.Sram[10], 9u);
  EXPECT_EQ(Mem.Sram[11], 9u);
}

//===----------------------------------------------------------------------===//
// Randomized optimizer equivalence
//===----------------------------------------------------------------------===//

class CpsRandomProgram : public ::testing::TestWithParam<int> {};

TEST_P(CpsRandomProgram, OptimizerPreservesSemantics) {
  // A crude random straight-line program generator over a small grammar.
  unsigned Seed = GetParam();
  std::string Src = "fun main(a : word, b : word) {\n";
  uint32_t S = Seed * 2654435761u + 1;
  auto Next = [&S]() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  };
  std::vector<std::string> Vars = {"a", "b"};
  for (int I = 0; I != 12; ++I) {
    std::string V = "t" + std::to_string(I);
    const char *Ops[] = {"+", "-", "&", "|", "^"};
    std::string X = Vars[Next() % Vars.size()];
    std::string Y = Next() % 3 == 0 ? std::to_string(Next() % 64)
                                    : Vars[Next() % Vars.size()];
    Src += "  let " + V + " = " + X + " " + Ops[Next() % 5] + " " + Y + ";\n";
    if (Next() % 4 == 0)
      Src += "  let u" + std::to_string(I) + " = if (" + V + " > " + X +
             ") " + V + " else " + X + ";\n",
          Vars.push_back("u" + std::to_string(I));
    Vars.push_back(V);
  }
  Src += "  " + Vars.back() + "\n}\n";

  Pipeline P;
  ASSERT_TRUE(P.compile(Src)) << Src << "\n" << P.errors();
  EvalMemory M1, M2;
  EvalResult Before = evaluate(P.Cps, {Seed * 3u, Seed * 7u + 1}, M1);
  ASSERT_TRUE(Before.Ok) << Before.Error;
  optimize(P.Cps);
  makeStaticSingleUse(P.Cps);
  EvalResult After = evaluate(P.Cps, {Seed * 3u, Seed * 7u + 1}, M2);
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(Before.HaltValues, After.HaltValues) << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpsRandomProgram, ::testing::Range(1, 30));
