//===- nova_layout_test.cpp - Layout resolution and bit plan tests -------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Layout.h"
#include "nova/Parser.h"

#include <gtest/gtest.h>

using namespace nova;

namespace {

/// Parses `layout t = <Source>;` and resolves it.
class LayoutFixture : public ::testing::Test {
protected:
  bool resolveLayout(const std::string &LayoutSrc, LayoutNode &Out,
                     const std::string &Prelude = "") {
    Source = Prelude + "layout t = " + LayoutSrc + ";";
    Buf = SM.addBuffer("test.nova", Source);
    Diags = std::make_unique<DiagnosticEngine>(SM);
    Parser P(SM, Buf, Arena, *Diags);
    Program Prog = P.parseProgram();
    EXPECT_FALSE(Diags->hasErrors()) << Diags->render();
    Table = std::make_unique<LayoutTable>(*Diags);
    for (const LayoutDecl &D : Prog.LayoutDecls)
      if (!Table->addDecl(D))
        return false;
    const LayoutNode *N = Table->find("t");
    if (!N)
      return false;
    Out = *N;
    return !Diags->hasErrors();
  }

  SourceManager SM;
  uint32_t Buf = 0;
  std::string Source;
  AstArena Arena;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<LayoutTable> Table;
};

const LayoutNode *childNamed(const LayoutNode &N, const std::string &Name) {
  for (const LayoutNode &C : N.Children)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

} // namespace

TEST_F(LayoutFixture, SimpleSequential) {
  LayoutNode N;
  ASSERT_TRUE(resolveLayout("{ x : 16, y : 32, z : 8 }", N));
  EXPECT_EQ(N.WidthBits, 56u);
  EXPECT_EQ(N.packedWords(), 2u);
  const LayoutNode *Y = childNamed(N, "y");
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(Y->OffsetBits, 16u);
  EXPECT_EQ(Y->WidthBits, 32u);
}

TEST_F(LayoutFixture, Ipv6HeaderFromPaper) {
  LayoutNode N;
  ASSERT_TRUE(resolveLayout(
      "{ version : 4, priority : 4, flow_label : 24,"
      "  payload_length : 16, next_header : 8, hop_limit : 8,"
      "  src_address : ipv6_address, dst_address : ipv6_address }",
      N,
      "layout ipv6_address = {a1 : 32, a2 : 32, a3 : 32, a4 : 32};\n"));
  // packed(ipv6_header) == word[10] per the paper.
  EXPECT_EQ(N.WidthBits, 320u);
  EXPECT_EQ(N.packedWords(), 10u);
  const LayoutNode *Dst = childNamed(N, "dst_address");
  ASSERT_NE(Dst, nullptr);
  EXPECT_EQ(Dst->OffsetBits, 64u + 128u);
  const LayoutNode *A4 = childNamed(*Dst, "a4");
  ASSERT_NE(A4, nullptr);
  EXPECT_EQ(A4->OffsetBits, 288u);
}

TEST_F(LayoutFixture, OverlayFromPaper) {
  LayoutNode N;
  ASSERT_TRUE(resolveLayout(
      "{ verpri : overlay { whole : 8"
      "                   | parts : { version : 4, priority : 4 } },"
      "  flow_label : 24 }",
      N));
  EXPECT_EQ(N.WidthBits, 32u);
  const LayoutNode *V = childNamed(N, "verpri");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->NodeKind, LayoutNode::Kind::Overlay);
  EXPECT_EQ(V->WidthBits, 8u);
  const LayoutNode *Parts = childNamed(*V, "parts");
  ASSERT_NE(Parts, nullptr);
  const LayoutNode *Priority = childNamed(*Parts, "priority");
  ASSERT_NE(Priority, nullptr);
  EXPECT_EQ(Priority->OffsetBits, 4u);
  EXPECT_EQ(Priority->WidthBits, 4u);
  // Both alternatives start at the same offset.
  const LayoutNode *Whole = childNamed(*V, "whole");
  ASSERT_NE(Whole, nullptr);
  EXPECT_EQ(Whole->OffsetBits, 0u);
}

TEST_F(LayoutFixture, OverlayWidthMismatchIsError) {
  LayoutNode N;
  EXPECT_FALSE(
      resolveLayout("{ v : overlay { a : 8 | b : { x : 4 } } }", N));
}

TEST_F(LayoutFixture, ConcatWithGapsFromPaper) {
  // `{16} ## lyt ## {24}` — the paper's misalignment example.
  LayoutNode N;
  ASSERT_TRUE(resolveLayout("{16} ## lyt ## {24}", N,
                            "layout lyt = { x : 16, y : 32, z : 8 };\n"));
  EXPECT_EQ(N.WidthBits, 96u);
  EXPECT_EQ(N.packedWords(), 3u);
  const LayoutNode *X = childNamed(N, "x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->OffsetBits, 16u);
  const LayoutNode *Y = childNamed(N, "y");
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(Y->OffsetBits, 32u); // straddles nothing at alignment 16
}

TEST_F(LayoutFixture, UnknownLayoutNameIsError) {
  LayoutNode N;
  EXPECT_FALSE(resolveLayout("{ a : missing }", N));
}

TEST_F(LayoutFixture, ZeroWidthFieldIsError) {
  LayoutNode N;
  EXPECT_FALSE(resolveLayout("{ a : 0 }", N));
}

TEST_F(LayoutFixture, OversizedFieldIsError) {
  LayoutNode N;
  EXPECT_FALSE(resolveLayout("{ a : 33 }", N));
}

TEST_F(LayoutFixture, CollectLeavesIncludesOverlayAlternatives) {
  LayoutNode N;
  ASSERT_TRUE(resolveLayout(
      "{ v : overlay { whole : 8 | parts : { hi : 4, lo : 4 } }, rest : 8 }",
      N));
  std::vector<std::pair<std::string, const LayoutNode *>> Leaves;
  LayoutTable::collectLeaves(N, Leaves);
  ASSERT_EQ(Leaves.size(), 4u);
  EXPECT_EQ(Leaves[0].first, "v.whole");
  EXPECT_EQ(Leaves[1].first, "v.parts.hi");
  EXPECT_EQ(Leaves[2].first, "v.parts.lo");
  EXPECT_EQ(Leaves[3].first, "rest");
}

//===----------------------------------------------------------------------===//
// Bitfield plans
//===----------------------------------------------------------------------===//

namespace {

/// Interprets a plan against packed words — the same semantics the CPS
/// converter compiles to shifts and masks.
uint32_t extract(const std::vector<BitPiece> &Plan,
                 const std::vector<uint32_t> &Words) {
  uint32_t V = 0;
  for (const BitPiece &P : Plan)
    V |= ((Words[P.WordIndex] >> P.WordShift) & P.Mask) << P.ValueShift;
  return V;
}

void deposit(const std::vector<BitPiece> &Plan, std::vector<uint32_t> &Words,
             uint32_t Value) {
  for (const BitPiece &P : Plan)
    Words[P.WordIndex] |= ((Value >> P.ValueShift) & P.Mask) << P.WordShift;
}

} // namespace

TEST(BitPlan, AlignedWholeWord) {
  auto Plan = planBitfield(32, 32);
  ASSERT_EQ(Plan.size(), 1u);
  EXPECT_EQ(Plan[0].WordIndex, 1u);
  EXPECT_EQ(Plan[0].WordShift, 0u);
  EXPECT_EQ(Plan[0].Mask, 0xFFFFFFFFu);
  EXPECT_EQ(extract(Plan, {0, 0xDEADBEEF}), 0xDEADBEEFu);
}

TEST(BitPlan, MsbField) {
  // First 4 bits of word 0 (e.g. IPv6 version).
  auto Plan = planBitfield(0, 4);
  ASSERT_EQ(Plan.size(), 1u);
  EXPECT_EQ(Plan[0].WordShift, 28u);
  EXPECT_EQ(extract(Plan, {0x60000000}), 0x6u);
}

TEST(BitPlan, InteriorField) {
  // Bits 4..8 of word 0 (IPv6 priority).
  auto Plan = planBitfield(4, 4);
  EXPECT_EQ(extract(Plan, {0x6A000000}), 0xAu);
}

TEST(BitPlan, StraddlingField) {
  // 16-bit field at offset 24: 8 bits in word 0, 8 bits in word 1.
  auto Plan = planBitfield(24, 16);
  ASSERT_EQ(Plan.size(), 2u);
  EXPECT_EQ(extract(Plan, {0x000000AB, 0xCD000000}), 0xABCDu);
}

TEST(BitPlan, Straddling32BitField) {
  // Full word at offset 16: classic misaligned header word.
  auto Plan = planBitfield(16, 32);
  ASSERT_EQ(Plan.size(), 2u);
  EXPECT_EQ(extract(Plan, {0x0000DEAD, 0xBEEF0000}), 0xDEADBEEFu);
}

TEST(BitPlan, DepositInvertsExtract) {
  for (unsigned Offset : {0u, 3u, 24u, 30u, 33u, 60u}) {
    for (unsigned Width : {1u, 4u, 8u, 16u, 32u}) {
      auto Plan = planBitfield(Offset, Width);
      uint32_t Value = 0xA5A5A5A5u & (Width >= 32 ? 0xFFFFFFFFu
                                                  : ((1u << Width) - 1));
      std::vector<uint32_t> Words(4, 0);
      deposit(Plan, Words, Value);
      EXPECT_EQ(extract(Plan, Words), Value)
          << "offset=" << Offset << " width=" << Width;
    }
  }
}

TEST(BitPlan, PiecesCoverDisjointValueBits) {
  auto Plan = planBitfield(24, 16);
  uint32_t Covered = 0;
  for (const BitPiece &P : Plan) {
    uint32_t Bits = P.Mask << P.ValueShift;
    EXPECT_EQ(Covered & Bits, 0u);
    Covered |= Bits;
  }
  EXPECT_EQ(Covered, 0xFFFFu);
}
