//===- fastpath_test.cpp - Translating fast path exactness tests ----------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The fast path's contract is bit-identical RunResults and memory
// effects vs the interpreter (sim::runAllocated). Three layers:
//
//  1. Hand-built hostile programs drive every trap path — illegal
//     registers, fell-off-the-end, bad branch/jump targets, clone
//     pseudos, invalid memory spaces, per-space range traps, watchdog
//     exhaustion, strict shift traps — and the fast path must produce
//     the same trap kind, message string, instruction count, and cycle
//     count as the interpreter.
//
//  2. Differential fuzz: the three benchmark apps (compiled once,
//     cached in-process like soak_test) under 200+ adversarial stream
//     seeds; every packet must match across halts, all three memory
//     images, trap kind + message, cycles and instructions.
//
//  3. The threaded soak driver: stats bit-identical to the interpreter
//     driver, and a negative control — an injected ALU bit flip must
//     still be caught and shrunk in threaded mode.
//
// Like soak_test, this compiles apps through the ILP allocator, so it
// runs as one ctest entry.
//
//===----------------------------------------------------------------------===//

#include "fastpath/FastPath.h"
#include "soak/Soak.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <map>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

//===----------------------------------------------------------------------===//
// Program-building helpers (same idiom as soak_test)
//===----------------------------------------------------------------------===//

PhysLoc loc(Bank B, unsigned Reg) {
  return {B, static_cast<uint16_t>(Reg)};
}

AllocInstr imm(uint32_t V, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::Imm;
  I.Imm = V;
  I.Dsts = {Dst};
  return I;
}

AllocInstr alu(cps::PrimOp Op, AOperand A, AOperand B, PhysLoc Dst) {
  AllocInstr I;
  I.Op = MOp::Alu;
  I.Alu = Op;
  I.Srcs = {A, B};
  I.Dsts = {Dst};
  return I;
}

AllocInstr haltOf(std::vector<AOperand> Srcs) {
  AllocInstr I;
  I.Op = MOp::Halt;
  I.Srcs = std::move(Srcs);
  return I;
}

AllocInstr jump(BlockId T) {
  AllocInstr I;
  I.Op = MOp::Jump;
  I.Target = T;
  return I;
}

AllocInstr branch(cps::CmpOp C, AOperand A, AOperand B, BlockId Then,
                  BlockId Else) {
  AllocInstr I;
  I.Op = MOp::Branch;
  I.Cmp = C;
  I.Srcs = {A, B};
  I.Target = Then;
  I.TargetElse = Else;
  return I;
}

AllocInstr memRead(MemSpace S, AOperand Addr, std::vector<PhysLoc> Dsts) {
  AllocInstr I;
  I.Op = MOp::MemRead;
  I.Space = S;
  I.Srcs = {Addr};
  I.Dsts = std::move(Dsts);
  return I;
}

AllocInstr memWrite(MemSpace S, AOperand Addr, std::vector<AOperand> Vals) {
  AllocInstr I;
  I.Op = MOp::MemWrite;
  I.Space = S;
  I.Srcs = {Addr};
  I.Srcs.insert(I.Srcs.end(), Vals.begin(), Vals.end());
  return I;
}

AllocatedProgram oneBlock(std::vector<AllocInstr> Instrs) {
  AllocatedProgram P;
  P.Entry = 0;
  P.Blocks.push_back({std::move(Instrs)});
  return P;
}

//===----------------------------------------------------------------------===//
// Bit-identical comparison: interpreter vs fast path
//===----------------------------------------------------------------------===//

/// Runs \p P both ways from \p Base and asserts full equality of the
/// results and all three memory images.
void expectSame(const AllocatedProgram &P,
                const std::vector<uint32_t> &Args, const sim::Memory &Base,
                const sim::RunOptions &RO, const char *Label) {
  SCOPED_TRACE(Label);
  sim::Memory MI = Base;
  sim::RunResult IR = sim::runAllocated(P, Args, MI, RO);

  fastpath::Translated T = fastpath::translate(P, RO.Lat);
  fastpath::Engine Eng(T);
  fastpath::BatchMemory BM(Base);
  sim::RunResult FR = Eng.run(Args, BM, RO);

  EXPECT_EQ(FR.Ok, IR.Ok);
  EXPECT_EQ(FR.Trap, IR.Trap);
  EXPECT_EQ(FR.Error.message(), IR.Error.message());
  EXPECT_EQ(FR.Instructions, IR.Instructions);
  EXPECT_EQ(FR.Cycles, IR.Cycles);
  EXPECT_EQ(FR.HaltValues, IR.HaltValues);
  EXPECT_EQ(BM.image(MemSpace::Sram), MI.Sram);
  EXPECT_EQ(BM.image(MemSpace::Sdram), MI.Sdram);
  EXPECT_EQ(BM.image(MemSpace::Scratch), MI.Scratch);
}

void expectSame(const AllocatedProgram &P,
                const std::vector<uint32_t> &Args, const char *Label) {
  expectSame(P, Args, sim::Memory(), sim::RunOptions(), Label);
}

/// Expects a specific trap from the fast path AND that the interpreter
/// agrees bit-for-bit.
void expectTrap(const AllocatedProgram &P,
                const std::vector<uint32_t> &Args, sim::TrapKind K,
                const char *MsgPart, const char *Label,
                const sim::RunOptions &RO = {}) {
  SCOPED_TRACE(Label);
  fastpath::Translated T = fastpath::translate(P, RO.Lat);
  fastpath::Engine Eng(T);
  sim::Memory Base;
  fastpath::BatchMemory BM(Base);
  sim::RunResult FR = Eng.run(Args, BM, RO);
  EXPECT_FALSE(FR.Ok);
  EXPECT_EQ(FR.Trap, K);
  EXPECT_NE(FR.Error.message().find(MsgPart), std::string::npos)
      << FR.Error.message();
  expectSame(P, Args, Base, RO, Label);
}

//===----------------------------------------------------------------------===//
// 1. Hand-built hostile programs
//===----------------------------------------------------------------------===//

TEST(FastPath, DeliversSimpleProgram) {
  AllocatedProgram P = oneBlock(
      {imm(7, loc(Bank::A, 1)),
       alu(cps::PrimOp::Add, AOperand::reg(loc(Bank::A, 0)),
           AOperand::reg(loc(Bank::A, 1)), loc(Bank::B, 0)),
       haltOf({AOperand::reg(loc(Bank::B, 0))})});
  expectSame(P, {35}, "add");

  fastpath::Translated T = fastpath::translate(P, sim::LatencyModel());
  fastpath::Engine Eng(T);
  sim::Memory Base;
  fastpath::BatchMemory BM(Base);
  sim::RunResult R = Eng.run({35}, BM, sim::RunOptions());
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.HaltValues.size(), 1u);
  EXPECT_EQ(R.HaltValues[0], 42u);
}

TEST(FastPath, NoEntryBlock) {
  AllocatedProgram P;
  expectTrap(P, {}, sim::TrapKind::MalformedProgram, "no entry block",
             "empty program");
  P.Blocks.push_back({{haltOf({})}});
  P.Entry = 7;
  expectTrap(P, {}, sim::TrapKind::MalformedProgram, "no entry block",
             "entry out of range");
}

TEST(FastPath, TooManyEntryArguments) {
  AllocatedProgram P = oneBlock({haltOf({})});
  std::vector<uint32_t> Args(16, 1);
  expectTrap(P, Args, sim::TrapKind::MalformedProgram,
             "too many entry arguments", "16 args");
}

TEST(FastPath, IllegalRegisterRead) {
  // A9..A15 exist, A-bank index 20 does not: the Err latch trips at the
  // bottom of the iteration, after the ALU cycle charge.
  AllocatedProgram P = oneBlock(
      {alu(cps::PrimOp::Add, AOperand::reg(loc(Bank::A, 20)),
           AOperand::constant(1), loc(Bank::B, 0)),
       haltOf({})});
  expectTrap(P, {}, sim::TrapKind::IllegalRegister,
             "illegal register access in block b0", "bad read");
}

TEST(FastPath, IllegalRegisterWrite) {
  AllocatedProgram P = oneBlock({imm(1, loc(Bank::L, 12)), haltOf({})});
  expectTrap(P, {}, sim::TrapKind::IllegalRegister,
             "illegal register access in block b0", "bad write");
}

TEST(FastPath, IllegalRegisterAtHalt) {
  AllocatedProgram P =
      oneBlock({haltOf({AOperand::reg(loc(Bank::SD, 9))})});
  expectTrap(P, {}, sim::TrapKind::IllegalRegister,
             "illegal register access at halt", "bad halt src");
}

TEST(FastPath, FellOffTheEnd) {
  AllocatedProgram P = oneBlock({imm(1, loc(Bank::A, 0))});
  expectTrap(P, {}, sim::TrapKind::MalformedProgram,
             "fell off the end of block b0", "no terminator");
  AllocatedProgram Empty = oneBlock({});
  expectTrap(Empty, {}, sim::TrapKind::MalformedProgram,
             "fell off the end of block b0", "empty block");
}

TEST(FastPath, BranchToInvalidTarget) {
  // Target validity is runtime-dependent: only the *chosen* edge traps.
  // Block 1 halts; block 9 does not exist.
  AllocatedProgram P;
  P.Entry = 0;
  P.Blocks.push_back(
      {{branch(cps::CmpOp::Eq, AOperand::reg(loc(Bank::A, 0)),
               AOperand::constant(1), /*Then=*/9, /*Else=*/1)}});
  P.Blocks.push_back({{haltOf({AOperand::constant(5)})}});
  expectSame(P, {0}, "valid edge chosen");
  expectTrap(P, {1}, sim::TrapKind::MalformedProgram,
             "branch in block b0 targets b9", "invalid edge chosen");
}

TEST(FastPath, JumpToInvalidTarget) {
  AllocatedProgram P = oneBlock({jump(3)});
  expectTrap(P, {}, sim::TrapKind::MalformedProgram,
             "jump in block b0 targets b3", "bad jump");
}

TEST(FastPath, ClonePseudo) {
  AllocInstr C;
  C.Op = MOp::Clone;
  C.Srcs = {AOperand::constant(1)};
  C.Dsts = {loc(Bank::A, 0)};
  AllocatedProgram P = oneBlock({C, haltOf({})});
  expectTrap(P, {}, sim::TrapKind::MalformedProgram,
             "clone pseudo in allocated code", "clone");
}

TEST(FastPath, InvalidMemSpace) {
  AllocInstr M = memRead(static_cast<MemSpace>(9), AOperand::constant(0),
                         {loc(Bank::A, 0)});
  AllocatedProgram P = oneBlock({M, haltOf({})});
  expectTrap(P, {}, sim::TrapKind::IllegalMemSpace,
             "memory space 9 in block b0", "space 9");
}

TEST(FastPath, RangeTrapsPerSpace) {
  sim::MemLimits Lim;
  {
    AllocatedProgram P = oneBlock(
        {memRead(MemSpace::Sram, AOperand::constant(Lim.SramWords),
                 {loc(Bank::A, 0)}),
         haltOf({})});
    expectTrap(P, {}, sim::TrapKind::SramOutOfRange, "sram read of 1",
               "sram read oob");
  }
  {
    AllocatedProgram P = oneBlock(
        {memWrite(MemSpace::Sdram,
                  AOperand::constant(Lim.SdramWords - 1),
                  {AOperand::constant(1), AOperand::constant(2)}),
         haltOf({})});
    expectTrap(P, {}, sim::TrapKind::SdramOutOfRange, "sdram write of 2",
               "sdram write oob");
  }
  {
    AllocInstr B;
    B.Op = MOp::BitTestSet;
    B.Space = MemSpace::Scratch;
    B.Srcs = {AOperand::constant(Lim.ScratchWords),
              AOperand::constant(4)};
    B.Dsts = {loc(Bank::A, 0)};
    AllocatedProgram P = oneBlock({B, haltOf({})});
    expectTrap(P, {}, sim::TrapKind::ScratchOutOfRange,
               "scratch bit-test-set", "scratch bts oob");
  }
}

TEST(FastPath, MemoryEffectsMatch) {
  // Write, bit-test-set, read back: images and halt values must match
  // the interpreter exactly (including the stored-zero entry).
  AllocInstr B;
  B.Op = MOp::BitTestSet;
  B.Space = MemSpace::Scratch;
  B.Srcs = {AOperand::constant(10), AOperand::constant(0xF0)};
  B.Dsts = {loc(Bank::A, 1)};
  AllocatedProgram P = oneBlock(
      {memWrite(MemSpace::Sdram, AOperand::constant(100),
                {AOperand::constant(0xdead), AOperand::constant(0),
                 AOperand::reg(loc(Bank::A, 0))}),
       memWrite(MemSpace::Sram, AOperand::constant(3),
                {AOperand::constant(7)}),
       B,
       memRead(MemSpace::Sdram, AOperand::constant(101),
               {loc(Bank::B, 0), loc(Bank::B, 1)}),
       haltOf({AOperand::reg(loc(Bank::B, 0)),
               AOperand::reg(loc(Bank::B, 1)),
               AOperand::reg(loc(Bank::A, 1))})});
  expectSame(P, {77}, "memory effects");
}

TEST(FastPath, WatchdogExhaustion) {
  // Infinite loop; the watchdog gate must route the final block to the
  // slow path so the trap fires at exactly the budgeted instruction.
  AllocatedProgram P;
  P.Entry = 0;
  P.Blocks.push_back({{alu(cps::PrimOp::Add,
                           AOperand::reg(loc(Bank::A, 0)),
                           AOperand::constant(1), loc(Bank::A, 0)),
                       jump(0)}});
  sim::RunOptions RO;
  RO.MaxInstructions = 1000;
  expectTrap(P, {0}, sim::TrapKind::Watchdog,
             "instruction budget of 1000 exhausted", "watchdog", RO);
  RO.MaxInstructions = 999; // odd budget: trap mid-block
  expectTrap(P, {0}, sim::TrapKind::Watchdog,
             "instruction budget of 999 exhausted", "watchdog odd", RO);
}

TEST(FastPath, StrictShiftTrap) {
  AllocatedProgram P = oneBlock(
      {imm(40, loc(Bank::A, 1)),
       alu(cps::PrimOp::Shl, AOperand::reg(loc(Bank::A, 0)),
           AOperand::reg(loc(Bank::A, 1)), loc(Bank::B, 0)),
       haltOf({AOperand::reg(loc(Bank::B, 0))})});
  // Architected clamp: count >= 32 yields 0, no trap.
  expectSame(P, {5}, "shift clamp");
  // Strict mode pins everything to the slow path and traps.
  sim::RunOptions RO;
  RO.TrapOnShiftRange = true;
  expectTrap(P, {5}, sim::TrapKind::ShiftRange,
             "shift count 40 in block b0", "strict shift", RO);
}

TEST(FastPath, LargeImmCostsTwoCycles) {
  // Imm <= 0xFFFF or low-half-zero: 1 cycle; otherwise 2. The fold
  // happens at translation time, so cycle counts expose any mismatch.
  for (uint32_t V : {0u, 0xFFFFu, 0x10000u, 0x12345678u, 0xFFFF0000u}) {
    AllocatedProgram P =
        oneBlock({imm(V, loc(Bank::A, 0)),
                  haltOf({AOperand::reg(loc(Bank::A, 0))})});
    expectSame(P, {}, "imm cost");
  }
}

TEST(FastPath, SingleSourceAlu) {
  AllocInstr N;
  N.Op = MOp::Alu;
  N.Alu = cps::PrimOp::Not;
  N.Srcs = {AOperand::reg(loc(Bank::A, 0))};
  N.Dsts = {loc(Bank::B, 0)};
  AllocatedProgram P =
      oneBlock({N, haltOf({AOperand::reg(loc(Bank::B, 0))})});
  expectSame(P, {0x0F0F0F0F}, "not");
}

TEST(FastPath, EngineIsReusableAndDeterministic) {
  AllocatedProgram P = oneBlock(
      {memRead(MemSpace::Sdram, AOperand::reg(loc(Bank::A, 0)),
               {loc(Bank::B, 0)}),
       alu(cps::PrimOp::Xor, AOperand::reg(loc(Bank::B, 0)),
           AOperand::constant(0x5a5a5a5a), loc(Bank::B, 1)),
       memWrite(MemSpace::Sdram, AOperand::reg(loc(Bank::A, 0)),
                {AOperand::reg(loc(Bank::B, 1))}),
       haltOf({AOperand::reg(loc(Bank::B, 1))})});
  fastpath::Translated T = fastpath::translate(P, sim::LatencyModel());
  fastpath::Engine Eng(T);
  sim::Memory Base;
  Base.Sdram[50] = 0x12345678;
  fastpath::BatchMemory BM(Base);
  sim::RunOptions RO;

  sim::RunResult R1 = Eng.run({50}, BM, RO);
  auto Img1 = BM.image(MemSpace::Sdram);
  BM.reset();
  // reset() must land back on the base image exactly.
  EXPECT_EQ(BM.image(MemSpace::Sdram), Base.Sdram);
  sim::RunResult R2 = Eng.run({50}, BM, RO);
  auto Img2 = BM.image(MemSpace::Sdram);
  EXPECT_EQ(R1.HaltValues, R2.HaltValues);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.Instructions, R2.Instructions);
  EXPECT_EQ(Img1, Img2);
}

//===----------------------------------------------------------------------===//
// 2. Differential fuzz over the benchmark apps
//===----------------------------------------------------------------------===//

/// Compiles a benchmark app once per process (ILP-bound; shared across
/// the fuzz tests below).
soak::AppHarness &harness(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<soak::AppHarness>> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    driver::CompileOptions Opts = soak::AppHarness::defaultCompileOptions();
    Opts.Alloc.Mip.TimeLimitSeconds = 30.0;
    std::string Error;
    auto H = soak::AppHarness::create(Name, Error, Opts);
    if (!H) {
      ADD_FAILURE() << "compiling " << Name << ": " << Error;
      std::abort();
    }
    It = Cache.emplace(Name, std::move(H)).first;
  }
  return *It->second;
}

/// Streams \p Seeds adversarial stream seeds (x \p PerSeed packets)
/// through three executions — superblock fast path, per-block-only fast
/// path, interpreter — and requires bit-identical results from all of
/// them. The per-block translation triangulates: a bug in superblock
/// formation diverges from it, a bug in the shared decoding diverges
/// from the interpreter.
void fuzzApp(const std::string &Name, uint64_t Seeds, uint64_t PerSeed) {
  soak::AppHarness &App = harness(Name);
  soak::SoakOptions SOpts;
  sim::RunOptions RO;
  RO.Lat = SOpts.Lat;
  RO.MaxInstructions = SOpts.Budget;

  fastpath::Translated T =
      fastpath::translate(App.compiled().Alloc.Prog, RO.Lat);
  EXPECT_GT(T.Superblocks, 0u) << Name;
  fastpath::Engine Eng(T);
  fastpath::BatchMemory BM(App.baseSim());

  fastpath::TranslateOptions NoSB;
  NoSB.Superblocks = false;
  fastpath::Translated TP =
      fastpath::translate(App.compiled().Alloc.Prog, RO.Lat, NoSB);
  EXPECT_EQ(TP.Superblocks, 0u) << Name;
  fastpath::Engine EngP(TP);
  fastpath::BatchMemory BMP(App.baseSim());

  unsigned Mismatches = 0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    for (uint64_t I = 0; I != PerSeed; ++I) {
      soak::SoakPacket P = App.generate(I, Seed, SOpts.Mix);
      BM.reset();
      BM.storePacket(P.Args.empty() ? 0 : P.Args[0], P.Words);
      sim::RunResult FR = Eng.run(P.Args, BM, RO);
      BMP.reset();
      BMP.storePacket(P.Args.empty() ? 0 : P.Args[0], P.Words);
      sim::RunResult PR = EngP.run(P.Args, BMP, RO);
      // Interpreter reference (no 3-way oracle needed here).
      soak::PacketOutcome O =
          soak::runPacket(App, P, SOpts, /*WithOracle=*/false);
      bool Same =
          FR.Ok == O.Alloc.Ok && FR.Trap == O.Alloc.Trap &&
          FR.Error.message() == O.Alloc.Error.message() &&
          FR.Instructions == O.Alloc.Instructions &&
          FR.Cycles == O.Alloc.Cycles &&
          FR.HaltValues == O.Alloc.HaltValues &&
          BM.image(MemSpace::Sram) == O.AllocMem.Sram &&
          BM.image(MemSpace::Sdram) == O.AllocMem.Sdram &&
          BM.image(MemSpace::Scratch) == O.AllocMem.Scratch;
      if (!Same && ++Mismatches <= 3)
        ADD_FAILURE() << Name << " seed " << Seed << " packet " << I
                      << ": fastpath diverges from interpreter ("
                      << FR.Error.message() << " vs "
                      << O.Alloc.Error.message() << ")";
      bool SameP =
          FR.Ok == PR.Ok && FR.Trap == PR.Trap &&
          FR.Error.message() == PR.Error.message() &&
          FR.Instructions == PR.Instructions && FR.Cycles == PR.Cycles &&
          FR.HaltValues == PR.HaltValues &&
          BM.image(MemSpace::Sram) == BMP.image(MemSpace::Sram) &&
          BM.image(MemSpace::Sdram) == BMP.image(MemSpace::Sdram) &&
          BM.image(MemSpace::Scratch) == BMP.image(MemSpace::Scratch);
      if (!SameP && ++Mismatches <= 3)
        ADD_FAILURE() << Name << " seed " << Seed << " packet " << I
                      << ": superblock translation diverges from "
                         "per-block translation ("
                      << FR.Error.message() << " vs "
                      << PR.Error.message() << ")";
    }
  }
  EXPECT_EQ(Mismatches, 0u) << Name;
}

// 210 seeds x 2 packets per app: every packet class, every trap path
// the generators can reach, across three different register-allocated
// programs.
TEST(FastPathFuzz, Aes) { fuzzApp("aes", 210, 2); }
TEST(FastPathFuzz, Kasumi) { fuzzApp("kasumi", 210, 2); }
TEST(FastPathFuzz, Nat) { fuzzApp("nat", 210, 2); }

//===----------------------------------------------------------------------===//
// 3. The threaded soak driver
//===----------------------------------------------------------------------===//

TEST(ThreadedSoak, StatsMatchInterpreter) {
  soak::SoakOptions Opts;
  Opts.Packets = 400;
  Opts.Seed = 11;
  Opts.OracleEvery = 1;
  soak::SoakReport RI = soak::runSoak(harness("nat"), Opts);
  Opts.Exec = soak::ExecMode::Threaded;
  soak::SoakReport RT = soak::runSoak(harness("nat"), Opts);

  EXPECT_EQ(RI.Exec, soak::ExecMode::Interp);
  EXPECT_EQ(RT.Exec, soak::ExecMode::Threaded);
  EXPECT_EQ(RT.Divergences, 0u);
  EXPECT_EQ(RI.Divergences, 0u);
  EXPECT_EQ(RT.Stats.Packets, RI.Stats.Packets);
  EXPECT_EQ(RT.Stats.Delivered, RI.Stats.Delivered);
  EXPECT_EQ(RT.Stats.Rejected, RI.Stats.Rejected);
  EXPECT_EQ(RT.Stats.Drops, RI.Stats.Drops);
  EXPECT_EQ(RT.Stats.TotalCycles, RI.Stats.TotalCycles);
  EXPECT_EQ(RT.Stats.TotalInstructions, RI.Stats.TotalInstructions);
  for (unsigned K = 0; K != sim::NumTrapKinds; ++K)
    EXPECT_EQ(RT.Stats.Traps[K], RI.Stats.Traps[K]) << "trap kind " << K;
  EXPECT_EQ(RT.Stats.p50Cycles(), RI.Stats.p50Cycles());
  EXPECT_EQ(RT.Stats.p99Cycles(), RI.Stats.p99Cycles());
  EXPECT_EQ(RT.OracleChecks, RI.OracleChecks);
}

TEST(ThreadedSoak, ReportJsonHasExecKeys) {
  soak::SoakOptions Opts;
  Opts.Packets = 50;
  Opts.Seed = 2;
  Opts.Exec = soak::ExecMode::Threaded;
  Opts.OracleEvery = 10;
  soak::SoakReport R = soak::runSoak(harness("nat"), Opts);
  std::string J = soak::reportJson(R);
  EXPECT_NE(J.find("\"exec_mode\":\"threaded\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"oracle_rate\":10"), std::string::npos) << J;
  EXPECT_NE(J.find("\"translate_seconds\":"), std::string::npos) << J;
}

TEST(ThreadedSoak, BitFlipNegativeControl) {
  // An injected ALU bit flip pins execution to the (injector-aware)
  // slow path; the 3-way oracle must still catch the corruption in
  // threaded mode and shrink a reproducer.
  FaultSpec Spec;
  Spec.Kind = FaultKind::SimBitFlip;
  Spec.After = 40;
  Spec.Times = 1;
  ScopedFaultInjection Armed({Spec});

  soak::SoakOptions Opts;
  Opts.Packets = 50;
  Opts.Seed = 3;
  Opts.Exec = soak::ExecMode::Threaded;
  Opts.OracleEvery = 1;
  soak::SoakReport R = soak::runSoak(harness("nat"), Opts);
  EXPECT_GT(R.Divergences, 0u);
  ASSERT_TRUE(R.First.Found);
  EXPECT_FALSE(R.First.What.empty());
  EXPECT_LE(R.First.ShrunkWords.size(), R.First.Words.size());
}

} // namespace
