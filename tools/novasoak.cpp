//===- novasoak.cpp - Adversarial packet soak driver ----------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Compiles the paper's benchmark applications once, then streams seeded
// adversarial traffic through the allocated code with the differential
// oracle on. Exit codes: 0 clean soak, 1 oracle divergence found,
// 2 usage error, 4 compile/allocation failure, 5 checkpoint/resume
// failure (no valid snapshot, or the newest snapshot belongs to a
// different run).
//
//===----------------------------------------------------------------------===//

#include "soak/ChipSoak.h"
#include "soak/Soak.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

using namespace nova;

static void usage() {
  std::fprintf(
      stderr,
      "usage: novasoak [options]\n"
      "  --app <name>        aes, kasumi, nat, or all (default all)\n"
      "  --packets <n>       packets per app (default 10000)\n"
      "  --seed <s>          stream seed (default 1)\n"
      "  --budget <n>        per-packet instruction watchdog (default "
      "50000)\n"
      "  --mix v,t,o,c,f     class weights: valid,truncated,oversized,\n"
      "                      corrupt,fuzz (default 55,15,10,10,10)\n"
      "  --exec <mode>       interp (reference, default) or threaded\n"
      "                      (translate once, computed-goto dispatch,\n"
      "                      sampled interpreter oracle); with --chip,\n"
      "                      threaded runs contexts on the segmented\n"
      "                      fast path, bit-identical to interp\n"
      "  --oracle-every <n>  differential-check every nth packet\n"
      "                      (default 1 = all; 0 disables the oracle;\n"
      "                      threaded mode defaults to 10)\n"
      "  --oracle-rate <n>   alias for --oracle-every\n"
      "  --no-shrink         keep the first diverging packet as-is\n"
      "  --fail-fast         stop a stream at its first divergence\n"
      "  --time-limit <s>    ILP budget per app compile (default 60)\n"
      "  --inject-fault <kind>[@<after>][x<times>][~<mag>]\n"
      "                      arm a sim-domain runtime fault: mem-jitter\n"
      "                      (latency noise) or sim-bitflip (ALU\n"
      "                      corruption the oracle must catch). Solver\n"
      "                      kinds belong to novac and chip kinds to\n"
      "                      --fault-schedule; both are usage errors "
      "here\n"
      "  --fault-schedule <kind>@<rate>[~<mag>][,...]\n"
      "                      chip-domain fault schedule (requires "
      "--chip):\n"
      "                      ctx-lockup, ring-stall, chan-brownout,\n"
      "                      sdram-bitflip, dma-drop; each kind fires\n"
      "                      every rate-th opportunity. The supervisor\n"
      "                      recovers (watchdog + bounded retries) and\n"
      "                      accounts every fault in the --json "
      "recovery\n"
      "                      object\n"
      "  --json <file>       write per-app reports as a JSON array\n"
      "  --quiet             suppress the per-app summary tables\n"
      "  --chip              run the whole-chip simulator: RX sharding\n"
      "                      across micro-engines, hardware contexts\n"
      "                      swapping on memory references, contended\n"
      "                      channels, in-order TX retirement\n"
      "  --me-count <n>      processing micro-engines, 1..8 (chip mode\n"
      "                      only; default 6)\n"
      "  --contexts <n>      hardware contexts per ME, 1..8 (chip mode\n"
      "                      only; default 4)\n"
      "  --ring-depth <n>    scratch ring capacity, 1..64 (chip mode\n"
      "                      only; default 4)\n"
      "  --checkpoint-every <n>\n"
      "                      snapshot resumable state every n retired\n"
      "                      packets (requires --checkpoint-dir and a\n"
      "                      single --app)\n"
      "  --checkpoint-dir <dir>\n"
      "                      directory for ckpt-<retired>.nova-ckpt\n"
      "                      snapshots (atomic write+rename)\n"
      "  --resume <dir>      resume from the newest valid snapshot in\n"
      "                      dir; the finished report is byte-identical\n"
      "                      to an uninterrupted run (exit 5 when no\n"
      "                      valid matching snapshot exists)\n"
      "  --progress <n>      stderr heartbeat every n retired packets:\n"
      "                      packets, pkt/s, last durable checkpoint\n"
      "  --kill-after <n>    crash harness: raise SIGKILL once n packets\n"
      "                      have retired (tests mid-run death)\n"
      "  --stable-json       zero wall-clock fields in --json output so\n"
      "                      resumed and uninterrupted runs compare\n"
      "                      byte-for-byte\n");
}

namespace {

/// Same strict flag cracker as novac: "--flag value" and "--flag=value",
/// malformed input is a usage error, never a silent zero.
struct ArgParser {
  int Argc;
  char **Argv;
  int I = 1;
  bool Failed = false;

  bool done() const { return I >= Argc || Failed; }
  const char *current() const { return Argv[I]; }

  bool valueFlag(const char *Name, std::string &Value) {
    const char *Arg = Argv[I];
    size_t Len = std::strlen(Name);
    if (std::strncmp(Arg, Name, Len) != 0)
      return false;
    if (Arg[Len] == '=') {
      Value = Arg + Len + 1;
      ++I;
      return true;
    }
    if (Arg[Len] != '\0')
      return false;
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "novasoak: %s requires a value\n", Name);
      Failed = true;
      return true;
    }
    Value = Argv[++I];
    ++I;
    return true;
  }

  bool boolFlag(const char *Name) {
    if (std::strcmp(Argv[I], Name) != 0)
      return false;
    ++I;
    return true;
  }

  void fail(const char *Fmt, const std::string &Value) {
    std::fprintf(stderr, Fmt, Value.c_str());
    Failed = true;
  }
};

bool parseU64(const std::string &Text, uint64_t &Out) {
  std::optional<uint64_t> V = parseInteger(Text);
  if (!V)
    return false;
  Out = *V;
  return true;
}

bool parseMix(const std::string &Text, soak::ClassMix &Mix) {
  uint64_t W[5];
  size_t Pos = 0;
  for (unsigned I = 0; I != 5; ++I) {
    size_t Comma = I == 4 ? Text.size() : Text.find(',', Pos);
    if (Comma == std::string::npos)
      return false;
    if (!parseU64(Text.substr(Pos, Comma - Pos), W[I]) || W[I] > 1000000)
      return false;
    Pos = Comma + 1;
  }
  Mix.Valid = static_cast<unsigned>(W[0]);
  Mix.Truncated = static_cast<unsigned>(W[1]);
  Mix.Oversized = static_cast<unsigned>(W[2]);
  Mix.Corrupt = static_cast<unsigned>(W[3]);
  Mix.Fuzz = static_cast<unsigned>(W[4]);
  return Mix.total() != 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string AppName = "all";
  std::string JsonPath;
  bool Quiet = false;
  bool StableJson = false;
  bool ChipMode = false;
  bool SawOracleEvery = false;
  bool SawMeCount = false, SawContexts = false, SawRingDepth = false;
  bool SawFaultSchedule = false;
  chip::ChipParams Chip;
  std::vector<FaultSpec> Faults;
  soak::SoakOptions Opts;
  driver::CompileOptions COpts = soak::AppHarness::defaultCompileOptions();

  ArgParser P{argc, argv};
  while (!P.done()) {
    std::string V;
    if (P.valueFlag("--app", V))
      AppName = V;
    else if (P.valueFlag("--packets", V)) {
      if (!P.Failed && (!parseU64(V, Opts.Packets) || Opts.Packets == 0))
        P.fail("novasoak: --packets expects a positive integer, got "
               "'%s'\n",
               V);
    } else if (P.valueFlag("--seed", V)) {
      if (!P.Failed && !parseU64(V, Opts.Seed))
        P.fail("novasoak: --seed expects an integer, got '%s'\n", V);
    } else if (P.valueFlag("--budget", V)) {
      if (!P.Failed && (!parseU64(V, Opts.Budget) || Opts.Budget == 0))
        P.fail("novasoak: --budget expects a positive integer, got "
               "'%s'\n",
               V);
    } else if (P.valueFlag("--mix", V)) {
      if (!P.Failed && !parseMix(V, Opts.Mix))
        P.fail("novasoak: --mix expects five comma-separated weights "
               "with a nonzero sum, got '%s'\n",
               V);
    } else if (P.valueFlag("--exec", V)) {
      if (!P.Failed) {
        if (V == "interp")
          Opts.Exec = soak::ExecMode::Interp;
        else if (V == "threaded")
          Opts.Exec = soak::ExecMode::Threaded;
        else
          P.fail("novasoak: --exec expects 'interp' or 'threaded', got "
                 "'%s'\n",
                 V);
      }
    } else if (P.valueFlag("--oracle-every", V) ||
               P.valueFlag("--oracle-rate", V)) {
      SawOracleEvery = true;
      if (!P.Failed && !parseU64(V, Opts.OracleEvery))
        P.fail("novasoak: --oracle-every expects an integer, got '%s'\n",
               V);
    } else if (P.boolFlag("--no-shrink"))
      Opts.Shrink = false;
    else if (P.boolFlag("--fail-fast"))
      Opts.FailFast = true;
    else if (P.boolFlag("--quiet"))
      Quiet = true;
    else if (P.valueFlag("--time-limit", V)) {
      char *End = nullptr;
      double S = std::strtod(V.c_str(), &End);
      if (End == V.c_str() || *End != '\0' || !(S > 0.0))
        P.fail("novasoak: --time-limit expects a positive number of "
               "seconds, got '%s'\n",
               V);
      else
        COpts.Alloc.Mip.TimeLimitSeconds = S;
    } else if (P.valueFlag("--inject-fault", V)) {
      if (!P.Failed) {
        FaultSpec Spec;
        std::string Error;
        if (!parseFaultSpec(V, Spec, Error))
          P.fail("novasoak: --inject-fault: %s\n", Error);
        else if (faultKindDomain(Spec.Kind) != FaultDomain::Sim)
          // Strict rejection instead of the old silent no-op: a
          // solver-domain kind never reaches a packet runtime hook.
          P.fail("novasoak: --inject-fault: fault kind '%s' is "
                 "solver-domain (use novac --inject-fault)\n",
                 faultKindName(Spec.Kind));
        else
          Faults.push_back(Spec);
      }
    } else if (P.valueFlag("--fault-schedule", V)) {
      SawFaultSchedule = true;
      if (!P.Failed) {
        std::string Error;
        if (!parseFaultSchedule(V, Chip.Faults, Error))
          P.fail("novasoak: --fault-schedule: %s\n", Error);
      }
    } else if (P.valueFlag("--json", V)) {
      if (!P.Failed)
        JsonPath = V;
    } else if (P.boolFlag("--chip"))
      ChipMode = true;
    else if (P.valueFlag("--me-count", V)) {
      SawMeCount = true;
      uint64_t N;
      if (!P.Failed && (!parseU64(V, N) || N < 1 || N > 8))
        P.fail("novasoak: --me-count expects an integer in 1..8, got "
               "'%s'\n",
               V);
      else if (!P.Failed)
        Chip.MP.MeCount = static_cast<unsigned>(N);
    } else if (P.valueFlag("--contexts", V)) {
      SawContexts = true;
      uint64_t N;
      if (!P.Failed && (!parseU64(V, N) || N < 1 || N > 8))
        P.fail("novasoak: --contexts expects an integer in 1..8, got "
               "'%s'\n",
               V);
      else if (!P.Failed)
        Chip.MP.ContextsPerMe = static_cast<unsigned>(N);
    } else if (P.valueFlag("--ring-depth", V)) {
      SawRingDepth = true;
      uint64_t N;
      if (!P.Failed && (!parseU64(V, N) || N < 1 || N > 64))
        P.fail("novasoak: --ring-depth expects an integer in 1..64, got "
               "'%s'\n",
               V);
      else if (!P.Failed)
        Chip.RingDepth = static_cast<unsigned>(N);
    } else if (P.valueFlag("--checkpoint-every", V)) {
      if (!P.Failed &&
          (!parseU64(V, Opts.Ckpt.Every) || Opts.Ckpt.Every == 0))
        P.fail("novasoak: --checkpoint-every expects a positive integer, "
               "got '%s'\n",
               V);
    } else if (P.valueFlag("--checkpoint-dir", V)) {
      if (!P.Failed)
        Opts.Ckpt.Dir = V;
    } else if (P.valueFlag("--resume", V)) {
      if (!P.Failed) {
        Opts.Ckpt.Dir = V;
        Opts.Ckpt.Resume = true;
      }
    } else if (P.valueFlag("--progress", V)) {
      if (!P.Failed && (!parseU64(V, Opts.Ckpt.ProgressEvery) ||
                        Opts.Ckpt.ProgressEvery == 0))
        P.fail("novasoak: --progress expects a positive integer, got "
               "'%s'\n",
               V);
    } else if (P.valueFlag("--kill-after", V)) {
      if (!P.Failed &&
          (!parseU64(V, Opts.Ckpt.KillAfter) || Opts.Ckpt.KillAfter == 0))
        P.fail("novasoak: --kill-after expects a positive integer, got "
               "'%s'\n",
               V);
    } else if (P.boolFlag("--stable-json"))
      StableJson = true;
    else {
      std::fprintf(stderr, "novasoak: unknown option '%s'\n", P.current());
      P.Failed = true;
    }
  }
  // Chip-mode combination rules, enforced before any compile work: the
  // topology flags only mean something with --chip, and a single-shot
  // chip run cannot stop mid-stream. --exec threaded composes with
  // --chip since segmented fast-path execution (fastpath::Segment) keeps
  // the discrete-event schedule bit-identical; --inject-fault composes
  // too — an armed injector pins execution to the interpreter-exact slow
  // tier in both modes, so the retire-time oracle still catches flips.
  if (!ChipMode && (SawMeCount || SawContexts || SawRingDepth)) {
    std::fprintf(stderr, "novasoak: --me-count/--contexts/--ring-depth "
                         "require --chip\n");
    P.Failed = true;
  }
  // Chip-domain faults only exist inside the whole-chip scheduler; a
  // schedule without --chip would be a silent no-op, so reject it.
  if (!ChipMode && SawFaultSchedule) {
    std::fprintf(stderr, "novasoak: --fault-schedule requires --chip\n");
    P.Failed = true;
  }
  if (ChipMode && Opts.FailFast) {
    std::fprintf(stderr,
                 "novasoak: --fail-fast is incompatible with --chip "
                 "(a chip run drains its whole stream)\n");
    P.Failed = true;
  }
  // Checkpoints are per-stream: one directory holds one (app, seed,
  // config) run's snapshots, so multi-app invocations would interleave
  // incompatible files. Require a single app.
  if ((Opts.Ckpt.active() || Opts.Ckpt.KillAfter != 0) &&
      AppName == "all") {
    std::fprintf(stderr, "novasoak: --checkpoint-every/--resume/"
                         "--kill-after require a single --app\n");
    P.Failed = true;
  }
  if (Opts.Ckpt.Every != 0 && Opts.Ckpt.Dir.empty()) {
    std::fprintf(stderr,
                 "novasoak: --checkpoint-every requires --checkpoint-dir "
                 "(or --resume)\n");
    P.Failed = true;
  }
  // The fast path exists to amortize the oracle: checking every packet
  // in threaded mode would be interpreter-bound, so default to 1-in-10
  // unless the user picked a rate.
  if (!SawOracleEvery && Opts.Exec == soak::ExecMode::Threaded)
    Opts.OracleEvery = 10;
  if (P.Failed) {
    usage();
    return 2;
  }

  std::vector<std::string> Apps;
  if (AppName == "all")
    Apps = {"aes", "kasumi", "nat"};
  else
    Apps = {AppName};

  // Compile everything before arming faults: injection targets the
  // packet runtime here, not the allocator.
  std::vector<std::unique_ptr<soak::AppHarness>> Harnesses;
  for (const std::string &Name : Apps) {
    std::string Error;
    auto H = soak::AppHarness::create(Name, Error, COpts);
    if (!H) {
      std::fprintf(stderr, "novasoak: %s: %s\n", Name.c_str(),
                   Error.c_str());
      return AppName == "all" || Name == "aes" || Name == "kasumi" ||
                     Name == "nat"
                 ? 4
                 : 2;
    }
    Harnesses.push_back(std::move(H));
  }

  ScopedFaultInjection Armed(std::move(Faults));

  bool AnyDivergence = false;
  bool SetupError = false;
  std::string Json = "[";
  for (size_t I = 0; I != Harnesses.size(); ++I) {
    if (ChipMode) {
      soak::ChipSoakOptions CO;
      CO.Base = Opts;
      CO.Chip = Chip;
      CO.Chip.Exec = Opts.Exec == soak::ExecMode::Threaded
                         ? chip::ExecModel::Threaded
                         : chip::ExecModel::Interp;
      soak::ChipSoakReport Rep = soak::runChipSoak(*Harnesses[I], CO);
      if (!Rep.Base.CkptError.ok()) {
        std::fprintf(stderr, "novasoak: %s\n",
                     Rep.Base.CkptError.message().c_str());
        for (const std::string &H : Rep.Base.CkptError.hints())
          std::fprintf(stderr, "novasoak: hint: %s\n", H.c_str());
        return 5;
      }
      if (!Rep.Setup.ok()) {
        std::fprintf(stderr, "novasoak: %s: %s\n",
                     Harnesses[I]->name().c_str(),
                     Rep.Setup.message().c_str());
        SetupError = true;
      }
      if (StableJson) {
        Rep.Base.WallSeconds = 0;
        Rep.Base.TranslateSeconds = 0;
      }
      if (!Quiet)
        soak::printChipReport(Rep, stdout);
      if (Rep.Base.Divergences)
        AnyDivergence = true;
      if (I)
        Json += ",";
      Json += soak::chipReportJson(Rep);
      continue;
    }
    soak::SoakReport Rep = soak::runSoak(*Harnesses[I], Opts);
    if (!Rep.CkptError.ok()) {
      std::fprintf(stderr, "novasoak: %s\n", Rep.CkptError.message().c_str());
      for (const std::string &H : Rep.CkptError.hints())
        std::fprintf(stderr, "novasoak: hint: %s\n", H.c_str());
      return 5;
    }
    if (StableJson) {
      Rep.WallSeconds = 0;
      Rep.TranslateSeconds = 0;
    }
    if (!Quiet)
      soak::printReport(Rep, stdout);
    if (Rep.Divergences)
      AnyDivergence = true;
    if (I)
      Json += ",";
    Json += soak::reportJson(Rep);
  }
  Json += "]";

  if (!JsonPath.empty()) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "novasoak: cannot write %s\n",
                   JsonPath.c_str());
      return 2;
    }
    std::fprintf(F, "%s\n", Json.c_str());
    std::fclose(F);
  }

  if (SetupError)
    return 2;
  return AnyDivergence ? 1 : 0;
}
