//===- baseline_vs_ilp.cpp - ILP allocation vs the no-allocator baseline --===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// The paper's introduction argues that on the IXP "spilling (not to
// mention the use of a stack) is nearly intolerable". This benchmark
// quantifies it: each program is allocated twice — by the ILP back end
// and by a correct-by-construction memory-home baseline (every temporary
// lives in scratch) — and both versions run on the cycle simulator.
//
//===----------------------------------------------------------------------===//

#include "alloc/Baseline.h"
#include "alloc/Verifier.h"
#include "bench_util.h"
#include "driver/Compiler.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace nova;

namespace {

struct BenchProgram {
  const char *Name;
  const char *Source;
  std::vector<uint32_t> Args;
};

} // namespace

int main(int argc, char **argv) {
  unsigned Threads = 1;
  const char *JsonPath = "BENCH_solver.json";
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--mip-threads") && I + 1 < argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: baseline_vs_ilp [--mip-threads <n>] "
                   "[--json <path>]\n");
      return 2;
    }
  }

  std::vector<BenchProgram> Programs = {
      {"checksum",
       "fun main(base : word, n : word) {"
       "  let sum = 0;"
       "  let i = 0;"
       "  while (i < n) {"
       "    let (w0, w1) = sram(base + (i << 1));"
       "    sum = sum + ((w0 >> 16) + (w0 & 0xFFFF));"
       "    sum = sum + ((w1 >> 16) + (w1 & 0xFFFF));"
       "    i = i + 1;"
       "  }"
       "  (sum & 0xFFFF) + (sum >> 16)"
       "}",
       {100, 8}},
      {"swap8",
       "fun main(z : word) {"
       "  let (a, b, c, d, e, f, g, h) = sram(0);"
       "  sram(16) <- (h, g, f, e);"
       "  sram(24) <- (d, c, b, a);"
       "  a ^ h"
       "}",
       {0}},
      {"headerrw",
       "layout hdr = { ver : 4, ihl : 4, tos : 8, len : 16 };"
       "fun main(p : word) {"
       "  let (w0, w1) = sram(p);"
       "  let h = unpack[hdr](w0);"
       "  let o = pack[hdr] [ ver = h.ver, ihl = h.ihl, tos = h.tos,"
       "                      len = h.len + 1 ];"
       "  sram(p + 8) <- (o.0, w1);"
       "  h.len"
       "}",
       {100}},
  };

  std::printf("ILP allocation vs memory-home baseline\n\n");
  std::printf("%-10s | %8s %8s %8s | %8s %8s | %7s\n", "program",
              "ilp-inst", "ilp-cyc", "moves", "base-in", "base-cyc",
              "speedup");

  std::vector<bench::SolverRun> Runs;
  for (const BenchProgram &P : Programs) {
    driver::CompileOptions Opts;
    Opts.Alloc.Mip.Threads = Threads;
    auto C = driver::compileNova(P.Source, P.Name, Opts);
    if (!C->Ok) {
      std::fprintf(stderr, "%s: %s\n", P.Name, C->ErrorText.c_str());
      return 1;
    }
    alloc::BaselineResult B = alloc::allocateBaseline(C->Machine);
    if (!B.Ok) {
      std::fprintf(stderr, "%s baseline: %s\n", P.Name, B.Error.render().c_str());
      return 1;
    }
    auto V1 = alloc::verifyAllocated(C->Alloc.Prog);
    auto V2 = alloc::verifyAllocated(B.Prog);
    if (!V1.empty() || !V2.empty()) {
      std::fprintf(stderr, "%s: verifier violation: %s\n", P.Name,
                   (!V1.empty() ? V1 : V2).front().c_str());
      return 1;
    }

    sim::Memory M1, M2;
    for (uint32_t I = 0; I != 64; ++I)
      M1.Sram[I] = M2.Sram[I] = 0x1010101u * (I + 1);
    M1.Sram[100] = M2.Sram[100] = 0x45001234;
    for (uint32_t I = 100; I != 120; ++I)
      M1.Sram[I] = M2.Sram[I] = 0x2020202u * (I - 99);
    sim::RunResult R1 = sim::runAllocated(C->Alloc.Prog, P.Args, M1);
    sim::RunResult R2 = sim::runAllocated(B.Prog, P.Args, M2);
    if (!R1.Ok || !R2.Ok) {
      std::fprintf(stderr, "%s: run failed (%s%s)\n", P.Name,
                   R1.Error.render().c_str(), R2.Error.render().c_str());
      return 1;
    }
    if (R1.HaltValues != R2.HaltValues) {
      std::fprintf(stderr, "%s: baseline and ILP disagree!\n", P.Name);
      return 1;
    }
    std::printf("%-10s | %8u %8llu %8u | %8u %8llu | %6.1fx\n", P.Name,
                C->Alloc.Prog.numInstructions(),
                static_cast<unsigned long long>(R1.Cycles),
                C->Alloc.Stats.Moves, B.Prog.numInstructions(),
                static_cast<unsigned long long>(R2.Cycles),
                double(R2.Cycles) / double(R1.Cycles));
    Runs.push_back(bench::solverRunFrom(P.Name, C->Alloc.Stats));
  }
  if (!bench::writeSolverJson(JsonPath, Runs))
    return 1;
  std::printf("\nShape check: the ILP-allocated code is several times "
              "faster — the paper's case for optimal allocation on the "
              "IXP.\n");
  return 0;
}
