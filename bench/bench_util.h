//===- bench_util.h - Shared helpers for the experiment harnesses ---------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCH_UTIL_H
#define BENCH_BENCH_UTIL_H

#include "apps/AppSources.h"
#include "driver/Compiler.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace bench {

inline std::string appSource(const std::string &Name) {
  if (Name == "AES")
    return nova::apps::aesNovaSource();
  if (Name == "Kasumi")
    return nova::apps::kasumiNovaSource();
  return nova::apps::natNovaSource();
}

/// Compiles one of the paper's applications with a solve-time budget and a
/// branch-and-bound thread count.
inline std::unique_ptr<nova::driver::CompileResult>
compileApp(const std::string &Name, bool Allocate = true,
           double TimeLimit = 600.0, unsigned MipThreads = 1,
           bool Deterministic = false) {
  nova::driver::CompileOptions Opts;
  Opts.Allocate = Allocate;
  Opts.Alloc.Mip.TimeLimitSeconds = TimeLimit;
  Opts.Alloc.Mip.Threads = MipThreads;
  Opts.Alloc.Mip.Deterministic = Deterministic;
  auto R = nova::driver::compileNova(appSource(Name), Name, Opts);
  if (!R->Ok)
    std::fprintf(stderr, "%s failed: %s\n", Name.c_str(),
                 R->ErrorText.c_str());
  return R;
}

/// One solver run for the machine-readable perf trajectory
/// (BENCH_solver.json): what the paper's Figure 7 tabulates plus the
/// parallel-search counters.
struct SolverRun {
  std::string Program;
  unsigned Threads = 1;
  bool Deterministic = false;
  unsigned Nodes = 0;
  unsigned LpIterations = 0;
  unsigned Steals = 0;
  double RootSeconds = 0.0;
  double TotalSeconds = 0.0;
  double CpuSeconds = 0.0;
  double Objective = 0.0;
  double RootObjective = 0.0;
  unsigned Moves = 0;
  unsigned Spills = 0;
  // LP-engine counters (sparse LU basis): how often the factors were
  // rebuilt, how many pivots the eta files absorbed, and how many full
  // reduced-cost recomputations ran.
  unsigned Factorizations = 0;
  unsigned EtaPivots = 0;
  unsigned PricingPasses = 0;
};

inline SolverRun solverRunFrom(const std::string &Program,
                               const nova::alloc::AllocStats &S,
                               bool Deterministic = false) {
  SolverRun R;
  R.Program = Program;
  R.Threads = S.Solve.Threads;
  R.Deterministic = Deterministic;
  R.Nodes = S.Solve.Nodes;
  R.LpIterations = S.Solve.LpIterations;
  R.Steals = S.Solve.Steals;
  R.RootSeconds = S.Solve.RootLpSeconds;
  R.TotalSeconds = S.Solve.TotalSeconds;
  R.CpuSeconds = S.Solve.CpuSeconds;
  R.Objective = S.Objective;
  R.RootObjective = S.Solve.RootObjective;
  R.Moves = S.Moves;
  R.Spills = S.Spills;
  R.Factorizations = S.Solve.Factorizations;
  R.EtaPivots = S.Solve.EtaPivots;
  R.PricingPasses = S.Solve.PricingPasses;
  return R;
}

/// Writes the accumulated runs as a JSON array, one object per solve.
/// Returns false (with a message on stderr) if the file cannot be written.
inline bool writeSolverJson(const std::string &Path,
                            const std::vector<SolverRun> &Runs) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  std::fprintf(F, "[\n");
  for (size_t I = 0; I != Runs.size(); ++I) {
    const SolverRun &R = Runs[I];
    std::fprintf(
        F,
        "  {\"program\": \"%s\", \"threads\": %u, \"deterministic\": %s, "
        "\"nodes\": %u, \"lp_iterations\": %u, \"steals\": %u, "
        "\"root_seconds\": %.6f, \"total_seconds\": %.6f, "
        "\"cpu_seconds\": %.6f, \"objective\": %.9g, "
        "\"root_objective\": %.9g, \"moves\": %u, \"spills\": %u, "
        "\"factorizations\": %u, \"eta_pivots\": %u, "
        "\"pricing_passes\": %u}%s\n",
        R.Program.c_str(), R.Threads, R.Deterministic ? "true" : "false",
        R.Nodes, R.LpIterations, R.Steals, R.RootSeconds, R.TotalSeconds,
        R.CpuSeconds, R.Objective, R.RootObjective, R.Moves, R.Spills,
        R.Factorizations, R.EtaPivots, R.PricingPasses,
        I + 1 == Runs.size() ? "" : ",");
  }
  std::fprintf(F, "]\n");
  std::fclose(F);
  std::printf("wrote %s (%zu runs)\n", Path.c_str(), Runs.size());
  return true;
}

} // namespace bench

#endif // BENCH_BENCH_UTIL_H
