//===- bench_util.h - Shared helpers for the experiment harnesses ---------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCH_UTIL_H
#define BENCH_BENCH_UTIL_H

#include "apps/AppSources.h"
#include "driver/Compiler.h"

#include <cstdio>
#include <memory>
#include <string>

namespace bench {

inline std::string appSource(const std::string &Name) {
  if (Name == "AES")
    return nova::apps::aesNovaSource();
  if (Name == "Kasumi")
    return nova::apps::kasumiNovaSource();
  return nova::apps::natNovaSource();
}

/// Compiles one of the paper's applications with a solve-time budget.
inline std::unique_ptr<nova::driver::CompileResult>
compileApp(const std::string &Name, bool Allocate = true,
           double TimeLimit = 600.0) {
  nova::driver::CompileOptions Opts;
  Opts.Allocate = Allocate;
  Opts.Alloc.Mip.TimeLimitSeconds = TimeLimit;
  auto R = nova::driver::compileNova(appSource(Name), Name, Opts);
  if (!R->Ok)
    std::fprintf(stderr, "%s failed: %s\n", Name.c_str(),
                 R->ErrorText.c_str());
  return R;
}

} // namespace bench

#endif // BENCH_BENCH_UTIL_H
