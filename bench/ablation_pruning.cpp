//===- ablation_pruning.cpp - Section 8's variable-reduction ablation -----===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Section 8 ("A million variables"): without static pruning the model
// "cannot be solved with reasonable resources". This ablation builds the
// NAT model with and without the move-opportunity restriction and
// reports the sizes and root-LP times — the quantitative version of the
// paper's argument that model engineering is what makes the approach
// feasible.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

using namespace nova;

int main() {
  std::printf("Ablation: move-opportunity restriction (Section 8 "
              "engineering)\n\n");
  std::printf("%-8s %-13s %9s %9s %8s %8s %6s\n", "program", "moves-at",
              "root(s)", "total(s)", "vars", "cons", "moves");

  for (const char *Name : {"NAT"}) {
    for (bool Restrict : {true, false}) {
      driver::CompileOptions Opts;
      Opts.Alloc.Model.RestrictMovePoints = Restrict;
      Opts.Alloc.Mip.TimeLimitSeconds = 240.0;
      auto C = driver::compileNova(bench::appSource(Name), Name, Opts);
      if (!C->Ok) {
        std::printf("%-8s %-13s  did not finish within the budget (%s)\n",
                    Name, Restrict ? "def/use/entry" : "every point",
                    C->ErrorText.substr(0, 50).c_str());
        continue;
      }
      const alloc::AllocStats &S = C->Alloc.Stats;
      std::printf("%-8s %-13s %9.2f %9.2f %8u %8u %6u\n", Name,
                  Restrict ? "def/use/entry" : "every point",
                  S.Solve.RootLpSeconds, S.Solve.TotalSeconds,
                  S.IlpSize.NumVariables, S.IlpSize.NumConstraints,
                  S.Moves);
    }
  }
  std::printf("\nShape check: the unrestricted model is several times "
              "larger for the same final move count.\n");
  return 0;
}
