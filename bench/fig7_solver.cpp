//===- fig7_solver.cpp - Figure 7: solver statistics ----------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Regenerates Figure 7: per application, the root-relaxation solve time,
// the integer solve time (within 0.01% of optimal), the model size, and
// the solution quality (inter-bank moves, spills). The paper solved with
// CPLEX on an 800 MHz PIII; we solve with the from-scratch branch & bound
// in src/ilp, so absolute times differ — what must reproduce is the
// *shape*: root faster than integer, model sizes ordered by program
// complexity, moves in the tens, and zero spills everywhere.
//
// Variables/constraints are reported for the generated (segment-reduced)
// model; the "raw" columns give the sizes a naive per-point formulation
// would have had, which is the regime the paper's counts live in.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

using namespace nova;

int main() {
  std::printf("Figure 7: solver statistics\n");
  std::printf("(paper: AES root 30.4s int 35.9s 108k vars 102k cons 37k "
              "obj, 25 moves 0 spills;\n");
  std::printf("         Kasumi 48.2/59.2 138k/131k/50k, 20 moves 0; "
              "NAT 69.2/155.6 208k/203k/72k, 60 moves 0)\n\n");
  std::printf("%-8s %9s %9s %8s %8s %8s %10s %10s %6s %6s\n", "program",
              "root(s)", "integer", "vars", "cons", "objterm", "raw-vars",
              "raw-cons", "moves", "spill");

  for (const char *Name : {"AES", "Kasumi", "NAT"}) {
    auto C = bench::compileApp(Name, /*Allocate=*/true, 600.0);
    if (!C->Ok)
      return 1;
    const alloc::AllocStats &S = C->Alloc.Stats;
    std::printf("%-8s %9.2f %9.2f %8u %8u %8u %10u %10u %6u %6u\n", Name,
                S.Solve.RootLpSeconds, S.Solve.TotalSeconds,
                S.IlpSize.NumVariables, S.IlpSize.NumConstraints,
                S.IlpSize.NumObjectiveTerms, S.Build.RawVariables,
                S.Build.RawConstraints, S.Moves, S.Spills);
  }
  std::printf("\nShape checks: integer >= root per program; zero spills; "
              "moves in the tens.\n");
  return 0;
}
