//===- fig7_solver.cpp - Figure 7: solver statistics ----------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Regenerates Figure 7: per application, the root-relaxation solve time,
// the integer solve time (within 0.01% of optimal), the model size, and
// the solution quality (inter-bank moves, spills). The paper solved with
// CPLEX on an 800 MHz PIII; we solve with the from-scratch branch & bound
// in src/ilp, so absolute times differ — what must reproduce is the
// *shape*: root faster than integer, model sizes ordered by program
// complexity, moves in the tens, and zero spills everywhere.
//
// The integer solve additionally runs at --mip-threads workers (default 4)
// next to the serial baseline, reporting the wall-clock speedup of the
// parallel branch & bound and emitting every run into a machine-readable
// BENCH_solver.json for the perf trajectory. Note the available
// parallelism: the tree search parallelizes, the root LP does not, so
// programs whose solve is root-dominated (AES, Kasumi solve in ~1 node)
// see speedup only on the tree share (NAT is the tree-heavy model).
//
// Variables/constraints are reported for the generated (segment-reduced)
// model; the "raw" columns give the sizes a naive per-point formulation
// would have had, which is the regime the paper's counts live in.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace nova;

int main(int argc, char **argv) {
  unsigned Threads = 4;
  bool Compare = true;
  const char *JsonPath = "BENCH_solver.json";
  const char *Only = nullptr;
  double ExpectRoot = 0.0;
  bool HaveExpectRoot = false;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--mip-threads") && I + 1 < argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--no-compare"))
      Compare = false;
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--only") && I + 1 < argc)
      Only = argv[++I];
    else if (!std::strcmp(argv[I], "--expect-root") && I + 1 < argc) {
      ExpectRoot = std::atof(argv[++I]);
      HaveExpectRoot = true;
    } else {
      std::fprintf(stderr,
                   "usage: fig7_solver [--mip-threads <n>] [--no-compare] "
                   "[--json <path>] [--only <AES|Kasumi|NAT>] "
                   "[--expect-root <objective>]\n");
      return 2;
    }
  }

  std::printf("Figure 7: solver statistics\n");
  std::printf("(paper: AES root 30.4s int 35.9s 108k vars 102k cons 37k "
              "obj, 25 moves 0 spills;\n");
  std::printf("         Kasumi 48.2/59.2 138k/131k/50k, 20 moves 0; "
              "NAT 69.2/155.6 208k/203k/72k, 60 moves 0)\n\n");
  std::printf("%-8s %4s %9s %9s %8s %8s %8s %10s %10s %6s %6s %8s\n",
              "program", "thr", "root(s)", "integer", "vars", "cons",
              "objterm", "raw-vars", "raw-cons", "moves", "spill",
              "speedup");

  std::vector<bench::SolverRun> Runs;
  for (const char *Name : {"AES", "Kasumi", "NAT"}) {
    if (Only && std::strcmp(Name, Only))
      continue;
    double SerialSeconds = 0.0;
    double SerialObjective = 0.0;
    std::vector<unsigned> Plan;
    if (Compare)
      Plan.push_back(1);
    if (!Compare || Threads != 1)
      Plan.push_back(Threads);
    for (unsigned T : Plan) {
      auto C = bench::compileApp(Name, /*Allocate=*/true, 600.0, T);
      if (!C->Ok)
        return 1;
      const alloc::AllocStats &S = C->Alloc.Stats;
      // CI smoke: the root relaxation objective is a deterministic model
      // property; any drift means the LP engine or the model changed.
      if (HaveExpectRoot &&
          std::abs(S.Solve.RootObjective - ExpectRoot) > 1e-6) {
        std::fprintf(stderr, "%s: root objective %.9g != expected %.9g\n",
                     Name, S.Solve.RootObjective, ExpectRoot);
        return 1;
      }
      if (T == 1) {
        SerialSeconds = S.Solve.TotalSeconds;
        SerialObjective = S.Objective;
      } else if (Compare &&
                 std::abs(S.Objective - SerialObjective) > 1e-6) {
        std::fprintf(stderr,
                     "%s: %u-thread objective %.9g != serial %.9g\n", Name,
                     T, S.Objective, SerialObjective);
        return 1;
      }
      double Speedup = (T != 1 && Compare && S.Solve.TotalSeconds > 0.0)
                           ? SerialSeconds / S.Solve.TotalSeconds
                           : 0.0;
      std::printf("%-8s %4u %9.2f %9.2f %8u %8u %8u %10u %10u %6u %6u ",
                  Name, S.Solve.Threads, S.Solve.RootLpSeconds,
                  S.Solve.TotalSeconds, S.IlpSize.NumVariables,
                  S.IlpSize.NumConstraints, S.IlpSize.NumObjectiveTerms,
                  S.Build.RawVariables, S.Build.RawConstraints, S.Moves,
                  S.Spills);
      if (Speedup > 0.0)
        std::printf("%7.2fx\n", Speedup);
      else
        std::printf("%8s\n", "-");
      Runs.push_back(bench::solverRunFrom(Name, S));
    }
  }
  if (!bench::writeSolverJson(JsonPath, Runs))
    return 1;
  std::printf("\nShape checks: integer >= root per program; zero spills; "
              "moves in the tens;\nidentical optimal objectives across "
              "thread counts.\n");
  return 0;
}
