//===- micro_bench.cpp - google-benchmark micro benchmarks ----------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Micro benchmarks of the substrates: LP solves, presolve, compilation
// front end, bitfield planning, and the simulator's execution rate.
//
//===----------------------------------------------------------------------===//

#include "cps/Convert.h"
#include "cps/Opt.h"
#include "driver/Compiler.h"
#include "ilp/MipSolver.h"
#include "nova/Layout.h"
#include "sim/Simulator.h"

#include <benchmark/benchmark.h>

using namespace nova;

namespace {

/// Random-ish assignment LP of the given size.
ilp::Model assignmentModel(unsigned N) {
  ilp::Model M;
  std::vector<std::vector<ilp::VarId>> X(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = 0; J != N; ++J)
      X[I].push_back(M.addBinary("x", double((I * 7 + J * 13) % 17)));
  for (unsigned I = 0; I != N; ++I) {
    ilp::LinExpr Row, Col;
    for (unsigned J = 0; J != N; ++J) {
      Row += ilp::LinExpr(X[I][J]);
      Col += ilp::LinExpr(X[J][I]);
    }
    M.addConstraint(std::move(Row), ilp::Rel::EQ, 1.0);
    M.addConstraint(std::move(Col), ilp::Rel::EQ, 1.0);
  }
  return M;
}

void BM_MipAssignment(benchmark::State &State) {
  ilp::Model M = assignmentModel(State.range(0));
  for (auto _ : State) {
    ilp::MipSolver Solver(M);
    benchmark::DoNotOptimize(Solver.solve().Objective);
  }
}
BENCHMARK(BM_MipAssignment)->Arg(6)->Arg(10)->Arg(14);

void BM_Presolve(benchmark::State &State) {
  ilp::Model M = assignmentModel(12);
  for (auto _ : State)
    benchmark::DoNotOptimize(ilp::presolve(M).Reduced.numVars());
}
BENCHMARK(BM_Presolve);

void BM_BitfieldPlan(benchmark::State &State) {
  for (auto _ : State)
    for (unsigned Off = 0; Off != 64; ++Off)
      benchmark::DoNotOptimize(planBitfield(Off, 1 + Off % 32));
}
BENCHMARK(BM_BitfieldPlan);

const char *LoopProgram = "fun main(n : word) {"
                          "  let i = 0;"
                          "  let s = 0;"
                          "  while (i < n) { s = s + i; i = i + 1; }"
                          "  s"
                          "}";

void BM_FrontEndAndCps(benchmark::State &State) {
  driver::CompileOptions Opts;
  Opts.Allocate = false;
  for (auto _ : State) {
    auto R = driver::compileNova(LoopProgram, "bench", Opts);
    benchmark::DoNotOptimize(R->Machine.numInstructions());
  }
}
BENCHMARK(BM_FrontEndAndCps);

void BM_SimulatorLoop(benchmark::State &State) {
  driver::CompileOptions Opts;
  Opts.Allocate = false;
  auto R = driver::compileNova(LoopProgram, "bench", Opts);
  for (auto _ : State) {
    sim::Memory Mem;
    benchmark::DoNotOptimize(
        sim::runFunctional(R->Machine, {1000}, Mem).Instructions);
  }
}
BENCHMARK(BM_SimulatorLoop);

void BM_IlpAllocationSmall(benchmark::State &State) {
  const char *Src = "fun main(z : word) {"
                    "  let (a, b, c, d) = sram(0);"
                    "  sram(8) <- (d, c, b, a);"
                    "  a + d"
                    "}";
  for (auto _ : State) {
    auto R = driver::compileNova(Src, "bench");
    benchmark::DoNotOptimize(R->Alloc.Stats.Moves);
  }
}
BENCHMARK(BM_IlpAllocationSmall)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
