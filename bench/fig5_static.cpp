//===- fig5_static.cpp - Figure 5: static benchmark program statistics ----===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Regenerates the paper's Figure 5: per application, the Nova line count,
// generated instruction count, number of layout specifications, and
// pack/unpack/raise/handle counts. The paper's values are printed
// alongside for comparison (our Nova programs are leaner than the
// authors' full applications, so absolute numbers are smaller; the
// qualitative shape — every app exercising layouts and exceptions — is
// what carries).
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

using namespace nova;

int main() {
  std::printf("Figure 5: static benchmark program statistics\n");
  std::printf("(paper values in parentheses: AES 541/588/7/8/5/3/1, "
              "Kasumi 587/538/7/7/4/2/2, NAT 839/740/-)\n\n");
  std::printf("%-8s %8s %8s %8s %6s %8s %6s %8s\n", "program", "lines",
              "instrs", "layouts", "pack", "unpack", "raise", "handle");

  struct Row {
    const char *Name;
    const char *PaperRow;
  };
  for (const Row &R : {Row{"AES", "541 588 7 8 5 3 1"},
                       Row{"Kasumi", "587 538 7 7 4 2 2"},
                       Row{"NAT", "839 740 - - - - -"}}) {
    auto C = bench::compileApp(R.Name, /*Allocate=*/false);
    if (!C->Ok)
      return 1;
    ProgramStats S = C->novaStats();
    std::printf("%-8s %8u %8u %8u %6u %8u %6u %8u   (paper: %s)\n",
                R.Name, S.NovaLines, C->Machine.numInstructions(),
                S.LayoutSpecs, S.PackCount, S.UnpackCount, S.RaiseCount,
                S.HandleCount, R.PaperRow);
  }
  return 0;
}
