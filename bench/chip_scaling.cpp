//===- chip_scaling.cpp - Whole-chip multi-engine scaling ------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Sweeps the processing micro-engine count (1, 2, 4, 6) over the same
// seeded packet stream and reports aggregate goodput, channel contention
// stalls, and ring occupancy per configuration, writing BENCH_chip.json.
// This is the whole-chip counterpart of bench/throughput.cpp: instead of
// approximating thread overlap with discounted latencies, the chip model
// measures it — four hardware contexts per engine hide memory latency
// until the shared SDRAM/scratch channels saturate, which is exactly the
// contention effect the paper's falling Kasumi series shows.
//
//   bench/chip_scaling [--app nat] [--packets N] [--seed S] [--json F]
//                      [--fault-schedule kind@rate[~mag],...]
//
// With --fault-schedule the sweep measures goodput *under* faults (the
// degradation curve in EXPERIMENTS.md); the interp/threaded trace-hash
// cross-check still holds because fault firing is a pure function of
// deterministic opportunity ordinals.
//
//===----------------------------------------------------------------------===//

#include "soak/ChipSoak.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cstring>
#include <map>
#include <string>

using namespace nova;

int main(int argc, char **argv) {
  std::string App = "nat";
  uint64_t Packets = 20'000;
  uint64_t Seed = 42;
  std::string JsonPath = "BENCH_chip.json";
  FaultSchedule Faults;
  for (int I = 1; I < argc; ++I) {
    auto want = [&](const char *Flag) {
      return std::strcmp(argv[I], Flag) == 0 && I + 1 < argc;
    };
    if (want("--app"))
      App = argv[++I];
    else if (want("--packets"))
      Packets = std::strtoull(argv[++I], nullptr, 10);
    else if (want("--seed"))
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (want("--json"))
      JsonPath = argv[++I];
    else if (want("--fault-schedule")) {
      std::string Error;
      if (!parseFaultSchedule(argv[++I], Faults, Error)) {
        std::fprintf(stderr, "chip_scaling: --fault-schedule: %s\n",
                     Error.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: chip_scaling [--app name] [--packets n] "
                   "[--seed s] [--json file] "
                   "[--fault-schedule kind@rate[~mag],...]\n");
      return 2;
    }
  }

  std::string Error;
  auto H = soak::AppHarness::create(App, Error);
  if (!H) {
    std::fprintf(stderr, "chip_scaling: %s: %s\n", App.c_str(),
                 Error.c_str());
    return 1;
  }

  std::printf("Whole-chip scaling: %s, %llu packets, seed %llu\n",
              App.c_str(), (unsigned long long)Packets,
              (unsigned long long)Seed);
  std::printf("%8s | %4s | %10s %8s %8s | %10s %10s | %8s %8s | %6s\n",
              "exec", "MEs", "cycles", "Mbps", "wall-s", "sdram-st",
              "scr-st", "in-hw", "reord", "util0");

  // Both execution models sweep the same ME counts. The simulated
  // schedule is identical by construction (chip_test locks whole-report
  // equality); the trace hashes are cross-checked here too, so the
  // wall-clock ratio is measured on verified-identical simulations.
  std::string Json = "[";
  bool First = true;
  std::map<unsigned, uint64_t> InterpHash;
  std::map<unsigned, double> InterpWall;
  double OneMe = 0, SixMeRatio = 0;
  for (chip::ExecModel Exec :
       {chip::ExecModel::Interp, chip::ExecModel::Threaded}) {
    bool Threaded = Exec == chip::ExecModel::Threaded;
    for (unsigned Mes : {1u, 2u, 4u, 6u}) {
      soak::ChipSoakOptions Opts;
      Opts.Base.Packets = Packets;
      Opts.Base.Seed = Seed;
      Opts.Base.OracleEvery = 0; // measured run; correctness lives in tests
      Opts.Chip.MP.MeCount = Mes;
      Opts.Chip.Exec = Exec;
      Opts.Chip.Faults = Faults;
      soak::ChipSoakReport R = soak::runChipSoak(*H, Opts);
      if (!R.Setup.ok()) {
        std::fprintf(stderr, "chip_scaling: %s\n", R.Setup.message().c_str());
        return 1;
      }
      if (R.Chip.Deadlock || R.Base.Divergences) {
        std::fprintf(stderr, "chip_scaling: me=%u run not clean\n", Mes);
        return 1;
      }
      if (!Threaded) {
        InterpHash[Mes] = R.Chip.TraceHash;
        InterpWall[Mes] = R.Base.WallSeconds;
      } else if (R.Chip.TraceHash != InterpHash[Mes]) {
        std::fprintf(stderr,
                     "chip_scaling: me=%u trace hash diverges between exec "
                     "models (%016llx vs %016llx)\n",
                     Mes, (unsigned long long)InterpHash[Mes],
                     (unsigned long long)R.Chip.TraceHash);
        return 1;
      }
      if (!Threaded && Mes == 1)
        OneMe = R.GoodputMbps;
      unsigned MaxInHw = 0;
      std::string InHw = "[";
      for (unsigned M = 0; M != R.Chip.InputRings.size(); ++M) {
        if (R.Chip.InputRings[M].HighWater > MaxInHw)
          MaxInHw = R.Chip.InputRings[M].HighWater;
        InHw += formatf("%s%u", M ? "," : "", R.Chip.InputRings[M].HighWater);
      }
      InHw += "]";
      std::printf(
          "%8s | %4u | %10llu %8.1f %8.3f | %10llu %10llu | %8u %8u | %5.2f\n",
          Threaded ? "threaded" : "interp", Mes,
          (unsigned long long)R.Chip.FinalCycles, R.GoodputMbps,
          R.Base.WallSeconds, (unsigned long long)R.Chip.Sdram.StallCycles,
          (unsigned long long)R.Chip.Scratch.StallCycles, MaxInHw,
          R.Chip.ReorderHighWater, R.Chip.utilization(0));

      Json += formatf(
          "%s{\"app\":\"%s\",\"packets\":%llu,\"seed\":%llu,"
          "\"exec_mode\":\"%s\",\"wall_seconds\":%.6f,"
          "\"superblocks\":%llu,\"superblock_ops\":%llu,"
          "\"me_count\":%u,\"contexts\":%u,\"final_cycles\":%llu,"
          "\"goodput_mbps\":%.3f,"
          "\"stall_cycles\":{\"sram\":%llu,\"sdram\":%llu,\"scratch\":%llu},"
          "\"input_ring_high_water\":%s,\"tx_ring_high_water\":%u,"
          "\"reorder_high_water\":%u,\"tail_packets\":%llu,"
          "\"lockups_injected\":%llu,\"packets_recovered\":%llu,"
          "\"lockup_drops\":%llu,\"backpressure_drops\":%llu,"
          "\"trace_hash\":\"%016llx\"}",
          First ? "" : ",", App.c_str(), (unsigned long long)Packets,
          (unsigned long long)Seed, Threaded ? "threaded" : "interp",
          R.Base.WallSeconds, (unsigned long long)R.Chip.Superblocks,
          (unsigned long long)R.Chip.SuperblockOps, Mes,
          Opts.Chip.MP.ContextsPerMe, (unsigned long long)R.Chip.FinalCycles,
          R.GoodputMbps, (unsigned long long)R.Chip.Sram.StallCycles,
          (unsigned long long)R.Chip.Sdram.StallCycles,
          (unsigned long long)R.Chip.Scratch.StallCycles, InHw.c_str(),
          R.Chip.TxRing.HighWater, R.Chip.ReorderHighWater,
          (unsigned long long)R.Chip.TailPackets,
          (unsigned long long)R.Chip.Recovery.LockupsInjected,
          (unsigned long long)R.Chip.Recovery.PacketsRecovered,
          (unsigned long long)R.Chip.Recovery.LockupDrops,
          (unsigned long long)R.Chip.Recovery.BackpressureDrops,
          (unsigned long long)R.Chip.TraceHash);
      First = false;
      if (Threaded && Mes == 6 && R.Base.WallSeconds > 0)
        SixMeRatio = InterpWall[Mes] / R.Base.WallSeconds;
      if (!Threaded && Mes == 6 && OneMe > 0)
        std::printf("\n6-ME/1-ME goodput ratio: %.2fx\n\n",
                    R.GoodputMbps / OneMe);
    }
  }
  Json += "]";
  if (SixMeRatio > 0)
    std::printf("\n6-ME threaded/interp wall speedup: %.2fx\n", SixMeRatio);

  std::FILE *F = std::fopen(JsonPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "chip_scaling: cannot write %s\n",
                 JsonPath.c_str());
    return 1;
  }
  std::fprintf(F, "%s\n", Json.c_str());
  std::fclose(F);
  return 0;
}
