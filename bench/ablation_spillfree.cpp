//===- ablation_spillfree.cpp - The paper's two-phase spill refinement ----===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Section 11: "We have experimented with another objective function that
// lets us determine whether spills are required at all ... resulting in a
// much smaller linear program (solve times of 9 seconds for AES and 19.2
// seconds for NAT)". Our allocator's default fast path is exactly that
// refinement: solve a spill-free model first and fall back to the full
// spill-aware model only on infeasibility. This ablation compares the
// two model sizes and solve times per application.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

using namespace nova;

int main() {
  std::printf("Ablation: spill-free fast path vs full spill-aware model\n");
  std::printf("(paper: AES 35.9s full -> 9s spill-free; NAT -> 19.2s)\n\n");
  std::printf("%-8s %-11s %9s %9s %8s %8s %6s %6s\n", "program", "model",
              "root(s)", "total(s)", "vars", "cons", "moves", "spill");

  for (const char *Name : {"NAT"}) {
    for (bool Force : {false, true}) {
      driver::CompileOptions Opts;
      Opts.Alloc.Mip.TimeLimitSeconds = 600.0;
      Opts.Alloc.ForceSpillModel = Force;
      auto C = driver::compileNova(bench::appSource(Name), Name, Opts);
      if (!C->Ok) {
        std::printf("%-8s %-11s  FAILED: %s\n", Name,
                    Force ? "spill-aware" : "spill-free",
                    C->ErrorText.substr(0, 60).c_str());
        continue;
      }
      const alloc::AllocStats &S = C->Alloc.Stats;
      std::printf("%-8s %-11s %9.2f %9.2f %8u %8u %6u %6u\n", Name,
                  Force ? "spill-aware" : "spill-free",
                  S.Solve.RootLpSeconds, S.Solve.TotalSeconds,
                  S.IlpSize.NumVariables, S.IlpSize.NumConstraints,
                  S.Moves, S.Spills);
    }
  }
  std::printf("\nShape check: the spill-free model is smaller and solves "
              "faster, at identical solution quality (0 spills).\n");
  return 0;
}
