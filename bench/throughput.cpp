//===- throughput.cpp - Section 11: measured bit rates --------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Regenerates the paper's throughput measurements: "For Rijndael we
// measured 270 Mbps for payloads of 16 bytes, and 320, 210, and 60 Mbps
// for 8, 16, and 256 byte payloads using Kasumi." The paper used a
// 233 MHz IXP1200 with a hardware packet generator; we run the compiled
// code on the cycle-model simulator and apply the same
// bits-per-packet / cycles-per-packet arithmetic. Absolute numbers
// depend on the latency model; the series' shape (throughput falling
// with payload size once per-block work dominates, Kasumi@8 above
// AES@16) is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "ref/Aes.h"
#include "sim/Simulator.h"

using namespace nova;

namespace {

/// The IXP1200 hides memory latency behind its four hardware threads per
/// engine; the paper's line-rate numbers are in that regime. This preset
/// charges each operation its issue cost rather than its latency,
/// approximating perfect thread overlap.
sim::LatencyModel overlappedLatencies() {
  sim::LatencyModel L;
  L.SramAccess = 2;
  L.SdramAccess = 3;
  L.ScratchAccess = 1;
  L.HashOp = 2;
  return L;
}

uint64_t aesCycles(driver::CompileResult &App, unsigned PayloadBytes,
                   const sim::LatencyModel &Lat) {
  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  std::vector<uint32_t> Pkt = {0x45000000u | (20 + PayloadBytes), 0, 0, 0,
                               0};
  for (unsigned I = 0; I != PayloadBytes / 4; ++I)
    Pkt.push_back(0x01020304u * (I + 1));
  apps::storePacket(Mem.Sdram, 0x100, Pkt);
  sim::RunResult R = sim::runAllocated(App.Alloc.Prog,
                                       {0x100, 0x800, PayloadBytes}, Mem,
                                       Lat);
  if (!R.Ok) {
    std::fprintf(stderr, "aes run failed: %s\n", R.Error.render().c_str());
    return 0;
  }
  return R.Cycles;
}

uint64_t kasumiCycles(driver::CompileResult &App, unsigned PayloadBytes,
                      const sim::LatencyModel &Lat) {
  // The Kasumi fast path processes one 64-bit block per invocation; a
  // packet of N bytes costs N/8 invocations.
  uint64_t Total = 0;
  unsigned Blocks = PayloadBytes / 8;
  for (unsigned B = 0; B != Blocks; ++B) {
    sim::Memory Mem;
    apps::loadKasumiEnvironment(Mem);
    Mem.Sdram[0x300] = 0x11111111u * (B + 1);
    Mem.Sdram[0x301] = 0x22222222u ^ B;
    sim::RunResult R =
        sim::runAllocated(App.Alloc.Prog, {0x300, 0x500}, Mem, Lat);
    if (!R.Ok) {
      std::fprintf(stderr, "kasumi run failed: %s\n", R.Error.render().c_str());
      return 0;
    }
    Total += R.Cycles;
  }
  return Total;
}

} // namespace

int main() {
  std::printf("Section 11 throughput (233 MHz micro-engine, one thread)\n");
  std::printf("(paper: AES 270 Mbps @16B; Kasumi 320/210/60 Mbps @ "
              "8/16/256B)\n\n");

  auto Aes = bench::compileApp("AES");
  auto Kasumi = bench::compileApp("Kasumi");
  if (!Aes->Ok || !Kasumi->Ok)
    return 1;

  std::printf("%-8s %8s | %12s %8s | %12s %8s | %6s\n", "cipher",
              "payload", "raw cyc/pkt", "rawMbps", "ovl cyc/pkt",
              "ovlMbps", "paper");
  struct Row {
    const char *Name;
    unsigned Bytes;
    const char *Paper;
  };
  sim::LatencyModel Raw;
  sim::LatencyModel Ovl = overlappedLatencies();
  for (const Row &R :
       {Row{"AES", 16, "270"}, Row{"AES", 64, "-"}, Row{"AES", 256, "-"},
        Row{"Kasumi", 8, "320"}, Row{"Kasumi", 16, "210"},
        Row{"Kasumi", 256, "60"}}) {
    bool IsAes = std::string(R.Name) == "AES";
    uint64_t RawCycles = IsAes ? aesCycles(*Aes, R.Bytes, Raw)
                               : kasumiCycles(*Kasumi, R.Bytes, Raw);
    uint64_t OvlCycles = IsAes ? aesCycles(*Aes, R.Bytes, Ovl)
                               : kasumiCycles(*Kasumi, R.Bytes, Ovl);
    if (!RawCycles || !OvlCycles)
      return 1;
    std::printf("%-8s %7uB | %12llu %8.0f | %12llu %8.0f | %6s\n", R.Name,
                R.Bytes, static_cast<unsigned long long>(RawCycles),
                sim::throughputMbps(R.Bytes, double(RawCycles)),
                static_cast<unsigned long long>(OvlCycles),
                sim::throughputMbps(R.Bytes, double(OvlCycles)), R.Paper);
  }
  std::printf(
      "\nNotes: 'raw' charges full single-thread memory latencies; 'ovl'\n"
      "charges issue costs only, approximating the hardware's 4-way\n"
      "thread latency hiding (the regime of the paper's measurements).\n"
      "The paper's Kasumi series *falls* with payload size because\n"
      "multi-engine memory contention grows with sustained load — an\n"
      "effect outside this single-thread model; here Mbps is roughly\n"
      "flat in payload once the per-packet overhead is amortized, and\n"
      "Kasumi@8B outruns AES@16B as in the paper.\n");
  return 0;
}
