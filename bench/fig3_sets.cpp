//===- fig3_sets.cpp - Figures 2/3/4: model, data sets, cloning -----------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Regenerates Figure 3: compiles the paper's running example and prints
// the AMPL-style data sets (P, V, DefL/DefLD/UseS/UseSD, Exists, Copy)
// the model builder generates for it. Also demonstrates Figure 4's
// cloning on the conflicting-store example of Section 2.1.
//
//===----------------------------------------------------------------------===//

#include "alloc/BankAnalysis.h"
#include "alloc/IlpModel.h"
#include "driver/Compiler.h"
#include "ixp/Frequency.h"

#include <cstdio>

using namespace nova;
using namespace nova::alloc;

namespace {

void dumpSets(const char *Title, const char *Source) {
  std::printf("=== %s ===\n", Title);
  driver::CompileOptions Opts;
  Opts.Allocate = false;
  auto C = driver::compileNova(Source, "fig3.nova", Opts);
  if (!C->Ok) {
    std::fprintf(stderr, "compile failed: %s\n", C->ErrorText.c_str());
    return;
  }
  std::printf("--- machine code ---\n%s", C->Machine.print().c_str());
  ixp::Liveness LV(C->Machine);
  PointMap Points(C->Machine, LV);
  ixp::FrequencyInfo Freq(C->Machine);
  BankAnalysis Banks(C->Machine, false);
  ModelOptions MO;
  AllocModel Model(C->Machine, LV, Points, Freq, Banks, MO);
  DiagnosticEngine Diags(C->SM);
  if (!Model.build(Diags))
    return;
  std::printf("--- AMPL data (Figure 3 style) ---\n%s\n",
              Model.dumpSetsAmpl(C->Machine).c_str());
}

} // namespace

int main() {
  // Figure 3's program: two SRAM reads, two sums, two interleaved writes.
  dumpSets("Figure 3: the paper's sample program",
           "fun main(z : word) {"
           "  let (a, b, c, d) = sram(100);"
           "  let (e, f, g, h, i, j) = sram(200);"
           "  let u = a + c;"
           "  let v = g + h;"
           "  sram(300) <- (b, e, v, u);"
           "  sram(500) <- (f, j, d, i);"
           "  0"
           "}");

  // Section 2.1 / Figure 4: x stored at conflicting positions triggers
  // cloning; look for the `clone` pseudo in the machine code.
  dumpSets("Figure 4: cloning for conflicting store positions",
           "fun main(a : word, x : word) {"
           "  sram(a) <- (1, x, 3, 4);"
           "  sram(a + 8) <- (x, 2, 3, 4);"
           "  x + 1"
           "}");
  return 0;
}
