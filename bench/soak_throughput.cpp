//===- soak_throughput.cpp - Interp vs threaded soak throughput ------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Measures packets per second of the soak harness in both execution
// modes — the per-packet interpreter (sim::runAllocated) and the
// translating fast path (fastpath::Engine batches with a sampled
// interpreter oracle) — across oracle sampling rates. Every run keeps
// the differential oracle's verdict: any divergence fails the bench,
// so the numbers are always measured on verified-identical execution.
//
// The absolute numbers are environment-bound (this is a 1-core CI box;
// see EXPERIMENTS.md "Soak throughput" for the analysis): watchdog-class
// packets execute their full 50k-instruction budget in *both* modes by
// construction, packet generation costs ~4us/packet, and every oracle
// sample runs three extra semantic models. The interesting output is
// the interp/threaded ratio per rate, not any single pkt/s figure.
//
//   bench/soak_throughput [--app nat] [--packets N] [--seed S] [--json F]
//
//===----------------------------------------------------------------------===//

#include "soak/Soak.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstring>
#include <string>
#include <vector>

using namespace nova;

int main(int argc, char **argv) {
  std::string App = "nat";
  uint64_t Packets = 50'000;
  uint64_t Seed = 42;
  std::string JsonPath = "BENCH_soak_throughput.json";
  for (int I = 1; I < argc; ++I) {
    auto want = [&](const char *Flag) {
      return std::strcmp(argv[I], Flag) == 0 && I + 1 < argc;
    };
    if (want("--app"))
      App = argv[++I];
    else if (want("--packets"))
      Packets = std::strtoull(argv[++I], nullptr, 10);
    else if (want("--seed"))
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (want("--json"))
      JsonPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: soak_throughput [--app name] "
                           "[--packets n] [--seed s] [--json file]\n");
      return 2;
    }
  }

  std::string Error;
  auto H = soak::AppHarness::create(App, Error);
  if (!H) {
    std::fprintf(stderr, "soak_throughput: %s: %s\n", App.c_str(),
                 Error.c_str());
    return 1;
  }

  std::printf("Soak throughput: %s, %llu packets, seed %llu\n", App.c_str(),
              (unsigned long long)Packets, (unsigned long long)Seed);
  std::printf("%9s | %11s | %10s %9s | %10s\n", "exec", "oracle-rate",
              "pkt/s", "wall-s", "checks");

  // Generator-only baseline: the same batched stream with execution
  // stubbed out entirely. This is the hard ceiling any exec mode is
  // measured against — generator cost is recorded, not inferred from
  // the gap between modes.
  std::string Json = "[";
  bool First = true;
  {
    soak::ClassMix Mix;
    soak::PacketTemplateCache Cache;
    std::vector<soak::SoakPacket> Batch;
    uint64_t WordSink = 0;
    Timer Clock;
    for (uint64_t Base = 0; Base < Packets;) {
      uint64_t N = Packets - Base < 256 ? Packets - Base : 256;
      H->generateBatch(Base, N, Seed, Mix, Cache, Batch);
      // Touch each packet so the generator's writes cannot be elided.
      for (uint64_t I = 0; I != N; ++I)
        WordSink += Batch[I].Words.size() + Batch[I].Args.size();
      Base += N;
    }
    double Wall = Clock.seconds();
    double Rate = Wall > 0 ? double(Packets) / Wall : 0;
    std::printf("%9s | %11s | %10.1f %9.3f | %10s\n", "gen-only", "-", Rate,
                Wall, "-");
    Json += formatf("{\"app\":\"%s\",\"packets\":%llu,\"seed\":%llu,"
                    "\"exec_mode\":\"generator-only\",\"wall_seconds\":%.6f,"
                    "\"pkts_per_sec\":%.1f,\"word_sink\":%llu}",
                    App.c_str(), (unsigned long long)Packets,
                    (unsigned long long)Seed, Wall, Rate,
                    (unsigned long long)WordSink);
    First = false;
  }

  // Oracle rate 0 is the execution-speed ceiling (no oracle at all);
  // 1/10/100 match the EXPERIMENTS.md table. Interp at rate 0 is the
  // pure interpreter; threaded at rate 0 is the pure fast path.
  const uint64_t Rates[] = {0, 100, 10, 1};
  for (soak::ExecMode Mode :
       {soak::ExecMode::Interp, soak::ExecMode::Threaded}) {
    for (uint64_t Rate : Rates) {
      soak::SoakOptions Opts;
      Opts.Packets = Packets;
      Opts.Seed = Seed;
      Opts.Exec = Mode;
      Opts.OracleEvery = Rate;
      soak::SoakReport R = soak::runSoak(*H, Opts);
      if (R.Divergences) {
        std::fprintf(stderr,
                     "soak_throughput: %s rate %llu DIVERGED (packet %llu: "
                     "%s)\n",
                     soak::execModeName(Mode), (unsigned long long)Rate,
                     (unsigned long long)R.First.Index, R.First.What.c_str());
        return 1;
      }
      std::printf("%9s | %11llu | %10.1f %9.3f | %10llu\n",
                  soak::execModeName(Mode), (unsigned long long)Rate,
                  R.packetsPerSec(), R.WallSeconds,
                  (unsigned long long)R.OracleChecks);
      Json += (First ? "" : ",") + soak::reportJson(R);
      First = false;
    }
  }
  Json += "]";

  std::FILE *F = std::fopen(JsonPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "soak_throughput: cannot write %s\n",
                 JsonPath.c_str());
    return 1;
  }
  std::fprintf(F, "%s\n", Json.c_str());
  std::fclose(F);
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
