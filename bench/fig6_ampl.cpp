//===- fig6_ampl.cpp - Figure 6: aggregate (coloring) statistics ----------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Regenerates Figure 6: per application, the number of temporaries that
// participate in the DefL/DefLD aggregate-definition sets and in the
// UseS/UseSD aggregate-use sets of the ILP model — "the model has to
// deal with a fair deal of coloring".
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "alloc/BankAnalysis.h"
#include "alloc/IlpModel.h"
#include "ixp/Frequency.h"

using namespace nova;
using namespace nova::alloc;

int main() {
  std::printf("Figure 6: AMPL statistics (temporaries in aggregate sets)\n");
  std::printf("(paper: AES DefL 68 + DefLD 16 = 84, UseS 4 + UseSD 10 = "
              "14; Kasumi 44+14=58, 4+14=18; NAT 43+22=65, ...)\n\n");
  std::printf("%-8s %6s %6s %7s | %6s %6s %7s\n", "program", "DefL",
              "DefLD", "DefTot", "UseS", "UseSD", "UseTot");

  for (const char *Name : {"AES", "Kasumi", "NAT"}) {
    auto C = bench::compileApp(Name, /*Allocate=*/false);
    if (!C->Ok)
      return 1;
    ixp::Liveness LV(C->Machine);
    PointMap Points(C->Machine, LV);
    ixp::FrequencyInfo Freq(C->Machine);
    BankAnalysis Banks(C->Machine, /*AllowSpills=*/false);
    ModelOptions MO;
    AllocModel Model(C->Machine, LV, Points, Freq, Banks, MO);
    DiagnosticEngine Diags(C->SM);
    if (!Model.build(Diags)) {
      std::fprintf(stderr, "%s: model build failed\n", Name);
      return 1;
    }
    const AggregateStats &A = Model.stats().Aggregates;
    std::printf("%-8s %6u %6u %7u | %6u %6u %7u\n", Name, A.DefL, A.DefLD,
                A.DefL + A.DefLD, A.UseS, A.UseSD, A.UseS + A.UseSD);
  }
  return 0;
}
