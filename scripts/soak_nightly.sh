#!/usr/bin/env bash
# Nightly adversarial soak: millions of seeded packets per application
# with the differential oracle on every packet, writing the stream
# statistics (drop taxonomy, cycle percentiles, goodput under
# degradation) to BENCH_soak.json at the repo root.
#
#   scripts/soak_nightly.sh                 # 1M packets/app, seed 42
#   scripts/soak_nightly.sh 5000000 7       # packets and seed
#   BUILD_DIR=/tmp/b scripts/soak_nightly.sh
#   SOAK_TIMEOUT=7200 scripts/soak_nightly.sh   # per-run ceiling (s)
#
# Every soak runs under a hard timeout and gets exactly one retry; a
# run that fails twice is recorded as a structured failure object in
# the merged BENCH JSON (so the nightly dashboard sees *which* soak
# died and how, instead of a missing file) and the script exits 1.
#
# Exit codes: 0 clean, 1 any soak failed twice (oracle divergence,
# timeout, or crash — the log and the failure record hold the detail).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
PACKETS="${1:-1000000}"
SEED="${2:-42}"
# Generous per-run ceiling: nightly runs are long, but a hang must not
# eat the whole window.
SOAK_TIMEOUT="${SOAK_TIMEOUT:-10800}"

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target novasoak

NIGHTLY_FAILED=0

# run_soak <name> <json-path> <novasoak args...>
# Hard-timeboxed novasoak with one retry. On double failure, writes a
# structured failure record to <json-path> (keeping the merged BENCH
# arrays parseable) and marks the nightly failed.
run_soak() {
  local NAME="$1" JSON="$2"
  shift 2
  local ATTEMPT RC
  for ATTEMPT in 1 2; do
    RC=0
    timeout "$SOAK_TIMEOUT" "$BUILD/tools/novasoak" "$@" \
      --json "$JSON" || RC=$?
    if [ "$RC" -eq 0 ]; then
      return 0
    fi
    echo "soak_nightly: $NAME attempt $ATTEMPT failed (exit $RC)" >&2
  done
  # 124 is timeout(1)'s kill exit; anything else is novasoak's own code
  # (1 = divergence, 2 = usage, 4 = compile failure) or a crash signal.
  printf '[{"run":"%s","failed":true,"exit_code":%d,"attempts":2,"timeout_seconds":%d,"argv":"%s"}]\n' \
    "$NAME" "$RC" "$SOAK_TIMEOUT" "$*" > "$JSON"
  NIGHTLY_FAILED=1
  return 0
}

# Both execution modes land in BENCH_soak.json: the per-packet
# interpreter (oracle on every packet) and the translating fast path
# (threaded; interpreter + functional + CPS oracle sampled 1-in-10).
# The stream statistics must be bit-identical between the two — the
# threaded driver compares every sampled packet, and tests lock the
# whole-report equality.
run_soak soak-interp "$BUILD/BENCH_soak_interp.json" \
  --packets "$PACKETS" --seed "$SEED"
run_soak soak-threaded "$BUILD/BENCH_soak_threaded.json" \
  --packets "$PACKETS" --seed "$SEED" --exec threaded --oracle-rate 10
INTERP_JSON="$(cat "$BUILD/BENCH_soak_interp.json")"
THREADED_JSON="$(cat "$BUILD/BENCH_soak_threaded.json")"
printf '%s,%s\n' "${INTERP_JSON%]}" "${THREADED_JSON#[}" \
  > "$ROOT/BENCH_soak.json"

# Whole-chip nightly: the same adversarial stream through the full
# 6-engine chip model (sampled oracle every packet at this scale is the
# point of nightly: it is the deepest contention + isolation soak we
# run). Both execution models are recorded — the interpreted chip and
# the chip whose contexts run on the segmented fast path — and their
# reports must be bit-identical (trace hash, stalls, drop taxonomy).
run_soak chip-interp "$BUILD/BENCH_chip_interp.json" \
  --chip --me-count 6 --app nat --packets "$PACKETS" --seed "$SEED"
run_soak chip-threaded "$BUILD/BENCH_chip_threaded.json" \
  --chip --me-count 6 --app nat --exec threaded \
  --packets "$PACKETS" --seed "$SEED"

# Fault-recovery nightly: the acceptance schedule at production rates.
# The supervisor must keep the stream flowing (exit 0), recover or
# typed-drop every fault, and the recovery ledger lands in the merged
# JSON for trend tracking.
run_soak chip-faults "$BUILD/BENCH_chip_faults.json" \
  --chip --me-count 6 --app nat --exec threaded \
  --packets "$PACKETS" --seed "$SEED" \
  --fault-schedule 'ctx-lockup@5000,chan-brownout@10000~4'

CHIP_INTERP_JSON="$(cat "$BUILD/BENCH_chip_interp.json")"
CHIP_THREADED_JSON="$(cat "$BUILD/BENCH_chip_threaded.json")"
CHIP_FAULTS_JSON="$(cat "$BUILD/BENCH_chip_faults.json")"
printf '%s,%s,%s\n' "${CHIP_INTERP_JSON%]}" \
  "$(T="${CHIP_THREADED_JSON#[}"; printf '%s' "${T%]}")" \
  "${CHIP_FAULTS_JSON#[}" > "$ROOT/BENCH_chip_soak.json"

if [ "$NIGHTLY_FAILED" -ne 0 ]; then
  echo "soak_nightly: one or more soaks failed twice; see failure" \
       "records in BENCH JSON" >&2
  exit 1
fi
