#!/usr/bin/env bash
# Nightly adversarial soak: millions of seeded packets per application
# with the differential oracle on every packet, writing the stream
# statistics (drop taxonomy, cycle percentiles, goodput under
# degradation) to BENCH_soak.json at the repo root.
#
#   scripts/soak_nightly.sh                 # 1M packets/app, seed 42
#   scripts/soak_nightly.sh 5000000 7       # packets and seed
#   BUILD_DIR=/tmp/b scripts/soak_nightly.sh
#
# Exit codes follow novasoak: 0 clean, 1 oracle divergence (the log
# contains the seed, packet index, and shrunk reproducer).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
PACKETS="${1:-1000000}"
SEED="${2:-42}"

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target novasoak

# Both execution modes land in BENCH_soak.json: the per-packet
# interpreter (oracle on every packet) and the translating fast path
# (threaded; interpreter + functional + CPS oracle sampled 1-in-10).
# The stream statistics must be bit-identical between the two — the
# threaded driver compares every sampled packet, and tests lock the
# whole-report equality.
"$BUILD/tools/novasoak" --packets "$PACKETS" --seed "$SEED" \
  --json "$BUILD/BENCH_soak_interp.json"
"$BUILD/tools/novasoak" --packets "$PACKETS" --seed "$SEED" \
  --exec threaded --oracle-rate 10 \
  --json "$BUILD/BENCH_soak_threaded.json"
INTERP_JSON="$(cat "$BUILD/BENCH_soak_interp.json")"
THREADED_JSON="$(cat "$BUILD/BENCH_soak_threaded.json")"
printf '%s,%s\n' "${INTERP_JSON%]}" "${THREADED_JSON#[}" \
  > "$ROOT/BENCH_soak.json"

# Whole-chip nightly: the same adversarial stream through the full
# 6-engine chip model (sampled oracle every packet at this scale is the
# point of nightly: it is the deepest contention + isolation soak we
# run). Both execution models are recorded — the interpreted chip and
# the chip whose contexts run on the segmented fast path — and their
# reports must be bit-identical (trace hash, stalls, drop taxonomy).
"$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --packets "$PACKETS" --seed "$SEED" \
  --json "$BUILD/BENCH_chip_interp.json"
"$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --exec threaded --packets "$PACKETS" --seed "$SEED" \
  --json "$BUILD/BENCH_chip_threaded.json"
CHIP_INTERP_JSON="$(cat "$BUILD/BENCH_chip_interp.json")"
CHIP_THREADED_JSON="$(cat "$BUILD/BENCH_chip_threaded.json")"
printf '%s,%s\n' "${CHIP_INTERP_JSON%]}" "${CHIP_THREADED_JSON#[}" \
  > "$ROOT/BENCH_chip_soak.json"
