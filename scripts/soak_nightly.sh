#!/usr/bin/env bash
# Nightly adversarial soak: millions of seeded packets per application
# with the differential oracle on every packet, writing the stream
# statistics (drop taxonomy, cycle percentiles, goodput under
# degradation) to BENCH_soak.json at the repo root.
#
#   scripts/soak_nightly.sh                 # 1M packets/app, seed 42
#   scripts/soak_nightly.sh 5000000 7       # packets and seed
#   BUILD_DIR=/tmp/b scripts/soak_nightly.sh
#   SOAK_TIMEOUT=7200 scripts/soak_nightly.sh   # per-run ceiling (s)
#   CKPT_EVERY=50000 scripts/soak_nightly.sh    # snapshot cadence
#
# Every soak runs under a hard timeout, snapshots its resumable state
# every CKPT_EVERY retired packets, and gets exactly one retry. The
# retry resumes from the newest valid checkpoint when one exists (a
# timed-out or crashed run continues instead of starting over — a
# resumed run's report is byte-identical to an uninterrupted one), and
# starts fresh otherwise. A run that fails twice is recorded as a
# structured failure object in the merged BENCH JSON — including the
# checkpoint it resumed from, so the dashboard sees how far it got —
# and the script exits 1.
#
# Standalone soaks run one app per invocation (checkpoint directories
# are per-stream); the merged BENCH arrays keep their old shape.
#
# Exit codes: 0 clean, 1 any soak failed twice (oracle divergence,
# timeout, or crash — the log and the failure record hold the detail).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
PACKETS="${1:-1000000}"
SEED="${2:-42}"
# Generous per-run ceiling: nightly runs are long, but a hang must not
# eat the whole window.
SOAK_TIMEOUT="${SOAK_TIMEOUT:-10800}"
# Snapshot cadence: ~20 snapshots per run, never more often than every
# 1000 packets (checkpoint overhead stays in the noise).
CKPT_EVERY="${CKPT_EVERY:-$(( PACKETS / 20 > 1000 ? PACKETS / 20 : 1000 ))}"

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target novasoak

NIGHTLY_FAILED=0

# run_soak <name> <json-path> <novasoak args...>
# Hard-timeboxed novasoak with one retry; the retry resumes from the
# newest checkpoint when the first attempt left one. On double failure,
# writes a structured failure record to <json-path> (keeping the merged
# BENCH arrays parseable) and marks the nightly failed.
run_soak() {
  local NAME="$1" JSON="$2"
  shift 2
  local CKDIR="$BUILD/ckpt-nightly/$NAME"
  rm -rf "$CKDIR"
  local ATTEMPT RC RESUMED_FROM="null"
  for ATTEMPT in 1 2; do
    local RESUME_ARGS=(--checkpoint-every "$CKPT_EVERY" --checkpoint-dir "$CKDIR")
    if [ "$ATTEMPT" -gt 1 ] && ls "$CKDIR"/ckpt-*.nova-ckpt >/dev/null 2>&1; then
      local LATEST
      LATEST="$(ls "$CKDIR"/ckpt-*.nova-ckpt | sort -t- -k2 -n | tail -1)"
      RESUME_ARGS+=(--resume "$CKDIR")
      RESUMED_FROM="\"$LATEST\""
      echo "soak_nightly: $NAME retrying from $LATEST" >&2
    fi
    RC=0
    timeout "$SOAK_TIMEOUT" "$BUILD/tools/novasoak" "$@" \
      "${RESUME_ARGS[@]}" --json "$JSON" || RC=$?
    if [ "$RC" -eq 0 ]; then
      rm -rf "$CKDIR"
      return 0
    fi
    echo "soak_nightly: $NAME attempt $ATTEMPT failed (exit $RC)" >&2
  done
  # 124 is timeout(1)'s kill exit; anything else is novasoak's own code
  # (1 = divergence, 2 = usage, 4 = compile failure, 5 = checkpoint
  # failure) or a crash signal.
  printf '[{"run":"%s","failed":true,"exit_code":%d,"attempts":2,"timeout_seconds":%d,"resumed_from":%s,"argv":"%s"}]\n' \
    "$NAME" "$RC" "$SOAK_TIMEOUT" "$RESUMED_FROM" "$*" > "$JSON"
  NIGHTLY_FAILED=1
  return 0
}

# merge_json <out> <in...>: concatenates JSON arrays (failure records
# included) into one array.
merge_json() {
  local OUT="$1"
  shift
  python3 - "$OUT" "$@" <<'EOF'
import json, sys
out, paths = sys.argv[1], sys.argv[2:]
merged = []
for p in paths:
    with open(p) as f:
        merged.extend(json.load(f))
with open(out, "w") as f:
    json.dump(merged, f, separators=(",", ":"))
    f.write("\n")
EOF
}

# Both execution modes land in BENCH_soak.json: the per-packet
# interpreter (oracle on every packet) and the translating fast path
# (threaded; interpreter + functional + CPS oracle sampled 1-in-10).
# The stream statistics must be bit-identical between the two — the
# threaded driver compares every sampled packet, and tests lock the
# whole-report equality. One app per run so every stream checkpoints.
STANDALONE_JSONS=()
for APP in aes kasumi nat; do
  run_soak "soak-interp-$APP" "$BUILD/BENCH_soak_interp_$APP.json" \
    --app "$APP" --packets "$PACKETS" --seed "$SEED"
  STANDALONE_JSONS+=("$BUILD/BENCH_soak_interp_$APP.json")
done
for APP in aes kasumi nat; do
  run_soak "soak-threaded-$APP" "$BUILD/BENCH_soak_threaded_$APP.json" \
    --app "$APP" --packets "$PACKETS" --seed "$SEED" \
    --exec threaded --oracle-rate 10
  STANDALONE_JSONS+=("$BUILD/BENCH_soak_threaded_$APP.json")
done
merge_json "$ROOT/BENCH_soak.json" "${STANDALONE_JSONS[@]}"

# Whole-chip nightly: the same adversarial stream through the full
# 6-engine chip model (sampled oracle every packet at this scale is the
# point of nightly: it is the deepest contention + isolation soak we
# run). Both execution models are recorded — the interpreted chip and
# the chip whose contexts run on the segmented fast path — and their
# reports must be bit-identical (trace hash, stalls, drop taxonomy).
run_soak chip-interp "$BUILD/BENCH_chip_interp.json" \
  --chip --me-count 6 --app nat --packets "$PACKETS" --seed "$SEED"
run_soak chip-threaded "$BUILD/BENCH_chip_threaded.json" \
  --chip --me-count 6 --app nat --exec threaded \
  --packets "$PACKETS" --seed "$SEED"

# Fault-recovery nightly: the acceptance schedule at production rates.
# The supervisor must keep the stream flowing (exit 0), recover or
# typed-drop every fault, and the recovery ledger — including the
# recovery_fold digest and the all_accounted invariant — lands in the
# merged JSON for trend tracking.
run_soak chip-faults "$BUILD/BENCH_chip_faults.json" \
  --chip --me-count 6 --app nat --exec threaded \
  --packets "$PACKETS" --seed "$SEED" \
  --fault-schedule 'ctx-lockup@5000,chan-brownout@10000~4'

merge_json "$ROOT/BENCH_chip_soak.json" \
  "$BUILD/BENCH_chip_interp.json" \
  "$BUILD/BENCH_chip_threaded.json" \
  "$BUILD/BENCH_chip_faults.json"

if [ "$NIGHTLY_FAILED" -ne 0 ]; then
  echo "soak_nightly: one or more soaks failed twice; see failure" \
       "records in BENCH JSON" >&2
  exit 1
fi
