#!/usr/bin/env bash
# Tier-1 verify in one command (see ROADMAP.md): configure, build, run the
# full test suite, then smoke-test the parallel MIP engine with a 2-thread
# solve through the whole novac pipeline.
#
#   scripts/tier1.sh                 # uses ./build
#   BUILD_DIR=/tmp/b scripts/tier1.sh
#
# Also available as a build target once configured:
#   cmake --build build --target tier1
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j"$JOBS"
(cd "$BUILD" && ctest --output-on-failure -j"$JOBS")

# 2-thread MIP smoke solve: a small Nova program through parse -> CPS ->
# isel -> parallel branch & bound -> verifier, failing on any verifier
# violation or solver disagreement.
SMOKE="$(mktemp --suffix .nova)"
trap 'rm -f "$SMOKE"' EXIT
cat > "$SMOKE" <<'EOF'
fun main(base : word, n : word) {
  let sum = 0;
  let i = 0;
  while (i < n) {
    let (w0, w1) = sram(base + (i << 1));
    sum = sum + ((w0 >> 16) + (w0 & 0xFFFF));
    sum = sum + ((w1 >> 16) + (w1 & 0xFFFF));
    i = i + 1;
  }
  (sum & 0xFFFF) + (sum >> 16)
}
EOF
echo "== 2-thread MIP smoke solve =="
"$BUILD/src/driver/novac" --mip-threads 2 --mip-deterministic --stats "$SMOKE"

# Time-boxed solver smoke on the real NAT model: the root relaxation
# objective is a deterministic property of the model + LP engine, so any
# drift fails the run. NAT is the smallest of the three apps (~60s was
# the pre-sparse-LU budget; the sparse engine solves it in well under a
# second, so 120s only guards against a hang).
echo "== NAT solver smoke (root objective check) =="
timeout 120 "$BUILD/bench/fig7_solver" --only NAT --mip-threads 1 \
  --no-compare --json "$BUILD/BENCH_smoke.json" --expect-root 2.2381627

# Adversarial soak smoke: fixed seed, all three apps, the differential
# oracle (allocated vs functional vs CPS evaluator) on every packet. Any
# divergence exits 1 and fails the run. Time-boxed well above the ~10s
# it takes so only a hang trips the timeout.
echo "== adversarial soak smoke (oracle on every packet) =="
timeout 120 "$BUILD/tools/novasoak" --packets 2000 --seed 7 \
  --json "$BUILD/BENCH_soak_smoke.json"

# Whole-chip smoke: 2k packets through the 3-engine chip model with the
# sampled three-way oracle, trap=>drop accounting, and the chip-vs-
# standalone outcome cross-check. Any divergence or deadlock exits 1.
echo "== whole-chip soak smoke (6 MEs x 4 contexts, sampled oracle) =="
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --packets 2000 --seed 7 --json "$BUILD/BENCH_chip_smoke.json"

# Negative control: an injected ALU bit flip in the allocated simulator
# must be *caught* by the oracle (exit 1, with a shrunk reproducer). A
# clean exit here means the oracle is blind — fail loudly.
echo "== soak negative control (injected bit flip must be caught) =="
SOAK_RC=0
timeout 120 "$BUILD/tools/novasoak" --app nat --packets 50 --seed 3 \
  --inject-fault sim-bitflip@40 --fail-fast --quiet || SOAK_RC=$?
if [ "$SOAK_RC" -ne 1 ]; then
  echo "soak negative control FAILED: expected exit 1 (divergence caught)," \
       "got $SOAK_RC" >&2
  exit 1
fi

# Threaded (translating fast path) soak smoke: the same adversarial
# stream executed by fastpath::Engine with every 10th packet re-run on
# the interpreter + functional + CPS oracles. The fast path must stay
# bit-identical to the interpreter; any mismatch exits 1.
echo "== threaded soak smoke (fast path, sampled oracle) =="
timeout 120 "$BUILD/tools/novasoak" --packets 2000 --seed 7 \
  --exec threaded --oracle-rate 10 \
  --json "$BUILD/BENCH_soak_threaded_smoke.json"

# Threaded negative control: the bit flip fires inside fastpath::Engine
# too (it shares the injector), and the sampled interpreter re-run must
# catch it. Oracle every packet so the 50-packet window always samples.
echo "== threaded negative control (bit flip must be caught on the fast path) =="
SOAK_RC=0
timeout 120 "$BUILD/tools/novasoak" --app nat --packets 50 --seed 3 \
  --exec threaded --oracle-rate 1 \
  --inject-fault sim-bitflip@40 --fail-fast --quiet || SOAK_RC=$?
if [ "$SOAK_RC" -ne 1 ]; then
  echo "threaded negative control FAILED: expected exit 1 (divergence" \
       "caught), got $SOAK_RC" >&2
  exit 1
fi

# Chip-threaded smoke: the same 6-ME chip stream, but every context
# executes on the segmented fast path (superblocks + resumable
# segments). The schedule — and therefore the trace hash, stall
# counters, and drop taxonomy — must stay bit-identical to the
# interpreted chip; chip_test locks the whole-report equality, this
# smoke proves the oracle stays clean end-to-end through the CLI.
echo "== whole-chip threaded smoke (segmented fast path, sampled oracle) =="
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --exec threaded --packets 2000 --seed 7 \
  --json "$BUILD/BENCH_chip_threaded_smoke.json"

# Chip-threaded negative control: arming the injector pins both the
# chip contexts and the oracle re-runs to the interpreter-exact slow
# tier, and the x1 budget spends the flip before the retire-time
# re-run — so the oracle must catch it (exit 1).
echo "== chip-threaded negative control (bit flip must be caught) =="
SOAK_RC=0
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --exec threaded --packets 500 --seed 42 --oracle-rate 1 \
  --inject-fault 'sim-bitflip@1000x1' --quiet || SOAK_RC=$?
if [ "$SOAK_RC" -ne 1 ]; then
  echo "chip-threaded negative control FAILED: expected exit 1" \
       "(divergence caught), got $SOAK_RC" >&2
  exit 1
fi

# Chip fault smoke: the acceptance schedule (context lockups + an SDRAM
# brownout) through both execution models. The supervisor must recover
# every fault (exit 0, zero divergences), the ledger must balance, and
# both runs must report at least one recovery — a zero here means the
# schedule silently stopped firing.
echo "== chip fault smoke (supervisor recovery, interp + threaded) =="
for EXEC in interp threaded; do
  timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
    --exec "$EXEC" --packets 2000 --seed 42 \
    --fault-schedule 'ctx-lockup@500,chan-brownout@1000~4' \
    --json "$BUILD/BENCH_chip_fault_${EXEC}.json"
  if ! grep -q '"packets_recovered":[1-9]' \
      "$BUILD/BENCH_chip_fault_${EXEC}.json"; then
    echo "chip fault smoke FAILED ($EXEC): no recoveries recorded" >&2
    exit 1
  fi
  if ! grep -q '"all_accounted":true' \
      "$BUILD/BENCH_chip_fault_${EXEC}.json"; then
    echo "chip fault smoke FAILED ($EXEC): recovery ledger unbalanced" >&2
    exit 1
  fi
done

# Chip fault negative control: sdram-bitflip is the one chip fault the
# supervisor cannot see (post-DMA corruption). The sampled retire-time
# oracle must catch it — exit 1. A clean exit means the oracle went
# blind to chip-level corruption.
echo "== chip fault negative control (sdram-bitflip must be caught) =="
SOAK_RC=0
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 2 --app nat \
  --packets 400 --seed 42 --oracle-rate 1 \
  --fault-schedule 'sdram-bitflip@10' --quiet || SOAK_RC=$?
if [ "$SOAK_RC" -ne 1 ]; then
  echo "chip fault negative control FAILED: expected exit 1 (corruption" \
       "caught), got $SOAK_RC" >&2
  exit 1
fi

# Checkpoint kill/resume smoke: snapshot every 500 packets, SIGKILL the
# run mid-stream at ~1k retired, resume from the newest snapshot, and
# require the finished stable JSON — trace hash included — to be
# byte-identical to an uninterrupted run.
echo "== checkpoint kill/resume smoke (byte-identical resumed report) =="
CKPT_DIR="$BUILD/ckpt-smoke"
rm -rf "$CKPT_DIR"
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --packets 2000 --seed 7 --quiet --stable-json \
  --json "$BUILD/BENCH_ckpt_ref.json"
SOAK_RC=0
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --packets 2000 --seed 7 --quiet \
  --checkpoint-every 500 --checkpoint-dir "$CKPT_DIR" \
  --kill-after 1000 || SOAK_RC=$?
if [ "$SOAK_RC" -ne 137 ]; then
  echo "checkpoint smoke FAILED: expected SIGKILL (exit 137), got $SOAK_RC" >&2
  exit 1
fi
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --packets 2000 --seed 7 --quiet --stable-json \
  --resume "$CKPT_DIR" --checkpoint-every 500 \
  --json "$BUILD/BENCH_ckpt_resumed.json"
if ! cmp -s "$BUILD/BENCH_ckpt_ref.json" "$BUILD/BENCH_ckpt_resumed.json"; then
  echo "checkpoint smoke FAILED: resumed report differs from" \
       "uninterrupted run" >&2
  exit 1
fi

# Checkpoint negative control: corrupt every snapshot; --resume must
# fail with the typed checkpoint exit code (5), never start fresh and
# silently report success.
echo "== checkpoint negative control (corrupt snapshots must be rejected) =="
for F in "$CKPT_DIR"/ckpt-*.nova-ckpt; do
  printf '\xff\xff' | dd of="$F" bs=1 seek=64 conv=notrunc 2>/dev/null
done
SOAK_RC=0
timeout 300 "$BUILD/tools/novasoak" --chip --me-count 6 --app nat \
  --packets 2000 --seed 7 --quiet --resume "$CKPT_DIR" || SOAK_RC=$?
if [ "$SOAK_RC" -ne 5 ]; then
  echo "checkpoint negative control FAILED: expected exit 5" \
       "(CheckpointCorrupt), got $SOAK_RC" >&2
  exit 1
fi

# ASan+UBSan pass over the degradation ladder and the support layer: the
# fault-injection paths (LU repair, refactorize-on-drift, incumbent
# salvage, baseline fallback) are exactly where stale pointers and
# overflow bugs would hide. Time-boxed so a hung rung fails CI fast
# instead of stalling it; the ladder's own watchdog deadlines keep each
# rung well under this ceiling.
SAN_BUILD="${SAN_BUILD_DIR:-$ROOT/build-asan}"
echo "== ASan+UBSan degradation tests =="
cmake -B "$SAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build "$SAN_BUILD" -j"$JOBS" --target degradation_test support_test \
  chip_fault_test
timeout 900 "$SAN_BUILD/tests/degradation_test"
timeout 120 "$SAN_BUILD/tests/support_test"
# The supervisor's abort/restart path frees and rebuilds per-packet
# state (slot scrub, re-DMA, spill-window erase) — exactly where
# use-after-free would hide.
timeout 300 "$SAN_BUILD/tests/chip_fault_test"

# TSan pass over the chip scheduler: the discrete-event kernel is
# single-threaded by design, so a clean TSan run plus deterministic
# double-run hashes (asserted inside chip_test) is the evidence that no
# hidden shared-state races or iteration-order dependences crept in.
TSAN_BUILD="${TSAN_BUILD_DIR:-$ROOT/build-tsan}"
echo "== TSan chip scheduler tests =="
cmake -B "$TSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build "$TSAN_BUILD" -j"$JOBS" --target chip_test chip_fault_test \
  novasoak
timeout 300 "$TSAN_BUILD/tests/chip_test"
timeout 300 "$TSAN_BUILD/tests/chip_fault_test"

# TSan soak over the batched generator + segmented fast path: the
# template cache and reused packet buffers are single-threaded by
# design; a clean run here plus the byte-identity tests is the evidence
# nothing aliases across packets.
echo "== TSan threaded soak (batched generator path) =="
timeout 300 "$TSAN_BUILD/tools/novasoak" --app nat --packets 500 \
  --exec threaded --oracle-rate 10 --quiet
echo "tier-1 verify: OK"
