#!/usr/bin/env bash
# Crash-recovery harness: proves the checkpoint/restore path reproduces
# an uninterrupted soak bit-for-bit after real mid-run deaths.
#
#   scripts/novacrash.sh                  # nat, 20k packets, 5 crashes
#   scripts/novacrash.sh 50000 7 10       # packets, seed, crash rounds
#   BUILD_DIR=/tmp/b scripts/novacrash.sh
#   NOVACRASH_CHIP=0 scripts/novacrash.sh # standalone instead of chip
#
# Protocol, per execution mode (interp and threaded):
#   1. Reference: one uninterrupted run -> stable JSON + trace hash.
#   2. Crash loop: run with --checkpoint-every and --kill-after at a
#      seeded-random point; the process dies by SIGKILL mid-stream.
#      Resume from the newest valid checkpoint and kill again, until
#      the final resume completes the stream.
#   3. The survivor's stable JSON must equal the reference byte-for-byte
#      (trace hash, recovery fold, and drop taxonomy included).
#   4. Negative control: corrupt every snapshot in a checkpoint
#      directory and assert --resume fails with exit 5 (typed
#      CheckpointCorrupt), never a silent fresh start.
#
# Exit codes: 0 all modes byte-identical + negative control holds,
# 1 any mismatch or unexpected exit.
set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
PACKETS="${1:-20000}"
SEED="${2:-42}"
ROUNDS="${3:-5}"
CHIP="${NOVACRASH_CHIP:-1}"
NOVASOAK="$BUILD/tools/novasoak"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/novacrash.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

[ -x "$NOVASOAK" ] || { echo "novacrash: build novasoak first ($NOVASOAK)" >&2; exit 1; }

FAILED=0

# Deterministic pseudo-random kill points: the harness itself must be
# reproducible, so derive them from the seed instead of $RANDOM.
kill_point() { # kill_point <round> -> 1..PACKETS-1
  local R="$1"
  echo $(( ( (SEED * 2654435761 + R * 40503 + 12345) % (PACKETS - 1) ) + 1 ))
}

run_mode() { # run_mode <exec>
  local EXEC="$1"
  local TAG="crash-$EXEC"
  local ARGS=(--app nat --packets "$PACKETS" --seed "$SEED" --exec "$EXEC" --quiet)
  if [ "$CHIP" -eq 1 ]; then
    ARGS+=(--chip --me-count 6 --fault-schedule 'ctx-lockup@5000,chan-brownout@10000~4')
  fi
  local EVERY=$(( PACKETS / 10 > 1 ? PACKETS / 10 : 1 ))
  local CKDIR="$WORK/$TAG.ckpt"
  local REF="$WORK/$TAG.ref.json" OUT="$WORK/$TAG.out.json"

  echo "novacrash: [$TAG] reference run ($PACKETS packets)"
  "$NOVASOAK" "${ARGS[@]}" --stable-json --json "$REF" >/dev/null 2>&1
  local RC=$?
  if [ "$RC" -ne 0 ] && [ "$RC" -ne 1 ]; then
    echo "novacrash: [$TAG] reference run failed (exit $RC)" >&2
    FAILED=1
    return
  fi

  rm -rf "$CKDIR"
  local ROUND DONE=0
  for ROUND in $(seq 1 "$ROUNDS"); do
    local KILL_AT
    KILL_AT="$(kill_point "$ROUND")"
    local RESUME=()
    [ "$ROUND" -gt 1 ] && RESUME=(--resume "$CKDIR")
    echo "novacrash: [$TAG] round $ROUND: SIGKILL at ~$KILL_AT retired"
    "$NOVASOAK" "${ARGS[@]}" "${RESUME[@]}" \
      --checkpoint-every "$EVERY" --checkpoint-dir "$CKDIR" \
      --kill-after "$KILL_AT" --stable-json --json "$OUT" >/dev/null 2>&1
    RC=$?
    if [ "$RC" -eq 0 ] || [ "$RC" -eq 1 ]; then
      DONE=1
      break # the kill point landed past the end: the stream completed
    fi
    if [ "$RC" -ne 137 ]; then
      echo "novacrash: [$TAG] round $ROUND: expected SIGKILL (137) or" \
           "completion, got exit $RC" >&2
      FAILED=1
      return
    fi
  done
  if [ "$DONE" -eq 0 ]; then
    echo "novacrash: [$TAG] final resume to completion"
    "$NOVASOAK" "${ARGS[@]}" --resume "$CKDIR" \
      --checkpoint-every "$EVERY" \
      --stable-json --json "$OUT" >/dev/null 2>&1
    RC=$?
    if [ "$RC" -ne 0 ] && [ "$RC" -ne 1 ]; then
      echo "novacrash: [$TAG] final resume failed (exit $RC)" >&2
      FAILED=1
      return
    fi
  fi

  if cmp -s "$REF" "$OUT"; then
    echo "novacrash: [$TAG] OK: resumed report is byte-identical"
  else
    echo "novacrash: [$TAG] FAIL: resumed report differs from reference" >&2
    diff <(tr ',' '\n' < "$REF") <(tr ',' '\n' < "$OUT") | head -20 >&2
    FAILED=1
  fi
}

run_mode interp
run_mode threaded

# Negative control: flip bytes inside every snapshot of a real
# checkpoint directory; --resume must detect the checksum mismatch on
# each candidate and fail with the typed checkpoint exit code.
NEG="$WORK/negative.ckpt"
NEGEVERY=$(( PACKETS / 10 > 1 ? PACKETS / 10 : 1 ))
"$NOVASOAK" --app nat --packets "$PACKETS" --seed "$SEED" --quiet \
  --checkpoint-every "$NEGEVERY" --checkpoint-dir "$NEG" \
  --kill-after $(( PACKETS / 2 )) >/dev/null 2>&1
if ! ls "$NEG"/ckpt-*.nova-ckpt >/dev/null 2>&1; then
  echo "novacrash: negative control produced no checkpoints" >&2
  FAILED=1
else
  for F in "$NEG"/ckpt-*.nova-ckpt; do
    printf '\xde\xad' | dd of="$F" bs=1 seek=64 conv=notrunc 2>/dev/null
  done
  "$NOVASOAK" --app nat --packets "$PACKETS" --seed "$SEED" --quiet \
    --resume "$NEG" >/dev/null 2>&1
  RC=$?
  if [ "$RC" -eq 5 ]; then
    echo "novacrash: OK: corrupt checkpoints rejected with exit 5"
  else
    echo "novacrash: FAIL: corrupt checkpoints gave exit $RC, expected 5" >&2
    FAILED=1
  fi
fi

if [ "$FAILED" -ne 0 ]; then
  echo "novacrash: FAILED" >&2
  exit 1
fi
echo "novacrash: all checks passed"
