//===- Expr.h - Linear expressions for ILP models ---------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse linear expressions with operator overloading so model-building
/// code in src/alloc reads close to the paper's AMPL formulation.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_EXPR_H
#define ILP_EXPR_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nova {
namespace ilp {

/// Index of a decision variable within a Model.
struct VarId {
  uint32_t Index = ~0u;

  bool isValid() const { return Index != ~0u; }
  bool operator==(const VarId &O) const { return Index == O.Index; }
  bool operator<(const VarId &O) const { return Index < O.Index; }
};

/// One coefficient of a linear expression.
struct Term {
  VarId Var;
  double Coeff;
};

/// A sparse linear expression `Constant + sum Coeff_i * Var_i`.
///
/// Terms may mention the same variable more than once while building; call
/// normalize() (done automatically when a constraint is added) to merge
/// duplicates and drop zeros.
class LinExpr {
public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double C) : Constant(C) {}
  /*implicit*/ LinExpr(VarId V) { Terms.push_back({V, 1.0}); }

  LinExpr &operator+=(const LinExpr &O) {
    Terms.insert(Terms.end(), O.Terms.begin(), O.Terms.end());
    Constant += O.Constant;
    return *this;
  }

  LinExpr &operator-=(const LinExpr &O) {
    for (const Term &T : O.Terms)
      Terms.push_back({T.Var, -T.Coeff});
    Constant -= O.Constant;
    return *this;
  }

  LinExpr &operator*=(double S) {
    for (Term &T : Terms)
      T.Coeff *= S;
    Constant *= S;
    return *this;
  }

  /// Adds Coeff * Var.
  void add(VarId Var, double Coeff) { Terms.push_back({Var, Coeff}); }

  /// Merges duplicate variables and removes terms with coefficient ~0.
  void normalize() {
    std::sort(Terms.begin(), Terms.end(),
              [](const Term &A, const Term &B) { return A.Var < B.Var; });
    size_t Out = 0;
    for (size_t I = 0; I != Terms.size();) {
      Term Merged = Terms[I++];
      while (I != Terms.size() && Terms[I].Var == Merged.Var)
        Merged.Coeff += Terms[I++].Coeff;
      if (Merged.Coeff != 0.0)
        Terms[Out++] = Merged;
    }
    Terms.resize(Out);
  }

  const std::vector<Term> &terms() const { return Terms; }
  double constant() const { return Constant; }
  bool empty() const { return Terms.empty(); }

private:
  std::vector<Term> Terms;
  double Constant = 0.0;
};

inline LinExpr operator+(LinExpr A, const LinExpr &B) { return A += B; }
inline LinExpr operator-(LinExpr A, const LinExpr &B) { return A -= B; }
inline LinExpr operator*(double S, LinExpr A) { return A *= S; }
inline LinExpr operator*(LinExpr A, double S) { return A *= S; }

} // namespace ilp
} // namespace nova

#endif // ILP_EXPR_H
