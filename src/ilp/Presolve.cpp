//===- Presolve.cpp -------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Presolve.h"

#include <cassert>
#include <cmath>

using namespace nova;
using namespace nova::ilp;

namespace {
constexpr double Tol = 1e-9;

/// Working bounds for one variable during propagation.
struct WorkVar {
  double Lo, Up;
  bool Integer;
};

/// One ranged row `RowLo <= sum a_i x_i <= RowHi`.
struct WorkRow {
  std::vector<Term> Terms;
  double Lo, Hi;
  bool Dropped = false;
};

double minContrib(double Coeff, const WorkVar &V) {
  return Coeff > 0 ? Coeff * V.Lo : Coeff * V.Up;
}

double maxContrib(double Coeff, const WorkVar &V) {
  return Coeff > 0 ? Coeff * V.Up : Coeff * V.Lo;
}

} // namespace

PresolveResult ilp::presolve(const Model &M) {
  PresolveResult R;
  unsigned NumVars = M.numVars();

  std::vector<WorkVar> Vars(NumVars);
  for (unsigned I = 0; I != NumVars; ++I) {
    const Variable &V = M.var(VarId{I});
    Vars[I] = {V.Lower, V.Upper, V.Integer};
  }

  std::vector<WorkRow> Rows;
  Rows.reserve(M.numConstraints());
  for (const Constraint &C : M.constraints()) {
    WorkRow Row;
    Row.Terms = C.Terms;
    switch (C.Relation) {
    case Rel::LE:
      Row.Lo = -Inf;
      Row.Hi = C.Rhs;
      break;
    case Rel::GE:
      Row.Lo = C.Rhs;
      Row.Hi = Inf;
      break;
    case Rel::EQ:
      Row.Lo = Row.Hi = C.Rhs;
      break;
    }
    Rows.push_back(std::move(Row));
  }

  // Fixpoint propagation.
  bool Changed = true;
  unsigned Passes = 0;
  while (Changed && Passes++ < 50) {
    Changed = false;
    for (WorkRow &Row : Rows) {
      if (Row.Dropped)
        continue;
      double MinAct = 0.0, MaxAct = 0.0;
      for (const Term &T : Row.Terms) {
        MinAct += minContrib(T.Coeff, Vars[T.Var.Index]);
        MaxAct += maxContrib(T.Coeff, Vars[T.Var.Index]);
      }
      if (MinAct > Row.Hi + 1e-6 || MaxAct < Row.Lo - 1e-6) {
        R.Infeasible = true;
        return R;
      }
      if (MinAct >= Row.Lo - Tol && MaxAct <= Row.Hi + Tol) {
        Row.Dropped = true;
        Changed = true;
        continue;
      }
      // Forcing rows pin every variable at one bound.
      if (MinAct >= Row.Hi - Tol) {
        for (const Term &T : Row.Terms) {
          WorkVar &V = Vars[T.Var.Index];
          double Val = T.Coeff > 0 ? V.Lo : V.Up;
          if (V.Lo != Val || V.Up != Val) {
            V.Lo = V.Up = Val;
            Changed = true;
          }
        }
        Row.Dropped = true;
        continue;
      }
      if (MaxAct <= Row.Lo + Tol) {
        for (const Term &T : Row.Terms) {
          WorkVar &V = Vars[T.Var.Index];
          double Val = T.Coeff > 0 ? V.Up : V.Lo;
          if (V.Lo != Val || V.Up != Val) {
            V.Lo = V.Up = Val;
            Changed = true;
          }
        }
        Row.Dropped = true;
        continue;
      }
      // Per-variable bound tightening against both row bounds.
      for (const Term &T : Row.Terms) {
        WorkVar &V = Vars[T.Var.Index];
        if (V.Lo >= V.Up)
          continue;
        double RestMin = MinAct - minContrib(T.Coeff, V);
        double RestMax = MaxAct - maxContrib(T.Coeff, V);
        double NewLo = V.Lo, NewUp = V.Up;
        if (std::isfinite(Row.Hi)) {
          double Limit = (Row.Hi - RestMin) / T.Coeff;
          if (T.Coeff > 0)
            NewUp = std::min(NewUp, Limit);
          else
            NewLo = std::max(NewLo, Limit);
        }
        if (std::isfinite(Row.Lo)) {
          double Limit = (Row.Lo - RestMax) / T.Coeff;
          if (T.Coeff > 0)
            NewLo = std::max(NewLo, Limit);
          else
            NewUp = std::min(NewUp, Limit);
        }
        if (V.Integer) {
          NewLo = std::ceil(NewLo - 1e-7);
          NewUp = std::floor(NewUp + 1e-7);
        }
        if (NewLo > V.Lo + Tol || NewUp < V.Up - Tol) {
          if (NewLo > NewUp + 1e-6) {
            R.Infeasible = true;
            return R;
          }
          V.Lo = std::max(V.Lo, std::min(NewLo, NewUp));
          V.Up = std::min(V.Up, std::max(NewLo, NewUp));
          Changed = true;
        }
      }
    }
  }

  // Build the reduced model: fixed variables are substituted away.
  R.OrigToReduced.assign(NumVars, ~0u);
  R.FixedValue.assign(NumVars, 0.0);
  for (unsigned I = 0; I != NumVars; ++I) {
    const Variable &OV = M.var(VarId{I});
    if (Vars[I].Lo >= Vars[I].Up - Tol) {
      R.FixedValue[I] = Vars[I].Lo;
      R.FixedObjective += OV.Objective * Vars[I].Lo;
      ++R.NumFixed;
      continue;
    }
    VarId NewId =
        Vars[I].Integer
            ? R.Reduced.addBinary(OV.Name, OV.Objective)
            : R.Reduced.addContinuous(OV.Name, Vars[I].Lo, Vars[I].Up,
                                      OV.Objective);
    // Tightened integer bounds other than [0,1] still apply.
    R.Reduced.var(NewId).Lower = Vars[I].Lo;
    R.Reduced.var(NewId).Upper = Vars[I].Up;
    R.OrigToReduced[I] = NewId.Index;
  }

  for (const WorkRow &Row : Rows) {
    if (Row.Dropped) {
      ++R.NumDroppedConstraints;
      continue;
    }
    LinExpr E;
    double Shift = 0.0;
    bool AnyFree = false;
    for (const Term &T : Row.Terms) {
      uint32_t NewIdx = R.OrigToReduced[T.Var.Index];
      if (NewIdx == ~0u) {
        Shift += T.Coeff * R.FixedValue[T.Var.Index];
      } else {
        E.add(VarId{NewIdx}, T.Coeff);
        AnyFree = true;
      }
    }
    double Lo = Row.Lo - Shift, Hi = Row.Hi - Shift;
    if (!AnyFree) {
      if (0.0 > Hi + 1e-6 || 0.0 < Lo - 1e-6)
        R.Infeasible = true;
      continue;
    }
    if (std::isfinite(Lo) && std::isfinite(Hi) &&
        std::fabs(Lo - Hi) <= Tol) {
      R.Reduced.addConstraint(std::move(E), Rel::EQ, Hi);
    } else if (!std::isfinite(Lo)) {
      R.Reduced.addConstraint(std::move(E), Rel::LE, Hi);
    } else if (!std::isfinite(Hi)) {
      R.Reduced.addConstraint(std::move(E), Rel::GE, Lo);
    } else {
      LinExpr E2 = E;
      R.Reduced.addConstraint(std::move(E), Rel::LE, Hi);
      R.Reduced.addConstraint(std::move(E2), Rel::GE, Lo);
    }
  }
  return R;
}

std::vector<double>
PresolveResult::liftSolution(const std::vector<double> &ReducedX) const {
  std::vector<double> X(OrigToReduced.size());
  for (unsigned I = 0; I != OrigToReduced.size(); ++I)
    X[I] = OrigToReduced[I] == ~0u ? FixedValue[I] : ReducedX[OrigToReduced[I]];
  return X;
}

bool PresolveResult::reduceSolution(const std::vector<double> &OrigX,
                                    std::vector<double> &ReducedX) const {
  assert(OrigX.size() == OrigToReduced.size() && "dimension mismatch");
  ReducedX.assign(Reduced.numVars(), 0.0);
  for (unsigned I = 0; I != OrigToReduced.size(); ++I) {
    if (OrigToReduced[I] == ~0u) {
      if (std::fabs(OrigX[I] - FixedValue[I]) > 1e-6)
        return false;
    } else {
      ReducedX[OrigToReduced[I]] = OrigX[I];
    }
  }
  return true;
}

bool ilp::isFeasible(const Model &M, const std::vector<double> &X,
                     double FeasTol) {
  if (X.size() != M.numVars())
    return false;
  for (unsigned I = 0; I != M.numVars(); ++I) {
    const Variable &V = M.var(VarId{I});
    if (X[I] < V.Lower - FeasTol || X[I] > V.Upper + FeasTol)
      return false;
    if (V.Integer && std::fabs(X[I] - std::round(X[I])) > FeasTol)
      return false;
  }
  for (const Constraint &C : M.constraints()) {
    double Act = 0.0;
    for (const Term &T : C.Terms)
      Act += T.Coeff * X[T.Var.Index];
    switch (C.Relation) {
    case Rel::LE:
      if (Act > C.Rhs + FeasTol)
        return false;
      break;
    case Rel::GE:
      if (Act < C.Rhs - FeasTol)
        return false;
      break;
    case Rel::EQ:
      if (std::fabs(Act - C.Rhs) > FeasTol)
        return false;
      break;
    }
  }
  return true;
}

double ilp::objectiveValue(const Model &M, const std::vector<double> &X) {
  double Obj = M.objectiveConstant();
  for (unsigned I = 0; I != M.numVars(); ++I)
    Obj += M.var(VarId{I}).Objective * X[I];
  return Obj;
}
