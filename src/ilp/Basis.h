//===- Basis.h - Sparse LU basis factorization ------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse basis factorization for the revised simplex: an LU decomposition
/// of the basis matrix computed with Markowitz pivoting under threshold
/// partial pivoting, plus a product-form eta file of simplex pivots applied
/// since the last refactorization. FTRAN/BTRAN solve through the factors
/// and the eta file, exploiting sparse right-hand sides (hyper-sparsity):
/// a pivot step whose running value is exactly zero performs no arithmetic.
///
/// This replaces the dense m*m basis inverse the solver used to carry
/// (O(m^2) per iteration, O(m^3) per rebuild) with data structures whose
/// cost tracks the number of nonzeros actually present — the Forrest-Tomlin
/// / product-form machinery CPLEX-class codes are built on.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_BASIS_H
#define ILP_BASIS_H

#include "ilp/Expr.h"

#include <cstdint>
#include <vector>

namespace nova {
namespace ilp {

/// A sparse vector over a fixed-size index space: dense value array plus
/// the list of positions that may be nonzero. Scatter-style kernels append
/// to Idx through add()/set(), which keep the list duplicate-free via the
/// Mark byte-map; clear() is O(|Idx|), not O(m).
class IndexedVector {
public:
  void setup(unsigned M) {
    Val.assign(M, 0.0);
    Mark.assign(M, 0);
    Idx.clear();
  }

  void clear() {
    for (uint32_t I : Idx) {
      Val[I] = 0.0;
      Mark[I] = 0;
    }
    Idx.clear();
  }

  void add(uint32_t I, double V) {
    if (!Mark[I]) {
      Mark[I] = 1;
      Idx.push_back(I);
    }
    Val[I] += V;
  }

  void set(uint32_t I, double V) {
    if (!Mark[I]) {
      Mark[I] = 1;
      Idx.push_back(I);
    }
    Val[I] = V;
  }

  double operator[](uint32_t I) const { return Val[I]; }
  const std::vector<uint32_t> &indices() const { return Idx; }
  size_t size() const { return Val.size(); }

  /// Drops positions whose value fell below \p Tol in magnitude, so later
  /// scans over indices() skip cancelled entries.
  void compact(double Tol) {
    size_t Out = 0;
    for (uint32_t I : Idx) {
      if (Val[I] > Tol || Val[I] < -Tol) {
        Idx[Out++] = I;
      } else {
        Val[I] = 0.0;
        Mark[I] = 0;
      }
    }
    Idx.resize(Out);
  }

private:
  std::vector<double> Val;
  std::vector<uint8_t> Mark;
  std::vector<uint32_t> Idx;
};

/// Counters accumulated across the lifetime of one Basis (and surfaced all
/// the way up to BENCH_solver.json).
struct BasisStats {
  unsigned Factorizations = 0; ///< sparse LU rebuilds
  unsigned EtaPivots = 0;      ///< simplex pivots absorbed into the eta file
  unsigned LastFactorNnz = 0;  ///< nnz(L) + nnz(U) of the latest LU
  unsigned LastBasisNnz = 0;   ///< nnz(B) of the latest factorized basis
};

/// Sparse LU factorization of a simplex basis with a product-form eta
/// update file. Value semantics: copying a Basis clones the factors, which
/// is what the branch-and-bound worker cloning relies on.
class Basis {
public:
  /// Index-space size (rows == basis slots). Invalidates any factors.
  void setup(unsigned M);

  /// Factorizes the basis whose slot i holds column Cols[Basic[i]] of the
  /// constraint matrix. Markowitz pivot selection under threshold partial
  /// pivoting. On success returns an empty vector and clears the eta file.
  /// If the basis is (numerically) singular, returns the deficiency as
  /// (slot, row) pairs: slot positions that could not be pivoted, matched
  /// with the rows left uncovered; the factorization is left invalid and
  /// the caller is expected to patch Basic (e.g. with slack columns) and
  /// refactorize.
  std::vector<std::pair<uint32_t, uint32_t>>
  factorize(const std::vector<std::vector<Term>> &Cols,
            const std::vector<uint32_t> &Basic);

  bool valid() const { return Valid; }
  unsigned dimension() const { return M; }

  /// Solves B * x = b. On entry \p X holds b indexed by constraint row; on
  /// exit it holds x indexed by basis slot.
  void ftran(IndexedVector &X) const;

  /// Solves y * B = c (i.e. B^T y = c). On entry \p X holds c indexed by
  /// basis slot; on exit it holds y indexed by constraint row.
  void btran(IndexedVector &X) const;

  /// Absorbs a simplex pivot: the basis column in slot \p PivotSlot is
  /// replaced by the column whose FTRAN result is \p W (slot-indexed).
  /// Appends a product-form eta; factors are untouched.
  void update(const IndexedVector &W, uint32_t PivotSlot);

  /// True when the eta file has grown enough that refactorizing is cheaper
  /// than continuing to apply updates.
  bool shouldRefactorize() const;

  unsigned etaCount() const { return EtaHdr.size(); }
  const BasisStats &stats() const { return Stats; }

private:
  struct Ent {
    uint32_t Pos; ///< row or slot, depending on the owning structure
    double Val;
  };
  struct EtaHeader {
    uint32_t Slot;  ///< pivot slot of this eta
    uint32_t Start; ///< first off-pivot entry in EtaEnt
    double PivVal;  ///< W[Slot] at update time
  };

  unsigned M = 0;
  bool Valid = false;

  // Pivot sequence: at elimination step K the pivot sat at constraint row
  // PivRow[K], basis slot PivCol[K].
  std::vector<uint32_t> PivRow, PivCol;
  std::vector<double> UDiag; ///< pivot values by elimination step

  // L: per step K, the multipliers of the rows eliminated below the pivot;
  // (Pos = constraint row, Val = multiplier).
  std::vector<uint32_t> LStart;
  std::vector<Ent> LEnt;

  // U off-diagonals stored twice: by pivot row (Pos = column's elimination
  // step) for BTRAN's forward scatter, and by pivot column (Pos =
  // constraint row of the entry's pivot row) for FTRAN's backward scatter.
  std::vector<uint32_t> URowStart;
  std::vector<Ent> URowEnt;
  std::vector<uint32_t> UColStart;
  std::vector<Ent> UColEnt;

  // Product-form eta file, in creation order.
  std::vector<EtaHeader> EtaHdr;
  std::vector<Ent> EtaEnt;

  BasisStats Stats;

  // Scratch for ftran()'s slot-space result (mutable: solves are logically
  // const). Sized M by setup().
  mutable IndexedVector SlotScratch;
};

} // namespace ilp
} // namespace nova

#endif // ILP_BASIS_H
