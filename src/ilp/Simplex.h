//===- Simplex.h - Bounded-variable revised simplex -------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A primal revised simplex solver for linear programs with bounded
/// variables, used for the LP relaxations inside MipSolver and to obtain
/// the "root relaxation" numbers of the paper's Figure 7.
///
/// Design notes:
///  - One slack per row turns every constraint into an equality; slack
///    bounds encode <=, >= and ==.
///  - The basis inverse is kept as a dense column-major matrix updated by
///    eta pivots; it is rebuilt from scratch (Gauss-Jordan) only when
///    numerical drift is detected.
///  - Phase I uses the composite (artificial-free) method: the cost vector
///    is the subgradient of the sum of primal bound violations, recomputed
///    each iteration. This allows warm starts from any basis, which the
///    branch-and-bound driver relies on after bound changes.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_SIMPLEX_H
#define ILP_SIMPLEX_H

#include "ilp/Model.h"

#include <vector>

namespace nova {
namespace ilp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// Result of one LP solve.
struct LpResult {
  LpStatus Status = LpStatus::IterationLimit;
  double Objective = 0.0;
  unsigned Iterations = 0;
};

/// Primal bounded-variable revised simplex over the LP relaxation of a
/// Model. The instance keeps its basis across solve() calls, so bound
/// changes (branching) re-solve quickly.
class Simplex {
public:
  /// Builds the LP relaxation of \p M (integrality dropped).
  explicit Simplex(const Model &M);

  /// Overrides the bounds of structural variable \p Var for subsequent
  /// solves. Used by branch-and-bound; does not modify the Model.
  void setVarBounds(VarId Var, double Lower, double Upper);

  /// Current working bounds of a structural variable.
  double lowerBound(VarId Var) const { return Lower[Var.Index]; }
  double upperBound(VarId Var) const { return Upper[Var.Index]; }

  /// Solves from the current basis (cold start on first call).
  LpResult solve();

  /// Value of a structural variable in the last solved basis.
  double value(VarId Var) const;

  /// Values of all structural variables.
  std::vector<double> values() const;

  unsigned numRows() const { return M; }
  unsigned numCols() const { return NumStructural; }

  /// Total simplex iterations across all solve() calls.
  unsigned totalIterations() const { return TotalIters; }

private:
  enum class State : uint8_t { Basic, AtLower, AtUpper };

  // Problem data. Columns 0..NumStructural-1 are structural, the rest are
  // slacks (one per row).
  unsigned M = 0;             ///< number of rows
  unsigned N = 0;             ///< total columns incl. slacks
  unsigned NumStructural = 0; ///< structural column count
  std::vector<std::vector<Term>> Cols; ///< sparse columns (row, coeff)
  std::vector<double> Cost;            ///< phase-II objective
  std::vector<double> Lower, Upper;    ///< working bounds per column
  std::vector<double> Rhs;             ///< row right-hand sides

  // Basis state.
  bool HasBasis = false;
  std::vector<uint32_t> Basic;  ///< Basic[i] = column basic in row i
  std::vector<State> VarState;  ///< per-column state
  std::vector<uint32_t> RowOf;  ///< RowOf[col] = basic row, or ~0u
  std::vector<double> BasicVal; ///< value of basic var per row
  std::vector<double> Binv;     ///< dense column-major m*m basis inverse
  unsigned TotalIters = 0;

  // Scratch.
  std::vector<double> WorkY, WorkW;

  double nonbasicValue(unsigned Col) const;
  void installSlackBasis();
  void computeBasicValues();
  bool refactorize();
  void applyEta(const std::vector<double> &W, unsigned PivotRow);
  void priceInto(const std::vector<double> &CB, std::vector<double> &Y) const;
  double reducedCost(unsigned Col, const std::vector<double> &Y) const;
  void ftran(unsigned Col, std::vector<double> &W) const;
  double infeasibilitySum() const;

  /// One phase of the simplex loop. \p PhaseOne selects the composite
  /// infeasibility objective. Returns the terminating status.
  LpStatus iterate(bool PhaseOne, unsigned &Iters, unsigned IterLimit);
};

} // namespace ilp
} // namespace nova

#endif // ILP_SIMPLEX_H
