//===- Simplex.h - Bounded-variable revised simplex -------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A primal revised simplex solver for linear programs with bounded
/// variables, used for the LP relaxations inside MipSolver and to obtain
/// the "root relaxation" numbers of the paper's Figure 7.
///
/// Design notes:
///  - One slack per row turns every constraint into an equality; slack
///    bounds encode <=, >= and ==.
///  - The basis is represented by a sparse LU factorization (Markowitz
///    pivoting, threshold partial pivoting) plus a product-form eta file
///    of the pivots applied since the last refactorization (see Basis.h).
///    FTRAN/BTRAN run through the factors; nothing dense of size m*m is
///    ever formed.
///  - Pricing is Devex (Harris 1973): candidates are ranked by squared
///    reduced cost over a reference weight that approximates steepest
///    edge. Phase-II reduced costs are maintained incrementally from the
///    pivot row; phase I recomputes them each iteration because the
///    composite cost vector changes, but prices only the columns reached
///    by the (usually very sparse) infeasibility duals.
///  - Phase I uses the composite (artificial-free) method: the cost vector
///    is the subgradient of the sum of primal bound violations, recomputed
///    each iteration. This allows warm starts from any basis, which the
///    branch-and-bound driver relies on after bound changes.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_SIMPLEX_H
#define ILP_SIMPLEX_H

#include "ilp/Basis.h"
#include "ilp/Model.h"

#include <vector>

namespace nova {
namespace ilp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// Result of one LP solve.
struct LpResult {
  LpStatus Status = LpStatus::IterationLimit;
  double Objective = 0.0;
  unsigned Iterations = 0;
};

/// Engine counters accumulated across all solve() calls of one Simplex.
struct SimplexStats {
  unsigned Factorizations = 0; ///< sparse LU rebuilds
  unsigned EtaPivots = 0;      ///< pivots absorbed into the eta file
  unsigned BoundFlips = 0;     ///< iterations that only flipped a bound
  unsigned PricingPasses = 0;  ///< full reduced-cost recomputations
  unsigned DevexResets = 0;    ///< reference-framework restarts
  unsigned LastFactorNnz = 0;  ///< nnz(L)+nnz(U) of the latest LU
  unsigned LastBasisNnz = 0;   ///< nnz(B) of the latest factorized basis
};

/// Primal bounded-variable revised simplex over the LP relaxation of a
/// Model. The instance keeps its basis (and its factorization) across
/// solve() calls, so bound changes (branching) re-solve quickly.
class Simplex {
public:
  /// Builds the LP relaxation of \p M (integrality dropped).
  explicit Simplex(const Model &M);

  /// Overrides the bounds of structural variable \p Var for subsequent
  /// solves. Used by branch-and-bound; does not modify the Model.
  void setVarBounds(VarId Var, double Lower, double Upper);

  /// Current working bounds of a structural variable.
  double lowerBound(VarId Var) const { return Lower[Var.Index]; }
  double upperBound(VarId Var) const { return Upper[Var.Index]; }

  /// Solves from the current basis (cold start on first call).
  LpResult solve();

  /// Value of a structural variable in the last solved basis.
  double value(VarId Var) const;

  /// Values of all structural variables.
  std::vector<double> values() const;

  unsigned numRows() const { return M; }
  unsigned numCols() const { return NumStructural; }

  /// Total simplex iterations across all solve() calls.
  unsigned totalIterations() const { return TotalIters; }

  /// Engine counters (factorizations, eta pivots, pricing passes, ...).
  /// The factorization-side counters are merged in from the Basis.
  SimplexStats stats() const {
    SimplexStats S = Stats;
    const BasisStats &B = Fact.stats();
    S.Factorizations = B.Factorizations;
    S.EtaPivots = B.EtaPivots;
    S.LastFactorNnz = B.LastFactorNnz;
    S.LastBasisNnz = B.LastBasisNnz;
    return S;
  }

private:
  enum class State : uint8_t { Basic, AtLower, AtUpper };

  // Problem data. Columns 0..NumStructural-1 are structural, the rest are
  // slacks (one per row). Rows mirrors Cols row-wise (Term.Var.Index is a
  // *column* index there) so the pivot row can be formed by scanning only
  // the rows the BTRAN result touches.
  unsigned M = 0;             ///< number of rows
  unsigned N = 0;             ///< total columns incl. slacks
  unsigned NumStructural = 0; ///< structural column count
  std::vector<std::vector<Term>> Cols; ///< sparse columns (row, coeff)
  std::vector<std::vector<Term>> Rows; ///< sparse rows (col, coeff)
  std::vector<double> Cost;            ///< phase-II objective
  std::vector<double> Lower, Upper;    ///< working bounds per column
  std::vector<double> Rhs;             ///< row right-hand sides

  // Basis state.
  bool HasBasis = false;
  std::vector<uint32_t> Basic;  ///< Basic[i] = column basic in row i
  std::vector<State> VarState;  ///< per-column state
  std::vector<uint32_t> RowOf;  ///< RowOf[col] = basic row, or ~0u
  std::vector<double> BasicVal; ///< value of basic var per row
  Basis Fact;                   ///< sparse LU + eta file of the basis
  unsigned TotalIters = 0;
  SimplexStats Stats;

  // Pricing state.
  std::vector<double> Dj;     ///< maintained phase-II reduced costs
  bool DjValid = false;       ///< Dj matches the current basis
  std::vector<double> DevexW; ///< Devex reference weights per column

  // Scratch (sized in the constructor, reused across iterations).
  IndexedVector WorkCol;   ///< FTRAN result of the entering column
  IndexedVector WorkDual;  ///< BTRAN inputs/results (duals, pivot row rho)
  IndexedVector WorkPrice; ///< pivot-row / phase-I reduced-cost scatter
  IndexedVector WorkRhs;   ///< computeBasicValues right-hand side

  double nonbasicValue(unsigned Col) const;
  void installSlackBasis();
  void computeBasicValues();
  bool refactorize();
  void recomputeDj();
  double infeasibilitySum() const;
  /// Forms the pivot row (rho^T A over nonbasic columns) into WorkPrice
  /// and updates Devex weights and (when maintained) phase-II reduced
  /// costs. Called right before the basis changes.
  void pivotRowUpdate(unsigned Entering, unsigned Leaving, unsigned LeaveRow,
                      bool PhaseOne);

  /// One phase of the simplex loop. \p PhaseOne selects the composite
  /// infeasibility objective. Returns the terminating status.
  LpStatus iterate(bool PhaseOne, unsigned &Iters, unsigned IterLimit);
};

} // namespace ilp
} // namespace nova

#endif // ILP_SIMPLEX_H
