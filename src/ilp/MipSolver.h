//===- MipSolver.h - 0-1 branch & bound -------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Depth-first branch & bound over LP relaxations, playing the role CPLEX
/// played for the paper. Reports the root-relaxation and integer solve
/// statistics that Figure 7 tabulates.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_MIPSOLVER_H
#define ILP_MIPSOLVER_H

#include "ilp/Model.h"
#include "ilp/Presolve.h"
#include "ilp/Simplex.h"

#include <vector>

namespace nova {
namespace ilp {

enum class MipStatus {
  Optimal,    ///< proved within the gap tolerance
  Feasible,   ///< stopped at a limit with an incumbent in hand
  Infeasible, ///< no integer point exists
  NoSolution  ///< stopped at a limit with no incumbent
};

/// Knobs for the branch & bound search.
struct MipOptions {
  /// Relative optimality gap; the paper stopped "within 0.01% of optimal".
  double RelGap = 1e-4;
  unsigned NodeLimit = 2'000'000;
  double TimeLimitSeconds = 600.0;
  /// Number of LP re-solves the root diving heuristic may spend.
  unsigned DiveLpLimit = 400;
  bool EnablePresolve = true;
  /// Worker threads for the tree search. 1 = serial; 0 = one per hardware
  /// thread. Each worker owns a warm-started Simplex and a private DFS
  /// deque; idle workers steal open subtrees from the others.
  unsigned Threads = 1;
  /// Reproducible parallel search: nodes are expanded in fixed-order
  /// synchronized rounds, so node counts and the optimal objective are
  /// identical across runs at the same thread count (at some cost in
  /// worker idle time at the round barriers).
  bool Deterministic = false;
  /// Pseudocost branching (per-variable up/down degradation averages),
  /// falling back to most-fractional until degradations have been
  /// observed. Disable to force the legacy most-fractional rule.
  bool PseudocostBranching = true;
};

/// Per-worker search statistics (parallel solves only have >1 entry).
struct MipWorkerStats {
  unsigned Nodes = 0;        ///< nodes this worker expanded
  unsigned Steals = 0;       ///< nodes taken from another worker's deque
  unsigned LpIterations = 0; ///< simplex iterations on this worker's LP
};

/// Solve statistics mirroring the paper's Figure 7 columns.
struct MipStats {
  double RootLpSeconds = 0.0;
  double TotalSeconds = 0.0;
  /// Process CPU time over the whole solve; with T busy workers this
  /// approaches T * TotalSeconds, so CpuSeconds / TotalSeconds estimates
  /// effective parallelism.
  double CpuSeconds = 0.0;
  double RootObjective = 0.0;
  unsigned Nodes = 0;
  unsigned LpIterations = 0;
  unsigned PresolveFixedVars = 0;
  unsigned PresolveDroppedConstraints = 0;
  unsigned ReducedVars = 0;
  unsigned ReducedConstraints = 0;
  unsigned Threads = 1;  ///< workers the search actually used
  unsigned Steals = 0;   ///< total cross-worker subtree steals
  // LP-engine counters summed over all worker Simplex instances.
  unsigned Factorizations = 0; ///< sparse LU rebuilds
  unsigned EtaPivots = 0;      ///< pivots absorbed into eta files
  unsigned PricingPasses = 0;  ///< full reduced-cost recomputations
  std::vector<MipWorkerStats> Workers;
};

/// Result of a MIP solve; X is in the *original* model's variable space.
struct MipResult {
  MipStatus Status = MipStatus::NoSolution;
  double Objective = 0.0;
  std::vector<double> X;
  MipStats Stats;
};

/// Branch & bound solver for models whose integer variables are 0-1.
class MipSolver {
public:
  explicit MipSolver(const Model &M, MipOptions Opts = {});

  /// Seeds the search with a known feasible point (e.g. from a heuristic
  /// allocator). Ignored if infeasible for the model.
  void setIncumbent(const std::vector<double> &X);

  MipResult solve();

private:
  const Model &M;
  MipOptions Opts;
  std::vector<double> SeedX; // original space; empty if none
};

} // namespace ilp
} // namespace nova

#endif // ILP_MIPSOLVER_H
