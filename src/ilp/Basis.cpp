//===- Basis.cpp ----------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Basis.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace nova;
using namespace nova::ilp;

namespace {
/// Threshold partial pivoting: a pivot candidate must be at least this
/// fraction of the largest entry in its column. Smaller values favour
/// sparsity (Markowitz merit) over stability.
constexpr double Tau = 0.05;
/// Entries below this magnitude are numerically zero.
constexpr double AbsTol = 1e-11;
/// Fill-in below this magnitude is dropped during elimination.
constexpr double DropTol = 1e-12;
/// Pivot search stops after this many candidate-bearing columns have been
/// scored (Markowitz with limited search, a la Suhl & Suhl).
constexpr unsigned SearchLimit = 4;
/// Refactorize after this many eta pivots regardless of their size.
constexpr unsigned MaxEtas = 64;
} // namespace

void Basis::setup(unsigned Dim) {
  M = Dim;
  Valid = false;
  SlotScratch.setup(M);
  EtaHdr.clear();
  EtaEnt.clear();
}

std::vector<std::pair<uint32_t, uint32_t>>
Basis::factorize(const std::vector<std::vector<Term>> &Cols,
                 const std::vector<uint32_t> &Basic) {
  assert(Basic.size() == M && "basis size mismatch");
  Valid = false;
  PivRow.clear();
  PivCol.clear();
  UDiag.clear();
  LStart.assign(1, 0);
  LEnt.clear();
  URowStart.assign(1, 0);
  URowEnt.clear();
  UColStart.clear();
  UColEnt.clear();
  EtaHdr.clear();
  EtaEnt.clear();

  // Active submatrix, column-wise with exact live counts. RowCols is a
  // superset pattern: cancelled entries are removed lazily (a stale slot is
  // detected by the missing entry in ACol).
  std::vector<std::vector<Ent>> ACol(M);
  std::vector<std::vector<uint32_t>> RowCols(M);
  std::vector<uint32_t> RCount(M, 0), CCount(M, 0);
  std::vector<uint8_t> RowDone(M, 0), ColDone(M, 0);
  unsigned BasisNnz = 0;
  for (uint32_t C = 0; C != M; ++C) {
    for (const Term &T : Cols[Basic[C]]) {
      if (T.Coeff == 0.0)
        continue;
      ACol[C].push_back({T.Var.Index, T.Coeff});
      RowCols[T.Var.Index].push_back(C);
      ++RCount[T.Var.Index];
      ++BasisNnz;
    }
    CCount[C] = ACol[C].size();
  }
  Stats.LastBasisNnz = BasisNnz;

  // Columns bucketed by live count; entries go stale when a count changes
  // (the column is re-pushed into its new bucket) and are discarded when
  // the pivot search encounters them.
  std::vector<std::vector<uint32_t>> Buckets(M + 1);
  for (uint32_t C = 0; C != M; ++C)
    Buckets[CCount[C]].push_back(C);

  // Dense scratch for eliminating one column at a time.
  std::vector<int32_t> Where(M, -1);
  std::vector<uint32_t> Touched;

  // Drops a numerically empty column from the active matrix.
  auto RetireColumn = [&](uint32_t C) {
    ColDone[C] = 1;
    for (const Ent &E : ACol[C])
      --RCount[E.Pos];
    ACol[C].clear();
    CCount[C] = 0;
  };

  for (unsigned K = 0; K != M; ++K) {
    // --- Markowitz pivot search over the count buckets ---
    uint32_t BestR = ~0u, BestC = ~0u;
    double BestV = 0.0;
    uint64_t BestMerit = ~0ull;
    unsigned Scored = 0;
    for (unsigned Count = 1; Count <= M && BestMerit != 0; ++Count) {
      std::vector<uint32_t> &Bk = Buckets[Count];
      for (size_t I = 0; I < Bk.size() && BestMerit != 0;) {
        uint32_t C = Bk[I];
        if (ColDone[C] || CCount[C] != Count) {
          Bk[I] = Bk.back();
          Bk.pop_back();
          continue;
        }
        ++I;
        double ColMax = 0.0;
        for (const Ent &E : ACol[C])
          ColMax = std::max(ColMax, std::fabs(E.Val));
        if (ColMax < AbsTol) {
          RetireColumn(C);
          --I; // the swap-pop below would skip an entry otherwise
          Bk[I] = Bk.back();
          Bk.pop_back();
          continue;
        }
        bool Candidate = false;
        for (const Ent &E : ACol[C]) {
          double A = std::fabs(E.Val);
          if (A < Tau * ColMax || A < AbsTol || RowDone[E.Pos])
            continue;
          Candidate = true;
          uint64_t Merit =
              uint64_t(Count - 1) * uint64_t(RCount[E.Pos] - 1);
          if (Merit < BestMerit ||
              (Merit == BestMerit && A > std::fabs(BestV))) {
            BestMerit = Merit;
            BestR = E.Pos;
            BestC = C;
            BestV = E.Val;
          }
        }
        if (Candidate && ++Scored >= SearchLimit)
          break;
      }
      if (Scored >= SearchLimit)
        break;
    }
    if (BestC == ~0u)
      break; // singular: the remaining slots are reported below

    // --- elimination step K with pivot (BestR, BestC, BestV) ---
    const uint32_t Pr = BestR, Pc = BestC;
    const double Pv = BestV;
    RowDone[Pr] = 1;
    ColDone[Pc] = 1;
    PivRow.push_back(Pr);
    PivCol.push_back(Pc);
    UDiag.push_back(Pv);

    for (const Ent &E : ACol[Pc])
      if (E.Pos != Pr) {
        LEnt.push_back({E.Pos, E.Val / Pv});
        --RCount[E.Pos];
      }
    LStart.push_back(LEnt.size());
    const size_t L0 = LStart[K], L1 = LStart[K + 1];

    for (uint32_t C : RowCols[Pr]) {
      if (C == Pc || ColDone[C])
        continue;
      std::vector<Ent> &Col = ACol[C];
      // Find and remove the pivot row's entry; a miss means the entry
      // cancelled earlier and this RowCols slot is stale.
      double Upv = 0.0;
      bool Found = false;
      for (size_t I = 0; I != Col.size(); ++I)
        if (Col[I].Pos == Pr) {
          Upv = Col[I].Val;
          Col[I] = Col.back();
          Col.pop_back();
          Found = true;
          break;
        }
      if (!Found)
        continue;
      URowEnt.push_back({C, Upv});

      Touched.clear();
      for (size_t I = 0; I != Col.size(); ++I) {
        Where[Col[I].Pos] = static_cast<int32_t>(I);
        Touched.push_back(Col[I].Pos);
      }
      for (size_t I = L0; I != L1; ++I) {
        const Ent &Le = LEnt[I];
        double Delta = -Le.Val * Upv;
        if (Where[Le.Pos] >= 0) {
          Col[Where[Le.Pos]].Val += Delta;
        } else {
          Col.push_back({Le.Pos, Delta});
          RowCols[Le.Pos].push_back(C);
          ++RCount[Le.Pos];
          Where[Le.Pos] = static_cast<int32_t>(Col.size() - 1);
          Touched.push_back(Le.Pos);
        }
      }
      // Compact cancellations and refresh the live counts.
      size_t Out = 0;
      for (size_t I = 0; I != Col.size(); ++I) {
        if (std::fabs(Col[I].Val) >= DropTol)
          Col[Out++] = Col[I];
        else
          --RCount[Col[I].Pos];
      }
      Col.resize(Out);
      for (uint32_t R : Touched)
        Where[R] = -1;
      if (CCount[C] != Col.size()) {
        CCount[C] = Col.size();
        Buckets[CCount[C]].push_back(C);
      }
    }
    URowStart.push_back(URowEnt.size());
    RowCols[Pr].clear();
    ACol[Pc].clear();
  }

  if (PivRow.size() != M) {
    // Singular: pair the unpivoted slots with the uncovered rows.
    std::vector<uint32_t> FreeSlots, FreeRows;
    for (uint32_t C = 0; C != M; ++C)
      if (std::find(PivCol.begin(), PivCol.end(), C) == PivCol.end())
        FreeSlots.push_back(C);
    for (uint32_t R = 0; R != M; ++R)
      if (!RowDone[R])
        FreeRows.push_back(R);
    assert(FreeSlots.size() == FreeRows.size() && "deficiency mismatch");
    std::vector<std::pair<uint32_t, uint32_t>> Deficient;
    for (size_t I = 0; I != FreeSlots.size(); ++I)
      Deficient.push_back({FreeSlots[I], FreeRows[I]});
    return Deficient;
  }

  // Build U's column-wise mirror (used by FTRAN's backward scatter) from
  // the row-wise entries recorded during elimination.
  std::vector<uint32_t> StepOfSlot(M);
  for (unsigned K = 0; K != M; ++K)
    StepOfSlot[PivCol[K]] = K;
  std::vector<uint32_t> ColCounts(M, 0);
  for (const Ent &E : URowEnt)
    ++ColCounts[StepOfSlot[E.Pos]];
  UColStart.assign(M + 1, 0);
  for (unsigned K = 0; K != M; ++K)
    UColStart[K + 1] = UColStart[K] + ColCounts[K];
  UColEnt.resize(URowEnt.size());
  std::vector<uint32_t> Fill(UColStart.begin(), UColStart.end() - 1);
  for (unsigned K = 0; K != M; ++K)
    for (uint32_t I = URowStart[K]; I != URowStart[K + 1]; ++I) {
      uint32_t J = StepOfSlot[URowEnt[I].Pos];
      UColEnt[Fill[J]++] = {PivRow[K], URowEnt[I].Val};
    }

  Valid = true;
  ++Stats.Factorizations;
  Stats.LastFactorNnz =
      static_cast<unsigned>(LEnt.size() + URowEnt.size() + M);
  return {};
}

void Basis::ftran(IndexedVector &X) const {
  assert(Valid && "no factorization");
  // L-solve in place on the row-space input.
  for (unsigned K = 0; K != M; ++K) {
    double T = X[PivRow[K]];
    if (T == 0.0)
      continue;
    for (uint32_t I = LStart[K]; I != LStart[K + 1]; ++I)
      X.add(LEnt[I].Pos, -LEnt[I].Val * T);
  }
  // U-solve, consuming the row-space vector into the slot-space result. A
  // zero running value contributes nothing, so fully sparse inputs touch
  // only the steps their dependency closure reaches (hyper-sparsity).
  SlotScratch.clear();
  for (unsigned K = M; K-- > 0;) {
    double T = X[PivRow[K]];
    if (T == 0.0)
      continue;
    double Xv = T / UDiag[K];
    SlotScratch.set(PivCol[K], Xv);
    for (uint32_t I = UColStart[K]; I != UColStart[K + 1]; ++I)
      X.add(UColEnt[I].Pos, -UColEnt[I].Val * Xv);
  }
  std::swap(X, SlotScratch);
  SlotScratch.clear();
  // Product-form etas, oldest first, in slot space.
  for (const EtaHeader &H : EtaHdr) {
    double T = X[H.Slot];
    if (T == 0.0)
      continue;
    T /= H.PivVal;
    X.set(H.Slot, T);
    uint32_t End = (&H == &EtaHdr.back()) ? EtaEnt.size()
                                          : (&H)[1].Start;
    for (uint32_t I = H.Start; I != End; ++I)
      X.add(EtaEnt[I].Pos, -EtaEnt[I].Val * T);
  }
}

void Basis::btran(IndexedVector &X) const {
  assert(Valid && "no factorization");
  // Etas newest first, in slot space: c_r <- (c_r - sum W_i c_i) / W_r.
  for (size_t E = EtaHdr.size(); E-- > 0;) {
    const EtaHeader &H = EtaHdr[E];
    uint32_t End =
        (E + 1 == EtaHdr.size()) ? EtaEnt.size() : EtaHdr[E + 1].Start;
    double S = X[H.Slot];
    for (uint32_t I = H.Start; I != End; ++I)
      S -= EtaEnt[I].Val * X[EtaEnt[I].Pos];
    X.set(H.Slot, S / H.PivVal);
  }
  // U^T-solve: forward over the pivot sequence, consuming the slot-space
  // vector into the row-space result.
  SlotScratch.clear();
  for (unsigned K = 0; K != M; ++K) {
    double T = X[PivCol[K]];
    if (T == 0.0)
      continue;
    double W = T / UDiag[K];
    SlotScratch.set(PivRow[K], W);
    for (uint32_t I = URowStart[K]; I != URowStart[K + 1]; ++I)
      X.add(URowEnt[I].Pos, -URowEnt[I].Val * W);
  }
  std::swap(X, SlotScratch);
  SlotScratch.clear();
  // L^T-solve in place on the row-space vector (gather form).
  for (unsigned K = M; K-- > 0;) {
    double S = 0.0;
    for (uint32_t I = LStart[K]; I != LStart[K + 1]; ++I)
      S += LEnt[I].Val * X[LEnt[I].Pos];
    if (S != 0.0)
      X.add(PivRow[K], -S);
  }
}

void Basis::update(const IndexedVector &W, uint32_t PivotSlot) {
  assert(Valid && "no factorization");
  double Pv = W[PivotSlot];
  assert(Pv != 0.0 && "zero pivot in eta update");
  if (FaultInjector::armed() &&
      FaultInjector::instance().shouldFire(FaultKind::EtaDrift)) {
    // Corrupt this eta's pivot so FTRAN/BTRAN through the file silently
    // drift; Simplex's post-optimal primal-residual check must catch it
    // and refactorize from scratch.
    Pv *= 1.0 + FaultInjector::instance().magnitude(FaultKind::EtaDrift, 1e-3);
  }
  EtaHdr.push_back({PivotSlot, static_cast<uint32_t>(EtaEnt.size()), Pv});
  for (uint32_t I : W.indices())
    if (I != PivotSlot && W[I] != 0.0)
      EtaEnt.push_back({I, W[I]});
  ++Stats.EtaPivots;
}

bool Basis::shouldRefactorize() const {
  if (EtaHdr.size() >= MaxEtas)
    return true;
  // Refactorize early if the eta file dwarfs the factors themselves.
  size_t FactorNnz = std::max<size_t>(Stats.LastFactorNnz, 512);
  return EtaEnt.size() > 2 * FactorNnz;
}
