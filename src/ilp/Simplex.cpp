//===- Simplex.cpp --------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Simplex.h"

#include "support/Debug.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace nova;
using namespace nova::ilp;

namespace {
constexpr double FeasTol = 1e-7;
constexpr double CostTol = 1e-7;
constexpr double PivotTol = 1e-9;
/// Entries of a transformed column below this magnitude are treated as
/// structurally zero (cancellation noise from the sparse solves).
constexpr double ZeroTol = 1e-12;
/// Consecutive degenerate pivots before switching to Bland's rule.
constexpr unsigned DegenerateLimit = 400;
/// Recompute basic values from scratch this often to bound drift.
constexpr unsigned RefreshPeriod = 512;
/// Devex weights above this trigger a reference-framework reset.
constexpr double DevexResetLimit = 1e8;
} // namespace

Simplex::Simplex(const Model &Mdl) {
  M = Mdl.numConstraints();
  NumStructural = Mdl.numVars();
  N = NumStructural + M;
  Cols.resize(N);
  Cost.assign(N, 0.0);
  Lower.assign(N, 0.0);
  Upper.assign(N, 0.0);
  Rhs.assign(M, 0.0);

  for (unsigned J = 0; J != NumStructural; ++J) {
    const Variable &V = Mdl.var(VarId{J});
    Cost[J] = V.Objective;
    Lower[J] = V.Lower;
    Upper[J] = V.Upper;
  }
  for (unsigned I = 0; I != M; ++I) {
    const Constraint &C = Mdl.constraints()[I];
    for (const Term &T : C.Terms)
      Cols[T.Var.Index].push_back({VarId{I}, T.Coeff});
    Rhs[I] = C.Rhs;
    unsigned SlackCol = NumStructural + I;
    Cols[SlackCol].push_back({VarId{I}, 1.0});
    switch (C.Relation) {
    case Rel::LE:
      Lower[SlackCol] = 0.0;
      Upper[SlackCol] = Inf;
      break;
    case Rel::GE:
      Lower[SlackCol] = -Inf;
      Upper[SlackCol] = 0.0;
      break;
    case Rel::EQ:
      Lower[SlackCol] = Upper[SlackCol] = 0.0;
      break;
    }
  }
  // Row-wise mirror of the column store: lets the pivot-row pass touch
  // only the rows the BTRAN result actually reaches.
  Rows.resize(M);
  for (unsigned J = 0; J != N; ++J)
    for (const Term &T : Cols[J])
      Rows[T.Var.Index].push_back({VarId{J}, T.Coeff});

  Fact.setup(M);
  Dj.assign(N, 0.0);
  DevexW.assign(N, 1.0);
  WorkCol.setup(M);
  WorkDual.setup(M);
  WorkRhs.setup(M);
  WorkPrice.setup(N);
}

void Simplex::setVarBounds(VarId Var, double NewLower, double NewUpper) {
  assert(Var.Index < NumStructural && "not a structural variable");
  assert(NewLower <= NewUpper && "inverted bounds");
  Lower[Var.Index] = NewLower;
  Upper[Var.Index] = NewUpper;
  // A nonbasic variable must sit on a bound that still exists; snap it to
  // the nearest finite bound so the next solve starts consistent.
  if (HasBasis && RowOf[Var.Index] == ~0u) {
    if (VarState[Var.Index] == State::AtLower && !std::isfinite(NewLower))
      VarState[Var.Index] = State::AtUpper;
    if (VarState[Var.Index] == State::AtUpper && !std::isfinite(NewUpper))
      VarState[Var.Index] = State::AtLower;
  }
}

double Simplex::nonbasicValue(unsigned Col) const {
  if (VarState[Col] == State::AtUpper)
    return std::isfinite(Upper[Col]) ? Upper[Col] : 0.0;
  return std::isfinite(Lower[Col]) ? Lower[Col] : 0.0;
}

void Simplex::installSlackBasis() {
  Basic.resize(M);
  RowOf.assign(N, ~0u);
  VarState.assign(N, State::AtLower);
  for (unsigned J = 0; J != NumStructural; ++J)
    if (!std::isfinite(Lower[J]) && std::isfinite(Upper[J]))
      VarState[J] = State::AtUpper;
  for (unsigned I = 0; I != M; ++I) {
    unsigned SlackCol = NumStructural + I;
    Basic[I] = SlackCol;
    RowOf[SlackCol] = I;
    VarState[SlackCol] = State::Basic;
  }
  BasicVal.assign(M, 0.0);
  refactorize(); // the slack basis is the identity: always succeeds
  HasBasis = true;
}

void Simplex::computeBasicValues() {
  // Solve B * xB = Rhs - sum over nonbasic columns of A_j * x_j.
  WorkRhs.clear();
  for (unsigned I = 0; I != M; ++I)
    if (Rhs[I] != 0.0)
      WorkRhs.set(I, Rhs[I]);
  for (unsigned J = 0; J != N; ++J) {
    if (RowOf[J] != ~0u)
      continue;
    double X = nonbasicValue(J);
    if (X == 0.0)
      continue;
    for (const Term &T : Cols[J])
      WorkRhs.add(T.Var.Index, -T.Coeff * X);
  }
  Fact.ftran(WorkRhs);
  for (unsigned I = 0; I != M; ++I)
    BasicVal[I] = WorkRhs[I];
  WorkRhs.clear();
}

bool Simplex::refactorize() {
  auto Deficient = Fact.factorize(Cols, Basic);
  if (FaultInjector::armed() && Deficient.empty() &&
      FaultInjector::instance().shouldFire(FaultKind::SingularBasis)) {
    // Fabricate a singularity: report a slot holding a structural column
    // as unpivotable, paired with a row whose slack is nonbasic so the
    // repair below can patch it in. The repair then refactorizes for
    // real, exercising the same path a genuinely singular basis takes.
    for (uint32_t Slot = 0; Slot != M; ++Slot)
      if (Basic[Slot] < NumStructural && RowOf[NumStructural + Slot] == ~0u) {
        Deficient.push_back({Slot, Slot});
        break;
      }
  }
  // A numerically singular basis is repaired by swapping the slack of each
  // uncovered row into the slot that could not be pivoted; the displaced
  // variable is parked on a bound. The repaired basis contains fresh unit
  // columns, so a couple of rounds always converge (or the repair is
  // impossible and the caller gives up).
  unsigned Attempts = 0;
  while (!Deficient.empty() && Attempts++ < 3) {
    for (auto [Slot, Row] : Deficient) {
      unsigned Displaced = Basic[Slot];
      unsigned Slack = NumStructural + Row;
      if (RowOf[Slack] != ~0u)
        return false; // slack basic elsewhere: cannot repair
      RowOf[Displaced] = ~0u;
      VarState[Displaced] =
          std::isfinite(Lower[Displaced]) || !std::isfinite(Upper[Displaced])
              ? State::AtLower
              : State::AtUpper;
      Basic[Slot] = Slack;
      RowOf[Slack] = Slot;
      VarState[Slack] = State::Basic;
    }
    Deficient = Fact.factorize(Cols, Basic);
  }
  if (!Deficient.empty())
    return false;
  DjValid = false;
  computeBasicValues();
  return true;
}

void Simplex::recomputeDj() {
  // y = cB * Binv via BTRAN, then one pass over the columns.
  WorkDual.clear();
  for (unsigned I = 0; I != M; ++I) {
    double C = Cost[Basic[I]];
    if (C != 0.0)
      WorkDual.set(I, C);
  }
  Fact.btran(WorkDual);
  for (unsigned J = 0; J != N; ++J) {
    double D = Cost[J];
    for (const Term &T : Cols[J])
      D -= WorkDual[T.Var.Index] * T.Coeff;
    Dj[J] = D;
  }
  WorkDual.clear();
  DjValid = true;
  ++Stats.PricingPasses;
}

double Simplex::infeasibilitySum() const {
  double Sum = 0.0;
  for (unsigned I = 0; I != M; ++I) {
    unsigned B = Basic[I];
    if (BasicVal[I] < Lower[B] - FeasTol)
      Sum += Lower[B] - BasicVal[I];
    else if (BasicVal[I] > Upper[B] + FeasTol)
      Sum += BasicVal[I] - Upper[B];
  }
  return Sum;
}

void Simplex::pivotRowUpdate(unsigned Entering, unsigned Leaving,
                             unsigned LeaveRow, bool PhaseOne) {
  // rho = e_r * Binv of the outgoing basis (this pivot's eta is pushed
  // after this call), then alpha_r = rho * A over the rows rho touches.
  WorkDual.clear();
  WorkDual.set(LeaveRow, 1.0);
  Fact.btran(WorkDual);
  WorkPrice.clear();
  for (uint32_t R : WorkDual.indices()) {
    double Y = WorkDual[R];
    if (Y == 0.0)
      continue;
    for (const Term &T : Rows[R])
      WorkPrice.add(T.Var.Index, Y * T.Coeff);
  }
  double Aq = WorkCol[LeaveRow]; // pivot element alpha_rq
  double Wq = DevexW[Entering];
  bool TrackDj = DjValid && !PhaseOne;
  double ThetaD = TrackDj ? Dj[Entering] / Aq : 0.0;
  double MaxW = 1.0;
  for (uint32_t J : WorkPrice.indices()) {
    if (RowOf[J] != ~0u)
      continue; // the entering column is basic by now
    double A = WorkPrice[J];
    if (A == 0.0)
      continue;
    if (TrackDj)
      Dj[J] -= ThetaD * A;
    double Ratio = A / Aq;
    double Cand = Ratio * Ratio * Wq;
    if (Cand > DevexW[J])
      DevexW[J] = Cand;
    if (DevexW[J] > MaxW)
      MaxW = DevexW[J];
  }
  if (TrackDj)
    Dj[Entering] = 0.0;
  double WLeave = std::max(Wq / (Aq * Aq), 1.0);
  DevexW[Leaving] = WLeave;
  if (WLeave > MaxW)
    MaxW = WLeave;
  if (MaxW > DevexResetLimit) {
    // Reference framework reset: restart Devex from the current basis.
    std::fill(DevexW.begin(), DevexW.end(), 1.0);
    ++Stats.DevexResets;
  }
}

LpStatus Simplex::iterate(bool PhaseOne, unsigned &Iters, unsigned IterLimit) {
  unsigned DegenerateRun = 0;
  bool Bland = false;
  unsigned SinceRefresh = 0;
  if (!PhaseOne)
    DjValid = false; // the phase's cost vector just changed

  while (true) {
    if (Iters >= IterLimit)
      return LpStatus::IterationLimit;
    if (Fact.shouldRefactorize()) {
      if (!refactorize())
        return LpStatus::IterationLimit; // numerical trouble: caller bails
      SinceRefresh = 0;
    }
    if (++SinceRefresh >= RefreshPeriod) {
      SinceRefresh = 0;
      computeBasicValues();
    }

    // --- Pricing: pick the entering column ---
    unsigned Entering = ~0u;
    int EnterDir = 0; // +1 entering increases, -1 decreases
    bool FreshDj = false;

    if (PhaseOne) {
      // Composite objective: the cost on basic variables is the
      // subgradient of the infeasibility sum, so the duals are the BTRAN
      // of a (usually very sparse) +-1 vector and only the columns
      // reached by those rows can have a nonzero reduced cost.
      WorkDual.clear();
      double Infeas = 0.0;
      for (unsigned I = 0; I != M; ++I) {
        unsigned B = Basic[I];
        if (BasicVal[I] < Lower[B] - FeasTol) {
          WorkDual.set(I, -1.0);
          Infeas += Lower[B] - BasicVal[I];
        } else if (BasicVal[I] > Upper[B] + FeasTol) {
          WorkDual.set(I, 1.0);
          Infeas += BasicVal[I] - Upper[B];
        }
      }
      if (Infeas <= FeasTol)
        return LpStatus::Optimal; // Feasible; caller proceeds to phase II.
      Fact.btran(WorkDual);
      WorkPrice.clear();
      for (uint32_t R : WorkDual.indices()) {
        double Y = WorkDual[R];
        if (Y == 0.0)
          continue;
        for (const Term &T : Rows[R])
          WorkPrice.add(T.Var.Index, -Y * T.Coeff);
      }
      double BestScore = 0.0;
      for (uint32_t J : WorkPrice.indices()) {
        if (RowOf[J] != ~0u || Lower[J] == Upper[J])
          continue;
        double D = WorkPrice[J];
        double Mag;
        int Dir;
        if (VarState[J] == State::AtLower && D < -CostTol) {
          Mag = -D;
          Dir = 1;
        } else if (VarState[J] == State::AtUpper && D > CostTol) {
          Mag = D;
          Dir = -1;
        } else {
          continue;
        }
        if (Bland) {
          if (Entering == ~0u || J < Entering) {
            Entering = J;
            EnterDir = Dir;
          }
          continue;
        }
        double Score = Mag * Mag / DevexW[J];
        if (Score > BestScore) {
          BestScore = Score;
          Entering = J;
          EnterDir = Dir;
        }
      }
      if (Entering == ~0u)
        return LpStatus::Infeasible; // Still infeasible, no improving column.
    } else {
      if (!DjValid) {
        recomputeDj();
        FreshDj = true;
      }
      double BestScore = 0.0;
      for (unsigned J = 0; J != N; ++J) {
        if (RowOf[J] != ~0u || Lower[J] == Upper[J])
          continue;
        double D = Dj[J];
        double Mag;
        int Dir;
        if (VarState[J] == State::AtLower && D < -CostTol) {
          Mag = -D;
          Dir = 1;
        } else if (VarState[J] == State::AtUpper && D > CostTol) {
          Mag = D;
          Dir = -1;
        } else {
          continue;
        }
        if (Bland) {
          Entering = J;
          EnterDir = Dir;
          break;
        }
        double Score = Mag * Mag / DevexW[J];
        if (Score > BestScore) {
          BestScore = Score;
          Entering = J;
          EnterDir = Dir;
        }
      }
      if (Entering == ~0u) {
        // The maintained reduced costs drift; only a fresh pricing pass
        // may declare optimality.
        if (FreshDj)
          return LpStatus::Optimal;
        DjValid = false;
        continue;
      }
    }

    // --- FTRAN the entering column ---
    WorkCol.clear();
    for (const Term &T : Cols[Entering])
      WorkCol.add(T.Var.Index, T.Coeff);
    Fact.ftran(WorkCol);
    WorkCol.compact(ZeroTol);

    // --- Ratio test over the nonzeros of the transformed column. The
    // entering variable moves by Sign*T, T >= 0; basic value i changes by
    // -Sign*W[i]*T. ---
    double Sign = EnterDir;
    double LimitT = Inf;
    unsigned LeaveRow = ~0u;
    State LeaveState = State::AtLower;
    double BestPivot = 0.0;
    for (uint32_t I : WorkCol.indices()) {
      double W = WorkCol[I];
      double Delta = Sign * W;
      if (std::fabs(Delta) <= PivotTol)
        continue;
      unsigned B = Basic[I];
      double T = Inf;
      State HitState = State::AtLower;
      bool BelowLower = BasicVal[I] < Lower[B] - FeasTol;
      bool AboveUpper = BasicVal[I] > Upper[B] + FeasTol;
      if (PhaseOne && BelowLower) {
        // Infeasible below: blocks only when climbing back up to Lower.
        if (Delta < 0 && std::isfinite(Lower[B])) {
          T = (BasicVal[I] - Lower[B]) / Delta;
          HitState = State::AtLower;
        }
      } else if (PhaseOne && AboveUpper) {
        if (Delta > 0 && std::isfinite(Upper[B])) {
          T = (BasicVal[I] - Upper[B]) / Delta;
          HitState = State::AtUpper;
        }
      } else if (Delta > 0) {
        // Basic value decreasing toward its lower bound.
        if (std::isfinite(Lower[B])) {
          T = (BasicVal[I] - Lower[B]) / Delta;
          HitState = State::AtLower;
        }
      } else {
        // Basic value increasing toward its upper bound.
        if (std::isfinite(Upper[B])) {
          T = (BasicVal[I] - Upper[B]) / Delta;
          HitState = State::AtUpper;
        }
      }
      if (!std::isfinite(T))
        continue;
      T = std::max(T, 0.0);
      bool Better = T < LimitT - FeasTol ||
                    (T < LimitT + FeasTol && std::fabs(W) > BestPivot);
      if (Bland)
        Better = T < LimitT - 1e-12 ||
                 (LeaveRow != ~0u && T <= LimitT && Basic[I] < Basic[LeaveRow]);
      if (Better) {
        LimitT = T;
        LeaveRow = I;
        LeaveState = HitState;
        BestPivot = std::fabs(W);
      }
    }
    // Bound flip limit for the entering variable itself.
    double FlipT = Inf;
    if (std::isfinite(Lower[Entering]) && std::isfinite(Upper[Entering]))
      FlipT = Upper[Entering] - Lower[Entering];
    if (FlipT < LimitT) {
      // Flip: no basis change, reduced costs unchanged.
      double T = FlipT;
      for (uint32_t I : WorkCol.indices())
        BasicVal[I] -= Sign * WorkCol[I] * T;
      VarState[Entering] = VarState[Entering] == State::AtLower
                               ? State::AtUpper
                               : State::AtLower;
      ++Iters;
      ++TotalIters;
      ++Stats.BoundFlips;
      DegenerateRun = 0;
      Bland = false;
      continue;
    }
    if (LeaveRow == ~0u)
      return PhaseOne ? LpStatus::Infeasible : LpStatus::Unbounded;

    // --- Pivot ---
    double T = LimitT;
    for (uint32_t I : WorkCol.indices())
      BasicVal[I] -= Sign * WorkCol[I] * T;
    double EnterVal = nonbasicValue(Entering) + Sign * T;
    unsigned Leaving = Basic[LeaveRow];
    VarState[Leaving] = LeaveState;
    RowOf[Leaving] = ~0u;
    Basic[LeaveRow] = Entering;
    RowOf[Entering] = LeaveRow;
    VarState[Entering] = State::Basic;
    BasicVal[LeaveRow] = EnterVal;

    // Pivot-row pass (Devex weights + maintained reduced costs), then
    // absorb the pivot into the eta file.
    pivotRowUpdate(Entering, Leaving, LeaveRow, PhaseOne);
    Fact.update(WorkCol, LeaveRow);

    ++Iters;
    ++TotalIters;
    if (T <= FeasTol) {
      if (++DegenerateRun >= DegenerateLimit)
        Bland = true;
    } else {
      DegenerateRun = 0;
      Bland = false;
    }
  }
}

LpResult Simplex::solve() {
  LpResult Result;
  if (FaultInjector::armed() &&
      FaultInjector::instance().shouldFire(FaultKind::LpInfeasible)) {
    // Report spurious infeasibility without touching the basis: the MIP
    // layer prunes (or, at the root, declares the model infeasible) and
    // the allocator's degradation ladder must take over.
    Result.Status = LpStatus::Infeasible;
    return Result;
  }
  if (!HasBasis) {
    installSlackBasis();
  } else if (!Fact.valid()) {
    if (!refactorize()) {
      Result.Status = LpStatus::Infeasible;
      return Result;
    }
  } else {
    computeBasicValues();
  }
  // Devex restarts from the warm basis each solve; branching changes the
  // geometry enough that stale weights are not worth carrying over.
  std::fill(DevexW.begin(), DevexW.end(), 1.0);
  DjValid = false;

  unsigned IterLimit = 20000 + 50 * (M + N);
  unsigned Iters = 0;

  if (infeasibilitySum() > FeasTol) {
    LpStatus S = iterate(/*PhaseOne=*/true, Iters, IterLimit);
    if (S != LpStatus::Optimal) {
      // Retry once from a fresh factorization in case of numerical drift.
      if (S == LpStatus::Infeasible && refactorize() &&
          infeasibilitySum() > FeasTol)
        S = iterate(/*PhaseOne=*/true, Iters, IterLimit);
      if (S != LpStatus::Optimal || infeasibilitySum() > FeasTol) {
        Result.Status = S == LpStatus::IterationLimit ? S : LpStatus::Infeasible;
        Result.Iterations = Iters;
        return Result;
      }
    }
  }

  LpStatus S = iterate(/*PhaseOne=*/false, Iters, IterLimit);
  Result.Status = S;
  Result.Iterations = Iters;
  if (S == LpStatus::Optimal) {
    // Phase II can drift a basic variable slightly out of bounds; verify
    // and clean up once with a fresh factorization if needed.
    computeBasicValues();
    if (infeasibilitySum() > 1e-5) {
      refactorize();
      if (infeasibilitySum() > FeasTol &&
          iterate(/*PhaseOne=*/true, Iters, IterLimit) == LpStatus::Optimal)
        iterate(/*PhaseOne=*/false, Iters, IterLimit);
      Result.Iterations = Iters;
    }
    double Obj = 0.0;
    for (unsigned I = 0; I != M; ++I)
      Obj += Cost[Basic[I]] * BasicVal[I];
    for (unsigned J = 0; J != N; ++J)
      if (RowOf[J] == ~0u && Cost[J] != 0.0)
        Obj += Cost[J] * nonbasicValue(J);
    Result.Objective = Obj;
  }
  return Result;
}

double Simplex::value(VarId Var) const {
  assert(Var.Index < NumStructural && "not a structural variable");
  assert(HasBasis && "no solve yet");
  unsigned Row = RowOf[Var.Index];
  return Row != ~0u ? BasicVal[Row] : nonbasicValue(Var.Index);
}

std::vector<double> Simplex::values() const {
  std::vector<double> X(NumStructural);
  for (unsigned J = 0; J != NumStructural; ++J)
    X[J] = value(VarId{J});
  return X;
}
