//===- MipSolver.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Parallel branch & bound. The search tree is explored by a pool of
// workers (support/ThreadPool); each worker owns a warm-started Simplex
// cloned from the solved root relaxation plus a private DFS deque. Open
// subproblems are captured as bound-change trails (the 0/1 fixings from
// the root), so any worker can adopt any node by replaying the trail onto
// its own LP — that is what makes subtrees stealable. The incumbent is
// shared: a mutex-protected best point plus an atomic objective that every
// worker reads for pruning without locking.
//
// Two scheduling modes:
//  - asynchronous (default): workers run depth-first on their own deque
//    and steal the shallowest open node from a sibling when empty;
//  - deterministic: nodes are expanded in fixed-order synchronized rounds,
//    making node counts reproducible across runs at a given thread count.
//
//===----------------------------------------------------------------------===//

#include "ilp/MipSolver.h"

#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <ctime>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

using namespace nova;
using namespace nova::ilp;

namespace {
constexpr double IntTol = 1e-6;

enum class FracPick { Most, Least };

/// Single fractionality scan shared by branching and diving: returns the
/// integer variable whose LP value is farthest from (Most) or closest to
/// (Least) an integer, or ~0u if the point is integral on all integer
/// variables.
unsigned findFractional(const Model &M, const std::vector<double> &X,
                        FracPick Pick) {
  unsigned Best = ~0u;
  double BestScore = Pick == FracPick::Most ? IntTol : 2.0;
  for (unsigned J = 0; J != M.numVars(); ++J) {
    if (!M.var(VarId{J}).Integer)
      continue;
    double Frac = X[J] - std::floor(X[J]);
    double Dist = std::min(Frac, 1.0 - Frac);
    if (Dist <= IntTol)
      continue;
    bool Better = Pick == FracPick::Most ? Dist > BestScore : Dist < BestScore;
    if (Better) {
      BestScore = Dist;
      Best = J;
    }
  }
  return Best;
}

/// Rounds integer variables of \p X to the nearest integer in place.
void roundIntegers(const Model &M, std::vector<double> &X) {
  for (unsigned J = 0; J != M.numVars(); ++J)
    if (M.var(VarId{J}).Integer)
      X[J] = std::round(X[J]);
}

/// Per-variable average objective degradation per unit of fractionality,
/// split by branching direction (Benichou-style pseudocosts). Writes are
/// serialized by Mu; the deterministic engine defers all updates to its
/// round barriers so in-round reads see a frozen table.
struct Pseudocosts {
  struct Entry {
    double DownSum = 0.0, UpSum = 0.0;
    unsigned DownCount = 0, UpCount = 0;
  };
  std::vector<Entry> Entries;
  double DownTotal = 0.0, UpTotal = 0.0;
  unsigned DownObs = 0, UpObs = 0;
  std::mutex Mu;

  explicit Pseudocosts(unsigned NumVars) : Entries(NumVars) {}

  void record(unsigned Var, bool Up, double PerUnit) {
    std::lock_guard<std::mutex> L(Mu);
    Entry &E = Entries[Var];
    if (Up) {
      E.UpSum += PerUnit;
      ++E.UpCount;
      UpTotal += PerUnit;
      ++UpObs;
    } else {
      E.DownSum += PerUnit;
      ++E.DownCount;
      DownTotal += PerUnit;
      ++DownObs;
    }
  }
};

/// A deferred pseudocost observation (deterministic mode applies these at
/// the round barrier, in node order).
struct PcObservation {
  uint32_t Var;
  bool Up;
  double PerUnit;
};

/// Pseudocost branching: score every fractional variable by the product of
/// its estimated up/down objective degradations; variables without history
/// inherit the average observed pseudocost. Falls back to most-fractional
/// while nothing has been observed at all. Ties break to the lowest index
/// so the choice is a pure function of (X, pseudocost state).
unsigned selectBranchVar(const Model &M, const std::vector<double> &X,
                         Pseudocosts *PC) {
  if (!PC)
    return findFractional(M, X, FracPick::Most);
  std::lock_guard<std::mutex> L(PC->Mu);
  if (PC->DownObs + PC->UpObs == 0)
    return findFractional(M, X, FracPick::Most);
  double AvgDown = PC->DownObs ? PC->DownTotal / PC->DownObs : 1.0;
  double AvgUp = PC->UpObs ? PC->UpTotal / PC->UpObs : 1.0;
  unsigned Best = ~0u;
  double BestScore = -1.0;
  for (unsigned J = 0; J != M.numVars(); ++J) {
    if (!M.var(VarId{J}).Integer)
      continue;
    double Frac = X[J] - std::floor(X[J]);
    if (std::min(Frac, 1.0 - Frac) <= IntTol)
      continue;
    const Pseudocosts::Entry &E = PC->Entries[J];
    double Down = E.DownCount ? E.DownSum / E.DownCount : AvgDown;
    double Up = E.UpCount ? E.UpSum / E.UpCount : AvgUp;
    double Score =
        std::max(Frac * Down, 1e-12) * std::max((1.0 - Frac) * Up, 1e-12);
    if (Score > BestScore) {
      BestScore = Score;
      Best = J;
    }
  }
  return Best;
}

/// One open subproblem, captured as the 0/1 fixings leading from the root.
/// Replaying Trail onto any worker's Simplex reproduces the node's LP.
struct Node {
  struct Fix {
    uint32_t Var;
    float Val; ///< 0.0 or 1.0
  };
  std::vector<Fix> Trail;
  double ParentObj = -Inf; ///< parent LP objective (node's bound estimate)
  uint32_t BranchVar = ~0u; ///< variable of the last fixing (~0u at root)
  double BranchFrac = 0.0;  ///< its fractional part in the parent LP
};

/// State shared by all workers of one solve.
struct SearchShared {
  const Model &RM;
  const MipOptions &Opts;
  Pseudocosts PC;
  Timer Clock; ///< started at solve() entry; enforces TimeLimitSeconds

  std::mutex IncMu;
  std::vector<double> IncumbentX;
  std::atomic<double> Incumbent{Inf};

  std::atomic<unsigned> NodeCount{0};
  std::atomic<long> Outstanding{0}; ///< queued + in-flight nodes
  std::atomic<bool> Stop{false};
  std::atomic<bool> HitLimit{false};
  std::atomic<bool> Trouble{false}; ///< LP numerical trouble: optimality lost

  struct WorkDeque {
    std::mutex Mu;
    std::deque<Node> Q;
  };
  std::vector<std::unique_ptr<WorkDeque>> Deques;

  SearchShared(const Model &RM, const MipOptions &Opts, unsigned NumWorkers)
      : RM(RM), Opts(Opts), PC(RM.numVars()) {
    for (unsigned I = 0; I != NumWorkers; ++I)
      Deques.push_back(std::make_unique<WorkDeque>());
  }

  double cutoff() const {
    double Inc = Incumbent.load(std::memory_order_relaxed);
    if (!std::isfinite(Inc))
      return Inf;
    return Inc - std::max(1e-9, Opts.RelGap * std::fabs(Inc));
  }

  void offerIncumbent(std::vector<double> X, double Obj) {
    std::lock_guard<std::mutex> L(IncMu);
    if (Obj < Incumbent.load(std::memory_order_relaxed)) {
      Incumbent.store(Obj, std::memory_order_relaxed);
      IncumbentX = std::move(X);
    }
  }

  bool timedOut() const { return Clock.seconds() > Opts.TimeLimitSeconds; }
};

/// One worker: a Simplex warm-started from the root basis plus the trail
/// of fixings currently applied to it.
struct Worker {
  SearchShared &S;
  unsigned Id;
  Simplex &Lp;
  const std::vector<double> &RootLo, &RootUp;
  std::vector<Node::Fix> Cur; ///< fixings currently applied to Lp
  MipWorkerStats Stats;

  Worker(SearchShared &S, unsigned Id, Simplex &Lp,
         const std::vector<double> &RootLo, const std::vector<double> &RootUp)
      : S(S), Id(Id), Lp(Lp), RootLo(RootLo), RootUp(RootUp) {}

  /// Morphs Lp's bounds from the currently applied trail to \p T: undoes
  /// the divergent suffix, then applies T's new fixings. For plain DFS the
  /// diff is one entry; a steal replays from the common ancestor.
  void applyTrail(const std::vector<Node::Fix> &T) {
    size_t P = 0;
    while (P < Cur.size() && P < T.size() && Cur[P].Var == T[P].Var &&
           Cur[P].Val == T[P].Val)
      ++P;
    for (size_t I = Cur.size(); I-- > P;)
      Lp.setVarBounds(VarId{Cur[I].Var}, RootLo[Cur[I].Var],
                      RootUp[Cur[I].Var]);
    Cur.resize(P);
    for (size_t I = P; I < T.size(); ++I) {
      Lp.setVarBounds(VarId{T[I].Var}, T[I].Val, T[I].Val);
      Cur.push_back(T[I]);
    }
  }

  /// Restores every bound the search changed, leaving Lp reusable — runs
  /// on all exit paths, including node-limit / timeout / numerical-trouble
  /// aborts mid-tree.
  void restoreBounds() { applyTrail({}); }

  /// Expands one node: solves its LP, updates pseudocosts, offers an
  /// incumbent or appends the two children to \p Out (preferred child
  /// last, so a pop from the back dives). \p Cutoff is the pruning bound
  /// the caller chose (live for async, a round snapshot for deterministic
  /// mode); \p DeferPc, when set, collects pseudocost observations instead
  /// of applying them immediately.
  void expand(const Node &N, std::vector<Node> &Out, double Cutoff,
              std::vector<PcObservation> *DeferPc) {
    applyTrail(N.Trail);
    LpResult R = Lp.solve();
    Stats.LpIterations += R.Iterations;
    ++Stats.Nodes;
    if (R.Status == LpStatus::Infeasible)
      return;
    if (R.Status != LpStatus::Optimal) {
      // Numerical trouble: completeness bookkeeping is no longer sound, so
      // give up on proving optimality and stop the whole search.
      S.Trouble.store(true);
      S.Stop.store(true);
      return;
    }
    if (N.BranchVar != ~0u && std::isfinite(N.ParentObj)) {
      bool Up = N.Trail.back().Val > 0.5f;
      double Width = Up ? 1.0 - N.BranchFrac : N.BranchFrac;
      if (Width > IntTol) {
        double PerUnit = std::max(0.0, R.Objective - N.ParentObj) / Width;
        if (DeferPc)
          DeferPc->push_back({N.BranchVar, Up, PerUnit});
        else
          S.PC.record(N.BranchVar, Up, PerUnit);
      }
    }
    if (R.Objective >= Cutoff)
      return;
    std::vector<double> X = Lp.values();
    unsigned BranchVar = selectBranchVar(
        S.RM, X, S.Opts.PseudocostBranching ? &S.PC : nullptr);
    if (BranchVar == ~0u) {
      roundIntegers(S.RM, X);
      if (isFeasible(S.RM, X, 1e-5))
        S.offerIncumbent(std::move(X), R.Objective);
      return;
    }
    double Frac = X[BranchVar] - std::floor(X[BranchVar]);
    float FirstVal = X[BranchVar] >= 0.5 ? 1.0f : 0.0f;
    Node Second;
    Second.Trail = N.Trail;
    Second.Trail.push_back({BranchVar, 1.0f - FirstVal});
    Second.ParentObj = R.Objective;
    Second.BranchVar = BranchVar;
    Second.BranchFrac = Frac;
    Node First;
    First.Trail = N.Trail;
    First.Trail.push_back({BranchVar, FirstVal});
    First.ParentObj = R.Objective;
    First.BranchVar = BranchVar;
    First.BranchFrac = Frac;
    Out.push_back(std::move(Second));
    Out.push_back(std::move(First));
  }
};

bool popOwn(SearchShared &S, unsigned Id, Node &N) {
  SearchShared::WorkDeque &D = *S.Deques[Id];
  std::lock_guard<std::mutex> L(D.Mu);
  if (D.Q.empty())
    return false;
  N = std::move(D.Q.back());
  D.Q.pop_back();
  return true;
}

/// Steals the *front* (shallowest, hence largest) open node of a sibling.
bool stealFrom(SearchShared &S, unsigned Id, Node &N) {
  unsigned T = S.Deques.size();
  for (unsigned Off = 1; Off != T; ++Off) {
    SearchShared::WorkDeque &D = *S.Deques[(Id + Off) % T];
    std::lock_guard<std::mutex> L(D.Mu);
    if (D.Q.empty())
      continue;
    N = std::move(D.Q.front());
    D.Q.pop_front();
    return true;
  }
  return false;
}

/// Asynchronous work-stealing search: each worker runs DFS on its own
/// deque, stealing when empty, until the tree is exhausted or a limit
/// trips. Termination: Outstanding counts queued + in-flight nodes, and
/// children are enqueued before the parent is retired, so Outstanding only
/// reaches zero when no work exists anywhere.
void asyncWorkerLoop(Worker &W) {
  SearchShared &S = W.S;
  std::vector<Node> Children;
  unsigned IdleSpins = 0;
  while (!S.Stop.load(std::memory_order_relaxed)) {
    Node N;
    bool Got = popOwn(S, W.Id, N);
    if (!Got && (Got = stealFrom(S, W.Id, N)))
      ++W.Stats.Steals;
    if (!Got) {
      if (S.Outstanding.load() == 0)
        break;
      if (++IdleSpins > 64)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      else
        std::this_thread::yield();
      continue;
    }
    IdleSpins = 0;
    unsigned Count = S.NodeCount.fetch_add(1) + 1;
    if (FaultInjector::armed()) {
      FaultInjector &FI = FaultInjector::instance();
      if (FI.shouldFire(FaultKind::WorkerStall))
        std::this_thread::sleep_for(std::chrono::duration<double>(
            FI.magnitude(FaultKind::WorkerStall, 0.02)));
      if (FI.shouldFire(FaultKind::MipTimeout)) {
        // Behave exactly as a tripped wall clock: flag the limit and let
        // the shared-state epilogue salvage whatever incumbent exists.
        S.HitLimit.store(true);
        S.Stop.store(true);
        S.Outstanding.fetch_sub(1);
        break;
      }
    }
    if (Count > S.Opts.NodeLimit || S.timedOut()) {
      S.HitLimit.store(true);
      S.Stop.store(true);
      S.Outstanding.fetch_sub(1);
      break;
    }
    Children.clear();
    W.expand(N, Children, S.cutoff(), nullptr);
    if (!Children.empty()) {
      SearchShared::WorkDeque &D = *S.Deques[W.Id];
      std::lock_guard<std::mutex> L(D.Mu);
      for (Node &C : Children)
        D.Q.push_back(std::move(C));
      S.Outstanding.fetch_add(static_cast<long>(Children.size()));
    }
    S.Outstanding.fetch_sub(1);
  }
  W.restoreBounds();
}

/// Deterministic bulk-synchronous search. Each worker dives depth-first on
/// its own stack (keeping the trail diffs small, so its warm LP basis stays
/// useful); rounds are separated by barriers, and *all* cross-worker
/// effects — pseudocost updates, work redistribution to idle workers — are
/// applied at the barrier under a fixed ordering rule. Every scheduling
/// decision is a pure function of the stack contents, so node counts and
/// the optimal objective replay exactly at a given thread count.
void deterministicSearch(SearchShared &S, ThreadPool &Pool,
                         std::vector<std::unique_ptr<Worker>> &Workers,
                         Node Root) {
  unsigned T = Workers.size();
  std::vector<std::deque<Node>> Stacks(T);
  Stacks[0].push_back(std::move(Root));
  std::vector<Node> Batch(T);
  std::vector<bool> Has(T);
  std::vector<std::vector<Node>> Children(T);
  std::vector<std::vector<PcObservation>> Observed(T);
  while (true) {
    // Fixed-order rebalancing: every idle worker (ascending id) adopts the
    // shallowest open node of the worker with the most open nodes (ties to
    // the lowest id) — a deterministic rendition of work stealing.
    for (unsigned W = 0; W != T; ++W) {
      if (!Stacks[W].empty())
        continue;
      unsigned Donor = ~0u;
      size_t DonorSize = 1; // donors must keep at least one node
      for (unsigned V = 0; V != T; ++V)
        if (Stacks[V].size() > DonorSize) {
          Donor = V;
          DonorSize = Stacks[V].size();
        }
      if (Donor == ~0u)
        continue;
      Stacks[W].push_back(std::move(Stacks[Donor].front()));
      Stacks[Donor].pop_front();
      ++Workers[W]->Stats.Steals;
    }
    unsigned K = 0;
    for (unsigned W = 0; W != T; ++W) {
      Has[W] = !Stacks[W].empty();
      if (Has[W]) {
        Batch[W] = std::move(Stacks[W].back());
        Stacks[W].pop_back();
        ++K;
      }
    }
    if (K == 0)
      break;
    if (FaultInjector::armed()) {
      FaultInjector &FI = FaultInjector::instance();
      if (FI.shouldFire(FaultKind::WorkerStall))
        std::this_thread::sleep_for(std::chrono::duration<double>(
            FI.magnitude(FaultKind::WorkerStall, 0.02)));
      if (FI.shouldFire(FaultKind::MipTimeout)) {
        S.HitLimit.store(true);
        break;
      }
    }
    if (S.NodeCount.load() + K > S.Opts.NodeLimit || S.timedOut()) {
      S.HitLimit.store(true);
      break;
    }
    S.NodeCount.fetch_add(K);
    double Cutoff = S.cutoff();
    Pool.runOnWorkers([&](unsigned W) {
      Children[W].clear();
      Observed[W].clear();
      if (Has[W])
        Workers[W]->expand(Batch[W], Children[W], Cutoff, &Observed[W]);
    });
    if (S.Trouble.load())
      break;
    for (unsigned W = 0; W != T; ++W) {
      for (const PcObservation &O : Observed[W])
        S.PC.record(O.Var, O.Up, O.PerUnit);
      for (Node &C : Children[W])
        Stacks[W].push_back(std::move(C));
    }
  }
  Pool.runOnWorkers([&](unsigned W) { Workers[W]->restoreBounds(); });
}

/// Diving heuristic run at the root: repeatedly fix the least fractional
/// variable to its rounded value and re-solve, hoping to reach an integer
/// point cheaply. All bound changes are undone afterwards.
void dive(SearchShared &S, Simplex &Lp, MipStats &Stats) {
  struct Saved {
    VarId Var;
    double Lo, Up;
  };
  std::vector<Saved> Trail;
  unsigned LpBudget = S.Opts.DiveLpLimit;
  while (LpBudget-- && !S.timedOut()) {
    std::vector<double> X = Lp.values();
    unsigned Pick = findFractional(S.RM, X, FracPick::Least);
    if (Pick == ~0u) {
      roundIntegers(S.RM, X);
      if (isFeasible(S.RM, X, 1e-6)) {
        double Obj = objectiveValue(S.RM, X);
        S.offerIncumbent(std::move(X), Obj);
      }
      break;
    }
    double Val = std::round(X[Pick]);
    Trail.push_back(
        {VarId{Pick}, Lp.lowerBound(VarId{Pick}), Lp.upperBound(VarId{Pick})});
    Lp.setVarBounds(VarId{Pick}, Val, Val);
    LpResult R = Lp.solve();
    Stats.LpIterations += R.Iterations;
    if (R.Status != LpStatus::Optimal || R.Objective >= S.cutoff())
      break;
  }
  for (auto It = Trail.rbegin(); It != Trail.rend(); ++It)
    Lp.setVarBounds(It->Var, It->Lo, It->Up);
}

/// Rounds the current LP point and offers it if it happens to be feasible.
void tryRounding(SearchShared &S, Simplex &Lp) {
  std::vector<double> X = Lp.values();
  roundIntegers(S.RM, X);
  if (isFeasible(S.RM, X, 1e-6))
    S.offerIncumbent(std::move(X), objectiveValue(S.RM, X));
}

} // namespace

MipSolver::MipSolver(const Model &Mdl, MipOptions Options)
    : M(Mdl), Opts(Options) {}

void MipSolver::setIncumbent(const std::vector<double> &X) {
  if (isFeasible(M, X, 1e-6))
    SeedX = X;
}

MipResult MipSolver::solve() {
  MipResult Result;
  Timer Total;
  std::clock_t CpuStart = std::clock();

  PresolveResult P;
  if (Opts.EnablePresolve) {
    P = presolve(M);
  } else {
    // Identity presolve.
    P.OrigToReduced.resize(M.numVars());
    P.FixedValue.assign(M.numVars(), 0.0);
    for (unsigned I = 0; I != M.numVars(); ++I) {
      const Variable &V = M.var(VarId{I});
      VarId NewId = V.Integer
                        ? P.Reduced.addBinary(V.Name, V.Objective)
                        : P.Reduced.addContinuous(V.Name, V.Lower, V.Upper,
                                                  V.Objective);
      P.Reduced.var(NewId).Lower = V.Lower;
      P.Reduced.var(NewId).Upper = V.Upper;
      P.OrigToReduced[I] = NewId.Index;
    }
    for (const Constraint &C : M.constraints()) {
      LinExpr E;
      for (const Term &T : C.Terms)
        E.add(VarId{P.OrigToReduced[T.Var.Index]}, T.Coeff);
      P.Reduced.addConstraint(std::move(E), C.Relation, C.Rhs);
    }
  }
  Result.Stats.PresolveFixedVars = P.NumFixed;
  Result.Stats.PresolveDroppedConstraints = P.NumDroppedConstraints;
  Result.Stats.ReducedVars = P.Reduced.numVars();
  Result.Stats.ReducedConstraints = P.Reduced.numConstraints();

  auto finishTimes = [&] {
    Result.Stats.TotalSeconds = Total.seconds();
    Result.Stats.CpuSeconds =
        double(std::clock() - CpuStart) / CLOCKS_PER_SEC;
  };

  if (P.Infeasible) {
    Result.Status = MipStatus::Infeasible;
    finishTimes();
    return Result;
  }

  // Never run more workers than the machine has hardware threads: the
  // extra workers only time-slice, and the resulting interleaving makes
  // the asynchronous search expand speculative nodes a single-threaded
  // run would have pruned (more nodes *and* more wall clock).
  unsigned Requested =
      Opts.Threads == 0 ? ThreadPool::defaultThreads() : Opts.Threads;
  unsigned Hardware = std::max(1u, std::thread::hardware_concurrency());
  unsigned NumWorkers = std::max(1u, std::min(Requested, Hardware));
  Result.Stats.Threads = NumWorkers;

  SearchShared S(P.Reduced, Opts, NumWorkers);

  // Seed incumbent from the caller, translated into reduced space.
  if (!SeedX.empty()) {
    std::vector<double> ReducedSeed;
    if (P.reduceSolution(SeedX, ReducedSeed) &&
        isFeasible(P.Reduced, ReducedSeed, 1e-6))
      S.offerIncumbent(std::move(ReducedSeed),
                       objectiveValue(P.Reduced, ReducedSeed));
  }

  // Root relaxation (Figure 7's "Root" column). Worker 0 reuses this
  // instance; the other workers clone its warm basis.
  Simplex RootLp(P.Reduced);
  Timer RootClock;
  LpResult Root = RootLp.solve();
  Result.Stats.LpIterations += Root.Iterations;
  Result.Stats.RootLpSeconds = RootClock.seconds();
  if (Root.Status == LpStatus::Infeasible) {
    Result.Status = MipStatus::Infeasible;
    finishTimes();
    return Result;
  }
  if (Root.Status == LpStatus::Optimal) {
    Result.Stats.RootObjective =
        Root.Objective + P.FixedObjective + M.objectiveConstant();
    tryRounding(S, RootLp);
    dive(S, RootLp, Result.Stats);
    // Diving perturbed the working basis; restore a clean root solve so
    // the tree search starts from the true relaxation.
    LpResult Again = RootLp.solve();
    Result.Stats.LpIterations += Again.Iterations;
  }

  std::vector<double> RootLo(P.Reduced.numVars()), RootUp(P.Reduced.numVars());
  for (unsigned J = 0; J != P.Reduced.numVars(); ++J) {
    RootLo[J] = RootLp.lowerBound(VarId{J});
    RootUp[J] = RootLp.upperBound(VarId{J});
  }

  // Clone the solved root basis into the extra workers (warm starts).
  std::vector<Simplex> ExtraLps(NumWorkers - 1, RootLp);
  std::vector<std::unique_ptr<Worker>> Workers;
  Workers.push_back(
      std::make_unique<Worker>(S, 0, RootLp, RootLo, RootUp));
  for (unsigned I = 1; I != NumWorkers; ++I)
    Workers.push_back(
        std::make_unique<Worker>(S, I, ExtraLps[I - 1], RootLo, RootUp));

  ThreadPool Pool(NumWorkers);
  Node RootNode;
  if (Opts.Deterministic) {
    deterministicSearch(S, Pool, Workers, std::move(RootNode));
  } else {
    S.Deques[0]->Q.push_back(std::move(RootNode));
    S.Outstanding.store(1);
    Pool.runOnWorkers([&](unsigned W) { asyncWorkerLoop(*Workers[W]); });
  }

  for (const std::unique_ptr<Worker> &W : Workers) {
    Result.Stats.Nodes += W->Stats.Nodes;
    Result.Stats.Steals += W->Stats.Steals;
    Result.Stats.LpIterations += W->Stats.LpIterations;
    Result.Stats.Workers.push_back(W->Stats);
  }
  auto addLpStats = [&](const Simplex &Lp) {
    SimplexStats LS = Lp.stats();
    Result.Stats.Factorizations += LS.Factorizations;
    Result.Stats.EtaPivots += LS.EtaPivots;
    Result.Stats.PricingPasses += LS.PricingPasses;
  };
  addLpStats(RootLp);
  for (const Simplex &Lp : ExtraLps)
    addLpStats(Lp);

  bool Complete = !S.HitLimit.load() && !S.Trouble.load();
  finishTimes();
  double Incumbent = S.Incumbent.load();
  if (!std::isfinite(Incumbent)) {
    Result.Status = Complete ? MipStatus::Infeasible : MipStatus::NoSolution;
    return Result;
  }
  Result.Status = Complete ? MipStatus::Optimal : MipStatus::Feasible;
  Result.X = P.liftSolution(S.IncumbentX);
  Result.Objective = objectiveValue(M, Result.X);
  return Result;
}
