//===- MipSolver.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/MipSolver.h"

#include "support/Timer.h"

#include <algorithm>
#include <cmath>

using namespace nova;
using namespace nova::ilp;

namespace {
constexpr double IntTol = 1e-6;

/// Returns the index of the most fractional integer variable, or ~0u if
/// the point is integral on all integer variables.
unsigned pickBranchVar(const Model &M, const std::vector<double> &X) {
  unsigned Best = ~0u;
  double BestScore = IntTol;
  for (unsigned J = 0; J != M.numVars(); ++J) {
    if (!M.var(VarId{J}).Integer)
      continue;
    double Frac = X[J] - std::floor(X[J]);
    double Dist = std::min(Frac, 1.0 - Frac);
    if (Dist > BestScore) {
      BestScore = Dist;
      Best = J;
    }
  }
  return Best;
}

/// Rounds integer variables of \p X to the nearest integer in place.
void roundIntegers(const Model &M, std::vector<double> &X) {
  for (unsigned J = 0; J != M.numVars(); ++J)
    if (M.var(VarId{J}).Integer)
      X[J] = std::round(X[J]);
}

/// Search state over the reduced model.
struct Searcher {
  const Model &RM;
  const MipOptions &Opts;
  Simplex Lp;
  Timer Clock;
  MipStats &Stats;

  double Incumbent = Inf;
  std::vector<double> IncumbentX;

  Searcher(const Model &RM, const MipOptions &Opts, MipStats &Stats)
      : RM(RM), Opts(Opts), Lp(RM), Stats(Stats) {}

  bool timedOut() const { return Clock.seconds() > Opts.TimeLimitSeconds; }

  double cutoff() const {
    if (!std::isfinite(Incumbent))
      return Inf;
    return Incumbent - std::max(1e-9, Opts.RelGap * std::fabs(Incumbent));
  }

  void offerIncumbent(std::vector<double> X, double Obj) {
    if (Obj < Incumbent) {
      Incumbent = Obj;
      IncumbentX = std::move(X);
    }
  }

  /// Tries to turn the current LP point into an integer point by rounding;
  /// validates against the model directly.
  void tryRounding() {
    std::vector<double> X = Lp.values();
    roundIntegers(RM, X);
    if (isFeasible(RM, X, 1e-6))
      offerIncumbent(std::move(X), objectiveValue(RM, X));
  }

  /// Diving heuristic: repeatedly fix the *least* fractional variable to
  /// its rounded value and re-solve, hoping to reach an integer point
  /// cheaply. All bound changes are undone afterwards.
  void dive() {
    struct Saved {
      VarId Var;
      double Lo, Up;
    };
    std::vector<Saved> Trail;
    unsigned LpBudget = Opts.DiveLpLimit;
    while (LpBudget-- && !timedOut()) {
      std::vector<double> X = Lp.values();
      unsigned Frac = pickBranchVar(RM, X);
      if (Frac == ~0u) {
        roundIntegers(RM, X);
        if (isFeasible(RM, X, 1e-6)) {
          double Obj = objectiveValue(RM, X);
          offerIncumbent(std::move(X), Obj);
        }
        break;
      }
      // Fix the variable whose fractional part is closest to an integer.
      unsigned Pick = ~0u;
      double BestDist = 2.0;
      for (unsigned J = 0; J != RM.numVars(); ++J) {
        if (!RM.var(VarId{J}).Integer)
          continue;
        double F = X[J] - std::floor(X[J]);
        double Dist = std::min(F, 1.0 - F);
        if (Dist <= IntTol)
          continue;
        if (Dist < BestDist) {
          BestDist = Dist;
          Pick = J;
        }
      }
      if (Pick == ~0u)
        break;
      double Val = std::round(X[Pick]);
      Trail.push_back({VarId{Pick}, Lp.lowerBound(VarId{Pick}),
                       Lp.upperBound(VarId{Pick})});
      Lp.setVarBounds(VarId{Pick}, Val, Val);
      LpResult R = Lp.solve();
      Stats.LpIterations += R.Iterations;
      if (R.Status != LpStatus::Optimal || R.Objective >= cutoff())
        break;
    }
    for (auto It = Trail.rbegin(); It != Trail.rend(); ++It)
      Lp.setVarBounds(It->Var, It->Lo, It->Up);
  }

  /// Depth-first branch & bound with an explicit trail. Returns true if
  /// the search ran to completion (not stopped by a limit).
  bool search() {
    struct Frame {
      VarId Var;
      double SavedLo, SavedUp;
      double FirstVal;  ///< value tried first
      bool SecondDone;  ///< both children explored
    };
    std::vector<Frame> Path;

    auto backtrack = [&]() -> bool {
      while (!Path.empty()) {
        Frame &F = Path.back();
        if (!F.SecondDone) {
          F.SecondDone = true;
          double Other = 1.0 - F.FirstVal;
          Lp.setVarBounds(F.Var, Other, Other);
          return true;
        }
        Lp.setVarBounds(F.Var, F.SavedLo, F.SavedUp);
        Path.pop_back();
      }
      return false;
    };

    while (true) {
      if (Stats.Nodes >= Opts.NodeLimit || timedOut())
        return false;
      ++Stats.Nodes;

      LpResult R = Lp.solve();
      Stats.LpIterations += R.Iterations;
      bool Prune = false;
      if (R.Status == LpStatus::Infeasible) {
        Prune = true;
      } else if (R.Status != LpStatus::Optimal) {
        // Numerical trouble: treat conservatively as unprunable is unsafe
        // for completeness bookkeeping, so give up on proving optimality.
        return false;
      } else if (R.Objective >= cutoff()) {
        Prune = true;
      } else {
        std::vector<double> X = Lp.values();
        unsigned BranchVar = pickBranchVar(RM, X);
        if (BranchVar == ~0u) {
          roundIntegers(RM, X);
          if (isFeasible(RM, X, 1e-5))
            offerIncumbent(std::move(X), R.Objective);
          Prune = true;
        } else {
          Frame F;
          F.Var = VarId{BranchVar};
          F.SavedLo = Lp.lowerBound(F.Var);
          F.SavedUp = Lp.upperBound(F.Var);
          F.FirstVal = X[BranchVar] >= 0.5 ? 1.0 : 0.0;
          F.SecondDone = false;
          Path.push_back(F);
          Lp.setVarBounds(F.Var, F.FirstVal, F.FirstVal);
          continue;
        }
      }
      if (Prune && !backtrack())
        return true; // Tree exhausted.
    }
  }
};

} // namespace

MipSolver::MipSolver(const Model &Mdl, MipOptions Options)
    : M(Mdl), Opts(Options) {}

void MipSolver::setIncumbent(const std::vector<double> &X) {
  if (isFeasible(M, X, 1e-6))
    SeedX = X;
}

MipResult MipSolver::solve() {
  MipResult Result;
  Timer Total;

  PresolveResult P;
  if (Opts.EnablePresolve) {
    P = presolve(M);
  } else {
    // Identity presolve.
    P.OrigToReduced.resize(M.numVars());
    P.FixedValue.assign(M.numVars(), 0.0);
    for (unsigned I = 0; I != M.numVars(); ++I) {
      const Variable &V = M.var(VarId{I});
      VarId NewId = V.Integer
                        ? P.Reduced.addBinary(V.Name, V.Objective)
                        : P.Reduced.addContinuous(V.Name, V.Lower, V.Upper,
                                                  V.Objective);
      P.Reduced.var(NewId).Lower = V.Lower;
      P.Reduced.var(NewId).Upper = V.Upper;
      P.OrigToReduced[I] = NewId.Index;
    }
    for (const Constraint &C : M.constraints()) {
      LinExpr E;
      for (const Term &T : C.Terms)
        E.add(VarId{P.OrigToReduced[T.Var.Index]}, T.Coeff);
      P.Reduced.addConstraint(std::move(E), C.Relation, C.Rhs);
    }
  }
  Result.Stats.PresolveFixedVars = P.NumFixed;
  Result.Stats.PresolveDroppedConstraints = P.NumDroppedConstraints;
  Result.Stats.ReducedVars = P.Reduced.numVars();
  Result.Stats.ReducedConstraints = P.Reduced.numConstraints();

  if (P.Infeasible) {
    Result.Status = MipStatus::Infeasible;
    Result.Stats.TotalSeconds = Total.seconds();
    return Result;
  }

  Searcher S(P.Reduced, Opts, Result.Stats);

  // Seed incumbent from the caller, translated into reduced space.
  if (!SeedX.empty()) {
    std::vector<double> ReducedSeed;
    if (P.reduceSolution(SeedX, ReducedSeed) &&
        isFeasible(P.Reduced, ReducedSeed, 1e-6))
      S.offerIncumbent(std::move(ReducedSeed),
                       objectiveValue(P.Reduced, ReducedSeed));
  }

  // Root relaxation (Figure 7's "Root" column).
  Timer RootClock;
  LpResult Root = S.Lp.solve();
  Result.Stats.LpIterations += Root.Iterations;
  Result.Stats.RootLpSeconds = RootClock.seconds();
  if (Root.Status == LpStatus::Infeasible) {
    Result.Status = MipStatus::Infeasible;
    Result.Stats.TotalSeconds = Total.seconds();
    return Result;
  }
  if (Root.Status == LpStatus::Optimal) {
    Result.Stats.RootObjective =
        Root.Objective + P.FixedObjective + M.objectiveConstant();
    S.tryRounding();
    S.dive();
    // Diving perturbed the working basis; restore a clean root solve so
    // the DFS starts from the true relaxation.
    LpResult Again = S.Lp.solve();
    Result.Stats.LpIterations += Again.Iterations;
  }

  bool Complete = S.search();

  Result.Stats.TotalSeconds = Total.seconds();
  if (!std::isfinite(S.Incumbent)) {
    Result.Status = Complete ? MipStatus::Infeasible : MipStatus::NoSolution;
    return Result;
  }
  Result.Status = Complete ? MipStatus::Optimal : MipStatus::Feasible;
  Result.X = P.liftSolution(S.IncumbentX);
  Result.Objective = objectiveValue(M, Result.X);
  return Result;
}
