//===- Model.h - 0-1 ILP model container ------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mixed 0-1 / continuous linear optimization model: bounded variables,
/// linear constraints, and a linear objective (always minimization). This
/// plays the role AMPL played in the paper — the allocator builds one of
/// these, and MipSolver solves it.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_MODEL_H
#define ILP_MODEL_H

#include "ilp/Expr.h"

#include <cassert>
#include <limits>
#include <string>
#include <vector>

namespace nova {
namespace ilp {

/// Relational operator of a linear constraint.
enum class Rel { LE, GE, EQ };

/// Infinity marker for variable bounds.
inline constexpr double Inf = std::numeric_limits<double>::infinity();

/// A linear constraint `sum Coeff_i * Var_i  Rel  Rhs`.
struct Constraint {
  std::vector<Term> Terms;
  Rel Relation = Rel::LE;
  double Rhs = 0.0;
  std::string Name;
};

/// A decision variable with bounds and objective coefficient.
struct Variable {
  std::string Name;
  double Lower = 0.0;
  double Upper = 1.0;
  double Objective = 0.0;
  bool Integer = true;
};

/// Aggregate size statistics used to reproduce the paper's Figure 7
/// ("Variables x1000, Constraints x1000, Terms in Objective x1000").
struct ModelStats {
  unsigned NumVariables = 0;
  unsigned NumConstraints = 0;
  unsigned NumObjectiveTerms = 0;
  unsigned NumNonzeros = 0;
};

/// Container for an optimization model under construction.
class Model {
public:
  /// Adds a binary (0-1) variable with the given objective coefficient.
  VarId addBinary(std::string Name, double ObjCoeff = 0.0);

  /// Adds a bounded continuous variable.
  VarId addContinuous(std::string Name, double Lower, double Upper,
                      double ObjCoeff = 0.0);

  /// Adds `Expr Relation Rhs` after folding Expr's constant into the rhs.
  void addConstraint(LinExpr Expr, Rel Relation, double Rhs,
                     std::string Name = "");

  /// Adds to the (minimized) objective.
  void addObjective(const LinExpr &Expr);

  /// Fixes a variable to a value by tightening both bounds.
  void fix(VarId Var, double Value) {
    assert(Var.Index < Vars.size() && "invalid variable");
    Vars[Var.Index].Lower = Vars[Var.Index].Upper = Value;
  }

  unsigned numVars() const { return Vars.size(); }
  unsigned numConstraints() const { return Cons.size(); }
  const Variable &var(VarId Id) const { return Vars[Id.Index]; }
  Variable &var(VarId Id) { return Vars[Id.Index]; }
  const std::vector<Variable> &vars() const { return Vars; }
  const std::vector<Constraint> &constraints() const { return Cons; }
  double objectiveConstant() const { return ObjConstant; }

  ModelStats stats() const;

  /// Renders the model in CPLEX LP-like text format for debugging and
  /// golden tests.
  std::string toLpString() const;

private:
  std::vector<Variable> Vars;
  std::vector<Constraint> Cons;
  double ObjConstant = 0.0;
};

} // namespace ilp
} // namespace nova

#endif // ILP_MODEL_H
