//===- Model.cpp ----------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ilp/Model.h"

#include <sstream>

using namespace nova;
using namespace nova::ilp;

VarId Model::addBinary(std::string Name, double ObjCoeff) {
  Vars.push_back({std::move(Name), 0.0, 1.0, ObjCoeff, /*Integer=*/true});
  return VarId{static_cast<uint32_t>(Vars.size() - 1)};
}

VarId Model::addContinuous(std::string Name, double Lower, double Upper,
                           double ObjCoeff) {
  assert(Lower <= Upper && "inverted bounds");
  Vars.push_back({std::move(Name), Lower, Upper, ObjCoeff, /*Integer=*/false});
  return VarId{static_cast<uint32_t>(Vars.size() - 1)};
}

void Model::addConstraint(LinExpr Expr, Rel Relation, double Rhs,
                          std::string Name) {
  Expr.normalize();
  Constraint C;
  C.Terms = Expr.terms();
  C.Relation = Relation;
  C.Rhs = Rhs - Expr.constant();
  C.Name = std::move(Name);
  for ([[maybe_unused]] const Term &T : C.Terms)
    assert(T.Var.Index < Vars.size() && "constraint mentions unknown var");
  Cons.push_back(std::move(C));
}

void Model::addObjective(const LinExpr &Expr) {
  for (const Term &T : Expr.terms())
    Vars[T.Var.Index].Objective += T.Coeff;
  ObjConstant += Expr.constant();
}

ModelStats Model::stats() const {
  ModelStats S;
  S.NumVariables = Vars.size();
  S.NumConstraints = Cons.size();
  for (const Variable &V : Vars)
    if (V.Objective != 0.0)
      ++S.NumObjectiveTerms;
  for (const Constraint &C : Cons)
    S.NumNonzeros += C.Terms.size();
  return S;
}

static void appendTerm(std::ostringstream &OS, bool First, double Coeff,
                       const std::string &Name) {
  if (Coeff >= 0)
    OS << (First ? "" : " + ");
  else
    OS << (First ? "-" : " - ");
  double A = Coeff < 0 ? -Coeff : Coeff;
  if (A != 1.0)
    OS << A << ' ';
  OS << Name;
}

std::string Model::toLpString() const {
  std::ostringstream OS;
  OS << "Minimize\n obj:";
  bool First = true;
  for (unsigned I = 0; I != Vars.size(); ++I) {
    if (Vars[I].Objective == 0.0)
      continue;
    OS << ' ';
    appendTerm(OS, First, Vars[I].Objective, Vars[I].Name);
    First = false;
  }
  if (First)
    OS << " 0";
  OS << "\nSubject To\n";
  for (unsigned I = 0; I != Cons.size(); ++I) {
    const Constraint &C = Cons[I];
    OS << ' ' << (C.Name.empty() ? "c" + std::to_string(I) : C.Name) << ':';
    bool F = true;
    for (const Term &T : C.Terms) {
      OS << ' ';
      appendTerm(OS, F, T.Coeff, Vars[T.Var.Index].Name);
      F = false;
    }
    switch (C.Relation) {
    case Rel::LE:
      OS << " <= ";
      break;
    case Rel::GE:
      OS << " >= ";
      break;
    case Rel::EQ:
      OS << " = ";
      break;
    }
    OS << C.Rhs << '\n';
  }
  OS << "Bounds\n";
  for (const Variable &V : Vars)
    OS << ' ' << V.Lower << " <= " << V.Name << " <= " << V.Upper << '\n';
  OS << "Binaries\n";
  for (const Variable &V : Vars)
    if (V.Integer)
      OS << ' ' << V.Name << '\n';
  OS << "End\n";
  return OS.str();
}
