//===- Presolve.h - Model reduction before branch & bound -------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bound-propagation presolve for 0-1 models. The allocator's models are
/// dominated by "sum == 1" and implication rows; fixpoint propagation fixes
/// a large fraction of variables before the LP ever runs — the same kind of
/// model-shrinking engineering Section 8 of the paper calls critical.
///
//===----------------------------------------------------------------------===//

#ifndef ILP_PRESOLVE_H
#define ILP_PRESOLVE_H

#include "ilp/Model.h"

#include <vector>

namespace nova {
namespace ilp {

/// Result of presolving a Model.
struct PresolveResult {
  bool Infeasible = false;
  Model Reduced;
  /// OrigToReduced[i] is the reduced-model index of original variable i, or
  /// ~0u if the variable was fixed by presolve.
  std::vector<uint32_t> OrigToReduced;
  /// FixedValue[i] is meaningful when OrigToReduced[i] == ~0u.
  std::vector<double> FixedValue;
  /// Objective contribution of fixed variables (added to the reduced
  /// model's optimum to recover the original objective).
  double FixedObjective = 0.0;
  unsigned NumFixed = 0;
  unsigned NumDroppedConstraints = 0;

  /// Expands a reduced-space solution vector into original space.
  std::vector<double> liftSolution(const std::vector<double> &ReducedX) const;

  /// Projects an original-space point into reduced space. Returns false if
  /// the point contradicts a presolve fixing (then it cannot seed the
  /// search).
  bool reduceSolution(const std::vector<double> &OrigX,
                      std::vector<double> &ReducedX) const;
};

/// Runs fixpoint bound propagation on \p M.
PresolveResult presolve(const Model &M);

/// Checks a candidate point against all bounds, integrality requirements,
/// and constraints of \p M. Used by tests and to validate heuristic
/// incumbents.
bool isFeasible(const Model &M, const std::vector<double> &X,
                double Tol = 1e-6);

/// Objective value of a point under \p M (including the model constant).
double objectiveValue(const Model &M, const std::vector<double> &X);

} // namespace ilp
} // namespace nova

#endif // ILP_PRESOLVE_H
