//===- Liveness.h - Per-point liveness analysis -----------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness over the machine flowgraph, exposed per program
/// point (before/after every instruction) — exactly the granularity the
/// ILP model's Exists and Copy sets need (paper Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef IXP_LIVENESS_H
#define IXP_LIVENESS_H

#include "ixp/MachineIr.h"

#include <set>
#include <vector>

namespace nova {
namespace ixp {

/// Temps an instruction reads (register operands only).
std::vector<Temp> instrUses(const MachineInstr &I);

/// Temps an instruction defines.
const std::vector<Temp> &instrDefs(const MachineInstr &I);

class Liveness {
public:
  explicit Liveness(const MachineProgram &M);

  /// Live temps immediately before instruction \p Idx of block \p B.
  const std::set<Temp> &liveBefore(BlockId B, unsigned Idx) const {
    return Before[B][Idx];
  }

  /// Live temps immediately after instruction \p Idx of block \p B.
  const std::set<Temp> &liveAfter(BlockId B, unsigned Idx) const {
    return After[B][Idx];
  }

  const std::set<Temp> &blockLiveIn(BlockId B) const { return In[B]; }
  const std::set<Temp> &blockLiveOut(BlockId B) const { return Out[B]; }

private:
  std::vector<std::set<Temp>> In, Out;
  std::vector<std::vector<std::set<Temp>>> Before, After;
};

} // namespace ixp
} // namespace nova

#endif // IXP_LIVENESS_H
