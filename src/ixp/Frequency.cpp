//===- Frequency.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ixp/Frequency.h"

#include <algorithm>
#include <cmath>
#include <functional>

using namespace nova;
using namespace nova::ixp;

double ixp::dempsterShafer(double P1, double P2) {
  double Num = P1 * P2;
  double Den = Num + (1.0 - P1) * (1.0 - P2);
  return Den == 0.0 ? 0.5 : Num / Den;
}

bool FrequencyInfo::isBackEdge(BlockId From, BlockId To) const {
  return std::find(BackEdges.begin(), BackEdges.end(),
                   std::make_pair(From, To)) != BackEdges.end();
}

FrequencyInfo::FrequencyInfo(const MachineProgram &M) {
  unsigned N = M.Blocks.size();
  Freq.assign(N, 0.0);
  TakenProb.assign(N, 0.5);
  if (M.Entry == NoBlock || N == 0)
    return;

  // Back edges via iterative DFS with an on-stack marker.
  enum { White, Grey, Black };
  std::vector<int> Color(N, White);
  std::function<void(BlockId)> Dfs = [&](BlockId B) {
    Color[B] = Grey;
    for (BlockId S : M.Blocks[B].successors()) {
      if (Color[S] == Grey)
        BackEdges.emplace_back(B, S);
      else if (Color[S] == White)
        Dfs(S);
    }
    Color[B] = Black;
  };
  Dfs(M.Entry);

  // Whether block To can reach block From again (the edge continues a
  // loop). Cached per query; graphs here are small.
  auto Reaches = [&M, N](BlockId From, BlockId To) {
    std::vector<bool> Seen(N, false);
    std::vector<BlockId> Work = {From};
    Seen[From] = true;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      if (B == To)
        return true;
      for (BlockId S : M.Blocks[B].successors())
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
    return false;
  };

  // Branch probabilities: combine heuristics with Dempster-Shafer.
  for (unsigned B = 0; B != N; ++B) {
    const Block &Blk = M.Blocks[B];
    if (Blk.Instrs.empty() || Blk.terminator().Op != MOp::Branch)
      continue;
    const MachineInstr &Br = Blk.terminator();
    double P = 0.5;
    // Loop heuristic: the side that keeps the loop spinning is likely.
    bool TakenLoops = Reaches(Br.Target, B);
    bool ElseLoops = Reaches(Br.TargetElse, B);
    if (TakenLoops && !ElseLoops)
      P = dempsterShafer(P, 0.88);
    else if (ElseLoops && !TakenLoops)
      P = dempsterShafer(P, 0.12);
    // Opcode heuristic: equality is unlikely, inequality likely.
    if (Br.Cmp == cps::CmpOp::Eq)
      P = dempsterShafer(P, 0.3);
    else if (Br.Cmp == cps::CmpOp::Ne)
      P = dempsterShafer(P, 0.7);
    TakenProb[B] = P;
  }

  // Damped flow propagation (handles irreducible graphs): f = e + d*T'f.
  // Damping slightly underestimates deep loop nests but always converges.
  const double Damping = 0.995;
  std::vector<double> Next(N, 0.0);
  Freq[M.Entry] = 1.0;
  for (unsigned Iter = 0; Iter != 2000; ++Iter) {
    std::fill(Next.begin(), Next.end(), 0.0);
    Next[M.Entry] = 1.0;
    for (unsigned B = 0; B != N; ++B) {
      if (Freq[B] == 0.0)
        continue;
      const Block &Blk = M.Blocks[B];
      if (Blk.Instrs.empty())
        continue;
      const MachineInstr &T = Blk.terminator();
      if (T.Op == MOp::Branch) {
        Next[T.Target] += Damping * Freq[B] * TakenProb[B];
        Next[T.TargetElse] += Damping * Freq[B] * (1.0 - TakenProb[B]);
      } else if (T.Op == MOp::Jump) {
        Next[T.Target] += Damping * Freq[B];
      }
    }
    double Delta = 0.0;
    for (unsigned B = 0; B != N; ++B)
      Delta += std::fabs(Next[B] - Freq[B]);
    Freq.swap(Next);
    if (Delta < 1e-9)
      break;
  }
  // Numerical floor so every reachable block carries some weight.
  for (unsigned B = 0; B != N; ++B)
    if (Freq[B] == 0.0 && Color[B] != White)
      Freq[B] = 1e-6;
}
