//===- MachineParams.h - Whole-chip machine parameters ----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one definition of the IXP1200's chip-level parameters, shared by
/// the micro-engine simulator (sim::LatencyModel defaults), the chip
/// contention model (src/chip channel queues), and the ILP cost model
/// (ixp::CostModel spill costs). Kugelblitz-style design-space sweeps
/// (ROADMAP item 5) vary these fields and re-solve.
///
/// Latency magnitudes are the IXP1200's (233 MHz, paper Sections 2 and
/// 11): SRAM ~20 cycles, SDRAM ~33, scratch ~12. Issue intervals model
/// per-channel bandwidth for the chip's transaction queues: a channel
/// accepts a new transaction every IssueInterval cycles (the memory
/// units are pipelined, so sustained throughput is much better than one
/// access per latency), and contention shows up as measurable queueing
/// stalls once concurrent micro-engines saturate a channel.
///
//===----------------------------------------------------------------------===//

#ifndef IXP_MACHINEPARAMS_H
#define IXP_MACHINEPARAMS_H

#include <cstdint>

namespace nova {
namespace ixp {

/// Chip-level machine description: topology, per-space memory timing, and
/// the spill-cost constants of the paper's ILP objective. Aggregate with
/// defaults matching the IXP1200, so `MachineParams{}` is *the*
/// definition everything else reads.
struct MachineParams {
  //===--- Topology (paper Section 2) -------------------------------------===//
  unsigned MeCount = 6;        ///< micro-engines on the chip
  unsigned ContextsPerMe = 4;  ///< hardware threads per micro-engine

  //===--- Clock ----------------------------------------------------------===//
  double ClockHz = 233e6; ///< 233 MHz IXP1200 core clock

  //===--- Per-space access latency (micro-engine cycles) ------------------===//
  unsigned AluCycles = 1;
  unsigned BranchCycles = 1;
  unsigned ImmCycles = 1; ///< 1-2 per paper §12; large constants cost 2
  unsigned HashCycles = 16;
  unsigned SramAccessCycles = 20;
  unsigned SdramAccessCycles = 33;
  unsigned ScratchAccessCycles = 12;

  //===--- Per-channel bandwidth (chip contention model) -------------------===//
  /// A channel starts at most one transaction every IssueInterval cycles;
  /// latency overlaps across in-flight transactions (the units are
  /// pipelined). Queue delay beyond the interval is recorded as
  /// contention stall cycles.
  unsigned SramIssueInterval = 3;
  /// The 64-bit SDRAM bus moves two 32-bit words per bus cycle at half
  /// the core clock: ~1 core cycle per word sustained in bursts; 2 is a
  /// conservative per-word issue interval.
  unsigned SdramIssueInterval = 2;
  unsigned ScratchIssueInterval = 2;

  //===--- ILP objective constants (paper Section 7) -----------------------===//
  double SpillLoadCost = 200.0;  ///< ldC: reload from spill memory
  double SpillStoreCost = 200.0; ///< stC: store to spill memory
  double MoveCost = 1.0;         ///< mvC: register-register move
  double BBias = 1.01;           ///< bias against B-bank moves

  unsigned totalContexts() const { return MeCount * ContextsPerMe; }
};

} // namespace ixp
} // namespace nova

#endif // IXP_MACHINEPARAMS_H
