//===- Liveness.cpp -------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ixp/Liveness.h"

using namespace nova;
using namespace nova::ixp;

std::vector<Temp> ixp::instrUses(const MachineInstr &I) {
  std::vector<Temp> Uses;
  for (const MOperand &S : I.Srcs)
    if (!S.IsConst)
      Uses.push_back(S.T);
  return Uses;
}

const std::vector<Temp> &ixp::instrDefs(const MachineInstr &I) {
  return I.Dsts;
}

Liveness::Liveness(const MachineProgram &M) {
  unsigned N = M.Blocks.size();
  In.resize(N);
  Out.resize(N);
  Before.resize(N);
  After.resize(N);
  for (unsigned B = 0; B != N; ++B) {
    Before[B].resize(M.Blocks[B].Instrs.size());
    After[B].resize(M.Blocks[B].Instrs.size());
  }

  // Block-level fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = N; B-- > 0;) {
      const Block &Blk = M.Blocks[B];
      std::set<Temp> Live;
      for (BlockId S : Blk.successors())
        Live.insert(In[S].begin(), In[S].end());
      if (Live != Out[B]) {
        Out[B] = Live;
        Changed = true;
      }
      for (unsigned I = Blk.Instrs.size(); I-- > 0;) {
        const MachineInstr &MI = Blk.Instrs[I];
        for (Temp D : instrDefs(MI))
          Live.erase(D);
        for (Temp U : instrUses(MI))
          Live.insert(U);
      }
      if (Live != In[B]) {
        In[B] = std::move(Live);
        Changed = true;
      }
    }
  }

  // Per-instruction sets.
  for (unsigned B = 0; B != N; ++B) {
    const Block &Blk = M.Blocks[B];
    std::set<Temp> Live = Out[B];
    for (unsigned I = Blk.Instrs.size(); I-- > 0;) {
      After[B][I] = Live;
      const MachineInstr &MI = Blk.Instrs[I];
      for (Temp D : instrDefs(MI))
        Live.erase(D);
      for (Temp U : instrUses(MI))
        Live.insert(U);
      Before[B][I] = Live;
    }
  }
}
