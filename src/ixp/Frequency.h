//===- Frequency.h - Static execution frequency estimation ------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static frequency estimation in the style of Wu-Larus, combining branch
/// heuristics with Dempster-Shafer evidence combination (paper Section 7:
/// "Our own variation of the Wu-Larus frequency estimation can cope with
/// irreducible flowgraphs"). Frequencies weight the move costs in the
/// ILP objective.
///
/// Heuristics used:
///  - loop heuristic: the back-edge side of a branch is taken with
///    probability 0.88;
///  - opcode heuristic: equality tests succeed with probability 0.3 (and
///    inequality with 0.7).
///
/// Block frequencies are obtained by damped flow propagation from the
/// entry, which converges on irreducible graphs too.
///
//===----------------------------------------------------------------------===//

#ifndef IXP_FREQUENCY_H
#define IXP_FREQUENCY_H

#include "ixp/MachineIr.h"

#include <vector>

namespace nova {
namespace ixp {

/// Combines two probability estimates with Dempster-Shafer:
/// p = p1 p2 / (p1 p2 + (1-p1)(1-p2)).
double dempsterShafer(double P1, double P2);

class FrequencyInfo {
public:
  explicit FrequencyInfo(const MachineProgram &M);

  /// Estimated executions of block \p B per entry execution.
  double blockFreq(BlockId B) const { return Freq[B]; }

  /// Probability that the Branch terminating \p B is taken (Target side).
  double takenProb(BlockId B) const { return TakenProb[B]; }

  bool isBackEdge(BlockId From, BlockId To) const;

private:
  std::vector<double> Freq;
  std::vector<double> TakenProb;
  std::vector<std::pair<BlockId, BlockId>> BackEdges;
};

} // namespace ixp
} // namespace nova

#endif // IXP_FREQUENCY_H
