//===- ISel.h - CPS to IXP instruction selection ----------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers optimized CPS into the machine flowgraph:
///  - every reachable CPS function becomes a block (loop headers, join
///    points and handlers are the only functions left after
///    de-proceduralization);
///  - jumps with arguments become parallel-copy Move sequences (cycles
///    broken through a scratch temporary);
///  - constants become Imm instructions, except shift counts, which the
///    ISA encodes as immediates.
///
//===----------------------------------------------------------------------===//

#ifndef IXP_ISEL_H
#define IXP_ISEL_H

#include "cps/Ir.h"
#include "ixp/MachineIr.h"
#include "support/Diagnostics.h"

namespace nova {
namespace ixp {

/// Selects instructions for \p P. Fails (with diagnostics) if an App with
/// an unresolved (non-label) callee survives optimization.
bool selectInstructions(const cps::CpsProgram &P, DiagnosticEngine &Diags,
                        MachineProgram &Out);

} // namespace ixp
} // namespace nova

#endif // IXP_ISEL_H
