//===- Machine.cpp --------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ixp/Machine.h"

#include <limits>

using namespace nova;
using namespace nova::ixp;

const char *ixp::bankName(Bank B) {
  switch (B) {
  case Bank::A:  return "A";
  case Bank::B:  return "B";
  case Bank::L:  return "L";
  case Bank::S:  return "S";
  case Bank::LD: return "LD";
  case Bank::SD: return "SD";
  case Bank::M:  return "M";
  case Bank::C:  return "C";
  }
  return "?";
}

namespace {

struct Edge {
  Bank From, To;
  double Cost;
};

/// Atomic data-path edges of the micro-engine:
///  - the ALU can forward any readable register to any writable one
///    (one instruction, cost mvC; B sources carry the paper's bias);
///  - S/SD contents can be stored to scratch (the spill area);
///  - scratch can be reloaded into the read transfer banks.
std::vector<Edge> atomicEdges(const CostModel &Costs) {
  std::vector<Edge> Edges;
  for (Bank From : {Bank::A, Bank::B, Bank::L, Bank::LD}) {
    double C = From == Bank::B ? Costs.MoveCost * Costs.BBias
                               : Costs.MoveCost;
    for (Bank To : {Bank::A, Bank::B, Bank::S, Bank::SD})
      if (From != To)
        Edges.push_back({From, To, C});
  }
  Edges.push_back({Bank::S, Bank::M, Costs.StoreCost});
  Edges.push_back({Bank::SD, Bank::M, Costs.StoreCost});
  Edges.push_back({Bank::M, Bank::L, Costs.LoadCost});
  Edges.push_back({Bank::M, Bank::LD, Costs.LoadCost});
  return Edges;
}

struct PathResult {
  double Cost;
  std::vector<Bank> Nodes;
};

/// Bellman-Ford with predecessor tracking over the 8-bank graph.
std::optional<PathResult> shortest(Bank From, Bank To,
                                   const CostModel &Costs,
                                   bool AllowSpillTransit, bool UnitCosts) {
  if (From == To)
    return PathResult{0.0, {From}};
  constexpr double Inf = std::numeric_limits<double>::infinity();
  std::array<double, NumBanks> Dist;
  std::array<int, NumBanks> Pred;
  Dist.fill(Inf);
  Pred.fill(-1);
  Dist[static_cast<unsigned>(From)] = 0.0;
  std::vector<Edge> Edges = atomicEdges(Costs);
  for (unsigned Iter = 0; Iter != NumBanks; ++Iter)
    for (const Edge &E : Edges) {
      // M may appear only as an endpoint when spill transit is forbidden.
      if (!AllowSpillTransit &&
          ((E.From == Bank::M && From != Bank::M) ||
           (E.To == Bank::M && To != Bank::M)))
        continue;
      double C = UnitCosts ? 1.0 : E.Cost;
      unsigned F = static_cast<unsigned>(E.From);
      unsigned T = static_cast<unsigned>(E.To);
      if (Dist[F] + C < Dist[T]) {
        Dist[T] = Dist[F] + C;
        Pred[T] = static_cast<int>(F);
      }
    }
  unsigned T = static_cast<unsigned>(To);
  if (Dist[T] == Inf)
    return std::nullopt;
  PathResult R;
  R.Cost = Dist[T];
  std::vector<Bank> Rev;
  for (int N = static_cast<int>(T); N != -1;
       N = Pred[static_cast<unsigned>(N)])
    Rev.push_back(static_cast<Bank>(N));
  R.Nodes.assign(Rev.rbegin(), Rev.rend());
  return R;
}

} // namespace

std::optional<double> ixp::interBankMoveCost(Bank From, Bank To,
                                             const CostModel &Costs,
                                             bool AllowSpillTransit) {
  auto R = shortest(From, To, Costs, AllowSpillTransit, /*UnitCosts=*/false);
  if (!R)
    return std::nullopt;
  return R->Cost;
}

std::optional<unsigned> ixp::interBankMoveSteps(Bank From, Bank To) {
  auto R = shortest(From, To, CostModel{}, /*AllowSpillTransit=*/true,
                    /*UnitCosts=*/true);
  if (!R)
    return std::nullopt;
  return static_cast<unsigned>(R->Nodes.size() - 1);
}

std::optional<std::vector<Bank>> ixp::interBankMovePath(Bank From, Bank To,
                                                        bool AllowSpillTransit) {
  auto R = shortest(From, To, CostModel{}, AllowSpillTransit,
                    /*UnitCosts=*/false);
  if (!R)
    return std::nullopt;
  return R->Nodes;
}

