//===- MachineIr.h - IXP machine-level flowgraph ----------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level program representation the allocator works on: a
/// flowgraph of basic blocks over virtual temporaries. Program points sit
/// between instructions exactly as in the paper's model (Section 5.2):
/// every instruction lies between two points, and the point after a
/// block's terminator connects to the entry points of its successors.
///
//===----------------------------------------------------------------------===//

#ifndef IXP_MACHINEIR_H
#define IXP_MACHINEIR_H

#include "cps/Ir.h" // PrimOp, CmpOp, MemSpace
#include "ixp/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nova {
namespace ixp {

using Temp = uint32_t;
using BlockId = uint32_t;
inline constexpr BlockId NoBlock = ~0u;

/// Machine opcodes. Operand bank constraints (paper Sections 5-6):
///  - Alu/Move/Imm results go to {A,B,S,SD}; Alu sources come from
///    {A,B,L,LD} with the pairing rules (not both from one bank, not one
///    from L and one from LD);
///  - reads define consecutive registers in L (SRAM/scratch) or LD
///    (SDRAM); writes consume consecutive registers in S or SD;
///  - Hash and BitTestSet define an L register and consume an S register
///    with the same register number (SameReg);
///  - Clone is the SSU pseudo: targets may share the source's location;
///  - Branch compares two ALU-input operands.
enum class MOp : uint8_t {
  Alu,        ///< Dsts[0] = Prim(Srcs...)
  Imm,        ///< Dsts[0] = constant (1-2 cycle load per paper §12)
  Move,       ///< Dsts[0] = Srcs[0] (ALU pass-through)
  MemRead,    ///< Dsts[0..n) = Space[Srcs[0]]
  MemWrite,   ///< Space[Srcs[0]] <- Srcs[1..]
  Hash,       ///< Dsts[0] = hash(Srcs[0])
  BitTestSet, ///< Dsts[0] = bit_test_set(Space[Srcs[0]], Srcs[1])
  Clone,      ///< Dsts[0..k) = Srcs[0]
  Branch,     ///< if (Srcs[0] Cmp Srcs[1]) goto Target else TargetElse
  Jump,       ///< goto Target
  Halt,       ///< end of program; Srcs are the observable results
};

/// An instruction operand: a temporary or an inline constant. Inline
/// constants are legal only where the ISA encodes immediates (shift
/// counts); everything else is materialized through Imm.
struct MOperand {
  bool IsConst = false;
  Temp T = 0;
  uint32_t Value = 0;

  static MOperand temp(Temp T) { return {false, T, 0}; }
  static MOperand constant(uint32_t V) { return {true, 0, V}; }
};

struct MachineInstr {
  MOp Op = MOp::Halt;
  cps::PrimOp Alu = cps::PrimOp::Add;
  cps::CmpOp Cmp = cps::CmpOp::Eq;
  MemSpace Space = MemSpace::Sram;
  uint32_t Imm = 0; ///< constant of an Imm instruction
  std::vector<MOperand> Srcs;
  std::vector<Temp> Dsts;
  BlockId Target = NoBlock;     ///< Branch taken / Jump target
  BlockId TargetElse = NoBlock; ///< Branch fallthrough

  bool isTerminator() const {
    return Op == MOp::Branch || Op == MOp::Jump || Op == MOp::Halt;
  }
};

struct Block {
  BlockId Id = NoBlock;
  std::string Name;
  std::vector<MachineInstr> Instrs;

  const MachineInstr &terminator() const { return Instrs.back(); }
  std::vector<BlockId> successors() const {
    const MachineInstr &T = Instrs.back();
    switch (T.Op) {
    case MOp::Branch:
      return {T.Target, T.TargetElse};
    case MOp::Jump:
      return {T.Target};
    default:
      return {};
    }
  }
};

/// A whole machine program (one micro-engine thread's code).
struct MachineProgram {
  std::vector<Block> Blocks;
  BlockId Entry = NoBlock;
  /// Temps holding the program arguments on entry (the harness places
  /// them in the A bank, registers 0..n-1).
  std::vector<Temp> EntryParams;
  unsigned NumTemps = 0;
  /// Debug names per temp (may be shorter than NumTemps).
  std::vector<std::string> TempNames;

  Temp newTemp(const std::string &Name = "") {
    if (!Name.empty()) {
      TempNames.resize(NumTemps + 1);
      TempNames.back() = Name;
    }
    return NumTemps++;
  }

  std::string tempName(Temp T) const {
    std::string N = T < TempNames.size() ? TempNames[T] : "";
    return "t" + std::to_string(T) + (N.empty() ? "" : "." + N);
  }

  unsigned numInstructions() const {
    unsigned N = 0;
    for (const Block &B : Blocks)
      N += B.Instrs.size();
    return N;
  }

  std::string print() const;
};

const char *mopName(MOp Op);

} // namespace ixp
} // namespace nova

#endif // IXP_MACHINEIR_H
