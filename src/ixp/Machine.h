//===- Machine.h - IXP1200 micro-engine machine model -----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-bank structure and data-path rules of one IXP1200
/// micro-engine thread (paper Figure 1), shared by the allocator's ILP
/// model, the allocation verifier, and the simulator:
///
///  - general purpose banks A and B (16 registers each; the allocator
///    reserves one A register for parallel-copy cycles, hence K_A = 15);
///  - read transfer banks L (SRAM/scratch loads) and LD (SDRAM loads),
///    8 registers each, written only by memory reads;
///  - write transfer banks S and SD (8 each), sources of all stores,
///    written only by the ALU, and unreadable by the ALU once written;
///  - scratch memory M used as the spill area (unbounded capacity);
///  - a virtual constant bank C for the re-materialization extension of
///    the paper's future-work section.
///
/// ALU inputs come from {A, B, L, LD} with at most one operand from each
/// of A, B, and L+LD; outputs go to {A, B, S, SD}.
///
//===----------------------------------------------------------------------===//

#ifndef IXP_MACHINE_H
#define IXP_MACHINE_H

#include "ixp/MachineParams.h"

#include <array>
#include <vector>
#include <cstdint>
#include <optional>

namespace nova {
namespace ixp {

enum class Bank : uint8_t { A, B, L, S, LD, SD, M, C };
inline constexpr unsigned NumBanks = 8;

/// Banks that participate in the ILP model's Move/Before/After variables
/// (all but the virtual constant bank, which is an opt-in extension).
inline constexpr std::array<Bank, 7> AllocatableBanks = {
    Bank::A, Bank::B, Bank::L, Bank::S, Bank::LD, Bank::SD, Bank::M};

inline constexpr std::array<Bank, 4> TransferBanks = {Bank::L, Bank::S,
                                                      Bank::LD, Bank::SD};

const char *bankName(Bank B);

/// Register capacity of a bank (paper Section 6); ~0u means unbounded.
inline unsigned bankCapacity(Bank B) {
  switch (B) {
  case Bank::A:
    return 15; // one register reserved for parallel-copy cycles
  case Bank::B:
    return 16;
  case Bank::L:
  case Bank::S:
  case Bank::LD:
  case Bank::SD:
    return 8;
  case Bank::M:
  case Bank::C:
    return ~0u;
  }
  return 0;
}

inline bool isTransferBank(Bank B) {
  return B == Bank::L || B == Bank::S || B == Bank::LD || B == Bank::SD;
}

inline bool isAluInputBank(Bank B) {
  return B == Bank::A || B == Bank::B || B == Bank::L || B == Bank::LD;
}

inline bool isAluOutputBank(Bank B) {
  return B == Bank::A || B == Bank::B || B == Bank::S || B == Bank::SD;
}

/// Cost parameters of the paper's objective function (Section 7).
/// Defaults read the shared chip description (MachineParams), so the ILP
/// cost model, the simulator, and the chip contention model agree on one
/// definition of the machine's constants.
struct CostModel {
  double MoveCost = MachineParams{}.MoveCost;   ///< mvC: reg-reg move
  double LoadCost = MachineParams{}.SpillLoadCost;   ///< ldC: spill reload
  double StoreCost = MachineParams{}.SpillStoreCost; ///< stC: spill store
  double BBias = MachineParams{}.BBias; ///< bias against B-bank moves
};

/// Cost of moving a value from \p From to \p To along the cheapest legal
/// data path (composing ALU moves, spill stores, and reloads), or nullopt
/// if no path exists. From == To costs 0. When \p AllowSpillTransit is
/// false, paths through spill memory M are forbidden (used by the
/// spill-free fast path).
std::optional<double> interBankMoveCost(Bank From, Bank To,
                                        const CostModel &Costs = {},
                                        bool AllowSpillTransit = true);

/// Number of machine instructions on that cheapest path (0 for From==To).
/// Used by solution extraction to materialize the move.
std::optional<unsigned> interBankMoveSteps(Bank From, Bank To);

/// The bank sequence of the cheapest path From -> ... -> To (inclusive of
/// both endpoints; {From} when From == To). Nullopt if unreachable.
std::optional<std::vector<Bank>> interBankMovePath(Bank From, Bank To,
                                                   bool AllowSpillTransit =
                                                       true);

} // namespace ixp
} // namespace nova

#endif // IXP_MACHINE_H
