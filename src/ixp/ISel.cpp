//===- ISel.cpp - CPS to IXP instruction selection -------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ixp/ISel.h"

#include "support/Debug.h"
#include "support/StringUtils.h"

#include <functional>
#include <map>
#include <set>

using namespace nova;
using namespace nova::ixp;
using cps::Atom;
using cps::CpsProgram;
using cps::Exp;
using cps::ExpKind;
using cps::FuncId;

namespace {

class Selector {
public:
  Selector(const CpsProgram &P, DiagnosticEngine &Diags, MachineProgram &M)
      : P(P), Diags(Diags), M(M) {}

  bool run();

private:
  const CpsProgram &P;
  DiagnosticEngine &Diags;
  MachineProgram &M;

  std::map<cps::ValueId, Temp> TempOf;
  std::map<FuncId, BlockId> BlockOf;
  std::map<FuncId, std::vector<Temp>> ParamTemps;
  bool Failed = false;

  Temp tempFor(cps::ValueId V) {
    auto It = TempOf.find(V);
    if (It != TempOf.end())
      return It->second;
    Temp T = M.newTemp(P.valueName(V));
    TempOf[V] = T;
    return T;
  }

  BlockId newBlock(const std::string &Name) {
    BlockId Id = static_cast<BlockId>(M.Blocks.size());
    M.Blocks.push_back(Block{Id, Name, {}});
    return Id;
  }

  /// Appending to M.Blocks can reallocate, so blocks are addressed by id.
  void emit(BlockId B, MachineInstr I) {
    M.Blocks[B].Instrs.push_back(std::move(I));
  }

  /// Materializes an atom as an operand; constants become Imm loads
  /// unless \p AllowConst (immediate-capable position).
  MOperand operand(BlockId B, const Atom &A, bool AllowConst) {
    switch (A.K) {
    case Atom::Kind::Temp:
      return MOperand::temp(tempFor(A.Id));
    case Atom::Kind::Const: {
      if (AllowConst)
        return MOperand::constant(A.Value);
      Temp T = M.newTemp("k" + std::to_string(A.Value));
      MachineInstr I;
      I.Op = MOp::Imm;
      I.Imm = A.Value;
      I.Dsts = {T};
      emit(B, std::move(I));
      return MOperand::temp(T);
    }
    case Atom::Kind::Label:
      Diags.error(SourceLoc::invalid(),
                  "instruction selection: a continuation label is used as "
                  "data (unresolved exception value)");
      Failed = true;
      return MOperand::constant(0);
    }
    NOVA_UNREACHABLE("unhandled atom kind");
  }

  /// Emits the parallel copy `Dsts[i] <- Args[i]` before a jump,
  /// sequentializing with cycle breaking.
  void emitParallelCopy(BlockId B, const std::vector<Temp> &Dsts,
                        const std::vector<Atom> &Args) {
    struct Pair {
      Temp Dst;
      Temp Src;
    };
    std::vector<Pair> Pairs;
    std::vector<std::pair<Temp, uint32_t>> ConstMoves;
    for (unsigned I = 0; I != Dsts.size(); ++I) {
      const Atom &A = Args[I];
      if (A.isConst()) {
        ConstMoves.push_back({Dsts[I], A.Value});
        continue;
      }
      if (A.isLabel()) {
        Diags.error(SourceLoc::invalid(),
                    "instruction selection: label passed as a jump "
                    "argument");
        Failed = true;
        continue;
      }
      Temp Src = tempFor(A.Id);
      if (Src != Dsts[I])
        Pairs.push_back({Dsts[I], Src});
    }

    auto EmitMove = [&](Temp Dst, Temp Src) {
      MachineInstr I;
      I.Op = MOp::Move;
      I.Srcs = {MOperand::temp(Src)};
      I.Dsts = {Dst};
      emit(B, std::move(I));
    };

    while (!Pairs.empty()) {
      // Find a pair whose destination is not needed as a source.
      bool Progress = false;
      for (unsigned I = 0; I != Pairs.size(); ++I) {
        bool DstIsSource = false;
        for (const Pair &Q : Pairs)
          DstIsSource |= Q.Src == Pairs[I].Dst;
        if (DstIsSource)
          continue;
        EmitMove(Pairs[I].Dst, Pairs[I].Src);
        Pairs.erase(Pairs.begin() + I);
        Progress = true;
        break;
      }
      if (Progress)
        continue;
      // Cycle: rotate through a scratch temp (the allocator keeps one A
      // register free for exactly this, paper Section 6).
      Temp Scratch = M.newTemp("cyc");
      Temp Broken = Pairs[0].Dst;
      EmitMove(Scratch, Broken);
      for (Pair &Q : Pairs)
        if (Q.Src == Broken)
          Q.Src = Scratch;
    }
    for (auto &[Dst, Value] : ConstMoves) {
      MachineInstr I;
      I.Op = MOp::Imm;
      I.Imm = Value;
      I.Dsts = {Dst};
      emit(B, std::move(I));
    }
  }

  /// Ensures function \p F has a block (creating and scheduling it).
  BlockId blockFor(FuncId F) {
    auto It = BlockOf.find(F);
    if (It != BlockOf.end())
      return It->second;
    const cps::Function &Fn = P.func(F);
    BlockId B = newBlock(Fn.Name);
    BlockOf[F] = B;
    std::vector<Temp> Params;
    for (cps::ValueId V : Fn.Params)
      Params.push_back(tempFor(V));
    ParamTemps[F] = std::move(Params);
    Pending.push_back(F);
    return B;
  }

  std::vector<FuncId> Pending;

  void lower(BlockId B, const Exp *E);

  void lowerBranchArm(BlockId ArmBlock, const Exp *Arm) {
    lower(ArmBlock, Arm);
  }
};

void Selector::lower(BlockId B, const Exp *E) {
  for (; E;) {
    switch (E->Kind) {
    case ExpKind::Prim: {
      MachineInstr I;
      if (E->Args[0].isConst() && E->Prim != cps::PrimOp::Not &&
          E->Args.size() > 1 && E->Args[1].isConst()) {
        // Both constant: the optimizer normally folds this; keep a
        // fallback for unoptimized programs.
        I.Op = MOp::Imm;
        // Shared semantics from cps/Ir.h: isel's fold may never disagree
        // with the CPS evaluator or the simulator.
        I.Imm = cps::evalPrim(E->Prim, E->Args[0].Value, E->Args[1].Value);
        I.Dsts = {tempFor(E->Results[0])};
        emit(B, std::move(I));
        E = E->Cont;
        continue;
      }
      I.Op = MOp::Alu;
      I.Alu = E->Prim;
      bool ShiftCount = E->Prim == cps::PrimOp::Shl ||
                        E->Prim == cps::PrimOp::Shr;
      I.Srcs.push_back(operand(B, E->Args[0], /*AllowConst=*/false));
      if (E->Args.size() > 1)
        I.Srcs.push_back(operand(B, E->Args[1], /*AllowConst=*/ShiftCount));
      I.Dsts = {tempFor(E->Results[0])};
      emit(B, std::move(I));
      E = E->Cont;
      continue;
    }
    case ExpKind::MemRead: {
      MachineInstr I;
      I.Op = MOp::MemRead;
      I.Space = E->Space;
      I.Srcs = {operand(B, E->Args[0], /*AllowConst=*/false)};
      for (cps::ValueId R : E->Results)
        I.Dsts.push_back(tempFor(R));
      emit(B, std::move(I));
      E = E->Cont;
      continue;
    }
    case ExpKind::MemWrite: {
      MachineInstr I;
      I.Op = MOp::MemWrite;
      I.Space = E->Space;
      I.Srcs.push_back(operand(B, E->Args[0], /*AllowConst=*/false));
      for (unsigned K = 1; K != E->Args.size(); ++K)
        I.Srcs.push_back(operand(B, E->Args[K], /*AllowConst=*/false));
      emit(B, std::move(I));
      E = E->Cont;
      continue;
    }
    case ExpKind::Hash: {
      MachineInstr I;
      I.Op = MOp::Hash;
      I.Srcs = {operand(B, E->Args[0], /*AllowConst=*/false)};
      I.Dsts = {tempFor(E->Results[0])};
      emit(B, std::move(I));
      E = E->Cont;
      continue;
    }
    case ExpKind::BitTestSet: {
      MachineInstr I;
      I.Op = MOp::BitTestSet;
      I.Space = E->Space;
      I.Srcs = {operand(B, E->Args[0], /*AllowConst=*/false),
                operand(B, E->Args[1], /*AllowConst=*/false)};
      I.Dsts = {tempFor(E->Results[0])};
      emit(B, std::move(I));
      E = E->Cont;
      continue;
    }
    case ExpKind::Clone: {
      MachineInstr I;
      I.Op = MOp::Clone;
      I.Srcs = {operand(B, E->Args[0], /*AllowConst=*/false)};
      for (cps::ValueId R : E->Results)
        I.Dsts.push_back(tempFor(R));
      emit(B, std::move(I));
      E = E->Cont;
      continue;
    }
    case ExpKind::Fix:
      // Scoping only; referenced functions get blocks on demand.
      E = E->Cont;
      continue;
    case ExpKind::Branch: {
      MachineInstr I;
      I.Op = MOp::Branch;
      I.Cmp = E->Cmp;
      I.Srcs = {operand(B, E->Args[0], /*AllowConst=*/false),
                operand(B, E->Args[1], /*AllowConst=*/false)};
      BlockId ThenB = newBlock("then");
      BlockId ElseB = newBlock("else");
      I.Target = ThenB;
      I.TargetElse = ElseB;
      emit(B, std::move(I));
      lower(ThenB, E->Then);
      lower(ElseB, E->Else);
      return;
    }
    case ExpKind::App: {
      if (!E->Callee.isLabel()) {
        Diags.error(SourceLoc::invalid(),
                    "instruction selection: jump to unresolved "
                    "continuation value");
        Failed = true;
        return;
      }
      FuncId F = E->Callee.Func;
      BlockId TargetB = blockFor(F);
      emitParallelCopy(B, ParamTemps[F], E->Args);
      MachineInstr I;
      I.Op = MOp::Jump;
      I.Target = TargetB;
      emit(B, std::move(I));
      return;
    }
    case ExpKind::Halt: {
      MachineInstr I;
      I.Op = MOp::Halt;
      for (const Atom &A : E->Args)
        I.Srcs.push_back(operand(B, A, /*AllowConst=*/true));
      emit(B, std::move(I));
      return;
    }
    }
    NOVA_UNREACHABLE("unhandled exp kind");
  }
  // A null expression chain is a conversion bug upstream.
  Diags.error(SourceLoc::invalid(),
              "instruction selection: truncated expression chain");
  Failed = true;
}

bool Selector::run() {
  if (P.Entry == cps::NoFunc) {
    Diags.error(SourceLoc::invalid(), "no entry function");
    return false;
  }
  BlockId EntryB = blockFor(P.Entry);
  M.Entry = EntryB;
  while (!Pending.empty()) {
    FuncId F = Pending.back();
    Pending.pop_back();
    lower(BlockOf[F], P.func(F).Body);
  }
  M.EntryParams = ParamTemps[P.Entry];
  return !Failed;
}

} // namespace

bool ixp::selectInstructions(const CpsProgram &P, DiagnosticEngine &Diags,
                             MachineProgram &Out) {
  Selector S(P, Diags, Out);
  return S.run();
}
