//===- MachineIr.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ixp/MachineIr.h"

#include <sstream>

using namespace nova;
using namespace nova::ixp;

const char *ixp::mopName(MOp Op) {
  switch (Op) {
  case MOp::Alu:        return "alu";
  case MOp::Imm:        return "imm";
  case MOp::Move:       return "mov";
  case MOp::MemRead:    return "read";
  case MOp::MemWrite:   return "write";
  case MOp::Hash:       return "hash";
  case MOp::BitTestSet: return "bts";
  case MOp::Clone:      return "clone";
  case MOp::Branch:     return "br";
  case MOp::Jump:       return "jmp";
  case MOp::Halt:       return "halt";
  }
  return "?";
}

std::string MachineProgram::print() const {
  std::ostringstream OS;
  auto Operand = [&](const MOperand &O) {
    if (O.IsConst) {
      OS << O.Value;
    } else {
      OS << tempName(O.T);
    }
  };
  for (const Block &B : Blocks) {
    OS << (B.Id == Entry ? "entry " : "") << "block b" << B.Id;
    if (!B.Name.empty())
      OS << '_' << B.Name;
    OS << ":\n";
    for (const MachineInstr &I : B.Instrs) {
      OS << "  ";
      if (!I.Dsts.empty()) {
        for (unsigned K = 0; K != I.Dsts.size(); ++K)
          OS << (K ? ", " : "") << tempName(I.Dsts[K]);
        OS << " = ";
      }
      OS << mopName(I.Op);
      switch (I.Op) {
      case MOp::Alu:
        OS << '.' << cps::primOpName(I.Alu);
        break;
      case MOp::Imm:
        OS << ' ' << I.Imm;
        break;
      case MOp::MemRead:
      case MOp::MemWrite:
      case MOp::BitTestSet:
        OS << '.' << cps::memSpaceName(I.Space);
        break;
      case MOp::Branch:
        OS << '.' << cps::cmpOpName(I.Cmp);
        break;
      default:
        break;
      }
      for (const MOperand &S : I.Srcs) {
        OS << ' ';
        Operand(S);
      }
      if (I.Op == MOp::Branch)
        OS << " -> b" << I.Target << " / b" << I.TargetElse;
      if (I.Op == MOp::Jump)
        OS << " -> b" << I.Target;
      OS << '\n';
    }
  }
  return OS.str();
}
