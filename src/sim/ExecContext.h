//===- ExecContext.h - Re-entrant allocated-mode hardware context -*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One IXP hardware context as a resumable interpreter. The single-ME
/// runAllocated loop was factored into this class so the whole-chip
/// simulator (src/chip) can context-swap a thread whenever it issues a
/// memory reference — the IXP's signature latency-hiding trick — while
/// runAllocated remains a thin driver with bit-identical behaviour.
///
/// resume() executes instructions until the run completes (halt or trap)
/// or a memory reference is issued. Memory *data* effects apply at issue,
/// in the issuing context's program order; the caller decides what the
/// reference costs (flat LatencyModel charge for the single-threaded
/// simulator, transaction-queue completion time for the contended chip)
/// and pays it with charge(). Each context owns a private quarter of the
/// register files, exactly like the hardware.
///
/// Spill isolation: allocated code addresses its spill slots as absolute
/// scratch words from AllocatedProgram::SpillBase. On a chip, several
/// contexts run the same program image concurrently, so each context gets
/// a private spill window: setSpillRebase() shifts every scratch access
/// that lands inside the program's spill window by a per-context offset.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_EXECCONTEXT_H
#define SIM_EXECCONTEXT_H

#include "sim/Simulator.h"

namespace nova {
namespace sim {

/// A resumable allocated-mode execution: private register files, a
/// program counter, and the in-progress RunResult accounting.
class AllocContext {
public:
  /// Why resume() returned.
  struct Yield {
    enum class Kind : uint8_t {
      Done, ///< run completed (halt or trap) — see result()
      Mem   ///< a memory reference to Space was issued (data already
            ///< applied); charge() its latency, then resume() again
    };
    Kind K = Kind::Done;
    MemSpace Space = MemSpace::Sram;
    /// Cycles accrued onto the result during this burst (the context's
    /// compute time between swap points; excludes whatever the caller
    /// charges for the memory reference itself).
    uint64_t Cycles = 0;
  };

  AllocContext() = default;
  explicit AllocContext(const alloc::AllocatedProgram *P) : Prog(P) {}

  void setProgram(const alloc::AllocatedProgram *P) { Prog = P; }
  const alloc::AllocatedProgram *program() const { return Prog; }

  /// Per-context spill window displacement in scratch words (see file
  /// comment). 0 = run at the program's own spill addresses.
  void setSpillRebase(uint32_t Words) { SpillRebase = Words; }

  /// Re-targets the context at a fresh run: clears the register files and
  /// accounting, loads \p Args into A0..A(n-1), and validates the entry.
  /// On a malformed entry the context is immediately done() with the
  /// trap in result().
  void reset(const std::vector<uint32_t> &Args);

  /// True when the current run has completed (halt or trap) — result()
  /// is final and resume() must not be called again.
  bool done() const { return Finished; }

  /// Discards an in-progress run: the context becomes done() with an
  /// empty (non-Ok) result and may be reset() for a fresh attempt. The
  /// chip supervisor uses this to recover a wedged hardware context
  /// before requeueing its packet. No-op when already done().
  void abort() {
    Finished = true;
    R = RunResult();
    R.Ok = false;
  }

  const RunResult &result() const { return R; }
  RunResult takeResult() { return std::move(R); }

  /// Adds externally-decided cycles (memory latency, queueing delay) to
  /// the run's cycle count.
  void charge(uint64_t Cycles) { R.Cycles += Cycles; }

  /// Executes until the next swap point (see Yield). Requires !done().
  Yield resume(Memory &Mem, const RunOptions &Opts);

  /// Checkpoint serialization of the resumable run state: register
  /// files, position, accounting. The program binding and spill rebase
  /// are construction-time configuration and are NOT saved — restore
  /// into a context already wired to the same program.
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);

private:
  const alloc::AllocatedProgram *Prog = nullptr;
  RunResult R;
  bool Finished = true; ///< no run in progress until reset()
  bool Err = false;     ///< illegal-register latch (checked at swap points)
  uint32_t SpillRebase = 0;
  ixp::BlockId B = 0;
  unsigned Idx = 0;
  // Register files. Bank sizes are architectural: 16 GPRs per ALU bank,
  // 8 per transfer bank (one context's quarter of the 32-register files).
  uint32_t RegA[16] = {0}, RegB[16] = {0}, RegL[8] = {0}, RegS[8] = {0},
           RegLD[8] = {0}, RegSD[8] = {0};

  struct File {
    uint32_t *Regs;
    unsigned Size;
  };
  File regFile(ixp::Bank Bk);
  uint32_t read(const alloc::AOperand &O);
  void writeReg(alloc::PhysLoc L, uint32_t V);
};

} // namespace sim
} // namespace nova

#endif // SIM_EXECCONTEXT_H
