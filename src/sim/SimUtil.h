//===- SimUtil.h - Internal helpers shared by the sim translation units ---===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trap-construction and MemSpace helpers shared by the functional
/// interpreter (Simulator.cpp) and the re-entrant allocated-mode context
/// (ExecContext.cpp). Internal to src/sim — not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_SIMUTIL_H
#define SIM_SIMUTIL_H

#include "sim/Simulator.h"
#include "support/StringUtils.h"

namespace nova {
namespace sim {
namespace detail {

/// Sets the trap fields of \p R and returns it for `return trap(...)`.
inline RunResult &trap(RunResult &R, TrapKind K, const std::string &Detail) {
  R.Ok = false;
  R.Trap = K;
  R.Error = Status::error(
      StatusCode::SimTrap, Phase::Execute,
      formatf("%s: %s", sim::trapKindName(K), Detail.c_str()));
  return R;
}

inline TrapKind rangeTrapFor(MemSpace S) {
  switch (S) {
  case MemSpace::Sram:    return TrapKind::SramOutOfRange;
  case MemSpace::Sdram:   return TrapKind::SdramOutOfRange;
  case MemSpace::Scratch: return TrapKind::ScratchOutOfRange;
  }
  return TrapKind::IllegalMemSpace;
}

inline bool validSpace(MemSpace S) {
  return S == MemSpace::Sram || S == MemSpace::Sdram ||
         S == MemSpace::Scratch;
}

inline const char *spaceName(MemSpace S) {
  switch (S) {
  case MemSpace::Sram:    return "sram";
  case MemSpace::Sdram:   return "sdram";
  case MemSpace::Scratch: return "scratch";
  }
  return "?";
}

} // namespace detail
} // namespace sim
} // namespace nova

#endif // SIM_SIMUTIL_H
