//===- Simulator.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/HwHash.h"
#include "support/StringUtils.h"

using namespace nova;
using namespace nova::sim;
using namespace nova::ixp;

namespace {

uint32_t evalAlu(cps::PrimOp Op, uint32_t A, uint32_t B) {
  switch (Op) {
  case cps::PrimOp::Add: return A + B;
  case cps::PrimOp::Sub: return A - B;
  case cps::PrimOp::And: return A & B;
  case cps::PrimOp::Or:  return A | B;
  case cps::PrimOp::Xor: return A ^ B;
  case cps::PrimOp::Shl: return B >= 32 ? 0 : A << B;
  case cps::PrimOp::Shr: return B >= 32 ? 0 : A >> B;
  case cps::PrimOp::Not: return ~A;
  }
  return 0;
}

bool evalCmp(cps::CmpOp Op, uint32_t A, uint32_t B) {
  switch (Op) {
  case cps::CmpOp::Eq: return A == B;
  case cps::CmpOp::Ne: return A != B;
  case cps::CmpOp::Lt: return A < B;
  case cps::CmpOp::Gt: return A > B;
  case cps::CmpOp::Le: return A <= B;
  case cps::CmpOp::Ge: return A >= B;
  }
  return false;
}

} // namespace

double sim::throughputMbps(unsigned PayloadBytes, double CyclesPerPacket,
                           double ClockHz) {
  if (CyclesPerPacket <= 0)
    return 0.0;
  double PacketsPerSec = ClockHz / CyclesPerPacket;
  return PacketsPerSec * PayloadBytes * 8.0 / 1e6;
}

RunResult sim::runAllocated(const alloc::AllocatedProgram &P,
                            const std::vector<uint32_t> &Args, Memory &Mem,
                            const LatencyModel &Lat,
                            uint64_t MaxInstructions) {
  using alloc::AllocInstr;
  using alloc::AOperand;
  using alloc::PhysLoc;

  RunResult R;
  if (P.Entry == NoBlock) {
    R.Error = "no entry block";
    return R;
  }
  if (Args.size() > 15) {
    R.Error = "too many entry arguments";
    return R;
  }

  // Register files.
  uint32_t RegA[16] = {0}, RegB[16] = {0}, RegL[8] = {0}, RegS[8] = {0},
           RegLD[8] = {0}, RegSD[8] = {0};
  auto RegFile = [&](Bank B) -> uint32_t * {
    switch (B) {
    case Bank::A:  return RegA;
    case Bank::B:  return RegB;
    case Bank::L:  return RegL;
    case Bank::S:  return RegS;
    case Bank::LD: return RegLD;
    case Bank::SD: return RegSD;
    default:       return nullptr;
    }
  };
  auto Read = [&](const AOperand &O, bool &Err) -> uint32_t {
    if (O.IsConst)
      return O.Value;
    uint32_t *F = RegFile(O.Loc.B);
    if (!F) {
      Err = true;
      return 0;
    }
    return F[O.Loc.Reg & 15];
  };
  auto Write = [&](PhysLoc L, uint32_t V, bool &Err) {
    uint32_t *F = RegFile(L.B);
    if (!F) {
      Err = true;
      return;
    }
    F[L.Reg & 15] = V;
  };

  for (unsigned I = 0; I != Args.size(); ++I)
    RegA[I] = Args[I];

  BlockId B = P.Entry;
  unsigned Idx = 0;
  while (true) {
    if (++R.Instructions > MaxInstructions) {
      R.Error = "instruction limit exceeded";
      return R;
    }
    if (Idx >= P.Blocks[B].Instrs.size()) {
      R.Error = formatf("fell off the end of block b%u", B);
      return R;
    }
    const AllocInstr &I = P.Blocks[B].Instrs[Idx++];
    bool Err = false;
    switch (I.Op) {
    case MOp::Alu: {
      uint32_t A = Read(I.Srcs[0], Err);
      uint32_t Bv = I.Srcs.size() > 1 ? Read(I.Srcs[1], Err) : 0;
      Write(I.Dsts[0], evalAlu(I.Alu, A, Bv), Err);
      R.Cycles += Lat.Alu;
      break;
    }
    case MOp::Imm:
      Write(I.Dsts[0], I.Imm, Err);
      // Large constants need two instructions on the IXP (paper §12).
      R.Cycles += I.Imm <= 0xFFFF || (I.Imm & 0xFFFF) == 0 ? Lat.Imm
                                                           : Lat.Imm + 1;
      break;
    case MOp::Move:
      Write(I.Dsts[0], Read(I.Srcs[0], Err), Err);
      R.Cycles += Lat.Alu;
      break;
    case MOp::MemRead: {
      uint32_t Addr = Read(I.Srcs[0], Err);
      auto &Space = Mem.space(I.Space);
      for (unsigned K = 0; K != I.Dsts.size(); ++K)
        Write(I.Dsts[K], Space[Addr + K], Err);
      R.Cycles += Lat.memAccess(I.Space);
      break;
    }
    case MOp::MemWrite: {
      uint32_t Addr = Read(I.Srcs[0], Err);
      auto &Space = Mem.space(I.Space);
      for (unsigned K = 1; K != I.Srcs.size(); ++K)
        Space[Addr + K - 1] = Read(I.Srcs[K], Err);
      R.Cycles += Lat.memAccess(I.Space);
      break;
    }
    case MOp::Hash:
      Write(I.Dsts[0], hwHash(Read(I.Srcs[0], Err)), Err);
      R.Cycles += Lat.HashOp;
      break;
    case MOp::BitTestSet: {
      uint32_t Addr = Read(I.Srcs[0], Err);
      uint32_t Bits = Read(I.Srcs[1], Err);
      auto &Space = Mem.space(I.Space);
      uint32_t Old = Space[Addr];
      Space[Addr] = Old | Bits;
      Write(I.Dsts[0], Old, Err);
      R.Cycles += Lat.memAccess(I.Space);
      break;
    }
    case MOp::Clone:
      R.Error = "clone pseudo in allocated code";
      return R;
    case MOp::Branch:
      B = evalCmp(I.Cmp, Read(I.Srcs[0], Err), Read(I.Srcs[1], Err))
              ? I.Target
              : I.TargetElse;
      Idx = 0;
      R.Cycles += Lat.Branch;
      break;
    case MOp::Jump:
      B = I.Target;
      Idx = 0;
      R.Cycles += Lat.Branch;
      break;
    case MOp::Halt:
      for (const AOperand &S : I.Srcs)
        R.HaltValues.push_back(Read(S, Err));
      R.Ok = !Err;
      if (Err)
        R.Error = "illegal register access at halt";
      return R;
    }
    if (Err) {
      R.Error = formatf("illegal register access in block b%u", B);
      return R;
    }
  }
}

RunResult sim::runFunctional(const MachineProgram &M,
                             const std::vector<uint32_t> &Args, Memory &Mem,
                             uint64_t MaxInstructions) {
  RunResult R;
  if (M.Entry == NoBlock) {
    R.Error = "no entry block";
    return R;
  }
  if (Args.size() != M.EntryParams.size()) {
    R.Error = formatf("entry takes %zu args, got %zu",
                      M.EntryParams.size(), Args.size());
    return R;
  }
  std::vector<uint32_t> T(M.NumTemps, 0);
  for (unsigned I = 0; I != Args.size(); ++I)
    T[M.EntryParams[I]] = Args[I];

  auto Val = [&](const MOperand &O) { return O.IsConst ? O.Value : T[O.T]; };

  BlockId B = M.Entry;
  unsigned Idx = 0;
  while (true) {
    if (++R.Instructions > MaxInstructions) {
      R.Error = "instruction limit exceeded";
      return R;
    }
    if (Idx >= M.Blocks[B].Instrs.size()) {
      R.Error = formatf("fell off the end of block b%u", B);
      return R;
    }
    const MachineInstr &I = M.Blocks[B].Instrs[Idx++];
    switch (I.Op) {
    case MOp::Alu:
      T[I.Dsts[0]] = evalAlu(I.Alu, Val(I.Srcs[0]),
                             I.Srcs.size() > 1 ? Val(I.Srcs[1]) : 0);
      break;
    case MOp::Imm:
      T[I.Dsts[0]] = I.Imm;
      break;
    case MOp::Move:
      T[I.Dsts[0]] = Val(I.Srcs[0]);
      break;
    case MOp::MemRead: {
      uint32_t Addr = Val(I.Srcs[0]);
      auto &Space = Mem.space(I.Space);
      for (unsigned K = 0; K != I.Dsts.size(); ++K)
        T[I.Dsts[K]] = Space[Addr + K];
      break;
    }
    case MOp::MemWrite: {
      uint32_t Addr = Val(I.Srcs[0]);
      auto &Space = Mem.space(I.Space);
      for (unsigned K = 1; K != I.Srcs.size(); ++K)
        Space[Addr + K - 1] = Val(I.Srcs[K]);
      break;
    }
    case MOp::Hash:
      T[I.Dsts[0]] = hwHash(Val(I.Srcs[0]));
      break;
    case MOp::BitTestSet: {
      uint32_t Addr = Val(I.Srcs[0]);
      uint32_t Bits = Val(I.Srcs[1]);
      auto &Space = Mem.space(I.Space);
      uint32_t Old = Space[Addr];
      Space[Addr] = Old | Bits;
      T[I.Dsts[0]] = Old;
      break;
    }
    case MOp::Clone:
      for (Temp D : I.Dsts)
        T[D] = Val(I.Srcs[0]);
      break;
    case MOp::Branch:
      B = evalCmp(I.Cmp, Val(I.Srcs[0]), Val(I.Srcs[1])) ? I.Target
                                                         : I.TargetElse;
      Idx = 0;
      break;
    case MOp::Jump:
      B = I.Target;
      Idx = 0;
      break;
    case MOp::Halt:
      for (const MOperand &S : I.Srcs)
        R.HaltValues.push_back(Val(S));
      R.Ok = true;
      return R;
    }
  }
}
