//===- Simulator.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "sim/SimUtil.h"
#include "support/HwHash.h"
#include "support/StringUtils.h"

using namespace nova;
using namespace nova::sim;
using namespace nova::sim::detail;
using namespace nova::ixp;

const char *sim::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:              return "none";
  case TrapKind::IllegalRegister:   return "illegal-register";
  case TrapKind::IllegalMemSpace:   return "illegal-mem-space";
  case TrapKind::SramOutOfRange:    return "sram-out-of-range";
  case TrapKind::SdramOutOfRange:   return "sdram-out-of-range";
  case TrapKind::ScratchOutOfRange: return "scratch-out-of-range";
  case TrapKind::Watchdog:          return "watchdog";
  case TrapKind::ShiftRange:        return "shift-range";
  case TrapKind::MalformedProgram:  return "malformed-program";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Cycle histogram / stream stats
//===----------------------------------------------------------------------===//

unsigned CycleHistogram::bucketOf(uint64_t V) {
  // 8 sub-buckets per power of two: exact for V < 256 would need 8
  // buckets/decade starting at decade 3; below 16 the mapping is exact
  // anyway because sub-bucket width is < 1.
  if (V < 16)
    return static_cast<unsigned>(V);
  unsigned Decade = 63 - __builtin_clzll(V); // floor(log2 V), >= 4
  uint64_t Base = 1ull << Decade;
  unsigned Sub = static_cast<unsigned>((V - Base) / (Base / 8));
  unsigned B = 16 + (Decade - 4) * 8 + Sub;
  return B < NumBuckets ? B : NumBuckets - 1;
}

uint64_t CycleHistogram::bucketHigh(unsigned B) {
  if (B < 16)
    return B;
  unsigned Decade = 4 + (B - 16) / 8;
  unsigned Sub = (B - 16) % 8;
  uint64_t Base = 1ull << Decade;
  return Base + (Base / 8) * (Sub + 1) - 1;
}

void CycleHistogram::add(uint64_t Cycles) {
  ++Buckets[bucketOf(Cycles)];
  ++Total;
}

uint64_t CycleHistogram::quantile(double Q) const {
  if (Total == 0)
    return 0;
  uint64_t Need = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (Need == 0)
    Need = 1;
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Need)
      return bucketHigh(B);
  }
  return bucketHigh(NumBuckets - 1);
}

void RunStats::account(const RunResult &R, bool AppRejected,
                       unsigned PayloadBytes) {
  ++Packets;
  TotalCycles += R.Cycles;
  TotalInstructions += R.Instructions;
  Cycles.add(R.Cycles);
  if (!R.Ok) {
    ++Drops;
    ++Traps[static_cast<unsigned>(R.Trap)];
  } else if (AppRejected) {
    ++Rejected;
  } else {
    ++Delivered;
    DeliveredPayloadBytes += PayloadBytes;
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint serialization
//===----------------------------------------------------------------------===//

void Memory::saveState(BinWriter &W) const {
  Sram.saveState(W);
  Sdram.saveState(W);
  Scratch.saveState(W);
  W.u32(Limits.SramWords);
  W.u32(Limits.SdramWords);
  W.u32(Limits.ScratchWords);
}

void Memory::restoreState(BinReader &R) {
  Sram.restoreState(R);
  Sdram.restoreState(R);
  Scratch.restoreState(R);
  Limits.SramWords = R.u32();
  Limits.SdramWords = R.u32();
  Limits.ScratchWords = R.u32();
}

void RunResult::saveState(BinWriter &W) const {
  W.b(Ok);
  W.u8(static_cast<uint8_t>(Trap));
  saveStatus(W, Error);
  W.vec32(HaltValues);
  W.u64(Cycles);
  W.u64(Instructions);
}

void RunResult::restoreState(BinReader &R) {
  Ok = R.b();
  Trap = static_cast<TrapKind>(R.u8());
  Error = restoreStatus(R);
  HaltValues = R.vec32();
  Cycles = R.u64();
  Instructions = R.u64();
}

void CycleHistogram::saveState(BinWriter &W) const {
  for (unsigned B = 0; B != NumBuckets; ++B)
    W.u64(Buckets[B]);
  W.u64(Total);
}

void CycleHistogram::restoreState(BinReader &R) {
  for (unsigned B = 0; B != NumBuckets; ++B)
    Buckets[B] = R.u64();
  Total = R.u64();
}

void RunStats::saveState(BinWriter &W) const {
  W.u64(Packets);
  W.u64(Delivered);
  W.u64(Rejected);
  W.u64(Drops);
  for (unsigned K = 0; K != NumTrapKinds; ++K)
    W.u64(Traps[K]);
  W.u64(TotalCycles);
  W.u64(TotalInstructions);
  W.u64(DeliveredPayloadBytes);
  Cycles.saveState(W);
}

void RunStats::restoreState(BinReader &R) {
  Packets = R.u64();
  Delivered = R.u64();
  Rejected = R.u64();
  Drops = R.u64();
  for (unsigned K = 0; K != NumTrapKinds; ++K)
    Traps[K] = R.u64();
  TotalCycles = R.u64();
  TotalInstructions = R.u64();
  DeliveredPayloadBytes = R.u64();
  Cycles.restoreState(R);
}

double RunStats::deliveredMbps(double ClockHz) const {
  if (TotalCycles == 0)
    return 0.0;
  double Seconds = static_cast<double>(TotalCycles) / ClockHz;
  return static_cast<double>(DeliveredPayloadBytes) * 8.0 / Seconds / 1e6;
}

double sim::throughputMbps(unsigned PayloadBytes, double CyclesPerPacket,
                           double ClockHz) {
  if (CyclesPerPacket <= 0)
    return 0.0;
  double PacketsPerSec = ClockHz / CyclesPerPacket;
  return PacketsPerSec * PayloadBytes * 8.0 / 1e6;
}

//===----------------------------------------------------------------------===//
// Allocated-mode execution lives in ExecContext.cpp: the step loop is a
// resumable AllocContext (one IXP hardware context) that the chip
// simulator multiplexes, and runAllocated is a thin driver over it.
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Functional-mode execution
//===----------------------------------------------------------------------===//

RunResult sim::runFunctional(const MachineProgram &M,
                             const std::vector<uint32_t> &Args, Memory &Mem,
                             uint64_t MaxInstructions) {
  RunOptions Opts;
  Opts.MaxInstructions = MaxInstructions;
  return runFunctional(M, Args, Mem, Opts);
}

RunResult sim::runFunctional(const MachineProgram &M,
                             const std::vector<uint32_t> &Args, Memory &Mem,
                             const RunOptions &Opts) {
  RunResult R;
  if (M.Entry == NoBlock || M.Entry >= M.Blocks.size())
    return trap(R, TrapKind::MalformedProgram, "no entry block");
  if (Args.size() != M.EntryParams.size())
    return trap(R, TrapKind::MalformedProgram,
                formatf("entry takes %zu args, got %zu",
                        M.EntryParams.size(), Args.size()));
  std::vector<uint32_t> T(M.NumTemps, 0);
  bool Err = false;
  auto Val = [&](const MOperand &O) -> uint32_t {
    if (O.IsConst)
      return O.Value;
    if (O.T >= T.size()) {
      Err = true;
      return 0;
    }
    return T[O.T];
  };
  auto Set = [&](Temp D, uint32_t V) {
    if (D >= T.size()) {
      Err = true;
      return;
    }
    T[D] = V;
  };
  for (unsigned I = 0; I != Args.size(); ++I)
    Set(M.EntryParams[I], Args[I]);

  BlockId B = M.Entry;
  unsigned Idx = 0;
  while (true) {
    if (++R.Instructions > Opts.MaxInstructions)
      return trap(R, TrapKind::Watchdog,
                  formatf("instruction budget of %llu exhausted",
                          (unsigned long long)Opts.MaxInstructions));
    if (Idx >= M.Blocks[B].Instrs.size())
      return trap(R, TrapKind::MalformedProgram,
                  formatf("fell off the end of block b%u", B));
    const MachineInstr &I = M.Blocks[B].Instrs[Idx++];

    if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
         I.Op == MOp::BitTestSet) &&
        !validSpace(I.Space))
      return trap(R, TrapKind::IllegalMemSpace,
                  formatf("memory space %u in block b%u",
                          (unsigned)I.Space, B));

    switch (I.Op) {
    case MOp::Alu: {
      uint32_t A = Val(I.Srcs[0]);
      uint32_t Bv = I.Srcs.size() > 1 ? Val(I.Srcs[1]) : 0;
      if (Opts.TrapOnShiftRange && cps::shiftOutOfRange(I.Alu, Bv))
        return trap(R, TrapKind::ShiftRange,
                    formatf("shift count %u in block b%u", Bv, B));
      Set(I.Dsts[0], cps::evalPrim(I.Alu, A, Bv));
      break;
    }
    case MOp::Imm:
      Set(I.Dsts[0], I.Imm);
      break;
    case MOp::Move:
      Set(I.Dsts[0], Val(I.Srcs[0]));
      break;
    case MOp::MemRead: {
      uint32_t Addr = Val(I.Srcs[0]);
      uint32_t Count = static_cast<uint32_t>(I.Dsts.size());
      if (!Err && !Mem.inRange(I.Space, Addr, Count))
        return trap(R, rangeTrapFor(I.Space),
                    formatf("%s read of %u words at 0x%x (limit 0x%x)",
                            spaceName(I.Space), Count, Addr,
                            Mem.Limits.words(I.Space)));
      auto &Space = *Mem.space(I.Space);
      for (unsigned K = 0; K != I.Dsts.size(); ++K)
        Set(I.Dsts[K], Memory::load(Space, Addr + K));
      break;
    }
    case MOp::MemWrite: {
      uint32_t Addr = Val(I.Srcs[0]);
      uint32_t Count = static_cast<uint32_t>(I.Srcs.size() - 1);
      if (!Err && !Mem.inRange(I.Space, Addr, Count))
        return trap(R, rangeTrapFor(I.Space),
                    formatf("%s write of %u words at 0x%x (limit 0x%x)",
                            spaceName(I.Space), Count, Addr,
                            Mem.Limits.words(I.Space)));
      auto &Space = *Mem.space(I.Space);
      for (unsigned K = 1; K != I.Srcs.size(); ++K)
        Space[Addr + K - 1] = Val(I.Srcs[K]);
      break;
    }
    case MOp::Hash:
      Set(I.Dsts[0], hwHash(Val(I.Srcs[0])));
      break;
    case MOp::BitTestSet: {
      uint32_t Addr = Val(I.Srcs[0]);
      uint32_t Bits = Val(I.Srcs[1]);
      if (!Err && !Mem.inRange(I.Space, Addr, 1))
        return trap(R, rangeTrapFor(I.Space),
                    formatf("%s bit-test-set at 0x%x (limit 0x%x)",
                            spaceName(I.Space), Addr,
                            Mem.Limits.words(I.Space)));
      auto &Space = *Mem.space(I.Space);
      uint32_t Old = Memory::load(Space, Addr);
      Space[Addr] = Old | Bits;
      Set(I.Dsts[0], Old);
      break;
    }
    case MOp::Clone:
      for (Temp D : I.Dsts)
        Set(D, Val(I.Srcs[0]));
      break;
    case MOp::Branch: {
      BlockId Tgt = cps::evalCmp(I.Cmp, Val(I.Srcs[0]), Val(I.Srcs[1]))
                        ? I.Target
                        : I.TargetElse;
      if (Tgt >= M.Blocks.size())
        return trap(R, TrapKind::MalformedProgram,
                    formatf("branch in block b%u targets b%u", B, Tgt));
      B = Tgt;
      Idx = 0;
      break;
    }
    case MOp::Jump:
      if (I.Target >= M.Blocks.size())
        return trap(R, TrapKind::MalformedProgram,
                    formatf("jump in block b%u targets b%u", B, I.Target));
      B = I.Target;
      Idx = 0;
      break;
    case MOp::Halt:
      for (const MOperand &S : I.Srcs)
        R.HaltValues.push_back(Val(S));
      if (Err)
        return trap(R, TrapKind::MalformedProgram,
                    "temporary id out of range at halt");
      R.Ok = true;
      return R;
    }
    if (Err)
      return trap(R, TrapKind::MalformedProgram,
                  formatf("temporary id out of range in block b%u", B));
  }
}
