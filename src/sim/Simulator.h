//===- Simulator.h - IXP1200 micro-engine simulator -------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes machine programs. Two modes:
///
///  - functional: operands are virtual temporaries; used to validate
///    instruction selection against the CPS evaluator before register
///    allocation;
///  - allocated: operands are physical registers in the IXP1200's banks;
///    bank legality is enforced at runtime and cycles are counted with
///    the memory-latency model, giving the throughput numbers of the
///    paper's Section 11.
///
/// Cycle model (one thread, no overlap — the paper measured unoptimized
/// single-threaded code): ALU/immediate/branch ops take 1 cycle; SRAM
/// accesses ~20 cycles, SDRAM ~33, scratch ~12 (IXP1200 magnitudes).
///
//===----------------------------------------------------------------------===//

#ifndef SIM_SIMULATOR_H
#define SIM_SIMULATOR_H

#include "alloc/Allocated.h"
#include "ixp/MachineIr.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nova {
namespace sim {

/// Word-addressed memories (shared layout with cps::EvalMemory).
struct Memory {
  std::map<uint32_t, uint32_t> Sram;
  std::map<uint32_t, uint32_t> Sdram;
  std::map<uint32_t, uint32_t> Scratch;

  std::map<uint32_t, uint32_t> &space(MemSpace S) {
    switch (S) {
    case MemSpace::Sram:    return Sram;
    case MemSpace::Sdram:   return Sdram;
    case MemSpace::Scratch: return Scratch;
    }
    return Sram;
  }
};

/// Latency model in micro-engine cycles.
struct LatencyModel {
  unsigned Alu = 1;
  unsigned Branch = 1;
  unsigned Imm = 1;       ///< 1-2 per paper §12; large constants cost 2
  unsigned SramAccess = 20;
  unsigned SdramAccess = 33;
  unsigned ScratchAccess = 12;
  unsigned HashOp = 16;

  unsigned memAccess(MemSpace S) const {
    switch (S) {
    case MemSpace::Sram:    return SramAccess;
    case MemSpace::Sdram:   return SdramAccess;
    case MemSpace::Scratch: return ScratchAccess;
    }
    return SramAccess;
  }
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  std::vector<uint32_t> HaltValues;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
};

/// Functional execution over virtual temporaries (no banks, no timing
/// fidelity beyond instruction counting).
RunResult runFunctional(const ixp::MachineProgram &M,
                        const std::vector<uint32_t> &Args, Memory &Mem,
                        uint64_t MaxInstructions = 10'000'000);

/// Executes register-allocated code on the modeled micro-engine:
/// physical banks, runtime-enforced data-path legality, and cycle
/// accounting. Arguments arrive in A0..A(n-1).
RunResult runAllocated(const alloc::AllocatedProgram &P,
                       const std::vector<uint32_t> &Args, Memory &Mem,
                       const LatencyModel &Lat = {},
                       uint64_t MaxInstructions = 10'000'000);

/// Throughput in megabits per second for a packet of \p PayloadBytes
/// processed in \p CyclesPerPacket cycles at the IXP1200's 233 MHz.
double throughputMbps(unsigned PayloadBytes, double CyclesPerPacket,
                      double ClockHz = 233e6);

} // namespace sim
} // namespace nova

#endif // SIM_SIMULATOR_H
