//===- Simulator.h - IXP1200 micro-engine simulator -------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes machine programs. Two modes:
///
///  - functional: operands are virtual temporaries; used to validate
///    instruction selection against the CPS evaluator before register
///    allocation;
///  - allocated: operands are physical registers in the IXP1200's banks;
///    bank legality is enforced at runtime and cycles are counted with
///    the memory-latency model, giving the throughput numbers of the
///    paper's Section 11.
///
/// The runtime is hardened for hostile traffic: every failure is a typed
/// trap (TrapKind) carried on a structured support::Status, memory
/// accesses are bounds-checked against per-space limits, and execution is
/// watchdog-bounded. A trap never aborts the process — the soak harness
/// (src/soak) turns traps into packet drops and keeps streaming.
///
/// Cycle model (one thread, no overlap — the paper measured unoptimized
/// single-threaded code): the latency constants come from the shared chip
/// description ixp::MachineParams (SRAM ~20 cycles, SDRAM ~33, scratch
/// ~12, IXP1200 magnitudes), which the chip contention model (src/chip)
/// and the ILP cost model read too. For the whole-chip simulation — 6
/// micro-engines x 4 hardware contexts with context swap on memory
/// references and contended memory channels — see src/chip.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_SIMULATOR_H
#define SIM_SIMULATOR_H

#include "alloc/Allocated.h"
#include "ixp/MachineIr.h"
#include "ixp/MachineParams.h"
#include "sim/WordMap.h"
#include "support/Status.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nova {
namespace sim {

/// Why a run stopped abnormally. The taxonomy is stable (tests, the soak
/// harness, and bench scripts match on it); human-readable detail lives
/// in RunResult::Error.
enum class TrapKind : uint8_t {
  None,             ///< run completed (RunResult::Ok)
  IllegalRegister,  ///< bank with no register file, or index off its end
  IllegalMemSpace,  ///< MemSpace operand outside the enum (corrupt code)
  SramOutOfRange,   ///< SRAM access beyond Memory::Limits
  SdramOutOfRange,  ///< SDRAM access beyond Memory::Limits
  ScratchOutOfRange,///< scratch access beyond Memory::Limits
  Watchdog,         ///< instruction budget exhausted (runaway loop)
  ShiftRange,       ///< shift count >= 32 under RunOptions::TrapOnShiftRange
  MalformedProgram, ///< no entry, bad block target, fell off a block end,
                    ///< clone pseudo in allocated code, bad temp id, or
                    ///< argument-count mismatch
};

inline constexpr unsigned NumTrapKinds = 9;
const char *trapKindName(TrapKind K);

/// Per-space word-address limits. Defaults are IXP1200-plausible
/// magnitudes, comfortably above the apps' memory maps (the spill area
/// sits at scratch 0x8000): SRAM 8 MB, SDRAM 64 MB, scratch 256 KB.
struct MemLimits {
  uint32_t SramWords = 1u << 21;
  uint32_t SdramWords = 1u << 24;
  uint32_t ScratchWords = 1u << 16;

  uint32_t words(MemSpace S) const {
    switch (S) {
    case MemSpace::Sram:    return SramWords;
    case MemSpace::Sdram:   return SdramWords;
    case MemSpace::Scratch: return ScratchWords;
    }
    assert(false && "invalid MemSpace");
    return 0;
  }
};

/// Word-addressed memories (shared observable semantics with
/// cps::EvalMemory's sparse maps), plus the address limits the runtime
/// enforces. The images stay sparse; bounded addresses plus the
/// instruction watchdog bound their growth per run. Backed by WordMap so
/// the per-word load/store on the simulator and chip hot paths is O(1)
/// instead of a red-black-tree walk.
struct Memory {
  WordMap Sram;
  WordMap Sdram;
  WordMap Scratch;
  MemLimits Limits;

  /// The backing map for \p S, or nullptr when S is not a valid space —
  /// an invalid space is a trap for the interpreter, never a silent
  /// coercion to SRAM (and an assert under debug builds).
  WordMap *space(MemSpace S) {
    switch (S) {
    case MemSpace::Sram:    return &Sram;
    case MemSpace::Sdram:   return &Sdram;
    case MemSpace::Scratch: return &Scratch;
    }
    assert(false && "invalid MemSpace");
    return nullptr;
  }

  /// True when the \p Count words starting at \p Addr lie within the
  /// configured limit for \p S.
  bool inRange(MemSpace S, uint32_t Addr, uint32_t Count) const {
    uint32_t Bound = Limits.words(S);
    return Count <= Bound && Addr <= Bound - Count;
  }

  /// Non-inserting read: absent words are 0 without growing the map, so
  /// a read-heavy hostile packet cannot balloon the image and the final
  /// maps of two agreeing executions compare equal entry-for-entry.
  static uint32_t load(const WordMap &M, uint32_t A) { return M.get(A); }

  /// Checkpoint serialization: all three images plus the limits.
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);
};

/// Latency model in micro-engine cycles. Defaults are the shared chip
/// description's (ixp::MachineParams) — one definition for the
/// simulator, the chip contention model, and the ILP cost model.
struct LatencyModel {
  unsigned Alu = ixp::MachineParams{}.AluCycles;
  unsigned Branch = ixp::MachineParams{}.BranchCycles;
  /// 1-2 per paper §12; large constants cost 2.
  unsigned Imm = ixp::MachineParams{}.ImmCycles;
  unsigned SramAccess = ixp::MachineParams{}.SramAccessCycles;
  unsigned SdramAccess = ixp::MachineParams{}.SdramAccessCycles;
  unsigned ScratchAccess = ixp::MachineParams{}.ScratchAccessCycles;
  unsigned HashOp = ixp::MachineParams{}.HashCycles;

  /// Cost of an access to \p S. Invalid spaces are rejected by the
  /// interpreter before latency is charged; asking anyway asserts in
  /// debug builds and charges nothing in release (never silently SRAM).
  unsigned memAccess(MemSpace S) const {
    switch (S) {
    case MemSpace::Sram:    return SramAccess;
    case MemSpace::Sdram:   return SdramAccess;
    case MemSpace::Scratch: return ScratchAccess;
    }
    assert(false && "invalid MemSpace");
    return 0;
  }
};

/// Execution knobs shared by both modes.
struct RunOptions {
  LatencyModel Lat;
  /// Watchdog: the run traps TrapKind::Watchdog after this many
  /// instructions.
  uint64_t MaxInstructions = 10'000'000;
  /// Strict mode: trap on shift counts >= 32 instead of yielding the
  /// architected 0 (for flushing out code that relies on the clamp).
  bool TrapOnShiftRange = false;
};

struct RunResult {
  bool Ok = false;
  TrapKind Trap = TrapKind::None;
  /// Structured trap detail (StatusCode::SimTrap, Phase::Execute); ok()
  /// when the run completed.
  Status Error;
  std::vector<uint32_t> HaltValues;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;

  /// Checkpoint serialization (in-flight packets carry partial results).
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);
};

/// Fixed-footprint log-scale histogram of per-run cycle counts: 32
/// power-of-two decades x 8 sub-buckets, exact below 256. Quantile
/// queries return the upper edge of the containing bucket (<= 12.5%
/// relative error), which is plenty for p50/p99 soak reporting.
class CycleHistogram {
public:
  void add(uint64_t Cycles);
  uint64_t count() const { return Total; }
  /// Smallest recorded-bucket upper bound covering fraction \p Q of the
  /// samples (0 < Q <= 1); 0 when empty.
  uint64_t quantile(double Q) const;

  /// Checkpoint serialization of the bucket counts.
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);

private:
  static constexpr unsigned NumBuckets = 256;
  static unsigned bucketOf(uint64_t V);
  static uint64_t bucketHigh(unsigned B);
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Total = 0;
};

/// Stream-level accounting the soak harness (and anything else running
/// packets in bulk) folds every RunResult into. Bounded memory
/// regardless of stream length.
struct RunStats {
  uint64_t Packets = 0;
  uint64_t Delivered = 0;       ///< completed runs (Ok)
  uint64_t Rejected = 0;        ///< completed but app-level error result
  uint64_t Drops = 0;           ///< trapped runs (== sum of Traps[])
  uint64_t Traps[NumTrapKinds] = {};
  uint64_t TotalCycles = 0;     ///< includes cycles burned by drops
  uint64_t TotalInstructions = 0;
  uint64_t DeliveredPayloadBytes = 0;
  CycleHistogram Cycles;

  /// Folds one run in. \p AppRejected marks a completed run whose result
  /// the application itself flagged as an error (e.g. the 0xFFFFxxxx
  /// handler codes of the benchmark apps); \p PayloadBytes counts toward
  /// throughput only when delivered.
  void account(const RunResult &R, bool AppRejected, unsigned PayloadBytes);

  /// Checkpoint serialization of the whole fold (histogram included).
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);

  uint64_t p50Cycles() const { return Cycles.quantile(0.50); }
  uint64_t p99Cycles() const { return Cycles.quantile(0.99); }
  /// Delivered goodput at \p ClockHz over *all* cycles spent, including
  /// those burned on dropped/rejected packets — throughput under
  /// degradation, not best-case throughput.
  double deliveredMbps(double ClockHz = ixp::MachineParams{}.ClockHz) const;
};

/// Functional execution over virtual temporaries (no banks, no timing
/// fidelity beyond instruction counting).
RunResult runFunctional(const ixp::MachineProgram &M,
                        const std::vector<uint32_t> &Args, Memory &Mem,
                        const RunOptions &Opts);
RunResult runFunctional(const ixp::MachineProgram &M,
                        const std::vector<uint32_t> &Args, Memory &Mem,
                        uint64_t MaxInstructions = 10'000'000);

/// Executes register-allocated code on the modeled micro-engine:
/// physical banks, runtime-enforced data-path legality, bounds-checked
/// memory, and cycle accounting. Arguments arrive in A0..A(n-1). When a
/// FaultInjector plan is armed, mem-jitter inflates memory latencies and
/// sim-bitflip perturbs ALU results (the soak oracle's injected
/// divergence).
RunResult runAllocated(const alloc::AllocatedProgram &P,
                       const std::vector<uint32_t> &Args, Memory &Mem,
                       const RunOptions &Opts);
RunResult runAllocated(const alloc::AllocatedProgram &P,
                       const std::vector<uint32_t> &Args, Memory &Mem,
                       const LatencyModel &Lat = {},
                       uint64_t MaxInstructions = 10'000'000);

/// Throughput in megabits per second for a packet of \p PayloadBytes
/// processed in \p CyclesPerPacket cycles at the IXP1200's 233 MHz
/// (ixp::MachineParams::ClockHz).
double throughputMbps(unsigned PayloadBytes, double CyclesPerPacket,
                      double ClockHz = ixp::MachineParams{}.ClockHz);

} // namespace sim
} // namespace nova

#endif // SIM_SIMULATOR_H
