//===- WordMap.h - Paged sparse word-addressed store ------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backing store for sim::Memory's three address spaces. The previous
/// representation was std::map<uint32_t, uint32_t>, which put an O(log n)
/// red-black-tree walk (plus a node allocation per first store) on every
/// word a packet touches — the dominant cost of both the interpreter and
/// the chip model once the fast path removed dispatch overhead.
///
/// WordMap keeps the map's observable semantics but backs the low 2^24
/// words with lazily allocated 4096-word pages plus a presence bitmap, so
/// the hot operations are O(1):
///
///  - operator[] inserts a zero-valued entry on first touch, exactly like
///    std::map::operator[]; get() reads without inserting (the
///    interpreter's non-inserting load);
///  - presence is tracked per word, so an image still compares and
///    iterates entry-for-entry against the sparse map a differential
///    oracle builds (stored zeros included, untouched words absent);
///  - addresses at or above 2^24 — the adversarial generator aims DMA
///    near address-space edges, far beyond any configured space bound —
///    fall back to a std::map overflow so the page table stays <= 4096
///    slots. Every space limit (MemLimits) is <= 2^24 words, so program
///    accesses out there always range-trap; only setup stores land in
///    the overflow.
///
/// Iteration yields (address, value) pairs in ascending address order:
/// dense pages first, then the overflow, whose addresses are all larger
/// by construction.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_WORDMAP_H
#define SIM_WORDMAP_H

#include "support/BinIO.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace nova {
namespace sim {

class WordMap {
  static constexpr unsigned PageShift = 12; ///< 4096 words = 16 KB pages
  static constexpr uint32_t PageWords = 1u << PageShift;
  static constexpr uint32_t PageMask = PageWords - 1;
  static constexpr uint32_t DenseBound = 1u << 24; ///< pages cover [0, 2^24)

  struct Page {
    uint32_t Data[PageWords];
    uint64_t Present[PageWords / 64];
  };

public:
  WordMap() = default;
  WordMap(WordMap &&) = default;
  WordMap &operator=(WordMap &&) = default;
  WordMap(const WordMap &O) { *this = O; }

  WordMap &operator=(const WordMap &O) {
    if (this == &O)
      return *this;
    Count = O.Count;
    Overflow = O.Overflow;
    Pages.clear();
    Pages.resize(O.Pages.size());
    for (size_t I = 0; I != O.Pages.size(); ++I)
      if (O.Pages[I])
        Pages[I] = std::make_unique<Page>(*O.Pages[I]);
    return *this;
  }

  WordMap &operator=(const std::map<uint32_t, uint32_t> &M) {
    clear();
    for (const auto &[A, V] : M)
      (*this)[A] = V;
    return *this;
  }

  /// Inserts a zero-valued entry on first touch, like std::map.
  uint32_t &operator[](uint32_t A) {
    if (A >= DenseBound)
      return Overflow[A];
    size_t PI = A >> PageShift;
    if (PI >= Pages.size())
      Pages.resize(PI + 1);
    std::unique_ptr<Page> &Pg = Pages[PI];
    if (!Pg)
      Pg = std::make_unique<Page>(); // value-initialized: all-zero, all-absent
    uint32_t Slot = A & PageMask;
    uint64_t &W = Pg->Present[Slot >> 6];
    uint64_t Bit = 1ull << (Slot & 63);
    if (!(W & Bit)) {
      W |= Bit;
      Pg->Data[Slot] = 0; // a range-erased slot may hold a stale value
      ++Count;
    }
    return Pg->Data[Slot];
  }

  /// Non-inserting read: absent words are 0 without growing the image.
  uint32_t get(uint32_t A) const {
    if (A < DenseBound) {
      size_t PI = A >> PageShift;
      if (PI >= Pages.size() || !Pages[PI])
        return 0;
      const Page &Pg = *Pages[PI];
      uint32_t Slot = A & PageMask;
      return Pg.Present[Slot >> 6] >> (Slot & 63) & 1 ? Pg.Data[Slot] : 0;
    }
    auto It = Overflow.find(A);
    return It == Overflow.end() ? 0 : It->second;
  }

  bool contains(uint32_t A) const {
    if (A >= DenseBound)
      return Overflow.count(A) != 0;
    size_t PI = A >> PageShift;
    if (PI >= Pages.size() || !Pages[PI])
      return false;
    uint32_t Slot = A & PageMask;
    return Pages[PI]->Present[Slot >> 6] >> (Slot & 63) & 1;
  }

  size_t count(uint32_t A) const { return contains(A) ? 1 : 0; }
  size_t size() const { return Count + Overflow.size(); }
  bool empty() const { return size() == 0; }

  void clear() {
    Pages.clear();
    Overflow.clear();
    Count = 0;
  }

  /// Removes every entry with Lo <= address < HiExclusive (a 64-bit bound
  /// so callers can express "to the end of the address space").
  void eraseRange(uint32_t Lo, uint64_t HiExclusive) {
    uint64_t DenseHi = HiExclusive < DenseBound ? HiExclusive : DenseBound;
    for (uint64_t A = Lo; A < DenseHi;) {
      size_t PI = static_cast<size_t>(A) >> PageShift;
      if (PI >= Pages.size())
        break;
      uint64_t PageEnd = static_cast<uint64_t>(PI + 1) << PageShift;
      Page *Pg = Pages[PI].get();
      if (!Pg) {
        A = PageEnd;
        continue;
      }
      uint64_t Stop = PageEnd < DenseHi ? PageEnd : DenseHi;
      for (; A < Stop; ++A) {
        uint32_t Slot = static_cast<uint32_t>(A) & PageMask;
        uint64_t &W = Pg->Present[Slot >> 6];
        uint64_t Bit = 1ull << (Slot & 63);
        if (W & Bit) {
          W &= ~Bit;
          --Count;
        }
      }
    }
    if (HiExclusive > DenseBound) {
      auto E = HiExclusive > 0xFFFFFFFFull
                   ? Overflow.end()
                   : Overflow.lower_bound(static_cast<uint32_t>(HiExclusive));
      Overflow.erase(Overflow.lower_bound(Lo < DenseBound ? DenseBound : Lo),
                     E);
    }
  }

  class const_iterator {
  public:
    using value_type = std::pair<uint32_t, uint32_t>;
    using reference = const value_type &;
    using pointer = const value_type *;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    reference operator*() const { return Cur; }
    pointer operator->() const { return &Cur; }
    const_iterator &operator++() {
      if (A != DenseBound)
        A = M->nextPresent(A + 1);
      else
        ++OIt;
      load();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator T = *this;
      ++*this;
      return T;
    }
    bool operator==(const const_iterator &O) const {
      return A == O.A && OIt == O.OIt;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    friend class WordMap;
    const_iterator(const WordMap *M, bool End)
        : M(M), A(End ? DenseBound : M->nextPresent(0)),
          OIt(End ? M->Overflow.end() : M->Overflow.begin()) {
      load();
    }
    void load() {
      if (A != DenseBound)
        Cur = {A, M->get(A)};
      else if (OIt != M->Overflow.end())
        Cur = *OIt;
    }
    const WordMap *M = nullptr;
    uint32_t A = DenseBound;
    std::map<uint32_t, uint32_t>::const_iterator OIt;
    value_type Cur = {0, 0};
  };

  const_iterator begin() const { return const_iterator(this, false); }
  const_iterator end() const { return const_iterator(this, true); }

  /// Checkpoint serialization: the ascending (address, value) entry
  /// sequence — the map's entire observable state. Restoring rebuilds
  /// pages by insertion, so internal page-table shape may differ from
  /// the saved instance while iteration, get(), and equality agree
  /// entry-for-entry.
  void saveState(BinWriter &W) const {
    W.u64(size());
    for (const auto &[A, V] : *this) {
      W.u32(A);
      W.u32(V);
    }
  }
  void restoreState(BinReader &R) {
    clear();
    uint64_t N = R.u64();
    for (uint64_t I = 0; I != N && !R.failed(); ++I) {
      uint32_t A = R.u32();
      uint32_t V = R.u32();
      (*this)[A] = V;
    }
  }

private:
  /// First present dense address >= From, or DenseBound when none.
  uint32_t nextPresent(uint32_t From) const {
    uint64_t A = From;
    while (true) {
      size_t PI = static_cast<size_t>(A >> PageShift);
      if (PI >= Pages.size())
        return DenseBound;
      const Page *Pg = Pages[PI].get();
      if (!Pg) {
        A = static_cast<uint64_t>(PI + 1) << PageShift;
        continue;
      }
      uint32_t Slot = static_cast<uint32_t>(A) & PageMask;
      uint32_t WI = Slot >> 6;
      uint64_t W = Pg->Present[WI] & (~0ull << (Slot & 63));
      while (true) {
        if (W)
          return (static_cast<uint32_t>(PI) << PageShift) + (WI << 6) +
                 static_cast<uint32_t>(__builtin_ctzll(W));
        if (++WI == PageWords / 64)
          break;
        W = Pg->Present[WI];
      }
      A = static_cast<uint64_t>(PI + 1) << PageShift;
    }
  }

  std::vector<std::unique_ptr<Page>> Pages; ///< index = address >> PageShift
  std::map<uint32_t, uint32_t> Overflow;    ///< addresses >= DenseBound
  size_t Count = 0;                         ///< present dense entries
};

/// Entry-for-entry equality across any two word stores that iterate
/// (address, value) pairs in ascending order (WordMap, std::map).
template <typename MapA, typename MapB>
bool sameWords(const MapA &A, const MapB &B) {
  if (A.size() != B.size())
    return false;
  auto IA = A.begin();
  auto IB = B.begin();
  for (; IA != A.end(); ++IA, ++IB)
    if (IA->first != IB->first || IA->second != IB->second)
      return false;
  return true;
}

inline bool operator==(const WordMap &A, const WordMap &B) {
  return sameWords(A, B);
}
inline bool operator!=(const WordMap &A, const WordMap &B) {
  return !sameWords(A, B);
}
inline bool operator==(const WordMap &A, const std::map<uint32_t, uint32_t> &B) {
  return sameWords(A, B);
}
inline bool operator==(const std::map<uint32_t, uint32_t> &A, const WordMap &B) {
  return sameWords(A, B);
}
inline bool operator!=(const WordMap &A, const std::map<uint32_t, uint32_t> &B) {
  return !sameWords(A, B);
}
inline bool operator!=(const std::map<uint32_t, uint32_t> &A, const WordMap &B) {
  return !sameWords(A, B);
}

} // namespace sim
} // namespace nova

#endif // SIM_WORDMAP_H
