//===- ExecContext.cpp ----------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The allocated-mode step loop, factored out of runAllocated so the chip
// simulator can interleave many hardware contexts. Behaviour contract
// with the old monolithic loop (sim_test and the soak oracle pin it):
//
//  - identical trap kinds and messages, with the same instruction and
//    cycle counts at the trap point;
//  - memory data effects happen at issue, before the yield, so a
//    single-threaded caller that immediately resumes sees exactly the
//    old memory image at every step;
//  - the base memory latency is the caller's to charge() after the Mem
//    yield. An illegal-register error latched while computing a memory
//    operand therefore traps on the *next* resume() — after the caller's
//    charge — reproducing the old loop's bottom-of-iteration check that
//    fired after the latency was added;
//  - fault injection: sim-bitflip inside the ALU case, mem-jitter drawn
//    right at the MemRead/MemWrite issue (and not for BitTestSet),
//    keeping the injector's draw sequence unchanged.
//
//===----------------------------------------------------------------------===//

#include "sim/ExecContext.h"

#include "sim/SimUtil.h"
#include "support/FaultInjection.h"
#include "support/HwHash.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstring>

using namespace nova;
using namespace nova::sim;
using namespace nova::sim::detail;
using namespace nova::ixp;
using alloc::AllocInstr;
using alloc::AOperand;
using alloc::PhysLoc;

AllocContext::File AllocContext::regFile(Bank Bk) {
  switch (Bk) {
  case Bank::A:  return {RegA, 16};
  case Bank::B:  return {RegB, 16};
  case Bank::L:  return {RegL, 8};
  case Bank::S:  return {RegS, 8};
  case Bank::LD: return {RegLD, 8};
  case Bank::SD: return {RegSD, 8};
  default:       return {nullptr, 0};
  }
}

// Reads/writes report illegal banks and out-of-file indices through Err;
// resume() converts that into an IllegalRegister trap at the next swap
// point (the old code masked the index with &15, silently aliasing
// registers and reading off the end of the 8-entry transfer banks).
uint32_t AllocContext::read(const AOperand &O) {
  if (O.IsConst)
    return O.Value;
  File F = regFile(O.Loc.B);
  if (!F.Regs || O.Loc.Reg >= F.Size) {
    Err = true;
    return 0;
  }
  return F.Regs[O.Loc.Reg];
}

void AllocContext::writeReg(PhysLoc L, uint32_t V) {
  File F = regFile(L.B);
  if (!F.Regs || L.Reg >= F.Size) {
    Err = true;
    return;
  }
  F.Regs[L.Reg] = V;
}

void AllocContext::reset(const std::vector<uint32_t> &Args) {
  assert(Prog && "reset() before setProgram()");
  R = RunResult();
  Err = false;
  B = Prog->Entry;
  Idx = 0;
  std::memset(RegA, 0, sizeof(RegA));
  std::memset(RegB, 0, sizeof(RegB));
  std::memset(RegL, 0, sizeof(RegL));
  std::memset(RegS, 0, sizeof(RegS));
  std::memset(RegLD, 0, sizeof(RegLD));
  std::memset(RegSD, 0, sizeof(RegSD));

  if (Prog->Entry == NoBlock || Prog->Entry >= Prog->Blocks.size()) {
    trap(R, TrapKind::MalformedProgram, "no entry block");
    Finished = true;
    return;
  }
  if (Args.size() > 15) {
    trap(R, TrapKind::MalformedProgram, "too many entry arguments");
    Finished = true;
    return;
  }
  for (unsigned I = 0; I != Args.size(); ++I)
    RegA[I] = Args[I];
  Finished = false;
}

AllocContext::Yield AllocContext::resume(Memory &Mem, const RunOptions &Opts) {
  assert(!Finished && "resume() on a completed context");
  const alloc::AllocatedProgram &P = *Prog;
  const LatencyModel &Lat = Opts.Lat;
  const uint64_t StartCycles = R.Cycles;
  auto finish = [&]() -> Yield {
    Finished = true;
    return {Yield::Kind::Done, MemSpace::Sram, R.Cycles - StartCycles};
  };

  // An illegal-register access latched while issuing the memory operand
  // of the previous burst: trap now, after the caller charged the memory
  // latency, exactly like the old loop's bottom-of-iteration check.
  if (Err) {
    trap(R, TrapKind::IllegalRegister,
         formatf("illegal register access in block b%u", B));
    return finish();
  }

  const bool Faults = FaultInjector::armed();
  // Spill-window displacement (0 outside the window or when no rebase is
  // configured): gives each concurrent context a private spill area in
  // the shared scratch space.
  auto effectiveAddr = [&](MemSpace S, uint32_t Addr) -> uint32_t {
    if (SpillRebase && S == MemSpace::Scratch && Addr >= P.SpillBase &&
        Addr - P.SpillBase < P.NumSpillSlots)
      return Addr + SpillRebase;
    return Addr;
  };

  while (true) {
    if (++R.Instructions > Opts.MaxInstructions) {
      trap(R, TrapKind::Watchdog,
           formatf("instruction budget of %llu exhausted",
                   (unsigned long long)Opts.MaxInstructions));
      return finish();
    }
    if (Idx >= P.Blocks[B].Instrs.size()) {
      trap(R, TrapKind::MalformedProgram,
           formatf("fell off the end of block b%u", B));
      return finish();
    }
    const AllocInstr &I = P.Blocks[B].Instrs[Idx++];

    // One validity check covers space(), memAccess(), and the range
    // trap: an out-of-enum MemSpace can only come from corrupt code.
    if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
         I.Op == MOp::BitTestSet) &&
        !validSpace(I.Space)) {
      trap(R, TrapKind::IllegalMemSpace,
           formatf("memory space %u in block b%u", (unsigned)I.Space, B));
      return finish();
    }

    switch (I.Op) {
    case MOp::Alu: {
      uint32_t A = read(I.Srcs[0]);
      uint32_t Bv = I.Srcs.size() > 1 ? read(I.Srcs[1]) : 0;
      if (Opts.TrapOnShiftRange && cps::shiftOutOfRange(I.Alu, Bv)) {
        trap(R, TrapKind::ShiftRange,
             formatf("shift count %u in block b%u", Bv, B));
        return finish();
      }
      uint32_t V = cps::evalPrim(I.Alu, A, Bv);
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::SimBitFlip))
        V ^= 1u << (R.Instructions & 31);
      writeReg(I.Dsts[0], V);
      R.Cycles += Lat.Alu;
      break;
    }
    case MOp::Imm:
      writeReg(I.Dsts[0], I.Imm);
      // Large constants need two instructions on the IXP (paper §12).
      R.Cycles += I.Imm <= 0xFFFF || (I.Imm & 0xFFFF) == 0 ? Lat.Imm
                                                           : Lat.Imm + 1;
      break;
    case MOp::Move:
      writeReg(I.Dsts[0], read(I.Srcs[0]));
      R.Cycles += Lat.Alu;
      break;
    case MOp::MemRead: {
      uint32_t Addr = effectiveAddr(I.Space, read(I.Srcs[0]));
      uint32_t Count = static_cast<uint32_t>(I.Dsts.size());
      if (!Err && !Mem.inRange(I.Space, Addr, Count)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s read of %u words at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Count, Addr,
                     Mem.Limits.words(I.Space)));
        return finish();
      }
      auto &Space = *Mem.space(I.Space);
      for (unsigned K = 0; K != I.Dsts.size(); ++K)
        writeReg(I.Dsts[K], Memory::load(Space, Addr + K));
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::MemJitter))
        R.Cycles +=
            FaultInjector::instance().drawCycles(FaultKind::MemJitter, 16);
      return {Yield::Kind::Mem, I.Space, R.Cycles - StartCycles};
    }
    case MOp::MemWrite: {
      uint32_t Addr = effectiveAddr(I.Space, read(I.Srcs[0]));
      uint32_t Count = static_cast<uint32_t>(I.Srcs.size() - 1);
      if (!Err && !Mem.inRange(I.Space, Addr, Count)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s write of %u words at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Count, Addr,
                     Mem.Limits.words(I.Space)));
        return finish();
      }
      auto &Space = *Mem.space(I.Space);
      for (unsigned K = 1; K != I.Srcs.size(); ++K)
        Space[Addr + K - 1] = read(I.Srcs[K]);
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::MemJitter))
        R.Cycles +=
            FaultInjector::instance().drawCycles(FaultKind::MemJitter, 16);
      return {Yield::Kind::Mem, I.Space, R.Cycles - StartCycles};
    }
    case MOp::Hash:
      writeReg(I.Dsts[0], hwHash(read(I.Srcs[0])));
      R.Cycles += Lat.HashOp;
      break;
    case MOp::BitTestSet: {
      uint32_t Addr = effectiveAddr(I.Space, read(I.Srcs[0]));
      uint32_t Bits = read(I.Srcs[1]);
      if (!Err && !Mem.inRange(I.Space, Addr, 1)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s bit-test-set at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Addr, Mem.Limits.words(I.Space)));
        return finish();
      }
      auto &Space = *Mem.space(I.Space);
      uint32_t Old = Memory::load(Space, Addr);
      Space[Addr] = Old | Bits;
      writeReg(I.Dsts[0], Old);
      return {Yield::Kind::Mem, I.Space, R.Cycles - StartCycles};
    }
    case MOp::Clone:
      trap(R, TrapKind::MalformedProgram, "clone pseudo in allocated code");
      return finish();
    case MOp::Branch: {
      BlockId T = cps::evalCmp(I.Cmp, read(I.Srcs[0]), read(I.Srcs[1]))
                      ? I.Target
                      : I.TargetElse;
      if (T >= P.Blocks.size()) {
        trap(R, TrapKind::MalformedProgram,
             formatf("branch in block b%u targets b%u", B, T));
        return finish();
      }
      B = T;
      Idx = 0;
      R.Cycles += Lat.Branch;
      break;
    }
    case MOp::Jump:
      if (I.Target >= P.Blocks.size()) {
        trap(R, TrapKind::MalformedProgram,
             formatf("jump in block b%u targets b%u", B, I.Target));
        return finish();
      }
      B = I.Target;
      Idx = 0;
      R.Cycles += Lat.Branch;
      break;
    case MOp::Halt:
      for (const AOperand &S : I.Srcs)
        R.HaltValues.push_back(read(S));
      if (Err) {
        trap(R, TrapKind::IllegalRegister,
             "illegal register access at halt");
        return finish();
      }
      R.Ok = true;
      return finish();
    }
    if (Err) {
      trap(R, TrapKind::IllegalRegister,
           formatf("illegal register access in block b%u", B));
      return finish();
    }
  }
}

//===----------------------------------------------------------------------===//
// runAllocated: the single-threaded driver — resume, pay the flat memory
// latency, resume again. Bit-identical to the old monolithic loop.
//===----------------------------------------------------------------------===//

RunResult sim::runAllocated(const alloc::AllocatedProgram &P,
                            const std::vector<uint32_t> &Args, Memory &Mem,
                            const LatencyModel &Lat,
                            uint64_t MaxInstructions) {
  RunOptions Opts;
  Opts.Lat = Lat;
  Opts.MaxInstructions = MaxInstructions;
  return runAllocated(P, Args, Mem, Opts);
}

RunResult sim::runAllocated(const alloc::AllocatedProgram &P,
                            const std::vector<uint32_t> &Args, Memory &Mem,
                            const RunOptions &Opts) {
  AllocContext C(&P);
  C.reset(Args);
  while (!C.done()) {
    AllocContext::Yield Y = C.resume(Mem, Opts);
    if (Y.K == AllocContext::Yield::Kind::Mem)
      C.charge(Opts.Lat.memAccess(Y.Space));
  }
  return C.takeResult();
}

//===----------------------------------------------------------------------===//
// Checkpoint serialization
//===----------------------------------------------------------------------===//

void AllocContext::saveState(BinWriter &W) const {
  R.saveState(W);
  W.b(Finished);
  W.b(Err);
  W.u32(B);
  W.u32(Idx);
  for (uint32_t V : RegA)
    W.u32(V);
  for (uint32_t V : RegB)
    W.u32(V);
  for (uint32_t V : RegL)
    W.u32(V);
  for (uint32_t V : RegS)
    W.u32(V);
  for (uint32_t V : RegLD)
    W.u32(V);
  for (uint32_t V : RegSD)
    W.u32(V);
}

void AllocContext::restoreState(BinReader &Rd) {
  R.restoreState(Rd);
  Finished = Rd.b();
  Err = Rd.b();
  B = Rd.u32();
  Idx = Rd.u32();
  for (uint32_t &V : RegA)
    V = Rd.u32();
  for (uint32_t &V : RegB)
    V = Rd.u32();
  for (uint32_t &V : RegL)
    V = Rd.u32();
  for (uint32_t &V : RegS)
    V = Rd.u32();
  for (uint32_t &V : RegLD)
    V = Rd.u32();
  for (uint32_t &V : RegSD)
    V = Rd.u32();
}
