//===- Checkpoint.h - Versioned checkpoint files for soak runs --*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The file format and directory policy for deterministic soak
/// checkpoints. A checkpoint file is:
///
///   u64 magic | u32 version | u64 payload-length | u64 payload-fnv1a64
///   payload := self-describing meta section + serialized run state
///
/// The meta section records everything that determines the run — app,
/// seed, exec mode, packet target, traffic mix, oracle sampling,
/// topology, fault schedule, and a digest of the allocated code — so a
/// resume can hard-fail when pointed at a snapshot of a *different* run
/// instead of silently replaying the wrong stream. The checksum seals
/// the payload against truncation (a crash mid-write) and bit rot;
/// writes are atomic (temp file + fsync + rename), so the newest file
/// in a directory is either complete or detectably torn.
///
/// Directory policy: one file per snapshot, named
/// `ckpt-<packets-retired>.nova-ckpt`. Resume scans newest-first (by
/// the retired count in the name), skips corrupt/truncated tails with a
/// typed warning, and hard-errors (StatusCode::CheckpointMismatch) when
/// a structurally valid snapshot belongs to a different run.
///
/// The serialization layer (BinWriter/BinReader, per-subsystem
/// saveState/restoreState members) lives in support and the simulation
/// libraries; this subsystem owns only files and metadata.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKPOINT_CHECKPOINT_H
#define CHECKPOINT_CHECKPOINT_H

#include "alloc/Allocated.h"
#include "support/BinIO.h"
#include "support/FaultInjection.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nova {
namespace ckpt {

/// "NOVACKPT" little-endian — eight bytes of magic at offset 0.
inline constexpr uint64_t FileMagic = 0x54504b4341564f4eull;
inline constexpr uint32_t FileVersion = 1;

/// Everything that determines a soak run, recorded in every snapshot so
/// resume can verify it is continuing the *same* run.
struct CheckpointMeta {
  std::string App;        ///< "aes" | "kasumi" | "nat"
  uint64_t Seed = 0;
  uint8_t Exec = 0;       ///< soak::ExecMode as integer
  bool Chip = false;      ///< whole-chip run vs standalone stream
  uint64_t Packets = 0;   ///< requested stream length
  uint64_t OracleEvery = 0;
  uint64_t Budget = 0;
  uint32_t Mix[5] = {0, 0, 0, 0, 0}; ///< traffic class weights
  uint32_t MeCount = 0;   ///< chip topology (zero for standalone)
  uint32_t ContextsPerMe = 0;
  uint32_t RingDepth = 0;
  uint32_t SlotStride = 0;
  FaultSchedule Faults;   ///< armed chip fault schedule
  uint64_t CodeHash = 0;  ///< digest of the allocated program
  /// Progress cursor at snapshot time (also in the filename).
  uint64_t PacketsRetired = 0;

  void save(BinWriter &W) const;
  void restore(BinReader &R);

  /// Ok when this snapshot's run-identity fields all equal \p Cur's
  /// (PacketsRetired excluded — that is progress, not identity);
  /// StatusCode::CheckpointMismatch naming the first differing field
  /// otherwise.
  Status matches(const CheckpointMeta &Cur) const;
};

/// Deterministic digest of an allocated program: folds every block,
/// instruction, operand, and the spill geometry. Two builds of the same
/// source at the same compiler settings agree; any codegen change
/// invalidates old snapshots instead of replaying them on different
/// code.
uint64_t codeHash(const alloc::AllocatedProgram &P);

/// One loaded snapshot: its metadata, the state payload positioned
/// after the meta section, and the path it came from.
struct LoadedCheckpoint {
  CheckpointMeta Meta;
  std::string Payload;  ///< full payload (meta + state)
  size_t StateOffset = 0; ///< where the state section starts in Payload
  std::string Path;
  /// Reader over the state section (valid while Payload lives).
  BinReader stateReader() const {
    return BinReader(Payload.data() + StateOffset,
                     Payload.size() - StateOffset);
  }
};

/// Atomically writes `ckpt-<retired>.nova-ckpt` under \p Dir: the meta
/// and \p State are framed, checksummed, written to a temp file,
/// fsync'd, and renamed into place. Creates \p Dir if missing.
Status writeCheckpoint(const std::string &Dir, const CheckpointMeta &Meta,
                       const std::string &State);

/// Reads and structurally validates one snapshot (magic, version,
/// length, checksum) and decodes its meta. Returns
/// StatusCode::CheckpointCorrupt on any structural failure.
Status readCheckpoint(const std::string &Path, LoadedCheckpoint &Out);

/// Scans \p Dir newest-first (highest retired count in the filename)
/// for a structurally valid snapshot. Corrupt or truncated files are
/// skipped, each recorded as a human-readable note in \p SkippedNotes
/// (when non-null). The first structurally valid snapshot must match
/// \p Expect or the scan hard-fails with CheckpointMismatch — silently
/// resuming an older snapshot of a different run is never correct.
/// With no valid snapshot at all, returns CheckpointCorrupt.
Status findLatestValid(const std::string &Dir, const CheckpointMeta &Expect,
                       LoadedCheckpoint &Out,
                       std::vector<std::string> *SkippedNotes = nullptr);

} // namespace ckpt
} // namespace nova

#endif // CHECKPOINT_CHECKPOINT_H
