//===- Checkpoint.cpp - Versioned checkpoint files for soak runs ----------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "checkpoint/Checkpoint.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace nova;
using namespace nova::ckpt;

//===----------------------------------------------------------------------===//
// Meta
//===----------------------------------------------------------------------===//

void CheckpointMeta::save(BinWriter &W) const {
  W.str(App);
  W.u64(Seed);
  W.u8(Exec);
  W.b(Chip);
  W.u64(Packets);
  W.u64(OracleEvery);
  W.u64(Budget);
  for (uint32_t M : Mix)
    W.u32(M);
  W.u32(MeCount);
  W.u32(ContextsPerMe);
  W.u32(RingDepth);
  W.u32(SlotStride);
  W.u64(Faults.size());
  for (const FaultScheduleEntry &E : Faults) {
    W.u8(static_cast<uint8_t>(E.Kind));
    W.u64(E.Rate);
    W.f64(E.Magnitude);
  }
  W.u64(CodeHash);
  W.u64(PacketsRetired);
}

void CheckpointMeta::restore(BinReader &R) {
  App = R.str();
  Seed = R.u64();
  Exec = R.u8();
  Chip = R.b();
  Packets = R.u64();
  OracleEvery = R.u64();
  Budget = R.u64();
  for (uint32_t &M : Mix)
    M = R.u32();
  MeCount = R.u32();
  ContextsPerMe = R.u32();
  RingDepth = R.u32();
  SlotStride = R.u32();
  Faults.clear();
  uint64_t NF = R.u64();
  for (uint64_t I = 0; I != NF && !R.failed(); ++I) {
    FaultScheduleEntry E;
    E.Kind = static_cast<FaultKind>(R.u8());
    E.Rate = R.u64();
    E.Magnitude = R.f64();
    Faults.push_back(E);
  }
  CodeHash = R.u64();
  PacketsRetired = R.u64();
}

static Status mismatch(const std::string &Field) {
  return Status::error(StatusCode::CheckpointMismatch, Phase::Driver,
                       "checkpoint belongs to a different run: " + Field +
                           " differs from the current invocation")
      .addHint("point --resume at the directory of the matching run, or "
               "delete the stale checkpoints");
}

Status CheckpointMeta::matches(const CheckpointMeta &Cur) const {
  if (App != Cur.App)
    return mismatch("app");
  if (Seed != Cur.Seed)
    return mismatch("seed");
  if (Exec != Cur.Exec)
    return mismatch("exec mode");
  if (Chip != Cur.Chip)
    return mismatch("chip/standalone mode");
  if (Packets != Cur.Packets)
    return mismatch("packet target");
  if (OracleEvery != Cur.OracleEvery)
    return mismatch("oracle sampling rate");
  if (Budget != Cur.Budget)
    return mismatch("instruction budget");
  for (unsigned I = 0; I != 5; ++I)
    if (Mix[I] != Cur.Mix[I])
      return mismatch("traffic mix");
  if (MeCount != Cur.MeCount || ContextsPerMe != Cur.ContextsPerMe ||
      RingDepth != Cur.RingDepth || SlotStride != Cur.SlotStride)
    return mismatch("chip topology");
  if (Faults.size() != Cur.Faults.size())
    return mismatch("fault schedule");
  for (size_t I = 0; I != Faults.size(); ++I)
    if (Faults[I].Kind != Cur.Faults[I].Kind ||
        Faults[I].Rate != Cur.Faults[I].Rate ||
        Faults[I].Magnitude != Cur.Faults[I].Magnitude)
      return mismatch("fault schedule");
  if (CodeHash != Cur.CodeHash)
    return mismatch("allocated code hash");
  return Status();
}

uint64_t ckpt::codeHash(const alloc::AllocatedProgram &P) {
  BinWriter W;
  W.u32(P.Entry);
  W.u32(P.NumEntryArgs);
  W.u32(P.SpillBase);
  W.u32(P.NumSpillSlots);
  W.u64(P.Blocks.size());
  for (const alloc::AllocBlock &B : P.Blocks) {
    W.u64(B.Instrs.size());
    for (const alloc::AllocInstr &I : B.Instrs) {
      W.u8(static_cast<uint8_t>(I.Op));
      W.u8(static_cast<uint8_t>(I.Alu));
      W.u8(static_cast<uint8_t>(I.Cmp));
      W.u8(static_cast<uint8_t>(I.Space));
      W.u32(I.Imm);
      W.u32(I.Target);
      W.u32(I.TargetElse);
      W.b(I.Inserted);
      W.u64(I.Srcs.size());
      for (const alloc::AOperand &O : I.Srcs) {
        W.b(O.IsConst);
        W.u8(static_cast<uint8_t>(O.Loc.B));
        W.u32(O.Loc.Reg);
        W.u32(O.Value);
      }
      W.u64(I.Dsts.size());
      for (const alloc::PhysLoc &D : I.Dsts) {
        W.u8(static_cast<uint8_t>(D.B));
        W.u32(D.Reg);
      }
    }
  }
  return fnv1a64(W.bytes().data(), W.bytes().size());
}

//===----------------------------------------------------------------------===//
// File IO
//===----------------------------------------------------------------------===//

static Status ioError(const std::string &What) {
  return Status::error(StatusCode::IoError, Phase::Driver,
                       What + ": " + std::strerror(errno));
}

static Status corrupt(const std::string &Path, const std::string &Why) {
  return Status::error(StatusCode::CheckpointCorrupt, Phase::Driver,
                       "checkpoint " + Path + ": " + Why);
}

Status ckpt::writeCheckpoint(const std::string &Dir,
                             const CheckpointMeta &Meta,
                             const std::string &State) {
  if (mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST)
    return ioError("mkdir " + Dir);

  BinWriter Payload;
  Meta.save(Payload);
  std::string Body = Payload.take();
  Body += State;

  BinWriter Header;
  Header.u64(FileMagic);
  Header.u32(FileVersion);
  Header.u64(Body.size());
  Header.u64(fnv1a64(Body.data(), Body.size()));

  std::string Final =
      Dir + formatf("/ckpt-%llu.nova-ckpt",
                    (unsigned long long)Meta.PacketsRetired);
  std::string Tmp = Final + ".tmp";

  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return ioError("open " + Tmp);
  auto WriteAll = [&](const std::string &S) {
    size_t Off = 0;
    while (Off < S.size()) {
      ssize_t N = ::write(Fd, S.data() + Off, S.size() - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  };
  if (!WriteAll(Header.bytes()) || !WriteAll(Body)) {
    Status S = ioError("write " + Tmp);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return S;
  }
  // Seal the snapshot: data to disk before the rename makes it visible,
  // so the newest `ckpt-*.nova-ckpt` is never a torn write.
  if (::fsync(Fd) != 0) {
    Status S = ioError("fsync " + Tmp);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return S;
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), Final.c_str()) != 0) {
    Status S = ioError("rename " + Tmp);
    ::unlink(Tmp.c_str());
    return S;
  }
  return Status();
}

Status ckpt::readCheckpoint(const std::string &Path, LoadedCheckpoint &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return corrupt(Path, "cannot open");
  std::string Raw;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Raw.append(Buf, N);
  std::fclose(F);

  BinReader R(Raw);
  uint64_t Magic = R.u64();
  uint32_t Version = R.u32();
  uint64_t Len = R.u64();
  uint64_t Sum = R.u64();
  if (R.failed() || Magic != FileMagic)
    return corrupt(Path, "bad magic (not a checkpoint file)");
  if (Version != FileVersion)
    return corrupt(Path,
                   formatf("unsupported version %u (expected %u)", Version,
                           FileVersion));
  if (Len != R.remaining())
    return corrupt(Path, formatf("truncated: header says %llu payload "
                                 "bytes, file has %llu",
                                 (unsigned long long)Len,
                                 (unsigned long long)R.remaining()));
  size_t HeaderSize = Raw.size() - R.remaining();
  if (fnv1a64(Raw.data() + HeaderSize, static_cast<size_t>(Len)) != Sum)
    return corrupt(Path, "payload checksum mismatch");

  Out.Payload = Raw.substr(HeaderSize);
  BinReader Meta(Out.Payload);
  Out.Meta.restore(Meta);
  if (Meta.failed())
    return corrupt(Path, "malformed meta section");
  Out.StateOffset = Out.Payload.size() - Meta.remaining();
  Out.Path = Path;
  return Status();
}

Status ckpt::findLatestValid(const std::string &Dir,
                             const CheckpointMeta &Expect,
                             LoadedCheckpoint &Out,
                             std::vector<std::string> *SkippedNotes) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Status::error(StatusCode::CheckpointCorrupt, Phase::Driver,
                         "checkpoint directory " + Dir + ": " +
                             std::strerror(errno));
  // Collect (retired, name) for every well-formed filename; newest
  // (largest retired count) first.
  std::vector<std::pair<uint64_t, std::string>> Files;
  while (dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    unsigned long long Retired;
    char Tail;
    if (std::sscanf(Name.c_str(), "ckpt-%llu.nova-ckp%c", &Retired, &Tail) ==
            2 &&
        Tail == 't' && Name == formatf("ckpt-%llu.nova-ckpt", Retired))
      Files.emplace_back(Retired, Name);
  }
  ::closedir(D);
  std::sort(Files.begin(), Files.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });

  for (const auto &[Retired, Name] : Files) {
    LoadedCheckpoint LC;
    Status S = readCheckpoint(Dir + "/" + Name, LC);
    if (!S.ok()) {
      // A torn tail (crash mid-write survives only as a stale .tmp, but
      // bit rot or manual truncation can corrupt any file): warn, skip,
      // keep scanning older snapshots.
      if (SkippedNotes)
        SkippedNotes->push_back(S.message());
      continue;
    }
    // The newest structurally valid snapshot decides: a meta mismatch
    // is a hard error, never a silent fall-through to an older file.
    if (Status M = LC.Meta.matches(Expect); !M.ok())
      return M;
    Out = std::move(LC);
    return Status();
  }
  return Status::error(StatusCode::CheckpointCorrupt, Phase::Driver,
                       "no valid checkpoint found in " + Dir)
      .addHint("every candidate file was corrupt, truncated, or absent");
}
