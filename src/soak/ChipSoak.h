//===- ChipSoak.h - Whole-chip adversarial soak ------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The soak harness's chip mode: streams the same seeded adversarial
/// traffic through the whole-chip simulator (src/chip) — RX sharding
/// across processing micro-engines, 4 hardware contexts per ME swapping
/// on memory references, contended channels, in-order TX retirement —
/// under the same trap=>drop policy.
///
/// Oracle strategy in chip mode: per-packet isolation (private SDRAM
/// slots, rebased pointers, scrubbed at dispatch) makes every chip
/// execution data-identical to a standalone run of the same rebased
/// packet on fresh base memory. Each sampled packet therefore gets (a)
/// the standard three-way differential oracle (allocated / functional /
/// CPS, halts + final image word-for-word), and (b) a chip-vs-standalone
/// cross-check: outcome, trap kind, and halt values of the chip's own
/// execution must equal the standalone allocated run's (cycle counts
/// legitimately differ — that's the contention being modeled).
///
/// Accounting differences from the single-ME soak: the per-packet cycle
/// histogram records *residence time* (dispatch to in-order retirement,
/// queueing included), and headline goodput is delivered payload over
/// the chip's final clock — packets overlap, so per-packet sums would
/// double-count time.
///
//===----------------------------------------------------------------------===//

#ifndef SOAK_CHIPSOAK_H
#define SOAK_CHIPSOAK_H

#include "chip/Chip.h"
#include "soak/Soak.h"

namespace nova {
namespace soak {

struct ChipSoakOptions {
  SoakOptions Base;      ///< packets, seed, mix, budget, oracle sampling
  chip::ChipParams Chip; ///< topology and queueing (Budget is overridden
                         ///< by Base.Budget so the oracle cross-check is
                         ///< instruction-exact)
};

struct ChipSoakReport {
  /// Configuration check (validateChipSetup); when not ok() nothing ran.
  Status Setup;
  /// Stream-level outcome in the single-ME report shape (cycle histogram
  /// holds residence times; see file comment).
  SoakReport Base;
  chip::ChipParams Params;
  chip::ChipRunStats Chip;
  /// Delivered payload over chip wall-clock (FinalCycles at MP.ClockHz).
  double GoodputMbps = 0;
  /// Hash of the final SDRAM image (determinism witness).
  uint64_t ImageHash = 0;
  /// Sampled packets whose chip execution outcome differed from the
  /// standalone allocated run (also counted in Base.Divergences).
  uint64_t ChipOutcomeMismatches = 0;
};

/// Streams Opts.Base.Packets packets through a chip built from \p App's
/// allocated program (every processing ME runs it).
ChipSoakReport runChipSoak(const AppHarness &App,
                           const ChipSoakOptions &Opts);

/// Base reportJson extended with a "chip" object: per-ME utilization,
/// ring occupancy high-waters, contention stalls, trace/image hashes.
std::string chipReportJson(const ChipSoakReport &R);

/// Human-readable summary (base report + chip lines).
void printChipReport(const ChipSoakReport &R, std::FILE *Out);

} // namespace soak
} // namespace nova

#endif // SOAK_CHIPSOAK_H
