//===- Soak.cpp - Soak runner, differential oracle, shrinker --------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "soak/Soak.h"

#include "apps/AppSources.h"
#include "cps/Eval.h"
#include "fastpath/FastPath.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <climits>
#include <csignal>

using namespace nova;
using namespace nova::soak;

const char *soak::execModeName(ExecMode M) {
  return M == ExecMode::Threaded ? "threaded" : "interp";
}

//===----------------------------------------------------------------------===//
// AppHarness
//===----------------------------------------------------------------------===//

driver::CompileOptions AppHarness::defaultCompileOptions() {
  driver::CompileOptions Opts;
  // Soaking wants packets, not optimality proofs: bound the per-app ILP
  // and accept the incumbent rung (the ladder guarantees verified code).
  Opts.Alloc.Mip.TimeLimitSeconds = 60.0;
  Opts.Alloc.FailurePolicy = alloc::OnIlpFailure::Incumbent;
  return Opts;
}

std::unique_ptr<AppHarness>
AppHarness::create(const std::string &Name, std::string &Error,
                   const driver::CompileOptions &Opts) {
  std::unique_ptr<AppHarness> H(new AppHarness());
  H->Name = Name;
  std::string Source;
  if (Name == "aes") {
    H->Id = AppId::Aes;
    Source = apps::aesNovaSource();
  } else if (Name == "kasumi") {
    H->Id = AppId::Kasumi;
    Source = apps::kasumiNovaSource();
  } else if (Name == "nat") {
    H->Id = AppId::Nat;
    Source = apps::natNovaSource();
  } else {
    Error = "unknown application '" + Name + "' (expected aes, kasumi, nat)";
    return nullptr;
  }
  H->App = driver::compileNova(Source, Name + ".nova", Opts);
  if (!H->App->Ok) {
    Error = H->App->ErrorText;
    return nullptr;
  }
  switch (H->Id) {
  case AppId::Aes:
    apps::loadAesEnvironment(H->BaseSim);
    apps::loadAesEnvironment(H->BaseEval);
    break;
  case AppId::Kasumi:
    apps::loadKasumiEnvironment(H->BaseSim);
    apps::loadKasumiEnvironment(H->BaseEval);
    break;
  case AppId::Nat:
    break; // NAT needs no table environment
  }
  return H;
}

bool AppHarness::isAppReject(const std::vector<uint32_t> &Halt) const {
  if (Halt.size() != 1)
    return false;
  // Kasumi's only handler codes are the two top values; its normal result
  // l^r ranges over the whole word, so a high-half test would misfile
  // one delivery in 2^16.
  if (Id == AppId::Kasumi)
    return Halt[0] >= 0xFFFFFFFEu;
  return (Halt[0] >> 16) == 0xFFFFu;
}

//===----------------------------------------------------------------------===//
// Differential oracle
//===----------------------------------------------------------------------===//

namespace {

/// First difference between two final memory images, or true when equal.
/// Templated over the image type: the simulator's sim::WordMap and the
/// CPS evaluator's std::map iterate the same ascending (address, value)
/// sequence.
template <typename ImgA, typename ImgB>
bool sameImage(const ImgA &A, const ImgB &B, const char *AName,
               const char *BName, std::string &Why,
               const char *What = "sdram") {
  auto IA = A.begin(), IB = B.begin();
  while (IA != A.end() && IB != B.end()) {
    if (IA->first != IB->first || IA->second != IB->second) {
      Why = formatf("%s differs: %s has [0x%x]=0x%x, %s has [0x%x]=0x%x",
                    What, AName, IA->first, IA->second, BName, IB->first,
                    IB->second);
      return false;
    }
    ++IA;
    ++IB;
  }
  if (IA != A.end() || IB != B.end()) {
    bool ALeft = IA != A.end();
    uint32_t Addr = ALeft ? IA->first : IB->first;
    uint32_t Val = ALeft ? IA->second : IB->second;
    Why = formatf("%s differs: only %s has [0x%x]=0x%x", What,
                  ALeft ? AName : BName, Addr, Val);
    return false;
  }
  return true;
}

bool sameHalts(const std::vector<uint32_t> &A, const std::vector<uint32_t> &B,
               const char *AName, const char *BName, std::string &Why) {
  if (A.size() != B.size()) {
    Why = formatf("halt arity differs: %s returned %zu values, %s %zu",
                  AName, A.size(), BName, B.size());
    return false;
  }
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I] != B[I]) {
      Why = formatf("halt value %zu differs: %s 0x%x, %s 0x%x", I, AName,
                    A[I], BName, B[I]);
      return false;
    }
  return true;
}

template <typename SdramT>
void storeWords(SdramT &Sdram, uint32_t Addr,
                const std::vector<uint32_t> &Words) {
  apps::storePacket(Sdram, Addr, Words);
}

PacketOutcome runPacketInner(const AppHarness &App, const SoakPacket &P,
                             const SoakOptions &Opts, bool WithOracle,
                             sim::Memory &MA) {
  PacketOutcome O;
  // Per-packet injection windows: a diverging packet reproduces
  // stand-alone, which is what makes shrinking deterministic.
  if (FaultInjector::armed())
    FaultInjector::instance().rearm();

  sim::RunOptions RO;
  RO.Lat = Opts.Lat;
  RO.MaxInstructions = Opts.Budget;

  storeWords(MA.Sdram, P.Args.empty() ? 0 : P.Args[0], P.Words);
  O.Alloc = sim::runAllocated(App.compiled().Alloc.Prog, P.Args, MA, RO);
  O.AppReject = O.Alloc.Ok && App.isAppReject(O.Alloc.HaltValues);
  if (!WithOracle)
    return O;

  // Functional oracle: same machine semantics over virtual temporaries.
  // 4x the instruction budget: no spill reload traffic, but also no
  // reason to starve it into a false watchdog.
  sim::RunOptions RF = RO;
  RF.MaxInstructions = Opts.Budget * 4;
  sim::Memory MF = App.baseSim();
  storeWords(MF.Sdram, P.Args.empty() ? 0 : P.Args[0], P.Words);
  sim::RunResult F =
      sim::runFunctional(App.compiled().Machine, P.Args, MF, RF);

  std::string Why;
  if (!O.Alloc.Ok) {
    // Drop path. Watchdog exhaustion is mode-specific by design (the
    // budgets differ); every other trap must strike functionally too,
    // with the same kind — a bit flip that redirects an address shows
    // up right here.
    if (O.Alloc.Trap == sim::TrapKind::Watchdog)
      return O;
    if (F.Ok) {
      O.Diverged = true;
      O.What = formatf("allocated trapped (%s) but functional delivered",
                       sim::trapKindName(O.Alloc.Trap));
    } else if (F.Trap != O.Alloc.Trap) {
      O.Diverged = true;
      O.What = formatf("trap kind differs: allocated %s, functional %s",
                       sim::trapKindName(O.Alloc.Trap),
                       sim::trapKindName(F.Trap));
    }
    return O;
  }

  if (!F.Ok) {
    if (F.Trap == sim::TrapKind::Watchdog) {
      O.OracleBudgetMiss = true;
      return O;
    }
    O.Diverged = true;
    O.What = formatf("functional trapped (%s) but allocated delivered",
                     sim::trapKindName(F.Trap));
    return O;
  }
  if (!sameHalts(O.Alloc.HaltValues, F.HaltValues, "allocated",
                 "functional", Why) ||
      !sameImage(MA.Sdram, MF.Sdram, "allocated", "functional", Why)) {
    O.Diverged = true;
    O.What = Why;
    return O;
  }

  // CPS reference evaluator: the language's observable semantics. Only
  // meaningful on delivered packets — the evaluator deliberately has no
  // bounds model. Steps per machine instruction are not one-to-one, so
  // it gets a generous multiple.
  uint64_t Steps64 = Opts.Budget * 64;
  unsigned MaxSteps = static_cast<unsigned>(
      std::min<uint64_t>(Steps64, UINT_MAX));
  cps::EvalMemory ME = App.baseEval();
  storeWords(ME.Sdram, P.Args.empty() ? 0 : P.Args[0], P.Words);
  cps::EvalResult E =
      cps::evaluate(App.compiled().Cps, P.Args, ME, MaxSteps);
  if (!E.Ok) {
    if (E.Error.find("step limit") != std::string::npos) {
      O.OracleBudgetMiss = true;
      return O;
    }
    O.Diverged = true;
    O.What = "cps evaluator failed: " + E.Error;
    return O;
  }
  if (!sameHalts(O.Alloc.HaltValues, E.HaltValues, "allocated", "cps",
                 Why) ||
      !sameImage(MA.Sdram, ME.Sdram, "allocated", "cps", Why)) {
    O.Diverged = true;
    O.What = Why;
  }
  return O;
}

} // namespace

PacketOutcome soak::runPacket(const AppHarness &App, const SoakPacket &P,
                              const SoakOptions &Opts, bool WithOracle) {
  sim::Memory MA = App.baseSim();
  PacketOutcome O = runPacketInner(App, P, Opts, WithOracle, MA);
  O.AllocMem = std::move(MA); // map moves: O(1), no image copies
  return O;
}

//===----------------------------------------------------------------------===//
// Fast-path vs interpreter comparison (threaded mode)
//===----------------------------------------------------------------------===//

namespace {

/// Holds the fast path to its contract: bit-identical RunResult and
/// memory effects vs the interpreter's run of the same packet.
bool fastMatches(const sim::RunResult &FR, const fastpath::BatchMemory &BM,
                 const PacketOutcome &O, std::string &Why) {
  const sim::RunResult &IR = O.Alloc;
  if (FR.Ok != IR.Ok) {
    Why = formatf("fastpath %s but interpreter %s",
                  FR.Ok ? "delivered" : "trapped",
                  IR.Ok ? "delivered" : "trapped");
    return false;
  }
  if (FR.Trap != IR.Trap) {
    Why = formatf("trap kind differs: fastpath %s, interpreter %s",
                  sim::trapKindName(FR.Trap), sim::trapKindName(IR.Trap));
    return false;
  }
  if (FR.Error.message() != IR.Error.message()) {
    Why = formatf("trap message differs: fastpath \"%s\", interpreter "
                  "\"%s\"",
                  FR.Error.message().c_str(), IR.Error.message().c_str());
    return false;
  }
  if (FR.Instructions != IR.Instructions) {
    Why = formatf("instruction count differs: fastpath %llu, interpreter "
                  "%llu",
                  (unsigned long long)FR.Instructions,
                  (unsigned long long)IR.Instructions);
    return false;
  }
  if (FR.Cycles != IR.Cycles) {
    Why = formatf("cycle count differs: fastpath %llu, interpreter %llu",
                  (unsigned long long)FR.Cycles,
                  (unsigned long long)IR.Cycles);
    return false;
  }
  if (!sameHalts(FR.HaltValues, IR.HaltValues, "fastpath", "interpreter",
                 Why))
    return false;
  const sim::WordMap *IM[3] = {&O.AllocMem.Sram, &O.AllocMem.Sdram,
                               &O.AllocMem.Scratch};
  static const char *const SpaceNames[3] = {"sram", "sdram", "scratch"};
  for (unsigned S = 0; S != 3; ++S)
    if (!sameImage(BM.image(static_cast<MemSpace>(S)), *IM[S], "fastpath",
                   "interpreter", Why, SpaceNames[S]))
      return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

std::vector<uint32_t> soak::shrinkDivergenceWith(
    const SoakPacket &P, unsigned &Runs,
    const std::function<bool(const SoakPacket &)> &Diverges) {
  constexpr unsigned MaxRuns = 600;
  std::vector<uint32_t> Cur = P.Words;
  SoakPacket Q = P; // reused candidate: only Words vary per run
  auto diverges = [&](const std::vector<uint32_t> &W) {
    if (Runs >= MaxRuns)
      return false;
    ++Runs;
    Q.Words = W;
    return Diverges(Q);
  };
  // Delta-debugging pass: drop chunks, halving the chunk size.
  for (size_t Chunk = std::max<size_t>(Cur.size() / 2, 1);;) {
    for (size_t Pos = 0; Pos + Chunk <= Cur.size();) {
      std::vector<uint32_t> Cand(Cur.begin(), Cur.begin() + Pos);
      Cand.insert(Cand.end(), Cur.begin() + Pos + Chunk, Cur.end());
      if (diverges(Cand))
        Cur = std::move(Cand);
      else
        Pos += Chunk;
    }
    if (Chunk == 1)
      break;
    Chunk /= 2;
  }
  // Simplification pass: zero every surviving word that tolerates it.
  for (size_t I = 0; I != Cur.size(); ++I) {
    if (Cur[I] == 0)
      continue;
    std::vector<uint32_t> Cand = Cur;
    Cand[I] = 0;
    if (diverges(Cand))
      Cur = std::move(Cand);
  }
  return Cur;
}

std::vector<uint32_t> soak::shrinkDivergence(const AppHarness &App,
                                             const SoakPacket &P,
                                             const SoakOptions &Opts,
                                             unsigned &Runs) {
  return shrinkDivergenceWith(P, Runs, [&](const SoakPacket &Q) {
    return runPacket(App, Q, Opts, /*WithOracle=*/true).Diverged;
  });
}

//===----------------------------------------------------------------------===//
// Checkpoint progress serialization
//===----------------------------------------------------------------------===//

namespace {

void saveDivergence(BinWriter &W, const Divergence &D) {
  W.b(D.Found);
  W.u64(D.Index);
  W.u64(D.Seed);
  W.u8(static_cast<uint8_t>(D.Class));
  W.str(D.What);
  W.vec32(D.Words);
  W.vec32(D.Args);
  W.vec32(D.ShrunkWords);
  W.u32(D.ShrinkRuns);
}

void restoreDivergence(BinReader &R, Divergence &D) {
  D.Found = R.b();
  D.Index = R.u64();
  D.Seed = R.u64();
  D.Class = static_cast<PacketClass>(R.u8());
  D.What = R.str();
  D.Words = R.vec32();
  D.Args = R.vec32();
  D.ShrunkWords = R.vec32();
  D.ShrinkRuns = R.u32();
}

} // namespace

void soak::saveSoakProgress(BinWriter &W, const SoakReport &R,
                            uint64_t Cursor) {
  W.u64(Cursor);
  for (uint64_t C : R.ClassCounts)
    W.u64(C);
  R.Stats.saveState(W);
  W.u64(R.OracleChecks);
  W.u64(R.OracleBudgetMisses);
  W.u64(R.Divergences);
  saveDivergence(W, R.First);
}

void soak::restoreSoakProgress(BinReader &R, SoakReport &Rep,
                               uint64_t &Cursor) {
  Cursor = R.u64();
  for (uint64_t &C : Rep.ClassCounts)
    C = R.u64();
  Rep.Stats.restoreState(R);
  Rep.OracleChecks = R.u64();
  Rep.OracleBudgetMisses = R.u64();
  Rep.Divergences = R.u64();
  restoreDivergence(R, Rep.First);
}

ckpt::CheckpointMeta soak::checkpointMeta(const AppHarness &App,
                                          const SoakOptions &Opts) {
  ckpt::CheckpointMeta M;
  M.App = App.name();
  M.Seed = Opts.Seed;
  M.Exec = static_cast<uint8_t>(Opts.Exec);
  M.Chip = false;
  M.Packets = Opts.Packets;
  M.OracleEvery = Opts.OracleEvery;
  M.Budget = Opts.Budget;
  M.Mix[0] = Opts.Mix.Valid;
  M.Mix[1] = Opts.Mix.Truncated;
  M.Mix[2] = Opts.Mix.Oversized;
  M.Mix[3] = Opts.Mix.Corrupt;
  M.Mix[4] = Opts.Mix.Fuzz;
  M.CodeHash = ckpt::codeHash(App.compiled().Alloc.Prog);
  return M;
}

void soak::progressHeartbeat(const std::string &App, uint64_t Retired,
                             double WallSeconds, uint64_t LastCheckpoint) {
  double Rate = WallSeconds > 0 ? double(Retired) / WallSeconds : 0;
  std::fprintf(stderr,
               "novasoak: progress: app=%s retired=%llu pkt/s=%.0f "
               "last_checkpoint=%llu\n",
               App.c_str(), (unsigned long long)Retired, Rate,
               (unsigned long long)LastCheckpoint);
  std::fflush(stderr);
}

namespace {

/// The per-stream checkpoint driver shared by the interp and threaded
/// runners (ChipSoak has its own copy of this logic wired through the
/// chip's retire hook). Owns the thresholds; returns true from
/// onRetired when the run must stop (StopAfter crash simulation).
struct CkptDriver {
  const CheckpointOptions &CK;
  ckpt::CheckpointMeta Meta;
  const SoakReport &Rep;
  const Timer &Clock;
  uint64_t NextCkpt = 0, NextProg = 0, LastCkpt = 0;

  CkptDriver(const CheckpointOptions &CK, ckpt::CheckpointMeta Meta,
             const SoakReport &Rep, const Timer &Clock, uint64_t Start)
      : CK(CK), Meta(std::move(Meta)), Rep(Rep), Clock(Clock) {
    if (CK.Every)
      NextCkpt = (Start / CK.Every + 1) * CK.Every;
    if (CK.ProgressEvery)
      NextProg = (Start / CK.ProgressEvery + 1) * CK.ProgressEvery;
    LastCkpt = Start;
  }

  bool onRetired(uint64_t Retired, uint64_t Cursor) {
    if (NextCkpt && Retired >= NextCkpt) {
      BinWriter W;
      saveSoakProgress(W, Rep, Cursor);
      Meta.PacketsRetired = Retired;
      if (Status S = ckpt::writeCheckpoint(CK.Dir, Meta, W.bytes());
          !S.ok())
        std::fprintf(stderr, "novasoak: warning: checkpoint failed: %s\n",
                     S.message().c_str());
      else
        LastCkpt = Retired;
      NextCkpt = (Retired / CK.Every + 1) * CK.Every;
    }
    if (NextProg && Retired >= NextProg) {
      progressHeartbeat(Rep.App, Retired, Clock.seconds(), LastCkpt);
      NextProg = (Retired / CK.ProgressEvery + 1) * CK.ProgressEvery;
    }
    if (CK.KillAfter && Retired >= CK.KillAfter) {
      // The crash harness wants a real mid-run death, not a clean exit:
      // nothing is flushed, no destructor runs, the checkpoint directory
      // is whatever the last atomic rename left behind.
      std::raise(SIGKILL);
    }
    return CK.StopAfter != 0 && Retired >= CK.StopAfter;
  }
};

/// Resumes \p Rep / \p Start from the newest valid snapshot in the
/// checkpoint directory. False => hard failure recorded in
/// Rep.CkptError (the caller returns the report untouched-but-failed).
bool resumeSoak(const CheckpointOptions &CK, const ckpt::CheckpointMeta &Meta,
                SoakReport &Rep, uint64_t &Start) {
  ckpt::LoadedCheckpoint LC;
  std::vector<std::string> Notes;
  Status S = ckpt::findLatestValid(CK.Dir, Meta, LC, &Notes);
  for (const std::string &N : Notes)
    std::fprintf(stderr, "novasoak: warning: skipping checkpoint: %s\n",
                 N.c_str());
  if (!S.ok()) {
    Rep.CkptError = S;
    return false;
  }
  BinReader R = LC.stateReader();
  restoreSoakProgress(R, Rep, Start);
  if (R.failed() || R.remaining() != 0) {
    Rep.CkptError = Status::error(
        StatusCode::CheckpointCorrupt, Phase::Driver,
        "checkpoint " + LC.Path + ": state section malformed");
    return false;
  }
  Rep.ResumedFrom = LC.Path;
  std::fprintf(stderr, "novasoak: resumed %s from %s (%llu retired)\n",
               Rep.App.c_str(), LC.Path.c_str(),
               (unsigned long long)LC.Meta.PacketsRetired);
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Stream runner
//===----------------------------------------------------------------------===//

namespace {

/// Threaded mode: translate once, run batches on the fast path, sample
/// the interpreter + functional + CPS oracles every OracleEvery'th
/// packet. The sampled interpreter run doubles as the bit-exactness
/// check on the fast path itself (fastMatches).
SoakReport runSoakThreaded(const AppHarness &App, const SoakOptions &Opts) {
  SoakReport Rep;
  Rep.App = App.name();
  Rep.Seed = Opts.Seed;
  Rep.Exec = ExecMode::Threaded;
  Rep.OracleEvery = Opts.OracleEvery;
  Timer Clock;

  const CheckpointOptions &CK = Opts.Ckpt;
  ckpt::CheckpointMeta Meta = checkpointMeta(App, Opts);
  uint64_t Start = 0;
  if (CK.Resume && !resumeSoak(CK, Meta, Rep, Start))
    return Rep;
  CkptDriver CD(CK, Meta, Rep, Clock, Start);

  Timer TranslateClock;
  fastpath::Translated T =
      fastpath::translate(App.compiled().Alloc.Prog, Opts.Lat);
  fastpath::Engine Eng(T);
  fastpath::BatchMemory BM(App.baseSim());
  Rep.TranslateSeconds = TranslateClock.seconds();

  sim::RunOptions RO;
  RO.Lat = Opts.Lat;
  RO.MaxInstructions = Opts.Budget;
  const bool Armed = FaultInjector::armed();

  // Re-runs packet Q on both executions; true when anything disagrees
  // (the 3-way oracle or the fast-vs-interpreter contract). Used for
  // shrinking, so every run re-arms the injector first.
  auto threadedDiverges = [&](const SoakPacket &Q) {
    if (Armed)
      FaultInjector::instance().rearm();
    BM.reset();
    BM.storePacket(Q.Args.empty() ? 0 : Q.Args[0], Q.Words);
    sim::RunResult QR = Eng.run(Q.Args, BM, RO);
    PacketOutcome QO = runPacket(App, Q, Opts, /*WithOracle=*/true);
    std::string QWhy;
    return QO.Diverged || !fastMatches(QR, BM, QO, QWhy);
  };

  constexpr uint64_t BatchSize = 256;
  std::vector<SoakPacket> Batch;
  PacketTemplateCache Tmpl;
  bool Stop = false;

  // Resuming mid-stream is safe at any index: packet I is a pure
  // function of (seed, I) and the oracle decision uses the absolute
  // index, so batch alignment carries no state.
  for (uint64_t Base = Start; Base < Opts.Packets && !Stop;
       Base += BatchSize) {
    const uint64_t N = std::min<uint64_t>(BatchSize, Opts.Packets - Base);
    // Batch slots and their Words/Args buffers are reused across
    // batches; only the first batch allocates.
    App.generateBatch(Base, N, Opts.Seed, Opts.Mix, Tmpl, Batch);

    for (uint64_t K = 0; K != N; ++K) {
      const SoakPacket &P = Batch[K];
      ++Rep.ClassCounts[static_cast<unsigned>(P.Class)];
      if (Armed)
        FaultInjector::instance().rearm();
      BM.reset();
      BM.storePacket(P.Args.empty() ? 0 : P.Args[0], P.Words);
      sim::RunResult FR = Eng.run(P.Args, BM, RO);
      Rep.Stats.account(FR, FR.Ok && App.isAppReject(FR.HaltValues),
                        P.PayloadBytes);

      bool WithOracle =
          Opts.OracleEvery != 0 && (Base + K) % Opts.OracleEvery == 0;
      if (WithOracle) {
        ++Rep.OracleChecks;
        // The oracle rerun re-arms the injector itself, so the
        // interpreter replays the exact draw sequence the fast path saw.
        PacketOutcome O = runPacket(App, P, Opts, /*WithOracle=*/true);
        if (O.OracleBudgetMiss)
          ++Rep.OracleBudgetMisses;
        std::string Why;
        if (!O.Diverged && !fastMatches(FR, BM, O, Why)) {
          O.Diverged = true;
          O.What = "fastpath vs interpreter: " + Why;
        }
        if (O.Diverged) {
          ++Rep.Divergences;
          if (!Rep.First.Found) {
            Rep.First.Found = true;
            Rep.First.Index = P.Index;
            Rep.First.Seed = P.Seed;
            Rep.First.Class = P.Class;
            Rep.First.What = O.What;
            Rep.First.Words = P.Words;
            Rep.First.Args = P.Args;
            Rep.First.ShrunkWords =
                Opts.Shrink ? shrinkDivergenceWith(P, Rep.First.ShrinkRuns,
                                                   threadedDiverges)
                            : P.Words;
          }
          if (Opts.FailFast) {
            Stop = true;
            break;
          }
        }
      }
      // Snapshot/heartbeat only after the packet's accounting (and any
      // oracle bookkeeping) has fully landed in Rep.
      if (CD.onRetired(Base + K + 1, Base + K + 1)) {
        Rep.Stopped = true;
        Stop = true;
        break;
      }
    }
  }
  Rep.WallSeconds = Clock.seconds();
  return Rep;
}

} // namespace

SoakReport soak::runSoak(const AppHarness &App, const SoakOptions &Opts) {
  if (Opts.Exec == ExecMode::Threaded)
    return runSoakThreaded(App, Opts);
  SoakReport Rep;
  Rep.App = App.name();
  Rep.Seed = Opts.Seed;
  Rep.Exec = ExecMode::Interp;
  Rep.OracleEvery = Opts.OracleEvery;
  Timer Clock;

  const CheckpointOptions &CK = Opts.Ckpt;
  ckpt::CheckpointMeta Meta = checkpointMeta(App, Opts);
  uint64_t Start = 0;
  if (CK.Resume && !resumeSoak(CK, Meta, Rep, Start))
    return Rep;
  CkptDriver CD(CK, Meta, Rep, Clock, Start);

  SoakPacket P;
  PacketTemplateCache Tmpl;
  for (uint64_t I = Start; I != Opts.Packets; ++I) {
    App.generateInto(I, Opts.Seed, Opts.Mix, Tmpl, P);
    ++Rep.ClassCounts[static_cast<unsigned>(P.Class)];
    bool WithOracle = Opts.OracleEvery != 0 && I % Opts.OracleEvery == 0;
    PacketOutcome O = runPacket(App, P, Opts, WithOracle);
    Rep.Stats.account(O.Alloc, O.AppReject, P.PayloadBytes);
    if (WithOracle)
      ++Rep.OracleChecks;
    if (O.OracleBudgetMiss)
      ++Rep.OracleBudgetMisses;
    if (O.Diverged) {
      ++Rep.Divergences;
      if (!Rep.First.Found) {
        Rep.First.Found = true;
        Rep.First.Index = P.Index;
        Rep.First.Seed = P.Seed;
        Rep.First.Class = P.Class;
        Rep.First.What = O.What;
        Rep.First.Words = P.Words;
        Rep.First.Args = P.Args;
        Rep.First.ShrunkWords =
            Opts.Shrink
                ? shrinkDivergence(App, P, Opts, Rep.First.ShrinkRuns)
                : P.Words;
      }
      if (Opts.FailFast)
        break;
    }
    if (CD.onRetired(I + 1, I + 1)) {
      Rep.Stopped = true;
      break;
    }
  }
  Rep.WallSeconds = Clock.seconds();
  return Rep;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string wordsJson(const std::vector<uint32_t> &W) {
  std::string Out = "[";
  for (size_t I = 0; I != W.size(); ++I)
    Out += formatf("%s%u", I ? "," : "", W[I]);
  return Out + "]";
}

} // namespace

std::string soak::reportJson(const SoakReport &R) {
  const sim::RunStats &S = R.Stats;
  std::string J = "{\"schema_version\":2,";
  J += formatf("\"app\":\"%s\",\"seed\":%llu,\"packets\":%llu,",
               R.App.c_str(), (unsigned long long)R.Seed,
               (unsigned long long)S.Packets);
  J += "\"classes\":{";
  for (unsigned C = 0; C != NumPacketClasses; ++C)
    J += formatf("%s\"%s\":%llu", C ? "," : "",
                 packetClassName(static_cast<PacketClass>(C)),
                 (unsigned long long)R.ClassCounts[C]);
  J += "},";
  J += formatf("\"delivered\":%llu,\"rejected\":%llu,\"drops\":%llu,",
               (unsigned long long)S.Delivered,
               (unsigned long long)S.Rejected, (unsigned long long)S.Drops);
  J += "\"traps\":{";
  bool FirstTrap = true;
  for (unsigned K = 1; K != sim::NumTrapKinds; ++K) {
    J += formatf("%s\"%s\":%llu", FirstTrap ? "" : ",",
                 sim::trapKindName(static_cast<sim::TrapKind>(K)),
                 (unsigned long long)S.Traps[K]);
    FirstTrap = false;
  }
  J += "},";
  J += formatf("\"p50_cycles\":%llu,\"p99_cycles\":%llu,",
               (unsigned long long)S.p50Cycles(),
               (unsigned long long)S.p99Cycles());
  J += formatf("\"total_cycles\":%llu,\"total_instructions\":%llu,",
               (unsigned long long)S.TotalCycles,
               (unsigned long long)S.TotalInstructions);
  J += formatf("\"delivered_mbps\":%.3f,", S.deliveredMbps());
  J += formatf("\"exec_mode\":\"%s\",\"oracle_rate\":%llu,"
               "\"translate_seconds\":%.6f,",
               execModeName(R.Exec), (unsigned long long)R.OracleEvery,
               R.TranslateSeconds);
  J += formatf("\"oracle_checks\":%llu,\"oracle_budget_misses\":%llu,"
               "\"divergences\":%llu,",
               (unsigned long long)R.OracleChecks,
               (unsigned long long)R.OracleBudgetMisses,
               (unsigned long long)R.Divergences);
  J += formatf("\"wall_seconds\":%.3f,\"packets_per_sec\":%.1f,",
               R.WallSeconds, R.packetsPerSec());
  if (R.First.Found) {
    J += formatf("\"first_divergence\":{\"index\":%llu,\"seed\":%llu,"
                 "\"class\":\"%s\",\"what\":\"%s\",",
                 (unsigned long long)R.First.Index,
                 (unsigned long long)R.First.Seed,
                 packetClassName(R.First.Class),
                 jsonEscape(R.First.What).c_str());
    J += "\"args\":" + wordsJson(R.First.Args) + ",";
    J += "\"words\":" + wordsJson(R.First.Words) + ",";
    J += "\"shrunk_words\":" + wordsJson(R.First.ShrunkWords) + ",";
    J += formatf("\"shrink_runs\":%u}", R.First.ShrinkRuns);
  } else {
    J += "\"first_divergence\":null";
  }
  J += "}";
  return J;
}

void soak::printReport(const SoakReport &R, std::FILE *Out) {
  const sim::RunStats &S = R.Stats;
  std::fprintf(Out, "== %s: %llu packets, seed %llu ==\n", R.App.c_str(),
               (unsigned long long)S.Packets, (unsigned long long)R.Seed);
  std::fprintf(Out, "  exec      : %s  oracle-rate=%llu",
               execModeName(R.Exec), (unsigned long long)R.OracleEvery);
  if (R.Exec == ExecMode::Threaded)
    std::fprintf(Out, "  translate=%.3fs", R.TranslateSeconds);
  std::fprintf(Out, "\n");
  std::fprintf(Out, "  classes   :");
  for (unsigned C = 0; C != NumPacketClasses; ++C)
    std::fprintf(Out, " %s=%llu",
                 packetClassName(static_cast<PacketClass>(C)),
                 (unsigned long long)R.ClassCounts[C]);
  std::fprintf(Out, "\n");
  std::fprintf(Out,
               "  outcome   : delivered=%llu rejected=%llu drops=%llu\n",
               (unsigned long long)S.Delivered,
               (unsigned long long)S.Rejected,
               (unsigned long long)S.Drops);
  std::fprintf(Out, "  traps     :");
  for (unsigned K = 1; K != sim::NumTrapKinds; ++K)
    if (S.Traps[K])
      std::fprintf(Out, " %s=%llu",
                   sim::trapKindName(static_cast<sim::TrapKind>(K)),
                   (unsigned long long)S.Traps[K]);
  std::fprintf(Out, "\n");
  std::fprintf(Out,
               "  cycles    : p50=%llu p99=%llu  goodput=%.1f Mbps\n",
               (unsigned long long)S.p50Cycles(),
               (unsigned long long)S.p99Cycles(), S.deliveredMbps());
  std::fprintf(Out,
               "  oracle    : checks=%llu budget-misses=%llu "
               "divergences=%llu\n",
               (unsigned long long)R.OracleChecks,
               (unsigned long long)R.OracleBudgetMisses,
               (unsigned long long)R.Divergences);
  std::fprintf(Out, "  rate      : %.0f packets/s (%.2fs wall)\n",
               R.packetsPerSec(), R.WallSeconds);
  if (R.First.Found) {
    std::fprintf(Out,
                 "  DIVERGENCE at packet %llu (seed %llu, class %s):\n"
                 "    %s\n    shrunk to %zu word(s) in %u runs:",
                 (unsigned long long)R.First.Index,
                 (unsigned long long)R.First.Seed,
                 packetClassName(R.First.Class), R.First.What.c_str(),
                 R.First.ShrunkWords.size(), R.First.ShrinkRuns);
    for (uint32_t W : R.First.ShrunkWords)
      std::fprintf(Out, " 0x%x", W);
    std::fprintf(Out, "\n");
  }
}
