//===- ChipSoak.cpp - Whole-chip soak runner and reporting ----------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "soak/ChipSoak.h"

#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cassert>
#include <csignal>

using namespace nova;
using namespace nova::soak;

ChipSoakReport soak::runChipSoak(const AppHarness &App,
                                 const ChipSoakOptions &Opts) {
  ChipSoakReport Rep;
  Rep.Base.App = App.name();
  Rep.Base.Seed = Opts.Base.Seed;
  Rep.Base.OracleEvery = Opts.Base.OracleEvery;
  Rep.Base.Exec = Opts.Chip.Exec == chip::ExecModel::Threaded
                      ? ExecMode::Threaded
                      : ExecMode::Interp;

  chip::ChipParams CP = Opts.Chip;
  // One watchdog for chip and oracle: the standalone re-run is then
  // instruction-identical, so even watchdog traps must agree.
  CP.Budget = Opts.Base.Budget;
  Rep.Params = CP;
  Rep.Setup = chip::validateChipSetup(CP, App.compiled().Alloc.Prog,
                                      App.baseSim().Limits);
  if (!Rep.Setup.ok())
    return Rep;

  SoakOptions SO = Opts.Base;
  SO.Lat = CP.latency();

  Timer Clock;
  std::vector<const alloc::AllocatedProgram *> Progs(
      CP.MP.MeCount, &App.compiled().Alloc.Prog);
  chip::Chip C(CP, Progs, App.baseSim());
  // Chip construction covers the one-time program translation in
  // threaded mode; report it like the standalone soak does.
  if (CP.Exec == chip::ExecModel::Threaded)
    Rep.Base.TranslateSeconds = Clock.seconds();

  // Checkpoint identity: the standalone meta plus the chip topology and
  // armed fault schedule, all of which change the event interleaving.
  const CheckpointOptions &CK = SO.Ckpt;
  ckpt::CheckpointMeta Meta = checkpointMeta(App, SO);
  Meta.Chip = true;
  Meta.MeCount = CP.MP.MeCount;
  Meta.ContextsPerMe = CP.MP.ContextsPerMe;
  Meta.RingDepth = CP.RingDepth;
  Meta.SlotStride = CP.SlotStride;
  Meta.Faults = CP.Faults;

  uint64_t Next = 0;
  const uint32_t PtrMask = App.pointerArgMask();
  PacketTemplateCache Tmpl;
  SoakPacket P; // reused staging packet; the chip gets moved-out buffers
  chip::Chip::Source Src = [&](chip::ChipPacket &Out) {
    if (Next == SO.Packets)
      return false;
    App.generateInto(Next, SO.Seed, SO.Mix, Tmpl, P);
    ++Rep.Base.ClassCounts[static_cast<unsigned>(P.Class)];
    Out = chip::ChipPacket();
    Out.Seq = Next++;
    Out.Words = std::move(P.Words);
    Out.Args = std::move(P.Args);
    Out.PtrArgMask = PtrMask;
    Out.PayloadBytes = P.PayloadBytes;
    Out.ClassTag = static_cast<uint8_t>(P.Class);
    Out.SeedTag = P.Seed;
    return true;
  };

  // Recovery-aware oracle policy: packets the fault model killed (typed
  // Lockup/Backpressure/DmaDrop retirements) never executed to
  // completion, so a standalone re-run cannot be compared against them.
  // The supervisor's own plan tells us which sampled packets carry a
  // deliberate sdram-bitflip: those are the negative control — the
  // cross-check MUST diverge, and the shrinker replays the flip.
  chip::Supervisor Plan(CP.Faults, CP.Sup);

  SoakPacket Q; // reused oracle-rerun packet across retirements
  chip::Chip::RetireFn Retire = [&](chip::RetiredPacket &&RP) {
    bool Reject = RP.Result.Ok && App.isAppReject(RP.Result.HaltValues);
    // The histogram gets residence time (dispatch -> in-order retire);
    // instruction counts stay the run's own.
    sim::RunResult Acct = RP.Result;
    Acct.Cycles = RP.RetireTime - RP.DispatchTime;
    Rep.Base.Stats.account(Acct, Reject, RP.Pkt.PayloadBytes);

    if (RP.Drop != chip::DropReason::None)
      return; // typed recovery drop: there is no execution to oracle

    bool WithOracle =
        SO.OracleEvery != 0 && RP.Pkt.Seq % SO.OracleEvery == 0;
    if (!WithOracle)
      return;
    ++Rep.Base.OracleChecks;

    // Standalone re-run of the exact rebased packet on fresh base
    // memory: three-way differential oracle plus the chip cross-check.
    Q.Class = static_cast<PacketClass>(RP.Pkt.ClassTag);
    Q.Index = RP.Pkt.Seq;
    // The per-packet seed rides along in the ChipPacket record, so the
    // reproducer needs no regeneration here.
    Q.Seed = RP.Pkt.SeedTag;
    Q.Words = std::move(RP.Pkt.Words);
    Q.Args = RP.RebasedArgs;
    Q.PayloadBytes = RP.Pkt.PayloadBytes;
    PacketOutcome O = runPacket(App, Q, SO, /*WithOracle=*/true);
    if (O.OracleBudgetMiss)
      ++Rep.Base.OracleBudgetMisses;

    std::string What;
    bool Mismatch = false;
    if (O.Diverged) {
      What = O.What;
    } else if (O.Alloc.Ok != RP.Result.Ok ||
               O.Alloc.Trap != RP.Result.Trap) {
      Mismatch = true;
      What = formatf(
          "chip outcome differs from standalone: chip %s(%s), "
          "standalone %s(%s)",
          RP.Result.Ok ? "ok" : "trap", sim::trapKindName(RP.Result.Trap),
          O.Alloc.Ok ? "ok" : "trap", sim::trapKindName(O.Alloc.Trap));
    } else if (O.Alloc.Ok && O.Alloc.HaltValues != RP.Result.HaltValues) {
      Mismatch = true;
      What = "chip halt values differ from standalone allocated run";
    }
    if (What.empty())
      return;

    ++Rep.Base.Divergences;
    if (Mismatch)
      ++Rep.ChipOutcomeMismatches;
    if (!Rep.Base.First.Found) {
      Rep.Base.First.Found = true;
      Rep.Base.First.Index = Q.Index;
      Rep.Base.First.Seed = Q.Seed;
      Rep.Base.First.Class = Q.Class;
      Rep.Base.First.What = What;
      Rep.Base.First.Words = Q.Words;
      Rep.Base.First.Args = Q.Args;
      if (O.Diverged && SO.Shrink) {
        // Shrinking targets the standalone differential.
        Rep.Base.First.ShrunkWords =
            shrinkDivergence(App, Q, SO, Rep.Base.First.ShrinkRuns);
      } else if (Mismatch && SO.Shrink &&
                 Plan.planPacket(RP.Pkt.Seq).SdramFlip) {
        // A chip-vs-standalone mismatch on a packet the fault schedule
        // deliberately corrupted: delta-debug the packet against a
        // predicate that replays the flip (flipped run vs clean run),
        // so the reproducer isolates the corruption-sensitive words.
        uint64_t Seq = RP.Pkt.Seq;
        SoakPacket Flip; // reused candidate staging
        auto FlipDiverges = [&](const SoakPacket &Cand) {
          if (Cand.Words.empty())
            return false;
          Flip = Cand;
          uint32_t NumWords = static_cast<uint32_t>(Flip.Words.size());
          uint32_t W = chip::Supervisor::flipWordIndex(Seq, NumWords);
          uint32_t B = chip::Supervisor::flipBit(Seq);
          Flip.Words[W] ^= 1u << B;
          PacketOutcome OF = runPacket(App, Flip, SO, /*WithOracle=*/false);
          PacketOutcome OC = runPacket(App, Cand, SO, /*WithOracle=*/false);
          return OF.Alloc.Ok != OC.Alloc.Ok ||
                 OF.Alloc.Trap != OC.Alloc.Trap ||
                 (OF.Alloc.Ok && OF.Alloc.HaltValues != OC.Alloc.HaltValues);
        };
        Rep.Base.First.ShrunkWords = shrinkDivergenceWith(
            Q, Rep.Base.First.ShrinkRuns, FlipDiverges);
      } else {
        // A pure chip mismatch with no known injected corruption keeps
        // the packet as-is.
        Rep.Base.First.ShrunkWords = Q.Words;
      }
    }
  };

  // Resume: restore the report fold, the ChipOutcomeMismatches counter,
  // the dispatch cursor, and the complete chip state into the freshly
  // constructed (identical-topology) chip.
  uint64_t StartRetired = 0;
  if (CK.Resume) {
    ckpt::LoadedCheckpoint LC;
    std::vector<std::string> Notes;
    Status S = ckpt::findLatestValid(CK.Dir, Meta, LC, &Notes);
    for (const std::string &N : Notes)
      std::fprintf(stderr, "novasoak: warning: skipping checkpoint: %s\n",
                   N.c_str());
    if (!S.ok()) {
      Rep.Base.CkptError = S;
      return Rep;
    }
    BinReader R = LC.stateReader();
    restoreSoakProgress(R, Rep.Base, Next);
    Rep.ChipOutcomeMismatches = R.u64();
    C.restoreState(R);
    if (R.failed() || R.remaining() != 0) {
      Rep.Base.CkptError = Status::error(
          StatusCode::CheckpointCorrupt, Phase::Driver,
          "checkpoint " + LC.Path + ": state section malformed");
      return Rep;
    }
    Rep.Base.ResumedFrom = LC.Path;
    StartRetired = LC.Meta.PacketsRetired;
    std::fprintf(stderr, "novasoak: resumed %s from %s (%llu retired)\n",
                 Rep.Base.App.c_str(), LC.Path.c_str(),
                 (unsigned long long)StartRetired);
  }

  uint64_t NextCkpt = CK.Every ? (StartRetired / CK.Every + 1) * CK.Every : 0;
  uint64_t NextProg =
      CK.ProgressEvery
          ? (StartRetired / CK.ProgressEvery + 1) * CK.ProgressEvery
          : 0;
  uint64_t LastCkpt = StartRetired;
  if (CK.Every || CK.ProgressEvery || CK.KillAfter || CK.StopAfter)
    C.setRetireHook([&](uint64_t Retired, uint64_t) {
      if (NextCkpt && Retired >= NextCkpt) {
        // The hook fires between events with the chip quiescent, so the
        // dispatch cursor, report fold, and chip image are coherent.
        BinWriter W;
        saveSoakProgress(W, Rep.Base, Next);
        W.u64(Rep.ChipOutcomeMismatches);
        C.saveState(W);
        Meta.PacketsRetired = Retired;
        if (Status S = ckpt::writeCheckpoint(CK.Dir, Meta, W.bytes());
            !S.ok())
          std::fprintf(stderr,
                       "novasoak: warning: checkpoint failed: %s\n",
                       S.message().c_str());
        else
          LastCkpt = Retired;
        NextCkpt = (Retired / CK.Every + 1) * CK.Every;
      }
      if (NextProg && Retired >= NextProg) {
        progressHeartbeat(Rep.Base.App, Retired, Clock.seconds(), LastCkpt);
        NextProg = (Retired / CK.ProgressEvery + 1) * CK.ProgressEvery;
      }
      if (CK.KillAfter && Retired >= CK.KillAfter)
        std::raise(SIGKILL);
      return CK.StopAfter != 0 && Retired >= CK.StopAfter;
    });

  Rep.Chip = C.run(Src, Retire);
  Rep.Base.WallSeconds = Clock.seconds();
  // A StopAfter crash simulation ended the run mid-stream: the report is
  // partial (Stopped) and the derived whole-run figures stay zero.
  if (C.stopped()) {
    Rep.Base.Stopped = true;
    return Rep;
  }

  if (Rep.Chip.FinalCycles) {
    double Seconds =
        static_cast<double>(Rep.Chip.FinalCycles) / CP.MP.ClockHz;
    Rep.GoodputMbps =
        static_cast<double>(Rep.Base.Stats.DeliveredPayloadBytes) * 8.0 /
        Seconds / 1e6;
  }
  uint64_t H = 0xcbf29ce484222325ull;
  for (const auto &[Addr, Val] : C.memory().Sdram) {
    H = chip::traceFold(H, Addr);
    H = chip::traceFold(H, Val);
  }
  Rep.ImageHash = H;
  // A drained event queue with work in flight is a scheduler bug; make
  // it impossible to miss.
  if (Rep.Chip.Deadlock)
    ++Rep.Base.Divergences;
  return Rep;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

std::string soak::chipReportJson(const ChipSoakReport &R) {
  if (!R.Setup.ok()) {
    return formatf("{\"app\":\"%s\",\"chip_setup_error\":\"%s\"}",
                   R.Base.App.c_str(), R.Setup.message().c_str());
  }
  std::string J = reportJson(R.Base);
  assert(!J.empty() && J.back() == '}');
  J.pop_back();
  const chip::ChipRunStats &C = R.Chip;
  J += ",\"chip\":{";
  J += formatf("\"me_count\":%u,\"contexts\":%u,\"ring_depth\":%u,",
               R.Params.MP.MeCount, R.Params.MP.ContextsPerMe,
               R.Params.RingDepth);
  J += formatf("\"final_cycles\":%llu,\"goodput_mbps\":%.3f,",
               (unsigned long long)C.FinalCycles, R.GoodputMbps);
  J += formatf("\"packets_dispatched\":%llu,\"packets_retired\":%llu,"
               "\"tail_packets\":%llu,",
               (unsigned long long)C.PacketsDispatched,
               (unsigned long long)C.PacketsRetired,
               (unsigned long long)C.TailPackets);
  J += "\"me_utilization\":[";
  for (unsigned M = 0; M != C.MeBusyCycles.size(); ++M)
    J += formatf("%s%.4f", M ? "," : "", C.utilization(M));
  J += "],\"me_busy_cycles\":[";
  for (unsigned M = 0; M != C.MeBusyCycles.size(); ++M)
    J += formatf("%s%llu", M ? "," : "",
                 (unsigned long long)C.MeBusyCycles[M]);
  J += "],\"input_ring_high_water\":[";
  for (unsigned M = 0; M != C.InputRings.size(); ++M)
    J += formatf("%s%u", M ? "," : "", C.InputRings[M].HighWater);
  J += formatf("],\"tx_ring_high_water\":%u,\"reorder_high_water\":%u,",
               C.TxRing.HighWater, C.ReorderHighWater);
  J += formatf("\"stall_cycles\":{\"sram\":%llu,\"sdram\":%llu,"
               "\"scratch\":%llu},",
               (unsigned long long)C.Sram.StallCycles,
               (unsigned long long)C.Sdram.StallCycles,
               (unsigned long long)C.Scratch.StallCycles);
  J += formatf("\"channel_transactions\":{\"sram\":%llu,\"sdram\":%llu,"
               "\"scratch\":%llu},",
               (unsigned long long)C.Sram.Transactions,
               (unsigned long long)C.Sdram.Transactions,
               (unsigned long long)C.Scratch.Transactions);
  J += formatf("\"rx_dma_transactions\":%llu,",
               (unsigned long long)C.RxDmaTransactions);
  J += formatf("\"exec_mode\":\"%s\",\"superblocks\":%llu,"
               "\"superblock_ops\":%llu,",
               C.Exec == chip::ExecModel::Threaded ? "threaded" : "interp",
               (unsigned long long)C.Superblocks,
               (unsigned long long)C.SuperblockOps);
  J += formatf("\"trace_hash\":\"%016llx\",\"image_hash\":\"%016llx\",",
               (unsigned long long)C.TraceHash,
               (unsigned long long)R.ImageHash);
  const chip::RecoveryStats &RS = C.Recovery;
  J += "\"recovery\":{";
  J += formatf("\"lockups_injected\":%llu,\"lockups_detected\":%llu,"
               "\"ctx_resets\":%llu,\"packet_requeues\":%llu,",
               (unsigned long long)RS.LockupsInjected,
               (unsigned long long)RS.LockupsDetected,
               (unsigned long long)RS.CtxResets,
               (unsigned long long)RS.PacketRequeues);
  J += formatf("\"packets_wedged\":%llu,\"packets_recovered\":%llu,"
               "\"lockup_drops\":%llu,\"max_backoff_cycles\":%llu,",
               (unsigned long long)RS.PacketsWedged,
               (unsigned long long)RS.PacketsRecovered,
               (unsigned long long)RS.LockupDrops,
               (unsigned long long)RS.MaxBackoffCycles);
  J += formatf("\"backpressure_drops\":%llu,",
               (unsigned long long)RS.BackpressureDrops);
  J += formatf("\"ring_stalls_injected\":%llu,\"ring_stall_cycles\":%llu,",
               (unsigned long long)RS.RingStallsInjected,
               (unsigned long long)RS.RingStallCycles);
  J += formatf("\"brownouts_injected\":%llu,\"brownout_cycles\":%llu,",
               (unsigned long long)RS.BrownoutsInjected,
               (unsigned long long)RS.BrownoutCycles);
  J += formatf("\"dma_faults_injected\":%llu,\"dma_retries\":%llu,"
               "\"dma_fault_packets\":%llu,\"dma_recovered_packets\":%llu,"
               "\"dma_drop_packets\":%llu,",
               (unsigned long long)RS.DmaFaultsInjected,
               (unsigned long long)RS.DmaRetries,
               (unsigned long long)RS.DmaFaultPackets,
               (unsigned long long)RS.DmaRecoveredPackets,
               (unsigned long long)RS.DmaDropPackets);
  J += formatf("\"sdram_bitflips_injected\":%llu,"
               "\"recovery_fold\":\"%016llx\",\"all_accounted\":%s},",
               (unsigned long long)RS.SdramBitFlipsInjected,
               (unsigned long long)RS.fold(),
               RS.allAccounted() ? "true" : "false");
  J += formatf("\"chip_outcome_mismatches\":%llu,\"deadlock\":%s}",
               (unsigned long long)R.ChipOutcomeMismatches,
               C.Deadlock ? "true" : "false");
  J += "}";
  return J;
}

void soak::printChipReport(const ChipSoakReport &R, std::FILE *Out) {
  if (!R.Setup.ok()) {
    std::fprintf(Out, "== %s: chip setup error: %s ==\n",
                 R.Base.App.c_str(), R.Setup.message().c_str());
    return;
  }
  printReport(R.Base, Out);
  const chip::ChipRunStats &C = R.Chip;
  std::fprintf(Out,
               "  chip      : me=%u ctx=%u ring=%u exec=%s  final=%llu "
               "cycles  goodput=%.1f Mbps%s\n",
               R.Params.MP.MeCount, R.Params.MP.ContextsPerMe,
               R.Params.RingDepth,
               C.Exec == chip::ExecModel::Threaded ? "threaded" : "interp",
               (unsigned long long)C.FinalCycles, R.GoodputMbps,
               C.Deadlock ? "  DEADLOCK" : "");
  std::fprintf(Out,
               "  stalls    : sram=%llu sdram=%llu scratch=%llu cycles "
               "(txns %llu/%llu/%llu)\n",
               (unsigned long long)C.Sram.StallCycles,
               (unsigned long long)C.Sdram.StallCycles,
               (unsigned long long)C.Scratch.StallCycles,
               (unsigned long long)C.Sram.Transactions,
               (unsigned long long)C.Sdram.Transactions,
               (unsigned long long)C.Scratch.Transactions);
  std::fprintf(Out, "  util      :");
  for (unsigned M = 0; M != C.MeBusyCycles.size(); ++M)
    std::fprintf(Out, " me%u=%.2f", M, C.utilization(M));
  std::fprintf(Out, "\n  rings     : in-hw=[");
  for (unsigned M = 0; M != C.InputRings.size(); ++M)
    std::fprintf(Out, "%s%u", M ? "," : "", C.InputRings[M].HighWater);
  std::fprintf(Out, "] tx-hw=%u reorder-hw=%u tail=%llu\n",
               C.TxRing.HighWater, C.ReorderHighWater,
               (unsigned long long)C.TailPackets);
  const chip::RecoveryStats &RS = C.Recovery;
  if (RS.anyInjected()) {
    std::fprintf(Out,
                 "  recovery  : lockups=%llu detected=%llu recovered=%llu "
                 "lockup-drops=%llu bp-drops=%llu\n",
                 (unsigned long long)RS.LockupsInjected,
                 (unsigned long long)RS.LockupsDetected,
                 (unsigned long long)RS.PacketsRecovered,
                 (unsigned long long)RS.LockupDrops,
                 (unsigned long long)RS.BackpressureDrops);
    std::fprintf(Out,
                 "  faults    : ring-stalls=%llu brownouts=%llu "
                 "dma-faults=%llu (retries=%llu drops=%llu) bitflips=%llu "
                 "accounted=%s\n",
                 (unsigned long long)RS.RingStallsInjected,
                 (unsigned long long)RS.BrownoutsInjected,
                 (unsigned long long)RS.DmaFaultsInjected,
                 (unsigned long long)RS.DmaRetries,
                 (unsigned long long)RS.DmaDropPackets,
                 (unsigned long long)RS.SdramBitFlipsInjected,
                 RS.allAccounted() ? "yes" : "NO");
  }
  if (R.ChipOutcomeMismatches)
    std::fprintf(Out, "  CHIP MISMATCHES: %llu (chip vs standalone)\n",
                 (unsigned long long)R.ChipOutcomeMismatches);
}
