//===- PacketGen.cpp - Deterministic adversarial packet generation --------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Packet I of a stream with seed S is a pure function of splitmix(S, I):
// the generator draws everything (class, lengths, fields, corruption
// site) from one Rng seeded with the per-packet seed, so a reported
// (seed, index) pair reproduces the exact packet stand-alone.
//
// Class semantics per application:
//
//           valid        truncated     oversized          corrupt
//   aes     16..256B     header cut    len >= 4800B       ver/align/len=0/bit
//   kasumi  64-bit blk   0-1 words     out at SDRAM edge  zero block (Empty)
//   nat     v6 hdr+pay   header cut    payload_length>=2K ver/hop/addr bit
//
// Fuzz draws random word soup and, one packet in eight, aims the input
// or output pointer at the SDRAM limit so in-bounds code paths walk off
// the end — the bounds-check traps, not UB.
//
//===----------------------------------------------------------------------===//

#include "soak/Soak.h"

#include "support/Rng.h"

using namespace nova;
using namespace nova::soak;

namespace {

/// Per-packet seed: one splitmix64 step over the stream seed and index,
/// decorrelating consecutive packets.
uint64_t packetSeed(uint64_t StreamSeed, uint64_t Index) {
  uint64_t Z = StreamSeed + 0x9e3779b97f4a7c15ull * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

PacketClass drawClass(Rng &R, const ClassMix &Mix) {
  unsigned Total = Mix.total();
  if (Total == 0)
    return PacketClass::Valid;
  uint64_t D = R.below(Total);
  if (D < Mix.Valid)
    return PacketClass::Valid;
  D -= Mix.Valid;
  if (D < Mix.Truncated)
    return PacketClass::Truncated;
  D -= Mix.Truncated;
  if (D < Mix.Oversized)
    return PacketClass::Oversized;
  D -= Mix.Oversized;
  if (D < Mix.Corrupt)
    return PacketClass::Corrupt;
  return PacketClass::Fuzz;
}

void fillRandom(Rng &R, std::vector<uint32_t> &W, unsigned N) {
  W.resize(N);
  for (unsigned I = 0; I != N; ++I)
    W[I] = static_cast<uint32_t>(R.next());
}

/// PacketTemplateCache::PrimedFor tags, one per generator.
enum { TmplAes = 0, TmplKasumi = 1, TmplNat = 2 };

/// Installs the app's constant argument skeleton in \p Cache (once per
/// (app, stream)) and copies it into \p P, reusing P's buffer. Varying
/// fields are patched by the caller.
void stampArgs(PacketTemplateCache &Cache, int Tag,
               std::initializer_list<uint32_t> Skeleton, SoakPacket &P) {
  if (Cache.PrimedFor != Tag) {
    Cache.Args = Skeleton;
    Cache.PrimedFor = Tag;
  }
  P.Args = Cache.Args;
}

/// AES calling convention: {pkt, outp, len}; packet = 6 header words
/// (IPv4-ish, version nibble must be 4) followed by len bytes of payload.
void genAes(Rng &R, PacketClass C, const sim::MemLimits &Lim,
            PacketTemplateCache &Cache, SoakPacket &P) {
  constexpr uint32_t In = 0x100, Out = 0x400;
  uint32_t Len = 16 * static_cast<uint32_t>(R.range(1, 16));
  auto header = [&](std::vector<uint32_t> &W) {
    W.resize(6);
    W[0] = 0x45000000u | ((20 + Len) & 0xFFFF);
    for (unsigned I = 1; I != 6; ++I)
      W[I] = static_cast<uint32_t>(R.next());
  };
  stampArgs(Cache, TmplAes, {In, Out, 0}, P);
  P.Args[2] = Len;
  P.PayloadBytes = Len;
  switch (C) {
  case PacketClass::Valid: {
    header(P.Words);
    for (unsigned I = 0; I != Len / 4; ++I)
      P.Words.push_back(static_cast<uint32_t>(R.next()));
    break;
  }
  case PacketClass::Truncated: {
    // Header cut mid-way: the missing words read as zero, so the version
    // nibble is 0 for empty stores and the app rejects.
    std::vector<uint32_t> &Full = Cache.Scratch;
    header(Full);
    Full.resize(R.below(6));
    P.Words = Full;
    P.PayloadBytes = static_cast<unsigned>(P.Words.size() * 4);
    break;
  }
  case PacketClass::Oversized: {
    // A length field far beyond the stored payload: hundreds to
    // thousands of blocks, which exhausts the instruction budget.
    Len = 16 * static_cast<uint32_t>(R.range(300, 16384));
    P.Args[2] = Len;
    P.PayloadBytes = Len;
    header(P.Words);
    P.Words[0] = 0x45000000u | ((20 + Len) & 0xFFFF);
    break;
  }
  case PacketClass::Corrupt: {
    header(P.Words);
    for (unsigned I = 0; I != Len / 4; ++I)
      P.Words.push_back(static_cast<uint32_t>(R.next()));
    switch (R.below(4)) {
    case 0: // wrong IP version -> raise Bad(3)
      P.Words[0] = (P.Words[0] & 0x0FFFFFFF) |
                   (static_cast<uint32_t>(R.range(0, 3)) << 28);
      break;
    case 1: // misaligned length -> raise Bad(1)
      P.Args[2] = Len + static_cast<uint32_t>(R.range(1, 15));
      break;
    case 2: // zero length -> raise Bad(2)
      P.Args[2] = 0;
      break;
    default: // payload bit flip: delivered, ciphertext just differs
      if (P.Words.size() > 6)
        P.Words[6 + R.below(P.Words.size() - 6)] ^=
            1u << R.below(32);
      break;
    }
    break;
  }
  case PacketClass::Fuzz: {
    fillRandom(R, P.Words, static_cast<unsigned>(R.below(41)));
    P.Args[2] = static_cast<uint32_t>(R.below(513));
    if (R.chance(1, 8)) // input pointer at the SDRAM edge
      P.Args[0] = Lim.SdramWords - static_cast<uint32_t>(R.below(8));
    if (R.chance(1, 8)) // output pointer at the SDRAM edge
      P.Args[1] = Lim.SdramWords - static_cast<uint32_t>(R.below(8));
    P.PayloadBytes = static_cast<unsigned>(P.Words.size() * 4);
    break;
  }
  }
}

/// Kasumi calling convention: {pkt, outp}; packet = one 64-bit block.
void genKasumi(Rng &R, PacketClass C, const sim::MemLimits &Lim,
               PacketTemplateCache &Cache, SoakPacket &P) {
  constexpr uint32_t In = 0x300, Out = 0x500;
  stampArgs(Cache, TmplKasumi, {In, Out}, P);
  P.PayloadBytes = 8;
  uint32_t Hi = static_cast<uint32_t>(R.next());
  uint32_t Lo = static_cast<uint32_t>(R.next());
  if (Hi == 0 && Lo == 0)
    Hi = 1; // all-zero blocks belong to the Corrupt class
  switch (C) {
  case PacketClass::Valid:
    P.Words.assign({Hi, Lo});
    break;
  case PacketClass::Truncated:
    // 0 or 1 stored words; the absent half reads as zero.
    P.Words.assign(R.below(2), Hi);
    P.PayloadBytes = static_cast<unsigned>(P.Words.size() * 4);
    break;
  case PacketClass::Oversized:
    // The block is fine but the output buffer sits on the SDRAM edge:
    // the second output word lands out of range in every mode.
    P.Words.assign({Hi, Lo});
    P.Args[1] = Lim.SdramWords - 1;
    break;
  case PacketClass::Corrupt:
    P.Words.assign({0u, 0u}); // raise Empty -> 0xFFFFFFFF
    break;
  case PacketClass::Fuzz:
    fillRandom(R, P.Words, static_cast<unsigned>(R.below(5)));
    if (R.chance(1, 8))
      P.Args[0] = Lim.SdramWords - static_cast<uint32_t>(R.below(4));
    P.PayloadBytes = static_cast<unsigned>(P.Words.size() * 4);
    break;
  }
}

/// NAT calling convention: {pkt, outp}; packet = 10-word IPv6 header,
/// then the payload the copy loop shifts (c0, c1, then word pairs).
void genNat(Rng &R, PacketClass C, const sim::MemLimits &Lim,
            PacketTemplateCache &Cache, SoakPacket &P) {
  constexpr uint32_t In = 0x100, Out = 0x800;
  stampArgs(Cache, TmplNat, {In, Out}, P);
  uint32_t PayLen = 8 * static_cast<uint32_t>(R.below(33)); // 0..256 bytes
  auto header = [&](std::vector<uint32_t> &W, uint32_t Pl) {
    W.resize(10);
    W[0] = (6u << 28) | (static_cast<uint32_t>(R.below(16)) << 24) |
           static_cast<uint32_t>(R.below(1u << 24));
    uint32_t Nh = R.chance(1, 2) ? 6 : 17; // TCP or UDP
    uint32_t Hop = static_cast<uint32_t>(R.range(1, 64));
    W[1] = (Pl << 16) | (Nh << 8) | Hop;
    for (unsigned I = 2; I != 10; ++I)
      W[I] = static_cast<uint32_t>(R.next());
  };
  P.PayloadBytes = PayLen + 40;
  switch (C) {
  case PacketClass::Valid: {
    header(P.Words, PayLen);
    // c0, c1 and the pairs the copy loop reads.
    uint32_t Pairs = (PayLen + 11) >> 3;
    for (unsigned I = 0; I != 2 + 2 * Pairs; ++I)
      P.Words.push_back(static_cast<uint32_t>(R.next()));
    break;
  }
  case PacketClass::Truncated: {
    std::vector<uint32_t> &Full = Cache.Scratch;
    header(Full, PayLen);
    Full.resize(R.below(10));
    P.Words = Full;
    P.PayloadBytes = static_cast<unsigned>(P.Words.size() * 4);
    break;
  }
  case PacketClass::Oversized: {
    // payload_length in the kilobytes: the copy loop runs hundreds to
    // thousands of pairs over absent (zero) payload words and the big
    // ones trip the watchdog.
    PayLen = static_cast<uint32_t>(R.range(2048, 65535));
    header(P.Words, PayLen);
    P.PayloadBytes = PayLen + 40;
    break;
  }
  case PacketClass::Corrupt: {
    header(P.Words, PayLen);
    uint32_t Pairs = (PayLen + 11) >> 3;
    for (unsigned I = 0; I != 2 + 2 * Pairs; ++I)
      P.Words.push_back(static_cast<uint32_t>(R.next()));
    switch (R.below(3)) {
    case 0: // wrong version -> raise BadVersion
      P.Words[0] = (P.Words[0] & 0x0FFFFFFF) |
                   (static_cast<uint32_t>(R.range(0, 5)) << 28);
      break;
    case 1: // hop limit 0 -> raise Expired
      P.Words[1] &= ~0xFFu;
      break;
    default: // address bit flip: delivered, header just differs
      P.Words[2 + R.below(8)] ^= 1u << R.below(32);
      break;
    }
    break;
  }
  case PacketClass::Fuzz: {
    fillRandom(R, P.Words, static_cast<unsigned>(R.below(25)));
    if (R.chance(1, 8))
      P.Args[0] = Lim.SdramWords - static_cast<uint32_t>(R.below(12));
    if (R.chance(1, 8))
      P.Args[1] = Lim.SdramWords - static_cast<uint32_t>(R.below(12));
    P.PayloadBytes = static_cast<unsigned>(P.Words.size() * 4);
    break;
  }
  }
}

} // namespace

const char *soak::packetClassName(PacketClass C) {
  switch (C) {
  case PacketClass::Valid:     return "valid";
  case PacketClass::Truncated: return "truncated";
  case PacketClass::Oversized: return "oversized";
  case PacketClass::Corrupt:   return "corrupt";
  case PacketClass::Fuzz:      return "fuzz";
  }
  return "?";
}

SoakPacket AppHarness::generate(uint64_t Index, uint64_t StreamSeed,
                                const ClassMix &Mix) const {
  SoakPacket P;
  PacketTemplateCache Cache;
  generateInto(Index, StreamSeed, Mix, Cache, P);
  return P;
}

void AppHarness::generateInto(uint64_t Index, uint64_t StreamSeed,
                              const ClassMix &Mix,
                              PacketTemplateCache &Cache,
                              SoakPacket &P) const {
  // Every generator path fully rewrites Words, Args, and PayloadBytes,
  // so a reused P carries no state between packets.
  P.Index = Index;
  P.Seed = packetSeed(StreamSeed, Index);
  Rng R(P.Seed);
  P.Class = drawClass(R, Mix);
  switch (Id) {
  case AppId::Aes:
    genAes(R, P.Class, BaseSim.Limits, Cache, P);
    break;
  case AppId::Kasumi:
    genKasumi(R, P.Class, BaseSim.Limits, Cache, P);
    break;
  case AppId::Nat:
    genNat(R, P.Class, BaseSim.Limits, Cache, P);
    break;
  }
}

void AppHarness::generateBatch(uint64_t FirstIndex, uint64_t Count,
                               uint64_t StreamSeed, const ClassMix &Mix,
                               PacketTemplateCache &Cache,
                               std::vector<SoakPacket> &Out) const {
  if (Out.size() < Count)
    Out.resize(Count);
  for (uint64_t K = 0; K != Count; ++K)
    generateInto(FirstIndex + K, StreamSeed, Mix, Cache, Out[K]);
}
