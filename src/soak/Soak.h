//===- Soak.h - Adversarial packet soak harness -----------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streams adversarial traffic through a compiled benchmark application
/// and cross-checks every packet against the compiler's semantic oracles.
/// Each application is compiled once (the expensive ILP allocation), then
/// millions of packets flow through sim::runAllocated under a drop
/// policy: a trap never aborts the stream, it becomes a typed drop in
/// sim::RunStats.
///
/// Traffic classes (PacketClass) cover the hostile-input space: valid
/// packets, truncated headers, oversized length fields (driving the
/// watchdog), corrupted fields (driving the apps' raise/handle paths),
/// and pure fuzz (including near-limit addresses that trip the
/// bounds-checked memory).
///
/// Determinism: packet I of a stream with seed S is generated from the
/// seed splitmix(S, I) alone, so any packet reproduces stand-alone from
/// its (seed, index) pair, and the fault injector is re-armed before
/// every run so @after/xTimes windows count per packet.
///
/// The differential oracle runs each delivered packet through three
/// independent semantics — allocated (physical banks + cycle model),
/// functional (virtual temporaries), and the CPS reference evaluator —
/// and compares halt values and the final SDRAM images word-for-word.
/// Trapped packets are cross-checked allocated-vs-functional for an
/// identical trap kind (watchdog excluded: instruction counts are
/// mode-specific by design; the CPS evaluator is excluded because it
/// deliberately has no bounds model). A divergence is shrunk to a
/// minimal reproducer by delta-debugging the packet words.
///
//===----------------------------------------------------------------------===//

#ifndef SOAK_SOAK_H
#define SOAK_SOAK_H

#include "checkpoint/Checkpoint.h"
#include "cps/Eval.h"
#include "driver/Compiler.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace nova {
namespace soak {

/// Traffic class of a generated packet.
enum class PacketClass : uint8_t {
  Valid,     ///< well-formed packet the app should deliver
  Truncated, ///< header cut short; absent words read as zero
  Oversized, ///< length field beyond any sane buffer (watchdog fodder)
  Corrupt,   ///< one field corrupted (version, alignment, hop limit, ...)
  Fuzz       ///< random words and occasionally near-limit addresses
};
inline constexpr unsigned NumPacketClasses = 5;
const char *packetClassName(PacketClass C);

/// Relative weights of the traffic classes (need not sum to 100).
struct ClassMix {
  unsigned Valid = 55;
  unsigned Truncated = 15;
  unsigned Oversized = 10;
  unsigned Corrupt = 10;
  unsigned Fuzz = 10;

  unsigned total() const {
    return Valid + Truncated + Oversized + Corrupt + Fuzz;
  }
};

/// One generated packet: the words to store in SDRAM at Args[0] plus the
/// entry arguments. Fully determined by (stream seed, Index).
struct SoakPacket {
  PacketClass Class = PacketClass::Valid;
  uint64_t Index = 0;
  uint64_t Seed = 0; ///< per-packet seed (splitmix of stream seed + index)
  std::vector<uint32_t> Words; ///< stored at Args[0] in SDRAM
  std::vector<uint32_t> Args;  ///< entry arguments (app calling convention)
  unsigned PayloadBytes = 0;   ///< accounted on delivery
};

/// Reused state for the batched generator: the per-app calling-convention
/// skeleton (constant pointer arguments, built once per (app, stream) and
/// patched per packet) plus a staging buffer for the truncated classes'
/// full-header temporary. With a cache, generateInto stops allocating
/// once the stream's high-water packet shape has been seen — the ~4 us
/// per-packet generation cost is almost entirely vector churn.
struct PacketTemplateCache {
  std::vector<uint32_t> Args;    ///< app skeleton; varying fields patched
  std::vector<uint32_t> Scratch; ///< truncated-class full-header staging
  int PrimedFor = -1;            ///< generator tag Args was built for
};

/// How the soak stream executes allocated code.
enum class ExecMode : uint8_t {
  Interp,  ///< sim::runAllocated per packet (the reference)
  Threaded ///< fastpath::Engine batches with a sampled interpreter oracle
};
const char *execModeName(ExecMode M);

/// Checkpoint / crash-recovery knobs (novasoak's --checkpoint-every,
/// --checkpoint-dir, --resume, --progress, --kill-after). A soak run
/// with Every > 0 snapshots its complete resumable state every N
/// retired packets; Resume continues from the newest valid snapshot and
/// must reproduce the uninterrupted run's final report byte-for-byte.
struct CheckpointOptions {
  uint64_t Every = 0;   ///< snapshot every N retired packets (0 = off)
  std::string Dir;      ///< snapshot directory (required when active)
  bool Resume = false;  ///< resume from the newest valid snapshot in Dir
  uint64_t ProgressEvery = 0; ///< stderr heartbeat every N retired (0 = off)
  /// Crash harness: raise(SIGKILL) as soon as N packets have retired —
  /// a real mid-run kill for scripts/novacrash.sh (0 = off).
  uint64_t KillAfter = 0;
  /// In-process crash simulation for unit tests: stop the run cleanly
  /// (state coherent, report marked Stopped) once N packets retired.
  uint64_t StopAfter = 0;

  bool active() const { return Every != 0 || Resume; }
};

struct SoakOptions {
  uint64_t Packets = 10'000;
  uint64_t Seed = 1;
  ClassMix Mix;
  /// Threaded mode translates the program once and runs batches on the
  /// fast path; every OracleEvery'th packet is re-run on the interpreter
  /// (which must match the fast path bit-for-bit) plus the functional
  /// and CPS oracles.
  ExecMode Exec = ExecMode::Interp;
  /// Per-packet instruction watchdog for the allocated run; the
  /// functional oracle gets 4x and the CPS evaluator 64x (steps per
  /// machine instruction are not one-to-one).
  uint64_t Budget = 50'000;
  /// Run the differential oracle on every Nth packet (1 = every packet,
  /// 0 = never).
  uint64_t OracleEvery = 1;
  /// Delta-debug the first diverging packet to a minimal reproducer.
  bool Shrink = true;
  /// Stop the stream at the first divergence.
  bool FailFast = false;
  sim::LatencyModel Lat;
  CheckpointOptions Ckpt;
};

/// A reported oracle divergence with its reproducer.
struct Divergence {
  bool Found = false;
  uint64_t Index = 0;
  uint64_t Seed = 0;
  PacketClass Class = PacketClass::Valid;
  std::string What; ///< first mismatch, human-readable
  std::vector<uint32_t> Words;
  std::vector<uint32_t> Args;
  /// Minimal diverging packet found by the shrinker (equals Words when
  /// shrinking is off or nothing could be removed).
  std::vector<uint32_t> ShrunkWords;
  unsigned ShrinkRuns = 0; ///< candidate executions the shrinker spent
};

/// Everything one soak run produced.
struct SoakReport {
  std::string App;
  uint64_t Seed = 0;
  ExecMode Exec = ExecMode::Interp;
  uint64_t OracleEvery = 1; ///< sampling rate the run used (0 = never)
  /// One-time cost of translating the program for the fast path
  /// (threaded mode only).
  double TranslateSeconds = 0;
  sim::RunStats Stats;
  uint64_t ClassCounts[NumPacketClasses] = {};
  uint64_t OracleChecks = 0;
  /// Oracle runs skipped mid-check because the *oracle* side ran out of
  /// budget while the allocated run completed (not a divergence).
  uint64_t OracleBudgetMisses = 0;
  uint64_t Divergences = 0;
  Divergence First;
  double WallSeconds = 0;
  /// Path of the snapshot this run resumed from (empty for a fresh
  /// start). Surfaced on stderr and in nightly failure records, never
  /// in the JSON report — a resumed run's report must be byte-identical
  /// to an uninterrupted one.
  std::string ResumedFrom;
  /// True when CheckpointOptions::StopAfter ended the run early (crash
  /// simulation); the report is partial and must not be compared.
  bool Stopped = false;
  /// Hard checkpoint/resume failure (corrupt-only directory, metadata
  /// mismatch): nothing ran; novasoak maps this to exit code 5.
  Status CkptError;

  double packetsPerSec() const {
    return WallSeconds > 0 ? double(Stats.Packets) / WallSeconds : 0;
  }
};

/// A benchmark application compiled once and ready to run packets: the
/// compile artifacts plus pristine base memory images with the app's
/// tables loaded (each packet run copies the base, never mutates it).
class AppHarness {
public:
  /// Compiles \p Name ("aes", "kasumi", or "nat"). Returns nullptr with
  /// \p Error set on unknown names or compile/allocation failure.
  static std::unique_ptr<AppHarness>
  create(const std::string &Name, std::string &Error,
         const driver::CompileOptions &Opts = defaultCompileOptions());

  /// Compile options tuned for soaking: accept the incumbent ladder rung
  /// rather than burning the full ILP time budget per app.
  static driver::CompileOptions defaultCompileOptions();

  const std::string &name() const { return Name; }
  const driver::CompileResult &compiled() const { return *App; }
  const sim::Memory &baseSim() const { return BaseSim; }
  const cps::EvalMemory &baseEval() const { return BaseEval; }

  /// Deterministically generates packet \p Index of the stream seeded
  /// \p StreamSeed.
  SoakPacket generate(uint64_t Index, uint64_t StreamSeed,
                      const ClassMix &Mix) const;

  /// Byte-identical to generate(), but writes into \p P and reuses
  /// \p Cache across calls, so the steady state allocates nothing.
  void generateInto(uint64_t Index, uint64_t StreamSeed, const ClassMix &Mix,
                    PacketTemplateCache &Cache, SoakPacket &P) const;

  /// Fills Out[0..Count) with packets FirstIndex..FirstIndex+Count-1 of
  /// the stream, reusing Out's slots (grown when needed, never shrunk —
  /// a short final batch leaves stale trailing slots the caller must not
  /// read past Count).
  void generateBatch(uint64_t FirstIndex, uint64_t Count,
                     uint64_t StreamSeed, const ClassMix &Mix,
                     PacketTemplateCache &Cache,
                     std::vector<SoakPacket> &Out) const;

  /// True when a completed run's halt values are the app's own error
  /// result (the 0xFFFFxxxx raise/handle codes).
  bool isAppReject(const std::vector<uint32_t> &Halt) const;

  /// Bit i set => entry argument i is an SDRAM pointer. The chip's RX
  /// scheduler rebases these into per-packet slots (all three benchmark
  /// apps take {in, out, ...} with any further args non-pointers).
  uint32_t pointerArgMask() const { return 0b11; }

private:
  enum class AppId { Aes, Kasumi, Nat };
  AppHarness() = default;

  std::string Name;
  AppId Id = AppId::Aes;
  std::unique_ptr<driver::CompileResult> App;
  sim::Memory BaseSim;
  cps::EvalMemory BaseEval;
};

/// Outcome of running one packet (exposed for tests; runSoak folds these
/// into the report).
struct PacketOutcome {
  sim::RunResult Alloc;
  /// Final memory state of the allocated run — all three spaces. The
  /// threaded driver compares these against BatchMemory::image to hold
  /// the fast path to bit-identical memory effects.
  sim::Memory AllocMem;
  bool AppReject = false;
  bool Diverged = false;
  bool OracleBudgetMiss = false;
  std::string What; ///< divergence description when Diverged
};

/// Runs one packet through the allocated simulator and, when
/// \p WithOracle, through the functional simulator and CPS evaluator.
/// Re-arms the fault injector first so injection windows are per-packet.
PacketOutcome runPacket(const AppHarness &App, const SoakPacket &P,
                        const SoakOptions &Opts, bool WithOracle);

/// Delta-debugs \p P.Words to a minimal subsequence that still diverges
/// under runPacket. Returns the shrunk words; \p Runs counts candidate
/// executions (bounded internally).
std::vector<uint32_t> shrinkDivergence(const AppHarness &App,
                                       const SoakPacket &P,
                                       const SoakOptions &Opts,
                                       unsigned &Runs);

/// Generalized shrinker: minimizes \p P.Words against an arbitrary
/// "still diverges" predicate (the threaded driver passes one that
/// re-runs the packet on both the fast path and the interpreter).
std::vector<uint32_t>
shrinkDivergenceWith(const SoakPacket &P, unsigned &Runs,
                     const std::function<bool(const SoakPacket &)> &Diverges);

/// Streams Opts.Packets packets through \p App under the drop policy.
SoakReport runSoak(const AppHarness &App, const SoakOptions &Opts);

/// Checkpoint identity record for a standalone (non-chip) soak of
/// \p App under \p Opts (chip topology fields stay zero).
ckpt::CheckpointMeta checkpointMeta(const AppHarness &App,
                                    const SoakOptions &Opts);

/// Serializes the resumable progress of a soak stream: the generator
/// cursor (next packet index) plus every report accumulator — the stats
/// fold with its histogram, class counts, oracle counters, and the
/// first-divergence record. Restoring into a fresh report and resuming
/// the stream at the cursor reproduces the uninterrupted run's final
/// report exactly.
void saveSoakProgress(BinWriter &W, const SoakReport &R, uint64_t Cursor);
void restoreSoakProgress(BinReader &R, SoakReport &Rep, uint64_t &Cursor);

/// Stderr heartbeat line for --progress: packets retired, rate, and the
/// last durable checkpoint.
void progressHeartbeat(const std::string &App, uint64_t Retired,
                       double WallSeconds, uint64_t LastCheckpoint);

/// One JSON object per report (stable keys; consumed by scripts/ and
/// BENCH_soak.json).
std::string reportJson(const SoakReport &R);

/// Human-readable summary table.
void printReport(const SoakReport &R, std::FILE *Out);

} // namespace soak
} // namespace nova

#endif // SOAK_SOAK_H
