//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Parser.h"

#include "support/StringUtils.h"

using namespace nova;

Parser::Parser(const SourceManager &SM, uint32_t BufferId, AstArena &Arena,
               DiagnosticEngine &Diags)
    : SM(SM), Arena(Arena), Diags(Diags) {
  Lexer Lex(SM, BufferId, Diags);
  Tokens = Lex.lexAll();
}

const Token &Parser::peek(unsigned Ahead) const {
  unsigned I = Cursor + Ahead;
  return I < Tokens.size() ? Tokens[I] : Tokens.back();
}

const Token &Parser::advance() {
  const Token &T = peek();
  if (Cursor + 1 < Tokens.size())
    ++Cursor;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(peek().Loc, formatf("expected %s %s, found %s",
                                  tokenKindName(Kind), Context,
                                  tokenKindName(peek().Kind)));
  return false;
}

void Parser::synchronizeDecl() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwFun) &&
         !check(TokenKind::KwLayout))
    advance();
}

void Parser::synchronizeStmt() {
  while (!check(TokenKind::Eof) && !check(TokenKind::Semi) &&
         !check(TokenKind::RBrace))
    advance();
  match(TokenKind::Semi);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Program Parser::parseProgram() {
  Program P;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwLayout)) {
      parseLayoutDecl(P);
    } else if (check(TokenKind::KwFun)) {
      parseFunDecl(P);
    } else {
      Diags.error(peek().Loc,
                  formatf("expected 'layout' or 'fun' at top level, found %s",
                          tokenKindName(peek().Kind)));
      synchronizeDecl();
    }
  }
  return P;
}

void Parser::parseLayoutDecl(Program &P) {
  LayoutDecl D;
  D.Loc = peek().Loc;
  advance(); // layout
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected layout name");
    synchronizeDecl();
    return;
  }
  D.Name = std::string(advance().Text);
  if (!expect(TokenKind::Assign, "after layout name")) {
    synchronizeDecl();
    return;
  }
  D.Value = parseLayoutExpr();
  expect(TokenKind::Semi, "after layout definition");
  if (D.Value)
    P.LayoutDecls.push_back(std::move(D));
}

void Parser::parseFunDecl(Program &P) {
  FunDecl F;
  F.Loc = peek().Loc;
  advance(); // fun
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected function name");
    synchronizeDecl();
    return;
  }
  F.Name = std::string(advance().Text);

  TokenKind Close;
  if (match(TokenKind::LParen)) {
    Close = TokenKind::RParen;
  } else if (match(TokenKind::LBracket)) {
    Close = TokenKind::RBracket;
    F.RecordParams = true;
  } else {
    Diags.error(peek().Loc, "expected parameter list");
    synchronizeDecl();
    return;
  }
  if (!check(Close)) {
    do {
      FunParam Param;
      Param.Loc = peek().Loc;
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected parameter name");
        synchronizeDecl();
        return;
      }
      Param.Name = std::string(advance().Text);
      if (!expect(TokenKind::Colon, "before parameter type")) {
        synchronizeDecl();
        return;
      }
      Param.Type = parseTypeExpr();
      if (!Param.Type) {
        synchronizeDecl();
        return;
      }
      F.Params.push_back(std::move(Param));
    } while (match(TokenKind::Comma));
  }
  if (!expect(Close, "after parameters")) {
    synchronizeDecl();
    return;
  }
  if (match(TokenKind::ThinArrow) || match(TokenKind::Colon))
    F.Result = parseTypeExpr();
  if (!check(TokenKind::LBrace)) {
    Diags.error(peek().Loc, "expected function body");
    synchronizeDecl();
    return;
  }
  F.Body = parseBlock();
  if (F.Body)
    P.FunDecls.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// Layout expressions
//===----------------------------------------------------------------------===//

const LayoutExpr *Parser::parseLayoutExpr() {
  const LayoutExpr *L = parseLayoutPrimary();
  while (L && check(TokenKind::HashHash)) {
    SourceLoc Loc = advance().Loc;
    const LayoutExpr *R = parseLayoutPrimary();
    if (!R)
      return nullptr;
    LayoutExpr *C = Arena.newLayout(LayoutExprKind::Concat, Loc);
    C->Lhs = L;
    C->Rhs = R;
    L = C;
  }
  return L;
}

bool Parser::parseLayoutField(LayoutFieldAst &Out) {
  Out.Loc = peek().Loc;
  if (!check(TokenKind::Identifier) && !check(TokenKind::KwOverlay)) {
    Diags.error(peek().Loc, "expected field name in layout");
    return false;
  }
  if (check(TokenKind::Identifier)) {
    Out.Name = std::string(advance().Text);
    if (!expect(TokenKind::Colon, "after layout field name"))
      return false;
  }
  // `name : 16` | `name : <layout-expr>` | `name : overlay {...}` and the
  // unnamed-overlay shorthand `overlay {...}` handled by falling through.
  if (check(TokenKind::Integer)) {
    Out.Width = static_cast<unsigned>(advance().IntValue);
    return true;
  }
  Out.Sub = parseLayoutExpr();
  return Out.Sub != nullptr;
}

const LayoutExpr *Parser::parseLayoutPrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::Identifier)) {
    LayoutExpr *L = Arena.newLayout(LayoutExprKind::Name, Loc);
    L->Name = std::string(advance().Text);
    return L;
  }
  if (match(TokenKind::KwOverlay)) {
    if (!expect(TokenKind::LBrace, "after 'overlay'"))
      return nullptr;
    LayoutExpr *L = Arena.newLayout(LayoutExprKind::Overlay, Loc);
    do {
      LayoutFieldAst Alt;
      if (!parseLayoutField(Alt))
        return nullptr;
      L->Fields.push_back(std::move(Alt));
    } while (match(TokenKind::Pipe));
    if (!expect(TokenKind::RBrace, "after overlay alternatives"))
      return nullptr;
    if (L->Fields.size() < 2)
      Diags.error(Loc, "overlay needs at least two alternatives");
    return L;
  }
  if (match(TokenKind::LBrace)) {
    // `{n}` gap vs `{name : ...}` sequential group.
    if (check(TokenKind::Integer) && peek(1).is(TokenKind::RBrace)) {
      LayoutExpr *L = Arena.newLayout(LayoutExprKind::Gap, Loc);
      L->GapBits = static_cast<unsigned>(advance().IntValue);
      advance(); // }
      return L;
    }
    LayoutExpr *L = Arena.newLayout(LayoutExprKind::Seq, Loc);
    do {
      LayoutFieldAst Field;
      if (!parseLayoutField(Field))
        return nullptr;
      L->Fields.push_back(std::move(Field));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RBrace, "after layout fields"))
      return nullptr;
    return L;
  }
  Diags.error(Loc, formatf("expected layout expression, found %s",
                           tokenKindName(peek().Kind)));
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Type expressions
//===----------------------------------------------------------------------===//

const TypeExpr *Parser::parseTypeExpr() {
  SourceLoc Loc = peek().Loc;
  if (match(TokenKind::KwWord)) {
    if (match(TokenKind::LBracket)) {
      TypeExpr *T = Arena.newType(TypeExprKind::WordArray, Loc);
      if (!check(TokenKind::Integer)) {
        Diags.error(peek().Loc, "expected array length");
        return nullptr;
      }
      T->ArrayLen = static_cast<unsigned>(advance().IntValue);
      if (!expect(TokenKind::RBracket, "after array length"))
        return nullptr;
      return T;
    }
    return Arena.newType(TypeExprKind::Word, Loc);
  }
  if (match(TokenKind::KwBool))
    return Arena.newType(TypeExprKind::Bool, Loc);
  if (check(TokenKind::KwPacked) || check(TokenKind::KwUnpacked)) {
    bool IsPacked = advance().Kind == TokenKind::KwPacked;
    if (!expect(TokenKind::LParen, "after packed/unpacked"))
      return nullptr;
    TypeExpr *T = Arena.newType(
        IsPacked ? TypeExprKind::Packed : TypeExprKind::Unpacked, Loc);
    T->Layout = parseLayoutExpr();
    if (!T->Layout || !expect(TokenKind::RParen, "after layout"))
      return nullptr;
    return T;
  }
  if (match(TokenKind::KwExn)) {
    TypeExpr *T = Arena.newType(TypeExprKind::Exn, Loc);
    if (match(TokenKind::LParen)) {
      if (!check(TokenKind::RParen)) {
        do {
          const TypeExpr *E = parseTypeExpr();
          if (!E)
            return nullptr;
          T->Elems.push_back(E);
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "after exn payload"))
        return nullptr;
    } else if (match(TokenKind::LBracket)) {
      T->ExnRecordPayload = true;
      if (!check(TokenKind::RBracket)) {
        do {
          TypeFieldAst F;
          if (!check(TokenKind::Identifier)) {
            Diags.error(peek().Loc, "expected field name");
            return nullptr;
          }
          F.Name = std::string(advance().Text);
          if (!expect(TokenKind::Colon, "after field name"))
            return nullptr;
          F.Type = parseTypeExpr();
          if (!F.Type)
            return nullptr;
          T->Fields.push_back(std::move(F));
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RBracket, "after exn payload"))
        return nullptr;
    } else {
      Diags.error(peek().Loc, "expected exn payload type");
      return nullptr;
    }
    return T;
  }
  if (match(TokenKind::LParen)) {
    TypeExpr *T = Arena.newType(TypeExprKind::Tuple, Loc);
    if (!check(TokenKind::RParen)) {
      do {
        const TypeExpr *E = parseTypeExpr();
        if (!E)
          return nullptr;
        T->Elems.push_back(E);
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "after tuple type"))
      return nullptr;
    return T;
  }
  if (match(TokenKind::LBracket)) {
    TypeExpr *T = Arena.newType(TypeExprKind::Record, Loc);
    do {
      TypeFieldAst F;
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected record field name");
        return nullptr;
      }
      F.Name = std::string(advance().Text);
      if (!expect(TokenKind::Colon, "after record field name"))
        return nullptr;
      F.Type = parseTypeExpr();
      if (!F.Type)
        return nullptr;
      T->Fields.push_back(std::move(F));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RBracket, "after record type"))
      return nullptr;
    return T;
  }
  Diags.error(Loc, formatf("expected type, found %s",
                           tokenKindName(peek().Kind)));
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

const Expr *Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  Expr *B = Arena.newExpr(ExprKind::Block, Loc);
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (check(TokenKind::KwLet)) {
      if (const Stmt *S = parseLet())
        B->Stmts.push_back(S);
      else
        synchronizeStmt();
      continue;
    }
    if (check(TokenKind::KwWhile)) {
      if (const Stmt *S = parseWhile())
        B->Stmts.push_back(S);
      else
        synchronizeStmt();
      continue;
    }
    // Assignment: `x = e;` (identifier followed by plain '=').
    if (check(TokenKind::Identifier) && peek(1).is(TokenKind::Assign)) {
      Stmt *S = Arena.newStmt(StmtKind::Assign, peek().Loc);
      S->Name = std::string(advance().Text);
      advance(); // =
      S->Value = parseExpr();
      if (!S->Value || !expect(TokenKind::Semi, "after assignment")) {
        synchronizeStmt();
        continue;
      }
      B->Stmts.push_back(S);
      continue;
    }
    const Expr *E = parseExpr();
    if (!E) {
      synchronizeStmt();
      continue;
    }
    // Store statement: `sram(addr) <- value;`.
    if (E->Kind == ExprKind::MemRead && check(TokenKind::LeftArrow)) {
      Stmt *S = Arena.newStmt(StmtKind::Store, E->Loc);
      S->Space = E->Space;
      S->Addr = E->Lhs;
      advance(); // <-
      S->Value = parseExpr();
      if (!S->Value || !expect(TokenKind::Semi, "after store")) {
        synchronizeStmt();
        continue;
      }
      B->Stmts.push_back(S);
      continue;
    }
    if (match(TokenKind::Semi)) {
      Stmt *S = Arena.newStmt(StmtKind::ExprStmt, E->Loc);
      S->Value = E;
      B->Stmts.push_back(S);
      continue;
    }
    if (check(TokenKind::RBrace)) {
      B->Tail = E;
      break;
    }
    // Brace-ended expressions used as statements need no semicolon.
    if (E->Kind == ExprKind::If || E->Kind == ExprKind::Try ||
        E->Kind == ExprKind::Block) {
      Stmt *S = Arena.newStmt(StmtKind::ExprStmt, E->Loc);
      S->Value = E;
      B->Stmts.push_back(S);
      continue;
    }
    Diags.error(peek().Loc, formatf("expected ';' after expression, found %s",
                                    tokenKindName(peek().Kind)));
    synchronizeStmt();
  }
  expect(TokenKind::RBrace, "to close block");
  return B;
}

const Stmt *Parser::parseLet() {
  Stmt *S = Arena.newStmt(StmtKind::Let, peek().Loc);
  advance(); // let
  S->Pat.Loc = peek().Loc;
  if (match(TokenKind::LParen)) {
    S->Pat.IsTuple = true;
    do {
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected name in tuple pattern");
        return nullptr;
      }
      S->Pat.Names.push_back(std::string(advance().Text));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "after tuple pattern"))
      return nullptr;
  } else if (check(TokenKind::Identifier)) {
    S->Pat.Names.push_back(std::string(advance().Text));
  } else {
    Diags.error(peek().Loc, "expected binding pattern after 'let'");
    return nullptr;
  }
  if (match(TokenKind::Colon)) {
    S->Annot = parseTypeExpr();
    if (!S->Annot)
      return nullptr;
  }
  if (!expect(TokenKind::Assign, "in let binding"))
    return nullptr;
  S->Value = parseExpr();
  if (!S->Value)
    return nullptr;
  if (!expect(TokenKind::Semi, "after let binding"))
    return nullptr;
  return S;
}

const Stmt *Parser::parseWhile() {
  Stmt *S = Arena.newStmt(StmtKind::While, peek().Loc);
  advance(); // while
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  S->Cond = parseExpr();
  if (!S->Cond || !expect(TokenKind::RParen, "after loop condition"))
    return nullptr;
  S->Body = parseBlock();
  return S->Body ? S : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
/// Binding power of a binary operator, or -1.
int binaryPrec(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:  return 1;
  case TokenKind::AmpAmp:    return 2;
  case TokenKind::Pipe:      return 3;
  case TokenKind::Caret:     return 4;
  case TokenKind::Amp:       return 5;
  case TokenKind::EqEq:
  case TokenKind::NotEq:     return 6;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEq:
  case TokenKind::GreaterEq: return 7;
  case TokenKind::Shl:
  case TokenKind::Shr:       return 8;
  case TokenKind::Plus:
  case TokenKind::Minus:     return 9;
  default:                   return -1;
  }
}

BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:  return BinaryOp::LogOr;
  case TokenKind::AmpAmp:    return BinaryOp::LogAnd;
  case TokenKind::Pipe:      return BinaryOp::Or;
  case TokenKind::Caret:     return BinaryOp::Xor;
  case TokenKind::Amp:       return BinaryOp::And;
  case TokenKind::EqEq:      return BinaryOp::Eq;
  case TokenKind::NotEq:     return BinaryOp::Ne;
  case TokenKind::Less:      return BinaryOp::Lt;
  case TokenKind::Greater:   return BinaryOp::Gt;
  case TokenKind::LessEq:    return BinaryOp::Le;
  case TokenKind::GreaterEq: return BinaryOp::Ge;
  case TokenKind::Shl:       return BinaryOp::Shl;
  case TokenKind::Shr:       return BinaryOp::Shr;
  case TokenKind::Plus:      return BinaryOp::Add;
  case TokenKind::Minus:     return BinaryOp::Sub;
  default:                   return BinaryOp::Add;
  }
}
} // namespace

const Expr *Parser::parseExpr() { return parseBinary(1); }

const Expr *Parser::parseBinary(int MinPrec) {
  const Expr *L = parseUnary();
  if (!L)
    return nullptr;
  while (true) {
    int Prec = binaryPrec(peek().Kind);
    if (Prec < MinPrec)
      return L;
    Token Op = advance();
    const Expr *R = parseBinary(Prec + 1);
    if (!R)
      return nullptr;
    Expr *B = Arena.newExpr(ExprKind::Binary, Op.Loc);
    B->BOp = binaryOpFor(Op.Kind);
    B->Lhs = L;
    B->Rhs = R;
    L = B;
  }
}

const Expr *Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (match(TokenKind::Bang)) {
    Expr *E = Arena.newExpr(ExprKind::Unary, Loc);
    E->UOp = UnaryOp::Not;
    E->Lhs = parseUnary();
    return E->Lhs ? E : nullptr;
  }
  if (match(TokenKind::Tilde)) {
    Expr *E = Arena.newExpr(ExprKind::Unary, Loc);
    E->UOp = UnaryOp::BitNot;
    E->Lhs = parseUnary();
    return E->Lhs ? E : nullptr;
  }
  if (match(TokenKind::Minus)) {
    Expr *E = Arena.newExpr(ExprKind::Unary, Loc);
    E->UOp = UnaryOp::Neg;
    E->Lhs = parseUnary();
    return E->Lhs ? E : nullptr;
  }
  return parsePostfix();
}

const Expr *Parser::parsePostfix() {
  const Expr *E = parsePrimary();
  while (E && check(TokenKind::Dot)) {
    SourceLoc Loc = advance().Loc;
    Expr *F = Arena.newExpr(ExprKind::Field, Loc);
    F->Lhs = E;
    if (check(TokenKind::Identifier)) {
      F->Name = std::string(advance().Text);
    } else if (check(TokenKind::Integer)) {
      F->FieldIndex = static_cast<int>(advance().IntValue);
    } else {
      Diags.error(peek().Loc, "expected field name or tuple index after '.'");
      return nullptr;
    }
    E = F;
  }
  return E;
}

std::vector<Arg> Parser::parseArgs(TokenKind Open, TokenKind Close) {
  std::vector<Arg> Args;
  if (!expect(Open, "for argument list"))
    return Args;
  if (match(Close))
    return Args;
  do {
    Arg A;
    if (check(TokenKind::Identifier) && peek(1).is(TokenKind::Assign)) {
      A.Name = std::string(advance().Text);
      advance(); // =
    }
    A.Value = parseExpr();
    if (!A.Value)
      return Args;
    Args.push_back(std::move(A));
  } while (match(TokenKind::Comma));
  expect(Close, "after arguments");
  return Args;
}

const Expr *Parser::parseRecordLit() {
  SourceLoc Loc = peek().Loc;
  Expr *E = Arena.newExpr(ExprKind::RecordLit, Loc);
  E->Args = parseArgs(TokenKind::LBracket, TokenKind::RBracket);
  for (const Arg &A : E->Args)
    if (A.Name.empty())
      Diags.error(A.Value ? A.Value->Loc : Loc,
                  "record literal fields must be named");
  return E;
}

const Expr *Parser::parseArmExpr() {
  if (check(TokenKind::LBrace))
    return parseBlock();
  return parseExpr();
}

const Expr *Parser::parseIf() {
  SourceLoc Loc = peek().Loc;
  advance(); // if
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  Expr *E = Arena.newExpr(ExprKind::If, Loc);
  E->Cond = parseExpr();
  if (!E->Cond || !expect(TokenKind::RParen, "after condition"))
    return nullptr;
  E->Then = parseArmExpr();
  if (!E->Then)
    return nullptr;
  if (match(TokenKind::KwElse)) {
    E->Else = check(TokenKind::KwIf) ? parseIf() : parseArmExpr();
    if (!E->Else)
      return nullptr;
  }
  return E;
}

const Expr *Parser::parseTry() {
  SourceLoc Loc = peek().Loc;
  advance(); // try
  Expr *E = Arena.newExpr(ExprKind::Try, Loc);
  E->Body = parseBlock();
  if (!E->Body)
    return nullptr;
  while (check(TokenKind::KwHandle)) {
    Handler H;
    H.Loc = advance().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected exception name after 'handle'");
      return nullptr;
    }
    H.ExnName = std::string(advance().Text);
    TokenKind Close;
    if (match(TokenKind::LParen)) {
      Close = TokenKind::RParen;
    } else if (match(TokenKind::LBracket)) {
      Close = TokenKind::RBracket;
      H.RecordPayload = true;
    } else {
      Diags.error(peek().Loc, "expected handler parameter list");
      return nullptr;
    }
    if (!check(Close)) {
      do {
        if (!check(TokenKind::Identifier)) {
          Diags.error(peek().Loc, "expected handler parameter name");
          return nullptr;
        }
        std::string Name(advance().Text);
        const TypeExpr *T = nullptr;
        if (match(TokenKind::Colon)) {
          T = parseTypeExpr();
          if (!T)
            return nullptr;
        }
        H.Params.emplace_back(std::move(Name), T);
      } while (match(TokenKind::Comma));
    }
    if (!expect(Close, "after handler parameters"))
      return nullptr;
    H.Body = parseBlock();
    if (!H.Body)
      return nullptr;
    E->Handlers.push_back(std::move(H));
  }
  if (E->Handlers.empty())
    Diags.error(Loc, "try block needs at least one handler");
  return E;
}

const Expr *Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::Integer: {
    Expr *E = Arena.newExpr(ExprKind::IntLit, Loc);
    E->IntValue = advance().IntValue;
    return E;
  }
  case TokenKind::KwTrue:
  case TokenKind::KwFalse: {
    Expr *E = Arena.newExpr(ExprKind::BoolLit, Loc);
    E->BoolValue = advance().is(TokenKind::KwTrue);
    return E;
  }
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwTry:
    return parseTry();
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwRaise: {
    advance();
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected exception name after 'raise'");
      return nullptr;
    }
    Expr *E = Arena.newExpr(ExprKind::Raise, Loc);
    E->Name = std::string(advance().Text);
    if (check(TokenKind::LParen))
      E->Args = parseArgs(TokenKind::LParen, TokenKind::RParen);
    else if (check(TokenKind::LBracket))
      E->Args = parseArgs(TokenKind::LBracket, TokenKind::RBracket);
    return E;
  }
  case TokenKind::KwPack:
  case TokenKind::KwUnpack: {
    bool IsPack = advance().is(TokenKind::KwPack);
    if (!expect(TokenKind::LBracket, "after pack/unpack"))
      return nullptr;
    const LayoutExpr *L = parseLayoutExpr();
    if (!L || !expect(TokenKind::RBracket, "after layout argument"))
      return nullptr;
    Expr *E = Arena.newExpr(IsPack ? ExprKind::Pack : ExprKind::Unpack, Loc);
    E->Layout = L;
    if (IsPack && check(TokenKind::LBracket)) {
      E->Lhs = parseRecordLit();
    } else {
      if (!expect(TokenKind::LParen, "around pack/unpack operand"))
        return nullptr;
      E->Lhs = parseExpr();
      if (!E->Lhs || !expect(TokenKind::RParen, "after pack/unpack operand"))
        return nullptr;
    }
    return E->Lhs ? E : nullptr;
  }
  case TokenKind::LParen: {
    advance();
    if (match(TokenKind::RParen)) {
      // Unit literal: empty tuple.
      return Arena.newExpr(ExprKind::TupleLit, Loc);
    }
    const Expr *First = parseExpr();
    if (!First)
      return nullptr;
    if (!check(TokenKind::Comma)) {
      expect(TokenKind::RParen, "after parenthesized expression");
      return First;
    }
    Expr *T = Arena.newExpr(ExprKind::TupleLit, Loc);
    T->Elems.push_back(First);
    while (match(TokenKind::Comma)) {
      const Expr *E = parseExpr();
      if (!E)
        return nullptr;
      T->Elems.push_back(E);
    }
    if (!expect(TokenKind::RParen, "after tuple"))
      return nullptr;
    return T;
  }
  case TokenKind::LBracket:
    return parseRecordLit();
  case TokenKind::Identifier: {
    std::string Name(advance().Text);
    // Memory and hardware intrinsics get dedicated node kinds.
    bool IsMem = Name == "sram" || Name == "sdram" || Name == "scratch";
    if (IsMem && check(TokenKind::LParen)) {
      advance();
      Expr *E = Arena.newExpr(ExprKind::MemRead, Loc);
      E->Space = Name == "sram"    ? MemSpace::Sram
                 : Name == "sdram" ? MemSpace::Sdram
                                   : MemSpace::Scratch;
      E->Lhs = parseExpr();
      if (!E->Lhs || !expect(TokenKind::RParen, "after memory address"))
        return nullptr;
      return E;
    }
    if (Name == "hash" && check(TokenKind::LParen)) {
      advance();
      Expr *E = Arena.newExpr(ExprKind::Hash, Loc);
      E->Lhs = parseExpr();
      if (!E->Lhs || !expect(TokenKind::RParen, "after hash operand"))
        return nullptr;
      return E;
    }
    if (Name == "sram_bit_test_set" && check(TokenKind::LParen)) {
      advance();
      Expr *E = Arena.newExpr(ExprKind::BitTestSet, Loc);
      E->Lhs = parseExpr();
      if (!E->Lhs || !expect(TokenKind::Comma, "between address and source"))
        return nullptr;
      E->Rhs = parseExpr();
      if (!E->Rhs || !expect(TokenKind::RParen, "after operands"))
        return nullptr;
      return E;
    }
    if (check(TokenKind::LParen)) {
      Expr *E = Arena.newExpr(ExprKind::Call, Loc);
      E->Name = std::move(Name);
      E->Args = parseArgs(TokenKind::LParen, TokenKind::RParen);
      return E;
    }
    if (check(TokenKind::LBracket)) {
      Expr *E = Arena.newExpr(ExprKind::Call, Loc);
      E->Name = std::move(Name);
      E->Args = parseArgs(TokenKind::LBracket, TokenKind::RBracket);
      for (const Arg &A : E->Args)
        if (A.Name.empty())
          Diags.error(A.Value ? A.Value->Loc : Loc,
                      "record-style call arguments must be named");
      return E;
    }
    Expr *E = Arena.newExpr(ExprKind::VarRef, Loc);
    E->Name = std::move(Name);
    return E;
  }
  default:
    Diags.error(Loc, formatf("expected expression, found %s",
                             tokenKindName(peek().Kind)));
    advance();
    return nullptr;
  }
}
