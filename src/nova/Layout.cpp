//===- Layout.cpp ---------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Layout.h"

#include "support/Debug.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace nova;

std::vector<BitPiece> nova::planBitfield(unsigned OffsetBits,
                                         unsigned WidthBits) {
  assert(WidthBits >= 1 && WidthBits <= 32 && "bitfield width out of range");
  std::vector<BitPiece> Pieces;
  unsigned End = OffsetBits + WidthBits;
  for (unsigned W = OffsetBits / 32; W * 32 < End; ++W) {
    unsigned WordStart = W * 32;
    unsigned SegStart = std::max(OffsetBits, WordStart);
    unsigned SegEnd = std::min(End, WordStart + 32);
    unsigned SegWidth = SegEnd - SegStart;
    BitPiece P;
    P.WordIndex = W;
    // Bit 0 of the layout is the MSB of word 0.
    P.WordShift = 32 - (SegStart - WordStart) - SegWidth;
    P.ValueShift = WidthBits - (SegStart - OffsetBits) - SegWidth;
    P.PieceWidth = SegWidth;
    P.Mask = SegWidth >= 32 ? 0xFFFFFFFFu : ((1u << SegWidth) - 1u);
    Pieces.push_back(P);
  }
  assert(!Pieces.empty() && Pieces.size() <= 2 && "impossible piece count");
  return Pieces;
}

bool LayoutTable::addDecl(const LayoutDecl &Decl) {
  if (Named.count(Decl.Name)) {
    Diags.error(Decl.Loc,
                formatf("layout '%s' redefined", Decl.Name.c_str()));
    return false;
  }
  LayoutNode Root;
  if (!resolveAt(Decl.Value, 0, Root))
    return false;
  Root.Name = Decl.Name;
  Named.emplace(Decl.Name, std::move(Root));
  return true;
}

const LayoutNode *LayoutTable::find(const std::string &Name) const {
  auto It = Named.find(Name);
  return It == Named.end() ? nullptr : &It->second;
}

bool LayoutTable::resolve(const LayoutExpr *L, LayoutNode &Out) {
  return resolveAt(L, 0, Out);
}

/// Shifts every offset in \p Node by \p Delta (used when instantiating a
/// named layout at a nonzero position).
static void shiftOffsets(LayoutNode &Node, unsigned Delta) {
  Node.OffsetBits += Delta;
  for (LayoutNode &C : Node.Children)
    shiftOffsets(C, Delta);
}

bool LayoutTable::resolveAt(const LayoutExpr *L, unsigned Offset,
                            LayoutNode &Out) {
  switch (L->Kind) {
  case LayoutExprKind::Name: {
    const LayoutNode *Ref = find(L->Name);
    if (!Ref) {
      Diags.error(L->Loc, formatf("unknown layout '%s'", L->Name.c_str()));
      return false;
    }
    Out = *Ref; // deep copy
    shiftOffsets(Out, Offset);
    Out.OffsetBits = Offset;
    // The instantiation is anonymous; when used as a field the caller
    // assigns the field's name, and inside a concatenation an anonymous
    // group flattens into the parent (paper: `{16} ## lyt ## {24}` exposes
    // lyt's fields directly).
    Out.Name.clear();
    return true;
  }
  case LayoutExprKind::Gap:
    if (L->GapBits == 0) {
      Diags.error(L->Loc, "gap must be at least one bit");
      return false;
    }
    Out.NodeKind = LayoutNode::Kind::Gap;
    Out.OffsetBits = Offset;
    Out.WidthBits = L->GapBits;
    Out.Children.clear();
    return true;
  case LayoutExprKind::Seq: {
    Out.NodeKind = LayoutNode::Kind::Group;
    Out.OffsetBits = Offset;
    Out.Children.clear();
    unsigned Cursor = Offset;
    for (const LayoutFieldAst &F : L->Fields) {
      LayoutNode Child;
      if (F.Sub) {
        if (!resolveAt(F.Sub, Cursor, Child))
          return false;
      } else {
        if (F.Width < 1 || F.Width > 32) {
          Diags.error(F.Loc,
                      formatf("bitfield '%s' must be 1..32 bits wide, got %u",
                              F.Name.c_str(), F.Width));
          return false;
        }
        Child.NodeKind = LayoutNode::Kind::Leaf;
        Child.OffsetBits = Cursor;
        Child.WidthBits = F.Width;
      }
      Child.Name = F.Name;
      Cursor += Child.WidthBits;
      Out.Children.push_back(std::move(Child));
    }
    Out.WidthBits = Cursor - Offset;
    return true;
  }
  case LayoutExprKind::Overlay: {
    Out.NodeKind = LayoutNode::Kind::Overlay;
    Out.OffsetBits = Offset;
    Out.Children.clear();
    unsigned Width = 0;
    for (const LayoutFieldAst &F : L->Fields) {
      LayoutNode Alt;
      if (F.Sub) {
        if (!resolveAt(F.Sub, Offset, Alt))
          return false;
      } else {
        if (F.Width < 1 || F.Width > 32) {
          Diags.error(F.Loc, formatf("overlay alternative '%s' must be 1..32 "
                                     "bits wide, got %u",
                                     F.Name.c_str(), F.Width));
          return false;
        }
        Alt.NodeKind = LayoutNode::Kind::Leaf;
        Alt.OffsetBits = Offset;
        Alt.WidthBits = F.Width;
      }
      Alt.Name = F.Name;
      if (!Out.Children.empty() && Alt.WidthBits != Width) {
        Diags.error(F.Loc,
                    formatf("overlay alternative '%s' is %u bits but earlier "
                            "alternatives are %u bits",
                            F.Name.c_str(), Alt.WidthBits, Width));
        return false;
      }
      Width = Alt.WidthBits;
      Out.Children.push_back(std::move(Alt));
    }
    Out.WidthBits = Width;
    return true;
  }
  case LayoutExprKind::Concat: {
    LayoutNode L1, L2;
    if (!resolveAt(L->Lhs, Offset, L1))
      return false;
    if (!resolveAt(L->Rhs, Offset + L1.WidthBits, L2))
      return false;
    // Concatenation merges into one anonymous group; named children keep
    // their names, so `lyt ## {40}` behaves like lyt followed by a gap.
    Out.NodeKind = LayoutNode::Kind::Group;
    Out.OffsetBits = Offset;
    Out.WidthBits = L1.WidthBits + L2.WidthBits;
    Out.Children.clear();
    auto Absorb = [&Out](LayoutNode &&N) {
      // An anonymous group is flattened into the parent; anything named
      // (or a leaf/overlay/gap) is kept as a child.
      if (N.NodeKind == LayoutNode::Kind::Group && N.Name.empty()) {
        for (LayoutNode &C : N.Children)
          Out.Children.push_back(std::move(C));
      } else {
        Out.Children.push_back(std::move(N));
      }
    };
    Absorb(std::move(L1));
    Absorb(std::move(L2));
    return true;
  }
  }
  NOVA_UNREACHABLE("unhandled layout kind");
}

void LayoutTable::collectLeaves(
    const LayoutNode &Root,
    std::vector<std::pair<std::string, const LayoutNode *>> &Out) {
  struct Walker {
    std::vector<std::pair<std::string, const LayoutNode *>> &Out;
    void walk(const LayoutNode &N, const std::string &Prefix) {
      std::string Path = N.Name.empty()
                             ? Prefix
                             : (Prefix.empty() ? N.Name
                                               : Prefix + "." + N.Name);
      switch (N.NodeKind) {
      case LayoutNode::Kind::Leaf:
        Out.emplace_back(Path, &N);
        return;
      case LayoutNode::Kind::Gap:
        return;
      case LayoutNode::Kind::Group:
      case LayoutNode::Kind::Overlay:
        for (const LayoutNode &C : N.Children)
          walk(C, Path);
        return;
      }
    }
  };
  Walker W{Out};
  // The root's own name is not part of field paths.
  for (const LayoutNode &C : Root.Children)
    W.walk(C, "");
  if (Root.NodeKind == LayoutNode::Kind::Leaf)
    Out.emplace_back(Root.Name, &Root);
}
