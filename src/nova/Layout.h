//===- Layout.h - Nova layout resolution and bit planning -------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves layout expressions (Section 3.2 of the paper) into trees with
/// absolute bit offsets, and plans the shift/mask instruction sequences
/// needed to extract (unpack) or deposit (pack) each bitfield — including
/// fields that straddle a 32-bit word boundary.
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_LAYOUT_H
#define NOVA_LAYOUT_H

#include "nova/Ast.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nova {

/// A resolved layout tree node. Offsets are absolute within the packed
/// word tuple; bit 0 is the most significant bit of word 0 (network
/// order).
struct LayoutNode {
  enum class Kind : uint8_t { Leaf, Group, Overlay, Gap };

  Kind NodeKind = Kind::Leaf;
  std::string Name; ///< field name within the parent; empty for gaps/root
  unsigned OffsetBits = 0;
  unsigned WidthBits = 0;
  std::vector<LayoutNode> Children; ///< Group fields / Overlay alternatives

  /// Number of 32-bit words of the packed representation rooted here when
  /// this node is a top-level layout.
  unsigned packedWords() const { return (OffsetBits + WidthBits + 31) / 32; }
};

/// One shift/mask step of a bitfield plan; see planExtract/planInsert.
struct BitPiece {
  unsigned WordIndex; ///< which packed word this piece touches
  unsigned WordShift; ///< bit position (from LSB) of the piece in the word
  unsigned ValueShift;///< bit position (from LSB) of the piece in the value
  uint32_t Mask;      ///< mask of PieceWidth low bits
  unsigned PieceWidth;
};

/// Extraction: value = OR over pieces of
///   ((word[WordIndex] >> WordShift) & Mask) << ValueShift.
/// Deposit: word[WordIndex] |= ((value >> ValueShift) & Mask) << WordShift.
/// A field of width <= 32 produces one piece, or two when it straddles a
/// word boundary.
std::vector<BitPiece> planBitfield(unsigned OffsetBits, unsigned WidthBits);

/// Registry of named layouts, resolved in declaration order.
class LayoutTable {
public:
  explicit LayoutTable(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Resolves and registers a declaration. Returns false (with a
  /// diagnostic) on undefined references, zero/oversized leaf widths, or
  /// overlay alternatives of unequal sizes.
  bool addDecl(const LayoutDecl &Decl);

  /// Returns the resolved tree for a named layout, or nullptr.
  const LayoutNode *find(const std::string &Name) const;

  /// Resolves an arbitrary layout expression (which may reference named
  /// layouts) into a tree rooted at bit offset 0. Returns false on error.
  bool resolve(const LayoutExpr *L, LayoutNode &Out);

  /// Collects every leaf (bitfield) of a resolved tree in layout order,
  /// including leaves inside every overlay alternative. Gap nodes are
  /// skipped. Paths are dotted (e.g. "verpri.parts.version").
  static void collectLeaves(const LayoutNode &Root,
                            std::vector<std::pair<std::string,
                                                  const LayoutNode *>> &Out);

private:
  bool resolveAt(const LayoutExpr *L, unsigned Offset, LayoutNode &Out);

  DiagnosticEngine &Diags;
  std::map<std::string, LayoutNode> Named;
};

} // namespace nova

#endif // NOVA_LAYOUT_H
