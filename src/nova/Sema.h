//===- Sema.h - Nova name resolution and type checking ----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaboration and type checking for Nova. Produces the side tables the
/// CPS converter needs (expression types, variable bindings, resolved
/// layouts, memory-aggregate arities) plus the static program statistics
/// of the paper's Figure 5.
///
/// Notable rules enforced here, following the paper:
///  - recursive (and mutually recursive) calls must be in tail position
///    (Nova has no stack);
///  - exceptions are lexically scoped values of exn type introduced by
///    try/handle, and may be passed to functions;
///  - pack takes a record literal choosing exactly one alternative of
///    every overlay; unpack produces all alternatives.
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_SEMA_H
#define NOVA_SEMA_H

#include "nova/Ast.h"
#include "nova/Layout.h"
#include "nova/Types.h"
#include "support/Diagnostics.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace nova {

/// A unique binding of a name (function parameter, let, handler parameter,
/// or handler-introduced exception).
struct VarSymbol {
  unsigned Id = 0;
  std::string Name;
  const Type *Ty = nullptr;
};

/// Static program statistics (paper Figure 5).
struct ProgramStats {
  unsigned NovaLines = 0;
  unsigned LayoutSpecs = 0;
  unsigned PackCount = 0;
  unsigned UnpackCount = 0;
  unsigned RaiseCount = 0;
  unsigned HandleCount = 0;
};

/// Everything later phases need from the front end. Owns the type context
/// and all symbols; AST nodes are owned by the caller's AstArena.
class SemaResult {
public:
  explicit SemaResult(DiagnosticEngine &Diags) : Layouts(Diags) {}

  bool Success = false;
  TypeContext Types;
  LayoutTable Layouts;
  ProgramStats Stats;

  std::unordered_map<const Expr *, const Type *> ExprTypes;
  std::unordered_map<const Expr *, const VarSymbol *> VarBinding;
  std::unordered_map<const Expr *, const FunDecl *> CallTarget;
  /// Resolved layout of each Pack/Unpack expression.
  std::unordered_map<const Expr *, const LayoutNode *> PackLayout;
  /// Aggregate word count of each MemRead.
  std::unordered_map<const Expr *, unsigned> MemReadCount;
  std::unordered_map<const Stmt *, std::vector<const VarSymbol *>> LetSymbols;
  std::unordered_map<const FunDecl *, std::vector<const VarSymbol *>>
      ParamSymbols;
  std::unordered_map<const Handler *, std::vector<const VarSymbol *>>
      HandlerParamSymbols;
  /// The exn-typed symbol each handler clause introduces over the try body.
  std::unordered_map<const Handler *, const VarSymbol *> HandlerExnSymbol;
  /// Resolution of `raise X` to the exn symbol X.
  std::unordered_map<const Expr *, const VarSymbol *> RaiseTarget;
  std::unordered_map<const Stmt *, const VarSymbol *> AssignTarget;
  std::unordered_map<const FunDecl *, const Type *> FunResultType;

  const Type *typeOf(const Expr *E) const {
    auto It = ExprTypes.find(E);
    return It == ExprTypes.end() ? nullptr : It->second;
  }

  VarSymbol *newSymbol(std::string Name, const Type *Ty) {
    Symbols.push_back({NextSymbolId++, std::move(Name), Ty});
    return &Symbols.back();
  }

  /// Stable storage for resolved layout trees referenced by PackLayout.
  const LayoutNode *storeLayout(LayoutNode Node) {
    StoredLayouts.push_back(std::move(Node));
    return &StoredLayouts.back();
  }

private:
  std::deque<VarSymbol> Symbols;
  std::deque<LayoutNode> StoredLayouts;
  unsigned NextSymbolId = 0;
};

/// Runs semantic analysis over \p P. On failure, diagnostics explain why
/// and Result.Success is false.
void runSema(const Program &P, const SourceManager &SM,
             DiagnosticEngine &Diags, SemaResult &Result);

} // namespace nova

#endif // NOVA_SEMA_H
