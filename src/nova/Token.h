//===- Token.h - Nova lexical tokens ----------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the Nova language of George & Blume (PLDI 2003).
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_TOKEN_H
#define NOVA_TOKEN_H

#include "support/SourceManager.h"

#include <cstdint>
#include <string_view>

namespace nova {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Identifier,
  Integer,

  // Keywords.
  KwLayout,
  KwOverlay,
  KwFun,
  KwLet,
  KwIf,
  KwElse,
  KwWhile,
  KwTry,
  KwHandle,
  KwRaise,
  KwPack,
  KwUnpack,
  KwTrue,
  KwFalse,
  KwWord,
  KwBool,
  KwExn,
  KwPacked,
  KwUnpacked,
  KwHalt,

  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  HashHash,   ///< layout concatenation ##
  LeftArrow,  ///< <- memory store
  ThinArrow,  ///< -> function result type
  Assign,     ///< =
  EqEq,
  NotEq,
  Less,
  Greater,
  LessEq,
  GreaterEq,
  Plus,
  Minus,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,

  Eof,
  Error,
};

/// Returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token; Text views into the source buffer.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text;
  uint64_t IntValue = 0; ///< valid when Kind == Integer

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace nova

#endif // NOVA_TOKEN_H
