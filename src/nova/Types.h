//===- Types.h - Nova semantic types ----------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned semantic types. Nova's type system is stratified into types
/// and layouts (paper Section 3); packed(l)/unpacked(l) are expanded
/// structurally into word tuples and records here, so downstream phases
/// never see layout-dependent types.
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_TYPES_H
#define NOVA_TYPES_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nova {

struct LayoutNode;

enum class TypeKind : uint8_t {
  Word,
  Bool,
  Never, ///< type of `raise`; unifies with everything
  Tuple, ///< includes unit, the empty tuple
  Record,
  Exn, ///< exception with a payload type (tuple or record)
};

/// An interned, immutable type. Pointer equality is type equality.
class Type {
public:
  TypeKind kind() const { return Kind; }
  bool isWord() const { return Kind == TypeKind::Word; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isNever() const { return Kind == TypeKind::Never; }
  bool isUnit() const { return Kind == TypeKind::Tuple && Elems.empty(); }
  bool isExn() const { return Kind == TypeKind::Exn; }

  const std::vector<const Type *> &elems() const { return Elems; }
  const std::vector<std::string> &fieldNames() const { return Names; }
  const Type *exnPayload() const { return Elems.empty() ? nullptr : Elems[0]; }

  /// Index of a record field, or -1.
  int fieldIndex(const std::string &Name) const {
    for (unsigned I = 0; I != Names.size(); ++I)
      if (Names[I] == Name)
        return static_cast<int>(I);
    return -1;
  }

  /// Number of machine words after record/tuple flattening. Exn members
  /// occupy no data words (they are compile-time control values).
  unsigned flatWordCount() const;

  /// Human-readable rendering for diagnostics.
  std::string str() const;

private:
  friend class TypeContext;
  TypeKind Kind = TypeKind::Word;
  std::vector<const Type *> Elems;
  std::vector<std::string> Names; ///< parallel to Elems for records
};

/// Interning factory; owns all types it creates.
class TypeContext {
public:
  TypeContext();

  const Type *word() const { return WordTy; }
  const Type *boolean() const { return BoolTy; }
  const Type *never() const { return NeverTy; }
  const Type *unit() const { return UnitTy; }

  const Type *tuple(std::vector<const Type *> Elems);
  const Type *record(std::vector<std::string> Names,
                     std::vector<const Type *> Elems);
  const Type *exn(const Type *Payload);

  /// `word[n]` — the packed representation type.
  const Type *wordTuple(unsigned N);

  /// Builds unpacked(l): a record mirroring the layout structure with all
  /// bitfields (including every overlay alternative) as word fields.
  const Type *unpackedOf(const LayoutNode &Layout);

private:
  const Type *intern(Type T);

  std::map<std::string, std::unique_ptr<Type>> Pool;
  const Type *WordTy;
  const Type *BoolTy;
  const Type *NeverTy;
  const Type *UnitTy;
};

} // namespace nova

#endif // NOVA_TYPES_H
