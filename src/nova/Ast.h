//===- Ast.h - Nova abstract syntax -----------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the Nova language: layouts (with overlays, concatenation and
/// gaps), functions, try/handle exceptions, records/tuples, pack/unpack,
/// and the memory/hardware intrinsics of the IXP1200.
///
/// Nodes are owned by an AstArena; references between nodes are raw
/// pointers, which are stable for the arena's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_AST_H
#define NOVA_AST_H

#include "support/SourceManager.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nova {

//===----------------------------------------------------------------------===//
// Layout expressions
//===----------------------------------------------------------------------===//

struct LayoutExpr;

/// One named entry of a sequential layout group. Exactly one of Width and
/// Sub is meaningful: `name : 16` vs `name : other_layout_expr`.
struct LayoutFieldAst {
  SourceLoc Loc;
  std::string Name;
  unsigned Width = 0;            ///< bit width when Sub == nullptr
  const LayoutExpr *Sub = nullptr;
};

enum class LayoutExprKind : uint8_t {
  Name,    ///< reference to a named layout
  Seq,     ///< `{ f1 : ..., f2 : ... }`
  Overlay, ///< `overlay { a : L1 | b : L2 }`
  Concat,  ///< `L1 ## L2`
  Gap,     ///< `{n}` anonymous gap of n bits
};

/// A layout expression; see paper Section 3.2.
struct LayoutExpr {
  LayoutExprKind Kind;
  SourceLoc Loc;
  std::string Name;                      ///< Name
  std::vector<LayoutFieldAst> Fields;    ///< Seq and Overlay alternatives
  const LayoutExpr *Lhs = nullptr;       ///< Concat
  const LayoutExpr *Rhs = nullptr;       ///< Concat
  unsigned GapBits = 0;                  ///< Gap
};

//===----------------------------------------------------------------------===//
// Type expressions (surface syntax)
//===----------------------------------------------------------------------===//

struct TypeExpr;

/// A named field of a record type expression.
struct TypeFieldAst {
  std::string Name;
  const TypeExpr *Type = nullptr;
};

enum class TypeExprKind : uint8_t {
  Word,
  Bool,
  WordArray, ///< word[n]
  Tuple,
  Record,
  Packed,   ///< packed(layout-expr)
  Unpacked, ///< unpacked(layout-expr)
  Exn,      ///< exn(T1, ...) or exn[f : T, ...]
};

struct TypeExpr {
  TypeExprKind Kind;
  SourceLoc Loc;
  unsigned ArrayLen = 0;                    ///< WordArray
  std::vector<const TypeExpr *> Elems;      ///< Tuple, Exn tuple payload
  std::vector<TypeFieldAst> Fields;         ///< Record, Exn record payload
  const LayoutExpr *Layout = nullptr;       ///< Packed / Unpacked
  bool ExnRecordPayload = false;            ///< Exn: payload spelled [..]
};

//===----------------------------------------------------------------------===//
// Expressions and statements
//===----------------------------------------------------------------------===//

struct Expr;
struct Stmt;

enum class UnaryOp : uint8_t { Not, BitNot, Neg };
enum class BinaryOp : uint8_t {
  Add, Sub, And, Or, Xor, Shl, Shr,
  Eq, Ne, Lt, Gt, Le, Ge,
  LogAnd, LogOr,
};

/// Address spaces of the IXP1200 memory hierarchy.
enum class MemSpace : uint8_t { Sram, Sdram, Scratch };

/// A call/record-literal/raise argument, optionally labeled (`x = e`).
struct Arg {
  std::string Name; ///< empty for positional arguments
  const Expr *Value = nullptr;
};

/// One `handle X [params] { ... }` clause.
struct Handler {
  SourceLoc Loc;
  std::string ExnName;
  /// Payload parameter names with required type annotations.
  std::vector<std::pair<std::string, const TypeExpr *>> Params;
  bool RecordPayload = false;
  const Expr *Body = nullptr; ///< always a Block
};

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  VarRef,
  Unary,
  Binary,
  Call,      ///< user function call (positional or named args)
  RecordLit,
  TupleLit,
  Field,     ///< e.name or e.<index>
  If,        ///< if (c) e1 else e2; else may be null in statement position
  Block,
  Pack,      ///< pack[layout](record)
  Unpack,    ///< unpack[layout](packed)
  MemRead,   ///< sram(addr) / sdram(addr) / scratch(addr)
  Hash,      ///< hash(src)
  BitTestSet,///< sram_bit_test_set(addr, src)
  Raise,     ///< raise X(args) — type Never
  Try,       ///< try { ... } handle ...
};

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  uint64_t IntValue = 0;              ///< IntLit
  bool BoolValue = false;             ///< BoolLit
  std::string Name;                   ///< VarRef, Call, Raise, Field name
  UnaryOp UOp = UnaryOp::Not;         ///< Unary
  BinaryOp BOp = BinaryOp::Add;       ///< Binary
  const Expr *Lhs = nullptr;          ///< Unary/Binary/Field/Pack/Unpack arg
  const Expr *Rhs = nullptr;          ///< Binary
  std::vector<Arg> Args;              ///< Call/RecordLit/Raise
  std::vector<const Expr *> Elems;    ///< TupleLit
  int FieldIndex = -1;                ///< Field by tuple index (e.0)
  const Expr *Cond = nullptr;         ///< If
  const Expr *Then = nullptr;         ///< If
  const Expr *Else = nullptr;         ///< If (may be null)
  std::vector<const Stmt *> Stmts;    ///< Block statements
  const Expr *Tail = nullptr;         ///< Block trailing expression (or null)
  const LayoutExpr *Layout = nullptr; ///< Pack/Unpack
  MemSpace Space = MemSpace::Sram;    ///< MemRead/BitTestSet
  std::vector<Handler> Handlers;      ///< Try
  const Expr *Body = nullptr;         ///< Try body
};

/// Destructuring pattern of a `let`.
struct Pattern {
  SourceLoc Loc;
  /// One name: plain binding. Several: tuple destructuring. The name "_"
  /// discards the component.
  std::vector<std::string> Names;
  bool IsTuple = false;
};

enum class StmtKind : uint8_t {
  Let,    ///< let pat (: T)? = init;
  Assign, ///< x = e;
  ExprStmt,
  Store,  ///< sram(addr) <- e;
  While,  ///< while (c) { ... }
};

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;
  Pattern Pat;                       ///< Let
  const TypeExpr *Annot = nullptr;   ///< Let annotation
  std::string Name;                  ///< Assign target
  const Expr *Value = nullptr;       ///< Let init / Assign / ExprStmt / Store
  const Expr *Addr = nullptr;        ///< Store address
  MemSpace Space = MemSpace::Sram;   ///< Store
  const Expr *Cond = nullptr;        ///< While
  const Expr *Body = nullptr;        ///< While body (Block)
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct LayoutDecl {
  SourceLoc Loc;
  std::string Name;
  const LayoutExpr *Value = nullptr;
};

struct FunParam {
  SourceLoc Loc;
  std::string Name;
  const TypeExpr *Type = nullptr; ///< required
};

struct FunDecl {
  SourceLoc Loc;
  std::string Name;
  std::vector<FunParam> Params;
  bool RecordParams = false;           ///< declared with [..] not (..)
  const TypeExpr *Result = nullptr;    ///< optional annotation
  const Expr *Body = nullptr;          ///< Block
};

/// Owns every AST node of one compilation.
class AstArena {
public:
  Expr *newExpr(ExprKind Kind, SourceLoc Loc) {
    Exprs.push_back(std::make_unique<Expr>());
    Exprs.back()->Kind = Kind;
    Exprs.back()->Loc = Loc;
    return Exprs.back().get();
  }
  Stmt *newStmt(StmtKind Kind, SourceLoc Loc) {
    Stmts.push_back(std::make_unique<Stmt>());
    Stmts.back()->Kind = Kind;
    Stmts.back()->Loc = Loc;
    return Stmts.back().get();
  }
  LayoutExpr *newLayout(LayoutExprKind Kind, SourceLoc Loc) {
    Layouts.push_back(std::make_unique<LayoutExpr>());
    Layouts.back()->Kind = Kind;
    Layouts.back()->Loc = Loc;
    return Layouts.back().get();
  }
  TypeExpr *newType(TypeExprKind Kind, SourceLoc Loc) {
    Types.push_back(std::make_unique<TypeExpr>());
    Types.back()->Kind = Kind;
    Types.back()->Loc = Loc;
    return Types.back().get();
  }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<LayoutExpr>> Layouts;
  std::vector<std::unique_ptr<TypeExpr>> Types;
};

/// A parsed compilation unit.
struct Program {
  std::vector<LayoutDecl> LayoutDecls;
  std::vector<FunDecl> FunDecls;

  const FunDecl *findFun(std::string_view Name) const {
    for (const FunDecl &F : FunDecls)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace nova

#endif // NOVA_AST_H
