//===- Sema.cpp -----------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Sema.h"

#include "support/Debug.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace nova;

namespace {

/// Lexically scoped symbol table.
class Scope {
public:
  explicit Scope(Scope *Parent = nullptr) : Parent(Parent) {}

  const VarSymbol *lookup(const std::string &Name) const {
    for (const Scope *S = this; S; S = S->Parent) {
      auto It = S->Bindings.find(Name);
      if (It != S->Bindings.end())
        return It->second;
    }
    return nullptr;
  }

  void bind(const std::string &Name, const VarSymbol *Sym) {
    Bindings[Name] = Sym; // shadowing allowed
  }

private:
  Scope *Parent;
  std::unordered_map<std::string, const VarSymbol *> Bindings;
};

class Checker {
public:
  Checker(const Program &P, const SourceManager &SM, DiagnosticEngine &Diags,
          SemaResult &R)
      : P(P), SM(SM), Diags(Diags), R(R) {}

  void run();

private:
  const Program &P;
  const SourceManager &SM;
  DiagnosticEngine &Diags;
  SemaResult &R;

  /// Functions currently being checked (for recursion detection).
  std::set<const FunDecl *> InProgress;
  std::set<const FunDecl *> Done;
  const FunDecl *CurrentFun = nullptr;

  const Type *err(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    return R.Types.never();
  }

  const Type *resolveTypeExpr(const TypeExpr *T);
  const Type *payloadTypeOf(const Handler &H);
  void checkFunction(const FunDecl &F);

  /// Checks a statement; mutates the scope with new bindings.
  void checkStmt(const Stmt *S, Scope &Sc);

  /// Checks an expression and records its type. \p Tail marks syntactic
  /// tail position for the recursion restriction.
  const Type *check(const Expr *E, Scope &Sc, bool Tail);
  const Type *checkCall(const Expr *E, Scope &Sc, bool Tail);
  const Type *checkPack(const Expr *E, Scope &Sc);
  const Type *checkUnpack(const Expr *E, Scope &Sc);
  const Type *checkRaise(const Expr *E, Scope &Sc);
  const Type *checkTry(const Expr *E, Scope &Sc, bool Tail);

  /// Checks the pack argument \p Lit against layout node \p N.
  bool checkPackArg(const Expr *Lit, const LayoutNode &N, Scope &Sc);

  /// Unifies two arm types (Never absorbs).
  const Type *unify(SourceLoc Loc, const Type *A, const Type *B,
                    const char *What);
};

const Type *Checker::resolveTypeExpr(const TypeExpr *T) {
  switch (T->Kind) {
  case TypeExprKind::Word:
    return R.Types.word();
  case TypeExprKind::Bool:
    return R.Types.boolean();
  case TypeExprKind::WordArray:
    if (T->ArrayLen == 0)
      return err(T->Loc, "word array length must be positive");
    return R.Types.wordTuple(T->ArrayLen);
  case TypeExprKind::Tuple: {
    std::vector<const Type *> Elems;
    for (const TypeExpr *E : T->Elems) {
      const Type *ET = resolveTypeExpr(E);
      if (ET->isNever())
        return ET;
      Elems.push_back(ET);
    }
    return R.Types.tuple(std::move(Elems));
  }
  case TypeExprKind::Record: {
    std::vector<std::string> Names;
    std::vector<const Type *> Elems;
    for (const TypeFieldAst &F : T->Fields) {
      const Type *FT = resolveTypeExpr(F.Type);
      if (FT->isNever())
        return FT;
      Names.push_back(F.Name);
      Elems.push_back(FT);
    }
    return R.Types.record(std::move(Names), std::move(Elems));
  }
  case TypeExprKind::Packed: {
    LayoutNode Node;
    if (!R.Layouts.resolve(T->Layout, Node))
      return R.Types.never();
    return R.Types.wordTuple(Node.packedWords());
  }
  case TypeExprKind::Unpacked: {
    LayoutNode Node;
    if (!R.Layouts.resolve(T->Layout, Node))
      return R.Types.never();
    const Type *U = R.Types.unpackedOf(Node);
    return U ? U : err(T->Loc, "layout has no unpacked form");
  }
  case TypeExprKind::Exn: {
    if (T->ExnRecordPayload) {
      std::vector<std::string> Names;
      std::vector<const Type *> Elems;
      for (const TypeFieldAst &F : T->Fields) {
        Names.push_back(F.Name);
        Elems.push_back(resolveTypeExpr(F.Type));
      }
      return R.Types.exn(R.Types.record(std::move(Names), std::move(Elems)));
    }
    std::vector<const Type *> Elems;
    for (const TypeExpr *E : T->Elems)
      Elems.push_back(resolveTypeExpr(E));
    return R.Types.exn(R.Types.tuple(std::move(Elems)));
  }
  }
  NOVA_UNREACHABLE("unhandled type expression");
}

const Type *Checker::payloadTypeOf(const Handler &H) {
  std::vector<std::string> Names;
  std::vector<const Type *> Elems;
  for (const auto &[Name, TE] : H.Params) {
    const Type *T = TE ? resolveTypeExpr(TE) : R.Types.word();
    Names.push_back(Name);
    Elems.push_back(T);
  }
  if (H.RecordPayload)
    return R.Types.record(std::move(Names), std::move(Elems));
  return R.Types.tuple(std::move(Elems));
}

const Type *Checker::unify(SourceLoc Loc, const Type *A, const Type *B,
                           const char *What) {
  if (A->isNever())
    return B;
  if (B->isNever())
    return A;
  if (A == B)
    return A;
  return err(Loc, formatf("%s have mismatched types: %s vs %s", What,
                          A->str().c_str(), B->str().c_str()));
}

void Checker::run() {
  // Layout declarations first (they are order-dependent).
  for (const LayoutDecl &D : P.LayoutDecls) {
    R.Layouts.addDecl(D);
    ++R.Stats.LayoutSpecs;
  }
  // Duplicate function names.
  std::set<std::string> Seen;
  for (const FunDecl &F : P.FunDecls)
    if (!Seen.insert(F.Name).second)
      Diags.error(F.Loc, formatf("function '%s' redefined", F.Name.c_str()));
  for (const FunDecl &F : P.FunDecls)
    checkFunction(F);
}

void Checker::checkFunction(const FunDecl &F) {
  if (Done.count(&F) || InProgress.count(&F))
    return;
  InProgress.insert(&F);
  const FunDecl *PrevFun = CurrentFun;
  CurrentFun = &F;

  Scope Sc;
  std::vector<const VarSymbol *> Params;
  for (const FunParam &Param : F.Params) {
    const Type *T = resolveTypeExpr(Param.Type);
    VarSymbol *Sym = R.newSymbol(Param.Name, T);
    Sc.bind(Param.Name, Sym);
    Params.push_back(Sym);
  }
  R.ParamSymbols[&F] = std::move(Params);

  if (F.Result)
    R.FunResultType[&F] = resolveTypeExpr(F.Result);

  const Type *BodyT = check(F.Body, Sc, /*Tail=*/true);

  auto It = R.FunResultType.find(&F);
  if (It != R.FunResultType.end()) {
    unify(F.Loc, It->second, BodyT, "function body and result annotation");
  } else {
    R.FunResultType[&F] = BodyT;
  }

  CurrentFun = PrevFun;
  InProgress.erase(&F);
  Done.insert(&F);
}

void Checker::checkStmt(const Stmt *S, Scope &Sc) {
  switch (S->Kind) {
  case StmtKind::Let: {
    const Type *Annot = S->Annot ? resolveTypeExpr(S->Annot) : nullptr;

    // Memory reads take their aggregate arity from the pattern (or the
    // annotation).
    if (S->Value->Kind == ExprKind::MemRead) {
      unsigned Count = 1;
      if (S->Pat.IsTuple)
        Count = S->Pat.Names.size();
      else if (Annot && Annot->kind() == TypeKind::Tuple)
        Count = Annot->elems().size();
      unsigned MaxCount = 8;
      if (S->Value->Space == MemSpace::Sdram && Count % 2 != 0)
        Diags.error(S->Loc, "sdram aggregates must be a multiple of two "
                            "registers");
      if (Count < 1 || Count > MaxCount)
        Diags.error(S->Loc,
                    formatf("memory aggregates are 1..8 registers, got %u",
                            Count));
      R.MemReadCount[S->Value] = Count;
      const Type *AddrT =
          check(S->Value->Lhs, Sc, /*Tail=*/false);
      if (!AddrT->isWord() && !AddrT->isNever())
        Diags.error(S->Value->Lhs->Loc, "memory address must be a word");
      R.ExprTypes[S->Value] =
          Count == 1 && !S->Pat.IsTuple ? R.Types.word()
                                        : R.Types.wordTuple(Count);
    } else {
      check(S->Value, Sc, /*Tail=*/false);
    }

    const Type *InitT = R.typeOf(S->Value);
    if (Annot && !InitT->isNever())
      InitT = unify(S->Loc, Annot, InitT, "let annotation and initializer");

    std::vector<const VarSymbol *> Syms;
    if (S->Pat.IsTuple) {
      if (InitT->kind() != TypeKind::Tuple ||
          InitT->elems().size() != S->Pat.Names.size()) {
        Diags.error(S->Pat.Loc,
                    formatf("tuple pattern of %zu names does not match "
                            "initializer type %s",
                            S->Pat.Names.size(), InitT->str().c_str()));
        // Bind names to word to limit cascading errors.
        for (const std::string &Name : S->Pat.Names) {
          VarSymbol *Sym = R.newSymbol(Name, R.Types.word());
          Sc.bind(Name, Sym);
          Syms.push_back(Sym);
        }
      } else {
        for (unsigned I = 0; I != S->Pat.Names.size(); ++I) {
          VarSymbol *Sym =
              R.newSymbol(S->Pat.Names[I], InitT->elems()[I]);
          if (S->Pat.Names[I] != "_")
            Sc.bind(S->Pat.Names[I], Sym);
          Syms.push_back(Sym);
        }
      }
    } else {
      VarSymbol *Sym = R.newSymbol(S->Pat.Names[0], InitT);
      if (S->Pat.Names[0] != "_")
        Sc.bind(S->Pat.Names[0], Sym);
      Syms.push_back(Sym);
    }
    R.LetSymbols[S] = std::move(Syms);
    return;
  }
  case StmtKind::Assign: {
    const VarSymbol *Sym = Sc.lookup(S->Name);
    if (!Sym) {
      Diags.error(S->Loc, formatf("assignment to undefined variable '%s'",
                                  S->Name.c_str()));
      return;
    }
    const Type *VT = check(S->Value, Sc, /*Tail=*/false);
    unify(S->Loc, Sym->Ty, VT, "assignment target and value");
    R.AssignTarget[S] = Sym;
    return;
  }
  case StmtKind::ExprStmt:
    check(S->Value, Sc, /*Tail=*/false);
    return;
  case StmtKind::Store: {
    const Type *AddrT = check(S->Addr, Sc, /*Tail=*/false);
    if (!AddrT->isWord() && !AddrT->isNever())
      Diags.error(S->Addr->Loc, "memory address must be a word");
    const Type *VT = check(S->Value, Sc, /*Tail=*/false);
    unsigned Count;
    if (VT->isWord()) {
      Count = 1;
    } else if (VT->kind() == TypeKind::Tuple && !VT->elems().empty() &&
               VT->flatWordCount() == VT->elems().size()) {
      Count = VT->elems().size();
    } else {
      Diags.error(S->Value->Loc,
                  formatf("store value must be a word or word tuple, got %s",
                          VT->str().c_str()));
      return;
    }
    if (S->Space == MemSpace::Sdram && Count % 2 != 0)
      Diags.error(S->Loc,
                  "sdram aggregates must be a multiple of two registers");
    if (Count > 8)
      Diags.error(S->Loc, "memory aggregates are 1..8 registers");
    return;
  }
  case StmtKind::While: {
    const Type *CT = check(S->Cond, Sc, /*Tail=*/false);
    if (!CT->isBool() && !CT->isNever())
      Diags.error(S->Cond->Loc, "loop condition must be bool");
    Scope Inner(&Sc);
    check(S->Body, Inner, /*Tail=*/false);
    return;
  }
  }
  NOVA_UNREACHABLE("unhandled statement kind");
}

const Type *Checker::check(const Expr *E, Scope &Sc, bool Tail) {
  const Type *T = [&]() -> const Type * {
    switch (E->Kind) {
    case ExprKind::IntLit:
      return R.Types.word();
    case ExprKind::BoolLit:
      return R.Types.boolean();
    case ExprKind::VarRef: {
      const VarSymbol *Sym = Sc.lookup(E->Name);
      if (!Sym)
        return err(E->Loc,
                   formatf("undefined variable '%s'", E->Name.c_str()));
      R.VarBinding[E] = Sym;
      return Sym->Ty;
    }
    case ExprKind::Unary: {
      const Type *A = check(E->Lhs, Sc, false);
      if (A->isNever())
        return A;
      switch (E->UOp) {
      case UnaryOp::Not:
        if (!A->isBool())
          return err(E->Loc, "'!' needs a bool operand");
        return A;
      case UnaryOp::BitNot:
      case UnaryOp::Neg:
        if (!A->isWord())
          return err(E->Loc, "operand must be a word");
        return A;
      }
      NOVA_UNREACHABLE("unhandled unary op");
    }
    case ExprKind::Binary: {
      const Type *A = check(E->Lhs, Sc, false);
      const Type *B = check(E->Rhs, Sc, false);
      if (A->isNever())
        return B->isNever() ? A : B->isBool() || B->isWord() ? B : A;
      switch (E->BOp) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::And:
      case BinaryOp::Or:
      case BinaryOp::Xor:
      case BinaryOp::Shl:
      case BinaryOp::Shr:
        if (!A->isWord() || !(B->isWord() || B->isNever()))
          return err(E->Loc, "arithmetic needs word operands");
        return R.Types.word();
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        if (A != B && !B->isNever())
          return err(E->Loc, "comparison operands must have the same type");
        if (!A->isWord() && !A->isBool())
          return err(E->Loc, "only words and bools can be compared");
        return R.Types.boolean();
      case BinaryOp::Lt:
      case BinaryOp::Gt:
      case BinaryOp::Le:
      case BinaryOp::Ge:
        if (!A->isWord() || !(B->isWord() || B->isNever()))
          return err(E->Loc, "ordering comparison needs word operands");
        return R.Types.boolean();
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr:
        if (!A->isBool() || !(B->isBool() || B->isNever()))
          return err(E->Loc, "logical operator needs bool operands");
        return R.Types.boolean();
      }
      NOVA_UNREACHABLE("unhandled binary op");
    }
    case ExprKind::Call:
      return checkCall(E, Sc, Tail);
    case ExprKind::RecordLit: {
      std::vector<std::string> Names;
      std::vector<const Type *> Elems;
      for (const Arg &A : E->Args) {
        Names.push_back(A.Name);
        Elems.push_back(check(A.Value, Sc, false));
      }
      return R.Types.record(std::move(Names), std::move(Elems));
    }
    case ExprKind::TupleLit: {
      std::vector<const Type *> Elems;
      for (const Expr *El : E->Elems)
        Elems.push_back(check(El, Sc, false));
      return R.Types.tuple(std::move(Elems));
    }
    case ExprKind::Field: {
      const Type *A = check(E->Lhs, Sc, false);
      if (A->isNever())
        return A;
      if (E->FieldIndex >= 0) {
        if (A->kind() != TypeKind::Tuple)
          return err(E->Loc, formatf("tuple index on non-tuple type %s",
                                     A->str().c_str()));
        if (static_cast<unsigned>(E->FieldIndex) >= A->elems().size())
          return err(E->Loc, formatf("tuple index %d out of range for %s",
                                     E->FieldIndex, A->str().c_str()));
        return A->elems()[E->FieldIndex];
      }
      if (A->kind() != TypeKind::Record)
        return err(E->Loc, formatf("field access on non-record type %s",
                                   A->str().c_str()));
      int Idx = A->fieldIndex(E->Name);
      if (Idx < 0)
        return err(E->Loc, formatf("no field '%s' in %s", E->Name.c_str(),
                                   A->str().c_str()));
      return A->elems()[Idx];
    }
    case ExprKind::If: {
      const Type *CT = check(E->Cond, Sc, false);
      if (!CT->isBool() && !CT->isNever())
        err(E->Cond->Loc, "if condition must be bool");
      Scope ThenSc(&Sc);
      const Type *TT = check(E->Then, ThenSc, Tail);
      if (!E->Else) {
        if (!TT->isUnit() && !TT->isNever())
          err(E->Loc, "if without else must have unit type");
        return R.Types.unit();
      }
      Scope ElseSc(&Sc);
      const Type *ET = check(E->Else, ElseSc, Tail);
      return unify(E->Loc, TT, ET, "if branches");
    }
    case ExprKind::Block: {
      Scope Inner(&Sc);
      for (const Stmt *S : E->Stmts)
        checkStmt(S, Inner);
      if (E->Tail)
        return check(E->Tail, Inner, Tail);
      return R.Types.unit();
    }
    case ExprKind::Pack:
      ++R.Stats.PackCount;
      return checkPack(E, Sc);
    case ExprKind::Unpack:
      ++R.Stats.UnpackCount;
      return checkUnpack(E, Sc);
    case ExprKind::MemRead:
      return err(E->Loc, "memory reads may only appear as the initializer "
                         "of a let binding");
    case ExprKind::Hash: {
      const Type *A = check(E->Lhs, Sc, false);
      if (!A->isWord() && !A->isNever())
        err(E->Lhs->Loc, "hash operand must be a word");
      return R.Types.word();
    }
    case ExprKind::BitTestSet: {
      const Type *A = check(E->Lhs, Sc, false);
      const Type *B = check(E->Rhs, Sc, false);
      if ((!A->isWord() && !A->isNever()) || (!B->isWord() && !B->isNever()))
        err(E->Loc, "sram_bit_test_set operands must be words");
      return R.Types.word();
    }
    case ExprKind::Raise:
      ++R.Stats.RaiseCount;
      return checkRaise(E, Sc);
    case ExprKind::Try:
      return checkTry(E, Sc, Tail);
    }
    NOVA_UNREACHABLE("unhandled expression kind");
  }();
  R.ExprTypes[E] = T;
  return T;
}

const Type *Checker::checkCall(const Expr *E, Scope &Sc, bool Tail) {
  const FunDecl *Callee = P.findFun(E->Name);
  if (!Callee)
    return err(E->Loc, formatf("call to undefined function '%s'",
                               E->Name.c_str()));
  R.CallTarget[E] = Callee;

  // Check arguments against declared parameter types.
  std::vector<const Type *> ParamTypes;
  for (const FunParam &Param : Callee->Params)
    ParamTypes.push_back(resolveTypeExpr(Param.Type));

  bool Named = !E->Args.empty() && !E->Args[0].Name.empty();
  if (Named) {
    std::set<std::string> Given;
    for (const Arg &A : E->Args) {
      if (!Given.insert(A.Name).second)
        err(A.Value->Loc,
            formatf("argument '%s' given twice", A.Name.c_str()));
      int Idx = -1;
      for (unsigned I = 0; I != Callee->Params.size(); ++I)
        if (Callee->Params[I].Name == A.Name)
          Idx = static_cast<int>(I);
      if (Idx < 0) {
        err(A.Value->Loc, formatf("function '%s' has no parameter '%s'",
                                  E->Name.c_str(), A.Name.c_str()));
        check(A.Value, Sc, false);
        continue;
      }
      const Type *AT = check(A.Value, Sc, false);
      unify(A.Value->Loc, ParamTypes[Idx], AT, "parameter and argument");
    }
    if (Given.size() != Callee->Params.size())
      err(E->Loc, formatf("call to '%s' provides %zu of %zu parameters",
                          E->Name.c_str(), Given.size(),
                          Callee->Params.size()));
  } else {
    if (E->Args.size() != Callee->Params.size())
      err(E->Loc, formatf("call to '%s' needs %zu arguments, got %zu",
                          E->Name.c_str(), Callee->Params.size(),
                          E->Args.size()));
    for (unsigned I = 0; I != E->Args.size(); ++I) {
      const Type *AT = check(E->Args[I].Value, Sc, false);
      if (I < ParamTypes.size())
        unify(E->Args[I].Value->Loc, ParamTypes[I], AT,
              "parameter and argument");
    }
  }

  // Result type: recurse into the callee if it has not been checked yet.
  if (!Done.count(Callee) && !InProgress.count(Callee))
    checkFunction(*Callee);
  if (InProgress.count(Callee)) {
    // (Mutually) recursive call: must be a tail call, and the callee needs
    // an explicit result annotation to break the cycle.
    if (!Tail)
      err(E->Loc, formatf("recursive call to '%s' must be in tail position "
                          "(Nova has no stack)",
                          E->Name.c_str()));
    auto It = R.FunResultType.find(Callee);
    if (It != R.FunResultType.end())
      return It->second;
    return err(E->Loc,
               formatf("recursive function '%s' needs a result annotation",
                       Callee->Name.c_str()));
  }
  return R.FunResultType.at(Callee);
}

bool Checker::checkPackArg(const Expr *Lit, const LayoutNode &N, Scope &Sc) {
  switch (N.NodeKind) {
  case LayoutNode::Kind::Leaf: {
    const Type *T = check(Lit, Sc, false);
    if (!T->isWord() && !T->isNever()) {
      err(Lit->Loc, formatf("bitfield '%s' needs a word value, got %s",
                            N.Name.c_str(), T->str().c_str()));
      return false;
    }
    return true;
  }
  case LayoutNode::Kind::Gap:
    NOVA_UNREACHABLE("gap cannot be packed directly");
  case LayoutNode::Kind::Group: {
    if (Lit->Kind != ExprKind::RecordLit) {
      err(Lit->Loc, "pack needs a record literal for a layout group");
      return false;
    }
    bool Ok = true;
    std::set<std::string> Given;
    for (const Arg &A : Lit->Args) {
      const LayoutNode *Child = nullptr;
      for (const LayoutNode &C : N.Children)
        if (C.Name == A.Name)
          Child = &C;
      if (!Child) {
        err(A.Value->Loc,
            formatf("layout has no field '%s'", A.Name.c_str()));
        Ok = false;
        continue;
      }
      Given.insert(A.Name);
      Ok &= checkPackArg(A.Value, *Child, Sc);
    }
    for (const LayoutNode &C : N.Children) {
      if (C.NodeKind == LayoutNode::Kind::Gap || C.Name.empty())
        continue;
      if (!Given.count(C.Name)) {
        err(Lit->Loc,
            formatf("pack is missing a value for field '%s'",
                    C.Name.c_str()));
        Ok = false;
      }
    }
    return Ok;
  }
  case LayoutNode::Kind::Overlay: {
    // Exactly one alternative must be chosen.
    if (Lit->Kind != ExprKind::RecordLit || Lit->Args.size() != 1) {
      err(Lit->Loc, "pack must choose exactly one overlay alternative");
      return false;
    }
    const Arg &A = Lit->Args[0];
    for (const LayoutNode &C : N.Children)
      if (C.Name == A.Name)
        return checkPackArg(A.Value, C, Sc);
    err(A.Value->Loc,
        formatf("overlay has no alternative '%s'", A.Name.c_str()));
    return false;
  }
  }
  NOVA_UNREACHABLE("unhandled layout node kind");
}

const Type *Checker::checkPack(const Expr *E, Scope &Sc) {
  LayoutNode Node;
  if (!R.Layouts.resolve(E->Layout, Node))
    return R.Types.never();
  const LayoutNode *Stored = R.storeLayout(std::move(Node));
  R.PackLayout[E] = Stored;
  checkPackArg(E->Lhs, *Stored, Sc);
  return R.Types.wordTuple(Stored->packedWords());
}

const Type *Checker::checkUnpack(const Expr *E, Scope &Sc) {
  LayoutNode Node;
  if (!R.Layouts.resolve(E->Layout, Node))
    return R.Types.never();
  const LayoutNode *Stored = R.storeLayout(std::move(Node));
  R.PackLayout[E] = Stored;
  const Type *ArgT = check(E->Lhs, Sc, false);
  const Type *WantT = R.Types.wordTuple(Stored->packedWords());
  if (Stored->packedWords() == 1 && (ArgT->isWord() || ArgT->isNever())) {
    // A one-word packed value may be a plain word.
  } else if (ArgT != WantT && !ArgT->isNever()) {
    err(E->Lhs->Loc,
        formatf("unpack argument has type %s but the layout needs %s",
                ArgT->str().c_str(), WantT->str().c_str()));
  }
  const Type *U = R.Types.unpackedOf(*Stored);
  return U ? U : err(E->Loc, "layout has no unpacked form");
}

const Type *Checker::checkRaise(const Expr *E, Scope &Sc) {
  const VarSymbol *Sym = Sc.lookup(E->Name);
  if (!Sym)
    return err(E->Loc,
               formatf("undefined exception '%s'", E->Name.c_str()));
  if (!Sym->Ty->isExn())
    return err(E->Loc, formatf("'%s' is not an exception (type %s)",
                               E->Name.c_str(), Sym->Ty->str().c_str()));
  R.RaiseTarget[E] = Sym;

  const Type *Payload = Sym->Ty->exnPayload();
  bool Named = !E->Args.empty() && !E->Args[0].Name.empty();
  if (Named || Payload->kind() == TypeKind::Record) {
    if (Payload->kind() != TypeKind::Record) {
      return err(E->Loc, "exception payload is not a record");
    }
    std::set<std::string> Given;
    for (const Arg &A : E->Args) {
      int Idx = Payload->fieldIndex(A.Name);
      const Type *AT = check(A.Value, Sc, false);
      if (Idx < 0) {
        err(A.Value->Loc, formatf("exception payload has no field '%s'",
                                  A.Name.c_str()));
        continue;
      }
      Given.insert(A.Name);
      unify(A.Value->Loc, Payload->elems()[Idx], AT,
            "payload field and argument");
    }
    if (Given.size() != Payload->elems().size())
      err(E->Loc, "raise must provide every payload field");
  } else {
    if (E->Args.size() != Payload->elems().size()) {
      err(E->Loc, formatf("raise needs %zu payload values, got %zu",
                          Payload->elems().size(), E->Args.size()));
    }
    for (unsigned I = 0; I != E->Args.size(); ++I) {
      const Type *AT = check(E->Args[I].Value, Sc, false);
      if (I < Payload->elems().size())
        unify(E->Args[I].Value->Loc, Payload->elems()[I], AT,
              "payload element and argument");
    }
  }
  return R.Types.never();
}

const Type *Checker::checkTry(const Expr *E, Scope &Sc, bool Tail) {
  // Handlers introduce their exception names over the body.
  Scope BodySc(&Sc);
  for (const Handler &H : E->Handlers) {
    ++R.Stats.HandleCount;
    const Type *Payload = payloadTypeOf(H);
    VarSymbol *ExnSym = R.newSymbol(H.ExnName, R.Types.exn(Payload));
    BodySc.bind(H.ExnName, ExnSym);
    R.HandlerExnSymbol[&H] = ExnSym;
  }
  const Type *T = check(E->Body, BodySc, Tail);
  for (const Handler &H : E->Handlers) {
    Scope HandlerSc(&Sc);
    std::vector<const VarSymbol *> Syms;
    const Type *Payload = R.HandlerExnSymbol[&H]->Ty->exnPayload();
    for (unsigned I = 0; I != H.Params.size(); ++I) {
      VarSymbol *Sym =
          R.newSymbol(H.Params[I].first, Payload->elems()[I]);
      HandlerSc.bind(H.Params[I].first, Sym);
      Syms.push_back(Sym);
    }
    R.HandlerParamSymbols[&H] = std::move(Syms);
    const Type *HT = check(H.Body, HandlerSc, Tail);
    T = unify(H.Loc, T, HT, "try body and handler");
  }
  return T;
}

} // namespace

void nova::runSema(const Program &P, const SourceManager &SM,
                   DiagnosticEngine &Diags, SemaResult &Result) {
  unsigned Before = Diags.errorCount();
  Checker C(P, SM, Diags, Result);
  C.run();

  // Nova line count for Figure 5 (wc-style, including blanks/comments).
  for (unsigned B = 0; B != SM.numBuffers(); ++B) {
    std::string_view Text = SM.bufferContents(B);
    unsigned Lines = 0;
    for (char Ch : Text)
      if (Ch == '\n')
        ++Lines;
    if (!Text.empty() && Text.back() != '\n')
      ++Lines;
    Result.Stats.NovaLines += Lines;
  }
  Result.Success = Diags.errorCount() == Before;
}
