//===- Parser.h - Nova recursive-descent parser ------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST of Ast.h. Errors are
/// reported to the DiagnosticEngine with panic-mode recovery at statement
/// and declaration boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_PARSER_H
#define NOVA_PARSER_H

#include "nova/Ast.h"
#include "nova/Lexer.h"

namespace nova {

class Parser {
public:
  Parser(const SourceManager &SM, uint32_t BufferId, AstArena &Arena,
         DiagnosticEngine &Diags);

  /// Parses the whole buffer; check Diags.hasErrors() afterwards.
  Program parseProgram();

private:
  // Token cursor.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeDecl();
  void synchronizeStmt();

  // Declarations.
  void parseLayoutDecl(Program &P);
  void parseFunDecl(Program &P);

  // Layouts.
  const LayoutExpr *parseLayoutExpr();
  const LayoutExpr *parseLayoutPrimary();
  bool parseLayoutField(LayoutFieldAst &Out);

  // Types.
  const TypeExpr *parseTypeExpr();

  // Statements and expressions.
  const Expr *parseBlock();
  const Stmt *parseLet();
  const Stmt *parseWhile();
  const Expr *parseExpr();
  const Expr *parseBinary(int MinPrec);
  const Expr *parseUnary();
  const Expr *parsePostfix();
  const Expr *parsePrimary();
  const Expr *parseIf();
  const Expr *parseTry();
  const Expr *parseRecordLit();
  std::vector<Arg> parseArgs(TokenKind Open, TokenKind Close);
  const Expr *parseArmExpr(); ///< if/else arm: block or expression

  const SourceManager &SM;
  AstArena &Arena;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  unsigned Cursor = 0;
};

} // namespace nova

#endif // NOVA_PARSER_H
