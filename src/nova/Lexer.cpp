//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace nova;

const char *nova::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier: return "identifier";
  case TokenKind::Integer:    return "integer literal";
  case TokenKind::KwLayout:   return "'layout'";
  case TokenKind::KwOverlay:  return "'overlay'";
  case TokenKind::KwFun:      return "'fun'";
  case TokenKind::KwLet:      return "'let'";
  case TokenKind::KwIf:       return "'if'";
  case TokenKind::KwElse:     return "'else'";
  case TokenKind::KwWhile:    return "'while'";
  case TokenKind::KwTry:      return "'try'";
  case TokenKind::KwHandle:   return "'handle'";
  case TokenKind::KwRaise:    return "'raise'";
  case TokenKind::KwPack:     return "'pack'";
  case TokenKind::KwUnpack:   return "'unpack'";
  case TokenKind::KwTrue:     return "'true'";
  case TokenKind::KwFalse:    return "'false'";
  case TokenKind::KwWord:     return "'word'";
  case TokenKind::KwBool:     return "'bool'";
  case TokenKind::KwExn:      return "'exn'";
  case TokenKind::KwPacked:   return "'packed'";
  case TokenKind::KwUnpacked: return "'unpacked'";
  case TokenKind::KwHalt:     return "'halt'";
  case TokenKind::LBrace:     return "'{'";
  case TokenKind::RBrace:     return "'}'";
  case TokenKind::LParen:     return "'('";
  case TokenKind::RParen:     return "')'";
  case TokenKind::LBracket:   return "'['";
  case TokenKind::RBracket:   return "']'";
  case TokenKind::Comma:      return "','";
  case TokenKind::Semi:       return "';'";
  case TokenKind::Colon:      return "':'";
  case TokenKind::Dot:        return "'.'";
  case TokenKind::HashHash:   return "'##'";
  case TokenKind::LeftArrow:  return "'<-'";
  case TokenKind::ThinArrow:  return "'->'";
  case TokenKind::Assign:     return "'='";
  case TokenKind::EqEq:       return "'=='";
  case TokenKind::NotEq:      return "'!='";
  case TokenKind::Less:       return "'<'";
  case TokenKind::Greater:    return "'>'";
  case TokenKind::LessEq:     return "'<='";
  case TokenKind::GreaterEq:  return "'>='";
  case TokenKind::Plus:       return "'+'";
  case TokenKind::Minus:      return "'-'";
  case TokenKind::Amp:        return "'&'";
  case TokenKind::Pipe:       return "'|'";
  case TokenKind::Caret:      return "'^'";
  case TokenKind::Tilde:      return "'~'";
  case TokenKind::Bang:       return "'!'";
  case TokenKind::Shl:        return "'<<'";
  case TokenKind::Shr:        return "'>>'";
  case TokenKind::AmpAmp:     return "'&&'";
  case TokenKind::PipePipe:   return "'||'";
  case TokenKind::Eof:        return "end of file";
  case TokenKind::Error:      return "invalid token";
  }
  return "token";
}

static TokenKind keywordKind(std::string_view Word) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"layout", TokenKind::KwLayout},   {"overlay", TokenKind::KwOverlay},
      {"fun", TokenKind::KwFun},         {"let", TokenKind::KwLet},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"try", TokenKind::KwTry},
      {"handle", TokenKind::KwHandle},   {"raise", TokenKind::KwRaise},
      {"pack", TokenKind::KwPack},       {"unpack", TokenKind::KwUnpack},
      {"true", TokenKind::KwTrue},       {"false", TokenKind::KwFalse},
      {"word", TokenKind::KwWord},       {"bool", TokenKind::KwBool},
      {"exn", TokenKind::KwExn},         {"packed", TokenKind::KwPacked},
      {"unpacked", TokenKind::KwUnpacked}, {"halt", TokenKind::KwHalt},
  };
  auto It = Keywords.find(Word);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

Lexer::Lexer(const SourceManager &SM, uint32_t BufferId,
             DiagnosticEngine &Diags)
    : SM(SM), BufferId(BufferId), Diags(Diags),
      Text(SM.bufferContents(BufferId)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

char Lexer::advance() { return Pos < Text.size() ? Text[Pos++] : '\0'; }

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  ++Pos;
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Text.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Text.size() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t Start = Pos;
      Pos += 2;
      while (Pos < Text.size() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (Pos >= Text.size()) {
        Diags.error({BufferId, Start}, "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, uint32_t Begin) {
  Token T;
  T.Kind = Kind;
  T.Loc = {BufferId, Begin};
  T.Text = Text.substr(Begin, Pos - Begin);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  uint32_t Begin = Pos;
  if (Pos >= Text.size())
    return makeToken(TokenKind::Eof, Begin);

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      ++Pos;
    Token T = makeToken(TokenKind::Identifier, Begin);
    T.Kind = keywordKind(T.Text);
    return T;
  }
  if (std::isdigit(static_cast<unsigned char>(C))) {
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      ++Pos;
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    } else if (C == '0' && (peek() == 'b' || peek() == 'B')) {
      ++Pos;
      while (peek() == '0' || peek() == '1')
        ++Pos;
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    Token T = makeToken(TokenKind::Integer, Begin);
    if (auto V = parseInteger(T.Text); V && *V <= 0xFFFFFFFFull) {
      T.IntValue = *V;
    } else {
      Diags.error(T.Loc, "integer literal does not fit in a 32-bit word");
      T.Kind = TokenKind::Error;
    }
    return T;
  }

  switch (C) {
  case '{': return makeToken(TokenKind::LBrace, Begin);
  case '}': return makeToken(TokenKind::RBrace, Begin);
  case '(': return makeToken(TokenKind::LParen, Begin);
  case ')': return makeToken(TokenKind::RParen, Begin);
  case '[': return makeToken(TokenKind::LBracket, Begin);
  case ']': return makeToken(TokenKind::RBracket, Begin);
  case ',': return makeToken(TokenKind::Comma, Begin);
  case ';': return makeToken(TokenKind::Semi, Begin);
  case ':': return makeToken(TokenKind::Colon, Begin);
  case '.': return makeToken(TokenKind::Dot, Begin);
  case '+': return makeToken(TokenKind::Plus, Begin);
  case '^': return makeToken(TokenKind::Caret, Begin);
  case '~': return makeToken(TokenKind::Tilde, Begin);
  case '#':
    if (match('#'))
      return makeToken(TokenKind::HashHash, Begin);
    break;
  case '-':
    if (match('>'))
      return makeToken(TokenKind::ThinArrow, Begin);
    return makeToken(TokenKind::Minus, Begin);
  case '=':
    return makeToken(match('=') ? TokenKind::EqEq : TokenKind::Assign, Begin);
  case '!':
    return makeToken(match('=') ? TokenKind::NotEq : TokenKind::Bang, Begin);
  case '<':
    if (match('-'))
      return makeToken(TokenKind::LeftArrow, Begin);
    if (match('<'))
      return makeToken(TokenKind::Shl, Begin);
    return makeToken(match('=') ? TokenKind::LessEq : TokenKind::Less, Begin);
  case '>':
    if (match('>'))
      return makeToken(TokenKind::Shr, Begin);
    return makeToken(match('=') ? TokenKind::GreaterEq : TokenKind::Greater,
                     Begin);
  case '&':
    return makeToken(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Begin);
  case '|':
    return makeToken(match('|') ? TokenKind::PipePipe : TokenKind::Pipe,
                     Begin);
  default:
    break;
  }
  Diags.error({BufferId, Begin},
              formatf("unexpected character '%c'", C));
  return makeToken(TokenKind::Error, Begin);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
