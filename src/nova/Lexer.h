//===- Lexer.h - Nova lexer -------------------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for Nova. Comments are `//` to end of line and
/// `/* ... */` (non-nesting).
///
//===----------------------------------------------------------------------===//

#ifndef NOVA_LEXER_H
#define NOVA_LEXER_H

#include "nova/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace nova {

/// Lexes one buffer into a token stream (terminated by an Eof token).
class Lexer {
public:
  Lexer(const SourceManager &SM, uint32_t BufferId, DiagnosticEngine &Diags);

  /// Lexes the whole buffer. Malformed input produces Error tokens plus
  /// diagnostics but never stops the scan.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind, uint32_t Begin);

  const SourceManager &SM;
  uint32_t BufferId;
  DiagnosticEngine &Diags;
  std::string_view Text;
  uint32_t Pos = 0;
};

} // namespace nova

#endif // NOVA_LEXER_H
