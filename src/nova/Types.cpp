//===- Types.cpp ----------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "nova/Types.h"

#include "nova/Layout.h"
#include "support/Debug.h"

#include <cassert>
#include <sstream>

using namespace nova;

unsigned Type::flatWordCount() const {
  switch (Kind) {
  case TypeKind::Word:
  case TypeKind::Bool:
    return 1;
  case TypeKind::Never:
  case TypeKind::Exn:
    return 0;
  case TypeKind::Tuple:
  case TypeKind::Record: {
    unsigned N = 0;
    for (const Type *E : Elems)
      N += E->flatWordCount();
    return N;
  }
  }
  NOVA_UNREACHABLE("unhandled type kind");
}

std::string Type::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case TypeKind::Word:
    return "word";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Never:
    return "never";
  case TypeKind::Tuple: {
    OS << '(';
    for (unsigned I = 0; I != Elems.size(); ++I)
      OS << (I ? ", " : "") << Elems[I]->str();
    OS << ')';
    return OS.str();
  }
  case TypeKind::Record: {
    OS << '[';
    for (unsigned I = 0; I != Elems.size(); ++I)
      OS << (I ? ", " : "") << Names[I] << " : " << Elems[I]->str();
    OS << ']';
    return OS.str();
  }
  case TypeKind::Exn:
    OS << "exn " << (Elems.empty() ? "()" : Elems[0]->str());
    return OS.str();
  }
  NOVA_UNREACHABLE("unhandled type kind");
}

TypeContext::TypeContext() {
  Type W;
  W.Kind = TypeKind::Word;
  WordTy = intern(std::move(W));
  Type B;
  B.Kind = TypeKind::Bool;
  BoolTy = intern(std::move(B));
  Type N;
  N.Kind = TypeKind::Never;
  NeverTy = intern(std::move(N));
  Type U;
  U.Kind = TypeKind::Tuple;
  UnitTy = intern(std::move(U));
}

const Type *TypeContext::intern(Type T) {
  // Children are already interned, so their pointer identities form a
  // canonical key.
  std::ostringstream Key;
  Key << static_cast<int>(T.Kind);
  for (const Type *E : T.Elems)
    Key << ':' << E;
  for (const std::string &Name : T.Names)
    Key << ';' << Name;
  auto It = Pool.find(Key.str());
  if (It != Pool.end())
    return It->second.get();
  auto Owned = std::make_unique<Type>(std::move(T));
  const Type *Ptr = Owned.get();
  Pool.emplace(Key.str(), std::move(Owned));
  return Ptr;
}

const Type *TypeContext::tuple(std::vector<const Type *> Elems) {
  if (Elems.empty())
    return UnitTy;
  Type T;
  T.Kind = TypeKind::Tuple;
  T.Elems = std::move(Elems);
  return intern(std::move(T));
}

const Type *TypeContext::record(std::vector<std::string> Names,
                                std::vector<const Type *> Elems) {
  assert(Names.size() == Elems.size() && "record shape mismatch");
  Type T;
  T.Kind = TypeKind::Record;
  T.Names = std::move(Names);
  T.Elems = std::move(Elems);
  return intern(std::move(T));
}

const Type *TypeContext::exn(const Type *Payload) {
  Type T;
  T.Kind = TypeKind::Exn;
  T.Elems = {Payload};
  return intern(std::move(T));
}

const Type *TypeContext::wordTuple(unsigned N) {
  return tuple(std::vector<const Type *>(N, WordTy));
}

const Type *TypeContext::unpackedOf(const LayoutNode &Layout) {
  switch (Layout.NodeKind) {
  case LayoutNode::Kind::Leaf:
    return word();
  case LayoutNode::Kind::Gap:
    return nullptr; // gaps have no unpacked representation
  case LayoutNode::Kind::Group:
  case LayoutNode::Kind::Overlay: {
    std::vector<std::string> Names;
    std::vector<const Type *> Elems;
    for (const LayoutNode &C : Layout.Children) {
      const Type *CT = unpackedOf(C);
      if (!CT)
        continue; // skip gaps
      // Anonymous sub-groups (from ## concatenation) are flattened into
      // the parent record.
      if (C.Name.empty() && CT->kind() == TypeKind::Record) {
        for (unsigned I = 0; I != CT->elems().size(); ++I) {
          Names.push_back(CT->fieldNames()[I]);
          Elems.push_back(CT->elems()[I]);
        }
        continue;
      }
      if (C.Name.empty())
        continue; // anonymous leaf: inaccessible, treated as padding
      Names.push_back(C.Name);
      Elems.push_back(CT);
    }
    return record(std::move(Names), std::move(Elems));
  }
  }
  NOVA_UNREACHABLE("unhandled layout node kind");
}
