//===- Checksum.h - Internet ones'-complement checksum ----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RFC 1071 checksum over big-endian packed words — the oracle for the
/// checksum maintenance the paper's AES/Kasumi/NAT applications perform.
///
//===----------------------------------------------------------------------===//

#ifndef REF_CHECKSUM_H
#define REF_CHECKSUM_H

#include <cstdint>
#include <vector>

namespace nova {
namespace ref {

/// Sums the 16-bit halves of each word with end-around carry; returns
/// the folded 16-bit sum (not complemented).
inline uint16_t onesComplementSum(const std::vector<uint32_t> &Words) {
  uint64_t Sum = 0;
  for (uint32_t W : Words)
    Sum += (W >> 16) + (W & 0xFFFF);
  while (Sum >> 16)
    Sum = (Sum & 0xFFFF) + (Sum >> 16);
  return static_cast<uint16_t>(Sum);
}

/// The IPv4 header checksum: complement of the folded sum.
inline uint16_t ipChecksum(const std::vector<uint32_t> &HeaderWords) {
  return static_cast<uint16_t>(~onesComplementSum(HeaderWords));
}

} // namespace ref
} // namespace nova

#endif // REF_CHECKSUM_H
