//===- Kasumi.h - Kasumi-structured reference cipher ------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cipher with exactly KASUMI's structure (3GPP TS 35.202): an 8-round
/// Feistel network over 64-bit blocks with FL (AND/OR/rotate) and FO
/// (three FI rounds) functions, FI built from S9 and S7 substitution
/// boxes, and a 128-bit key schedule of rotated subkeys.
///
/// Substitution note (documented in DESIGN.md): the 3GPP S7/S9 box
/// contents are specification constants we do not embed; the boxes here
/// are deterministic bijections generated from a fixed-feedback LFSR
/// shuffle. The compiler-facing behaviour the paper measures — table
/// sizes, lookup counts, rounds, register pressure — is identical, and
/// the Nova application is validated bit-for-bit against this reference
/// using the same generated tables.
///
//===----------------------------------------------------------------------===//

#ifndef REF_KASUMI_H
#define REF_KASUMI_H

#include <array>
#include <cstdint>

namespace nova {
namespace ref {

class Kasumi {
public:
  /// \p Key is the 128-bit key as 4 big-endian words.
  explicit Kasumi(const std::array<uint32_t, 4> &Key);

  /// Encrypts one 64-bit block (hi, lo).
  std::pair<uint32_t, uint32_t> encrypt(uint32_t Hi, uint32_t Lo) const;

  /// Decrypts one 64-bit block (inverse of encrypt).
  std::pair<uint32_t, uint32_t> decrypt(uint32_t Hi, uint32_t Lo) const;

  /// S-boxes: S7 has 128 entries (7-bit), S9 has 512 entries (9-bit).
  static const std::array<uint16_t, 128> &s7();
  static const std::array<uint16_t, 512> &s9();

  /// Per-round subkeys, each 16 bits: KL1,KL2,KO1,KO2,KO3,KI1,KI2,KI3.
  struct RoundKeys {
    uint16_t KL1, KL2, KO1, KO2, KO3, KI1, KI2, KI3;
  };
  const std::array<RoundKeys, 8> &roundKeys() const { return Rk; }

private:
  uint32_t fo(uint32_t X, const RoundKeys &K) const;
  uint32_t fl(uint32_t X, const RoundKeys &K) const;
  static uint16_t fi(uint16_t X, uint16_t KI);

  std::array<RoundKeys, 8> Rk;
};

} // namespace ref
} // namespace nova

#endif // REF_KASUMI_H
