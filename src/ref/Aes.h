//===- Aes.h - Reference AES-128 (FIPS-197) ---------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch AES-128 encryptor used as the oracle for the Nova AES
/// application (paper Section 11, "AES Rijndael"). The S-box is computed
/// from first principles (multiplicative inverse in GF(2^8) plus the
/// affine transform), and the T-tables (the "fast C reference
/// implementation" style the paper's Nova code mirrors) are derived from
/// it, so no opaque constant tables are embedded.
///
//===----------------------------------------------------------------------===//

#ifndef REF_AES_H
#define REF_AES_H

#include <array>
#include <cstdint>

namespace nova {
namespace ref {

/// AES-128 encryption tables and round keys.
class Aes128 {
public:
  /// \p Key is the 16-byte cipher key, big-endian packed into 4 words.
  explicit Aes128(const std::array<uint32_t, 4> &Key);

  /// Encrypts one 16-byte block (4 big-endian words), T-table style.
  std::array<uint32_t, 4> encrypt(const std::array<uint32_t, 4> &In) const;

  /// The 44 round-key words of the expanded key schedule.
  const std::array<uint32_t, 44> &roundKeys() const { return Rk; }

  /// The four encryption T-tables (256 words each):
  /// Te0[x] = (2*S, S, S, 3*S), rotated right by one byte per table.
  static const std::array<std::array<uint32_t, 256>, 4> &tables();

  /// The plain S-box as 256 words (for the final round).
  static const std::array<uint32_t, 256> &sbox();

private:
  std::array<uint32_t, 44> Rk;
};

} // namespace ref
} // namespace nova

#endif // REF_AES_H
