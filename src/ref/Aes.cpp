//===- Aes.cpp - Reference AES-128 ----------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ref/Aes.h"

using namespace nova;
using namespace nova::ref;

namespace {

/// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1.
uint8_t gmul(uint8_t A, uint8_t B) {
  uint8_t P = 0;
  for (int I = 0; I != 8; ++I) {
    if (B & 1)
      P ^= A;
    bool Hi = A & 0x80;
    A <<= 1;
    if (Hi)
      A ^= 0x1B;
    B >>= 1;
  }
  return P;
}

/// S-box from first principles: inverse in GF(2^8), then the affine map.
std::array<uint8_t, 256> computeSbox() {
  // Build inverses by brute force (the field is tiny).
  std::array<uint8_t, 256> Inv{};
  for (unsigned X = 1; X != 256; ++X)
    for (unsigned Y = 1; Y != 256; ++Y)
      if (gmul(static_cast<uint8_t>(X), static_cast<uint8_t>(Y)) == 1) {
        Inv[X] = static_cast<uint8_t>(Y);
        break;
      }
  std::array<uint8_t, 256> S{};
  for (unsigned X = 0; X != 256; ++X) {
    uint8_t B = Inv[X];
    uint8_t R = 0;
    for (int I = 0; I != 8; ++I) {
      uint8_t Bit = (B >> I) & 1;
      Bit ^= (B >> ((I + 4) & 7)) & 1;
      Bit ^= (B >> ((I + 5) & 7)) & 1;
      Bit ^= (B >> ((I + 6) & 7)) & 1;
      Bit ^= (B >> ((I + 7) & 7)) & 1;
      Bit ^= (0x63 >> I) & 1;
      R |= Bit << I;
    }
    S[X] = R;
  }
  return S;
}

const std::array<uint8_t, 256> &sboxBytes() {
  static const std::array<uint8_t, 256> S = computeSbox();
  return S;
}

std::array<std::array<uint32_t, 256>, 4> computeTables() {
  const auto &S = sboxBytes();
  std::array<std::array<uint32_t, 256>, 4> Te{};
  for (unsigned X = 0; X != 256; ++X) {
    uint8_t s = S[X];
    uint32_t T0 = (static_cast<uint32_t>(gmul(s, 2)) << 24) |
                  (static_cast<uint32_t>(s) << 16) |
                  (static_cast<uint32_t>(s) << 8) |
                  static_cast<uint32_t>(gmul(s, 3));
    Te[0][X] = T0;
    Te[1][X] = (T0 >> 8) | (T0 << 24);
    Te[2][X] = (T0 >> 16) | (T0 << 16);
    Te[3][X] = (T0 >> 24) | (T0 << 8);
  }
  return Te;
}

uint32_t subWord(uint32_t W) {
  const auto &S = sboxBytes();
  return (static_cast<uint32_t>(S[(W >> 24) & 0xFF]) << 24) |
         (static_cast<uint32_t>(S[(W >> 16) & 0xFF]) << 16) |
         (static_cast<uint32_t>(S[(W >> 8) & 0xFF]) << 8) |
         static_cast<uint32_t>(S[W & 0xFF]);
}

} // namespace

const std::array<std::array<uint32_t, 256>, 4> &Aes128::tables() {
  static const std::array<std::array<uint32_t, 256>, 4> Te =
      computeTables();
  return Te;
}

const std::array<uint32_t, 256> &Aes128::sbox() {
  static const std::array<uint32_t, 256> S = [] {
    std::array<uint32_t, 256> W{};
    for (unsigned X = 0; X != 256; ++X)
      W[X] = sboxBytes()[X];
    return W;
  }();
  return S;
}

Aes128::Aes128(const std::array<uint32_t, 4> &Key) {
  for (unsigned I = 0; I != 4; ++I)
    Rk[I] = Key[I];
  uint8_t Rcon = 1;
  for (unsigned I = 4; I != 44; ++I) {
    uint32_t T = Rk[I - 1];
    if (I % 4 == 0) {
      T = subWord((T << 8) | (T >> 24)) ^
          (static_cast<uint32_t>(Rcon) << 24);
      Rcon = gmul(Rcon, 2);
    }
    Rk[I] = Rk[I - 4] ^ T;
  }
}

std::array<uint32_t, 4>
Aes128::encrypt(const std::array<uint32_t, 4> &In) const {
  const auto &Te = tables();
  const auto &S = sbox();
  uint32_t S0 = In[0] ^ Rk[0];
  uint32_t S1 = In[1] ^ Rk[1];
  uint32_t S2 = In[2] ^ Rk[2];
  uint32_t S3 = In[3] ^ Rk[3];
  for (unsigned Round = 1; Round != 10; ++Round) {
    uint32_t T0 = Te[0][S0 >> 24] ^ Te[1][(S1 >> 16) & 0xFF] ^
                  Te[2][(S2 >> 8) & 0xFF] ^ Te[3][S3 & 0xFF] ^
                  Rk[4 * Round];
    uint32_t T1 = Te[0][S1 >> 24] ^ Te[1][(S2 >> 16) & 0xFF] ^
                  Te[2][(S3 >> 8) & 0xFF] ^ Te[3][S0 & 0xFF] ^
                  Rk[4 * Round + 1];
    uint32_t T2 = Te[0][S2 >> 24] ^ Te[1][(S3 >> 16) & 0xFF] ^
                  Te[2][(S0 >> 8) & 0xFF] ^ Te[3][S1 & 0xFF] ^
                  Rk[4 * Round + 2];
    uint32_t T3 = Te[0][S3 >> 24] ^ Te[1][(S0 >> 16) & 0xFF] ^
                  Te[2][(S1 >> 8) & 0xFF] ^ Te[3][S2 & 0xFF] ^
                  Rk[4 * Round + 3];
    S0 = T0;
    S1 = T1;
    S2 = T2;
    S3 = T3;
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  auto FinalWord = [&](uint32_t A, uint32_t B, uint32_t C, uint32_t D,
                       uint32_t K) {
    uint32_t W = (S[A >> 24] << 24) | (S[(B >> 16) & 0xFF] << 16) |
                 (S[(C >> 8) & 0xFF] << 8) | S[D & 0xFF];
    return W ^ K;
  };
  std::array<uint32_t, 4> Out;
  Out[0] = FinalWord(S0, S1, S2, S3, Rk[40]);
  Out[1] = FinalWord(S1, S2, S3, S0, Rk[41]);
  Out[2] = FinalWord(S2, S3, S0, S1, Rk[42]);
  Out[3] = FinalWord(S3, S0, S1, S2, Rk[43]);
  return Out;
}
