//===- Kasumi.cpp ---------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ref/Kasumi.h"

#include <cstddef>
#include <utility>

using namespace nova;
using namespace nova::ref;

namespace {

/// Fisher-Yates over [0, N) driven by a SplitMix64 stream with a fixed
/// seed: a deterministic bijection standing in for the 3GPP constants.
template <size_t N>
std::array<uint16_t, N> generatedBox(uint64_t Seed) {
  std::array<uint16_t, N> Box;
  for (size_t I = 0; I != N; ++I)
    Box[I] = static_cast<uint16_t>(I);
  uint64_t State = Seed;
  auto Next = [&State] {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  };
  for (size_t I = N - 1; I != 0; --I)
    std::swap(Box[I], Box[Next() % (I + 1)]);
  return Box;
}

uint16_t rol16(uint16_t X, unsigned R) {
  return static_cast<uint16_t>((X << R) | (X >> (16 - R)));
}

} // namespace

const std::array<uint16_t, 128> &Kasumi::s7() {
  static const std::array<uint16_t, 128> Box =
      generatedBox<128>(0x53375337u);
  return Box;
}

const std::array<uint16_t, 512> &Kasumi::s9() {
  static const std::array<uint16_t, 512> Box =
      generatedBox<512>(0x59395939u);
  return Box;
}

Kasumi::Kasumi(const std::array<uint32_t, 4> &Key) {
  // 3GPP schedule shape: K split into eight 16-bit words; K' = K xor
  // constant; round keys are rotations/selections.
  uint16_t K[8], KP[8];
  static const uint16_t C[8] = {0x0123, 0x4567, 0x89AB, 0xCDEF,
                                0xFEDC, 0xBA98, 0x7654, 0x3210};
  for (unsigned I = 0; I != 8; ++I) {
    uint32_t W = Key[I / 2];
    K[I] = static_cast<uint16_t>(I % 2 == 0 ? W >> 16 : W & 0xFFFF);
    KP[I] = K[I] ^ C[I];
  }
  for (unsigned R = 0; R != 8; ++R) {
    Rk[R].KL1 = rol16(K[R % 8], 1);
    Rk[R].KL2 = KP[(R + 2) % 8];
    Rk[R].KO1 = rol16(K[(R + 1) % 8], 5);
    Rk[R].KO2 = rol16(K[(R + 5) % 8], 8);
    Rk[R].KO3 = rol16(K[(R + 6) % 8], 13);
    Rk[R].KI1 = KP[(R + 4) % 8];
    Rk[R].KI2 = KP[(R + 3) % 8];
    Rk[R].KI3 = KP[(R + 7) % 8];
  }
}

uint16_t Kasumi::fi(uint16_t X, uint16_t KI) {
  // 16-bit FI: 9-bit left half through S9, 7-bit right half through S7,
  // two rounds, exactly the KASUMI wiring.
  uint16_t Nine = static_cast<uint16_t>(X >> 7);
  uint16_t Seven = static_cast<uint16_t>(X & 0x7F);
  Nine = s9()[Nine] ^ Seven;
  Seven = static_cast<uint16_t>(s7()[Seven] ^ (Nine & 0x7F));
  Seven ^= KI >> 9;
  Nine ^= KI & 0x1FF;
  Nine = s9()[Nine & 0x1FF] ^ Seven;
  Seven = static_cast<uint16_t>(s7()[Seven & 0x7F] ^ (Nine & 0x7F));
  return static_cast<uint16_t>((Seven << 9) | (Nine & 0x1FF));
}

uint32_t Kasumi::fo(uint32_t X, const RoundKeys &K) const {
  uint16_t L = static_cast<uint16_t>(X >> 16);
  uint16_t R = static_cast<uint16_t>(X & 0xFFFF);
  L = static_cast<uint16_t>(fi(static_cast<uint16_t>(L ^ K.KO1), K.KI1) ^ R);
  R = static_cast<uint16_t>(fi(static_cast<uint16_t>(R ^ K.KO2), K.KI2) ^ L);
  L = static_cast<uint16_t>(fi(static_cast<uint16_t>(L ^ K.KO3), K.KI3) ^ R);
  return (static_cast<uint32_t>(R) << 16) | L;
}

uint32_t Kasumi::fl(uint32_t X, const RoundKeys &K) const {
  uint16_t L = static_cast<uint16_t>(X >> 16);
  uint16_t R = static_cast<uint16_t>(X & 0xFFFF);
  R ^= rol16(static_cast<uint16_t>(L & K.KL1), 1);
  L ^= rol16(static_cast<uint16_t>(R | K.KL2), 1);
  return (static_cast<uint32_t>(L) << 16) | R;
}

std::pair<uint32_t, uint32_t> Kasumi::encrypt(uint32_t Hi,
                                              uint32_t Lo) const {
  uint32_t L = Hi, R = Lo;
  for (unsigned Round = 0; Round != 8; ++Round) {
    const RoundKeys &K = Rk[Round];
    uint32_t F = Round % 2 == 0 ? fo(fl(L, K), K) : fl(fo(L, K), K);
    uint32_t NewL = R ^ F;
    R = L;
    L = NewL;
  }
  return {L, R};
}

std::pair<uint32_t, uint32_t> Kasumi::decrypt(uint32_t Hi,
                                              uint32_t Lo) const {
  uint32_t L = Hi, R = Lo;
  for (unsigned Round = 8; Round-- > 0;) {
    const RoundKeys &K = Rk[Round];
    uint32_t F = Round % 2 == 0 ? fo(fl(R, K), K) : fl(fo(R, K), K);
    uint32_t NewR = L ^ F;
    L = R;
    R = NewR;
  }
  return {L, R};
}
