//===- Opt.h - CPS optimizer ------------------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CPS optimization pipeline of paper Section 4.4: constant folding,
/// global constant propagation (including continuation labels, which
/// resolves exception values to known handlers), eta reduction,
/// contraction (inlining of called-once continuations), useless-variable
/// elimination, dead code elimination, memory-read trimming, and full
/// inlining of user functions in non-tail position (de-proceduralization,
/// Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef CPS_OPT_H
#define CPS_OPT_H

#include "cps/Ir.h"

namespace nova {
namespace cps {

struct OptStats {
  unsigned ConstantsFolded = 0;
  unsigned BranchesFolded = 0;
  unsigned FunctionsInlined = 0;
  unsigned Contracted = 0;
  unsigned EtaReduced = 0;
  unsigned DeadValues = 0;
  unsigned DeadFunctions = 0;
  unsigned ReadsTrimmed = 0;
  unsigned ParamsResolved = 0;
  unsigned ParamsRemoved = 0;
  unsigned Rounds = 0;
};

/// Runs the pipeline to fixpoint (bounded). Returns pass statistics.
OptStats optimize(CpsProgram &P);

/// After optimize(), every reachable App must target a known label for
/// instruction selection to proceed; returns false if an indirect callee
/// survives.
bool allCalleesKnown(const CpsProgram &P);

/// Rewrites the program into static single use form for memory-write
/// operands (paper Sections 4.5 and 10): after this pass, every use of a
/// temporary as a store operand is that temporary's only use; clones are
/// introduced right after the original's definition.
unsigned makeStaticSingleUse(CpsProgram &P);

} // namespace cps
} // namespace nova

#endif // CPS_OPT_H
