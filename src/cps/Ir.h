//===- Ir.h - Continuation-passing-style IR ---------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's CPS intermediate representation (paper Section 4).
/// Every value is one machine word; records and tuples were flattened
/// during conversion. Continuations are ordinary functions; `App` is the
/// only transfer of control, so the IR is SSA by construction (each
/// ValueId has exactly one binding site).
///
//===----------------------------------------------------------------------===//

#ifndef CPS_IR_H
#define CPS_IR_H

#include "nova/Ast.h" // for MemSpace

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace nova {
namespace cps {

using ValueId = uint32_t;
using FuncId = uint32_t;
inline constexpr FuncId NoFunc = ~0u;

/// Word-level ALU operations (matching the IXP micro-engine).
enum class PrimOp : uint8_t { Add, Sub, And, Or, Xor, Shl, Shr, Not };

/// Branch comparisons; all unsigned 32-bit.
enum class CmpOp : uint8_t { Eq, Ne, Lt, Gt, Le, Ge };

/// True when \p Op is a shift whose count operand \p B falls outside the
/// architectural range [0, 32). Out-of-range shifts are well-defined in
/// this language (they yield 0, see evalPrim), but the simulator's strict
/// mode can be asked to trap on them instead (C's UB would hide here).
inline bool shiftOutOfRange(PrimOp Op, uint32_t B) {
  return (Op == PrimOp::Shl || Op == PrimOp::Shr) && B >= 32;
}

/// THE definition of ALU semantics, shared by the CPS evaluator, the
/// constant folder, instruction selection, and both simulator modes so
/// the stages cannot drift apart (DESIGN.md "ALU and shift semantics").
/// All arithmetic is unsigned 32-bit with wraparound; shift counts of 32
/// or more yield 0 rather than C's undefined behavior.
inline uint32_t evalPrim(PrimOp Op, uint32_t A, uint32_t B) {
  switch (Op) {
  case PrimOp::Add: return A + B;
  case PrimOp::Sub: return A - B;
  case PrimOp::And: return A & B;
  case PrimOp::Or:  return A | B;
  case PrimOp::Xor: return A ^ B;
  case PrimOp::Shl: return B >= 32 ? 0 : A << B;
  case PrimOp::Shr: return B >= 32 ? 0 : A >> B;
  case PrimOp::Not: return ~A;
  }
  return 0;
}

/// Shared comparison semantics (unsigned), same rationale as evalPrim.
inline bool evalCmp(CmpOp Op, uint32_t A, uint32_t B) {
  switch (Op) {
  case CmpOp::Eq: return A == B;
  case CmpOp::Ne: return A != B;
  case CmpOp::Lt: return A < B;
  case CmpOp::Gt: return A > B;
  case CmpOp::Le: return A <= B;
  case CmpOp::Ge: return A >= B;
  }
  return false;
}

/// An operand: a temporary, an immediate constant, or a function label
/// (labels appear when exceptions/continuations are passed as values; the
/// optimizer resolves them before instruction selection).
struct Atom {
  enum class Kind : uint8_t { Temp, Const, Label } K = Kind::Const;
  ValueId Id = 0;      ///< Temp
  uint32_t Value = 0;  ///< Const
  FuncId Func = NoFunc;///< Label

  static Atom temp(ValueId Id) { return {Kind::Temp, Id, 0, NoFunc}; }
  static Atom constant(uint32_t V) { return {Kind::Const, 0, V, NoFunc}; }
  static Atom label(FuncId F) { return {Kind::Label, 0, 0, F}; }

  bool isTemp() const { return K == Kind::Temp; }
  bool isConst() const { return K == Kind::Const; }
  bool isLabel() const { return K == Kind::Label; }
  bool operator==(const Atom &O) const {
    return K == O.K && Id == O.Id && Value == O.Value && Func == O.Func;
  }
};

enum class ExpKind : uint8_t {
  Prim,       ///< Results[0] = Prim(Args...); Cont
  MemRead,    ///< Results[0..n) = Space[Args[0]]; Cont
  MemWrite,   ///< Space[Args[0]] <- Args[1..]; Cont
  Hash,       ///< Results[0] = hash(Args[0]); Cont
  BitTestSet, ///< Results[0] = bit_test_set(Space[Args[0]], Args[1]); Cont
  Clone,      ///< Results[0..k) = clone(Args[0]); Cont  (inserted by SSU)
  Fix,        ///< defines the (mutually recursive) functions FixFuncs; Cont
  Branch,     ///< if (Args[0] Cmp Args[1]) Then else Else
  App,        ///< jump/call Callee(Args...)
  Halt,       ///< program exit with Args as results
};

/// One CPS expression node. Tree-structured: straight-line nodes chain
/// through Cont, Branch forks into Then/Else, App and Halt are leaves.
struct Exp {
  ExpKind Kind = ExpKind::Halt;
  PrimOp Prim = PrimOp::Add;
  CmpOp Cmp = CmpOp::Eq;
  MemSpace Space = MemSpace::Sram;
  std::vector<Atom> Args;
  std::vector<ValueId> Results;
  std::vector<FuncId> FixFuncs; ///< Fix: functions scoped at this point
  Atom Callee;        ///< App: Label or Temp
  Exp *Cont = nullptr;
  Exp *Then = nullptr;
  Exp *Else = nullptr;
};

/// Why a function exists; drives inlining policy and diagnostics.
enum class FuncKind : uint8_t {
  UserFun,  ///< a source-level Nova function
  Join,     ///< merge continuation from if/try
  Loop,     ///< while-loop header
  Handler,  ///< exception handler
  ReturnPt, ///< return continuation of a non-tail call
};

struct Function {
  FuncId Id = NoFunc;
  std::string Name;
  FuncKind Kind = FuncKind::UserFun;
  std::vector<ValueId> Params;
  Exp *Body = nullptr;
};

/// A whole CPS program. Owns every Exp node.
class CpsProgram {
public:
  Exp *newExp(ExpKind Kind) {
    Arena.emplace_back();
    Arena.back().Kind = Kind;
    return &Arena.back();
  }

  ValueId newValue(std::string DebugName = "") {
    if (!DebugName.empty())
      ValueNames.resize(NextValue + 1), ValueNames[NextValue] =
                                            std::move(DebugName);
    return NextValue++;
  }

  FuncId newFunction(std::string Name, FuncKind Kind) {
    Function F;
    F.Id = static_cast<FuncId>(Funcs.size());
    F.Name = std::move(Name);
    F.Kind = Kind;
    Funcs.push_back(std::move(F));
    return Funcs.back().Id;
  }

  Function &func(FuncId Id) { return Funcs[Id]; }
  const Function &func(FuncId Id) const { return Funcs[Id]; }
  std::vector<Function> &functions() { return Funcs; }
  const std::vector<Function> &functions() const { return Funcs; }

  FuncId Entry = NoFunc;
  unsigned numValues() const { return NextValue; }

  /// Debug name of a value ("" if none was recorded).
  std::string valueName(ValueId Id) const {
    return Id < ValueNames.size() ? ValueNames[Id] : "";
  }

  /// Renders the program as text (for tests and -debug dumps).
  std::string print() const;

private:
  std::deque<Exp> Arena;
  std::vector<Function> Funcs;
  std::vector<std::string> ValueNames;
  ValueId NextValue = 0;
};

const char *primOpName(PrimOp Op);
const char *cmpOpName(CmpOp Op);
const char *memSpaceName(MemSpace Space);

} // namespace cps
} // namespace nova

#endif // CPS_IR_H
