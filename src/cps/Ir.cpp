//===- Ir.cpp - CPS printer -----------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "cps/Ir.h"

#include "support/Debug.h"

#include <functional>
#include <set>
#include <sstream>

using namespace nova;
using namespace nova::cps;

const char *cps::primOpName(PrimOp Op) {
  switch (Op) {
  case PrimOp::Add: return "add";
  case PrimOp::Sub: return "sub";
  case PrimOp::And: return "and";
  case PrimOp::Or:  return "or";
  case PrimOp::Xor: return "xor";
  case PrimOp::Shl: return "shl";
  case PrimOp::Shr: return "shr";
  case PrimOp::Not: return "not";
  }
  return "?";
}

const char *cps::cmpOpName(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq: return "==";
  case CmpOp::Ne: return "!=";
  case CmpOp::Lt: return "<";
  case CmpOp::Gt: return ">";
  case CmpOp::Le: return "<=";
  case CmpOp::Ge: return ">=";
  }
  return "?";
}

const char *cps::memSpaceName(MemSpace Space) {
  switch (Space) {
  case MemSpace::Sram:    return "sram";
  case MemSpace::Sdram:   return "sdram";
  case MemSpace::Scratch: return "scratch";
  }
  return "?";
}

namespace {

class Printer {
public:
  explicit Printer(const CpsProgram &P) : P(P) {}

  std::string run() {
    // Fix-declared functions are printed at their declaration point; only
    // roots (entry + top-level) are printed here.
    std::set<FuncId> FixDeclared;
    std::function<void(const Exp *)> Scan = [&](const Exp *E) {
      for (; E;) {
        if (E->Kind == ExpKind::Fix)
          for (FuncId F : E->FixFuncs) {
            FixDeclared.insert(F);
            Scan(P.func(F).Body);
          }
        if (E->Kind == ExpKind::Branch) {
          Scan(E->Then);
          Scan(E->Else);
          return;
        }
        E = E->Cont;
      }
    };
    for (const Function &F : P.functions())
      if (F.Body)
        Scan(F.Body);
    for (const Function &F : P.functions()) {
      if (!F.Body || FixDeclared.count(F.Id))
        continue;
      OS << (F.Id == P.Entry ? "entry " : "fun ") << 'f' << F.Id << '_'
         << F.Name << '(';
      for (unsigned I = 0; I != F.Params.size(); ++I)
        OS << (I ? ", " : "") << val(F.Params[I]);
      OS << ") {\n";
      print(F.Body, 1);
      OS << "}\n";
    }
    return OS.str();
  }

private:
  std::string val(ValueId Id) const {
    std::string Name = P.valueName(Id);
    return "v" + std::to_string(Id) + (Name.empty() ? "" : "." + Name);
  }

  std::string atom(const Atom &A) const {
    switch (A.K) {
    case Atom::Kind::Temp:
      return val(A.Id);
    case Atom::Kind::Const: {
      std::ostringstream S;
      S << A.Value;
      return S.str();
    }
    case Atom::Kind::Label:
      return "&f" + std::to_string(A.Func) + "_" + P.func(A.Func).Name;
    }
    return "?";
  }

  void indent(int N) {
    for (int I = 0; I != N; ++I)
      OS << "  ";
  }

  void print(const Exp *E, int Ind) {
    for (; E; ) {
      indent(Ind);
      switch (E->Kind) {
      case ExpKind::Prim:
        OS << val(E->Results[0]) << " = " << primOpName(E->Prim);
        for (const Atom &A : E->Args)
          OS << ' ' << atom(A);
        OS << '\n';
        E = E->Cont;
        continue;
      case ExpKind::MemRead: {
        OS << '(';
        for (unsigned I = 0; I != E->Results.size(); ++I)
          OS << (I ? ", " : "") << val(E->Results[I]);
        OS << ") = " << memSpaceName(E->Space) << '[' << atom(E->Args[0])
           << "]\n";
        E = E->Cont;
        continue;
      }
      case ExpKind::MemWrite: {
        OS << memSpaceName(E->Space) << '[' << atom(E->Args[0]) << "] <- (";
        for (unsigned I = 1; I != E->Args.size(); ++I)
          OS << (I > 1 ? ", " : "") << atom(E->Args[I]);
        OS << ")\n";
        E = E->Cont;
        continue;
      }
      case ExpKind::Hash:
        OS << val(E->Results[0]) << " = hash " << atom(E->Args[0]) << '\n';
        E = E->Cont;
        continue;
      case ExpKind::BitTestSet:
        OS << val(E->Results[0]) << " = bit_test_set "
           << memSpaceName(E->Space) << '[' << atom(E->Args[0]) << "] "
           << atom(E->Args[1]) << '\n';
        E = E->Cont;
        continue;
      case ExpKind::Clone: {
        OS << '(';
        for (unsigned I = 0; I != E->Results.size(); ++I)
          OS << (I ? ", " : "") << val(E->Results[I]);
        OS << ") = clone " << atom(E->Args[0]) << '\n';
        E = E->Cont;
        continue;
      }
      case ExpKind::Fix:
        for (FuncId F : E->FixFuncs) {
          const Function &Fn = P.func(F);
          OS << "fix f" << F << '_' << Fn.Name << '(';
          for (unsigned I = 0; I != Fn.Params.size(); ++I)
            OS << (I ? ", " : "") << val(Fn.Params[I]);
          OS << ") {\n";
          print(Fn.Body, Ind + 1);
          indent(Ind);
          OS << "}\n";
          indent(Ind);
        }
        OS << "in\n";
        E = E->Cont;
        continue;
      case ExpKind::Branch:
        OS << "if " << atom(E->Args[0]) << ' ' << cmpOpName(E->Cmp) << ' '
           << atom(E->Args[1]) << " {\n";
        print(E->Then, Ind + 1);
        indent(Ind);
        OS << "} else {\n";
        print(E->Else, Ind + 1);
        indent(Ind);
        OS << "}\n";
        return;
      case ExpKind::App: {
        OS << "jump " << atom(E->Callee) << '(';
        for (unsigned I = 0; I != E->Args.size(); ++I)
          OS << (I ? ", " : "") << atom(E->Args[I]);
        OS << ")\n";
        return;
      }
      case ExpKind::Halt: {
        OS << "halt(";
        for (unsigned I = 0; I != E->Args.size(); ++I)
          OS << (I ? ", " : "") << atom(E->Args[I]);
        OS << ")\n";
        return;
      }
      }
      NOVA_UNREACHABLE("unhandled exp kind");
    }
  }

  const CpsProgram &P;
  std::ostringstream OS;
};

} // namespace

std::string CpsProgram::print() const { return Printer(*this).run(); }
