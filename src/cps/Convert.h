//===- Convert.h - AST to CPS conversion ------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts the type-checked AST into CPS (paper Section 4.1):
///  - records and tuples are flattened, each leaf field becoming an
///    independent CPS value;
///  - booleans are encoded as control flow and only materialized as 0/1
///    when used as data;
///  - assignments are eliminated by threading the assigned variables
///    through join/loop continuations, yielding SSA by construction;
///  - exceptions become continuation values (labels) passed as arguments;
///  - pack/unpack become shift/mask primitive sequences planned by the
///    layout engine.
///
//===----------------------------------------------------------------------===//

#ifndef CPS_CONVERT_H
#define CPS_CONVERT_H

#include "cps/Ir.h"
#include "nova/Sema.h"

namespace nova {
namespace cps {

/// Converts a checked program. The entry point is the function named
/// "main". Returns false (with diagnostics) if conversion is impossible.
bool convertToCps(const Program &Ast, const SemaResult &Sema,
                  DiagnosticEngine &Diags, CpsProgram &Out);

} // namespace cps
} // namespace nova

#endif // CPS_CONVERT_H
