//===- Eval.h - Reference CPS interpreter -----------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for CPS programs. It defines the language's
/// observable semantics and serves as the oracle against which the
/// optimizer, the allocator, and the micro-engine simulator are tested:
/// source -> CPS -> evaluate must equal source -> ... -> simulate.
///
//===----------------------------------------------------------------------===//

#ifndef CPS_EVAL_H
#define CPS_EVAL_H

#include "cps/Ir.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nova {
namespace cps {

/// Word-addressed memories of the evaluation environment.
struct EvalMemory {
  std::map<uint32_t, uint32_t> Sram;
  std::map<uint32_t, uint32_t> Sdram;
  std::map<uint32_t, uint32_t> Scratch;

  /// The backing map for \p S, or nullptr on an out-of-enum space — the
  /// evaluator reports that as an error rather than silently coercing to
  /// SRAM (mirrors sim::Memory::space; asserts in debug builds).
  std::map<uint32_t, uint32_t> *space(MemSpace S) {
    switch (S) {
    case MemSpace::Sram:    return &Sram;
    case MemSpace::Sdram:   return &Sdram;
    case MemSpace::Scratch: return &Scratch;
    }
    assert(false && "invalid MemSpace");
    return nullptr;
  }

  /// Non-inserting read (absent words are 0), matching sim::Memory::load
  /// so a differential comparison of final images sees identical maps.
  static uint32_t load(const std::map<uint32_t, uint32_t> &M, uint32_t A) {
    auto It = M.find(A);
    return It == M.end() ? 0 : It->second;
  }
};

struct EvalResult {
  bool Ok = false;
  std::string Error;
  std::vector<uint32_t> HaltValues;
  unsigned Steps = 0;
};

/// Runs the program entry with \p Args (one word per entry parameter).
/// Memory is read and mutated in place. \p MaxSteps bounds execution.
EvalResult evaluate(const CpsProgram &P, const std::vector<uint32_t> &Args,
                    EvalMemory &Mem, unsigned MaxSteps = 1'000'000);

} // namespace cps
} // namespace nova

#endif // CPS_EVAL_H
