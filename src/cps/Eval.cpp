//===- Eval.cpp - Reference CPS interpreter -------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The interpreter implements full closure semantics: a Fix node creates
// closures capturing the current environment, and a jump enters the
// callee's captured environment. Compiled Nova never *needs* heap
// closures (the paper's restriction guarantees it), but the unoptimized
// CPS of a tail-recursive function still instantiates a fresh return
// continuation per activation, so the oracle must be closure-correct to
// judge every stage of the pipeline.
//
//===----------------------------------------------------------------------===//

#include "cps/Eval.h"

#include "support/HwHash.h"
#include "support/StringUtils.h"

#include <memory>

using namespace nova;
using namespace nova::cps;

namespace {

struct Frame;
using FrameRef = std::shared_ptr<Frame>;

/// A runtime value: a word, possibly carrying a closure.
struct Value {
  uint32_t Data = 0;
  FuncId Func = NoFunc;
  FrameRef Env; ///< captured environment when Func != NoFunc
};

/// One environment frame; chains to the lexical parent.
struct Frame {
  std::map<ValueId, Value> Vals;
  std::map<FuncId, Value> Funcs; ///< closures created by a Fix here
  FrameRef Parent;
};

const Value *lookupValue(const FrameRef &Env, ValueId Id) {
  for (const Frame *F = Env.get(); F; F = F->Parent.get()) {
    auto It = F->Vals.find(Id);
    if (It != F->Vals.end())
      return &It->second;
  }
  return nullptr;
}

const Value *lookupClosure(const FrameRef &Env, FuncId Id) {
  for (const Frame *F = Env.get(); F; F = F->Parent.get()) {
    auto It = F->Funcs.find(Id);
    if (It != F->Funcs.end())
      return &It->second;
  }
  return nullptr;
}

struct Machine {
  const CpsProgram &P;
  EvalMemory &Mem;
  EvalResult Result;

  Machine(const CpsProgram &P, EvalMemory &Mem) : P(P), Mem(Mem) {}

  Value atom(const FrameRef &Env, const Atom &A) {
    switch (A.K) {
    case Atom::Kind::Temp: {
      const Value *V = lookupValue(Env, A.Id);
      if (V)
        return *V;
      Result.Error = formatf("use of unbound value v%u", A.Id);
      return {};
    }
    case Atom::Kind::Const:
      return {A.Value, NoFunc, nullptr};
    case Atom::Kind::Label: {
      if (const Value *C = lookupClosure(Env, A.Func))
        return *C;
      // Top-level functions are closed.
      return {0, A.Func, nullptr};
    }
    }
    return {};
  }

  // ALU and comparison semantics are the shared definitions in cps/Ir.h;
  // the oracle must agree with the simulator by construction.
  static uint32_t evalPrim(PrimOp Op, uint32_t A, uint32_t B) {
    return cps::evalPrim(Op, A, B);
  }

  static bool evalCmp(CmpOp Op, uint32_t A, uint32_t B) {
    return cps::evalCmp(Op, A, B);
  }

  void run(const std::vector<uint32_t> &Args, unsigned MaxSteps) {
    const Function &Entry = P.func(P.Entry);
    if (Args.size() != Entry.Params.size()) {
      Result.Error = formatf("entry takes %zu args, got %zu",
                             Entry.Params.size(), Args.size());
      return;
    }
    FrameRef Env = std::make_shared<Frame>();
    for (unsigned I = 0; I != Args.size(); ++I)
      Env->Vals[Entry.Params[I]] = {Args[I], NoFunc, nullptr};

    const Exp *E = Entry.Body;
    while (E) {
      if (++Result.Steps > MaxSteps) {
        Result.Error = "step limit exceeded (diverging program?)";
        return;
      }
      if (!Result.Error.empty())
        return;
      switch (E->Kind) {
      case ExpKind::Prim: {
        uint32_t A = atom(Env, E->Args[0]).Data;
        uint32_t B = E->Args.size() > 1 ? atom(Env, E->Args[1]).Data : 0;
        Env->Vals[E->Results[0]] = {evalPrim(E->Prim, A, B), NoFunc,
                                    nullptr};
        E = E->Cont;
        break;
      }
      case ExpKind::MemRead: {
        uint32_t Addr = atom(Env, E->Args[0]).Data;
        auto *M = Mem.space(E->Space);
        if (!M) {
          Result.Error = "memory read from an invalid space";
          return;
        }
        for (unsigned I = 0; I != E->Results.size(); ++I)
          Env->Vals[E->Results[I]] = {EvalMemory::load(*M, Addr + I),
                                      NoFunc, nullptr};
        E = E->Cont;
        break;
      }
      case ExpKind::MemWrite: {
        uint32_t Addr = atom(Env, E->Args[0]).Data;
        auto *M = Mem.space(E->Space);
        if (!M) {
          Result.Error = "memory write to an invalid space";
          return;
        }
        for (unsigned I = 1; I != E->Args.size(); ++I)
          (*M)[Addr + I - 1] = atom(Env, E->Args[I]).Data;
        E = E->Cont;
        break;
      }
      case ExpKind::Hash:
        Env->Vals[E->Results[0]] = {hwHash(atom(Env, E->Args[0]).Data),
                                    NoFunc, nullptr};
        E = E->Cont;
        break;
      case ExpKind::BitTestSet: {
        uint32_t Addr = atom(Env, E->Args[0]).Data;
        uint32_t Bits = atom(Env, E->Args[1]).Data;
        auto *M = Mem.space(E->Space);
        if (!M) {
          Result.Error = "bit-test-set in an invalid space";
          return;
        }
        uint32_t Old = EvalMemory::load(*M, Addr);
        (*M)[Addr] = Old | Bits;
        Env->Vals[E->Results[0]] = {Old, NoFunc, nullptr};
        E = E->Cont;
        break;
      }
      case ExpKind::Clone: {
        Value V = atom(Env, E->Args[0]);
        for (ValueId R : E->Results)
          Env->Vals[R] = V;
        E = E->Cont;
        break;
      }
      case ExpKind::Fix: {
        // Closures capture the frame that contains them (enabling mutual
        // recursion within one Fix).
        FrameRef Fresh = std::make_shared<Frame>();
        Fresh->Parent = Env;
        for (FuncId F : E->FixFuncs)
          Fresh->Funcs[F] = {0, F, Fresh};
        Env = Fresh;
        E = E->Cont;
        break;
      }
      case ExpKind::Branch: {
        uint32_t A = atom(Env, E->Args[0]).Data;
        uint32_t B = atom(Env, E->Args[1]).Data;
        E = evalCmp(E->Cmp, A, B) ? E->Then : E->Else;
        break;
      }
      case ExpKind::App: {
        Value Callee = atom(Env, E->Callee);
        if (Callee.Func == NoFunc) {
          Result.Error = "indirect jump to a non-label value";
          return;
        }
        const Function &Fn = P.func(Callee.Func);
        if (!Fn.Body) {
          Result.Error = formatf("jump to dead function f%u_%s",
                                 Callee.Func, Fn.Name.c_str());
          return;
        }
        if (Fn.Params.size() != E->Args.size()) {
          Result.Error = formatf("arity mismatch jumping to f%u_%s",
                                 Callee.Func, Fn.Name.c_str());
          return;
        }
        FrameRef Fresh = std::make_shared<Frame>();
        Fresh->Parent = Callee.Env;
        for (unsigned I = 0; I != E->Args.size(); ++I)
          Fresh->Vals[Fn.Params[I]] = atom(Env, E->Args[I]);
        Env = Fresh;
        E = Fn.Body;
        break;
      }
      case ExpKind::Halt:
        for (const Atom &A : E->Args)
          Result.HaltValues.push_back(atom(Env, A).Data);
        Result.Ok = Result.Error.empty();
        return;
      }
    }
    if (Result.Error.empty())
      Result.Error = "fell off the end of an expression chain";
  }
};

} // namespace

EvalResult cps::evaluate(const CpsProgram &P,
                         const std::vector<uint32_t> &Args, EvalMemory &Mem,
                         unsigned MaxSteps) {
  if (P.Entry == NoFunc) {
    EvalResult R;
    R.Error = "program has no entry";
    return R;
  }
  Machine M(P, Mem);
  M.run(Args, MaxSteps);
  return M.Result;
}
