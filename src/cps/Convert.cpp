//===- Convert.cpp - AST to CPS conversion --------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "cps/Convert.h"

#include "nova/Layout.h"
#include "support/Debug.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <set>

using namespace nova;
using namespace nova::cps;

namespace {

/// Flattened value: one Atom per leaf slot (words/bools are Const or Temp
/// atoms, exceptions are Label or Temp atoms).
using FlatVal = std::vector<Atom>;

/// Number of flattened slots a value of type \p T occupies.
unsigned slotCount(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Word:
  case TypeKind::Bool:
  case TypeKind::Exn:
    return 1;
  case TypeKind::Never:
    return 0;
  case TypeKind::Tuple:
  case TypeKind::Record: {
    unsigned N = 0;
    for (const Type *E : T->elems())
      N += slotCount(E);
    return N;
  }
  }
  NOVA_UNREACHABLE("unhandled type kind");
}

/// Slot offset of field \p Index within tuple/record type \p T.
unsigned slotOffset(const Type *T, unsigned Index) {
  unsigned Off = 0;
  for (unsigned I = 0; I != Index; ++I)
    Off += slotCount(T->elems()[I]);
  return Off;
}

/// Collects the unpacked leaves of a layout in record-flattening order
/// (DFS, skipping gaps and anonymous leaves; every overlay alternative is
/// included).
void collectUnpackLeaves(const LayoutNode &N,
                         std::vector<const LayoutNode *> &Out) {
  for (const LayoutNode &C : N.Children) {
    switch (C.NodeKind) {
    case LayoutNode::Kind::Gap:
      break;
    case LayoutNode::Kind::Leaf:
      if (!C.Name.empty())
        Out.push_back(&C);
      break;
    case LayoutNode::Kind::Group:
    case LayoutNode::Kind::Overlay:
      collectUnpackLeaves(C, Out);
      break;
    }
  }
}

/// Collects variables assigned anywhere inside an expression/statement
/// subtree (used to compute join-continuation parameters).
class AssignedCollector {
public:
  AssignedCollector(const SemaResult &Sema,
                    std::set<const VarSymbol *> &Out)
      : Sema(Sema), Out(Out) {}

  void visit(const Expr *E) {
    if (!E)
      return;
    visit(E->Lhs);
    visit(E->Rhs);
    visit(E->Cond);
    visit(E->Then);
    visit(E->Else);
    visit(E->Tail);
    visit(E->Body);
    for (const Arg &A : E->Args)
      visit(A.Value);
    for (const Expr *El : E->Elems)
      visit(El);
    for (const Stmt *S : E->Stmts)
      visit(S);
    for (const Handler &H : E->Handlers)
      visit(H.Body);
  }

  void visit(const Stmt *S) {
    if (!S)
      return;
    if (S->Kind == StmtKind::Assign) {
      auto It = Sema.AssignTarget.find(S);
      if (It != Sema.AssignTarget.end())
        Out.insert(It->second);
    }
    visit(S->Value);
    visit(S->Addr);
    visit(S->Cond);
    visit(S->Body);
  }

private:
  const SemaResult &Sema;
  std::set<const VarSymbol *> &Out;
};

class Converter {
public:
  Converter(const Program &Ast, const SemaResult &Sema,
            DiagnosticEngine &Diags, CpsProgram &P)
      : Ast(Ast), Sema(Sema), Diags(Diags), P(P) {}

  bool run();

private:
  using MetaK = std::function<Exp *(FlatVal)>;
  using ArmK = std::function<Exp *()>;

  const Program &Ast;
  const SemaResult &Sema;
  DiagnosticEngine &Diags;
  CpsProgram &P;

  std::map<const VarSymbol *, FlatVal> Env;
  std::map<const FunDecl *, FuncId> FunIds;
  std::map<const FunDecl *, ValueId> RetContOf;
  bool Failed = false;

  const Type *typeOf(const Expr *E) const { return Sema.typeOf(E); }

  Exp *fail(SourceLoc Loc, const std::string &Msg) {
    if (!Failed)
      Diags.error(Loc, "cps conversion: " + Msg);
    Failed = true;
    return P.newExp(ExpKind::Halt);
  }

  /// Fresh temps for every slot of \p T, with debug names derived from
  /// \p Base.
  FlatVal freshSlots(const Type *T, const std::string &Base) {
    FlatVal V;
    unsigned N = slotCount(T);
    for (unsigned I = 0; I != N; ++I)
      V.push_back(Atom::temp(
          P.newValue(N == 1 ? Base : Base + "." + std::to_string(I))));
    return V;
  }

  /// Assigned variables inside a subtree that are currently in scope,
  /// ordered by symbol id for determinism.
  template <typename Node>
  std::vector<const VarSymbol *> scopedAssigned(const Node *N) {
    std::set<const VarSymbol *> Set;
    AssignedCollector C(Sema, Set);
    C.visit(N);
    std::vector<const VarSymbol *> Out;
    for (const VarSymbol *Sym : Set)
      if (Env.count(Sym))
        Out.push_back(Sym);
    std::sort(Out.begin(), Out.end(),
              [](const VarSymbol *A, const VarSymbol *B) {
                return A->Id < B->Id;
              });
    return Out;
  }

  /// Current flattened values of \p Syms concatenated.
  FlatVal currentValues(const std::vector<const VarSymbol *> &Syms) {
    FlatVal V;
    for (const VarSymbol *Sym : Syms) {
      const FlatVal &SV = Env.at(Sym);
      V.insert(V.end(), SV.begin(), SV.end());
    }
    return V;
  }

  /// Rebinds \p Syms to fresh parameter temps, appending the temps to
  /// \p Params.
  void bindFreshParams(const std::vector<const VarSymbol *> &Syms,
                       std::vector<ValueId> &Params) {
    for (const VarSymbol *Sym : Syms) {
      FlatVal V = freshSlots(Sym->Ty, Sym->Name);
      for (const Atom &A : V)
        Params.push_back(A.Id);
      Env[Sym] = std::move(V);
    }
  }

  Exp *emitPrim(PrimOp Op, Atom A, Atom B, ValueId R, Exp *Cont) {
    Exp *E = P.newExp(ExpKind::Prim);
    E->Prim = Op;
    E->Args = Op == PrimOp::Not ? std::vector<Atom>{A}
                                : std::vector<Atom>{A, B};
    E->Results = {R};
    E->Cont = Cont;
    return E;
  }

  Exp *emitApp(Atom Callee, FlatVal Args) {
    Exp *E = P.newExp(ExpKind::App);
    E->Callee = Callee;
    E->Args = std::move(Args);
    return E;
  }

  /// Wraps a Fix node defining \p Funcs around \p Cont.
  Exp *emitFix(std::vector<FuncId> Funcs, Exp *Cont) {
    Exp *E = P.newExp(ExpKind::Fix);
    E->FixFuncs = std::move(Funcs);
    E->Cont = Cont;
    return E;
  }

  // Expression conversion.
  Exp *convert(const Expr *E, const MetaK &K);
  Exp *convertList(const std::vector<const Expr *> &Es, unsigned I,
                   FlatVal Acc, const MetaK &K);
  Exp *convertArgs(const std::vector<Arg> &Args, unsigned I, FlatVal Acc,
                   const MetaK &K);
  Exp *convertBlock(const Expr *Block, unsigned StmtIdx, const MetaK &K);
  Exp *convertIf(const Expr *E, const MetaK &K);
  Exp *convertTry(const Expr *E, const MetaK &K);
  Exp *convertCall(const Expr *E, const MetaK &K);
  Exp *convertRaise(const Expr *E);
  Exp *convertPack(const Expr *E, const MetaK &K);
  Exp *convertUnpack(const Expr *E, const MetaK &K);

  /// Boolean expression compiled to control flow. ThenK/ElseK are each
  /// invoked exactly once.
  Exp *convertCond(const Expr *E, const ArmK &ThenK, const ArmK &ElseK);

  /// Materializes a boolean as a 0/1 word through a join continuation.
  Exp *materializeBool(const Expr *E, const MetaK &K);

  /// Converts a function declaration into a CPS function (once).
  FuncId functionFor(const FunDecl *F);
};

//===----------------------------------------------------------------------===//
// Core traversal
//===----------------------------------------------------------------------===//

Exp *Converter::convertList(const std::vector<const Expr *> &Es, unsigned I,
                            FlatVal Acc, const MetaK &K) {
  if (I == Es.size())
    return K(std::move(Acc));
  return convert(Es[I], [this, &Es, I, Acc = std::move(Acc),
                         &K](FlatVal V) mutable {
    Acc.insert(Acc.end(), V.begin(), V.end());
    return convertList(Es, I + 1, std::move(Acc), K);
  });
}

Exp *Converter::convertArgs(const std::vector<Arg> &Args, unsigned I,
                            FlatVal Acc, const MetaK &K) {
  if (I == Args.size())
    return K(std::move(Acc));
  return convert(Args[I].Value, [this, &Args, I, Acc = std::move(Acc),
                                 &K](FlatVal V) mutable {
    Acc.insert(Acc.end(), V.begin(), V.end());
    return convertArgs(Args, I + 1, std::move(Acc), K);
  });
}

Exp *Converter::convert(const Expr *E, const MetaK &K) {
  const Type *T = typeOf(E);
  switch (E->Kind) {
  case ExprKind::IntLit:
    return K({Atom::constant(static_cast<uint32_t>(E->IntValue))});
  case ExprKind::BoolLit:
    return K({Atom::constant(E->BoolValue ? 1 : 0)});
  case ExprKind::VarRef: {
    const VarSymbol *Sym = Sema.VarBinding.at(E);
    auto It = Env.find(Sym);
    if (It == Env.end())
      return fail(E->Loc, "variable '" + Sym->Name + "' not in scope");
    return K(It->second);
  }
  case ExprKind::Unary:
    switch (E->UOp) {
    case UnaryOp::BitNot:
      return convert(E->Lhs, [this, &K](FlatVal V) {
        ValueId R = P.newValue();
        return emitPrim(PrimOp::Not, V[0], Atom::constant(0), R,
                        K({Atom::temp(R)}));
      });
    case UnaryOp::Neg:
      return convert(E->Lhs, [this, &K](FlatVal V) {
        ValueId R = P.newValue();
        return emitPrim(PrimOp::Sub, Atom::constant(0), V[0], R,
                        K({Atom::temp(R)}));
      });
    case UnaryOp::Not:
      return materializeBool(E, K);
    }
    NOVA_UNREACHABLE("unhandled unary op");
  case ExprKind::Binary:
    switch (E->BOp) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::And:
    case BinaryOp::Or:
    case BinaryOp::Xor:
    case BinaryOp::Shl:
    case BinaryOp::Shr: {
      PrimOp Op = [&] {
        switch (E->BOp) {
        case BinaryOp::Add: return PrimOp::Add;
        case BinaryOp::Sub: return PrimOp::Sub;
        case BinaryOp::And: return PrimOp::And;
        case BinaryOp::Or:  return PrimOp::Or;
        case BinaryOp::Xor: return PrimOp::Xor;
        case BinaryOp::Shl: return PrimOp::Shl;
        default:            return PrimOp::Shr;
        }
      }();
      return convert(E->Lhs, [this, E, Op, &K](FlatVal A) {
        return convert(E->Rhs, [this, A, Op, &K](FlatVal B) {
          ValueId R = P.newValue();
          return emitPrim(Op, A[0], B[0], R, K({Atom::temp(R)}));
        });
      });
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge:
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      return materializeBool(E, K);
    }
    NOVA_UNREACHABLE("unhandled binary op");
  case ExprKind::Call:
    return convertCall(E, K);
  case ExprKind::RecordLit:
    return convertArgs(E->Args, 0, {}, K);
  case ExprKind::TupleLit:
    return convertList(E->Elems, 0, {}, K);
  case ExprKind::Field: {
    const Type *BaseT = typeOf(E->Lhs);
    unsigned Index =
        E->FieldIndex >= 0
            ? static_cast<unsigned>(E->FieldIndex)
            : static_cast<unsigned>(BaseT->fieldIndex(E->Name));
    return convert(E->Lhs, [BaseT, Index, &K](FlatVal V) {
      unsigned Off = slotOffset(BaseT, Index);
      unsigned W = slotCount(BaseT->elems()[Index]);
      return K(FlatVal(V.begin() + Off, V.begin() + Off + W));
    });
  }
  case ExprKind::If:
    return convertIf(E, K);
  case ExprKind::Block:
    return convertBlock(E, 0, K);
  case ExprKind::Pack:
    return convertPack(E, K);
  case ExprKind::Unpack:
    return convertUnpack(E, K);
  case ExprKind::MemRead:
    return fail(E->Loc, "memory read outside let");
  case ExprKind::Hash:
    return convert(E->Lhs, [this, &K](FlatVal V) {
      Exp *N = P.newExp(ExpKind::Hash);
      N->Args = {V[0]};
      ValueId R = P.newValue("hash");
      N->Results = {R};
      N->Cont = K({Atom::temp(R)});
      return N;
    });
  case ExprKind::BitTestSet:
    return convert(E->Lhs, [this, E, &K](FlatVal A) {
      return convert(E->Rhs, [this, A, &K](FlatVal B) {
        Exp *N = P.newExp(ExpKind::BitTestSet);
        N->Space = MemSpace::Sram;
        N->Args = {A[0], B[0]};
        ValueId R = P.newValue("bts");
        N->Results = {R};
        N->Cont = K({Atom::temp(R)});
        return N;
      });
    });
  case ExprKind::Raise:
    return convertRaise(E);
  case ExprKind::Try:
    return convertTry(E, K);
  }
  (void)T;
  NOVA_UNREACHABLE("unhandled expression kind");
}

Exp *Converter::materializeBool(const Expr *E, const MetaK &K) {
  // join(r): K(r)   ...   branch arms jump join(1) / join(0).
  FuncId Join = P.newFunction("bool", FuncKind::Join);
  ValueId R = P.newValue("b");
  P.func(Join).Params = {R};
  // Convert the condition before invoking K: K continues the surrounding
  // computation and may rebind variables in Env.
  Exp *Inner = convertCond(
      E, [&] { return emitApp(Atom::label(Join), {Atom::constant(1)}); },
      [&] { return emitApp(Atom::label(Join), {Atom::constant(0)}); });
  P.func(Join).Body = K({Atom::temp(R)});
  return emitFix({Join}, Inner);
}

Exp *Converter::convertCond(const Expr *E, const ArmK &ThenK,
                            const ArmK &ElseK) {
  switch (E->Kind) {
  case ExprKind::BoolLit:
    return E->BoolValue ? ThenK() : ElseK();
  case ExprKind::Unary:
    if (E->UOp == UnaryOp::Not)
      return convertCond(E->Lhs, ElseK, ThenK);
    break;
  case ExprKind::Binary:
    switch (E->BOp) {
    case BinaryOp::LogAnd: {
      // Wrap the else arm in a join so it is emitted once.
      FuncId ElseJ = P.newFunction("and_else", FuncKind::Join);
      P.func(ElseJ).Body = ElseK();
      auto JumpElse = [&] { return emitApp(Atom::label(ElseJ), {}); };
      Exp *Inner = convertCond(
          E->Lhs,
          [&] { return convertCond(E->Rhs, ThenK, JumpElse); }, JumpElse);
      return emitFix({ElseJ}, Inner);
    }
    case BinaryOp::LogOr: {
      FuncId ThenJ = P.newFunction("or_then", FuncKind::Join);
      P.func(ThenJ).Body = ThenK();
      auto JumpThen = [&] { return emitApp(Atom::label(ThenJ), {}); };
      Exp *Inner = convertCond(
          E->Lhs, JumpThen,
          [&] { return convertCond(E->Rhs, JumpThen, ElseK); });
      return emitFix({ThenJ}, Inner);
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge: {
      CmpOp Op = [&] {
        switch (E->BOp) {
        case BinaryOp::Eq: return CmpOp::Eq;
        case BinaryOp::Ne: return CmpOp::Ne;
        case BinaryOp::Lt: return CmpOp::Lt;
        case BinaryOp::Gt: return CmpOp::Gt;
        case BinaryOp::Le: return CmpOp::Le;
        default:           return CmpOp::Ge;
        }
      }();
      return convert(E->Lhs, [this, E, Op, &ThenK, &ElseK](FlatVal A) {
        return convert(E->Rhs, [this, A, Op, &ThenK, &ElseK](FlatVal B) {
          Exp *Br = P.newExp(ExpKind::Branch);
          Br->Cmp = Op;
          Br->Args = {A[0], B[0]};
          Br->Then = ThenK();
          Br->Else = ElseK();
          return Br;
        });
      });
    }
    default:
      break;
    }
    break;
  default:
    break;
  }
  // Generic boolean data: compare against zero.
  return convert(E, [this, &ThenK, &ElseK](FlatVal V) {
    Exp *Br = P.newExp(ExpKind::Branch);
    Br->Cmp = CmpOp::Ne;
    Br->Args = {V[0], Atom::constant(0)};
    Br->Then = ThenK();
    Br->Else = ElseK();
    return Br;
  });
}

//===----------------------------------------------------------------------===//
// Statements, joins, loops
//===----------------------------------------------------------------------===//

Exp *Converter::convertBlock(const Expr *Block, unsigned StmtIdx,
                             const MetaK &K) {
  if (StmtIdx == Block->Stmts.size()) {
    if (Block->Tail)
      return convert(Block->Tail, K);
    return K({});
  }
  const Stmt *S = Block->Stmts[StmtIdx];
  auto Rest = [this, Block, StmtIdx, &K](FlatVal) {
    return convertBlock(Block, StmtIdx + 1, K);
  };
  switch (S->Kind) {
  case StmtKind::Let: {
    const auto &Syms = Sema.LetSymbols.at(S);
    if (S->Value->Kind == ExprKind::MemRead) {
      unsigned Count = Sema.MemReadCount.at(S->Value);
      const Expr *ReadE = S->Value;
      return convert(ReadE->Lhs, [this, ReadE, Count, &Syms,
                                  Rest](FlatVal Addr) {
        Exp *N = P.newExp(ExpKind::MemRead);
        N->Space = ReadE->Space;
        N->Args = {Addr[0]};
        for (unsigned I = 0; I != Count; ++I) {
          ValueId R = P.newValue(I < Syms.size() ? Syms[I]->Name : "ld");
          N->Results.push_back(R);
        }
        // Bind pattern names (one word each, or the whole aggregate to a
        // single name).
        if (Syms.size() == Count) {
          for (unsigned I = 0; I != Count; ++I)
            Env[Syms[I]] = {Atom::temp(N->Results[I])};
        } else {
          FlatVal All;
          for (ValueId R : N->Results)
            All.push_back(Atom::temp(R));
          Env[Syms[0]] = std::move(All);
        }
        N->Cont = Rest({});
        return N;
      });
    }
    return convert(S->Value, [this, S, &Syms, Rest](FlatVal V) {
      if (Syms.size() == 1) {
        Env[Syms[0]] = std::move(V);
      } else {
        unsigned Off = 0;
        for (const VarSymbol *Sym : Syms) {
          unsigned W = slotCount(Sym->Ty);
          Env[Sym] = FlatVal(V.begin() + Off, V.begin() + Off + W);
          Off += W;
        }
      }
      (void)S;
      return Rest({});
    });
  }
  case StmtKind::Assign: {
    const VarSymbol *Sym = Sema.AssignTarget.at(S);
    return convert(S->Value, [this, Sym, Rest](FlatVal V) {
      Env[Sym] = std::move(V);
      return Rest({});
    });
  }
  case StmtKind::ExprStmt:
    return convert(S->Value, [Rest](FlatVal) { return Rest({}); });
  case StmtKind::Store:
    return convert(S->Addr, [this, S, Rest](FlatVal Addr) {
      return convert(S->Value, [this, S, Addr, Rest](FlatVal V) {
        Exp *N = P.newExp(ExpKind::MemWrite);
        N->Space = S->Space;
        N->Args = {Addr[0]};
        N->Args.insert(N->Args.end(), V.begin(), V.end());
        N->Cont = Rest({});
        return N;
      });
    });
  case StmtKind::While: {
    std::vector<const VarSymbol *> Assigned = scopedAssigned(S->Body);
    {
      std::set<const VarSymbol *> CondSet;
      AssignedCollector C(Sema, CondSet);
      C.visit(S->Cond);
      for (const VarSymbol *Sym : CondSet)
        if (Env.count(Sym) &&
            std::find(Assigned.begin(), Assigned.end(), Sym) ==
                Assigned.end())
          Assigned.push_back(Sym);
      std::sort(Assigned.begin(), Assigned.end(),
                [](const VarSymbol *A, const VarSymbol *B) {
                  return A->Id < B->Id;
                });
    }
    FuncId Loop = P.newFunction("loop", FuncKind::Loop);
    FlatVal EntryArgs = currentValues(Assigned);
    std::vector<ValueId> Params;
    bindFreshParams(Assigned, Params);
    P.func(Loop).Params = std::move(Params);

    // Loop body: cond ? (body; jump Loop(updated)) : (rest of block).
    P.func(Loop).Body = convertCond(
        S->Cond,
        [&] {
          auto SavedEnv = Env;
          Exp *BodyExp =
              convert(S->Body, [this, Loop, &Assigned](FlatVal) {
                return emitApp(Atom::label(Loop), currentValues(Assigned));
              });
          Env = std::move(SavedEnv);
          return BodyExp;
        },
        [&] { return convertBlock(Block, StmtIdx + 1, K); });
    return emitFix({Loop}, emitApp(Atom::label(Loop), std::move(EntryArgs)));
  }
  }
  NOVA_UNREACHABLE("unhandled statement kind");
}

Exp *Converter::convertIf(const Expr *E, const MetaK &K) {
  const Type *T = typeOf(E);
  unsigned ResultSlots = slotCount(T);

  std::vector<const VarSymbol *> Assigned;
  {
    std::set<const VarSymbol *> Set;
    AssignedCollector C(Sema, Set);
    C.visit(E->Then);
    C.visit(E->Else);
    for (const VarSymbol *Sym : Set)
      if (Env.count(Sym))
        Assigned.push_back(Sym);
    std::sort(Assigned.begin(), Assigned.end(),
              [](const VarSymbol *A, const VarSymbol *B) {
                return A->Id < B->Id;
              });
  }

  FuncId Join = P.newFunction("endif", FuncKind::Join);
  std::vector<ValueId> Params;
  auto ArmExp = [&](const Expr *Arm) {
    auto SavedEnv = Env;
    Exp *X;
    if (Arm) {
      X = convert(Arm, [this, &Assigned, Join](FlatVal V) {
        FlatVal Args = currentValues(Assigned);
        Args.insert(Args.end(), V.begin(), V.end());
        return emitApp(Atom::label(Join), std::move(Args));
      });
    } else {
      X = emitApp(Atom::label(Join), currentValues(Assigned));
    }
    Env = std::move(SavedEnv);
    return X;
  };

  Exp *Inner = convertCond(
      E->Cond, [&] { return ArmExp(E->Then); },
      [&] { return ArmExp(E->Else); });

  // Join body: rebind assigned vars and continue with the result.
  bindFreshParams(Assigned, Params);
  FlatVal Result;
  for (unsigned I = 0; I != ResultSlots; ++I) {
    ValueId R = P.newValue("phi");
    Params.push_back(R);
    Result.push_back(Atom::temp(R));
  }
  P.func(Join).Params = std::move(Params);
  P.func(Join).Body = K(std::move(Result));
  return emitFix({Join}, Inner);
}

Exp *Converter::convertTry(const Expr *E, const MetaK &K) {
  const Type *T = typeOf(E);
  unsigned ResultSlots = slotCount(T);

  std::vector<const VarSymbol *> Assigned = scopedAssigned(E);

  FuncId Join = P.newFunction("endtry", FuncKind::Join);
  auto TryEntryEnv = Env;

  // Handlers are converted in the try-entry environment.
  std::vector<FuncId> Fixed;
  for (const Handler &H : E->Handlers) {
    FuncId HF = P.newFunction("handle_" + H.ExnName, FuncKind::Handler);
    auto SavedEnv = Env;
    Env = TryEntryEnv;
    std::vector<ValueId> HParams;
    const auto &ParamSyms = Sema.HandlerParamSymbols.at(&H);
    for (const VarSymbol *Sym : ParamSyms) {
      FlatVal V = freshSlots(Sym->Ty, Sym->Name);
      for (const Atom &A : V)
        HParams.push_back(A.Id);
      Env[Sym] = std::move(V);
    }
    P.func(HF).Params = std::move(HParams);
    P.func(HF).Body =
        convert(H.Body, [this, &Assigned, Join](FlatVal V) {
          FlatVal Args = currentValues(Assigned);
          Args.insert(Args.end(), V.begin(), V.end());
          return emitApp(Atom::label(Join), std::move(Args));
        });
    Env = std::move(SavedEnv);
    Env[Sema.HandlerExnSymbol.at(&H)] = {Atom::label(HF)};
    Fixed.push_back(HF);
  }

  // Body with handlers in scope.
  Exp *BodyExp = convert(E->Body, [this, &Assigned, Join](FlatVal V) {
    FlatVal Args = currentValues(Assigned);
    Args.insert(Args.end(), V.begin(), V.end());
    return emitApp(Atom::label(Join), std::move(Args));
  });

  // Join continuation.
  std::vector<ValueId> Params;
  bindFreshParams(Assigned, Params);
  FlatVal Result;
  for (unsigned I = 0; I != ResultSlots; ++I) {
    ValueId R = P.newValue("tryv");
    Params.push_back(R);
    Result.push_back(Atom::temp(R));
  }
  P.func(Join).Params = std::move(Params);
  P.func(Join).Body = K(std::move(Result));

  Fixed.push_back(Join);
  return emitFix(std::move(Fixed), BodyExp);
}

Exp *Converter::convertRaise(const Expr *E) {
  const VarSymbol *ExnSym = Sema.RaiseTarget.at(E);
  auto It = Env.find(ExnSym);
  if (It == Env.end())
    return fail(E->Loc, "exception '" + ExnSym->Name + "' not in scope");
  Atom Callee = It->second[0];
  const Type *Payload = ExnSym->Ty->exnPayload();

  // Named args are reordered to payload field order.
  std::vector<Arg> Ordered(E->Args);
  if (!Ordered.empty() && !Ordered[0].Name.empty() &&
      Payload->kind() == TypeKind::Record) {
    std::sort(Ordered.begin(), Ordered.end(),
              [Payload](const Arg &A, const Arg &B) {
                return Payload->fieldIndex(A.Name) <
                       Payload->fieldIndex(B.Name);
              });
  }
  return convertArgs(Ordered, 0, {}, [this, Callee](FlatVal Args) {
    return emitApp(Callee, std::move(Args));
  });
}

Exp *Converter::convertCall(const Expr *E, const MetaK &K) {
  const FunDecl *Callee = Sema.CallTarget.at(E);
  FuncId F = functionFor(Callee);
  const Type *ResultT = Sema.FunResultType.at(Callee);
  unsigned ResultSlots = slotCount(ResultT);

  // Named args are reordered to parameter order.
  std::vector<Arg> Ordered(E->Args);
  if (!Ordered.empty() && !Ordered[0].Name.empty()) {
    auto ParamIndex = [Callee](const std::string &Name) {
      for (unsigned I = 0; I != Callee->Params.size(); ++I)
        if (Callee->Params[I].Name == Name)
          return I;
      return ~0u;
    };
    std::sort(Ordered.begin(), Ordered.end(),
              [&](const Arg &A, const Arg &B) {
                return ParamIndex(A.Name) < ParamIndex(B.Name);
              });
  }

  // Return continuation carrying the call results.
  FuncId Ret = P.newFunction("ret_" + Callee->Name, FuncKind::ReturnPt);
  std::vector<ValueId> Params;
  FlatVal Result;
  for (unsigned I = 0; I != ResultSlots; ++I) {
    ValueId R = P.newValue("r");
    Params.push_back(R);
    Result.push_back(Atom::temp(R));
  }
  P.func(Ret).Params = std::move(Params);

  // Arguments are converted in the pre-call environment; only then may K
  // run (it continues the caller and can rebind variables).
  Exp *CallExp =
      convertArgs(Ordered, 0, {}, [this, F, Ret](FlatVal Args) {
        Args.push_back(Atom::label(Ret));
        return emitApp(Atom::label(F), std::move(Args));
      });
  P.func(Ret).Body = K(std::move(Result));
  return emitFix({Ret}, CallExp);
}

Exp *Converter::convertPack(const Expr *E, const MetaK &K) {
  const LayoutNode *Layout = Sema.PackLayout.at(E);
  unsigned Words = Layout->packedWords();

  // Pair each chosen leaf with its value expression by walking the record
  // literal along the layout (mirrors Sema::checkPackArg).
  std::vector<std::pair<const LayoutNode *, const Expr *>> Leaves;
  std::function<void(const Expr *, const LayoutNode &)> Walk =
      [&](const Expr *Lit, const LayoutNode &N) {
        switch (N.NodeKind) {
        case LayoutNode::Kind::Leaf:
          Leaves.emplace_back(&N, Lit);
          return;
        case LayoutNode::Kind::Gap:
          return;
        case LayoutNode::Kind::Group:
          for (const Arg &A : Lit->Args)
            for (const LayoutNode &C : N.Children)
              if (C.Name == A.Name)
                Walk(A.Value, C);
          return;
        case LayoutNode::Kind::Overlay:
          for (const LayoutNode &C : N.Children)
            if (C.Name == Lit->Args[0].Name)
              Walk(Lit->Args[0].Value, C);
          return;
        }
      };
  Walk(E->Lhs, *Layout);

  // Convert the leaf values left to right, then deposit them.
  std::vector<const Expr *> Exprs;
  for (auto &[Node, Ex] : Leaves)
    Exprs.push_back(Ex);
  return convertList(Exprs, 0, {}, [this, Leaves, Words,
                                    &K](FlatVal Values) {
    // Accumulate each word as an OR-chain of deposited pieces.
    std::vector<Atom> WordAcc(Words, Atom::constant(0));
    Exp *Head = nullptr;
    Exp **Tail = &Head;
    auto Emit = [&](Exp *N) {
      *Tail = N;
      Tail = &N->Cont;
    };
    for (unsigned I = 0; I != Leaves.size(); ++I) {
      const LayoutNode *Leaf = Leaves[I].first;
      Atom V = Values[I];
      for (const BitPiece &Piece :
           planBitfield(Leaf->OffsetBits, Leaf->WidthBits)) {
        Atom Cur = V;
        if (Piece.ValueShift) {
          ValueId R = P.newValue();
          Emit(emitPrim(PrimOp::Shr, Cur, Atom::constant(Piece.ValueShift),
                        R, nullptr));
          Cur = Atom::temp(R);
        }
        // Mask off bits that belong to other pieces/fields. Skipped when
        // the piece already covers a full word.
        if (Piece.Mask != 0xFFFFFFFFu) {
          ValueId R = P.newValue();
          Emit(emitPrim(PrimOp::And, Cur, Atom::constant(Piece.Mask), R,
                        nullptr));
          Cur = Atom::temp(R);
        }
        if (Piece.WordShift) {
          ValueId R = P.newValue();
          Emit(emitPrim(PrimOp::Shl, Cur, Atom::constant(Piece.WordShift),
                        R, nullptr));
          Cur = Atom::temp(R);
        }
        ValueId R = P.newValue();
        Emit(emitPrim(PrimOp::Or, WordAcc[Piece.WordIndex], Cur, R,
                      nullptr));
        WordAcc[Piece.WordIndex] = Atom::temp(R);
      }
    }
    *Tail = K(std::move(WordAcc));
    return Head;
  });
}

Exp *Converter::convertUnpack(const Expr *E, const MetaK &K) {
  const LayoutNode *Layout = Sema.PackLayout.at(E);
  std::vector<const LayoutNode *> Leaves;
  if (Layout->NodeKind == LayoutNode::Kind::Leaf)
    Leaves.push_back(Layout);
  else
    collectUnpackLeaves(*Layout, Leaves);

  return convert(E->Lhs, [this, Leaves, &K](FlatVal Words) {
    Exp *Head = nullptr;
    Exp **Tail = &Head;
    auto Emit = [&](Exp *N) {
      *Tail = N;
      Tail = &N->Cont;
    };
    FlatVal Result;
    for (const LayoutNode *Leaf : Leaves) {
      Atom Acc = Atom::constant(0);
      bool First = true;
      for (const BitPiece &Piece :
           planBitfield(Leaf->OffsetBits, Leaf->WidthBits)) {
        Atom Cur = Words[Piece.WordIndex];
        if (Piece.WordShift) {
          ValueId R = P.newValue();
          Emit(emitPrim(PrimOp::Shr, Cur, Atom::constant(Piece.WordShift),
                        R, nullptr));
          Cur = Atom::temp(R);
        }
        // Mask unless the extracted piece already fills the word top-down
        // (shift has pushed out all higher bits).
        if (Piece.Mask != 0xFFFFFFFFu &&
            Piece.WordShift + Piece.PieceWidth != 32) {
          ValueId R = P.newValue();
          Emit(emitPrim(PrimOp::And, Cur, Atom::constant(Piece.Mask), R,
                        nullptr));
          Cur = Atom::temp(R);
        }
        if (Piece.ValueShift) {
          ValueId R = P.newValue();
          Emit(emitPrim(PrimOp::Shl, Cur, Atom::constant(Piece.ValueShift),
                        R, nullptr));
          Cur = Atom::temp(R);
        }
        if (First) {
          Acc = Cur;
          First = false;
        } else {
          ValueId R = P.newValue(Leaf->Name);
          Emit(emitPrim(PrimOp::Or, Acc, Cur, R, nullptr));
          Acc = Atom::temp(R);
        }
      }
      Result.push_back(Acc);
    }
    *Tail = K(std::move(Result));
    return Head;
  });
}

//===----------------------------------------------------------------------===//
// Functions and program entry
//===----------------------------------------------------------------------===//

FuncId Converter::functionFor(const FunDecl *F) {
  auto It = FunIds.find(F);
  if (It != FunIds.end())
    return It->second;
  FuncId Id = P.newFunction(F->Name, FuncKind::UserFun);
  FunIds[F] = Id;

  auto SavedEnv = std::move(Env);
  Env.clear();
  std::vector<ValueId> Params;
  const auto &ParamSyms = Sema.ParamSymbols.at(F);
  for (const VarSymbol *Sym : ParamSyms) {
    FlatVal V = freshSlots(Sym->Ty, Sym->Name);
    for (const Atom &A : V)
      Params.push_back(A.Id);
    Env[Sym] = std::move(V);
  }
  ValueId RetCont = P.newValue("retk");
  Params.push_back(RetCont);
  RetContOf[F] = RetCont;
  P.func(Id).Params = std::move(Params);
  P.func(Id).Body = convert(F->Body, [this, RetCont](FlatVal V) {
    return emitApp(Atom::temp(RetCont), std::move(V));
  });
  Env = std::move(SavedEnv);
  return Id;
}

bool Converter::run() {
  const FunDecl *Main = Ast.findFun("main");
  if (!Main) {
    Diags.error(SourceLoc::invalid(), "program has no 'main' function");
    return false;
  }
  // The entry is converted specially: its continuation is Halt.
  FuncId Entry = P.newFunction("main", FuncKind::UserFun);
  P.Entry = Entry;
  Env.clear();
  std::vector<ValueId> Params;
  for (const VarSymbol *Sym : Sema.ParamSymbols.at(Main)) {
    FlatVal V = freshSlots(Sym->Ty, Sym->Name);
    for (const Atom &A : V)
      Params.push_back(A.Id);
    Env[Sym] = std::move(V);
  }
  P.func(Entry).Params = std::move(Params);
  P.func(Entry).Body = convert(Main->Body, [this](FlatVal V) {
    Exp *H = P.newExp(ExpKind::Halt);
    H->Args = std::move(V);
    return H;
  });
  return !Failed;
}

} // namespace

bool cps::convertToCps(const Program &Ast, const SemaResult &Sema,
                       DiagnosticEngine &Diags, CpsProgram &Out) {
  Converter C(Ast, Sema, Diags, Out);
  return C.run();
}
