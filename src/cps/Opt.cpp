//===- Opt.cpp - CPS optimizer --------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "cps/Opt.h"

#include "support/Debug.h"

#include <cassert>
#include <functional>
#include <map>
#include <set>

using namespace nova;
using namespace nova::cps;

namespace {

// Constant folding uses the shared ALU/compare semantics from cps/Ir.h
// directly (evalPrim/evalCmp); a fold may never change what the CPS
// evaluator or the simulator would compute.

/// The functions that act as traversal roots: the entry plus every
/// function not declared by any Fix node (user functions are top-level).
std::vector<FuncId> rootFunctions(const CpsProgram &P) {
  std::set<FuncId> FixDeclared;
  std::function<void(const Exp *)> Scan = [&](const Exp *E) {
    for (; E;) {
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs) {
          FixDeclared.insert(F);
          Scan(P.func(F).Body);
        }
      if (E->Kind == ExpKind::Branch) {
        Scan(E->Then);
        Scan(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  for (const Function &F : P.functions())
    if (F.Body)
      Scan(F.Body);
  std::vector<FuncId> Roots;
  for (const Function &F : P.functions())
    if (F.Body && !FixDeclared.count(F.Id))
      Roots.push_back(F.Id);
  return Roots;
}

/// Applies \p Visit to every live Exp node, entering Fix-declared function
/// bodies at their declaration point.
template <typename Fn>
void forEachExp(CpsProgram &P, Fn Visit) {
  std::function<void(Exp *)> Walk = [&](Exp *E) {
    for (; E;) {
      Visit(E);
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          Walk(P.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        Walk(E->Then);
        Walk(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  for (FuncId F : rootFunctions(P))
    Walk(P.func(F).Body);
}

/// Use counts of values and function labels across the live program.
struct Census {
  std::vector<unsigned> ValueUses;
  std::vector<unsigned> LabelUses; ///< label occurrences anywhere
  std::vector<unsigned> CallUses;  ///< label occurrences as App callee

  explicit Census(CpsProgram &P)
      : ValueUses(P.numValues(), 0), LabelUses(P.functions().size(), 0),
        CallUses(P.functions().size(), 0) {
    forEachExp(P, [&](Exp *E) {
      for (const Atom &A : E->Args)
        count(A, false);
      if (E->Kind == ExpKind::App)
        count(E->Callee, true);
    });
  }

  void count(const Atom &A, bool IsCallee) {
    if (A.isTemp()) {
      ++ValueUses[A.Id];
    } else if (A.isLabel()) {
      ++LabelUses[A.Func];
      if (IsCallee)
        ++CallUses[A.Func];
    }
  }
};

/// Deep-copies an Exp tree, freshening bound values and Fix-declared
/// functions; used when inlining a function at (possibly) multiple sites.
class Copier {
public:
  Copier(CpsProgram &P) : P(P) {}

  std::map<ValueId, Atom> VSub;

  Exp *copy(const Exp *E) {
    if (!E)
      return nullptr;
    Exp *N = P.newExp(E->Kind);
    N->Prim = E->Prim;
    N->Cmp = E->Cmp;
    N->Space = E->Space;
    for (const Atom &A : E->Args)
      N->Args.push_back(remap(A));
    N->Callee = remap(E->Callee);
    for (ValueId R : E->Results) {
      ValueId Fresh = P.newValue(P.valueName(R));
      VSub[R] = Atom::temp(Fresh);
      N->Results.push_back(Fresh);
    }
    if (E->Kind == ExpKind::Fix) {
      // Two phases so mutually recursive Fix functions remap correctly.
      for (FuncId F : E->FixFuncs) {
        FuncId Fresh = P.newFunction(P.func(F).Name, P.func(F).Kind);
        FSub[F] = Fresh;
        N->FixFuncs.push_back(Fresh);
      }
      for (FuncId F : E->FixFuncs) {
        FuncId Fresh = FSub[F];
        std::vector<ValueId> Params;
        for (ValueId Param : P.func(F).Params) {
          ValueId FP = P.newValue(P.valueName(Param));
          VSub[Param] = Atom::temp(FP);
          Params.push_back(FP);
        }
        P.func(Fresh).Params = std::move(Params);
        P.func(Fresh).Body = copy(P.func(F).Body);
      }
    }
    N->Cont = copy(E->Cont);
    N->Then = copy(E->Then);
    N->Else = copy(E->Else);
    return N;
  }

private:
  Atom remap(const Atom &A) {
    if (A.isTemp()) {
      auto It = VSub.find(A.Id);
      return It != VSub.end() ? It->second : A;
    }
    if (A.isLabel()) {
      auto It = FSub.find(A.Func);
      return It != FSub.end() ? Atom::label(It->second) : A;
    }
    return A;
  }

  CpsProgram &P;
  std::map<FuncId, FuncId> FSub;
};

/// Applies a value substitution (and optional label substitution) in
/// place over a subtree (including Fix-declared bodies).
void applySubst(CpsProgram &P, Exp *Root,
                const std::map<ValueId, Atom> &VSub,
                const std::map<FuncId, Atom> &LSub = {}) {
  auto Remap = [&](Atom &A) {
    // Chase chains: a -> b -> const.
    for (int Guard = 0; Guard < 64; ++Guard) {
      if (A.isTemp()) {
        auto It = VSub.find(A.Id);
        if (It != VSub.end() && !(It->second == A)) {
          A = It->second;
          continue;
        }
      } else if (A.isLabel()) {
        auto It = LSub.find(A.Func);
        if (It != LSub.end() && !(It->second == A)) {
          A = It->second;
          continue;
        }
      }
      return;
    }
  };
  std::function<void(Exp *)> Walk = [&](Exp *E) {
    for (; E;) {
      for (Atom &A : E->Args)
        Remap(A);
      if (E->Kind == ExpKind::App)
        Remap(E->Callee);
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          Walk(P.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        Walk(E->Then);
        Walk(E->Else);
        return;
      }
      E = E->Cont;
    }
  };
  Walk(Root);
}

/// Rewrites the whole program in place with a substitution.
void applySubstEverywhere(CpsProgram &P, const std::map<ValueId, Atom> &VSub,
                          const std::map<FuncId, Atom> &LSub = {}) {
  for (FuncId F : rootFunctions(P))
    applySubst(P, P.func(F).Body, VSub, LSub);
}

/// The set of functions whose label is reachable from their own body
/// (loops and recursive user functions).
std::set<FuncId> recursiveFunctions(CpsProgram &P) {
  // Build the label-reference graph F -> G (G's label occurs in F's body,
  // not entering nested Fix bodies... labels inside nested bodies still
  // execute as part of F, so include them).
  unsigned N = P.functions().size();
  std::vector<std::set<FuncId>> Refs(N);
  for (const Function &F : P.functions()) {
    if (!F.Body)
      continue;
    std::function<void(const Exp *)> Walk = [&](const Exp *E) {
      for (; E;) {
        for (const Atom &A : E->Args)
          if (A.isLabel())
            Refs[F.Id].insert(A.Func);
        if (E->Kind == ExpKind::App && E->Callee.isLabel())
          Refs[F.Id].insert(E->Callee.Func);
        if (E->Kind == ExpKind::Fix)
          for (FuncId G : E->FixFuncs) {
            Refs[F.Id].insert(G); // scope nesting counts as a reference
            // Nested bodies are walked via their own Function entry below.
          }
        if (E->Kind == ExpKind::Branch) {
          Walk(E->Then);
          Walk(E->Else);
          return;
        }
        E = E->Cont;
      }
    };
    Walk(F.Body);
  }
  // F is recursive if F is reachable from any function F references.
  std::set<FuncId> Recursive;
  for (unsigned F = 0; F != N; ++F) {
    if (!P.func(F).Body)
      continue;
    std::set<FuncId> Seen;
    std::vector<FuncId> Stack(Refs[F].begin(), Refs[F].end());
    bool Found = false;
    while (!Stack.empty() && !Found) {
      FuncId G = Stack.back();
      Stack.pop_back();
      if (!Seen.insert(G).second)
        continue;
      if (G == F) {
        Found = true;
        break;
      }
      for (FuncId H : Refs[G])
        Stack.push_back(H);
    }
    if (Found)
      Recursive.insert(F);
  }
  return Recursive;
}

//===----------------------------------------------------------------------===//
// Passes
//===----------------------------------------------------------------------===//

class Optimizer {
public:
  Optimizer(CpsProgram &P, OptStats &Stats) : P(P), Stats(Stats) {}

  bool round() {
    unsigned Before = totalChanges();
    resolveKnownCallees();
    inlineUserFuns();
    contract();
    foldAndPropagate();
    removeUselessParams();
    eliminateDead();
    removeDeadFunctions();
    etaReduce();
    return totalChanges() != Before;
  }

private:
  CpsProgram &P;
  OptStats &Stats;

  unsigned totalChanges() const {
    return Stats.ConstantsFolded + Stats.BranchesFolded +
           Stats.FunctionsInlined + Stats.Contracted + Stats.EtaReduced +
           Stats.DeadValues + Stats.DeadFunctions + Stats.ReadsTrimmed +
           Stats.ParamsResolved + Stats.ParamsRemoved;
  }

  //===--------------------------------------------------------------------===//
  // Known-callee / constant argument propagation
  //===--------------------------------------------------------------------===//

  void resolveKnownCallees() {
    unsigned N = P.functions().size();
    // Collect argument vectors per callee and escape information.
    std::vector<std::vector<const Exp *>> Calls(N);
    std::vector<bool> Escapes(N, false);
    forEachExp(P, [&](Exp *E) {
      for (const Atom &A : E->Args)
        if (A.isLabel())
          Escapes[A.Func] = true;
      if (E->Kind == ExpKind::App) {
        if (E->Callee.isLabel())
          Calls[E->Callee.Func].push_back(E);
        // Indirect calls could target anything that escaped; escaped
        // functions are excluded anyway.
      }
    });

    std::map<ValueId, Atom> VSub;
    for (unsigned F = 0; F != N; ++F) {
      const Function &Fn = P.func(F);
      if (!Fn.Body || Escapes[F] || Calls[F].empty())
        continue;
      bool ArityOk = true;
      for (const Exp *Call : Calls[F])
        ArityOk &= Call->Args.size() == Fn.Params.size();
      if (!ArityOk)
        continue;
      for (unsigned I = 0; I != Fn.Params.size(); ++I) {
        Atom Candidate;
        bool Unique = true, Any = false;
        for (const Exp *Call : Calls[F]) {
          Atom A = Call->Args[I];
          if (A.isTemp() && A.Id == Fn.Params[I])
            continue; // self-pass in recursion
          if (!Any) {
            Candidate = A;
            Any = true;
          } else if (!(A == Candidate)) {
            Unique = false;
            break;
          }
        }
        if (Any && Unique && (Candidate.isConst() || Candidate.isLabel()) &&
            !VSub.count(Fn.Params[I])) {
          VSub[Fn.Params[I]] = Candidate;
          ++Stats.ParamsResolved;
        }
      }
    }
    if (!VSub.empty())
      applySubstEverywhere(P, VSub);
  }

  //===--------------------------------------------------------------------===//
  // De-proceduralization: inline every call to a non-recursive user
  // function.
  //===--------------------------------------------------------------------===//

  void inlineUserFuns() {
    std::set<FuncId> Recursive = recursiveFunctions(P);
    unsigned Budget = 1000; // guard against pathological growth

    std::function<Exp *(Exp *)> Rewrite = [&](Exp *E) -> Exp * {
      if (!E)
        return nullptr;
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          P.func(F).Body = Rewrite(P.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        E->Then = Rewrite(E->Then);
        E->Else = Rewrite(E->Else);
        return E;
      }
      if (E->Kind == ExpKind::App && E->Callee.isLabel() && Budget) {
        FuncId F = E->Callee.Func;
        const Function &Fn = P.func(F);
        if (Fn.Kind == FuncKind::UserFun && F != P.Entry && Fn.Body &&
            !Recursive.count(F) && Fn.Params.size() == E->Args.size()) {
          --Budget;
          ++Stats.FunctionsInlined;
          Copier C(P);
          for (unsigned I = 0; I != Fn.Params.size(); ++I)
            C.VSub[Fn.Params[I]] = E->Args[I];
          return Rewrite(C.copy(Fn.Body));
        }
      }
      E->Cont = Rewrite(E->Cont);
      return E;
    };

    for (FuncId F : rootFunctions(P))
      P.func(F).Body = Rewrite(P.func(F).Body);
  }

  //===--------------------------------------------------------------------===//
  // Contraction: inline functions applied exactly once.
  //===--------------------------------------------------------------------===//

  void contract() {
    Census C(P);
    std::set<FuncId> Recursive = recursiveFunctions(P);

    std::function<Exp *(Exp *)> Rewrite = [&](Exp *E) -> Exp * {
      if (!E)
        return nullptr;
      if (E->Kind == ExpKind::Fix)
        for (FuncId F : E->FixFuncs)
          P.func(F).Body = Rewrite(P.func(F).Body);
      if (E->Kind == ExpKind::Branch) {
        E->Then = Rewrite(E->Then);
        E->Else = Rewrite(E->Else);
        return E;
      }
      if (E->Kind == ExpKind::App && E->Callee.isLabel()) {
        FuncId F = E->Callee.Func;
        Function &Fn = P.func(F);
        if (F != P.Entry && Fn.Body && C.LabelUses[F] == 1 &&
            C.CallUses[F] == 1 && !Recursive.count(F) &&
            Fn.Params.size() == E->Args.size()) {
          ++Stats.Contracted;
          std::map<ValueId, Atom> VSub;
          for (unsigned I = 0; I != Fn.Params.size(); ++I)
            VSub[Fn.Params[I]] = E->Args[I];
          Exp *Body = Fn.Body;
          Fn.Body = nullptr; // now owned by the call site
          applySubst(P, Body, VSub);
          return Rewrite(Body);
        }
      }
      E->Cont = Rewrite(E->Cont);
      return E;
    };

    for (FuncId F : rootFunctions(P))
      if (P.func(F).Body)
        P.func(F).Body = Rewrite(P.func(F).Body);
  }

  //===--------------------------------------------------------------------===//
  // Constant folding + copy propagation
  //===--------------------------------------------------------------------===//

  std::map<ValueId, Atom> FoldSub;

  Atom resolved(Atom A) {
    for (int Guard = 0; Guard < 64 && A.isTemp(); ++Guard) {
      auto It = FoldSub.find(A.Id);
      if (It == FoldSub.end())
        return A;
      A = It->second;
    }
    return A;
  }

  /// Attempts to simplify one Prim; returns the replacement atom for the
  /// result, or an invalid atom when the node must stay.
  std::pair<bool, Atom> foldPrim(Exp *E) {
    PrimOp Op = E->Prim;
    Atom A = E->Args[0];
    Atom B = E->Args.size() > 1 ? E->Args[1] : Atom::constant(0);
    if (Op == PrimOp::Not) {
      if (A.isConst())
        return {true, Atom::constant(~A.Value)};
      return {false, {}};
    }
    if (A.isConst() && B.isConst())
      return {true, Atom::constant(evalPrim(Op, A.Value, B.Value))};

    // Normalize constants to the right for commutative operators.
    bool Commutative = Op == PrimOp::Add || Op == PrimOp::And ||
                       Op == PrimOp::Or || Op == PrimOp::Xor;
    if (Commutative && A.isConst() && !B.isConst()) {
      std::swap(A, B);
      E->Args[0] = A;
      E->Args[1] = B;
    }
    bool SameTemp = A.isTemp() && B.isTemp() && A.Id == B.Id;
    switch (Op) {
    case PrimOp::Add:
    case PrimOp::Or:
    case PrimOp::Xor:
      if (B.isConst() && B.Value == 0)
        return {true, A};
      if (SameTemp && Op == PrimOp::Or)
        return {true, A};
      if (SameTemp && Op == PrimOp::Xor)
        return {true, Atom::constant(0)};
      break;
    case PrimOp::Sub:
      if (B.isConst() && B.Value == 0)
        return {true, A};
      if (SameTemp)
        return {true, Atom::constant(0)};
      break;
    case PrimOp::And:
      if (B.isConst() && B.Value == 0)
        return {true, Atom::constant(0)};
      if (B.isConst() && B.Value == 0xFFFFFFFFu)
        return {true, A};
      if (SameTemp)
        return {true, A};
      break;
    case PrimOp::Shl:
    case PrimOp::Shr:
      if (B.isConst() && B.Value == 0)
        return {true, A};
      if (B.isConst() && B.Value >= 32)
        return {true, Atom::constant(0)};
      if (A.isConst() && A.Value == 0)
        return {true, Atom::constant(0)};
      break;
    case PrimOp::Not:
      break;
    }
    return {false, {}};
  }

  void foldAndPropagate() {
    FoldSub.clear();
    std::function<Exp *(Exp *)> Rewrite = [&](Exp *E) -> Exp * {
      if (!E)
        return nullptr;
      for (Atom &A : E->Args)
        A = resolved(A);
      if (E->Kind == ExpKind::App)
        E->Callee = resolved(E->Callee);

      switch (E->Kind) {
      case ExpKind::Prim: {
        auto [Folded, Result] = foldPrim(E);
        if (Folded) {
          ++Stats.ConstantsFolded;
          FoldSub[E->Results[0]] = Result;
          return Rewrite(E->Cont);
        }
        break;
      }
      case ExpKind::Branch:
        if (E->Args[0].isConst() && E->Args[1].isConst()) {
          ++Stats.BranchesFolded;
          bool Taken = evalCmp(E->Cmp, E->Args[0].Value, E->Args[1].Value);
          return Rewrite(Taken ? E->Then : E->Else);
        }
        E->Then = Rewrite(E->Then);
        E->Else = Rewrite(E->Else);
        return E;
      case ExpKind::Fix:
        for (FuncId F : E->FixFuncs)
          P.func(F).Body = Rewrite(P.func(F).Body);
        break;
      default:
        break;
      }
      E->Cont = Rewrite(E->Cont);
      return E;
    };

    for (FuncId F : rootFunctions(P))
      P.func(F).Body = Rewrite(P.func(F).Body);
  }

  //===--------------------------------------------------------------------===//
  // Useless-variable / dead-code elimination and read trimming
  //===--------------------------------------------------------------------===//

  void eliminateDead() {
    Census C(P);
    std::function<Exp *(Exp *)> Rewrite = [&](Exp *E) -> Exp * {
      if (!E)
        return nullptr;
      switch (E->Kind) {
      case ExpKind::Prim:
      case ExpKind::Hash:
      case ExpKind::Clone: {
        bool AnyUsed = false;
        for (ValueId R : E->Results)
          AnyUsed |= C.ValueUses[R] != 0;
        if (!AnyUsed) {
          ++Stats.DeadValues;
          return Rewrite(E->Cont);
        }
        if (E->Kind == ExpKind::Clone) {
          // Drop individually-dead clone results.
          std::vector<ValueId> Live;
          for (ValueId R : E->Results)
            if (C.ValueUses[R] != 0)
              Live.push_back(R);
          if (Live.size() != E->Results.size()) {
            ++Stats.DeadValues;
            E->Results = std::move(Live);
          }
        }
        break;
      }
      case ExpKind::MemRead: {
        bool AnyUsed = false;
        for (ValueId R : E->Results)
          AnyUsed |= C.ValueUses[R] != 0;
        if (!AnyUsed) {
          ++Stats.ReadsTrimmed;
          return Rewrite(E->Cont);
        }
        // Trim trailing unused registers (pairs for SDRAM).
        unsigned Step = E->Space == MemSpace::Sdram ? 2 : 1;
        while (E->Results.size() > Step) {
          bool TailDead = true;
          for (unsigned I = 0; I != Step; ++I)
            TailDead &=
                C.ValueUses[E->Results[E->Results.size() - 1 - I]] == 0;
          if (!TailDead)
            break;
          for (unsigned I = 0; I != Step; ++I)
            E->Results.pop_back();
          ++Stats.ReadsTrimmed;
        }
        break;
      }
      case ExpKind::Fix:
        for (FuncId F : E->FixFuncs)
          P.func(F).Body = Rewrite(P.func(F).Body);
        break;
      case ExpKind::Branch:
        E->Then = Rewrite(E->Then);
        E->Else = Rewrite(E->Else);
        return E;
      default:
        break;
      }
      E->Cont = Rewrite(E->Cont);
      return E;
    };
    for (FuncId F : rootFunctions(P))
      P.func(F).Body = Rewrite(P.func(F).Body);
  }

  /// Drops parameters that are never used in a function's body, together
  /// with the corresponding arguments at every call site (the paper's
  /// "useless variable elimination"). Functions whose label escapes as a
  /// value keep their arity.
  void removeUselessParams() {
    Census C(P);
    unsigned N = P.functions().size();
    std::vector<std::vector<Exp *>> Calls(N);
    std::vector<bool> Escapes(N, false);
    forEachExp(P, [&](Exp *E) {
      for (const Atom &A : E->Args)
        if (A.isLabel())
          Escapes[A.Func] = true;
      if (E->Kind == ExpKind::App && E->Callee.isLabel())
        Calls[E->Callee.Func].push_back(E);
    });

    for (unsigned F = 0; F != N; ++F) {
      Function &Fn = P.func(F);
      if (!Fn.Body || F == P.Entry || Escapes[F] || Calls[F].empty())
        continue;
      bool ArityOk = true;
      for (const Exp *Call : Calls[F])
        ArityOk &= Call->Args.size() == Fn.Params.size();
      if (!ArityOk)
        continue;
      std::vector<unsigned> Keep;
      for (unsigned I = 0; I != Fn.Params.size(); ++I)
        if (C.ValueUses[Fn.Params[I]] != 0)
          Keep.push_back(I);
      if (Keep.size() == Fn.Params.size())
        continue;
      Stats.ParamsRemoved += Fn.Params.size() - Keep.size();
      std::vector<ValueId> NewParams;
      for (unsigned I : Keep)
        NewParams.push_back(Fn.Params[I]);
      Fn.Params = std::move(NewParams);
      for (Exp *Call : Calls[F]) {
        std::vector<Atom> NewArgs;
        for (unsigned I : Keep)
          NewArgs.push_back(Call->Args[I]);
        Call->Args = std::move(NewArgs);
      }
    }
  }

  /// Reachability sweep from the entry: anything not reachable through
  /// label references is deleted (its Fix declarations included).
  void removeDeadFunctions() {
    std::set<FuncId> Reachable;
    std::vector<FuncId> Work;
    // Top-level user functions that still have call sites are reached via
    // labels from the entry's traversal, so the entry is the only seed.
    auto Visit = [&](FuncId F) {
      if (F != NoFunc && P.func(F).Body && Reachable.insert(F).second)
        Work.push_back(F);
    };
    Visit(P.Entry);
    while (!Work.empty()) {
      FuncId F = Work.back();
      Work.pop_back();
      std::function<void(const Exp *)> Walk = [&](const Exp *E) {
        for (; E;) {
          for (const Atom &A : E->Args)
            if (A.isLabel())
              Visit(A.Func);
          if (E->Kind == ExpKind::App && E->Callee.isLabel())
            Visit(E->Callee.Func);
          // Fix declarations alone do not make a function reachable; its
          // label must be referenced.
          if (E->Kind == ExpKind::Branch) {
            Walk(E->Then);
            Walk(E->Else);
            return;
          }
          E = E->Cont;
        }
      };
      Walk(P.func(F).Body);
    }
    for (Function &F : P.functions()) {
      if (!F.Body || Reachable.count(F.Id))
        continue;
      F.Body = nullptr;
      ++Stats.DeadFunctions;
    }
    // Purge dead declarations from Fix nodes.
    forEachExp(P, [&](Exp *E) {
      if (E->Kind != ExpKind::Fix)
        return;
      std::vector<FuncId> Live;
      for (FuncId F : E->FixFuncs)
        if (P.func(F).Body)
          Live.push_back(F);
      E->FixFuncs = std::move(Live);
    });
  }

  //===--------------------------------------------------------------------===//
  // Eta reduction: f(x...) = g(x...)  =>  f := g
  //===--------------------------------------------------------------------===//

  void etaReduce() {
    std::map<FuncId, Atom> LSub;
    for (Function &F : P.functions()) {
      if (!F.Body || F.Id == P.Entry || F.Body->Kind != ExpKind::App)
        continue;
      const Exp *A = F.Body;
      if (A->Callee.isLabel() && A->Callee.Func == F.Id)
        continue;
      if (A->Args.size() != F.Params.size())
        continue;
      bool Exact = true;
      for (unsigned I = 0; I != A->Args.size(); ++I)
        Exact &= A->Args[I].isTemp() && A->Args[I].Id == F.Params[I];
      if (!Exact)
        continue;
      // A temp callee must not be one of f's own params (it would escape
      // its binder after substitution).
      if (A->Callee.isTemp()) {
        bool OwnParam = false;
        for (ValueId Param : F.Params)
          OwnParam |= Param == A->Callee.Id;
        if (OwnParam)
          continue;
      }
      LSub[F.Id] = A->Callee;
      ++Stats.EtaReduced;
    }
    if (!LSub.empty())
      applySubstEverywhere(P, {}, LSub);
  }
};

} // namespace

OptStats cps::optimize(CpsProgram &P) {
  OptStats Stats;
  Optimizer Opt(P, Stats);
  for (unsigned Round = 0; Round != 16; ++Round) {
    ++Stats.Rounds;
    if (!Opt.round())
      break;
  }
  return Stats;
}

bool cps::allCalleesKnown(const CpsProgram &P) {
  bool Ok = true;
  forEachExp(const_cast<CpsProgram &>(P), [&](Exp *E) {
    if (E->Kind == ExpKind::App && !E->Callee.isLabel())
      Ok = false;
  });
  return Ok;
}

//===----------------------------------------------------------------------===//
// Static single use (cloning)
//===----------------------------------------------------------------------===//

unsigned cps::makeStaticSingleUse(CpsProgram &P) {
  // Count, per value: total uses and uses as store operands (the address
  // operand of a MemWrite is not a transfer-bank operand, so it does not
  // participate).
  std::vector<unsigned> TotalUses(P.numValues(), 0);
  std::vector<unsigned> StoreUses(P.numValues(), 0);
  forEachExp(P, [&](Exp *E) {
    for (unsigned I = 0; I != E->Args.size(); ++I) {
      const Atom &A = E->Args[I];
      if (!A.isTemp())
        continue;
      ++TotalUses[A.Id];
      if (E->Kind == ExpKind::MemWrite && I > 0)
        ++StoreUses[A.Id];
      if (E->Kind == ExpKind::BitTestSet && I == 1)
        ++StoreUses[A.Id];
      // A hash source occupies an S register with a SameReg color tie, so
      // it is store-like for SSU purposes.
      if (E->Kind == ExpKind::Hash && I == 0)
        ++StoreUses[A.Id];
    }
    if (E->Kind == ExpKind::App && E->Callee.isTemp())
      ++TotalUses[E->Callee.Id];
  });

  // A value needs cloning when a store use is not its only use.
  std::vector<bool> NeedsClone(P.numValues(), false);
  unsigned NumCloned = 0;
  for (ValueId V = 0; V != P.numValues(); ++V)
    if (StoreUses[V] >= 1 && TotalUses[V] > 1)
      NeedsClone[V] = true;

  // Walk each function; after a definition of a value that needs clones,
  // insert a Clone producing one fresh value per store occurrence in the
  // remainder of the program, then rewrite store occurrences (each one
  // consumes the next unused clone).
  std::map<ValueId, std::vector<ValueId>> FreshClones;
  std::map<ValueId, unsigned> NextClone;

  auto makeClonesAfter = [&](Exp *Def, ValueId V) {
    unsigned K = StoreUses[V];
    Exp *CloneExp = P.newExp(ExpKind::Clone);
    CloneExp->Args = {Atom::temp(V)};
    std::vector<ValueId> Fresh;
    for (unsigned I = 0; I != K; ++I) {
      ValueId C = P.newValue(P.valueName(V) + ".c" + std::to_string(I));
      Fresh.push_back(C);
      CloneExp->Results.push_back(C);
    }
    FreshClones[V] = std::move(Fresh);
    NextClone[V] = 0;
    ++NumCloned;
    CloneExp->Cont = Def->Cont;
    Def->Cont = CloneExp;
  };

  // Insert clones after definitions.
  forEachExp(P, [&](Exp *E) {
    switch (E->Kind) {
    case ExpKind::Prim:
    case ExpKind::MemRead:
    case ExpKind::Hash:
    case ExpKind::BitTestSet:
      for (ValueId R : E->Results)
        if (NeedsClone[R] && !FreshClones.count(R))
          makeClonesAfter(E, R);
      break;
    default:
      break;
    }
  });
  // Parameters: insert at function entry.
  for (Function &F : P.functions()) {
    if (!F.Body)
      continue;
    for (ValueId Param : F.Params) {
      if (!NeedsClone[Param] || FreshClones.count(Param))
        continue;
      Exp *CloneExp = P.newExp(ExpKind::Clone);
      CloneExp->Args = {Atom::temp(Param)};
      std::vector<ValueId> Fresh;
      for (unsigned I = 0; I != StoreUses[Param]; ++I) {
        ValueId C =
            P.newValue(P.valueName(Param) + ".c" + std::to_string(I));
        Fresh.push_back(C);
        CloneExp->Results.push_back(C);
      }
      FreshClones[Param] = std::move(Fresh);
      NextClone[Param] = 0;
      ++NumCloned;
      CloneExp->Cont = F.Body;
      F.Body = CloneExp;
    }
  }

  // Rewrite store operands to use the clones.
  forEachExp(P, [&](Exp *E) {
    if (E->Kind == ExpKind::Clone)
      return; // do not rewrite the clone's own source
    auto RewriteUse = [&](Atom &A) {
      if (!A.isTemp() || !NeedsClone[A.Id])
        return;
      auto It = FreshClones.find(A.Id);
      assert(It != FreshClones.end() && "clone missing for store operand");
      unsigned &Next = NextClone[A.Id];
      assert(Next < It->second.size() && "clone pool exhausted");
      A = Atom::temp(It->second[Next++]);
    };
    if (E->Kind == ExpKind::MemWrite)
      for (unsigned I = 1; I != E->Args.size(); ++I)
        RewriteUse(E->Args[I]);
    if (E->Kind == ExpKind::BitTestSet)
      RewriteUse(E->Args[1]);
    if (E->Kind == ExpKind::Hash)
      RewriteUse(E->Args[0]);
  });
  return NumCloned;
}
