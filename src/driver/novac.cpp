//===- novac.cpp - The Nova compiler command-line driver ------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Exit codes: 0 success, 1 compile/allocation failure, 2 usage error,
// 3 verifier violation in the emitted program.
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"
#include "driver/Compiler.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace nova;

static void usage() {
  std::fprintf(
      stderr,
      "usage: novac [options] <file.nova>\n"
      "  --dump-cps        print the optimized CPS\n"
      "  --dump-machine    print the pre-allocation machine IR\n"
      "  --dump-alloc      print the allocated micro-engine code (default)\n"
      "  --no-alloc        stop before register allocation\n"
      "  --stats           print Figure 5/6/7 style statistics\n"
      "  --json <file>     write allocation statistics as JSON\n"
      "  --spill-model     always build the spill-aware ILP model\n"
      "  --time-limit <s>  ILP solve budget in seconds (default 600)\n"
      "  --node-limit <n>  branch & bound node budget\n"
      "  --mip-threads <n> branch & bound worker threads (default 0 =\n"
      "                    one per hardware thread; always clamped to the\n"
      "                    available cores)\n"
      "  --mip-deterministic  reproducible parallel search (fixed-order\n"
      "                    node expansion at synchronization points)\n"
      "  --on-ilp-failure {error,incumbent,baseline}\n"
      "                    how far down the degradation ladder to go when\n"
      "                    the ILP fails (default incumbent): stop with an\n"
      "                    error, accept the best timed-out incumbent, or\n"
      "                    fall back to the heuristic allocator\n"
      "  --inject-fault <kind>[@<after>][x<times>][~<mag>]\n"
      "                    arm a solver fault (testing): singular-basis,\n"
      "                    eta-drift, lp-infeasible, mip-timeout, or\n"
      "                    worker-stall\n");
}

namespace {

/// Strict flag cracker: accepts "--flag value" and "--flag=value",
/// rejects missing values and anything that fails its parser. Any
/// malformed input is a usage error (exit 2) — never a silent zero.
struct ArgParser {
  int Argc;
  char **Argv;
  int I = 1;
  bool Failed = false;

  bool done() const { return I >= Argc || Failed; }
  const char *current() const { return Argv[I]; }

  /// If the current argument is --Name or --Name=..., extracts the value
  /// into \p Value and returns true.
  bool valueFlag(const char *Name, std::string &Value) {
    const char *Arg = Argv[I];
    size_t Len = std::strlen(Name);
    if (std::strncmp(Arg, Name, Len) != 0)
      return false;
    if (Arg[Len] == '=') {
      Value = Arg + Len + 1;
      ++I;
      return true;
    }
    if (Arg[Len] != '\0')
      return false; // e.g. --time-limits
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "novac: %s requires a value\n", Name);
      Failed = true;
      return true;
    }
    Value = Argv[++I];
    ++I;
    return true;
  }

  bool boolFlag(const char *Name) {
    if (std::strcmp(Argv[I], Name) != 0)
      return false;
    ++I;
    return true;
  }

  void fail(const char *Fmt, const std::string &Value) {
    std::fprintf(stderr, Fmt, Value.c_str());
    Failed = true;
  }
};

bool parseSeconds(const std::string &Text, double &Out) {
  const char *Begin = Text.c_str();
  char *End = nullptr;
  double V = std::strtod(Begin, &End);
  if (End == Begin || *End != '\0' || !(V > 0.0))
    return false;
  Out = V;
  return true;
}

bool parseCount(const std::string &Text, unsigned &Out) {
  std::optional<uint64_t> V = parseInteger(Text);
  if (!V || *V > ~0u)
    return false;
  Out = static_cast<unsigned>(*V);
  return true;
}

void writeStatsJson(const char *Path, const char *File,
                    const alloc::AllocationResult &A) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "novac: cannot write %s\n", Path);
    return;
  }
  const alloc::AllocStats &S = A.Stats;
  std::fprintf(F,
               "{\n"
               "  \"file\": \"%s\",\n"
               "  \"ok\": %s,\n"
               "  \"rung\": \"%s\",\n"
               "  \"proved_optimal\": %s,\n"
               "  \"ladder_attempts\": %u,\n"
               "  \"verifier_violations\": %u,\n"
               "  \"used_spill_model\": %s,\n"
               "  \"objective\": %.6f,\n"
               "  \"moves\": %u,\n"
               "  \"spills\": %u,\n"
               "  \"ilp\": {\"vars\": %u, \"cons\": %u, \"objterms\": %u},\n"
               "  \"solve\": {\"nodes\": %u, \"total_s\": %.3f, "
               "\"root_lp_s\": %.3f, \"threads\": %u}\n"
               "}\n",
               File, A.Ok ? "true" : "false", alloc::rungName(S.Rung),
               S.ProvedOptimal ? "true" : "false", S.LadderAttempts,
               S.VerifierViolations, S.UsedSpillModel ? "true" : "false",
               S.Objective, S.Moves, S.Spills, S.IlpSize.NumVariables,
               S.IlpSize.NumConstraints, S.IlpSize.NumObjectiveTerms,
               S.Solve.Nodes, S.Solve.TotalSeconds, S.Solve.RootLpSeconds,
               S.Solve.Threads);
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  bool DumpCps = false, DumpMachine = false, DumpAlloc = false;
  bool Stats = false;
  std::string JsonPath;
  std::vector<FaultSpec> Faults;
  driver::CompileOptions Opts;
  Opts.Alloc.Mip.TimeLimitSeconds = 600.0;
  Opts.Alloc.Mip.Threads = 0; // auto: one worker per hardware thread
  const char *File = nullptr;

  ArgParser P{argc, argv};
  while (!P.done()) {
    std::string V;
    if (P.boolFlag("--dump-cps"))
      DumpCps = true;
    else if (P.boolFlag("--dump-machine"))
      DumpMachine = true;
    else if (P.boolFlag("--dump-alloc"))
      DumpAlloc = true;
    else if (P.boolFlag("--no-alloc"))
      Opts.Allocate = false;
    else if (P.boolFlag("--stats"))
      Stats = true;
    else if (P.boolFlag("--spill-model"))
      Opts.Alloc.ForceSpillModel = true;
    else if (P.boolFlag("--mip-deterministic"))
      Opts.Alloc.Mip.Deterministic = true;
    else if (P.valueFlag("--time-limit", V)) {
      if (!P.Failed && !parseSeconds(V, Opts.Alloc.Mip.TimeLimitSeconds))
        P.fail("novac: --time-limit expects a positive number of seconds, "
               "got '%s'\n",
               V);
    } else if (P.valueFlag("--node-limit", V)) {
      if (!P.Failed && !parseCount(V, Opts.Alloc.Mip.NodeLimit))
        P.fail("novac: --node-limit expects a non-negative integer, got "
               "'%s'\n",
               V);
    } else if (P.valueFlag("--mip-threads", V)) {
      if (!P.Failed && !parseCount(V, Opts.Alloc.Mip.Threads))
        P.fail("novac: --mip-threads expects a non-negative integer, got "
               "'%s'\n",
               V);
    } else if (P.valueFlag("--on-ilp-failure", V)) {
      if (!P.Failed &&
          !alloc::parseOnIlpFailure(V, Opts.Alloc.FailurePolicy))
        P.fail("novac: --on-ilp-failure expects error, incumbent, or "
               "baseline, got '%s'\n",
               V);
    } else if (P.valueFlag("--inject-fault", V)) {
      if (!P.Failed) {
        FaultSpec Spec;
        std::string Error;
        if (!parseFaultSpec(V, Spec, Error))
          P.fail("novac: --inject-fault: %s\n", Error);
        else
          Faults.push_back(Spec);
      }
    } else if (P.valueFlag("--json", V)) {
      if (!P.Failed)
        JsonPath = V;
    } else if (P.current()[0] != '-' && !File) {
      File = P.current();
      ++P.I;
    } else {
      std::fprintf(stderr, "novac: unknown option '%s'\n", P.current());
      P.Failed = true;
    }
  }
  if (P.Failed || !File) {
    usage();
    return 2;
  }
  if (!DumpCps && !DumpMachine && !Stats)
    DumpAlloc = true;

  ScopedFaultInjection Armed(std::move(Faults));

  auto R = driver::compileNovaFile(File, Opts);
  if (Opts.Allocate && !JsonPath.empty())
    writeStatsJson(JsonPath.c_str(), File, R->Alloc);
  if (!R->Ok) {
    std::fprintf(stderr, "%s", R->ErrorText.c_str());
    return 1;
  }
  if (Opts.Allocate && R->Alloc.Stats.Rung != alloc::AllocRung::Optimal)
    std::fprintf(stderr,
                 "novac: warning: allocation degraded to the '%s' rung "
                 "(%s); code is verified but may be slower than optimal\n",
                 alloc::rungName(R->Alloc.Stats.Rung),
                 R->Alloc.Stats.ProvedOptimal ? "proved optimal"
                                              : "optimality not proved");

  if (DumpCps)
    std::printf("%s", R->Cps.print().c_str());
  if (DumpMachine)
    std::printf("%s", R->Machine.print().c_str());
  if (DumpAlloc && Opts.Allocate) {
    auto Violations = alloc::verifyAllocated(R->Alloc.Prog);
    std::printf("%s", R->Alloc.Prog.print().c_str());
    if (!Violations.empty()) {
      for (const std::string &V : Violations)
        std::fprintf(stderr, "verifier: %s\n", V.c_str());
      return 3;
    }
  }
  if (Stats) {
    ProgramStats S = R->novaStats();
    std::printf("lines=%u instructions=%u layouts=%u pack=%u unpack=%u "
                "raise=%u handle=%u\n",
                S.NovaLines, R->Machine.numInstructions(), S.LayoutSpecs,
                S.PackCount, S.UnpackCount, S.RaiseCount, S.HandleCount);
    if (Opts.Allocate) {
      const alloc::AllocStats &A = R->Alloc.Stats;
      std::printf("ilp: vars=%u cons=%u objterms=%u rootLP=%.2fs "
                  "total=%.2fs cpu=%.2fs nodes=%u threads=%u steals=%u "
                  "moves=%u spills=%u\n",
                  A.IlpSize.NumVariables, A.IlpSize.NumConstraints,
                  A.IlpSize.NumObjectiveTerms, A.Solve.RootLpSeconds,
                  A.Solve.TotalSeconds, A.Solve.CpuSeconds, A.Solve.Nodes,
                  A.Solve.Threads, A.Solve.Steals, A.Moves, A.Spills);
      std::printf("ladder: rung=%s proved-optimal=%s attempts=%u "
                  "rejected-violations=%u\n",
                  alloc::rungName(A.Rung), A.ProvedOptimal ? "yes" : "no",
                  A.LadderAttempts, A.VerifierViolations);
    }
  }
  return 0;
}
