//===- novac.cpp - The Nova compiler command-line driver ------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"
#include "driver/Compiler.h"

#include <cstdio>
#include <cstring>

using namespace nova;

static void usage() {
  std::fprintf(
      stderr,
      "usage: novac [options] <file.nova>\n"
      "  --dump-cps        print the optimized CPS\n"
      "  --dump-machine    print the pre-allocation machine IR\n"
      "  --dump-alloc      print the allocated micro-engine code (default)\n"
      "  --no-alloc        stop before register allocation\n"
      "  --stats           print Figure 5/6/7 style statistics\n"
      "  --spill-model     always build the spill-aware ILP model\n"
      "  --time-limit <s>  ILP solve budget in seconds (default 600)\n"
      "  --mip-threads <n> branch & bound worker threads (default 0 =\n"
      "                    one per hardware thread; always clamped to the\n"
      "                    available cores)\n"
      "  --mip-deterministic  reproducible parallel search (fixed-order\n"
      "                    node expansion at synchronization points)\n");
}

int main(int argc, char **argv) {
  bool DumpCps = false, DumpMachine = false, DumpAlloc = false;
  bool Stats = false;
  driver::CompileOptions Opts;
  Opts.Alloc.Mip.TimeLimitSeconds = 600.0;
  Opts.Alloc.Mip.Threads = 0; // auto: one worker per hardware thread
  const char *File = nullptr;

  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--dump-cps"))
      DumpCps = true;
    else if (!std::strcmp(argv[I], "--dump-machine"))
      DumpMachine = true;
    else if (!std::strcmp(argv[I], "--dump-alloc"))
      DumpAlloc = true;
    else if (!std::strcmp(argv[I], "--no-alloc"))
      Opts.Allocate = false;
    else if (!std::strcmp(argv[I], "--stats"))
      Stats = true;
    else if (!std::strcmp(argv[I], "--spill-model"))
      Opts.Alloc.ForceSpillModel = true;
    else if (!std::strcmp(argv[I], "--time-limit") && I + 1 < argc)
      Opts.Alloc.Mip.TimeLimitSeconds = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--mip-threads") && I + 1 < argc)
      Opts.Alloc.Mip.Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--mip-deterministic"))
      Opts.Alloc.Mip.Deterministic = true;
    else if (argv[I][0] != '-' && !File)
      File = argv[I];
    else {
      usage();
      return 2;
    }
  }
  if (!File) {
    usage();
    return 2;
  }
  if (!DumpCps && !DumpMachine && !Stats)
    DumpAlloc = true;

  auto R = driver::compileNovaFile(File, Opts);
  if (!R->Ok) {
    std::fprintf(stderr, "%s", R->ErrorText.c_str());
    return 1;
  }

  if (DumpCps)
    std::printf("%s", R->Cps.print().c_str());
  if (DumpMachine)
    std::printf("%s", R->Machine.print().c_str());
  if (DumpAlloc && Opts.Allocate) {
    auto Violations = alloc::verifyAllocated(R->Alloc.Prog);
    std::printf("%s", R->Alloc.Prog.print().c_str());
    if (!Violations.empty()) {
      for (const std::string &V : Violations)
        std::fprintf(stderr, "verifier: %s\n", V.c_str());
      return 1;
    }
  }
  if (Stats) {
    ProgramStats S = R->novaStats();
    std::printf("lines=%u instructions=%u layouts=%u pack=%u unpack=%u "
                "raise=%u handle=%u\n",
                S.NovaLines, R->Machine.numInstructions(), S.LayoutSpecs,
                S.PackCount, S.UnpackCount, S.RaiseCount, S.HandleCount);
    if (Opts.Allocate) {
      const alloc::AllocStats &A = R->Alloc.Stats;
      std::printf("ilp: vars=%u cons=%u objterms=%u rootLP=%.2fs "
                  "total=%.2fs cpu=%.2fs nodes=%u threads=%u steals=%u "
                  "moves=%u spills=%u\n",
                  A.IlpSize.NumVariables, A.IlpSize.NumConstraints,
                  A.IlpSize.NumObjectiveTerms, A.Solve.RootLpSeconds,
                  A.Solve.TotalSeconds, A.Solve.CpuSeconds, A.Solve.Nodes,
                  A.Solve.Threads, A.Solve.Steals, A.Moves, A.Spills);
    }
  }
  return 0;
}
