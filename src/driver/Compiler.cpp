//===- Compiler.cpp -------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "cps/Convert.h"
#include "ixp/ISel.h"
#include "nova/Parser.h"

#include <fstream>
#include <sstream>

using namespace nova;
using namespace nova::driver;

std::unique_ptr<CompileResult>
driver::compileNova(const std::string &Source, const std::string &Name,
                    const CompileOptions &Opts) {
  auto R = std::make_unique<CompileResult>();
  uint32_t Buf = R->SM.addBuffer(Name, Source);
  R->Diags = std::make_unique<DiagnosticEngine>(R->SM);

  auto Fail = [&] {
    R->Ok = false;
    R->ErrorText = R->Diags->render();
    return std::move(R);
  };

  Parser P(R->SM, Buf, R->Arena, *R->Diags);
  R->Ast = P.parseProgram();
  if (R->Diags->hasErrors())
    return Fail();

  R->Sema = std::make_unique<SemaResult>(*R->Diags);
  runSema(R->Ast, R->SM, *R->Diags, *R->Sema);
  if (!R->Sema->Success)
    return Fail();

  if (!cps::convertToCps(R->Ast, *R->Sema, *R->Diags, R->Cps))
    return Fail();

  if (Opts.Optimize) {
    R->Opt = cps::optimize(R->Cps);
    cps::makeStaticSingleUse(R->Cps);
    if (!cps::allCalleesKnown(R->Cps)) {
      R->Diags->error(SourceLoc::invalid(),
                      "a continuation value could not be resolved to a "
                      "known label (unsupported indirect control flow)");
      return Fail();
    }
  }

  if (!ixp::selectInstructions(R->Cps, *R->Diags, R->Machine))
    return Fail();

  if (Opts.Allocate) {
    R->Alloc = alloc::allocate(R->Machine, *R->Diags, Opts.Alloc);
    if (!R->Alloc.Ok) {
      R->ErrorText = R->Alloc.Error.render() + "\n" + R->Diags->render();
      R->Ok = false;
      return R;
    }
  }

  R->Ok = true;
  return R;
}

std::unique_ptr<CompileResult>
driver::compileNovaFile(const std::string &Path, const CompileOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    auto R = std::make_unique<CompileResult>();
    R->ErrorText = "cannot open " + Path;
    return R;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return compileNova(SS.str(), Path, Opts);
}
