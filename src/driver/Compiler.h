//===- Compiler.h - One-call Nova compilation pipeline ----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public compiler entry point: Nova source -> parse -> type check ->
/// CPS -> optimize -> SSU -> instruction selection -> ILP register/bank
/// allocation -> allocated micro-engine code. Each stage's artifacts stay
/// accessible for inspection, benchmarking, and the paper's statistics.
///
//===----------------------------------------------------------------------===//

#ifndef DRIVER_COMPILER_H
#define DRIVER_COMPILER_H

#include "alloc/Allocator.h"
#include "cps/Ir.h"
#include "cps/Opt.h"
#include "ixp/MachineIr.h"
#include "nova/Ast.h"
#include "nova/Sema.h"

#include <memory>
#include <string>

namespace nova {
namespace driver {

struct CompileOptions {
  /// Run the CPS optimizer and SSU (required for allocation; off only for
  /// front-end inspection).
  bool Optimize = true;
  /// Run the ILP allocator (the compiler's back end).
  bool Allocate = true;
  alloc::AllocOptions Alloc;
};

/// All artifacts of one compilation. Movable, not copyable.
struct CompileResult {
  bool Ok = false;
  std::string ErrorText;

  SourceManager SM;
  AstArena Arena;
  std::unique_ptr<DiagnosticEngine> Diags;
  Program Ast;
  std::unique_ptr<SemaResult> Sema;
  cps::CpsProgram Cps;
  cps::OptStats Opt;
  ixp::MachineProgram Machine;
  alloc::AllocationResult Alloc;

  /// Figure 5 statistics: Nova lines, machine instruction count, layout
  /// specs, pack/unpack/raise/handle counts.
  ProgramStats novaStats() const { return Sema ? Sema->Stats : ProgramStats{}; }
};

/// Compiles Nova source text (name used in diagnostics).
std::unique_ptr<CompileResult> compileNova(const std::string &Source,
                                           const std::string &Name = "input",
                                           const CompileOptions &Opts = {});

/// Reads and compiles a .nova file.
std::unique_ptr<CompileResult> compileNovaFile(const std::string &Path,
                                               const CompileOptions &Opts = {});

} // namespace driver
} // namespace nova

#endif // DRIVER_COMPILER_H
