//===- Timer.cpp ----------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

// Timer is header-only; this file exists so the support library always has
// at least one object per header group and anchors future out-of-line code.
