//===- Status.cpp ---------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <ostream>

using namespace nova;

const char *nova::statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:                 return "ok";
  case StatusCode::InvalidArgument:    return "invalid-argument";
  case StatusCode::ModelBuildFailed:   return "model-build-failed";
  case StatusCode::IlpInfeasible:      return "ilp-infeasible";
  case StatusCode::IlpBudgetExceeded:  return "ilp-budget-exceeded";
  case StatusCode::IlpNonOptimal:      return "ilp-non-optimal";
  case StatusCode::LpNumericalTrouble: return "lp-numerical-trouble";
  case StatusCode::ExtractFailed:      return "extract-failed";
  case StatusCode::VerifyFailed:       return "verify-failed";
  case StatusCode::BaselineFailed:     return "baseline-failed";
  case StatusCode::IoError:            return "io-error";
  case StatusCode::SimTrap:            return "sim-trap";
  case StatusCode::Internal:           return "internal";
  case StatusCode::CheckpointCorrupt:  return "checkpoint-corrupt";
  case StatusCode::CheckpointMismatch: return "checkpoint-mismatch";
  }
  return "unknown";
}

const char *nova::phaseName(Phase P) {
  switch (P) {
  case Phase::Driver:     return "driver";
  case Phase::Frontend:   return "frontend";
  case Phase::ModelBuild: return "model-build";
  case Phase::Solve:      return "solve";
  case Phase::Extract:    return "extract";
  case Phase::Verify:     return "verify";
  case Phase::Baseline:   return "baseline";
  case Phase::Execute:    return "execute";
  }
  return "unknown";
}

std::string Status::render() const {
  if (ok())
    return "ok";
  std::string Out = phaseName(ErrPhase);
  Out += ": ";
  Out += statusCodeName(ErrCode);
  Out += ": ";
  Out += Msg;
  for (const std::string &H : Hints) {
    Out += "\n  hint: ";
    Out += H;
  }
  return Out;
}

std::ostream &nova::operator<<(std::ostream &OS, const Status &S) {
  return OS << S.render();
}
