//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used to report solver times (Figure 7).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMER_H
#define SUPPORT_TIMER_H

#include <chrono>
#include <limits>

namespace nova {

/// A stopwatch that starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A wall-clock watchdog: a budget in seconds fixed at construction. The
/// degradation ladder hands each rung a Deadline carved out of the user's
/// overall --time-limit, so one hung rung cannot starve the fallbacks
/// below it.
class Deadline {
public:
  /// A deadline that never expires.
  static Deadline never() { return Deadline(Inf()); }

  /// Expires \p Seconds of wall clock from now.
  static Deadline after(double Seconds) { return Deadline(Seconds); }

  /// Seconds left; never negative, infinite for never().
  double remaining() const {
    double Left = Budget - Clock.seconds();
    return Left > 0.0 ? Left : 0.0;
  }

  bool expired() const { return remaining() <= 0.0; }

  /// The full budget this deadline was created with.
  double budget() const { return Budget; }

private:
  static double Inf() { return std::numeric_limits<double>::infinity(); }
  explicit Deadline(double Seconds) : Budget(Seconds) {}

  Timer Clock;
  double Budget;
};

} // namespace nova

#endif // SUPPORT_TIMER_H
