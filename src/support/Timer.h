//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used to report solver times (Figure 7).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMER_H
#define SUPPORT_TIMER_H

#include <chrono>

namespace nova {

/// A stopwatch that starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace nova

#endif // SUPPORT_TIMER_H
