//===- StringUtils.cpp ----------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace nova;

std::vector<std::string_view> nova::split(std::string_view Text, char Sep) {
  std::vector<std::string_view> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.push_back(Text.substr(Start));
      return Out;
    }
    Out.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view nova::trim(std::string_view Text) {
  size_t B = 0, E = Text.size();
  while (B < E && std::isspace(static_cast<unsigned char>(Text[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(Text[E - 1])))
    --E;
  return Text.substr(B, E - B);
}

std::optional<uint64_t> nova::parseInteger(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  if (Text.size() > 2 && Text[0] == '0' && (Text[1] == 'b' || Text[1] == 'B')) {
    for (char C : Text.substr(2)) {
      if (C != '0' && C != '1')
        return std::nullopt;
      if (Value >> 63)
        return std::nullopt;
      Value = (Value << 1) | (C - '0');
    }
    return Value;
  }
  if (Text.size() > 2 && Text[0] == '0' && (Text[1] == 'x' || Text[1] == 'X')) {
    for (char C : Text.substr(2)) {
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        Digit = C - 'A' + 10;
      else
        return std::nullopt;
      if (Value >> 60)
        return std::nullopt;
      Value = (Value << 4) | Digit;
    }
    return Value;
  }
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Next = Value * 10 + (C - '0');
    if (Next < Value)
      return std::nullopt;
    Value = Next;
  }
  return Value;
}

std::string nova::formatf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Args2;
  va_copy(Args2, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out(Len > 0 ? Len : 0, '\0');
  if (Len > 0)
    std::vsnprintf(Out.data(), Len + 1, Fmt, Args2);
  va_end(Args2);
  return Out;
}

std::string nova::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
