//===- FaultInjection.cpp -------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>

using namespace nova;

std::atomic<bool> FaultInjector::ArmedFlag{false};

const char *nova::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::SingularBasis: return "singular-basis";
  case FaultKind::EtaDrift:      return "eta-drift";
  case FaultKind::LpInfeasible:  return "lp-infeasible";
  case FaultKind::MipTimeout:    return "mip-timeout";
  case FaultKind::WorkerStall:   return "worker-stall";
  case FaultKind::MemJitter:     return "mem-jitter";
  case FaultKind::SimBitFlip:    return "sim-bitflip";
  }
  return "unknown";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

void FaultInjector::arm(std::vector<FaultSpec> Specs) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Slot &S : Slots)
    S = Slot();
  for (const FaultSpec &Spec : Specs) {
    Slot &S = Slots[static_cast<unsigned>(Spec.Kind)];
    S.Spec = Spec;
    S.Active = true;
    // SplitMix64 state; offset so Seed 0 still produces a usable stream.
    S.RngState = Spec.Seed + 0x9e3779b97f4a7c15ull;
  }
  // An empty plan arms nothing: armed() gates the fast path's
  // per-instruction slow tier (and a mutex on every draw), so arming
  // without any active fault would silently cost an order of magnitude
  // in throughput for a guaranteed no-op.
  ArmedFlag.store(!Specs.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> Lock(Mu);
  ArmedFlag.store(false, std::memory_order_relaxed);
  for (Slot &S : Slots)
    S = Slot();
}

void FaultInjector::rearm() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Slot &S : Slots) {
    if (!S.Active)
      continue;
    S.Opportunities = 0;
    S.Fired = 0;
    S.RngState = S.Spec.Seed + 0x9e3779b97f4a7c15ull;
  }
}

static double nextUnit(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z = Z ^ (Z >> 31);
  return static_cast<double>(Z >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::shouldFire(FaultKind K) {
  std::lock_guard<std::mutex> Lock(Mu);
  Slot &S = Slots[static_cast<unsigned>(K)];
  if (!S.Active)
    return false;
  unsigned Opportunity = S.Opportunities++;
  if (Opportunity < S.Spec.After)
    return false;
  if (S.Fired >= S.Spec.Times)
    return false;
  if (S.Spec.Probability < 1.0 && nextUnit(S.RngState) >= S.Spec.Probability)
    return false;
  ++S.Fired;
  return true;
}

double FaultInjector::magnitude(FaultKind K, double Default) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const Slot &S = Slots[static_cast<unsigned>(K)];
  if (!S.Active || S.Spec.Magnitude == 0.0)
    return Default;
  return S.Spec.Magnitude;
}

unsigned FaultInjector::drawCycles(FaultKind K, double Default) {
  std::lock_guard<std::mutex> Lock(Mu);
  Slot &S = Slots[static_cast<unsigned>(K)];
  double Mag = (!S.Active || S.Spec.Magnitude == 0.0) ? Default
                                                      : S.Spec.Magnitude;
  unsigned Max = Mag < 1.0 ? 1u : static_cast<unsigned>(Mag);
  return 1u + static_cast<unsigned>(nextUnit(S.RngState) * Max) % Max;
}

unsigned FaultInjector::fired(FaultKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Slots[static_cast<unsigned>(K)].Fired;
}

unsigned FaultInjector::opportunities(FaultKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Slots[static_cast<unsigned>(K)].Opportunities;
}

bool nova::parseFaultSpec(const std::string &Text, FaultSpec &Out,
                          std::string &Error) {
  // Grammar: kind[@after][xTimes][~magnitude]; suffixes in that order.
  size_t End = Text.find_first_of("@x~");
  std::string Kind = Text.substr(0, End);
  FaultSpec Spec;
  if (Kind == "singular-basis")
    Spec.Kind = FaultKind::SingularBasis;
  else if (Kind == "eta-drift")
    Spec.Kind = FaultKind::EtaDrift;
  else if (Kind == "lp-infeasible")
    Spec.Kind = FaultKind::LpInfeasible;
  else if (Kind == "mip-timeout")
    Spec.Kind = FaultKind::MipTimeout;
  else if (Kind == "worker-stall")
    Spec.Kind = FaultKind::WorkerStall;
  else if (Kind == "mem-jitter")
    Spec.Kind = FaultKind::MemJitter;
  else if (Kind == "sim-bitflip")
    Spec.Kind = FaultKind::SimBitFlip;
  else {
    Error = "unknown fault kind '" + Kind +
            "' (expected singular-basis, eta-drift, lp-infeasible, "
            "mip-timeout, worker-stall, mem-jitter, or sim-bitflip)";
    return false;
  }

  size_t Pos = (End == std::string::npos) ? Text.size() : End;
  while (Pos < Text.size()) {
    char Tag = Text[Pos++];
    size_t Next = Text.find_first_of("@x~", Pos);
    std::string Field =
        Text.substr(Pos, Next == std::string::npos ? Next : Next - Pos);
    if (Field.empty()) {
      Error = std::string("empty value after '") + Tag + "' in fault spec '" +
              Text + "'";
      return false;
    }
    const char *Begin = Field.c_str();
    char *Parsed = nullptr;
    if (Tag == '@' || Tag == 'x') {
      unsigned long V = std::strtoul(Begin, &Parsed, 10);
      if (Parsed == Begin || *Parsed != '\0') {
        Error = std::string("malformed count '") + Field + "' in fault spec '" +
                Text + "'";
        return false;
      }
      if (Tag == '@')
        Spec.After = static_cast<unsigned>(V);
      else
        Spec.Times = static_cast<unsigned>(V);
    } else { // '~'
      double V = std::strtod(Begin, &Parsed);
      if (Parsed == Begin || *Parsed != '\0') {
        Error = std::string("malformed magnitude '") + Field +
                "' in fault spec '" + Text + "'";
        return false;
      }
      Spec.Magnitude = V;
    }
    Pos = (Next == std::string::npos) ? Text.size() : Next;
  }

  Out = Spec;
  return true;
}
