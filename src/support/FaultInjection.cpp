//===- FaultInjection.cpp -------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>

using namespace nova;

std::atomic<bool> FaultInjector::ArmedFlag{false};

const char *nova::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::SingularBasis: return "singular-basis";
  case FaultKind::EtaDrift:      return "eta-drift";
  case FaultKind::LpInfeasible:  return "lp-infeasible";
  case FaultKind::MipTimeout:    return "mip-timeout";
  case FaultKind::WorkerStall:   return "worker-stall";
  case FaultKind::MemJitter:     return "mem-jitter";
  case FaultKind::SimBitFlip:    return "sim-bitflip";
  case FaultKind::CtxLockup:     return "ctx-lockup";
  case FaultKind::RingStall:     return "ring-stall";
  case FaultKind::ChanBrownout:  return "chan-brownout";
  case FaultKind::SdramBitFlip:  return "sdram-bitflip";
  case FaultKind::DmaDrop:       return "dma-drop";
  }
  return "unknown";
}

FaultDomain nova::faultKindDomain(FaultKind K) {
  switch (K) {
  case FaultKind::SingularBasis:
  case FaultKind::EtaDrift:
  case FaultKind::LpInfeasible:
  case FaultKind::MipTimeout:
  case FaultKind::WorkerStall:
    return FaultDomain::Solver;
  case FaultKind::MemJitter:
  case FaultKind::SimBitFlip:
    return FaultDomain::Sim;
  case FaultKind::CtxLockup:
  case FaultKind::RingStall:
  case FaultKind::ChanBrownout:
  case FaultKind::SdramBitFlip:
  case FaultKind::DmaDrop:
    return FaultDomain::Chip;
  }
  return FaultDomain::Solver;
}

const char *nova::faultDomainName(FaultDomain D) {
  switch (D) {
  case FaultDomain::Solver: return "solver";
  case FaultDomain::Sim:    return "sim";
  case FaultDomain::Chip:   return "chip";
  }
  return "unknown";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector I;
  return I;
}

void FaultInjector::arm(std::vector<FaultSpec> Specs) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Slot &S : Slots)
    S = Slot();
  for (const FaultSpec &Spec : Specs) {
    Slot &S = Slots[static_cast<unsigned>(Spec.Kind)];
    S.Spec = Spec;
    S.Active = true;
    // SplitMix64 state; offset so Seed 0 still produces a usable stream.
    S.RngState = Spec.Seed + 0x9e3779b97f4a7c15ull;
  }
  // An empty plan arms nothing: armed() gates the fast path's
  // per-instruction slow tier (and a mutex on every draw), so arming
  // without any active fault would silently cost an order of magnitude
  // in throughput for a guaranteed no-op.
  ArmedFlag.store(!Specs.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> Lock(Mu);
  ArmedFlag.store(false, std::memory_order_relaxed);
  for (Slot &S : Slots)
    S = Slot();
}

void FaultInjector::rearm() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Slot &S : Slots) {
    if (!S.Active)
      continue;
    S.Opportunities = 0;
    S.Fired = 0;
    S.RngState = S.Spec.Seed + 0x9e3779b97f4a7c15ull;
  }
}

static double nextUnit(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z = Z ^ (Z >> 31);
  return static_cast<double>(Z >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::shouldFire(FaultKind K) {
  std::lock_guard<std::mutex> Lock(Mu);
  Slot &S = Slots[static_cast<unsigned>(K)];
  if (!S.Active)
    return false;
  unsigned Opportunity = S.Opportunities++;
  if (Opportunity < S.Spec.After)
    return false;
  if (S.Fired >= S.Spec.Times)
    return false;
  if (S.Spec.Probability < 1.0 && nextUnit(S.RngState) >= S.Spec.Probability)
    return false;
  ++S.Fired;
  return true;
}

double FaultInjector::magnitude(FaultKind K, double Default) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const Slot &S = Slots[static_cast<unsigned>(K)];
  if (!S.Active || S.Spec.Magnitude == 0.0)
    return Default;
  return S.Spec.Magnitude;
}

unsigned FaultInjector::drawCycles(FaultKind K, double Default) {
  std::lock_guard<std::mutex> Lock(Mu);
  Slot &S = Slots[static_cast<unsigned>(K)];
  double Mag = (!S.Active || S.Spec.Magnitude == 0.0) ? Default
                                                      : S.Spec.Magnitude;
  unsigned Max = Mag < 1.0 ? 1u : static_cast<unsigned>(Mag);
  return 1u + static_cast<unsigned>(nextUnit(S.RngState) * Max) % Max;
}

unsigned FaultInjector::fired(FaultKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Slots[static_cast<unsigned>(K)].Fired;
}

unsigned FaultInjector::opportunities(FaultKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Slots[static_cast<unsigned>(K)].Opportunities;
}

/// Maps a CLI spelling to its FaultKind; returns false on unknown names.
static bool lookupFaultKind(const std::string &Name, FaultKind &Out) {
  for (unsigned K = 0; K < 12; ++K) {
    FaultKind Kind = static_cast<FaultKind>(K);
    if (Name == faultKindName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

/// Finds the next spec separator at or after \p From. 'x' only counts
/// when a digit follows: kind names may contain it ("ctx-lockup"), the
/// xTimes suffix always precedes a count.
static size_t findSpecSep(const std::string &Text, size_t From) {
  for (size_t I = From; I < Text.size(); ++I) {
    char C = Text[I];
    if (C == '@' || C == '~')
      return I;
    if (C == 'x' && I + 1 < Text.size() && Text[I + 1] >= '0' &&
        Text[I + 1] <= '9')
      return I;
  }
  return std::string::npos;
}

bool nova::parseFaultSpec(const std::string &Text, FaultSpec &Out,
                          std::string &Error) {
  // Grammar: kind[@after][xTimes][~magnitude]; suffixes in that order.
  size_t End = findSpecSep(Text, 0);
  std::string Kind = Text.substr(0, End);
  FaultSpec Spec;
  if (!lookupFaultKind(Kind, Spec.Kind)) {
    Error = "unknown fault kind '" + Kind +
            "' (expected singular-basis, eta-drift, lp-infeasible, "
            "mip-timeout, worker-stall, mem-jitter, sim-bitflip, "
            "ctx-lockup, ring-stall, chan-brownout, sdram-bitflip, or "
            "dma-drop)";
    return false;
  }
  if (faultKindDomain(Spec.Kind) == FaultDomain::Chip) {
    Error = "fault kind '" + Kind +
            "' is chip-domain: use --fault-schedule (with --chip), not "
            "--inject-fault";
    return false;
  }

  size_t Pos = (End == std::string::npos) ? Text.size() : End;
  while (Pos < Text.size()) {
    char Tag = Text[Pos++];
    size_t Next = findSpecSep(Text, Pos);
    std::string Field =
        Text.substr(Pos, Next == std::string::npos ? Next : Next - Pos);
    if (Field.empty()) {
      Error = std::string("empty value after '") + Tag + "' in fault spec '" +
              Text + "'";
      return false;
    }
    const char *Begin = Field.c_str();
    char *Parsed = nullptr;
    if (Tag == '@' || Tag == 'x') {
      unsigned long V = std::strtoul(Begin, &Parsed, 10);
      if (Parsed == Begin || *Parsed != '\0') {
        Error = std::string("malformed count '") + Field + "' in fault spec '" +
                Text + "'";
        return false;
      }
      if (Tag == '@')
        Spec.After = static_cast<unsigned>(V);
      else
        Spec.Times = static_cast<unsigned>(V);
    } else { // '~'
      double V = std::strtod(Begin, &Parsed);
      if (Parsed == Begin || *Parsed != '\0') {
        Error = std::string("malformed magnitude '") + Field +
                "' in fault spec '" + Text + "'";
        return false;
      }
      Spec.Magnitude = V;
    }
    Pos = (Next == std::string::npos) ? Text.size() : Next;
  }

  Out = Spec;
  return true;
}

bool nova::parseFaultSchedule(const std::string &Text, FaultSchedule &Out,
                              std::string &Error) {
  FaultSchedule Sched;
  bool Seen[12] = {};
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Item =
        Text.substr(Pos, Comma == std::string::npos ? Comma : Comma - Pos);
    if (Item.empty()) {
      Error = "empty entry in fault schedule '" + Text + "'";
      return false;
    }

    // Grammar per entry: kind@rate[~magnitude]. Rate is mandatory: a
    // schedule without a rate has no deterministic firing rule.
    size_t At = Item.find('@');
    if (At == std::string::npos) {
      Error = "missing '@rate' in fault schedule entry '" + Item + "'";
      return false;
    }
    FaultScheduleEntry E;
    std::string Kind = Item.substr(0, At);
    if (!lookupFaultKind(Kind, E.Kind)) {
      Error = "unknown fault kind '" + Kind +
              "' in fault schedule (expected ctx-lockup, ring-stall, "
              "chan-brownout, sdram-bitflip, or dma-drop)";
      return false;
    }
    if (faultKindDomain(E.Kind) != FaultDomain::Chip) {
      Error = "fault kind '" + Kind + "' is " +
              faultDomainName(faultKindDomain(E.Kind)) +
              "-domain: --fault-schedule only takes chip kinds "
              "(ctx-lockup, ring-stall, chan-brownout, sdram-bitflip, "
              "dma-drop)";
      return false;
    }
    if (Seen[static_cast<unsigned>(E.Kind)]) {
      Error = "duplicate fault kind '" + Kind + "' in schedule '" + Text + "'";
      return false;
    }
    Seen[static_cast<unsigned>(E.Kind)] = true;

    size_t Tilde = Item.find('~', At + 1);
    std::string RateText = Item.substr(
        At + 1, Tilde == std::string::npos ? Tilde : Tilde - (At + 1));
    const char *Begin = RateText.c_str();
    char *Parsed = nullptr;
    unsigned long long Rate = std::strtoull(Begin, &Parsed, 10);
    if (RateText.empty() || Parsed == Begin || *Parsed != '\0' || Rate < 1) {
      Error = "malformed rate '" + RateText + "' in fault schedule entry '" +
              Item + "' (need an integer >= 1)";
      return false;
    }
    E.Rate = Rate;

    if (Tilde != std::string::npos) {
      std::string MagText = Item.substr(Tilde + 1);
      Begin = MagText.c_str();
      Parsed = nullptr;
      double Mag = std::strtod(Begin, &Parsed);
      if (MagText.empty() || Parsed == Begin || *Parsed != '\0' ||
          Mag <= 0.0) {
        Error = "malformed magnitude '" + MagText +
                "' in fault schedule entry '" + Item + "' (need a number > 0)";
        return false;
      }
      E.Magnitude = Mag;
    }

    Sched.push_back(E);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }

  if (Sched.empty()) {
    Error = "empty fault schedule";
    return false;
  }
  Out = Sched;
  return true;
}
