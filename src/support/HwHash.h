//===- HwHash.h - The micro-engine hash unit's function ---------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shared definition of the IXP hash unit's word hash so the CPS
/// evaluator and the micro-engine simulator agree bit-for-bit. (The real
/// IXP1200 used a polynomial hash over 48/64-bit quantities; a 32-bit
/// mixer preserves the relevant behaviour: a deterministic, well-mixed,
/// single-result hardware operation.)
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_HWHASH_H
#define SUPPORT_HWHASH_H

#include <cstdint>

namespace nova {

/// MurmurHash3 finalizer; deterministic across platforms.
inline uint32_t hwHash(uint32_t X) {
  X ^= X >> 16;
  X *= 0x85ebca6bu;
  X ^= X >> 13;
  X *= 0xc2b2ae35u;
  X ^= X >> 16;
  return X;
}

} // namespace nova

#endif // SUPPORT_HWHASH_H
