//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace nova;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "diag";
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid()) {
      LineColumn LC = SM.lineColumn(D.Loc);
      OS << SM.bufferName(D.Loc.BufferId) << ':' << LC.Line << ':' << LC.Column
         << ": " << kindName(D.Kind) << ": " << D.Message << '\n';
      std::string_view Line = SM.lineText(D.Loc);
      OS << "  " << Line << "\n  ";
      for (uint32_t I = 1; I < LC.Column; ++I)
        OS << (I - 1 < Line.size() && Line[I - 1] == '\t' ? '\t' : ' ');
      OS << "^\n";
    } else {
      OS << kindName(D.Kind) << ": " << D.Message << '\n';
    }
  }
  return OS.str();
}
