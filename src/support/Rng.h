//===- Rng.h - Deterministic random number generator ------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by workload
/// generators and property tests so runs are reproducible across
/// platforms — unlike std::mt19937 distribution behaviour, which is
/// implementation-defined for std::uniform_int_distribution.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RNG_H
#define SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace nova {

/// SplitMix64 PRNG with convenience helpers for bounded draws.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform draw in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Debiased modulo via rejection; Bound is small in all our uses, so the
    // rejection loop terminates almost immediately.
    uint64_t Threshold = -Bound % Bound;
    while (true) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform draw in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

private:
  uint64_t State;
};

} // namespace nova

#endif // SUPPORT_RNG_H
