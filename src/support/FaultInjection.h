//===- FaultInjection.h - Deterministic solver fault injection --*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable fault-injection harness for the solver stack. Hooks in
/// Simplex, Basis, and MipSolver consult an armed FaultInjector and, when
/// a spec fires, force the failure modes a production compiler must
/// survive: singular bases (LU repair), eta-file drift (refactorize on
/// drift), spurious LP infeasibility (spill retry / baseline fallback),
/// branch-and-bound timeouts at chosen node counts (incumbent salvage),
/// and worker-thread stalls (work stealing / watchdog deadlines).
///
/// Firing is deterministic: each spec counts *opportunities* (times its
/// hook site was reached) and fires from opportunity `After` on, at most
/// `Times` times, optionally gated by a seeded Bernoulli draw. Tests arm
/// a plan with ScopedFaultInjection, run the pipeline, and assert both
/// the recovery rung taken and that the emitted code still runs packets
/// correctly.
///
/// The disarmed fast path is one relaxed atomic load, so the hooks are
/// free in production use.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_FAULTINJECTION_H
#define SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nova {

enum class FaultKind : uint8_t {
  SingularBasis, ///< Basis factorization reports a fabricated deficiency
  EtaDrift,      ///< an eta-file pivot value is perturbed by Magnitude
  LpInfeasible,  ///< Simplex::solve reports Infeasible without solving
  MipTimeout,    ///< branch & bound behaves as if the time limit tripped
  WorkerStall,   ///< a search worker sleeps Magnitude seconds mid-loop
  MemJitter,     ///< SRAM/SDRAM access latency inflated by up to Magnitude
                 ///< extra cycles in sim::runAllocated (timing only; never
                 ///< changes values)
  SimBitFlip,    ///< an ALU result bit is flipped in sim::runAllocated —
                 ///< a seeded "hardware" miscomputation the differential
                 ///< oracle must catch and the soak shrinker must minimize
  //===--- Chip-grade kinds (consumed by chip::Supervisor via a
  //===--- FaultSchedule, never by the global injector) ------------------===//
  CtxLockup,     ///< a hardware context stops retiring: its outstanding
                 ///< memory reference never completes, the supervisor's
                 ///< retire-progress watchdog must recover it
  RingStall,     ///< a scratch ring refuses pushes for Magnitude cycles
  ChanBrownout,  ///< the SDRAM channel's issue bandwidth degrades by a
                 ///< factor of Magnitude for a bounded window
  SdramBitFlip,  ///< post-DMA word corruption in a packet's SDRAM slot —
                 ///< invisible to the supervisor, the sampled retire-time
                 ///< oracle must catch it
  DmaDrop        ///< an RX DMA burst is lost in flight; the RX engine's
                 ///< completion count check detects it and redoes the DMA
                 ///< (bounded retries, then a typed ingress drop)
};

const char *faultKindName(FaultKind K);

/// Which layer a fault kind perturbs — the basis for strict CLI
/// validation: novac accepts Solver kinds, novasoak --inject-fault
/// accepts Sim kinds, and novasoak --chip --fault-schedule accepts Chip
/// kinds; everything else is a usage error, never a silent no-op.
enum class FaultDomain : uint8_t {
  Solver, ///< fires inside Simplex/Basis/MipSolver hooks
  Sim,    ///< fires inside the micro-engine runtime (both exec modes)
  Chip    ///< fires inside the whole-chip scheduler (chip::Supervisor)
};

FaultDomain faultKindDomain(FaultKind K);
const char *faultDomainName(FaultDomain D);

/// One injection rule. At most one spec per kind is active at a time
/// (arming replaces the whole plan).
struct FaultSpec {
  FaultKind Kind = FaultKind::LpInfeasible;
  /// Opportunities to let pass before the first fire (0 = fire on the
  /// first one). For MipTimeout this is "time out at node After+1".
  unsigned After = 0;
  /// Maximum number of fires; ~0u = unlimited.
  unsigned Times = ~0u;
  /// Kind-specific knob: relative pivot perturbation for EtaDrift
  /// (default 1e-3), stall seconds for WorkerStall (default 0.02).
  double Magnitude = 0.0;
  /// Bernoulli gate applied after the After/Times window; 1.0 = always.
  double Probability = 1.0;
  /// Seed for the gate's deterministic PRNG.
  uint64_t Seed = 0x5eedf417u;
};

/// Parses a CLI fault spec: `kind[@after][xTimes][~magnitude]`, e.g.
/// "mip-timeout@5", "eta-drift@100x3~1e-3". Returns false (with a
/// message) on malformed input. Kinds: singular-basis, eta-drift,
/// lp-infeasible, mip-timeout, worker-stall, mem-jitter, sim-bitflip.
bool parseFaultSpec(const std::string &Text, FaultSpec &Out,
                    std::string &Error);

/// One entry of a chip fault schedule: kind fires every `Rate`th
/// opportunity (packet for CtxLockup/SdramBitFlip/DmaDrop, channel
/// transaction for ChanBrownout, ring push for RingStall), with a
/// kind-specific magnitude. Firing is a pure function of the
/// opportunity ordinal, so a (seed, schedule) pair replays
/// bit-identically regardless of exec mode.
struct FaultScheduleEntry {
  FaultKind Kind = FaultKind::CtxLockup;
  /// Fire on every Rate-th opportunity (1 = every one). Must be >= 1.
  uint64_t Rate = 1;
  /// Kind-specific knob, 0 = kind default: wedge attempts for
  /// CtxLockup, stall cycles for RingStall, bandwidth divisor for
  /// ChanBrownout, dropped bursts for DmaDrop; unused for SdramBitFlip.
  double Magnitude = 0.0;
};

using FaultSchedule = std::vector<FaultScheduleEntry>;

/// Parses `kind@rate[~magnitude],...` (e.g.
/// "ctx-lockup@5000,chan-brownout@10000~4") into a chip fault
/// schedule. Rejects non-chip-domain kinds, rate < 1, duplicate kinds,
/// and malformed numbers — returning false with a message.
bool parseFaultSchedule(const std::string &Text, FaultSchedule &Out,
                        std::string &Error);

/// Process-wide injection registry. Thread-safe; deterministic for a
/// fixed plan and a serial (or deterministic-mode) solve.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// True when any plan is armed — the only check on hot paths.
  static bool armed() {
    return ArmedFlag.load(std::memory_order_relaxed);
  }

  /// Installs \p Specs as the active plan, resetting all counters.
  void arm(std::vector<FaultSpec> Specs);

  /// Removes the plan; hooks go back to the single-load fast path.
  void disarm();

  /// Resets opportunity/fire counters and RNG state while keeping the
  /// armed plan. The soak harness calls this before every packet so a
  /// spec's @after/xTimes window is counted per packet — a failing
  /// packet then reproduces stand-alone, which is what makes shrinking
  /// a divergence deterministic.
  void rearm();

  /// Records an opportunity for \p K and decides whether it fires.
  bool shouldFire(FaultKind K);

  /// Magnitude of the active spec for \p K, or \p Default when the kind
  /// is not armed / the spec left it 0.
  double magnitude(FaultKind K, double Default) const;

  /// Deterministic draw in [1, max(1, magnitude(K, Default))] from the
  /// spec's seeded stream; the per-fire extra-cycle count for MemJitter.
  unsigned drawCycles(FaultKind K, double Default);

  /// Total fires of \p K since the last arm() — test observability.
  unsigned fired(FaultKind K) const;

  /// Total opportunities seen for \p K since the last arm().
  unsigned opportunities(FaultKind K) const;

private:
  FaultInjector() = default;

  struct Slot {
    FaultSpec Spec;
    bool Active = false;
    unsigned Opportunities = 0;
    unsigned Fired = 0;
    uint64_t RngState = 0;
  };

  static constexpr unsigned NumKinds = 12;
  static std::atomic<bool> ArmedFlag;

  mutable std::mutex Mu;
  Slot Slots[NumKinds];
};

/// RAII plan installer for tests: arms on construction, disarms on
/// destruction (restoring the free fast path for subsequent tests).
class ScopedFaultInjection {
public:
  explicit ScopedFaultInjection(std::vector<FaultSpec> Specs) {
    FaultInjector::instance().arm(std::move(Specs));
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection &) = delete;
  ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;
};

} // namespace nova

#endif // SUPPORT_FAULTINJECTION_H
